// Package specctrl's root benchmark harness: one benchmark per paper
// table and figure, so `go test -bench=.` regenerates every evaluation
// artifact (at bench scale; use cmd/simctrl for full-scale runs), plus
// micro-benchmarks of the simulator core.
package specctrl

import (
	"io"
	"runtime"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
	"specctrl/internal/workload"
)

// benchParams returns experiment parameters sized for benchmarking: big
// enough to be representative, small enough to iterate.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.MaxCommitted = 200_000
	return p
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig1(benchParams())
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig45(benchParams(), experiments.GshareSpec()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig45(benchParams(), experiments.McFarlingSpec()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigDistance(benchParams(), experiments.GshareSpec(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigDistance(benchParams(), experiments.McFarlingSpec(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigDistance(benchParams(), experiments.GshareSpec(), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigDistance(benchParams(), experiments.McFarlingSpec(), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMisest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Misest(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Boost(benchParams(), experiments.GshareSpec(), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThroughput measures raw simulation speed: committed
// instructions per wall-clock second across the suite on gshare.
func BenchmarkPipelineThroughput(b *testing.B) {
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Build(1 << 30)
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = uint64(b.N)
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	sim := pipeline.MustNew(cfg, prog, bpred.NewGshare(12))
	b.ResetTimer()
	st, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(st.Committed+st.WrongPath)/float64(b.N), "instr/op")
}

func BenchmarkMetricsCmp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MetricsCmp(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCIR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CIR(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJRSMcf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.JRSMcf(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tuned(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWidth(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpecHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSpecHistory(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGating(b *testing.B) {
	p := benchParams()
	p.MaxCommitted = 60_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGating(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIndirect(b *testing.B) {
	p := benchParams()
	p.MaxCommitted = 60_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationIndirect(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDepth(b *testing.B) {
	p := benchParams()
	p.MaxCommitted = 60_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDepth(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Patterns(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMTStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SMTStudy(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEagerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EagerStudy(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAUCStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AUCStudy(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunner measures grid execution through the parallel runner at
// the machine's full width (Jobs = NumCPU) against the serial variant
// below; the ratio is the experiment-level speedup on this machine.
func BenchmarkRunner(b *testing.B) {
	p := benchParams()
	p.Jobs = runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerSerial is BenchmarkRunner pinned to one worker.
func BenchmarkRunnerSerial(b *testing.B) {
	p := benchParams()
	p.Jobs = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(p); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineObsBench runs the simulator hot path with a fixed workload and
// the given observability wiring, reporting instructions per op. The
// trio below (Off / Metrics / Tracer) quantifies the overhead budget
// documented in DESIGN.md: with everything off the only added hot-path
// cost is one integer compare per Tick and one nil check per branch,
// and must stay within 3% of the pre-obs baseline.
func pipelineObsBench(b *testing.B, wire func(*pipeline.Config)) {
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Build(1 << 30)
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = uint64(b.N)
	cfg.MaxCycles = 0
	if wire != nil {
		wire(&cfg)
	}
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	sim := pipeline.MustNew(cfg, prog, bpred.NewGshare(12))
	b.ResetTimer()
	st, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(st.Committed+st.WrongPath)/float64(b.N), "instr/op")
}

// BenchmarkPipelineObsOff is the baseline: no registry, no tracer, no
// progress. Compare against BenchmarkPipelineThroughput to confirm the
// disabled-path cost is in the noise.
func BenchmarkPipelineObsOff(b *testing.B) {
	pipelineObsBench(b, nil)
}

// BenchmarkPipelineObsMetrics enables the live metrics registry and
// progress counters at the default publish interval.
func BenchmarkPipelineObsMetrics(b *testing.B) {
	pipelineObsBench(b, func(cfg *pipeline.Config) {
		cfg.Metrics = obs.NewRegistry()
		cfg.MetricsLabels = obs.Labels{"workload": "gcc", "predictor": "gshare"}
		cfg.Progress = obs.NewProgress()
	})
}

// BenchmarkPipelineObsTracer enables a per-branch structured event sink
// (discarding writer), the most invasive observer: one callback per
// conditional branch.
func BenchmarkPipelineObsTracer(b *testing.B) {
	pipelineObsBench(b, func(cfg *pipeline.Config) {
		cfg.Tracer = obs.NewJSONL(io.Discard)
	})
}
