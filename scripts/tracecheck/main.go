// tracecheck validates a Chrome trace-event file produced by
// -trace-out: the file must parse as JSON, carry at least -min-events
// complete ("X") events, and every complete event must have a name, a
// non-negative timestamp, and a duration. check.sh runs it against a
// trace emitted by the smoke sweep so a formatting regression in the
// exporter fails the build rather than silently producing a file
// Perfetto refuses to load.
//
// Usage:
//
//	go run ./scripts/tracecheck -min-events 1 run.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// traceFile mirrors the subset of the Chrome trace-event JSON object
// form that the exporter emits (internal/obs/span.WriteChrome).
type traceFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func main() {
	minEvents := flag.Int("min-events", 1, "minimum number of complete (ph=X) events required")
	wantPrefix := flag.String("want-span", "", "require at least one complete event whose name has this prefix")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-events N] [-want-span prefix] <trace.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if err := check(path, *minEvents, *wantPrefix); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
}

func check(path string, minEvents int, wantPrefix string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %v", err)
	}
	complete, prefixed := 0, 0
	for i, e := range tf.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		complete++
		if e.Name == "" {
			return fmt.Errorf("event %d: complete event with empty name", i)
		}
		if e.Ts < 0 || e.Dur < 0 {
			return fmt.Errorf("event %d (%s): negative ts/dur (%v/%v)", i, e.Name, e.Ts, e.Dur)
		}
		if strings.HasPrefix(e.Name, wantPrefix) {
			prefixed++
		}
	}
	if complete < minEvents {
		return fmt.Errorf("%d complete events, want at least %d", complete, minEvents)
	}
	if wantPrefix != "" && prefixed == 0 {
		return fmt.Errorf("no complete event named %q… among %d events", wantPrefix, complete)
	}
	fmt.Printf("tracecheck: ok %s: %d complete events (%d total)\n",
		path, complete, len(tf.TraceEvents))
	return nil
}
