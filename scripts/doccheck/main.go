// doccheck enforces the repository's godoc contract on the packages
// that form its operational surface: every exported identifier must
// carry a doc comment, and the package comment must live in doc.go
// (one canonical place, not whichever file happens to sort first).
//
// check.sh runs it over the serving/cluster stack — the packages an
// operator reads first — so documentation drift fails the build the
// same way a broken test does:
//
//	go run ./scripts/doccheck internal/serve internal/cluster ...
//
// Exit status is nonzero when any package violates the contract; every
// violation is reported as file:line so the fix is one click away.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir reports the number of violations in one package directory.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		bad += checkPackageComment(fset, dir, pkg)
		for _, f := range pkg.Files {
			bad += checkFile(fset, f)
		}
	}
	return bad
}

// checkPackageComment requires the package comment to exist and to be
// attached to the package clause in doc.go.
func checkPackageComment(fset *token.FileSet, dir string, pkg *ast.Package) int {
	for name, f := range pkg.Files {
		if filepath.Base(name) != "doc.go" {
			if f.Doc != nil {
				fmt.Printf("%s: package comment must live in doc.go\n", fset.Position(f.Doc.Pos()))
				return 1
			}
			continue
		}
		if f.Doc == nil {
			fmt.Printf("%s: doc.go has no package comment\n", name)
			return 1
		}
		return 0
	}
	fmt.Printf("%s: package %s has no doc.go\n", dir, pkg.Name)
	return 1
}

// checkFile reports exported top-level identifiers without doc
// comments.
func checkFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	complain := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment\n", fset.Position(pos), what, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "function"
			name := d.Name.Name
			if d.Recv != nil {
				// Methods on unexported types are internal API; skip.
				recv := receiverType(d.Recv)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				what = "method"
				name = recv + "." + name
			}
			complain(d.Name.Pos(), what, name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && ts.Doc == nil && d.Doc == nil {
						complain(ts.Name.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A group doc comment covers the whole block; otherwise
				// each exported spec needs its own comment.
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							complain(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverType extracts the receiver's type name ("" when anonymous or
// exotic).
func receiverType(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return ""
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if gen, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = gen.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
