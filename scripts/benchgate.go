// benchgate runs the repository's regression benchmarks and compares
// them against the checked-in baseline (BENCH_PIPELINE.json at the repo
// root). It is the perf equivalent of the test suite: check.sh runs it
// on every commit.
//
// Two properties are gated:
//
//   - wall clock: a benchmark's min-of-count ns/op must stay within
//     -tolerance (default 5%) of the baseline;
//   - allocations: a benchmark whose baseline is allocation-free must
//     stay at exactly zero allocs/op (the simulator hot path's
//     contract, see pipeline's TestSteadyStateAllocs); nonzero
//     baselines get a 1% drift allowance for harness noise.
//
// Min-of-count is the comparison statistic on both sides: the minimum
// is the least noisy estimate of a benchmark's true cost on an
// otherwise-idle machine (benchstat uses the same reasoning). A
// failure triggers up to noiseRetries full re-measurements whose
// results are merged in before the final verdict, so a transient load
// spike — even one outlasting a single re-run — cannot fail the gate
// on its own; suites whose noise floor is inherently above the
// default tolerance carry a wider per-suite bound (see suites).
//
// Wall-clock baselines are machine-specific. After an intentional perf
// change, or when moving the reference machine, refresh with:
//
//	go run ./scripts/benchgate.go -update
//
// and commit the new BENCH_PIPELINE.json alongside the change that
// explains it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark's recorded cost.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// Baseline is the BENCH_PIPELINE.json document. PreOverhaul preserves
// the pre-optimization measurements for the record (the ≥30% wall-clock
// improvement claim in DESIGN.md is against these numbers); PreReplay
// likewise preserves the direct-simulation sweep cost the record/replay
// layer's ≥2× claim is measured against, and PreArch the event-tier
// suite cost the arch tier's ≥2× claim is measured against. -update
// carries all three forward untouched.
type Baseline struct {
	Note        string           `json:"note"`
	Benchmarks  map[string]Entry `json:"benchmarks"`
	PreOverhaul map[string]Entry `json:"pre_overhaul_seed,omitempty"`
	PreReplay   map[string]Entry `json:"pre_replay_seed,omitempty"`
	PreArch     map[string]Entry `json:"pre_arch_seed,omitempty"`
}

// suite is one `go test -bench` invocation. Fixed -benchtime iteration
// counts keep per-op work identical between baseline and gate runs.
// tol overrides the -tolerance flag for the suite's benchmarks when
// nonzero: end-to-end runs carry OS-scheduling noise the steady-state
// micro-benchmarks don't see.
type suite struct {
	pkg       string
	bench     string
	benchtime string
	count     int
	tol       float64
}

// suites lists what the gate measures: the end-to-end experiment
// runner, the per-cycle simulator loop (plain, traced, and without
// estimators — the traced entry is the tracer-overhead budget), the
// disabled span-tracing path (whose allocation-free baseline enforces
// that instrumentation costs nothing when -trace-out is absent), the
// synth workload generator (program build cost and the sweepspace
// panel end to end), and
// one representative predictor and estimator micro-benchmark. The
// remaining Predict*/Estimate* benchmarks exist for profiling; gating
// these representatives keeps the gate under ~15 s.
// Iteration counts are sized so each sample runs for roughly half a
// second: short samples of the nanosecond micro-benchmarks scatter by
// ~10% under CPU frequency jitter, while half-second windows average
// it out and make min-of-count reproducible to a couple of percent.
var suites = []suite{
	{".", "^BenchmarkRunnerSerial$", "3x", 3, 0.10},
	{"./internal/experiments", "^BenchmarkSweep(Direct|Replay)$", "3x", 3, 0.10},
	{"./internal/experiments", "^BenchmarkSuite(Arch|Events)$", "3x", 3, 0.10},
	{"./internal/replay", "^BenchmarkArchReplay$", "300x", 3, 0.10},
	{"./internal/replay", "^BenchmarkArchRecord$", "5000000x", 5, 0},
	{"./internal/experiments", "^BenchmarkSweepSpace$", "3x", 3, 0.10},
	{"./internal/synth", "^BenchmarkSynthBuild$", "1000x", 5, 0.10},
	{"./internal/pipeline", "^(BenchmarkPipelineTick(Traced|NoEstimators)?|BenchmarkPolicyOverhead(Nil|Gate))$", "8000000x", 5, 0},
	{"./internal/obs/span", "^BenchmarkSpanOverhead$", "8000000x", 5, 0},
	{"./internal/bpred", "^BenchmarkPredictGshare$", "20000000x", 5, 0},
	{"./internal/conf", "^BenchmarkEstimateJRS$", "20000000x", 5, 0},
}

// noiseRetries bounds how many full re-measurement rounds a suspected
// regression triggers before the gate fails. Three rounds ride out the
// multi-minute noisy bursts shared machines exhibit while adding no
// cost at all to a clean pass.
const noiseRetries = 3

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// "BenchmarkPipelineTick  1000000  88.62 ns/op  0 B/op  0 allocs/op"
// (the -8 GOMAXPROCS suffix is absent on single-CPU machines).
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_PIPELINE.json", "baseline file (relative to the current directory)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional ns/op regression")
	flag.Parse()

	measured, tols, err := runSuites()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}

	if *update {
		if err := writeBaseline(*baselinePath, measured); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *baselinePath, len(measured))
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v (run `go run ./scripts/benchgate.go -update` to create it)\n", err)
		os.Exit(1)
	}
	failures := gate(base.Benchmarks, measured, tols, *tolerance)
	// Retries: transient machine noise rarely repeats across separate
	// runs, a real regression always does — and on shared machines a
	// noisy burst can outlast a single re-measurement. Each round's
	// results are merged in as per-field minima, so extra rounds only
	// lower the false-positive rate: a true regression never produces
	// a sample under the bound, no matter how many rounds run.
	for attempt := 1; len(failures) > 0 && attempt <= noiseRetries; attempt++ {
		fmt.Fprintf(os.Stderr, "benchgate: regression suspected, re-measuring to rule out noise (%d/%d)\n",
			attempt, noiseRetries)
		again, _, err := runSuites()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		measured = mergeMin(measured, again)
		failures = gate(base.Benchmarks, measured, tols, *tolerance)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		fmt.Fprintln(os.Stderr, "benchgate: if the regression is intentional, refresh with `go run ./scripts/benchgate.go -update` and commit the new baseline")
		os.Exit(1)
	}
	report(base.Benchmarks, measured)
}

// runSuites executes every suite and folds the output into min-of-count
// entries per benchmark, plus each benchmark's tolerance override.
func runSuites() (map[string]Entry, map[string]float64, error) {
	measured := make(map[string]Entry)
	tols := make(map[string]float64)
	for _, s := range suites {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", s.bench, "-benchmem",
			"-benchtime", s.benchtime, "-count", strconv.Itoa(s.count), s.pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, nil, fmt.Errorf("%s %s: %v\n%s", s.pkg, s.bench, err, out)
		}
		matches := benchLine.FindAllStringSubmatch(string(out), -1)
		if len(matches) == 0 {
			return nil, nil, fmt.Errorf("%s %s: no benchmark results in output:\n%s", s.pkg, s.bench, out)
		}
		for _, m := range matches {
			name := m[1]
			ns, _ := strconv.ParseFloat(m[2], 64)
			bytes, _ := strconv.ParseUint(m[3], 10, 64)
			allocs, _ := strconv.ParseUint(m[4], 10, 64)
			if s.tol > 0 {
				tols[name] = s.tol
			}
			e, seen := measured[name]
			if !seen {
				measured[name] = Entry{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
				continue
			}
			if ns < e.NsPerOp {
				e.NsPerOp = ns
			}
			if bytes < e.BytesPerOp {
				e.BytesPerOp = bytes
			}
			if allocs < e.AllocsPerOp {
				e.AllocsPerOp = allocs
			}
			measured[name] = e
		}
	}
	return measured, tols, nil
}

// mergeMin folds two measurement sets into their per-field minimum.
func mergeMin(a, b map[string]Entry) map[string]Entry {
	out := make(map[string]Entry, len(a))
	for name, e := range a {
		if o, ok := b[name]; ok {
			if o.NsPerOp < e.NsPerOp {
				e.NsPerOp = o.NsPerOp
			}
			if o.BytesPerOp < e.BytesPerOp {
				e.BytesPerOp = o.BytesPerOp
			}
			if o.AllocsPerOp < e.AllocsPerOp {
				e.AllocsPerOp = o.AllocsPerOp
			}
		}
		out[name] = e
	}
	return out
}

// gate returns one message per violated bound. Both directions of
// coverage drift fail too: a benchmark that disappeared means the
// baseline is stale, a new one means it was never recorded.
func gate(base, measured map[string]Entry, tols map[string]float64, tolerance float64) []string {
	var failures []string
	for _, name := range sortedKeys(base) {
		b := base[name]
		m, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured (stale baseline?)", name))
			continue
		}
		tol := tolerance
		if t, ok := tols[name]; ok && t > tol {
			tol = t
		}
		if limit := b.NsPerOp * (1 + tol); m.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				name, m.NsPerOp, b.NsPerOp, tol*100))
		}
		switch {
		case b.AllocsPerOp == 0 && m.AllocsPerOp > 0:
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline is allocation-free", name, m.AllocsPerOp))
		case b.AllocsPerOp > 0 && m.AllocsPerOp > b.AllocsPerOp+b.AllocsPerOp/100:
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d", name, m.AllocsPerOp, b.AllocsPerOp))
		}
	}
	for _, name := range sortedKeys(measured) {
		if _, ok := base[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: not in baseline (run -update to record it)", name))
		}
	}
	return failures
}

func report(base, measured map[string]Entry) {
	for _, name := range sortedKeys(measured) {
		m, b := measured[name], base[name]
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (m.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		fmt.Printf("benchgate: ok %-35s %14.0f ns/op (%+.1f%% vs baseline)  %d allocs/op\n",
			name, m.NsPerOp, delta, m.AllocsPerOp)
	}
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

func writeBaseline(path string, measured map[string]Entry) error {
	b := Baseline{
		Note: "Benchmark-regression baseline for scripts/benchgate.go. " +
			"Values are min-of-count on the reference machine; refresh with " +
			"`go run ./scripts/benchgate.go -update` after intentional perf changes.",
		Benchmarks: measured,
	}
	if prev, err := readBaseline(path); err == nil {
		b.PreOverhaul = prev.PreOverhaul
		b.PreReplay = prev.PreReplay
		b.PreArch = prev.PreArch
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedKeys(m map[string]Entry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
