#!/bin/sh
# check.sh — the full local gate: vet, build, and the test suite under
# the race detector, plus the parallel-runner determinism and RNG
# hygiene gates. CI and pre-commit both run exactly this.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...

# Runner-specific gates (already covered by the suite above, but named
# here so a failure points straight at the subsystem):
#  - determinism: Jobs=1 vs Jobs=8 byte-identity and cell cache replay
#  - cancellation: no goroutine leak under -race
go test -race -count=1 -run 'TestGridDeterminism|TestGridCancellation|TestCellsRoundTrip|TestShardRun' ./internal/experiments
go test -race -count=1 ./internal/runner

# Record/replay gates (likewise named for diagnosis):
#  - replay exactness: every estimator family replays bit-identical to
#    direct simulation, and replay-shaped grids render byte-identical
#  - trace codec and cache: round-trip, typed decode errors, LRU bounds
go test -race -count=1 ./internal/replay
go test -race -count=1 -run 'TestReplay' ./internal/experiments

# RNG hygiene: experiment cells must take randomness from spec.Seed only;
# a process-global RNG would break cross-job determinism silently.
if grep -rn 'math/rand' internal/experiments internal/runner internal/workload internal/serve; then
    echo "check.sh: process-global RNG import found (use seed-derived rng streams)" >&2
    exit 1
fi

# Bench gate: wall-clock and allocation regressions against the
# checked-in baseline (BENCH_PIPELINE.json). A >5% min-of-count ns/op
# regression (10% for the end-to-end runner) or any allocation on the
# allocation-free hot path fails the build; refresh the baseline with
# `go run ./scripts/benchgate.go -update` after intentional changes.
go run ./scripts/benchgate.go

# Serving smoke: results fetched through simserved must be byte-identical
# to a local simctrl run, and a resubmission must be served entirely from
# the content-addressed cache (zero new simulations).
SMOKE=$(mktemp -d)
SERVED_PID=""
cleanup() {
    if [ -n "$SERVED_PID" ]; then
        kill -TERM "$SERVED_PID" 2>/dev/null || true
        wait "$SERVED_PID" || true
    fi
    rm -rf "$SMOKE"
}
trap cleanup EXIT INT TERM

go build -o "$SMOKE/simctrl" ./cmd/simctrl
go build -o "$SMOKE/simserved" ./cmd/simserved

"$SMOKE/simctrl" -exp table3 -committed 60000 > "$SMOKE/local.txt"

# Record/replay smoke: replay evaluation (the default) must render the
# exact bytes of a -replay=off direct simulation.
"$SMOKE/simctrl" -replay off -exp table3 -committed 60000 > "$SMOKE/direct.txt"
cmp "$SMOKE/local.txt" "$SMOKE/direct.txt"

# Span-tracing smoke: -trace-out must emit a Chrome trace-event file
# that parses with per-cell spans, -profile-cells must print the
# slowest-cells table, and tracing must not perturb rendered output.
"$SMOKE/simctrl" -exp table3 -committed 60000 \
    -trace-out "$SMOKE/run.trace.json" -profile-cells 3 \
    > "$SMOKE/traced.txt" 2> "$SMOKE/trace.log"
cmp "$SMOKE/local.txt" "$SMOKE/traced.txt"
go run ./scripts/tracecheck -min-events 1 -want-span 'cell:' "$SMOKE/run.trace.json"
grep -q 'slowest' "$SMOKE/trace.log"

"$SMOKE/simserved" -addr 127.0.0.1:0 -addr-file "$SMOKE/addr" \
    -cache-dir "$SMOKE/cache" -committed 60000 2> "$SMOKE/simserved.log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE/addr" ] || { echo "check.sh: simserved never published its address" >&2; cat "$SMOKE/simserved.log" >&2; exit 1; }
URL=$(cat "$SMOKE/addr")

"$SMOKE/simctrl" -server "$URL" -exp table3 -committed 60000 \
    > "$SMOKE/served1.txt" 2> "$SMOKE/stats1.txt"
"$SMOKE/simctrl" -server "$URL" -exp table3 -committed 60000 \
    > "$SMOKE/served2.txt" 2> "$SMOKE/stats2.txt"

# Byte-identity of both served runs against the local run.
cmp "$SMOKE/local.txt" "$SMOKE/served1.txt"
cmp "$SMOKE/local.txt" "$SMOKE/served2.txt"

# First submission simulated everything; the resubmission hit the cache
# for every cell (the stats line is "... N cells (C cached, S simulated)").
grep -q '(0 cached' "$SMOKE/stats1.txt"
grep -q ' 0 simulated)' "$SMOKE/stats2.txt"

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
