#!/bin/sh
# check.sh — the full local gate: vet, build, and the test suite under
# the race detector, plus the parallel-runner determinism and RNG
# hygiene gates. CI and pre-commit both run exactly this.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...

# Runner-specific gates (already covered by the suite above, but named
# here so a failure points straight at the subsystem):
#  - determinism: Jobs=1 vs Jobs=8 byte-identity and cell cache replay
#  - cancellation: no goroutine leak under -race
go test -race -count=1 -run 'TestGridDeterminism|TestGridCancellation|TestCellsRoundTrip|TestShardRun' ./internal/experiments
go test -race -count=1 ./internal/runner

# RNG hygiene: experiment cells must take randomness from spec.Seed only;
# a process-global RNG would break cross-job determinism silently.
if grep -rn 'math/rand' internal/experiments internal/runner internal/workload; then
    echo "check.sh: process-global RNG import found (use seed-derived rng streams)" >&2
    exit 1
fi

# Bench smoke: the runner benchmarks must at least execute.
go test -bench='BenchmarkRunner' -benchtime=1x -run '^$' .
