#!/bin/sh
# check.sh — the full local gate: vet, build, and the test suite under
# the race detector, plus the parallel-runner determinism and RNG
# hygiene gates. CI and pre-commit both run exactly this.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...

# Runner-specific gates (already covered by the suite above, but named
# here so a failure points straight at the subsystem):
#  - determinism: Jobs=1 vs Jobs=8 byte-identity and cell cache replay
#  - cancellation: no goroutine leak under -race
go test -race -count=1 -run 'TestGridDeterminism|TestGridCancellation|TestCellsRoundTrip|TestShardRun' ./internal/experiments
go test -race -count=1 ./internal/runner

# Record/replay gates (likewise named for diagnosis):
#  - replay exactness: every estimator family replays bit-identical to
#    direct simulation, and replay-shaped grids render byte-identical
#  - trace codec and cache: round-trip, typed decode errors, LRU bounds
go test -race -count=1 ./internal/replay
go test -race -count=1 -run 'TestReplay' ./internal/experiments

# Cluster gates: N-worker byte-identity vs the local run, chaos kill
# mid-job with lease-TTL reassignment, graceful drain hand-back — all
# in-process, under the race detector (the real-process smoke is below).
go test -race -count=1 ./internal/cluster

# Godoc contract: the serving/cluster stack is the operational surface;
# every exported identifier there must carry a doc comment, and the
# package comment must live in doc.go.
go run ./scripts/doccheck internal/serve internal/runner internal/replay internal/obs/span internal/cluster internal/synth

# RNG hygiene: experiment cells must take randomness from spec.Seed only;
# a process-global RNG would break cross-job determinism silently.
if grep -rn 'math/rand' internal/experiments internal/runner internal/workload internal/serve internal/cluster internal/synth; then
    echo "check.sh: process-global RNG import found (use seed-derived rng streams)" >&2
    exit 1
fi

# Bench gate: wall-clock and allocation regressions against the
# checked-in baseline (BENCH_PIPELINE.json). A >5% min-of-count ns/op
# regression (10% for the end-to-end runner) or any allocation on the
# allocation-free hot path fails the build; refresh the baseline with
# `go run ./scripts/benchgate.go -update` after intentional changes.
go run ./scripts/benchgate.go

# Serving smoke: results fetched through simserved must be byte-identical
# to a local simctrl run, and a resubmission must be served entirely from
# the content-addressed cache (zero new simulations).
SMOKE=$(mktemp -d)
SERVED_PID=""
COORD_PID=""
WORKER1_PID=""
WORKER2_PID=""
WORKER3_PID=""
cleanup() {
    for pid in "$SERVED_PID" "$WORKER1_PID" "$WORKER2_PID" "$WORKER3_PID" "$COORD_PID"; do
        if [ -n "$pid" ]; then
            kill -TERM "$pid" 2>/dev/null || true
            wait "$pid" || true
        fi
    done
    rm -rf "$SMOKE"
}
trap cleanup EXIT INT TERM

go build -o "$SMOKE/simctrl" ./cmd/simctrl
go build -o "$SMOKE/simserved" ./cmd/simserved
go build -o "$SMOKE/simtrace" ./cmd/simtrace

"$SMOKE/simctrl" -exp table3 -committed 60000 > "$SMOKE/local.txt"

# Record/replay smoke: table3 is a committed-stream experiment, so all
# three -replay modes — arch (the default), events, and off — must
# render the exact same bytes.
"$SMOKE/simctrl" -replay off -exp table3 -committed 60000 > "$SMOKE/direct.txt"
cmp "$SMOKE/local.txt" "$SMOKE/direct.txt"
"$SMOKE/simctrl" -replay arch -exp table3 -committed 60000 > "$SMOKE/arch.txt"
cmp "$SMOKE/direct.txt" "$SMOKE/arch.txt"
"$SMOKE/simctrl" -replay events -exp table3 -committed 60000 > "$SMOKE/events.txt"
cmp "$SMOKE/direct.txt" "$SMOKE/events.txt"

# Span-tracing smoke: -trace-out must emit a Chrome trace-event file
# that parses with per-cell spans, -profile-cells must print the
# slowest-cells table, and tracing must not perturb rendered output.
"$SMOKE/simctrl" -exp table3 -committed 60000 \
    -trace-out "$SMOKE/run.trace.json" -profile-cells 3 \
    > "$SMOKE/traced.txt" 2> "$SMOKE/trace.log"
cmp "$SMOKE/local.txt" "$SMOKE/traced.txt"
go run ./scripts/tracecheck -min-events 1 -want-span 'cell:' "$SMOKE/run.trace.json"
grep -q 'slowest' "$SMOKE/trace.log"

# Synth smoke (docs/WORKLOADS.md): record an SPBT branch trace, ingest
# it plus a profile vector, and render the sweepspace panel — replay
# (the default) must match -replay off byte-for-byte, and both the
# profile-backed and the trace-backed rows must appear.
cat > "$SMOKE/profile.json" <<'EOF'
{"seed": 7, "sites": 24, "density": 0.10, "taken": 0.7, "spread": 0.2}
EOF
"$SMOKE/simtrace" -w compress -record-branches "$SMOKE/compress.spbt" -committed 40000
"$SMOKE/simctrl" -exp sweepspace -synth-n 4 -committed 40000 \
    -ingest-trace "$SMOKE/compress.spbt" > "$SMOKE/sweep-base.txt"
"$SMOKE/simctrl" -exp sweepspace -synth-n 4 -committed 40000 \
    -ingest-trace "$SMOKE/compress.spbt" -synth-profile "$SMOKE/profile.json" \
    > "$SMOKE/sweep.txt"
"$SMOKE/simctrl" -replay off -exp sweepspace -synth-n 4 -committed 40000 \
    -ingest-trace "$SMOKE/compress.spbt" -synth-profile "$SMOKE/profile.json" \
    > "$SMOKE/sweep-direct.txt"
cmp "$SMOKE/sweep.txt" "$SMOKE/sweep-direct.txt"
grep -q 'synth:t-' "$SMOKE/sweep.txt"

# Policy-layer smoke: the frontier experiment's policy cells simulate
# directly (policies perturb timing, so replay never applies to them) —
# the default mode must render the exact bytes of -replay off. And a
# base-config -policy must change table3's timing-derived bytes while
# staying byte-identical between replay modes, because an installed
# policy forces every cell off the replay path.
"$SMOKE/simctrl" -exp frontier -committed 60000 > "$SMOKE/frontier-local.txt"
"$SMOKE/simctrl" -replay off -exp frontier -committed 60000 > "$SMOKE/frontier-direct.txt"
cmp "$SMOKE/frontier-local.txt" "$SMOKE/frontier-direct.txt"
grep -q 'gate:1' "$SMOKE/frontier-local.txt"
"$SMOKE/simctrl" -policy gate:2 -exp table3 -committed 60000 > "$SMOKE/policied.txt"
"$SMOKE/simctrl" -policy gate:2 -replay off -exp table3 -committed 60000 > "$SMOKE/policied-direct.txt"
cmp "$SMOKE/policied.txt" "$SMOKE/policied-direct.txt"
if cmp -s "$SMOKE/local.txt" "$SMOKE/policied.txt"; then
    echo "check.sh: -policy gate:2 left table3 unchanged; the policy was not installed" >&2
    exit 1
fi

"$SMOKE/simserved" -addr 127.0.0.1:0 -addr-file "$SMOKE/addr" \
    -cache-dir "$SMOKE/cache" -committed 60000 \
    -ingest-trace "$SMOKE/compress.spbt" 2> "$SMOKE/simserved.log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE/addr" ] || { echo "check.sh: simserved never published its address" >&2; cat "$SMOKE/simserved.log" >&2; exit 1; }
URL=$(cat "$SMOKE/addr")

"$SMOKE/simctrl" -server "$URL" -exp table3 -committed 60000 \
    > "$SMOKE/served1.txt" 2> "$SMOKE/stats1.txt"
"$SMOKE/simctrl" -server "$URL" -exp table3 -committed 60000 \
    > "$SMOKE/served2.txt" 2> "$SMOKE/stats2.txt"

# Byte-identity of both served runs against the local run.
cmp "$SMOKE/local.txt" "$SMOKE/served1.txt"
cmp "$SMOKE/local.txt" "$SMOKE/served2.txt"

# First submission simulated everything; the resubmission hit the cache
# for every cell (the stats line is "... N cells (C cached, S simulated)").
grep -q '(0 cached' "$SMOKE/stats1.txt"
grep -q ' 0 simulated)' "$SMOKE/stats2.txt"

# Served synth smoke: the server ingested compress.spbt at startup, so a
# sweepspace job renders the trace-backed row byte-identically to the
# local run, and replay evaluation inside the job must hit the server's
# in-memory trace cache (record once, replay per estimator config).
"$SMOKE/simctrl" -server "$URL" -exp sweepspace -synth-n 4 -committed 40000 \
    > "$SMOKE/ssweep1.txt" 2> "$SMOKE/sstats1.txt"
cmp "$SMOKE/sweep-base.txt" "$SMOKE/ssweep1.txt"
TRACE_HITS=$(curl -s "$URL/metrics" | awk '/^specctrl_trace_hits_total/ {print $2}')
[ -n "$TRACE_HITS" ] && [ "$TRACE_HITS" -ge 1 ] || {
    echo "check.sh: no replay trace-cache hits after a sweepspace job (got '$TRACE_HITS')" >&2
    exit 1
}
# Resubmitting with an extra pinned profile simulates only the new
# workload's cells; everything already seen is a cell-cache hit.
"$SMOKE/simctrl" -server "$URL" -exp sweepspace -synth-n 4 -committed 40000 \
    -synth-profile "$SMOKE/profile.json" > "$SMOKE/ssweep2.txt" 2> "$SMOKE/sstats2.txt"
grep -q 'synth:' "$SMOKE/ssweep2.txt"
! grep -q '(0 cached' "$SMOKE/sstats2.txt"
! grep -q ' 0 simulated)' "$SMOKE/sstats2.txt"

# Served frontier smoke: the policy-sweep grid must come back from the
# service byte-identical to the local run.
"$SMOKE/simctrl" -server "$URL" -exp frontier -committed 60000 > "$SMOKE/frontier-served.txt"
cmp "$SMOKE/frontier-local.txt" "$SMOKE/frontier-served.txt"

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""

# Cluster smoke: a coordinator + 2 real worker processes must render
# byte-identically to the local run, keep doing so after a worker is
# SIGKILLed mid-job, and show cross-node cache-tier traffic on /metrics.
"$SMOKE/simserved" -coordinator -addr 127.0.0.1:0 -addr-file "$SMOKE/caddr" \
    -cache-dir "$SMOKE/ccache" -committed 60000 -heartbeat 250ms \
    2> "$SMOKE/coordinator.log" &
COORD_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/caddr" ] && break
    sleep 0.1
done
[ -s "$SMOKE/caddr" ] || { echo "check.sh: coordinator never published its address" >&2; cat "$SMOKE/coordinator.log" >&2; exit 1; }
CURL=$(cat "$SMOKE/caddr")

"$SMOKE/simserved" -worker -join "$CURL" -addr 127.0.0.1:0 -node smoke-1 \
    2> "$SMOKE/worker1.log" &
WORKER1_PID=$!
"$SMOKE/simserved" -worker -join "$CURL" -addr 127.0.0.1:0 -node smoke-2 \
    2> "$SMOKE/worker2.log" &
WORKER2_PID=$!
for _ in $(seq 1 100); do
    [ "$(curl -s "$CURL/cluster/v1/status" | grep -o '"node"' | wc -l)" -ge 2 ] && break
    sleep 0.1
done

# Healthy path: 2-worker output is byte-identical to the local run, and
# the resubmission makes the workers hit the shared cell tier.
"$SMOKE/simctrl" -server "$CURL" -exp table3 -committed 60000 > "$SMOKE/cluster1.txt"
cmp "$SMOKE/local.txt" "$SMOKE/cluster1.txt"
"$SMOKE/simctrl" -server "$CURL" -exp table3 -committed 60000 > "$SMOKE/cluster2.txt"
cmp "$SMOKE/local.txt" "$SMOKE/cluster2.txt"
CELL_HITS=$(curl -s "$CURL/metrics" | awk '/^specctrl_cluster_cell_hits_total/ {print $2}')
[ -n "$CELL_HITS" ] && [ "$CELL_HITS" -ge 1 ] || {
    echo "check.sh: no cross-node cell-cache hits after a resubmission (got '$CELL_HITS')" >&2
    exit 1
}

# Chaos path: SIGKILL one worker while a fresh-scale job is in flight;
# the lease TTL reassigns its units and the bytes must not change.
"$SMOKE/simctrl" -exp table3 -committed 90000 > "$SMOKE/local90.txt"
"$SMOKE/simctrl" -server "$CURL" -exp table3 -committed 90000 > "$SMOKE/cluster90.txt" &
SUBMIT_PID=$!
# Wait (briefly) for a unit to be leased so the kill lands mid-grid.
for _ in $(seq 1 50); do
    curl -s "$CURL/cluster/v1/status" | grep -q '"leased":\["u-' && break
    sleep 0.05
done
kill -KILL "$WORKER1_PID"
wait "$WORKER1_PID" || true
WORKER1_PID=""
wait "$SUBMIT_PID"
cmp "$SMOKE/local90.txt" "$SMOKE/cluster90.txt"

# Arch-tier cross-node smoke: the chaos job's committed streams were
# written through to the coordinator's shared arch tier. Replace the
# fleet with one cold worker and submit misest at the same scale — the
# arch address excludes the predictor, so the cold worker must serve
# its units by fetching those streams from the coordinator instead of
# re-simulating, and /metrics must show the traffic.
"$SMOKE/simctrl" -exp misest -committed 90000 > "$SMOKE/misest-local.txt"
kill -TERM "$WORKER2_PID"
wait "$WORKER2_PID"
WORKER2_PID=""
"$SMOKE/simserved" -worker -join "$CURL" -addr 127.0.0.1:0 -node smoke-cold \
    2> "$SMOKE/worker3.log" &
WORKER3_PID=$!
for _ in $(seq 1 100); do
    curl -s "$CURL/cluster/v1/status" | grep -q 'smoke-cold' && break
    sleep 0.1
done
"$SMOKE/simctrl" -server "$CURL" -exp misest -committed 90000 > "$SMOKE/misest-cluster.txt"
cmp "$SMOKE/misest-local.txt" "$SMOKE/misest-cluster.txt"
ARCH_PUTS=$(curl -s "$CURL/metrics" | awk '/^specctrl_cluster_archtrace_puts_total/ {print $2}')
[ -n "$ARCH_PUTS" ] && [ "$ARCH_PUTS" -ge 1 ] || {
    echo "check.sh: no arch traces were written through to the coordinator (got '$ARCH_PUTS')" >&2
    exit 1
}
ARCH_HITS=$(curl -s "$CURL/metrics" | awk '/^specctrl_cluster_archtrace_hits_total/ {print $2}')
[ -n "$ARCH_HITS" ] && [ "$ARCH_HITS" -ge 1 ] || {
    echo "check.sh: the cold worker never hit the coordinator's arch tier (got '$ARCH_HITS')" >&2
    exit 1
}

# Graceful teardown: the surviving worker and the coordinator drain on
# SIGTERM and exit 0.
kill -TERM "$WORKER3_PID"
wait "$WORKER3_PID"
WORKER3_PID=""
kill -TERM "$COORD_PID"
wait "$COORD_PID"
COORD_PID=""
