// Package specctrl is a from-scratch Go reproduction of "Confidence
// Estimation for Speculation Control" (Klauser, Grunwald, Manne,
// Pleszkun; ISCA 1998, CU-CS-854-98).
//
// The repository contains the paper's confidence estimators, the branch
// predictors they attach to, an execution-driven pipeline simulator with
// real wrong-path execution, a synthetic SPECInt95-class workload suite,
// a driver for every table and figure in the paper's evaluation, and the
// speculation-control applications (pipeline gating, SMT fetch policy,
// eager execution) the paper motivates.
//
// Start with README.md for the architecture, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for measured-vs-
// paper results. The root package holds only the benchmark harness
// (bench_test.go): one Go benchmark per paper artifact.
//
//	go run ./cmd/simctrl -list
//	go run ./examples/quickstart
package specctrl
