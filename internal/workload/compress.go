package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// compress: the inner loop of a dictionary compressor. Each step reads an
// input byte, forms a (previous-code, byte) key, and probes an open-
// addressed hash table: a hit extends the current phrase, a miss inserts
// a new code. Hit/miss branches are data dependent with a moderate bias,
// and the linear-probe chain loop has a data-dependent trip count that
// grows with table load — the classic compress/SPECint branch mix.
//
// Memory map (word addresses):
//
//	0x1000  input bytes (4096, skewed distribution)
//	0x8000  hash-table keys (4096, 0 = empty)
//	0xA000  hash-table codes (4096)
func buildCompress(seed uint64, iters int) *isa.Program {
	const (
		inputBase = 0x1000
		inputMask = 4095
		keysBase  = 0x8000
		codesBase = 0xA000
		tableMask = 4095
		loadCap   = 3000 // stop inserting at ~73% load to bound probes
	)
	b := isa.NewBuilder("compress")
	g := rng.New(seed)
	for i := int64(0); i <= inputMask; i++ {
		// AND of two uniform bytes skews toward small values, giving
		// the input the repetitiveness real compressors exploit.
		v := int64(g.Uint64()&0xff) & int64(g.Uint64()&0xff)
		b.Word(inputBase+i, v)
	}

	const (
		rI     = isa.Reg(1)  // step counter
		rLim   = isa.Reg(2)  // iteration limit
		rPrev  = isa.Reg(3)  // previous code
		rC     = isa.Reg(4)  // current input byte
		rKey   = isa.Reg(5)  // probe key
		rH     = isa.Reg(6)  // hash slot
		rT     = isa.Reg(7)  // scratch
		rKeys  = isa.Reg(8)  // keys base
		rCodes = isa.Reg(9)  // codes base
		rNext  = isa.Reg(10) // next code to assign
		rT2    = isa.Reg(11) // scratch
	)

	b.Li(rI, 0)
	b.Li(rLim, int32(iters))
	b.Li(rPrev, 0)
	b.Lui(rKeys, keysBase>>16).Ori(rKeys, rKeys, keysBase&0xffff)
	b.Lui(rCodes, codesBase>>16).Ori(rCodes, rCodes, codesBase&0xffff)
	b.Li(rNext, 1)

	b.Label("loop")
	// c = input[i & inputMask]
	b.Andi(rT, rI, inputMask)
	b.Lui(rT2, inputBase>>16).Ori(rT2, rT2, inputBase&0xffff)
	b.Add(rT, rT, rT2)
	b.Ld(rC, rT, 0)
	// key = ((prev << 8) | c) + 1   (never zero)
	b.Shli(rKey, rPrev, 8)
	b.Or(rKey, rKey, rC)
	b.Addi(rKey, rKey, 1)
	// h = (key * 0x9E3779B1) >> 13 & tableMask  (Fibonacci hashing)
	b.Lui(rT, 0x9E37).Ori(rT, rT, 0x79B1)
	b.Mul(rH, rKey, rT)
	b.Shri(rH, rH, 13)
	b.Andi(rH, rH, tableMask)

	b.Label("probe")
	b.Add(rT, rKeys, rH)
	b.Ld(rT2, rT, 0)
	b.Beq(rT2, rKey, "hit")      // data-dependent: phrase already known
	b.Beq(rT2, isa.Zero, "miss") // empty slot ends the chain
	b.Addi(rH, rH, 1)            // probe chain: variable trip count
	b.Andi(rH, rH, tableMask)
	b.Jump("probe")

	b.Label("hit")
	b.Add(rT, rCodes, rH)
	b.Ld(rPrev, rT, 0)
	b.Jump("next")

	b.Label("miss")
	// Insert only below the load cap; past it, restart the phrase.
	b.Slti(rT2, rNext, loadCap)
	b.Beq(rT2, isa.Zero, "full") // rarely taken until the table fills
	b.Add(rT, rKeys, rH)
	b.St(rKey, rT, 0)
	b.Add(rT, rCodes, rH)
	b.St(rNext, rT, 0)
	b.Addi(rNext, rNext, 1)
	b.Label("full")
	b.Mov(rPrev, rC)

	b.Label("next")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rLim, "loop")
	b.Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "compress",
		Description: "dictionary compressor: data-dependent hash hit/miss and probe chains",
		Build:       func(iters int) *isa.Program { return buildCompress(0xC0340, iters) },
		BuildSeeded: buildCompress,
	})
}
