package workload

import (
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/emu"
	"specctrl/internal/pipeline"
)

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(suite))
	}
	want := []string{"compress", "gcc", "perl", "go", "m88ksim", "xlisp", "vortex", "ijpeg"}
	for i, w := range suite {
		if w.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, w.Name, want[i])
		}
		if w.Description == "" || w.Build == nil {
			t.Errorf("%s: incomplete workload definition", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("compress"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestAllProgramsHaltOnEmulator(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(200)
			m := emu.NewMachine(p)
			n, err := m.Run(5_000_000)
			if err != nil {
				t.Fatalf("%s did not halt: %v", w.Name, err)
			}
			if n < 1000 {
				t.Errorf("%s executed only %d instructions for 200 iterations", w.Name, n)
			}
			if m.CondBranches == 0 {
				t.Errorf("%s executed no conditional branches", w.Name)
			}
		})
	}
}

func TestIterationScaling(t *testing.T) {
	// Doubling iterations should roughly double the work.
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(iters int) uint64 {
				m := emu.NewMachine(w.Build(iters))
				if _, err := m.Run(20_000_000); err != nil {
					t.Fatal(err)
				}
				return m.Executed
			}
			small, large := run(100), run(200)
			ratio := float64(large) / float64(small)
			if ratio < 1.6 || ratio > 2.4 {
				t.Errorf("%s: 2x iterations gave %vx instructions", w.Name, ratio)
			}
		})
	}
}

func TestProgramsAreDeterministic(t *testing.T) {
	for _, w := range Suite() {
		a := w.Build(50)
		b := w.Build(50)
		if len(a.Code) != len(b.Code) {
			t.Errorf("%s: code length varies between builds", w.Name)
			continue
		}
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				t.Errorf("%s: instruction %d varies between builds", w.Name, i)
				break
			}
		}
	}
}

// TestBehaviourBands pins each workload to its Table 1 behaviour class:
// gshare misprediction rate band and conditional-branch density band.
// Bands are deliberately wide — they encode the *class* (predictable vs
// hostile, branch-light vs branch-heavy), not exact numbers.
func TestBehaviourBands(t *testing.T) {
	type band struct {
		mispLo, mispHi float64 // committed gshare misprediction rate
		densLo, densHi float64 // committed cond-branch density
	}
	bands := map[string]band{
		"compress": {0.04, 0.20, 0.08, 0.30},
		"gcc":      {0.06, 0.22, 0.10, 0.30},
		"perl":     {0.02, 0.15, 0.10, 0.35},
		"go":       {0.15, 0.40, 0.10, 0.35},
		"m88ksim":  {0.005, 0.08, 0.10, 0.35},
		"xlisp":    {0.01, 0.15, 0.05, 0.30},
		"vortex":   {0.005, 0.08, 0.10, 0.35},
		"ijpeg":    {0.02, 0.20, 0.02, 0.14},
	}
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := pipeline.DefaultConfig()
			cfg.MaxCommitted = 300_000
			cfg.MaxCycles = 20_000_000
			sim := pipeline.MustNew(cfg, w.Build(1_000_000), bpred.NewGshare(12))
			st, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			bd := bands[w.Name]
			misp := st.MispredictRate()
			if misp < bd.mispLo || misp > bd.mispHi {
				t.Errorf("%s gshare mispredict rate %.3f outside band [%.3f,%.3f]",
					w.Name, misp, bd.mispLo, bd.mispHi)
			}
			dens := float64(st.CommittedBr) / float64(st.Committed)
			if dens < bd.densLo || dens > bd.densHi {
				t.Errorf("%s branch density %.3f outside band [%.3f,%.3f]",
					w.Name, dens, bd.densLo, bd.densHi)
			}
			if ratio := st.SpeculationRatio(); ratio < 1.0 || ratio > 3.0 {
				t.Errorf("%s speculation ratio %.2f implausible", w.Name, ratio)
			}
		})
	}
}

// TestSuiteSpreads checks the suite-wide properties the experiments rely
// on: go must be the least predictable benchmark, vortex or m88ksim the
// most, and ijpeg the least branch-dense.
func TestSuiteSpreads(t *testing.T) {
	misp := map[string]float64{}
	dens := map[string]float64{}
	for _, w := range Suite() {
		cfg := pipeline.DefaultConfig()
		cfg.MaxCommitted = 200_000
		cfg.MaxCycles = 20_000_000
		sim := pipeline.MustNew(cfg, w.Build(1_000_000), bpred.NewGshare(12))
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		misp[w.Name] = st.MispredictRate()
		dens[w.Name] = float64(st.CommittedBr) / float64(st.Committed)
	}
	for name, m := range misp {
		if name == "go" {
			continue
		}
		if m >= misp["go"] {
			t.Errorf("go should be least predictable: go=%.3f %s=%.3f", misp["go"], name, m)
		}
	}
	for name, d := range dens {
		if name == "ijpeg" {
			continue
		}
		if d <= dens["ijpeg"] {
			t.Errorf("ijpeg should be least branch-dense: ijpeg=%.3f %s=%.3f", dens["ijpeg"], name, d)
		}
	}
}

func BenchmarkBuildSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range Suite() {
			_ = w.Build(100)
		}
	}
}

func TestSeededBuildsShareCode(t *testing.T) {
	// Changing the input seed must change only data, never code: the
	// static estimator's profile is keyed by branch-site PC and must
	// transfer across inputs.
	for _, w := range Suite() {
		a := w.BuildSeeded(1, 100)
		b := w.BuildSeeded(2, 100)
		if len(a.Code) != len(b.Code) {
			t.Errorf("%s: code length differs across seeds", w.Name)
			continue
		}
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				t.Errorf("%s: instruction %d differs across seeds", w.Name, i)
				break
			}
		}
	}
}

func TestDefaultSeedMatchesBuild(t *testing.T) {
	// Build must be BuildSeeded at the benchmark's reference seed.
	seeds := map[string]uint64{
		"compress": 0xC0340, "gcc": 0x6CC, "perl": 0x9E21, "go": 0x60B0A2D,
		"m88ksim": 0x88, "xlisp": 0x115B, "vortex": 0x50B7E, "ijpeg": 0x17E6,
	}
	for _, w := range Suite() {
		a := w.Build(50)
		b := w.BuildSeeded(seeds[w.Name], 50)
		if len(a.Data) != len(b.Data) {
			t.Errorf("%s: default build differs from seeded build", w.Name)
			continue
		}
		for addr, v := range a.Data {
			if b.Data[addr] != v {
				t.Errorf("%s: data differs at %d", w.Name, addr)
				break
			}
		}
	}
}

func TestSeededBuildsDifferInData(t *testing.T) {
	// Except for m88ksim (whose simulated target program is fixed),
	// different seeds must produce different data images.
	for _, w := range Suite() {
		if w.Name == "m88ksim" {
			continue
		}
		a := w.BuildSeeded(1, 100)
		b := w.BuildSeeded(2, 100)
		same := true
		for addr, v := range a.Data {
			if b.Data[addr] != v {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical data", w.Name)
		}
	}
}
