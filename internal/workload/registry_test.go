package workload

import (
	"errors"
	"strings"
	"testing"

	"specctrl/internal/isa"
)

// TestBuiltinNames pins the built-in suite: exactly the paper's eight
// benchmarks, in Table 1 order, all registered, and none carrying the
// dynamic-registration namespace.
func TestBuiltinNames(t *testing.T) {
	want := []string{"compress", "gcc", "perl", "go", "m88ksim", "xlisp", "vortex", "ijpeg"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite has %d workloads, want %d", len(suite), len(want))
	}
	for i, w := range suite {
		if w.Name != want[i] {
			t.Errorf("Suite[%d] = %q, want %q", i, w.Name, want[i])
		}
	}
	for _, n := range Names() {
		found := false
		for _, b := range want {
			if n == b {
				found = true
			}
		}
		if !found && !strings.HasPrefix(n, SynthPrefix) {
			t.Errorf("registered name %q is neither a built-in nor in the %q namespace", n, SynthPrefix)
		}
	}
}

func dummyBuild(iters int) *isa.Program {
	b := isa.NewBuilder("dummy")
	b.Halt()
	return b.MustBuild()
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Workload{}); err == nil {
		t.Error("Register accepted an empty name")
	}
	if err := Register(Workload{Name: SynthPrefix + "nobuild"}); err == nil {
		t.Error("Register accepted nil Build")
	}
	err := Register(Workload{
		Name:        "freeform",
		Build:       dummyBuild,
		BuildSeeded: func(_ uint64, iters int) *isa.Program { return dummyBuild(iters) },
	})
	if err == nil {
		t.Error("Register accepted a dynamic name outside the synth: namespace")
	}
}

func TestRegisterDuplicateTyped(t *testing.T) {
	w := Workload{
		Name:        SynthPrefix + "registry-test-dup",
		Build:       dummyBuild,
		BuildSeeded: func(_ uint64, iters int) *isa.Program { return dummyBuild(iters) },
	}
	if err := Register(w); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	err := Register(w)
	var dup *DuplicateError
	if !errors.As(err, &dup) {
		t.Fatalf("second Register = %v, want *DuplicateError", err)
	}
	if dup.Name != w.Name {
		t.Fatalf("DuplicateError.Name = %q, want %q", dup.Name, w.Name)
	}
	// A built-in name is also a duplicate, typed the same way.
	w.Name = "gcc"
	if err := Register(w); !errors.As(err, &dup) {
		t.Fatalf("Register(gcc) = %v, want *DuplicateError", err)
	}
	if got, err := ByName(SynthPrefix + "registry-test-dup"); err != nil || got.Name != SynthPrefix+"registry-test-dup" {
		t.Fatalf("ByName after Register: %v, %v", got, err)
	}
}
