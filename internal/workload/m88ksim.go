package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// m88ksim: an instruction-set simulator simulating a loop-heavy target
// program — the most predictable benchmark in the paper's Table 1. The
// simulated target spends nearly all its time in tight counted loops, so
// the host simulator's decode and execute branches are strongly biased:
// the same few target instructions recur, exception checks never fire,
// and the fetch loop is dominated by one back edge.
//
// Memory map:
//
//	0x1000  target program (simple encoded ops)
//	0x2000  target registers (32)
func buildM88ksim(seed uint64, iters int) *isa.Program {
	const (
		tprogBase = 0x1000
		tregsBase = 0x2000
	)
	b := isa.NewBuilder("m88ksim")
	g := rng.New(seed)
	_ = g

	// Target program: op encodings — 1 = addi r, 2 = cmp-and-loop,
	// 3 = nop, 0 = halt-target (restart). A tiny counted loop repeated.
	tprog := []int64{
		1, 3, 1, 3, 1, // add/nop mix
		2, // loop back to 0 until counter expires
		0, // target halt
	}
	for i, v := range tprog {
		b.Word(tprogBase+int64(i), v)
	}

	const (
		rIt  = isa.Reg(1)
		rLim = isa.Reg(2)
		rTPC = isa.Reg(3) // target PC
		rOp  = isa.Reg(4)
		rT   = isa.Reg(5)
		rT2  = isa.Reg(6)
		rCnt = isa.Reg(7) // target loop counter
		rAcc = isa.Reg(8) // target register value
		rExc = isa.Reg(9) // exception flag (never set)
	)

	b.Li(rIt, 0)
	b.Li(rLim, int32(iters))
	b.Li(rExc, 0)
	b.Label("restart")
	b.Li(rTPC, 0)
	b.Li(rCnt, 12) // target loop trip count
	b.Li(rAcc, 0)

	b.Label("fetch")
	// Exception check: never taken (strongly biased).
	b.Bne(rExc, isa.Zero, "exception")
	b.Li(rT, tprogBase)
	b.Add(rT, rT, rTPC)
	b.Ld(rOp, rT, 0)
	b.Addi(rTPC, rTPC, 1)

	// Decode: dominated by ops 1 and 3.
	b.Li(rT, 1)
	b.Beq(rOp, rT, "exAdd")
	b.Li(rT, 3)
	b.Beq(rOp, rT, "exNop")
	b.Li(rT, 2)
	b.Beq(rOp, rT, "exLoop")
	// op 0: target halted; restart or finish.
	b.Addi(rIt, rIt, 1)
	b.Blt(rIt, rLim, "restart")
	b.Halt()

	b.Label("exAdd")
	b.Addi(rAcc, rAcc, 7)
	// Write-back to the simulated register file.
	b.Li(rT, tregsBase)
	b.St(rAcc, rT, 1)
	b.Jump("fetch")

	b.Label("exNop")
	b.Jump("fetch")

	b.Label("exLoop")
	b.Addi(rCnt, rCnt, -1)
	b.Beq(rCnt, isa.Zero, "fetch") // falls out of the target loop once
	b.Li(rTPC, 0)                  // loop back (taken 11 of 12 times)
	b.Jump("fetch")

	b.Label("exception")
	// Unreachable; present so the check above has a real target.
	b.Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "m88ksim",
		Description: "ISA simulator: strongly biased decode and never-taken checks",
		Build:       func(iters int) *isa.Program { return buildM88ksim(0x88, iters) },
		BuildSeeded: buildM88ksim,
	})
}
