package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// perl: a bytecode interpreter running a small synthetic script. The
// script (generated once, with its own internal loops) repeats, so the
// opcode sequence seen by the dispatch branches is highly structured —
// global-history predictors learn the interpreted program's shape, which
// is exactly how real interpreters behave: moderately predictable
// dispatch, with occasional data-dependent conditional ops.
//
// Bytecode ops: 0 PUSHI, 1 ADD, 2 SUB, 3 DUP, 4 DROP, 5 JNZ (back),
// 6 LOADT, 7 HALTSCRIPT (restart).
//
// Memory map:
//
//	0x1000  bytecode (ops)        0x2000  bytecode immediates
//	0x3000  value stack           0x3800  data table (random)
func buildPerl(seed uint64, iters int) *isa.Program {
	const (
		codeBase = 0x1000
		immBase  = 0x2000
		stkBase  = 0x3000
		tabBase  = 0x3800
		tabMask  = 1023
	)
	b := isa.NewBuilder("perl")
	g := rng.New(seed)

	// Generate the script: a sequence of basic blocks, each a short op
	// run ending in a counted JNZ loop back, finishing with HALTSCRIPT.
	type op struct{ code, imm int64 }
	var script []op
	for blk := 0; blk < 6; blk++ {
		start := len(script)
		n := 3 + g.Intn(5)
		for j := 0; j < n; j++ {
			switch g.Intn(5) {
			case 0:
				script = append(script, op{0, int64(g.Intn(100))}) // PUSHI
			case 1:
				script = append(script, op{1, 0}) // ADD
			case 2:
				script = append(script, op{3, 0}) // DUP
			case 3:
				script = append(script, op{6, int64(g.Intn(1024))}) // LOADT
			default:
				script = append(script, op{2, 0}) // SUB
			}
		}
		// Loop the block 3 times: PUSHI count done at entry would need
		// a counter slot; instead JNZ uses a dedicated loop counter
		// initialized by imm (count) and decremented by the op itself.
		script = append(script, op{5, int64(start)}) // JNZ back to start
	}
	script = append(script, op{7, 0})
	for i, o := range script {
		b.Word(codeBase+int64(i), o.code)
		b.Word(immBase+int64(i), o.imm)
	}
	for i := int64(0); i <= tabMask; i++ {
		b.Word(tabBase+i, int64(g.Uint64()&0xff))
	}

	const (
		rIt   = isa.Reg(1)  // outer iterations (script restarts)
		rLim  = isa.Reg(2)  //
		rIP   = isa.Reg(3)  // interpreter instruction pointer
		rSP   = isa.Reg(4)  // value-stack pointer (grows up)
		rOp   = isa.Reg(5)  //
		rImm  = isa.Reg(6)  //
		rT    = isa.Reg(7)  //
		rT2   = isa.Reg(8)  //
		rLoop = isa.Reg(9)  // JNZ loop counter
		rTOS  = isa.Reg(10) // cached top-of-stack
	)

	b.Li(rIt, 0)
	b.Li(rLim, int32(iters))
	b.Label("restart")
	b.Li(rIP, 0)
	b.Li(rSP, stkBase)
	b.Li(rLoop, 3) // every JNZ loops 3 times per restart
	b.Li(rTOS, 0)

	b.Label("dispatch")
	b.Li(rT, codeBase)
	b.Add(rT, rT, rIP)
	b.Ld(rOp, rT, 0)
	b.Li(rT, immBase)
	b.Add(rT, rT, rIP)
	b.Ld(rImm, rT, 0)
	b.Addi(rIP, rIP, 1)

	// Dispatch chain (interpreters before computed goto): compare ops in
	// frequency order.
	b.Li(rT, 0)
	b.Beq(rOp, rT, "opPUSHI")
	b.Li(rT, 1)
	b.Beq(rOp, rT, "opADD")
	b.Li(rT, 2)
	b.Beq(rOp, rT, "opSUB")
	b.Li(rT, 3)
	b.Beq(rOp, rT, "opDUP")
	b.Li(rT, 5)
	b.Beq(rOp, rT, "opJNZ")
	b.Li(rT, 6)
	b.Beq(rOp, rT, "opLOADT")
	// op 7: end of script.
	b.Addi(rIt, rIt, 1)
	b.Blt(rIt, rLim, "restart")
	b.Halt()

	b.Label("opPUSHI")
	b.St(rTOS, rSP, 0)
	b.Addi(rSP, rSP, 1)
	b.Mov(rTOS, rImm)
	b.Jump("dispatch")

	b.Label("opADD")
	b.Addi(rSP, rSP, -1)
	b.Ld(rT, rSP, 0)
	b.Add(rTOS, rTOS, rT)
	b.Jump("dispatch")

	b.Label("opSUB")
	b.Addi(rSP, rSP, -1)
	b.Ld(rT, rSP, 0)
	b.Sub(rTOS, rT, rTOS)
	b.Jump("dispatch")

	b.Label("opDUP")
	b.St(rTOS, rSP, 0)
	b.Addi(rSP, rSP, 1)
	b.Jump("dispatch")

	b.Label("opLOADT")
	// Data-dependent: index the random table with TOS+imm and branch on
	// the value's parity before folding it in.
	b.Add(rT, rTOS, rImm)
	b.Andi(rT, rT, tabMask)
	b.Li(rT2, tabBase)
	b.Add(rT, rT, rT2)
	b.Ld(rT, rT, 0)
	b.Andi(rT2, rT, 1)
	b.Beq(rT2, isa.Zero, "evenT")
	b.Add(rTOS, rTOS, rT)
	b.Jump("dispatch")
	b.Label("evenT")
	b.Xor(rTOS, rTOS, rT)
	b.Jump("dispatch")

	b.Label("opJNZ")
	b.Addi(rLoop, rLoop, -1)
	b.Beq(rLoop, isa.Zero, "jnzDone")
	b.Mov(rIP, rImm) // loop back
	b.Jump("dispatch")
	b.Label("jnzDone")
	b.Li(rLoop, 3) // reload for the next block
	b.Jump("dispatch")

	// Stack safety: the script is generated so SP stays in range; the
	// stack region is 0x800 words and blocks are at most 8 ops deep
	// looped 3 times.
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "perl",
		Description: "bytecode interpreter: structured dispatch, learnable by history",
		Build:       func(iters int) *isa.Program { return buildPerl(0x9E21, iters) },
		BuildSeeded: buildPerl,
	})
}
