package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// vortex: object-database transactions, the most predictable large
// benchmark in the paper's Table 1 (≈1-2% gshare misprediction). Each
// transaction walks a chain of object records, and on every record runs
// validity checks that almost always pass — the hallmark of vortex's
// highly biased branch profile — then updates a field. A small fraction
// of lookups miss and take an early-out path.
//
// Record layout (4 words): [0] valid flag (1 except rare poison),
// [1] type tag (0 except rare), [2] next index, [3] payload.
//
// Memory map:
//
//	0x1000  object records (1024 × 4 words)
func buildVortex(seed uint64, iters int) *isa.Program {
	const (
		recBase = 0x1000
		numRecs = 1024
	)
	b := isa.NewBuilder("vortex")
	g := rng.New(seed)

	perm := g.Perm(numRecs) // random chain order
	for i := 0; i < numRecs; i++ {
		a := recBase + int64(i)*4
		valid, tag := int64(1), int64(0)
		if g.Bool(0.02) {
			valid = 0 // rare invalid record
		}
		if g.Bool(0.03) {
			tag = 1 // rare special type
		}
		b.Word(a, valid)
		b.Word(a+1, tag)
		b.Word(a+2, int64(perm[i]))
		b.Word(a+3, int64(g.Intn(1<<20)))
	}

	const (
		rIt   = isa.Reg(1)
		rLim  = isa.Reg(2)
		rIdx  = isa.Reg(3) // current record index
		rAddr = isa.Reg(4)
		rT    = isa.Reg(5)
		rAcc  = isa.Reg(6)
		rJ    = isa.Reg(7)
	)

	b.Li(rIt, 0)
	b.Li(rLim, int32(iters))
	b.Li(rIdx, 0)
	b.Li(rAcc, 0)

	b.Label("txn")
	// Each transaction touches 8 records along the chain.
	b.Li(rJ, 0)
	b.Label("walk")
	b.Shli(rAddr, rIdx, 2)
	b.Li(rT, recBase)
	b.Add(rAddr, rAddr, rT)
	// Validity check: passes ~98% of the time.
	b.Ld(rT, rAddr, 0)
	b.Beq(rT, isa.Zero, "invalid")
	// Type check: ordinary ~97% of the time.
	b.Ld(rT, rAddr, 1)
	b.Bne(rT, isa.Zero, "special")
	// Common path: fold the payload, advance the chain.
	b.Ld(rT, rAddr, 3)
	b.Add(rAcc, rAcc, rT)
	b.Label("advance")
	b.Ld(rIdx, rAddr, 2)
	b.Addi(rJ, rJ, 1)
	b.Slti(rT, rJ, 8)
	b.Bne(rT, isa.Zero, "walk")
	b.Addi(rIt, rIt, 1)
	b.Blt(rIt, rLim, "txn")
	b.Halt()

	b.Label("invalid")
	// Early out: skip the record.
	b.Addi(rIdx, rIdx, 1)
	b.Andi(rIdx, rIdx, numRecs-1)
	b.Jump("advanceFromInvalid")
	b.Label("special")
	b.Ld(rT, rAddr, 3)
	b.Xor(rAcc, rAcc, rT)
	b.Jump("advance")
	b.Label("advanceFromInvalid")
	b.Shli(rAddr, rIdx, 2)
	b.Li(rT, recBase)
	b.Add(rAddr, rAddr, rT)
	b.Jump("advance")
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "vortex",
		Description: "object database: validity checks that almost always pass",
		Build:       func(iters int) *isa.Program { return buildVortex(0x50B7E, iters) },
		BuildSeeded: buildVortex,
	})
}
