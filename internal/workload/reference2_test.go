package workload

// Reference models for the remaining benchmarks: go, m88ksim, gcc, perl.

import (
	"testing"

	"specctrl/internal/rng"
)

func TestGoReferenceModel(t *testing.T) {
	const iters = 5000
	m := runWorkload(t, "go", iters)

	g := rng.New(0x60B0A2D)
	board := make([]int64, 2048)
	for i := range board {
		board[i] = int64(g.Uint64() >> 8)
	}
	state, score := int64(0x1234), int64(0)
	const mult = 0x2545<<16 | 0x4F91
	for i := int64(0); i < iters; i++ {
		state ^= board[state&2047]
		state = state*mult + i
		h := int64(uint64(state) >> 16)
		if h&1 != 0 {
			score += 3
		}
		if h&4 != 0 {
			score -= h
		}
		if h&16 != 0 {
			score ^= state
		}
		if h&64 != 0 {
			score++
		}
		for j := int64(0); j < 4; j++ {
			score += j
		}
	}
	// Register assignments from go.go: r3 = state, r7 = score.
	if got := m.State.Regs[3]; got != state {
		t.Errorf("state: emulated %d, model %d", got, state)
	}
	if got := m.State.Regs[7]; got != score {
		t.Errorf("score: emulated %d, model %d", got, score)
	}
}

func TestM88ksimReferenceModel(t *testing.T) {
	const iters = 500
	m := runWorkload(t, "m88ksim", iters)

	// Native model of the simulated target: per restart, the target
	// program [1,3,1,3,1,2,0] runs with a 12-trip loop at op 2.
	tprog := []int64{1, 3, 1, 3, 1, 2, 0}
	var acc, treg int64
	for it := 0; it < iters; it++ {
		tpc, cnt := 0, int64(12)
		acc = 0
		for {
			op := tprog[tpc]
			tpc++
			if op == 0 {
				break
			}
			switch op {
			case 1:
				acc += 7
				treg = acc
			case 2:
				cnt--
				if cnt != 0 {
					tpc = 0
				}
			}
		}
	}
	// Register assignments from m88ksim.go: r8 = acc; simulated target
	// register file at 0x2000.
	if got := m.State.Regs[8]; got != acc {
		t.Errorf("acc: emulated %d, model %d", got, acc)
	}
	if got := m.Mem.Read(0x2000 + 1); got != treg {
		t.Errorf("target reg: emulated %d, model %d", got, treg)
	}
	if got := m.State.Regs[1]; got != iters {
		t.Errorf("restarts: emulated %d, model %d", got, iters)
	}
}

func TestGCCReferenceModel(t *testing.T) {
	const iters = 8000
	m := runWorkload(t, "gcc", iters)

	// Replicate the stream generation (Markov ops, skewed operand a).
	g := rng.New(0x6CC)
	const handlers = 16
	ops := make([]int64, 8192)
	as := make([]int64, 8192)
	bs := make([]int64, 8192)
	prev := 0
	for i := range ops {
		var op int
		if g.Bool(0.6) {
			op = (prev*5 + 3) % handlers
		} else {
			op = g.Intn(handlers) * g.Intn(handlers) / handlers
		}
		prev = op
		ops[i] = int64(op)
		as[i] = int64(g.Uint64() & g.Uint64() & 0xffff)
		bs[i] = int64(g.Uint64() & 0xffff)
	}

	var acc int64
	for i := 0; i < iters; i++ {
		idx := i & 8191
		op, a, b := ops[idx], as[idx], bs[idx]
		switch op % 4 {
		case 0: // constant-fold: rare equality path adds 1, else adds a
			if a == b {
				acc++
			} else {
				acc += a
			}
		case 1: // strength-reduce: biased low-bit test
			if a&3 != 0 {
				acc += b
			} else {
				acc += 2 * a
			}
		case 2: // range check
			if !(a < b) {
				acc -= b
			}
		case 3: // sign-ish bit test
			if a&0x80 != 0 {
				acc ^= b
			}
		}
	}
	// Register assignment from gcc.go: r8 = acc.
	if got := m.State.Regs[8]; got != acc {
		t.Errorf("acc: emulated %d, model %d", got, acc)
	}
}

func TestPerlReferenceModel(t *testing.T) {
	const iters = 300
	m := runWorkload(t, "perl", iters)

	// Replicate script generation (draw order matters: per block,
	// length then per-op draws) and the data table.
	g := rng.New(0x9E21)
	type op struct{ code, imm int64 }
	var script []op
	for blk := 0; blk < 6; blk++ {
		start := len(script)
		n := 3 + g.Intn(5)
		for j := 0; j < n; j++ {
			switch g.Intn(5) {
			case 0:
				script = append(script, op{0, int64(g.Intn(100))})
			case 1:
				script = append(script, op{1, 0})
			case 2:
				script = append(script, op{3, 0})
			case 3:
				script = append(script, op{6, int64(g.Intn(1024))})
			default:
				script = append(script, op{2, 0})
			}
		}
		script = append(script, op{5, int64(start)})
	}
	script = append(script, op{7, 0})
	tab := make([]int64, 1024)
	for i := range tab {
		tab[i] = int64(g.Uint64() & 0xff)
	}

	// Native VM with the assembly's exact stack semantics: TOS cached
	// in a register, the rest in word memory; pops below the stack base
	// read zeros.
	stack := map[int64]int64{}
	var tos int64
	var it int
	for it = 0; it < iters; it++ {
		ip, sp, loop := 0, int64(0x3000), int64(3)
		tos = 0
		for {
			o := script[ip]
			ip++
			done := false
			switch o.code {
			case 0: // PUSHI
				stack[sp] = tos
				sp++
				tos = o.imm
			case 1: // ADD
				sp--
				tos += stack[sp]
			case 2: // SUB
				sp--
				tos = stack[sp] - tos
			case 3: // DUP
				stack[sp] = tos
				sp++
			case 6: // LOADT
				v := tab[(tos+o.imm)&1023]
				if v&1 != 0 {
					tos += v
				} else {
					tos ^= v
				}
			case 5: // JNZ
				loop--
				if loop != 0 {
					ip = int(o.imm)
				} else {
					loop = 3
				}
			case 7:
				done = true
			}
			if done {
				break
			}
		}
	}
	// Register assignments from perl.go: r10 = TOS, r1 = iterations.
	if got := m.State.Regs[10]; got != tos {
		t.Errorf("tos: emulated %d, model %d", got, tos)
	}
	if got := m.State.Regs[1]; got != int64(it) {
		t.Errorf("iterations: emulated %d, model %d", got, it)
	}
}
