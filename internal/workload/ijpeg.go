package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// ijpeg: image block processing — the lowest branch density in the
// paper's Table 1 (≈8% of instructions are conditional branches, versus
// ≈15-20% elsewhere). Each step runs an 8-point transform over a block
// row: a fixed-trip inner loop of straight-line multiply-accumulate
// arithmetic (perfectly predictable back edge), followed by a clamping
// pass whose saturation branches depend on the data and fire on a
// minority of samples.
//
// Memory map:
//
//	0x1000  image samples (8192 words)
//	0x4000  coefficient table (8)
//	0x5000  output samples
func buildIjpeg(seed uint64, iters int) *isa.Program {
	const (
		imgBase  = 0x1000
		imgMask  = 8191
		coefBase = 0x4000
		outBase  = 0x5000
	)
	b := isa.NewBuilder("ijpeg")
	g := rng.New(seed)
	for i := int64(0); i <= imgMask; i++ {
		// Smooth-ish image: neighboring samples correlate.
		v := int64(g.Intn(64)) + int64(g.Intn(64)) + 64
		b.Word(imgBase+i, v)
	}
	for i := int64(0); i < 8; i++ {
		b.Word(coefBase+i, int64(g.Intn(7))-3)
	}

	const (
		rIt   = isa.Reg(1)
		rLim  = isa.Reg(2)
		rRow  = isa.Reg(3) // row base offset into the image
		rJ    = isa.Reg(4) // inner index
		rAcc  = isa.Reg(5)
		rT    = isa.Reg(6)
		rT2   = isa.Reg(7)
		rCoef = isa.Reg(8)
		rHi   = isa.Reg(9) // clamp limit
	)

	b.Li(rIt, 0)
	b.Li(rLim, int32(iters))
	b.Li(rHi, 255)

	b.Label("loop")
	// Row base walks the image.
	b.Shli(rRow, rIt, 3)
	b.Andi(rRow, rRow, imgMask)

	// Transform: acc = sum(coef[j] * img[row+j]), 8 straight-line taps
	// driven by a counted loop (predictable).
	b.Li(rAcc, 0)
	b.Li(rJ, 0)
	b.Label("taps")
	b.Li(rT, coefBase)
	b.Add(rT, rT, rJ)
	b.Ld(rCoef, rT, 0)
	b.Li(rT, imgBase)
	b.Add(rT, rT, rRow)
	b.Add(rT, rT, rJ)
	b.Ld(rT, rT, 0)
	b.Mul(rT, rT, rCoef)
	b.Add(rAcc, rAcc, rT)
	// Unrolled arithmetic filler: scale and bias (no branches).
	b.Shli(rT2, rAcc, 1)
	b.Add(rT2, rT2, rAcc)
	b.Shri(rT2, rT2, 2)
	b.Addi(rJ, rJ, 1)
	b.Slti(rT, rJ, 8)
	b.Bne(rT, isa.Zero, "taps")

	// Level-shift into a window straddling the displayable range, so
	// the saturation branches below actually depend on the data: keep
	// 9 significant bits and center them on [0,255].
	b.Shri(rAcc, rAcc, 2)
	b.Andi(rAcc, rAcc, 511)
	b.Addi(rAcc, rAcc, -128)
	b.Blt(rAcc, isa.Zero, "clampLo")
	b.Blt(rHi, rAcc, "clampHi")
	b.Label("store")
	// Quantization rounding: a data-dependent branch on a middle bit of
	// the sample (ijpeg's occasional hard branch).
	b.Andi(rT, rAcc, 16)
	b.Beq(rT, isa.Zero, "noRound")
	b.Addi(rAcc, rAcc, 1)
	b.Label("noRound")
	b.Andi(rT, rIt, imgMask)
	b.Li(rT2, outBase)
	b.Add(rT, rT, rT2)
	b.St(rAcc, rT, 0)
	b.Addi(rIt, rIt, 1)
	b.Blt(rIt, rLim, "loop")
	b.Halt()

	b.Label("clampLo")
	b.Li(rAcc, 0)
	b.Jump("store")
	b.Label("clampHi")
	b.Li(rAcc, 255)
	b.Jump("store")
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "ijpeg",
		Description: "block transform: fixed-trip loops, low branch density, clamping",
		Build:       func(iters int) *isa.Program { return buildIjpeg(0x17E6, iters) },
		BuildSeeded: buildIjpeg,
	})
}
