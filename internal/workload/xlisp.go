package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// xlisp: a recursive expression-tree evaluator, standing in for the lisp
// interpreter. A random binary expression tree (internal nodes = operator
// cells, leaves = value cells) is built into memory; the program
// recursively evaluates it over and over, using a real call stack
// (call/ret through RA, spills to an SP-based stack). Branch behaviour:
// the node-type test follows the tree shape (learnable but deep), the
// operator choice is data dependent, and call/ret density is the highest
// in the suite.
//
// Node layout (3 words): [0] tag (0 = leaf, 1 = op node), [1] left child
// address or value, [2] right child address or operator selector.
//
// Memory map:
//
//	0x1000   tree nodes
//	0x40000  call stack (grows down)
func buildXlisp(seed uint64, iters int) *isa.Program {
	const (
		nodeBase = 0x1000
		stackTop = 0x40000
		depthMax = 8
	)
	b := isa.NewBuilder("xlisp")
	g := rng.New(seed)

	// Build the tree into the data image.
	next := int64(nodeBase)
	alloc := func() int64 {
		a := next
		next += 3
		return a
	}
	var gen func(depth int) int64
	gen = func(depth int) int64 {
		a := alloc()
		if depth >= depthMax || g.Bool(0.25) {
			b.Word(a, 0) // leaf
			b.Word(a+1, int64(g.Intn(1000)))
			b.Word(a+2, 0)
			return a
		}
		b.Word(a, 1) // op node
		l := gen(depth + 1)
		r := gen(depth + 1)
		b.Word(a+1, l)
		b.Word(a+2, r)
		// Operator selector stored in the tag's high bits.
		b.Word(a, 1+int64(g.Intn(3))<<1)
		return a
	}
	root := gen(0)

	const (
		rIt  = isa.Reg(1)
		rLim = isa.Reg(2)
		rArg = isa.Reg(10) // argument: node address
		rRes = isa.Reg(11) // result value
		rT   = isa.Reg(12)
		rTag = isa.Reg(13)
	)

	b.Li(rIt, 0)
	b.Li(rLim, int32(iters))
	b.Li(isa.SP, stackTop)

	b.Label("main")
	b.Li(rArg, int32(root))
	b.Call("eval")
	b.Addi(rIt, rIt, 1)
	b.Blt(rIt, rLim, "main")
	b.Halt()

	// eval(node) -> rRes. Clobbers rT, rTag.
	b.Label("eval")
	b.Ld(rTag, rArg, 0)
	b.Andi(rT, rTag, 1)
	b.Bne(rT, isa.Zero, "evalOp")
	// Leaf: return its value.
	b.Ld(rRes, rArg, 1)
	b.Ret()

	b.Label("evalOp")
	// Save RA, the node, and later the left result on the stack.
	b.Addi(isa.SP, isa.SP, -3)
	b.St(isa.RA, isa.SP, 0)
	b.St(rArg, isa.SP, 1)
	// Evaluate left child.
	b.Ld(rArg, rArg, 1)
	b.Call("eval")
	b.St(rRes, isa.SP, 2)
	// Evaluate right child.
	b.Ld(rArg, isa.SP, 1)
	b.Ld(rArg, rArg, 2)
	b.Call("eval")
	// Combine according to the operator selector.
	b.Ld(rArg, isa.SP, 1)
	b.Ld(rTag, rArg, 0)
	b.Shri(rTag, rTag, 1) // selector 0..2
	b.Ld(rT, isa.SP, 2)   // left value
	b.Li(rArg, 1)
	b.Beq(rTag, rArg, "opSub")
	b.Li(rArg, 2)
	b.Beq(rTag, rArg, "opXor")
	b.Add(rRes, rT, rRes)
	b.Jump("evalDone")
	b.Label("opSub")
	b.Sub(rRes, rT, rRes)
	b.Jump("evalDone")
	b.Label("opXor")
	b.Xor(rRes, rT, rRes)
	b.Label("evalDone")
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 3)
	b.Ret()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "xlisp",
		Description: "recursive tree evaluator: call/ret heavy, shape-dependent branches",
		Build:       func(iters int) *isa.Program { return buildXlisp(0x115B, iters) },
		BuildSeeded: buildXlisp,
	})
}
