package workload

// Reference-model tests: each test reimplements a workload's algorithm
// natively in Go — including its data generation — and checks the
// emulated program's architectural results against it. This validates
// that the assembly actually computes the algorithm it claims to
// (deliverable-level validation, not just "it halts").

import (
	"testing"

	"specctrl/internal/emu"
	"specctrl/internal/rng"
)

func runWorkload(t *testing.T, name string, iters int) *emu.Machine {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(w.Build(iters))
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompressReferenceModel(t *testing.T) {
	const iters = 5000
	m := runWorkload(t, "compress", iters)

	// Native model, replicating compress.go exactly.
	g := rng.New(0xC0340)
	input := make([]int64, 4096)
	for i := range input {
		input[i] = int64(g.Uint64()&0xff) & int64(g.Uint64()&0xff)
	}
	keys := make([]int64, 4096)
	codes := make([]int64, 4096)
	prev, next := int64(0), int64(1)
	for i := 0; i < iters; i++ {
		c := input[i&4095]
		key := (prev<<8 | c) + 1
		h := (key * 0x9E3779B1) >> 13 & 4095
		for {
			switch keys[h] {
			case key:
				prev = codes[h]
			case 0:
				if next < 3000 {
					keys[h] = key
					codes[h] = next
					next++
				}
				prev = c
			default:
				h = (h + 1) & 4095
				continue
			}
			break
		}
	}

	// Register assignments from compress.go: r3 = prev, r10 = next.
	if got := m.State.Regs[3]; got != prev {
		t.Errorf("prev: emulated %d, model %d", got, prev)
	}
	if got := m.State.Regs[10]; got != next {
		t.Errorf("next code: emulated %d, model %d", got, next)
	}
	// Hash-table contents must match exactly.
	for h := int64(0); h < 4096; h++ {
		if m.Mem.Read(0x8000+h) != keys[h] {
			t.Fatalf("keys[%d]: emulated %d, model %d", h, m.Mem.Read(0x8000+h), keys[h])
		}
		if m.Mem.Read(0xA000+h) != codes[h] {
			t.Fatalf("codes[%d]: emulated %d, model %d", h, m.Mem.Read(0xA000+h), codes[h])
		}
	}
}

func TestVortexReferenceModel(t *testing.T) {
	const iters = 2000
	m := runWorkload(t, "vortex", iters)

	// Native model, replicating vortex.go exactly (RNG draw order:
	// Perm first, then per record valid, tag, payload).
	g := rng.New(0x50B7E)
	perm := g.Perm(1024)
	type rec struct{ valid, tag, next, payload int64 }
	recs := make([]rec, 1024)
	for i := range recs {
		r := rec{valid: 1, next: int64(perm[i])}
		if g.Bool(0.02) {
			r.valid = 0
		}
		if g.Bool(0.03) {
			r.tag = 1
		}
		r.payload = int64(g.Intn(1 << 20))
		recs[i] = r
	}

	idx, acc := int64(0), int64(0)
	for it := 0; it < iters; it++ {
		for j := 0; j < 8; j++ {
			r := recs[idx]
			switch {
			case r.valid == 0:
				idx = (idx + 1) & 1023
				r = recs[idx]
			case r.tag != 0:
				acc ^= r.payload
			default:
				acc += r.payload
			}
			idx = r.next
		}
	}

	// Register assignments from vortex.go: r6 = acc, r3 = idx.
	if got := m.State.Regs[6]; got != acc {
		t.Errorf("acc: emulated %d, model %d", got, acc)
	}
	if got := m.State.Regs[3]; got != idx {
		t.Errorf("idx: emulated %d, model %d", got, idx)
	}
}

func TestIjpegReferenceModel(t *testing.T) {
	const iters = 3000
	m := runWorkload(t, "ijpeg", iters)

	// Native model, replicating ijpeg.go exactly (image drawn first,
	// two draws per sample, then 8 coefficient draws).
	g := rng.New(0x17E6)
	img := make([]int64, 8192)
	for i := range img {
		img[i] = int64(g.Intn(64)) + int64(g.Intn(64)) + 64
	}
	coef := make([]int64, 8)
	for i := range coef {
		coef[i] = int64(g.Intn(7)) - 3
	}

	out := make([]int64, 8192)
	for it := int64(0); it < iters; it++ {
		row := (it << 3) & 8191
		acc := int64(0)
		for j := int64(0); j < 8; j++ {
			acc += coef[j] * img[row+j]
		}
		// Level shift: logical >>2, keep 9 bits, center on [0,255].
		acc = int64(uint64(acc)>>2)&511 - 128
		if acc < 0 {
			acc = 0
		} else if acc > 255 {
			acc = 255
		}
		if acc&16 != 0 {
			acc++
		}
		out[it&8191] = acc
	}

	for i := int64(0); i < min64(iters, 8192); i++ {
		if got := m.Mem.Read(0x5000 + i); got != out[i] {
			t.Fatalf("out[%d]: emulated %d, model %d", i, got, out[i])
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestXlispReferenceModel(t *testing.T) {
	// The tree evaluator is deterministic and pure: evaluating the same
	// tree twice must give the same result, and the result must equal a
	// native recursive evaluation of the tree image.
	w, err := ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(3)
	m := emu.NewMachine(prog)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}

	// Reconstruct the tree from the program's data image and evaluate
	// natively. Node layout: [tag, left/value, right], root at 0x1000.
	data := prog.Data
	var eval func(addr int64) int64
	eval = func(addr int64) int64 {
		tag := data[addr]
		if tag&1 == 0 {
			return data[addr+1]
		}
		l := eval(data[addr+1])
		r := eval(data[addr+2])
		switch tag >> 1 {
		case 1:
			return l - r
		case 2:
			return l ^ r
		default:
			return l + r
		}
	}
	want := eval(0x1000)
	// Register assignment from xlisp.go: r11 = result.
	if got := m.State.Regs[11]; got != want {
		t.Errorf("tree value: emulated %d, model %d", got, want)
	}
}
