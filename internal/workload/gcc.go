package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// gcc: a compiler-style pass over a stream of IR operations. Each step
// loads an op record (opcode + two operand fields) and dispatches through
// a binary decision tree of compare branches to one of 16 handlers; each
// handler applies its own small set of conditions to the operand fields.
// The result is what makes gcc hard for predictors: a large number of
// static branch sites with mixed biases and data-dependent paths, rather
// than a few hot loops.
//
// Memory map:
//
//	0x1000  opcode stream (8192 entries, skewed distribution)
//	0x4000  operand-a stream (8192)
//	0x6000  operand-b stream (8192)
func buildGCC(seed uint64, iters int) *isa.Program {
	const (
		opsBase  = 0x1000
		aBase    = 0x4000
		bBase    = 0x6000
		strMask  = 8191
		handlers = 16
	)
	b := isa.NewBuilder("gcc")
	g := rng.New(seed)
	prev := 0
	for i := int64(0); i <= strMask; i++ {
		// Real IR streams have idiom structure: an op's successor is
		// often determined by the op (compare→branch, load→use). Model
		// that with a Markov mix — 60% idiomatic successor, 40% skewed
		// random — so history predictors recover part of the dispatch,
		// as they do on real gcc, without making it trivial.
		var op int
		if g.Bool(0.6) {
			op = (prev*5 + 3) % handlers
		} else {
			op = g.Intn(handlers) * g.Intn(handlers) / handlers
		}
		prev = op
		b.Word(opsBase+i, int64(op))
		// Operand a skews small (AND of two uniforms), as real operand
		// fields do; b stays uniform. The handler conditions then have
		// realistic mixed biases (~75/25) instead of coin flips.
		b.Word(aBase+i, int64(g.Uint64()&g.Uint64()&0xffff))
		b.Word(bBase+i, int64(g.Uint64()&0xffff))
	}

	const (
		rI   = isa.Reg(1)
		rLim = isa.Reg(2)
		rOp  = isa.Reg(3)
		rA   = isa.Reg(4)
		rB   = isa.Reg(5)
		rT   = isa.Reg(6)
		rT2  = isa.Reg(7)
		rAcc = isa.Reg(8) // running checksum, keeps handlers live
	)

	b.Li(rI, 0)
	b.Li(rLim, int32(iters))
	b.Li(rAcc, 0)

	b.Label("loop")
	b.Andi(rT, rI, strMask)
	b.Li(rT2, opsBase)
	b.Add(rT2, rT2, rT)
	b.Ld(rOp, rT2, 0)
	b.Li(rT2, aBase)
	b.Add(rT2, rT2, rT)
	b.Ld(rA, rT2, 0)
	b.Li(rT2, bBase)
	b.Add(rT2, rT2, rT)
	b.Ld(rB, rT2, 0)

	// Dispatch: a 4-level binary tree over the opcode (15 branch sites).
	b.Slti(rT, rOp, 8)
	b.Beq(rT, isa.Zero, "d8_15")
	b.Slti(rT, rOp, 4)
	b.Beq(rT, isa.Zero, "d4_7")
	b.Slti(rT, rOp, 2)
	b.Beq(rT, isa.Zero, "d2_3")
	b.Slti(rT, rOp, 1)
	b.Beq(rT, isa.Zero, "h1")
	b.Jump("h0")
	b.Label("d2_3")
	b.Slti(rT, rOp, 3)
	b.Beq(rT, isa.Zero, "h3")
	b.Jump("h2")
	b.Label("d4_7")
	b.Slti(rT, rOp, 6)
	b.Beq(rT, isa.Zero, "d6_7")
	b.Slti(rT, rOp, 5)
	b.Beq(rT, isa.Zero, "h5")
	b.Jump("h4")
	b.Label("d6_7")
	b.Slti(rT, rOp, 7)
	b.Beq(rT, isa.Zero, "h7")
	b.Jump("h6")
	b.Label("d8_15")
	b.Slti(rT, rOp, 12)
	b.Beq(rT, isa.Zero, "d12_15")
	b.Slti(rT, rOp, 10)
	b.Beq(rT, isa.Zero, "d10_11")
	b.Slti(rT, rOp, 9)
	b.Beq(rT, isa.Zero, "h9")
	b.Jump("h8")
	b.Label("d10_11")
	b.Slti(rT, rOp, 11)
	b.Beq(rT, isa.Zero, "h11")
	b.Jump("h10")
	b.Label("d12_15")
	b.Slti(rT, rOp, 14)
	b.Beq(rT, isa.Zero, "d14_15")
	b.Slti(rT, rOp, 13)
	b.Beq(rT, isa.Zero, "h13")
	b.Jump("h12")
	b.Label("d14_15")
	b.Slti(rT, rOp, 15)
	b.Beq(rT, isa.Zero, "h15")
	b.Jump("h14")

	// Handlers: each folds the operands into the checksum with its own
	// data-dependent conditions (a mix of biases).
	for h := 0; h < handlers; h++ {
		label := "h" + string(rune('0'+h%10))
		if h >= 10 {
			label = "h1" + string(rune('0'+h-10))
		}
		b.Label(label)
		switch h % 4 {
		case 0: // constant-fold style: test a == b (rarely true)
			b.Beq(rA, rB, "cf")
			b.Add(rAcc, rAcc, rA)
		case 1: // strength-reduce style: test low bits of a
			b.Andi(rT, rA, 3)
			b.Bne(rT, isa.Zero, "sr")
			b.Shli(rT2, rA, 1)
			b.Add(rAcc, rAcc, rT2)
			b.Label("sr" + suffix(h))
		case 2: // range check: a < b (about 50/50)
			b.Blt(rA, rB, "rc"+suffix(h))
			b.Sub(rAcc, rAcc, rB)
			b.Label("rc" + suffix(h))
		case 3: // sign-ish test on a mid bit (about 50/50)
			b.Andi(rT, rA, 0x80)
			b.Beq(rT, isa.Zero, "sg"+suffix(h))
			b.Xor(rAcc, rAcc, rB)
			b.Label("sg" + suffix(h))
		}
		b.Jump("next")
	}
	// Shared rare targets for the case-0/1 handlers.
	b.Label("cf")
	b.Addi(rAcc, rAcc, 1)
	b.Jump("next")
	b.Label("sr")
	b.Add(rAcc, rAcc, rB)
	b.Jump("next")

	b.Label("next")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rLim, "loop")
	b.Halt()
	return b.MustBuild()
}

func suffix(h int) string { return string(rune('a' + h)) }

func init() {
	register(Workload{
		Name:        "gcc",
		Description: "IR pass: wide dispatch tree, many branch sites, mixed biases",
		Build:       func(iters int) *isa.Program { return buildGCC(0x6CC, iters) },
		BuildSeeded: buildGCC,
	})
}
