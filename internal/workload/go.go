package workload

import (
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// go: a position evaluator in the style of the SPECint95 Go player — the
// benchmark with the worst branch behaviour in the paper's Table 1. Each
// step mixes the evaluation state with a multiplicative hash and then
// makes a burst of decisions keyed to different fields of the hashed
// value. Because the state evolves chaotically, these branches carry
// almost no exploitable history, and because several decisions derive
// from one hash, mispredictions cluster. A short predictable
// bookkeeping loop separates bursts, as board scans do in the original.
//
// Memory map:
//
//	0x1000  board table (2048 random words)
func buildGo(seed uint64, iters int) *isa.Program {
	const (
		boardBase = 0x1000
		boardMask = 2047
	)
	b := isa.NewBuilder("go")
	g := rng.New(seed)
	for i := int64(0); i <= boardMask; i++ {
		b.Word(boardBase+i, int64(g.Uint64()>>8))
	}

	const (
		rI     = isa.Reg(1)
		rLim   = isa.Reg(2)
		rState = isa.Reg(3) // evaluation state (chaotic)
		rH     = isa.Reg(4) // hashed value
		rT     = isa.Reg(5)
		rT2    = isa.Reg(6)
		rScore = isa.Reg(7)
		rJ     = isa.Reg(8)
	)

	b.Li(rI, 0)
	b.Li(rLim, int32(iters))
	b.Li(rState, 0x1234)
	b.Li(rScore, 0)

	b.Label("loop")
	// Read a board cell selected by the state and fold it in.
	b.Andi(rT, rState, boardMask)
	b.Li(rT2, boardBase)
	b.Add(rT, rT, rT2)
	b.Ld(rT, rT, 0)
	b.Xor(rState, rState, rT)
	// Hash: state = state * 0x2545F491 + i ; h = state >> 16.
	b.Lui(rT, 0x2545).Ori(rT, rT, 0x4F91)
	b.Mul(rState, rState, rT)
	b.Add(rState, rState, rI)
	b.Shri(rH, rState, 16)

	// Decision burst: four nearly random branches on separate hash bits.
	b.Andi(rT, rH, 1)
	b.Beq(rT, isa.Zero, "d1")
	b.Addi(rScore, rScore, 3)
	b.Label("d1")
	b.Andi(rT, rH, 4)
	b.Beq(rT, isa.Zero, "d2")
	b.Sub(rScore, rScore, rH)
	b.Label("d2")
	b.Andi(rT, rH, 16)
	b.Beq(rT, isa.Zero, "d3")
	b.Xor(rScore, rScore, rState)
	b.Label("d3")
	b.Andi(rT, rH, 64)
	b.Beq(rT, isa.Zero, "d4")
	b.Addi(rScore, rScore, 1)
	b.Label("d4")

	// Liberty-count style scan: a short counted loop (predictable).
	b.Li(rJ, 0)
	b.Label("scan")
	b.Add(rScore, rScore, rJ)
	b.Addi(rJ, rJ, 1)
	b.Slti(rT, rJ, 4)
	b.Bne(rT, isa.Zero, "scan")

	b.Addi(rI, rI, 1)
	b.Blt(rI, rLim, "loop")
	b.Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "go",
		Description: "position evaluator: chaotic data-dependent decision bursts",
		Build:       func(iters int) *isa.Program { return buildGo(0x60B0A2D, iters) },
		BuildSeeded: buildGo,
	})
}
