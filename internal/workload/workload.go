// Package workload provides the benchmark suite: eight synthetic programs
// standing in for SPECInt95 (compress, gcc, perl, go, m88ksim, xlisp,
// vortex, ijpeg), which the paper uses and which cannot be run here (no
// binaries, no inputs, no Alpha/PISA toolchain).
//
// Each synthetic program implements a real algorithm in the simulated ISA
// whose *branch-behaviour class* matches its namesake:
//
//	compress  hash-table compression inner loop: data-dependent hit/miss
//	          branches and variable-length probe chains.
//	gcc       IR pass with a wide dispatch tree: many static branch
//	          sites, irregular mixed-bias control flow.
//	perl      bytecode interpreter: dispatch over a looping opcode
//	          stream; history predictors learn the program's shape.
//	go        position evaluator on hashed pseudo-random state: heavily
//	          data-dependent branches, worst-case predictability.
//	m88ksim   instruction-set simulator main loop: long predictable
//	          stretches, strongly biased checks.
//	xlisp     recursive tree interpreter: call/ret heavy, branches keyed
//	          to node types.
//	vortex    object database transactions: validity checks that almost
//	          always pass (highly predictable).
//	ijpeg     block transform over an image: fixed-trip nested loops,
//	          low branch density, occasional clamping branches.
//
// Confidence-estimator metrics are statistics of the branch-outcome
// stream (predictability mix and clustering), not of program semantics,
// so matching these classes — and the suite-wide spread of misprediction
// rates and branch densities reported in the paper's Table 1 — preserves
// the behaviour the experiments measure. All data is generated from fixed
// seeds; every program is exactly reproducible.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"specctrl/internal/isa"
)

// Workload is one benchmark generator.
type Workload struct {
	// Name is the SPECInt95 benchmark this program stands in for.
	Name string
	// Description summarizes the branch-behaviour class.
	Description string
	// Build generates the program with the given outer-loop iteration
	// count and the benchmark's reference input (its default data
	// seed). Committed instructions grow roughly linearly with iters;
	// use pipeline.Config.MaxCommitted for exact run lengths.
	Build func(iters int) *isa.Program
	// BuildSeeded generates the program with an alternative input: the
	// seed re-derives every data table while the code stays identical,
	// so profiles keyed by branch-site PC transfer across inputs (the
	// train/test split the paper's static estimator discussion wants).
	BuildSeeded func(seed uint64, iters int) *isa.Program
}

// SynthPrefix is the name namespace reserved for dynamically registered
// workloads (internal/synth's generated profiles and ingested traces).
// Built-in benchmarks never use it, so a synth workload can never shadow
// a paper benchmark, and cell keys carrying the prefix are always
// content-addressed generator output.
const SynthPrefix = "synth:"

// builtins are the eight benchmarks in the paper's Table 1 order. The
// set is pinned by TestBuiltinNames; extending the paper suite is an
// explicit act, not a side effect of importing a package.
var builtins = []string{"compress", "gcc", "perl", "go", "m88ksim", "xlisp", "vortex", "ijpeg"}

// DuplicateError reports an attempt to register a workload under a name
// that is already taken. Dynamic registrars (internal/synth) detect it
// with errors.As to treat re-registration of identical content-addressed
// workloads as idempotent.
type DuplicateError struct{ Name string }

func (e *DuplicateError) Error() string {
	return fmt.Sprintf("workload: duplicate %q", e.Name)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// register is the init-time path for the built-in suite: registration
// cannot fail at runtime, so any error is a programming bug and panics.
func register(w Workload) {
	if err := Register(w); err != nil {
		panic(err.Error())
	}
}

// Register adds a workload to the registry. Unlike the init-time built-in
// path it is safe for concurrent use and returns a typed error instead of
// panicking, so dynamic registrars (synth profiles loaded from flags or
// job submissions, ingested traces) can handle duplicates gracefully:
// a name collision returns *DuplicateError. Names outside the built-in
// set must carry the SynthPrefix namespace; the built-in names are
// reserved for the init-registered paper suite.
func Register(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("workload: register: empty name")
	}
	if w.Build == nil || w.BuildSeeded == nil {
		return fmt.Errorf("workload: register %q: nil Build or BuildSeeded", w.Name)
	}
	builtin := false
	for _, n := range builtins {
		if n == w.Name {
			builtin = true
			break
		}
	}
	if !builtin && !strings.HasPrefix(w.Name, SynthPrefix) {
		return fmt.Errorf("workload: register %q: dynamic workloads must use the %q namespace", w.Name, SynthPrefix)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		return &DuplicateError{Name: w.Name}
	}
	registry[w.Name] = w
	return nil
}

// Suite returns the eight benchmarks in the paper's Table 1 order.
// Dynamically registered workloads never appear here: every experiment
// that reproduces a paper table sweeps exactly this suite.
func Suite() []Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Workload, 0, len(builtins))
	for _, name := range builtins {
		w, ok := registry[name]
		if !ok {
			panic(fmt.Sprintf("workload: %q not registered", name))
		}
		out = append(out, w)
	}
	return out
}

// Names returns all registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	regMu.RLock()
	w, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}
