// Package workload provides the benchmark suite: eight synthetic programs
// standing in for SPECInt95 (compress, gcc, perl, go, m88ksim, xlisp,
// vortex, ijpeg), which the paper uses and which cannot be run here (no
// binaries, no inputs, no Alpha/PISA toolchain).
//
// Each synthetic program implements a real algorithm in the simulated ISA
// whose *branch-behaviour class* matches its namesake:
//
//	compress  hash-table compression inner loop: data-dependent hit/miss
//	          branches and variable-length probe chains.
//	gcc       IR pass with a wide dispatch tree: many static branch
//	          sites, irregular mixed-bias control flow.
//	perl      bytecode interpreter: dispatch over a looping opcode
//	          stream; history predictors learn the program's shape.
//	go        position evaluator on hashed pseudo-random state: heavily
//	          data-dependent branches, worst-case predictability.
//	m88ksim   instruction-set simulator main loop: long predictable
//	          stretches, strongly biased checks.
//	xlisp     recursive tree interpreter: call/ret heavy, branches keyed
//	          to node types.
//	vortex    object database transactions: validity checks that almost
//	          always pass (highly predictable).
//	ijpeg     block transform over an image: fixed-trip nested loops,
//	          low branch density, occasional clamping branches.
//
// Confidence-estimator metrics are statistics of the branch-outcome
// stream (predictability mix and clustering), not of program semantics,
// so matching these classes — and the suite-wide spread of misprediction
// rates and branch densities reported in the paper's Table 1 — preserves
// the behaviour the experiments measure. All data is generated from fixed
// seeds; every program is exactly reproducible.
package workload

import (
	"fmt"
	"sort"

	"specctrl/internal/isa"
)

// Workload is one benchmark generator.
type Workload struct {
	// Name is the SPECInt95 benchmark this program stands in for.
	Name string
	// Description summarizes the branch-behaviour class.
	Description string
	// Build generates the program with the given outer-loop iteration
	// count and the benchmark's reference input (its default data
	// seed). Committed instructions grow roughly linearly with iters;
	// use pipeline.Config.MaxCommitted for exact run lengths.
	Build func(iters int) *isa.Program
	// BuildSeeded generates the program with an alternative input: the
	// seed re-derives every data table while the code stays identical,
	// so profiles keyed by branch-site PC transfer across inputs (the
	// train/test split the paper's static estimator discussion wants).
	BuildSeeded func(seed uint64, iters int) *isa.Program
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Suite returns the eight benchmarks in the paper's Table 1 order.
func Suite() []Workload {
	order := []string{"compress", "gcc", "perl", "go", "m88ksim", "xlisp", "vortex", "ijpeg"}
	out := make([]Workload, 0, len(order))
	for _, name := range order {
		w, ok := registry[name]
		if !ok {
			panic(fmt.Sprintf("workload: %q not registered", name))
		}
		out = append(out, w)
	}
	return out
}

// Names returns all registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}
