package conf_test

import (
	"fmt"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
)

// A JRS miss distance counter reaches high confidence only after a run
// of correct predictions, and one misprediction resets it.
func ExampleJRS() {
	jrs := conf.NewJRS(conf.JRSConfig{Entries: 1024, Bits: 4, Threshold: 3, Enhanced: true})
	info := bpred.Info{Pred: true, Hist: 0b1011}
	pc := int64(0x40)

	fmt.Println("cold:", jrs.Estimate(pc, info))
	for i := 0; i < 3; i++ {
		jrs.Resolve(pc, info, true)
	}
	fmt.Println("after 3 correct:", jrs.Estimate(pc, info))
	jrs.Resolve(pc, info, false)
	fmt.Println("after a misprediction:", jrs.Estimate(pc, info))
	// Output:
	// cold: false
	// after 3 correct: true
	// after a misprediction: false
}

// The saturating-counters estimator costs no extra hardware: it reads
// the strength of the predictor's own 2-bit counter.
func ExampleSatCounters() {
	est := conf.SatCounters{}
	weak := bpred.Info{C1: 2}   // weakly taken
	strong := bpred.Info{C1: 3} // strongly taken
	fmt.Println(est.Estimate(0, weak), est.Estimate(0, strong))
	// Output:
	// false true
}

// The misprediction-distance estimator is a single global counter: a
// branch is high confidence only when enough branches have been fetched
// since the last detected misprediction.
func ExampleDistance() {
	d := conf.NewDistance(2)
	info := bpred.Info{}
	for i := 0; i < 4; i++ {
		fmt.Print(d.Estimate(0, info), " ")
	}
	d.Resolve(0, info, false) // misprediction detected: reset
	fmt.Println(d.Estimate(0, info))
	// Output:
	// false false false true false
}
