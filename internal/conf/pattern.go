package conf

import (
	"fmt"
	"math/bits"

	"specctrl/internal/bpred"
)

// PatternHistory is the estimator implied by Lick et al's dual-path work:
// a small fixed set of branch history patterns is designated high
// confidence and every other pattern is low confidence. The confident
// patterns are the ones they observed leading to correct predictions
// under a per-branch-history (PAs/SAg) predictor:
//
//   - always taken            (111...1)
//   - almost always taken     (exactly one 0)
//   - always not-taken        (000...0)
//   - almost always not-taken (exactly one 1)
//   - alternating             (1010...  or 0101...)
//
// The estimator inspects the history value the predictor used for the
// prediction (Info.Hist): per-branch history under SAg, the global
// history register under gshare/McFarling. The paper shows it is only
// competitive when the history is per-branch — global histories exhibit
// no dominant patterns — and our measurements must reproduce that.
type PatternHistory struct {
	// HistBits is the history register length to classify.
	HistBits uint
}

// NewPatternHistory returns a pattern estimator for histBits-long
// histories. It panics when histBits is zero or exceeds 64.
func NewPatternHistory(histBits uint) PatternHistory {
	if histBits == 0 || histBits > 64 {
		panic(fmt.Sprintf("conf: pattern history bits %d out of range", histBits))
	}
	return PatternHistory{HistBits: histBits}
}

// Name implements Estimator.
func (p PatternHistory) Name() string { return "HistPat" }

// Estimate implements Estimator.
func (p PatternHistory) Estimate(pc int64, info bpred.Info) bool {
	return p.Confident(info.Hist)
}

// Confident reports whether the history pattern belongs to the fixed
// high-confidence set.
func (p PatternHistory) Confident(hist uint64) bool {
	m := uint64(1)<<p.HistBits - 1
	h := hist & m
	ones := uint(bits.OnesCount64(h))
	switch ones {
	case 0, p.HistBits: // always not-taken / always taken
		return true
	case 1, p.HistBits - 1: // almost always (exactly one odd bit)
		return true
	}
	// Alternating patterns: 0101... and 1010...
	alt0 := uint64(0x5555555555555555) & m
	alt1 := uint64(0xaaaaaaaaaaaaaaaa) & m
	return h == alt0 || h == alt1
}

// Resolve implements Estimator (stateless).
func (p PatternHistory) Resolve(pc int64, info bpred.Info, correct bool) {}

// Static is the profile-based estimator: an offline pass records each
// branch site's prediction accuracy under the underlying predictor, and
// sites at or above the threshold are permanently high confidence. The
// profile must come from a predictor simulation (or hardware performance
// feedback), not a plain outcome profile — see internal/profile.
type Static struct {
	// HighConfidence holds the branch-site PCs whose profiled accuracy
	// met the threshold.
	HighConfidence map[int64]bool
	// Threshold is recorded for reporting only (e.g. 0.90).
	Threshold float64
}

// Name implements Estimator.
func (s Static) Name() string {
	return fmt.Sprintf("Static(>%.0f%%)", s.Threshold*100)
}

// Estimate implements Estimator. Branch sites absent from the profile
// (never seen in training) default to low confidence.
func (s Static) Estimate(pc int64, info bpred.Info) bool {
	return s.HighConfidence[pc]
}

// Resolve implements Estimator (static).
func (s Static) Resolve(pc int64, info bpred.Info, correct bool) {}
