package conf

import (
	"testing"

	"specctrl/internal/bpred"
)

func TestOnesCountThreshold(t *testing.T) {
	o := NewOnesCount(OnesCountConfig{Entries: 64, Bits: 4, Threshold: 3})
	in := info(true, 0)
	pc := int64(7)
	if o.Estimate(pc, in) {
		t.Error("cold CIR should be low confidence")
	}
	for i := 0; i < 3; i++ {
		o.Resolve(pc, in, true)
	}
	if !o.Estimate(pc, in) {
		t.Error("three correct outcomes should reach threshold 3")
	}
}

func TestOnesCountForgivesIsolatedMiss(t *testing.T) {
	// Unlike the resetting JRS, one misprediction among many correct
	// outcomes keeps the entry high confidence.
	o := NewOnesCount(OnesCountConfig{Entries: 64, Bits: 8, Threshold: 6})
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 6})
	in := info(true, 0)
	pc := int64(3)
	for i := 0; i < 8; i++ {
		o.Resolve(pc, in, true)
		j.Resolve(pc, in, true)
	}
	o.Resolve(pc, in, false)
	j.Resolve(pc, in, false)
	if !o.Estimate(pc, in) {
		t.Error("CIR should forgive an isolated misprediction")
	}
	if j.Estimate(pc, in) {
		t.Error("JRS should reset on the same misprediction")
	}
}

func TestOnesCountShiftWindow(t *testing.T) {
	// Only the last Bits outcomes matter.
	o := NewOnesCount(OnesCountConfig{Entries: 16, Bits: 4, Threshold: 4})
	in := info(false, 0)
	pc := int64(1)
	for i := 0; i < 10; i++ {
		o.Resolve(pc, in, true)
	}
	if !o.Estimate(pc, in) {
		t.Fatal("saturated window should be high confidence")
	}
	for i := 0; i < 4; i++ {
		o.Resolve(pc, in, false)
	}
	if o.Estimate(pc, in) {
		t.Error("four incorrect outcomes should flush a 4-bit window")
	}
}

func TestOnesCountEnhancedSeparates(t *testing.T) {
	o := NewOnesCount(OnesCountConfig{Entries: 64, Bits: 4, Threshold: 1, Enhanced: true})
	pc := int64(5)
	taken, notTaken := info(true, 0x12), info(false, 0x12)
	o.Resolve(pc, taken, true)
	if !o.Estimate(pc, taken) {
		t.Error("trained direction should be high confidence")
	}
	if o.Estimate(pc, notTaken) {
		t.Error("other direction should be untouched")
	}
}

func TestOnesCountConfigValidate(t *testing.T) {
	bad := []OnesCountConfig{
		{Entries: 0, Bits: 4, Threshold: 1},
		{Entries: 3, Bits: 4, Threshold: 1},
		{Entries: 16, Bits: 0, Threshold: 0},
		{Entries: 16, Bits: 33, Threshold: 1},
		{Entries: 16, Bits: 4, Threshold: 5},
		{Entries: 16, Bits: 4, Threshold: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGlobalMDCIndexedDistanceReset(t *testing.T) {
	g := NewGlobalMDCIndexed(OnesCountConfig{Entries: 16, Bits: 4, Threshold: 2})
	in := info(true, 0)
	// The MDC counts resolved branches since the last misprediction.
	for i := 0; i < 10; i++ {
		g.Resolve(0, in, true)
	}
	if g.mdc != 10 {
		t.Fatalf("mdc = %d, want 10", g.mdc)
	}
	g.Resolve(0, in, false)
	if g.mdc != 0 {
		t.Error("misprediction did not reset the global MDC")
	}
}

func TestGlobalMDCIndexedLearnsPerDistance(t *testing.T) {
	// Train: distance-0 branches always right, distance-1 branches
	// always wrong. The estimator must separate the two distances.
	g := NewGlobalMDCIndexed(OnesCountConfig{Entries: 16, Bits: 4, Threshold: 3})
	in := info(true, 0)
	for i := 0; i < 40; i++ {
		g.Resolve(0, in, true)  // distance 0: correct, mdc -> 1
		g.Resolve(0, in, false) // distance 1: incorrect, reset
	}
	// Distance 0 (right after a reset): CIR full of 1s -> HC.
	if !g.Estimate(0, in) {
		t.Error("distance-0 branches should be high confidence")
	}
	g.Resolve(0, in, true)
	// Distance 1: CIR full of 0s -> LC.
	if g.Estimate(0, in) {
		t.Error("distance-1 branches should be low confidence")
	}
}

func TestCIRInterfaces(t *testing.T) {
	var _ Estimator = NewOnesCount(OnesCountConfig{Entries: 16, Bits: 4, Threshold: 2})
	var _ Estimator = NewGlobalMDCIndexed(OnesCountConfig{Entries: 16, Bits: 4, Threshold: 2})
}

func TestCIRNames(t *testing.T) {
	o := NewOnesCount(OnesCountConfig{Entries: 16, Bits: 8, Threshold: 6})
	g := NewGlobalMDCIndexed(OnesCountConfig{Entries: 16, Bits: 8, Threshold: 6})
	if o.Name() == g.Name() || o.Name() == "" {
		t.Errorf("names collide or empty: %q %q", o.Name(), g.Name())
	}
}

func BenchmarkOnesCount(b *testing.B) {
	o := NewOnesCount(OnesCountConfig{Entries: 4096, Bits: 8, Threshold: 6})
	in := info(true, 0x3c5)
	for i := 0; i < b.N; i++ {
		pc := int64(i & 0xffff)
		_ = o.Estimate(pc, in)
		o.Resolve(pc, in, i&7 != 0)
	}
}

func TestJRSMcFarlingBothTables(t *testing.T) {
	j := NewJRSMcFarling(JRSConfig{Entries: 64, Bits: 4, Threshold: 2}, BothTables)
	in := bpred.Info{Pred: true, Hist: 0x15}
	pc := int64(9)
	j.Resolve(pc, in, true)
	j.Resolve(pc, in, true)
	if !j.Estimate(pc, in) {
		t.Error("both tables trained; should be high confidence")
	}
	// A misprediction resets both tables.
	j.Resolve(pc, in, false)
	if j.Estimate(pc, in) {
		t.Error("reset did not propagate")
	}
}

func TestJRSMcFarlingMetaSelected(t *testing.T) {
	j := NewJRSMcFarling(JRSConfig{Entries: 256, Bits: 4, Threshold: 2}, MetaSelected)
	pc := int64(4)
	// Two infos with different histories: the bimodal-side index is
	// history-independent, the gshare-side index is not.
	inA := bpred.Info{Pred: true, Hist: 0x01, Meta: 3} // meta -> gshare table
	inB := bpred.Info{Pred: true, Hist: 0x02, Meta: 0} // meta -> bimodal table
	// Train twice under history A.
	j.Resolve(pc, inA, true)
	j.Resolve(pc, inA, true)
	// gshare table under history B is cold -> low confidence.
	if j.Estimate(pc, bpred.Info{Pred: true, Hist: 0x02, Meta: 3}) {
		t.Error("meta->gshare with cold history should be low confidence")
	}
	// bimodal table ignores history -> high confidence.
	if !j.Estimate(pc, inB) {
		t.Error("meta->bimodal should see the trained pc-indexed counter")
	}
}

func TestJRSMcFarlingInterfaceAndNames(t *testing.T) {
	var both Estimator = NewJRSMcFarling(JRSConfig{Entries: 16, Bits: 4, Threshold: 1}, BothTables)
	var meta Estimator = NewJRSMcFarling(JRSConfig{Entries: 16, Bits: 4, Threshold: 1}, MetaSelected)
	if both.Name() == meta.Name() {
		t.Error("variant names collide")
	}
}

func TestJRSMcFarlingPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config accepted")
		}
	}()
	NewJRSMcFarling(JRSConfig{}, BothTables)
}

func TestAndOrCombinators(t *testing.T) {
	hi, lo := Always{High: true}, Always{High: false}
	in := bpred.Info{}
	cases := []struct {
		est  Estimator
		want bool
	}{
		{And{hi, hi}, true},
		{And{hi, lo}, false},
		{And{lo, hi}, false},
		{And{lo, lo}, false},
		{Or{hi, hi}, true},
		{Or{hi, lo}, true},
		{Or{lo, hi}, true},
		{Or{lo, lo}, false},
		{Invert{hi}, false},
		{Invert{lo}, true},
	}
	for _, c := range cases {
		if got := c.est.Estimate(0, in); got != c.want {
			t.Errorf("%s = %v, want %v", c.est.Name(), got, c.want)
		}
	}
}

func TestCombinatorsEvaluateBothSides(t *testing.T) {
	// Stateful inner estimators must see every branch even when the
	// other side short-circuits the logical result.
	a, b := &scripted{seq: []bool{true}}, &scripted{seq: []bool{true}}
	Or{a, b}.Estimate(0, bpred.Info{})
	if a.i != 1 || b.i != 1 {
		t.Error("Or short-circuited an inner estimator")
	}
	c, d := &scripted{seq: []bool{false}}, &scripted{seq: []bool{false}}
	And{c, d}.Estimate(0, bpred.Info{})
	if c.i != 1 || d.i != 1 {
		t.Error("And short-circuited an inner estimator")
	}
}

func TestCombinatorsForwardResolve(t *testing.T) {
	a, b := &scripted{seq: []bool{true}}, &scripted{seq: []bool{true}}
	And{a, b}.Resolve(0, bpred.Info{}, true)
	Or{a, b}.Resolve(0, bpred.Info{}, false)
	Invert{a}.Resolve(0, bpred.Info{}, true)
	if a.res != 3 || b.res != 2 {
		t.Errorf("resolve counts = %d,%d, want 3,2", a.res, b.res)
	}
}

func TestAndTightensOrLoosens(t *testing.T) {
	// Property on random estimate pairs: And implies each side; each
	// side implies Or.
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 2})
	s := SatCounters{}
	and, or := And{j, s}, Or{j, s}
	for i := 0; i < 500; i++ {
		in := bpred.Info{Pred: i&1 == 0, Hist: uint64(i * 7), C1: bpred.Counter2(i % 4)}
		pc := int64(i % 50)
		av := and.Estimate(pc, in)
		ov := or.Estimate(pc, in)
		jv := j.Estimate(pc, in)
		sv := s.Estimate(pc, in)
		if av && (!jv || !sv) {
			t.Fatal("And true while a side is false")
		}
		if (jv || sv) && !ov {
			t.Fatal("Or false while a side is true")
		}
		j.Resolve(pc, in, i%3 != 0)
	}
}

func TestPatternProfilerCollects(t *testing.T) {
	p := NewPatternProfiler(4)
	in1 := bpred.Info{Hist: 0b1010}
	in2 := bpred.Info{Hist: 0b1111}
	if !p.Estimate(0, in1) {
		t.Error("profiler must be neutral (always high confidence)")
	}
	for i := 0; i < 10; i++ {
		p.Resolve(0, in1, true)
	}
	p.Resolve(0, in1, false)
	p.Resolve(0, in2, true)
	if p.Patterns() != 2 {
		t.Fatalf("patterns = %d, want 2", p.Patterns())
	}
	top := p.Top(1)
	if len(top) != 1 || top[0].Pattern != 0b1010 || top[0].Total != 11 {
		t.Errorf("Top(1) = %+v", top)
	}
	if acc := top[0].Accuracy(); acc < 0.90 || acc > 0.92 {
		t.Errorf("accuracy = %v, want ~10/11", acc)
	}
	cov, acc := p.Dominance(1)
	if cov < 0.91 || cov > 0.92 {
		t.Errorf("coverage = %v, want 11/12", cov)
	}
	if acc < 0.90 || acc > 0.92 {
		t.Errorf("dominance accuracy = %v", acc)
	}
	// Top beyond the population clamps.
	if got := len(p.Top(10)); got != 2 {
		t.Errorf("Top(10) = %d rows", got)
	}
}

func TestPatternProfilerMasksHistory(t *testing.T) {
	p := NewPatternProfiler(4)
	p.Resolve(0, bpred.Info{Hist: 0xF5}, true) // low nibble 0101
	p.Resolve(0, bpred.Info{Hist: 0x05}, true)
	if p.Patterns() != 1 {
		t.Errorf("high history bits not masked: %d patterns", p.Patterns())
	}
}

func TestPatternProfilerEmptyDominance(t *testing.T) {
	p := NewPatternProfiler(4)
	cov, acc := p.Dominance(8)
	if cov != 0 || acc != 0 {
		t.Errorf("empty dominance = (%v,%v)", cov, acc)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestPatternProfilerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bits 0 accepted")
		}
	}()
	NewPatternProfiler(0)
}

func TestDistanceResolveCorrectKeepsCounting(t *testing.T) {
	d := NewDistance(1)
	in := bpred.Info{}
	d.Estimate(0, in)
	d.Resolve(0, in, true)
	if d.Count() != 1 {
		t.Errorf("count = %d after correct resolve", d.Count())
	}
}

func TestPatternHistoryEstimateMatchesConfident(t *testing.T) {
	p := NewPatternHistory(8)
	for _, h := range []uint64{0x00, 0xFF, 0x55, 0x33} {
		if p.Estimate(0, bpred.Info{Hist: h}) != p.Confident(h) {
			t.Errorf("Estimate and Confident disagree on %08b", h)
		}
	}
	// Resolve is a no-op but must not panic.
	p.Resolve(0, bpred.Info{}, true)
	Static{}.Resolve(0, bpred.Info{}, true)
}
