package conf

import (
	"strings"
	"testing"

	"specctrl/internal/bpred"
)

// scriptedEst replays a fixed estimate sequence and counts every call, so
// the tests can verify both verdicts and the no-short-circuit contract.
type scriptedEst struct {
	name      string
	out       []bool
	estimates int
	resolves  int
}

func (s *scriptedEst) Name() string { return s.name }
func (s *scriptedEst) Estimate(int64, bpred.Info) bool {
	v := s.out[s.estimates%len(s.out)]
	s.estimates++
	return v
}
func (s *scriptedEst) Resolve(int64, bpred.Info, bool) { s.resolves++ }

func fixed(name string, v bool) *scriptedEst { return &scriptedEst{name: name, out: []bool{v}} }

func TestCombinerMin(t *testing.T) {
	for _, tc := range []struct {
		a, b, c bool
		want    bool
	}{
		{true, true, true, true},
		{true, true, false, false},
		{false, true, true, false},
		{false, false, false, false},
	} {
		c := &Combiner{Rule: CombineMin, Members: []Estimator{
			fixed("a", tc.a), fixed("b", tc.b), fixed("c", tc.c)}}
		if got := c.Estimate(0, bpred.Info{}); got != tc.want {
			t.Errorf("min(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestCombinerWeightedVote(t *testing.T) {
	// Default weights (1 each) and threshold (half the total = 1.5):
	// two of three high votes carry.
	maj := func(a, b, c bool) *Combiner {
		return &Combiner{Rule: CombineWeightedVote, Members: []Estimator{
			fixed("a", a), fixed("b", b), fixed("c", c)}}
	}
	if got := maj(true, true, false).Estimate(0, bpred.Info{}); !got {
		t.Error("2-of-3 majority vote should be high")
	}
	if got := maj(true, false, false).Estimate(0, bpred.Info{}); got {
		t.Error("1-of-3 majority vote should be low")
	}
	// Explicit weights: a dominant member outvotes the rest.
	dom := &Combiner{
		Rule:    CombineWeightedVote,
		Members: []Estimator{fixed("a", true), fixed("b", false), fixed("c", false)},
		Weights: []float64{3, 1, 1},
	}
	// a alone carries 3 >= total 5 / 2 = 2.5.
	if got := dom.Estimate(0, bpred.Info{}); !got {
		t.Error("weight-3 member alone should carry the vote")
	}
	// Explicit threshold: require unanimity weight.
	strict := &Combiner{
		Rule:      CombineWeightedVote,
		Members:   []Estimator{fixed("a", true), fixed("b", true), fixed("c", false)},
		Threshold: 3,
	}
	if got := strict.Estimate(0, bpred.Info{}); got {
		t.Error("threshold 3 with 2 high votes should be low")
	}
}

func TestCombinerNoisyOR(t *testing.T) {
	// Default reliability 0.5, threshold 0.5: any single high voter
	// reaches belief exactly 0.5.
	one := &Combiner{Rule: CombineNoisyOR, Members: []Estimator{
		fixed("a", true), fixed("b", false)}}
	if got := one.Estimate(0, bpred.Info{}); !got {
		t.Error("one default-reliability high voter should reach the default threshold")
	}
	none := &Combiner{Rule: CombineNoisyOR, Members: []Estimator{
		fixed("a", false), fixed("b", false)}}
	if got := none.Estimate(0, bpred.Info{}); got {
		t.Error("no high voter should be low (belief 0)")
	}
	// Reliabilities 0.4 each: one voter gives 0.4 < 0.6, two give
	// 1 - 0.6*0.6 = 0.64 >= 0.6.
	weak := func(a, b bool) *Combiner {
		return &Combiner{
			Rule:      CombineNoisyOR,
			Members:   []Estimator{fixed("a", a), fixed("b", b)},
			Weights:   []float64{0.4, 0.4},
			Threshold: 0.6,
		}
	}
	if got := weak(true, false).Estimate(0, bpred.Info{}); got {
		t.Error("belief 0.4 should miss threshold 0.6")
	}
	if got := weak(true, true).Estimate(0, bpred.Info{}); !got {
		t.Error("belief 0.64 should reach threshold 0.6")
	}
}

// TestCombinerNoShortCircuit pins the And/Or contract: every member is
// evaluated on every branch and resolved on every resolution, whatever
// the earlier members said.
func TestCombinerNoShortCircuit(t *testing.T) {
	for _, rule := range []CombineRule{CombineMin, CombineWeightedVote, CombineNoisyOR} {
		a, b := fixed("a", false), fixed("b", true)
		c := &Combiner{Rule: rule, Members: []Estimator{a, b}}
		for i := 0; i < 5; i++ {
			c.Estimate(0, bpred.Info{})
			c.Resolve(0, bpred.Info{}, true)
		}
		if a.estimates != 5 || b.estimates != 5 {
			t.Errorf("%v: estimates a=%d b=%d, want 5 each", rule, a.estimates, b.estimates)
		}
		if a.resolves != 5 || b.resolves != 5 {
			t.Errorf("%v: resolves a=%d b=%d, want 5 each", rule, a.resolves, b.resolves)
		}
	}
}

func TestCombinerName(t *testing.T) {
	c := &Combiner{Rule: CombineMin, Members: []Estimator{fixed("a", true), fixed("b", true)}}
	if got := c.Name(); got != "min(a,b)" {
		t.Errorf("Name() = %q, want min(a,b)", got)
	}
	c = &Combiner{
		Rule:      CombineNoisyOR,
		Members:   []Estimator{fixed("a", true), fixed("b", true)},
		Weights:   []float64{0.4, 0.25},
		Threshold: 0.6,
	}
	if got := c.Name(); got != "nor(a,b;w=0.4,0.25;t=0.6)" {
		t.Errorf("Name() = %q, want nor(a,b;w=0.4,0.25;t=0.6)", got)
	}
}

func TestCombinerValidate(t *testing.T) {
	bad := []*Combiner{
		{Rule: CombineMin},
		{Rule: CombineMin, Members: []Estimator{nil}},
		{Rule: CombineWeightedVote, Members: []Estimator{fixed("a", true)}, Weights: []float64{1, 2}},
		{Rule: CombineWeightedVote, Members: []Estimator{fixed("a", true)}, Weights: []float64{0}},
		{Rule: CombineNoisyOR, Members: []Estimator{fixed("a", true)}, Weights: []float64{1.5}},
		{Rule: CombineMin, Members: []Estimator{fixed("a", true)}, Threshold: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	good := &Combiner{Rule: CombineWeightedVote,
		Members: []Estimator{fixed("a", true), fixed("b", true)},
		Weights: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected a valid combiner: %v", err)
	}
	if !strings.Contains((&Combiner{}).Validate().Error(), "member") {
		t.Error("empty-combiner error should mention members")
	}
}
