package conf

import (
	"fmt"

	"specctrl/internal/bpred"
)

// JRSMcFarlingVariant selects how the two MDC tables combine.
type JRSMcFarlingVariant int

const (
	// BothTables signals high confidence only when both MDC tables are
	// at or above the threshold — the conservative combination.
	BothTables JRSMcFarlingVariant = iota
	// MetaSelected consults the MDC table mirroring the component the
	// McFarling meta-predictor chose for this branch.
	MetaSelected
)

// String names the variant.
func (v JRSMcFarlingVariant) String() string {
	if v == BothTables {
		return "both"
	}
	return "meta"
}

// JRSMcFarling is the estimator the paper sketches as future work (§5):
// "a confidence estimator similar to the JRS mechanism designed to
// better exploit the structure of the McFarling two-level branch
// predictor". The paper's own data motivates it: the JRS estimator works
// best when its indexing structure matches the predictor's (§3.5), and
// the McFarling predictor has *two* indexing structures — pc^history
// (gshare component) and pc alone (bimodal component).
//
// JRSMcFarling therefore keeps two resetting MDC tables, one per
// component indexing scheme. Both train on every resolved branch
// (increment on correct, reset on incorrect); Estimate combines them per
// the configured variant.
type JRSMcFarling struct {
	cfg     JRSConfig
	variant JRSMcFarlingVariant
	gTable  []uint16 // indexed like the gshare component
	bTable  []uint16 // indexed like the bimodal component
	max     uint16
}

// NewJRSMcFarling builds the two-table estimator; each table has
// cfg.Entries counters of cfg.Bits bits. It panics on invalid
// configuration.
func NewJRSMcFarling(cfg JRSConfig, variant JRSMcFarlingVariant) *JRSMcFarling {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &JRSMcFarling{
		cfg:     cfg,
		variant: variant,
		gTable:  make([]uint16, cfg.Entries),
		bTable:  make([]uint16, cfg.Entries),
		max:     uint16(1<<cfg.Bits - 1),
	}
}

// Name implements Estimator.
func (j *JRSMcFarling) Name() string {
	return fmt.Sprintf("JRSmcf(%s,t=%d)", j.variant, j.cfg.Threshold)
}

func (j *JRSMcFarling) gIndex(pc int64, info bpred.Info) int {
	idx := uint64(pc) ^ info.Hist
	if j.cfg.Enhanced {
		idx = uint64(pc) ^ (info.Hist<<1 | b2u(info.Pred))
	}
	return int(idx & uint64(j.cfg.Entries-1))
}

func (j *JRSMcFarling) bIndex(pc int64, info bpred.Info) int {
	idx := uint64(pc)
	if j.cfg.Enhanced {
		idx = idx<<1 | b2u(info.Pred)
	}
	return int(idx & uint64(j.cfg.Entries-1))
}

// Estimate implements Estimator.
func (j *JRSMcFarling) Estimate(pc int64, info bpred.Info) bool {
	g := int(j.gTable[j.gIndex(pc, info)])
	b := int(j.bTable[j.bIndex(pc, info)])
	switch j.variant {
	case MetaSelected:
		// Meta counter's taken half selects the gshare component.
		if info.Meta.Taken() {
			return g >= j.cfg.Threshold
		}
		return b >= j.cfg.Threshold
	default: // BothTables
		return g >= j.cfg.Threshold && b >= j.cfg.Threshold
	}
}

// Resolve implements Estimator: both tables learn from every branch, as
// both McFarling components do.
func (j *JRSMcFarling) Resolve(pc int64, info bpred.Info, correct bool) {
	gi, bi := j.gIndex(pc, info), j.bIndex(pc, info)
	if !correct {
		j.gTable[gi], j.bTable[bi] = 0, 0
		return
	}
	if j.gTable[gi] < j.max {
		j.gTable[gi]++
	}
	if j.bTable[bi] < j.max {
		j.bTable[bi]++
	}
}
