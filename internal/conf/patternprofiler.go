package conf

import (
	"sort"

	"specctrl/internal/bpred"
)

// PatternProfiler is an analysis probe, not a hardware proposal: it
// rides along as an Estimator (always reporting high confidence) and
// accumulates, per branch-history pattern, how often predictions under
// that pattern were correct. It reproduces the measurement behind the
// paper's §3.2 observation — Lick et al's confident-pattern set works
// for per-branch (PAs/SAg) histories because a few patterns dominate
// and predict well, while "there appear to be no dominant patterns in
// the global history register when using a gshare predictor".
type PatternProfiler struct {
	// HistBits masks the history to the predictor's length.
	HistBits uint
	counts   map[uint64]*PatternStats
}

// PatternStats aggregates one history pattern's outcomes.
type PatternStats struct {
	Pattern        uint64
	Correct, Total uint64
}

// Accuracy returns the pattern's prediction accuracy.
func (p PatternStats) Accuracy() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Total)
}

// NewPatternProfiler returns a profiler for histBits-long histories.
func NewPatternProfiler(histBits uint) *PatternProfiler {
	if histBits == 0 || histBits > 64 {
		panic("conf: pattern profiler bits out of range")
	}
	return &PatternProfiler{HistBits: histBits, counts: map[uint64]*PatternStats{}}
}

// Name implements Estimator.
func (p *PatternProfiler) Name() string { return "PatternProfiler" }

// Estimate implements Estimator (neutral: always high confidence).
func (p *PatternProfiler) Estimate(pc int64, info bpred.Info) bool { return true }

// Resolve implements Estimator: accumulate the pattern's outcome.
func (p *PatternProfiler) Resolve(pc int64, info bpred.Info, correct bool) {
	h := info.Hist & (uint64(1)<<p.HistBits - 1)
	s := p.counts[h]
	if s == nil {
		s = &PatternStats{Pattern: h}
		p.counts[h] = s
	}
	s.Total++
	if correct {
		s.Correct++
	}
}

// Top returns the n most frequent patterns, most frequent first.
func (p *PatternProfiler) Top(n int) []PatternStats {
	all := make([]PatternStats, 0, len(p.counts))
	for _, s := range p.counts {
		all = append(all, *s)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Total != all[j].Total {
			return all[i].Total > all[j].Total
		}
		return all[i].Pattern < all[j].Pattern
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Dominance summarizes how concentrated and how trustworthy the pattern
// distribution is: the branch fraction covered by the top n patterns,
// and the accuracy over exactly that covered fraction.
func (p *PatternProfiler) Dominance(n int) (coverage, accuracy float64) {
	top := p.Top(n)
	var total, covered, correct uint64
	for _, s := range p.counts {
		total += s.Total
	}
	for _, s := range top {
		covered += s.Total
		correct += s.Correct
	}
	if total == 0 || covered == 0 {
		return 0, 0
	}
	return float64(covered) / float64(total), float64(correct) / float64(covered)
}

// Patterns returns the number of distinct patterns observed.
func (p *PatternProfiler) Patterns() int { return len(p.counts) }
