package conf

import (
	"fmt"
	"strconv"
	"strings"

	"specctrl/internal/bpred"
)

// CombineRule selects how a Combiner folds its members' estimates into
// one confidence bit.
type CombineRule uint8

const (
	// CombineMin is the minimum of the binary confidences: high only
	// when every member is high — And generalized to N members.
	CombineMin CombineRule = iota
	// CombineWeightedVote sums the weights of the members voting high
	// and compares against Threshold (default: half the total weight, a
	// majority vote).
	CombineWeightedVote
	// CombineNoisyOR treats each high-voting member as independent
	// evidence of reliability w_i that the prediction is correct,
	// combines beliefs as 1 - Π(1-w_i) over the high voters, and is
	// high when the combined belief reaches Threshold.
	CombineNoisyOR
)

// String returns the rule's canonical short name.
func (r CombineRule) String() string {
	switch r {
	case CombineMin:
		return "min"
	case CombineWeightedVote:
		return "vote"
	case CombineNoisyOR:
		return "nor"
	}
	return fmt.Sprintf("rule(%d)", uint8(r))
}

// Combiner folds any number of estimators into one Estimator, so
// combined confidence flows through every existing sweep — and through
// a speculation-control policy — unchanged. Like And/Or it evaluates
// every member unconditionally on every branch (stateful members must
// observe the full stream) and fans Resolve out to all of them.
//
// Weights (optional) give each member's vote weight (CombineWeightedVote)
// or reliability in (0,1] (CombineNoisyOR); nil means 1.0 per member for
// voting and 0.5 per member for noisy-OR. Threshold (optional, 0 =
// default) is the decision point: the minimum high-vote weight sum for
// voting (default half the total weight) and the minimum combined
// belief for noisy-OR (default 0.5). CombineMin ignores both.
type Combiner struct {
	Rule      CombineRule
	Members   []Estimator
	Weights   []float64
	Threshold float64
}

// Validate checks the combiner's shape; Combiners are usually built
// statically, so callers that want the panicking form can pair it with
// MustValidate-style helpers of their own.
func (c *Combiner) Validate() error {
	if len(c.Members) == 0 {
		return fmt.Errorf("conf: Combiner needs at least one member")
	}
	for i, m := range c.Members {
		if m == nil {
			return fmt.Errorf("conf: Combiner member %d is nil", i)
		}
	}
	if c.Weights != nil && len(c.Weights) != len(c.Members) {
		return fmt.Errorf("conf: Combiner has %d weights for %d members", len(c.Weights), len(c.Members))
	}
	for i, w := range c.Weights {
		if w <= 0 {
			return fmt.Errorf("conf: Combiner weight %d is %g, want > 0", i, w)
		}
		if c.Rule == CombineNoisyOR && w > 1 {
			return fmt.Errorf("conf: Combiner noisy-OR reliability %d is %g, want (0,1]", i, w)
		}
	}
	if c.Threshold < 0 {
		return fmt.Errorf("conf: Combiner threshold %g is negative", c.Threshold)
	}
	return nil
}

// weight returns member i's configured or default weight.
func (c *Combiner) weight(i int) float64 {
	if c.Weights != nil {
		return c.Weights[i]
	}
	if c.Rule == CombineNoisyOR {
		return 0.5
	}
	return 1
}

// threshold returns the effective decision threshold.
func (c *Combiner) threshold() float64 {
	if c.Threshold > 0 {
		return c.Threshold
	}
	if c.Rule == CombineNoisyOR {
		return 0.5
	}
	total := 0.0
	for i := range c.Members {
		total += c.weight(i)
	}
	return total / 2
}

// Name implements Estimator. The name is canonical — rule, member
// names, and any non-default weights/threshold — because it identifies
// the combined estimator in ConfStats and in experiment cell addresses.
func (c *Combiner) Name() string {
	names := make([]string, len(c.Members))
	for i, m := range c.Members {
		names[i] = m.Name()
	}
	var b strings.Builder
	b.WriteString(c.Rule.String())
	b.WriteByte('(')
	b.WriteString(strings.Join(names, ","))
	if c.Weights != nil {
		b.WriteString(";w=")
		for i, w := range c.Weights {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(w, 'g', -1, 64))
		}
	}
	if c.Threshold > 0 {
		fmt.Fprintf(&b, ";t=%s", strconv.FormatFloat(c.Threshold, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Estimate implements Estimator.
func (c *Combiner) Estimate(pc int64, info bpred.Info) bool {
	// Evaluate every member unconditionally — no short-circuiting —
	// so stateful members observe every branch (the And/Or contract).
	switch c.Rule {
	case CombineMin:
		high := true
		for _, m := range c.Members {
			if !m.Estimate(pc, info) {
				high = false
			}
		}
		return high
	case CombineWeightedVote:
		sum := 0.0
		for i, m := range c.Members {
			if m.Estimate(pc, info) {
				sum += c.weight(i)
			}
		}
		return sum >= c.threshold()
	case CombineNoisyOR:
		doubt := 1.0 // probability every high voter is wrong
		for i, m := range c.Members {
			if m.Estimate(pc, info) {
				doubt *= 1 - c.weight(i)
			}
		}
		return 1-doubt >= c.threshold()
	}
	panic(fmt.Sprintf("conf: unknown CombineRule %d", c.Rule))
}

// Resolve implements Estimator.
func (c *Combiner) Resolve(pc int64, info bpred.Info, correct bool) {
	for _, m := range c.Members {
		m.Resolve(pc, info, correct)
	}
}
