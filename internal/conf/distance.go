package conf

import (
	"fmt"

	"specctrl/internal/bpred"
)

// Distance is the paper's misprediction-distance estimator (§4.1):
// effectively a JRS estimator collapsed to a *single* global miss
// distance counter. It exploits the clustering of branch mispredictions —
// branches fetched shortly after a detected misprediction are much more
// likely to be mispredicted themselves — so a branch is high confidence
// only when more than Threshold branches have been fetched since the
// last *resolved* misprediction.
//
// The counter advances on every fetched conditional branch (Estimate is
// called for wrong-path branches too; a real implementation counts
// fetched branches, not committed ones) and resets when a misprediction
// is detected at resolution.
type Distance struct {
	// Threshold: high confidence when the distance is > Threshold.
	Threshold int
	count     int
}

// NewDistance returns a distance estimator; it panics on negative
// thresholds.
func NewDistance(threshold int) *Distance {
	if threshold < 0 {
		panic(fmt.Sprintf("conf: negative distance threshold %d", threshold))
	}
	return &Distance{Threshold: threshold}
}

// Name implements Estimator.
func (d *Distance) Name() string { return fmt.Sprintf("Dist(>%d)", d.Threshold) }

// Estimate implements Estimator: classify this branch by the current
// distance, then count it.
func (d *Distance) Estimate(pc int64, info bpred.Info) bool {
	hc := d.count > d.Threshold
	d.count++
	return hc
}

// Resolve implements Estimator: a detected misprediction resets the
// global counter.
func (d *Distance) Resolve(pc int64, info bpred.Info, correct bool) {
	if !correct {
		d.count = 0
	}
}

// Count exposes the current distance (for tests and diagnostics).
func (d *Distance) Count() int { return d.count }

// Boost wraps another estimator and signals low confidence only after K
// consecutive low-confidence estimates from the inner estimator (§4.2).
// Approximating estimates as Bernoulli trials, the PVN of the boosted
// low-confidence signal is about 1-(1-PVN)^K — but the signal describes
// the state of the *pipeline* (at least one of the K branches is likely
// wrong), not any single branch, so only applications like thread
// switching that act on pipeline state can use it.
type Boost struct {
	Inner Estimator
	// K is the required run length of low-confidence estimates.
	K   int
	run int
}

// NewBoost wraps inner with a K-deep booster; it panics when K < 1.
func NewBoost(inner Estimator, k int) *Boost {
	if k < 1 {
		panic(fmt.Sprintf("conf: boost depth %d < 1", k))
	}
	return &Boost{Inner: inner, K: k}
}

// Name implements Estimator.
func (b *Boost) Name() string { return fmt.Sprintf("Boost(%s,k=%d)", b.Inner.Name(), b.K) }

// Estimate implements Estimator.
func (b *Boost) Estimate(pc int64, info bpred.Info) bool {
	if b.Inner.Estimate(pc, info) {
		b.run = 0
		return true
	}
	b.run++
	if b.run >= b.K {
		b.run = 0
		return false
	}
	return true
}

// Resolve implements Estimator: forwarded to the inner estimator.
func (b *Boost) Resolve(pc int64, info bpred.Info, correct bool) {
	b.Inner.Resolve(pc, info, correct)
}

// Always is a reference estimator that reports a fixed confidence for
// every branch: Always{true} marks everything high confidence (its PVN
// is undefined and its SENS is 1), Always{false} marks everything low
// confidence (its PVN equals the misprediction rate — the paper's
// "threshold 16" end point).
type Always struct {
	High bool
}

// Name implements Estimator.
func (a Always) Name() string {
	if a.High {
		return "AlwaysHC"
	}
	return "AlwaysLC"
}

// Estimate implements Estimator.
func (a Always) Estimate(pc int64, info bpred.Info) bool { return a.High }

// Resolve implements Estimator.
func (a Always) Resolve(pc int64, info bpred.Info, correct bool) {}
