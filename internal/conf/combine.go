package conf

import (
	"fmt"

	"specctrl/internal/bpred"
)

// And combines two estimators conservatively: high confidence only when
// both agree it is high confidence. SPEC and PVP can only improve over
// the stronger input; SENS can only fall. The McFarling "Both Strong"
// variant is the hand-built special case of this combinator.
type And struct {
	A, B Estimator
}

// Name implements Estimator.
func (c And) Name() string { return fmt.Sprintf("And(%s,%s)", c.A.Name(), c.B.Name()) }

// Estimate implements Estimator.
func (c And) Estimate(pc int64, info bpred.Info) bool {
	// Evaluate both unconditionally: stateful estimators (Distance,
	// Boost) must observe every branch.
	a := c.A.Estimate(pc, info)
	b := c.B.Estimate(pc, info)
	return a && b
}

// Resolve implements Estimator.
func (c And) Resolve(pc int64, info bpred.Info, correct bool) {
	c.A.Resolve(pc, info, correct)
	c.B.Resolve(pc, info, correct)
}

// Or combines two estimators permissively: low confidence only when both
// agree. SENS can only improve; SPEC can only fall ("Either Strong" is
// the hand-built special case).
type Or struct {
	A, B Estimator
}

// Name implements Estimator.
func (c Or) Name() string { return fmt.Sprintf("Or(%s,%s)", c.A.Name(), c.B.Name()) }

// Estimate implements Estimator.
func (c Or) Estimate(pc int64, info bpred.Info) bool {
	a := c.A.Estimate(pc, info)
	b := c.B.Estimate(pc, info)
	return a || b
}

// Resolve implements Estimator.
func (c Or) Resolve(pc int64, info bpred.Info, correct bool) {
	c.A.Resolve(pc, info, correct)
	c.B.Resolve(pc, info, correct)
}

// Invert flips another estimator's estimates; useful in analysis
// tooling (e.g. measuring what the complement of a confident set looks
// like), not as a hardware proposal.
type Invert struct {
	Inner Estimator
}

// Name implements Estimator.
func (c Invert) Name() string { return fmt.Sprintf("Not(%s)", c.Inner.Name()) }

// Estimate implements Estimator.
func (c Invert) Estimate(pc int64, info bpred.Info) bool {
	return !c.Inner.Estimate(pc, info)
}

// Resolve implements Estimator.
func (c Invert) Resolve(pc int64, info bpred.Info, correct bool) {
	c.Inner.Resolve(pc, info, correct)
}
