package conf

import (
	"testing"

	"specctrl/internal/bpred"
)

// benchEstimate drives an estimator through its per-branch lifecycle —
// Estimate at fetch, Resolve at resolution — over a small set of
// branch sites with a deterministic mispredict mix, approximating the
// stream the pipeline generates.
func benchEstimate(b *testing.B, e Estimator) {
	b.ReportAllocs()
	var lfsr uint64 = 0xace1
	for i := 0; i < b.N; i++ {
		pc := int64(64 + (i%16)*4)
		lfsr = (lfsr >> 1) ^ (-(lfsr & 1) & 0xb400)
		info := bpred.Info{Pred: lfsr&2 != 0, Hist: lfsr}
		e.Estimate(pc, info)
		e.Resolve(pc, info, i%16 < 13 || lfsr&1 == 1)
	}
}

func BenchmarkEstimateJRS(b *testing.B)         { benchEstimate(b, NewJRS(DefaultJRS)) }
func BenchmarkEstimateSatCounters(b *testing.B) { benchEstimate(b, SatCounters{}) }
func BenchmarkEstimateSatCountersMcFarling(b *testing.B) {
	benchEstimate(b, SatCountersMcFarling{Variant: BothStrong})
}
func BenchmarkEstimatePatternHistory(b *testing.B) { benchEstimate(b, NewPatternHistory(10)) }
func BenchmarkEstimateDistance(b *testing.B)       { benchEstimate(b, NewDistance(4)) }
func BenchmarkEstimateBoost(b *testing.B)          { benchEstimate(b, NewBoost(SatCounters{}, 4)) }
func BenchmarkEstimateOnesCount(b *testing.B) {
	benchEstimate(b, NewOnesCount(OnesCountConfig{Entries: 1024, Bits: 16, Threshold: 15, Enhanced: true}))
}
func BenchmarkEstimateJRSMcFarling(b *testing.B) {
	benchEstimate(b, NewJRSMcFarling(DefaultJRS, BothTables))
}
func BenchmarkEstimateAlways(b *testing.B) { benchEstimate(b, Always{High: true}) }
