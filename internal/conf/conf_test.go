package conf

import (
	"strings"
	"testing"
	"testing/quick"

	"specctrl/internal/bpred"
)

func info(pred bool, hist uint64) bpred.Info {
	return bpred.Info{Pred: pred, Hist: hist}
}

func TestJRSThresholdBehaviour(t *testing.T) {
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 3})
	in := info(true, 0)
	pc := int64(5)
	if j.Estimate(pc, in) {
		t.Error("fresh counter should be low confidence")
	}
	for i := 0; i < 3; i++ {
		j.Resolve(pc, in, true)
	}
	if !j.Estimate(pc, in) {
		t.Error("counter at threshold should be high confidence")
	}
}

func TestJRSResetOnMisprediction(t *testing.T) {
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 2})
	in := info(true, 0)
	pc := int64(9)
	for i := 0; i < 10; i++ {
		j.Resolve(pc, in, true)
	}
	if !j.Estimate(pc, in) {
		t.Fatal("saturated counter should be high confidence")
	}
	j.Resolve(pc, in, false)
	if j.Estimate(pc, in) {
		t.Error("counter not reset by misprediction")
	}
	if j.Counter(pc, in) != 0 {
		t.Errorf("counter = %d after reset", j.Counter(pc, in))
	}
}

func TestJRSSaturates(t *testing.T) {
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 15})
	in := info(false, 7)
	pc := int64(3)
	for i := 0; i < 100; i++ {
		j.Resolve(pc, in, true)
	}
	if j.Counter(pc, in) != 15 {
		t.Errorf("counter = %d, want saturated 15", j.Counter(pc, in))
	}
}

func TestJRSUnreachableThresholdAlwaysLC(t *testing.T) {
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 16})
	in := info(true, 0)
	for i := 0; i < 100; i++ {
		j.Resolve(1, in, true)
	}
	if j.Estimate(1, in) {
		t.Error("threshold 16 must label everything low confidence")
	}
}

func TestJRSEnhancedSeparatesPredictions(t *testing.T) {
	// With enhanced indexing, the same (pc, hist) with different
	// predicted directions must use different counters.
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 1, Enhanced: true})
	pc := int64(12)
	taken := info(true, 0x3a)
	notTaken := info(false, 0x3a)
	j.Resolve(pc, taken, true)
	if !j.Estimate(pc, taken) {
		t.Error("trained direction should be high confidence")
	}
	if j.Estimate(pc, notTaken) {
		t.Error("untrained direction should remain low confidence")
	}
	// Base indexing shares one counter for both directions.
	base := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 1, Enhanced: false})
	base.Resolve(pc, taken, true)
	if !base.Estimate(pc, notTaken) {
		t.Error("base JRS should share the counter across directions")
	}
}

func TestJRSIndexUsesHistory(t *testing.T) {
	j := NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 1})
	pc := int64(0)
	j.Resolve(pc, info(true, 1), true)
	if j.Estimate(pc, info(true, 2)) {
		t.Error("different history should map to a different counter")
	}
}

func TestJRSConfigValidate(t *testing.T) {
	bad := []JRSConfig{
		{Entries: 0, Bits: 4, Threshold: 1},
		{Entries: 3, Bits: 4, Threshold: 1},
		{Entries: 64, Bits: 0, Threshold: 1},
		{Entries: 64, Bits: 17, Threshold: 1},
		{Entries: 64, Bits: 4, Threshold: -1},
		{Entries: 64, Bits: 4, Threshold: 17},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultJRS.Validate(); err != nil {
		t.Errorf("DefaultJRS invalid: %v", err)
	}
}

func TestSatCountersStrength(t *testing.T) {
	e := SatCounters{}
	for c, want := range map[bpred.Counter2]bool{0: true, 1: false, 2: false, 3: true} {
		got := e.Estimate(0, bpred.Info{C1: c})
		if got != want {
			t.Errorf("counter %d: estimate = %v, want %v", c, got, want)
		}
	}
}

func TestMcFarlingVariants(t *testing.T) {
	both := SatCountersMcFarling{Variant: BothStrong}
	either := SatCountersMcFarling{Variant: EitherStrong}
	cases := []struct {
		c1, c2     bpred.Counter2
		p1, p2     bool
		wantBoth   bool
		wantEither bool
	}{
		{3, 3, true, true, true, true},    // both strong, agree
		{0, 0, false, false, true, true},  // both strong NT, agree
		{3, 0, true, false, false, true},  // both strong, disagree
		{3, 2, true, true, false, true},   // one strong
		{1, 2, false, true, false, false}, // both weak
	}
	for i, c := range cases {
		in := bpred.Info{C1: c.c1, C2: c.c2, P1: c.p1, P2: c.p2}
		if got := both.Estimate(0, in); got != c.wantBoth {
			t.Errorf("case %d BothStrong = %v, want %v", i, got, c.wantBoth)
		}
		if got := either.Estimate(0, in); got != c.wantEither {
			t.Errorf("case %d EitherStrong = %v, want %v", i, got, c.wantEither)
		}
	}
}

// Property: BothStrong high confidence implies EitherStrong high
// confidence (BothStrong is strictly more selective).
func TestBothStrongSubsetOfEitherStrong(t *testing.T) {
	both := SatCountersMcFarling{Variant: BothStrong}
	either := SatCountersMcFarling{Variant: EitherStrong}
	f := func(c1, c2 uint8, p1, p2 bool) bool {
		in := bpred.Info{C1: bpred.Counter2(c1 % 4), C2: bpred.Counter2(c2 % 4), P1: p1, P2: p2}
		if both.Estimate(0, in) {
			return either.Estimate(0, in)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternHistoryConfidentSet(t *testing.T) {
	p := NewPatternHistory(8)
	confident := []uint64{
		0xff,       // always taken
		0x00,       // always not-taken
		0xfe, 0xf7, // one zero
		0x01, 0x10, // one one
		0x55, 0xaa, // alternating
	}
	for _, h := range confident {
		if !p.Confident(h) {
			t.Errorf("pattern %08b should be confident", h)
		}
	}
	notConfident := []uint64{0xcc, 0x0f, 0x33, 0b10010110}
	for _, h := range notConfident {
		if p.Confident(h) {
			t.Errorf("pattern %08b should not be confident", h)
		}
	}
}

func TestPatternHistoryMasksHighBits(t *testing.T) {
	p := NewPatternHistory(4)
	// Bits above the history length must be ignored.
	if !p.Confident(0xf0f) { // low nibble 0xf = always taken
		t.Error("high bits not masked")
	}
}

// Property: the confident-pattern count grows linearly with history
// length (2 all-same + 2·(k choose 1 shapes) + 2 alternating), so the
// fraction of confident patterns collapses as 2^-k — the reason the
// estimator marks almost everything low confidence under long global
// histories.
func TestPatternConfidentFractionShrinks(t *testing.T) {
	count := func(bits uint) int {
		p := NewPatternHistory(bits)
		n := 0
		for h := uint64(0); h < 1<<bits; h++ {
			if p.Confident(h) {
				n++
			}
		}
		return n
	}
	if c := count(4); c != 2+4+4+2 {
		// k=4: all-0, all-1, four one-zero, four one-one, 0101, 1010.
		t.Errorf("confident patterns for 4 bits = %d, want 12", c)
	}
	c8, c12 := count(8), count(12)
	if c8 != 2+8+8+2 || c12 != 2+12+12+2 {
		t.Errorf("confident counts: 8b=%d 12b=%d", c8, c12)
	}
	frac8 := float64(c8) / 256
	frac12 := float64(c12) / 4096
	if frac12 >= frac8 {
		t.Error("confident fraction should shrink with history length")
	}
}

func TestStaticEstimator(t *testing.T) {
	s := Static{HighConfidence: map[int64]bool{100: true}, Threshold: 0.9}
	if !s.Estimate(100, bpred.Info{}) {
		t.Error("profiled site should be high confidence")
	}
	if s.Estimate(200, bpred.Info{}) {
		t.Error("unprofiled site should be low confidence")
	}
	if !strings.Contains(s.Name(), "90") {
		t.Errorf("Name = %q should mention the threshold", s.Name())
	}
}

func TestDistanceCountsAndResets(t *testing.T) {
	d := NewDistance(2)
	in := info(true, 0)
	// Distances 0,1,2 are low confidence; >2 high.
	want := []bool{false, false, false, true, true}
	for i, w := range want {
		if got := d.Estimate(0, in); got != w {
			t.Errorf("branch %d: estimate = %v, want %v", i, got, w)
		}
	}
	d.Resolve(0, in, false) // detected misprediction resets
	if d.Count() != 0 {
		t.Errorf("count after reset = %d", d.Count())
	}
	if d.Estimate(0, in) {
		t.Error("first branch after reset should be low confidence")
	}
	d.Resolve(0, in, true) // correct resolution does not reset
	if d.Count() != 1 {
		t.Errorf("count after correct resolve = %d", d.Count())
	}
}

func TestDistanceThresholdZero(t *testing.T) {
	d := NewDistance(0)
	in := info(true, 0)
	if d.Estimate(0, in) {
		t.Error("distance 0 with threshold 0 must be low confidence (0 > 0 is false)")
	}
	if !d.Estimate(0, in) {
		t.Error("distance 1 with threshold 0 must be high confidence")
	}
}

func TestBoostRequiresRun(t *testing.T) {
	b := NewBoost(Always{High: false}, 3)
	in := info(true, 0)
	got := []bool{}
	for i := 0; i < 7; i++ {
		got = append(got, b.Estimate(0, in))
	}
	// Runs of 3 LC: indices 2 and 5 fire (run resets after firing).
	want := []bool{true, true, false, true, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("boost estimate %d = %v, want %v (%v)", i, got[i], want[i], got)
		}
	}
}

func TestBoostResetsOnHighConfidence(t *testing.T) {
	inner := &scripted{seq: []bool{false, false, true, false, false, false}}
	b := NewBoost(inner, 3)
	in := info(true, 0)
	var got []bool
	for range inner.seq {
		got = append(got, b.Estimate(0, in))
	}
	want := []bool{true, true, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("boost estimate %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// scripted replays a fixed estimate sequence (test double).
type scripted struct {
	seq []bool
	i   int
	res int
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Estimate(pc int64, info bpred.Info) bool {
	v := s.seq[s.i%len(s.seq)]
	s.i++
	return v
}
func (s *scripted) Resolve(pc int64, info bpred.Info, correct bool) { s.res++ }

func TestBoostForwardsResolve(t *testing.T) {
	inner := &scripted{seq: []bool{true}}
	b := NewBoost(inner, 2)
	b.Resolve(0, info(true, 0), true)
	if inner.res != 1 {
		t.Error("Resolve not forwarded to inner estimator")
	}
}

func TestAlwaysEstimators(t *testing.T) {
	if !(Always{High: true}).Estimate(0, bpred.Info{}) {
		t.Error("AlwaysHC returned low confidence")
	}
	if (Always{High: false}).Estimate(0, bpred.Info{}) {
		t.Error("AlwaysLC returned high confidence")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"jrs":      func() { NewJRS(JRSConfig{}) },
		"pattern":  func() { NewPatternHistory(0) },
		"distance": func() { NewDistance(-1) },
		"boost":    func() { NewBoost(Always{}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor accepted invalid input", name)
				}
			}()
			f()
		}()
	}
}

func TestNames(t *testing.T) {
	ests := []Estimator{
		NewJRS(DefaultJRS),
		NewJRS(JRSConfig{Entries: 64, Bits: 4, Threshold: 7}),
		SatCounters{},
		SatCountersMcFarling{Variant: BothStrong},
		SatCountersMcFarling{Variant: EitherStrong},
		NewPatternHistory(13),
		Static{Threshold: 0.9},
		NewDistance(4),
		NewBoost(NewDistance(1), 2),
		Always{High: true},
		Always{High: false},
	}
	seen := map[string]bool{}
	for _, e := range ests {
		n := e.Name()
		if n == "" {
			t.Error("empty estimator name")
		}
		if seen[n] {
			t.Errorf("duplicate estimator name %q", n)
		}
		seen[n] = true
	}
}

func BenchmarkJRSEstimateResolve(b *testing.B) {
	j := NewJRS(DefaultJRS)
	in := info(true, 0x5a5)
	for i := 0; i < b.N; i++ {
		pc := int64(i & 0xffff)
		_ = j.Estimate(pc, in)
		j.Resolve(pc, in, i&7 != 0)
	}
}

func BenchmarkDistanceEstimate(b *testing.B) {
	d := NewDistance(4)
	in := info(true, 0)
	for i := 0; i < b.N; i++ {
		_ = d.Estimate(0, in)
		if i&15 == 0 {
			d.Resolve(0, in, false)
		}
	}
}
