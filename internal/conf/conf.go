// Package conf implements the confidence estimators studied in the paper
// (§3–§4): hardware mechanisms that label each branch prediction "high
// confidence" (likely correct) or "low confidence" (likely mispredicted),
// so an architecture can apply speculation control — gate the pipeline,
// switch threads, or fork eager execution — on low-confidence branches.
//
// Estimators:
//
//   - JRS: the Jacobsen/Rotenberg/Smith one-level resetting miss distance
//     counter (MDC) table, including the paper's *enhanced* variant that
//     folds the branch prediction into the table index (§3.2.1).
//   - SatCounters: reuses the saturating counters of the underlying
//     predictor (Smith); for the McFarling predictor, the "Both Strong"
//     and "Either Strong" variants of §3.3.1.
//   - PatternHistory: Lick et al's fixed set of confident history
//     patterns (§3, "Pattern History Estimator").
//   - Static: profile-derived per-branch-site confidence with an accuracy
//     threshold (§3, "Static Estimator"); see internal/profile for the
//     training pass.
//   - Distance: the paper's new misprediction-distance estimator — a
//     single global counter of branches fetched since the last *detected*
//     misprediction (§4.1).
//   - Boost: a composite that requires k consecutive low-confidence
//     estimates before signalling low confidence (§4.2).
//   - OnesCount / GlobalMDCIndexed: Jacobsen et al's correct/incorrect-
//     register designs, including the global-MDC-indexed variant §4.1
//     argues against.
//   - JRSMcFarling: the §5 future-work sketch — two MDC tables mirroring
//     the McFarling predictor's two indexing structures.
//   - And / Or / Invert: combinators for composing estimators.
//   - PatternProfiler: an analysis probe measuring per-pattern accuracy
//     (the §3.2 dominance measurement), not a hardware scheme.
//
// # Interface contract
//
// The pipeline calls Estimate exactly once per fetched conditional branch
// (wrong-path branches included — a real estimator cannot know it is on
// the wrong path), in fetch order, and Resolve once per branch that
// reaches resolution, in program order, with the outcome. Estimators that
// keep no mutable state simply ignore Resolve.
package conf

import (
	"fmt"

	"specctrl/internal/bpred"
)

// Estimator assesses the quality of individual branch predictions.
type Estimator interface {
	// Name identifies the estimator in reports, e.g. "JRS(t=15)".
	Name() string

	// Estimate returns true for high confidence in the prediction
	// described by info for the branch at pc. Called once per fetched
	// conditional branch, in fetch order.
	Estimate(pc int64, info bpred.Info) bool

	// Resolve informs the estimator of the branch's actual outcome.
	// correct reports whether the prediction in info was right. Called
	// once per resolved branch, in program order.
	Resolve(pc int64, info bpred.Info, correct bool)
}

// JRSConfig parameterizes the JRS estimator.
type JRSConfig struct {
	// Entries is the number of miss distance counters (power of two).
	// The paper's default is 4096.
	Entries int
	// Bits is the counter width; the paper uses 4-bit counters, which
	// saturate at 15.
	Bits uint
	// Threshold marks high confidence when the counter value is >=
	// Threshold. A threshold of 1<<Bits is unreachable and labels every
	// branch low confidence.
	Threshold int
	// Enhanced folds the branch prediction into the MDC index (§3.2.1),
	// distinguishing the taken and not-taken variants of a history.
	Enhanced bool
}

// Validate checks the configuration.
func (c JRSConfig) Validate() error {
	switch {
	case c.Entries <= 0 || c.Entries&(c.Entries-1) != 0:
		return fmt.Errorf("conf: JRS entries %d not a positive power of two", c.Entries)
	case c.Bits == 0 || c.Bits > 16:
		return fmt.Errorf("conf: JRS counter width %d out of range", c.Bits)
	case c.Threshold < 0 || c.Threshold > 1<<c.Bits:
		return fmt.Errorf("conf: JRS threshold %d out of range for %d-bit counters", c.Threshold, c.Bits)
	}
	return nil
}

// DefaultJRS is the paper's headline configuration: 4096 4-bit counters,
// threshold 15, enhanced indexing.
var DefaultJRS = JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}

// JRS is the resetting-counter estimator. Each branch prediction reads a
// miss distance counter selected by XORing the PC with the branch history
// used for the prediction; counts at or above the threshold are high
// confidence. On a correct prediction the counter increments
// (saturating); on a misprediction it resets to zero, so a counter only
// reaches the threshold after a run of correct predictions — which works
// because mispredictions cluster (§4.1).
type JRS struct {
	cfg   JRSConfig
	table []uint16
	max   uint16
}

// NewJRS returns a JRS estimator; it panics on invalid configuration.
func NewJRS(cfg JRSConfig) *JRS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &JRS{
		cfg:   cfg,
		table: make([]uint16, cfg.Entries),
		max:   uint16(1<<cfg.Bits - 1),
	}
}

// Name implements Estimator.
func (j *JRS) Name() string {
	v := "JRS"
	if j.cfg.Enhanced {
		v = "JRS+"
	}
	return fmt.Sprintf("%s(t=%d)", v, j.cfg.Threshold)
}

func (j *JRS) index(pc int64, info bpred.Info) int {
	// Enhanced indexing (§3.2.1): treat the prediction as a speculative
	// extension of the branch history — the predicted direction is the
	// next history bit before it is known. Indexing with the extended
	// history both separates the taken/not-taken variants of a context
	// and re-partitions the aliasing pattern away from the predictor's,
	// which is where the improvement comes from.
	var idx uint64
	if j.cfg.Enhanced {
		idx = uint64(pc) ^ (info.Hist<<1 | b2u(info.Pred))
	} else {
		idx = uint64(pc) ^ info.Hist
	}
	return int(idx & uint64(j.cfg.Entries-1))
}

// Estimate implements Estimator.
func (j *JRS) Estimate(pc int64, info bpred.Info) bool {
	return int(j.table[j.index(pc, info)]) >= j.cfg.Threshold
}

// Resolve implements Estimator: increment on correct, reset on incorrect.
func (j *JRS) Resolve(pc int64, info bpred.Info, correct bool) {
	i := j.index(pc, info)
	if !correct {
		j.table[i] = 0
		return
	}
	if j.table[i] < j.max {
		j.table[i]++
	}
}

// Counter exposes the current MDC value for a (pc, info) pair; used by
// tests and diagnostics.
func (j *JRS) Counter(pc int64, info bpred.Info) int {
	return int(j.table[j.index(pc, info)])
}

// Config returns the estimator's configuration. Table state depends
// only on the non-Threshold fields (the threshold is compared at
// Estimate time, never stored), which is what lets a replay evaluator
// share one table across a threshold sweep.
func (j *JRS) Config() JRSConfig { return j.cfg }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
