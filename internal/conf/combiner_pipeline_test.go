package conf_test

import (
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/rng"
)

// mixProgram builds a small trace with both predictable and
// data-dependent branches, so member estimators genuinely disagree.
func mixProgram(iters int) *isa.Program {
	b := isa.NewBuilder("combmix")
	g := rng.New(7)
	for i := int64(0); i < 128; i++ {
		b.Word(1000+i, int64(g.Intn(2)))
	}
	b.Li(1, 0).Li(2, int32(iters)).Li(3, 0).Li(4, 1000)
	b.Label("loop")
	b.Andi(5, 1, 127)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Beq(6, isa.Zero, "skip")
	b.Addi(3, 3, 1)
	b.Label("skip")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return b.MustBuild()
}

// TestCombinerMatchesOracleOnTrace is the differential gate for the
// combiner layer: run a real simulation with the member estimators and
// three combiners over the same members attached side by side, then
// check — branch by branch, from the recorded per-branch confidence
// mask — that every combiner's bit equals the hand-computed rule over
// its members' own bits. Each combiner owns private member instances
// with identical configurations; since every estimator attached to a
// run observes the same estimate/resolve stream, the private copies
// stay in lockstep with the standalone members.
func TestCombinerMatchesOracleOnTrace(t *testing.T) {
	newMembers := func() []conf.Estimator {
		return []conf.Estimator{
			conf.NewJRS(conf.DefaultJRS),
			conf.SatCounters{},
			conf.NewDistance(3),
		}
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 20_000
	cfg.MaxCycles = 10_000_000
	cfg.RecordEvents = true
	cfg.Estimators = append(newMembers(),
		&conf.Combiner{Rule: conf.CombineMin, Members: newMembers()},
		&conf.Combiner{Rule: conf.CombineWeightedVote, Members: newMembers()},
		&conf.Combiner{Rule: conf.CombineNoisyOR, Members: newMembers()},
	)
	st, err := pipeline.MustNew(cfg, mixProgram(1<<30), bpred.NewGshare(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) == 0 {
		t.Fatal("no branch events recorded; the differential is vacuous")
	}
	var highs [3]int
	for n, ev := range st.Events {
		j := ev.ConfMask&(1<<0) != 0 // JRS
		s := ev.ConfMask&(1<<1) != 0 // SatCnt
		d := ev.ConfMask&(1<<2) != 0 // Dist(>3)
		votes := 0
		for _, v := range []bool{j, s, d} {
			if v {
				votes++
			}
		}
		// Hand-computed oracles: min is unanimity; a 3-member default
		// vote (weight 1 each, threshold 1.5) needs 2 votes; a default
		// noisy-OR (reliability 0.5, threshold 0.5) needs any vote.
		oracle := [3]bool{
			j && s && d,
			votes >= 2,
			votes >= 1,
		}
		for i, want := range oracle {
			got := ev.ConfMask&(1<<(3+uint(i))) != 0
			if got != want {
				t.Fatalf("event %d (pc=%d): combiner %d bit %v, oracle %v (members j=%v s=%v d=%v)",
					n, ev.PC, i, got, want, j, s, d)
			}
			if got {
				highs[i]++
			}
		}
	}
	// Guard against a vacuous pass: every combiner must have said both
	// high and low at least once over the trace.
	for i, h := range highs {
		if h == 0 || h == len(st.Events) {
			t.Errorf("combiner %d was constant over %d events (%d high); trace too degenerate",
				i, len(st.Events), h)
		}
	}
}
