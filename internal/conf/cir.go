package conf

import (
	"fmt"
	"math/bits"

	"specctrl/internal/bpred"
)

// OnesCount is Jacobsen, Rotenberg and Smith's other estimator family:
// a table of correct/incorrect registers (CIRs). Each entry is an n-bit
// shift register recording whether the last n predictions mapping there
// were correct (1) or incorrect (0); a prediction is high confidence
// when at least Threshold of the last n were correct. Unlike the
// resetting MDC, a single misprediction only removes one "1" — the
// estimator forgives isolated mispredictions but reacts to clusters.
//
// Indexing matches the JRS estimator (PC xor history, optionally with
// the prediction folded in), which the paper identifies as the property
// that makes table-based estimators work (§4.1).
type OnesCount struct {
	cfg   OnesCountConfig
	table []uint32
	mask  uint32
}

// OnesCountConfig parameterizes the CIR estimator.
type OnesCountConfig struct {
	// Entries is the number of CIRs (power of two).
	Entries int
	// Bits is the shift-register length (1..32).
	Bits uint
	// Threshold marks high confidence when popcount >= Threshold.
	Threshold int
	// Enhanced folds the prediction into the index, as for JRS.
	Enhanced bool
}

// Validate checks the configuration.
func (c OnesCountConfig) Validate() error {
	switch {
	case c.Entries <= 0 || c.Entries&(c.Entries-1) != 0:
		return fmt.Errorf("conf: CIR entries %d not a positive power of two", c.Entries)
	case c.Bits == 0 || c.Bits > 32:
		return fmt.Errorf("conf: CIR register length %d out of range", c.Bits)
	case c.Threshold < 0 || c.Threshold > int(c.Bits):
		return fmt.Errorf("conf: CIR threshold %d out of range for %d bits", c.Threshold, c.Bits)
	}
	return nil
}

// NewOnesCount returns a CIR estimator; it panics on invalid
// configuration. Registers start all-zero (everything low confidence
// until a history accumulates), matching the JRS cold-start behaviour.
func NewOnesCount(cfg OnesCountConfig) *OnesCount {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &OnesCount{
		cfg:   cfg,
		table: make([]uint32, cfg.Entries),
		mask:  uint32(1)<<cfg.Bits - 1,
	}
}

// Name implements Estimator.
func (o *OnesCount) Name() string {
	return fmt.Sprintf("CIR(%d/%d)", o.cfg.Threshold, o.cfg.Bits)
}

func (o *OnesCount) index(pc int64, info bpred.Info) int {
	var idx uint64
	if o.cfg.Enhanced {
		idx = uint64(pc) ^ (info.Hist<<1 | b2u(info.Pred))
	} else {
		idx = uint64(pc) ^ info.Hist
	}
	return int(idx & uint64(o.cfg.Entries-1))
}

// Estimate implements Estimator.
func (o *OnesCount) Estimate(pc int64, info bpred.Info) bool {
	return bits.OnesCount32(o.table[o.index(pc, info)]) >= o.cfg.Threshold
}

// Resolve implements Estimator: shift in the outcome bit.
func (o *OnesCount) Resolve(pc int64, info bpred.Info, correct bool) {
	i := o.index(pc, info)
	v := o.table[i] << 1
	if correct {
		v |= 1
	}
	o.table[i] = v & o.mask
}

// GlobalMDCIndexed is the variant §4.1 attributes to Jacobsen et al: a
// single *global* miss distance counter (branches since the last
// detected misprediction) whose clamped value indexes a table of CIR
// registers. The paper argues this "probably did not work well" because
// the indexing structure no longer matches the branch predictor's — an
// hypothesis this implementation lets the experiments test directly.
type GlobalMDCIndexed struct {
	cfg   OnesCountConfig
	table []uint32
	mask  uint32
	mdc   int
}

// NewGlobalMDCIndexed returns the global-MDC-indexed CIR estimator.
func NewGlobalMDCIndexed(cfg OnesCountConfig) *GlobalMDCIndexed {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &GlobalMDCIndexed{
		cfg:   cfg,
		table: make([]uint32, cfg.Entries),
		mask:  uint32(1)<<cfg.Bits - 1,
	}
}

// Name implements Estimator.
func (g *GlobalMDCIndexed) Name() string {
	return fmt.Sprintf("gMDC-CIR(%d/%d)", g.cfg.Threshold, g.cfg.Bits)
}

func (g *GlobalMDCIndexed) index() int {
	i := g.mdc
	if i >= g.cfg.Entries {
		i = g.cfg.Entries - 1
	}
	return i
}

// Estimate implements Estimator: classify by the CIR selected by the
// current global distance. The distance counts *resolved* branches since
// the last detected misprediction, so the entry a branch reads is the
// entry its own resolution trains — the pairing the hardware achieves by
// latching the MDC value with the branch.
func (g *GlobalMDCIndexed) Estimate(pc int64, info bpred.Info) bool {
	return bits.OnesCount32(g.table[g.index()]) >= g.cfg.Threshold
}

// Resolve implements Estimator: train the CIR at the current distance,
// then advance it — or reset it on a detected misprediction.
func (g *GlobalMDCIndexed) Resolve(pc int64, info bpred.Info, correct bool) {
	i := g.index()
	v := g.table[i] << 1
	if correct {
		v |= 1
	}
	g.table[i] = v & g.mask
	if correct {
		g.mdc++
	} else {
		g.mdc = 0
	}
}
