package conf

import "specctrl/internal/bpred"

// SatCounters is the "saturating counters" estimator (Smith): a branch is
// high confidence when the 2-bit counter that produced its prediction is
// in a saturated (strong) state. It reuses the predictor's own state and
// therefore costs no additional hardware. Use it with single-counter
// predictors (bimodal, gshare, SAg) whose counter arrives in Info.C1.
type SatCounters struct{}

// Name implements Estimator.
func (SatCounters) Name() string { return "SatCnt" }

// Estimate implements Estimator.
func (SatCounters) Estimate(pc int64, info bpred.Info) bool {
	return info.C1.Strong()
}

// Resolve implements Estimator (stateless).
func (SatCounters) Resolve(pc int64, info bpred.Info, correct bool) {}

// McFarlingVariant selects how the two component counters of a McFarling
// predictor combine into a confidence estimate (§3.3.1). The transitional
// counter states count as "weak"; saturated states as "strong".
type McFarlingVariant int

const (
	// BothStrong signals high confidence only when both component
	// predictors are strongly biased in the same direction. Higher SPEC
	// and PVP; fewer branches marked high confidence.
	BothStrong McFarlingVariant = iota
	// EitherStrong signals low confidence only when both component
	// predictors are weak. Higher SENS; more branches marked high
	// confidence.
	EitherStrong
)

// String returns the paper's name for the variant.
func (v McFarlingVariant) String() string {
	if v == BothStrong {
		return "Both Strong"
	}
	return "Either Strong"
}

// SatCountersMcFarling is the saturating-counters estimator adapted to
// the McFarling combining predictor, using the strength of both component
// counters (Info.C1 = gshare, Info.C2 = bimodal). The meta predictor is
// deliberately ignored: the paper found meta-based variants had lower
// SPEC and PVN.
type SatCountersMcFarling struct {
	Variant McFarlingVariant
}

// Name implements Estimator.
func (s SatCountersMcFarling) Name() string {
	if s.Variant == BothStrong {
		return "SatCnt(both)"
	}
	return "SatCnt(either)"
}

// Estimate implements Estimator.
func (s SatCountersMcFarling) Estimate(pc int64, info bpred.Info) bool {
	s1, s2 := info.C1.Strong(), info.C2.Strong()
	switch s.Variant {
	case BothStrong:
		// Both strong and agreeing in direction.
		return s1 && s2 && info.P1 == info.P2
	default: // EitherStrong
		return s1 || s2
	}
}

// Resolve implements Estimator (stateless).
func (s SatCountersMcFarling) Resolve(pc int64, info bpred.Info, correct bool) {}
