package bpred

// Gshare is the gshare predictor of McFarling's report: a table of 2-bit
// counters indexed by the exclusive-or of the branch PC and a global
// branch history register. History is updated speculatively at Predict
// time and rewound through Recover, matching the paper's "speculative
// gshare" configuration.
type Gshare struct {
	table    []Counter2
	histBits uint
	hist     uint64
}

// NewGshare returns a gshare predictor with 2^indexBits counters and an
// indexBits-long global history register. The paper's configuration is
// indexBits=12 (a 4096-entry table).
func NewGshare(indexBits uint) *Gshare {
	if indexBits == 0 || indexBits > 30 {
		panic("bpred: gshare index bits out of range")
	}
	return &Gshare{
		table:    make([]Counter2, 1<<indexBits),
		histBits: indexBits,
	}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc int64, hist uint64) uint64 {
	return (uint64(pc) ^ hist) & mask(g.histBits)
}

// Predict implements Predictor. The global history is speculatively
// shifted with the predicted outcome.
func (g *Gshare) Predict(pc int64) (bool, Checkpoint, Info) {
	ckpt := Checkpoint{hist: g.hist}
	idx := g.index(pc, g.hist)
	c := g.table[idx]
	pred := c.Taken()
	info := Info{Pred: pred, Hist: g.hist, C1: c}
	g.hist = (g.hist<<1 | b2u(pred)) & mask(g.histBits)
	return pred, ckpt, info
}

// Resolve implements Predictor: trains the counter that produced the
// prediction (indexed with the history in effect at prediction time).
func (g *Gshare) Resolve(pc int64, info Info, taken bool) {
	idx := g.index(pc, info.Hist)
	g.table[idx] = g.table[idx].Update(taken)
}

// Recover implements Predictor: rewinds the history register to the
// checkpoint and re-applies the branch's true outcome.
func (g *Gshare) Recover(ckpt Checkpoint, pc int64, taken bool) {
	g.hist = (ckpt.hist<<1 | b2u(taken)) & mask(g.histBits)
}

// History returns the current (speculative) global history value; the
// pattern-history confidence estimator reads it.
func (g *Gshare) History() (value uint64, bits uint) { return g.hist, g.histBits }

// Bimodal is the classic Smith predictor: a table of 2-bit counters
// indexed by the branch PC alone. It has no history, so Checkpoint and
// Recover are no-ops.
type Bimodal struct {
	table []Counter2
	bits  uint
}

// NewBimodal returns a bimodal predictor with 2^indexBits counters.
func NewBimodal(indexBits uint) *Bimodal {
	if indexBits == 0 || indexBits > 30 {
		panic("bpred: bimodal index bits out of range")
	}
	return &Bimodal{table: make([]Counter2, 1<<indexBits), bits: indexBits}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) index(pc int64) uint64 { return uint64(pc) & mask(b.bits) }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc int64) (bool, Checkpoint, Info) {
	c := b.table[b.index(pc)]
	return c.Taken(), Checkpoint{}, Info{Pred: c.Taken(), C1: c}
}

// Resolve implements Predictor.
func (b *Bimodal) Resolve(pc int64, info Info, taken bool) {
	idx := b.index(pc)
	b.table[idx] = b.table[idx].Update(taken)
}

// Recover implements Predictor (no speculative state).
func (b *Bimodal) Recover(ckpt Checkpoint, pc int64, taken bool) {}

// Static predicts a fixed direction for every branch; useful as a
// baseline and in tests.
type Static struct {
	Taken bool
}

// Name implements Predictor.
func (s Static) Name() string {
	if s.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

// Predict implements Predictor.
func (s Static) Predict(pc int64) (bool, Checkpoint, Info) {
	return s.Taken, Checkpoint{}, Info{Pred: s.Taken}
}

// Resolve implements Predictor.
func (s Static) Resolve(pc int64, info Info, taken bool) {}

// Recover implements Predictor.
func (s Static) Recover(ckpt Checkpoint, pc int64, taken bool) {}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Snapshot implements Predictor.
func (g *Gshare) Snapshot() Checkpoint { return Checkpoint{hist: g.hist} }

// RestoreSnapshot implements Predictor.
func (g *Gshare) RestoreSnapshot(ckpt Checkpoint) { g.hist = ckpt.hist }

// Snapshot implements Predictor (no speculative state).
func (b *Bimodal) Snapshot() Checkpoint { return Checkpoint{} }

// RestoreSnapshot implements Predictor.
func (b *Bimodal) RestoreSnapshot(ckpt Checkpoint) {}

// Snapshot implements Predictor (no speculative state).
func (s Static) Snapshot() Checkpoint { return Checkpoint{} }

// RestoreSnapshot implements Predictor.
func (s Static) RestoreSnapshot(ckpt Checkpoint) {}

// GshareNonSpec is gshare with *non-speculative* history update: the
// global history register is written at Resolve time with the actual
// outcome, never at Predict time, so predictions between a branch's
// fetch and its resolution see stale history. The paper (§3.1) notes
// this "slightly increases the branch misprediction rate"; the ablation
// experiment quantifies it on this simulator.
type GshareNonSpec struct {
	table    []Counter2
	histBits uint
	hist     uint64
}

// NewGshareNonSpec returns a non-speculatively-updated gshare with
// 2^indexBits counters.
func NewGshareNonSpec(indexBits uint) *GshareNonSpec {
	if indexBits == 0 || indexBits > 30 {
		panic("bpred: gshare index bits out of range")
	}
	return &GshareNonSpec{
		table:    make([]Counter2, 1<<indexBits),
		histBits: indexBits,
	}
}

// Name implements Predictor.
func (g *GshareNonSpec) Name() string { return "gshare-nonspec" }

// Predict implements Predictor. History is not touched.
func (g *GshareNonSpec) Predict(pc int64) (bool, Checkpoint, Info) {
	idx := (uint64(pc) ^ g.hist) & mask(g.histBits)
	c := g.table[idx]
	return c.Taken(), Checkpoint{}, Info{Pred: c.Taken(), Hist: g.hist, C1: c}
}

// Resolve implements Predictor: trains the counter and appends the true
// outcome to the history.
func (g *GshareNonSpec) Resolve(pc int64, info Info, taken bool) {
	idx := (uint64(pc) ^ info.Hist) & mask(g.histBits)
	g.table[idx] = g.table[idx].Update(taken)
	g.hist = (g.hist<<1 | b2u(taken)) & mask(g.histBits)
}

// Recover implements Predictor (nothing speculative to rewind).
func (g *GshareNonSpec) Recover(ckpt Checkpoint, pc int64, taken bool) {}

// Snapshot implements Predictor.
func (g *GshareNonSpec) Snapshot() Checkpoint { return Checkpoint{} }

// RestoreSnapshot implements Predictor.
func (g *GshareNonSpec) RestoreSnapshot(ckpt Checkpoint) {}
