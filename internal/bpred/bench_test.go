package bpred

import "testing"

// benchPredict drives a predictor through its full per-branch
// lifecycle — Predict, Resolve, and Recover on mispredictions —
// over a small working set of branch sites with data-dependent
// outcomes, approximating the mix the pipeline generates.
func benchPredict(b *testing.B, p Predictor) {
	b.ReportAllocs()
	var lfsr uint64 = 0xace1
	for i := 0; i < b.N; i++ {
		pc := int64(64 + (i%16)*4)
		// 16-bit LFSR: cheap deterministic outcome stream with both
		// biased and random-looking sites.
		lfsr = (lfsr >> 1) ^ (-(lfsr & 1) & 0xb400)
		taken := i%16 < 10 || lfsr&1 == 1
		pred, ckpt, info := p.Predict(pc)
		p.Resolve(pc, info, taken)
		if pred != taken {
			p.Recover(ckpt, pc, taken)
		}
	}
}

func BenchmarkPredictGshare(b *testing.B)        { benchPredict(b, NewGshare(12)) }
func BenchmarkPredictGshareNonSpec(b *testing.B) { benchPredict(b, NewGshareNonSpec(12)) }
func BenchmarkPredictMcFarling(b *testing.B)     { benchPredict(b, NewMcFarling(12)) }
func BenchmarkPredictSAg(b *testing.B)           { benchPredict(b, NewSAg(11, 13)) }
func BenchmarkPredictBimodal(b *testing.B)       { benchPredict(b, NewBimodal(12)) }
func BenchmarkPredictStatic(b *testing.B)        { benchPredict(b, Static{Taken: true}) }
