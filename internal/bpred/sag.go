package bpred

// SAg is a two-level predictor with per-branch (self) history and a
// global pattern table: the first level is a tagless table of branch
// history registers indexed by PC, the second a table of 2-bit counters
// indexed by the history pattern (Yeh & Patt's SAg).
//
// Following the paper, SAg history is updated *non-speculatively*: the
// history register is written when the branch resolves, not when it is
// predicted, because rolling back a table of per-branch histories on a
// squash is impractical in hardware. Consequently Checkpoint/Recover are
// no-ops and back-to-back instances of the same branch may predict from
// slightly stale history — exactly the effect the paper describes.
type SAg struct {
	bht      []uint64   // branch history table, indexed by PC
	pht      []Counter2 // pattern history table, indexed by history
	bhtBits  uint
	histBits uint
}

// NewSAg returns a SAg predictor with 2^bhtBits history registers, each
// histBits long, and a 2^histBits-entry pattern table. The paper uses
// bhtBits=11 (2048 entries) and histBits=13 (8192 counters).
func NewSAg(bhtBits, histBits uint) *SAg {
	if bhtBits == 0 || bhtBits > 24 || histBits == 0 || histBits > 26 {
		panic("bpred: sag configuration out of range")
	}
	return &SAg{
		bht:      make([]uint64, 1<<bhtBits),
		pht:      make([]Counter2, 1<<histBits),
		bhtBits:  bhtBits,
		histBits: histBits,
	}
}

// Name implements Predictor.
func (s *SAg) Name() string { return "sag" }

func (s *SAg) bhtIndex(pc int64) uint64 { return uint64(pc) & mask(s.bhtBits) }

// Predict implements Predictor. Info.Hist carries the branch's own
// history pattern, which both indexes the PHT and feeds the
// pattern-history confidence estimator.
func (s *SAg) Predict(pc int64) (bool, Checkpoint, Info) {
	hist := s.bht[s.bhtIndex(pc)]
	c := s.pht[hist]
	pred := c.Taken()
	return pred, Checkpoint{}, Info{Pred: pred, Hist: hist, C1: c}
}

// Resolve implements Predictor: trains the pattern counter under the
// history used at prediction time, then updates the branch's history
// register with the true outcome (non-speculative update).
func (s *SAg) Resolve(pc int64, info Info, taken bool) {
	s.pht[info.Hist] = s.pht[info.Hist].Update(taken)
	bi := s.bhtIndex(pc)
	s.bht[bi] = (s.bht[bi]<<1 | b2u(taken)) & mask(s.histBits)
}

// Recover implements Predictor. SAg holds no speculative state.
func (s *SAg) Recover(ckpt Checkpoint, pc int64, taken bool) {}

// HistoryBits returns the length of the per-branch history registers.
func (s *SAg) HistoryBits() uint { return s.histBits }

// HistoryFor returns the current history pattern of the branch at pc.
func (s *SAg) HistoryFor(pc int64) uint64 { return s.bht[s.bhtIndex(pc)] }

// Snapshot implements Predictor (no speculative state).
func (s *SAg) Snapshot() Checkpoint { return Checkpoint{} }

// RestoreSnapshot implements Predictor.
func (s *SAg) RestoreSnapshot(ckpt Checkpoint) {}
