package bpred

// McFarling is the combining predictor from McFarling's WRL report: a
// gshare component and a bimodal component, with a third table of 2-bit
// "meta" counters (indexed by PC) choosing between them. The global
// history of the gshare component is updated speculatively and rewound on
// mispredictions, as in the paper's "speculative McFarling" configuration.
//
// Training follows the standard rule: both components train on every
// resolved branch; the meta counter moves toward the component that was
// correct only when the two components disagreed.
type McFarling struct {
	gshare  []Counter2
	bimodal []Counter2
	meta    []Counter2
	bits    uint
	hist    uint64
}

// NewMcFarling returns a combining predictor whose three tables each have
// 2^indexBits entries. The paper's configuration is indexBits=12.
func NewMcFarling(indexBits uint) *McFarling {
	if indexBits == 0 || indexBits > 30 {
		panic("bpred: mcfarling index bits out of range")
	}
	n := 1 << indexBits
	return &McFarling{
		gshare:  make([]Counter2, n),
		bimodal: make([]Counter2, n),
		meta:    make([]Counter2, n),
		bits:    indexBits,
	}
}

// Name implements Predictor.
func (m *McFarling) Name() string { return "mcfarling" }

func (m *McFarling) gIndex(pc int64, hist uint64) uint64 {
	return (uint64(pc) ^ hist) & mask(m.bits)
}

func (m *McFarling) pIndex(pc int64) uint64 { return uint64(pc) & mask(m.bits) }

// Predict implements Predictor. Info carries both component counters
// (C1 = gshare, C2 = bimodal) and the meta counter for the
// saturating-counters confidence estimator variants.
func (m *McFarling) Predict(pc int64) (bool, Checkpoint, Info) {
	ckpt := Checkpoint{hist: m.hist}
	c1 := m.gshare[m.gIndex(pc, m.hist)]
	c2 := m.bimodal[m.pIndex(pc)]
	meta := m.meta[m.pIndex(pc)]
	p1, p2 := c1.Taken(), c2.Taken()
	// Meta counter: taken-half selects the gshare component.
	pred := p2
	if meta.Taken() {
		pred = p1
	}
	info := Info{Pred: pred, Hist: m.hist, C1: c1, C2: c2, Meta: meta, P1: p1, P2: p2}
	m.hist = (m.hist<<1 | b2u(pred)) & mask(m.bits)
	return pred, ckpt, info
}

// Resolve implements Predictor.
func (m *McFarling) Resolve(pc int64, info Info, taken bool) {
	gi := m.gIndex(pc, info.Hist)
	pi := m.pIndex(pc)
	m.gshare[gi] = m.gshare[gi].Update(taken)
	m.bimodal[pi] = m.bimodal[pi].Update(taken)
	if info.P1 != info.P2 {
		// Reinforce the component that was right: gshare lives in the
		// taken half of the meta counter.
		m.meta[pi] = m.meta[pi].Update(info.P1 == taken)
	}
}

// Recover implements Predictor.
func (m *McFarling) Recover(ckpt Checkpoint, pc int64, taken bool) {
	m.hist = (ckpt.hist<<1 | b2u(taken)) & mask(m.bits)
}

// History returns the current (speculative) global history value.
func (m *McFarling) History() (value uint64, bits uint) { return m.hist, m.bits }

// Snapshot implements Predictor.
func (m *McFarling) Snapshot() Checkpoint { return Checkpoint{hist: m.hist} }

// RestoreSnapshot implements Predictor.
func (m *McFarling) RestoreSnapshot(ckpt Checkpoint) { m.hist = ckpt.hist }
