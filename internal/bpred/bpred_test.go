package bpred

import (
	"testing"
	"testing/quick"

	"specctrl/internal/rng"
)

func TestCounter2Saturation(t *testing.T) {
	c := Counter2(0)
	if c.Dec() != 0 {
		t.Error("Dec below 0")
	}
	c = Counter2(3)
	if c.Inc() != 3 {
		t.Error("Inc above 3")
	}
	for v, want := range map[Counter2]bool{0: false, 1: false, 2: true, 3: true} {
		if v.Taken() != want {
			t.Errorf("Counter2(%d).Taken() = %v", v, v.Taken())
		}
	}
	for v, want := range map[Counter2]bool{0: true, 1: false, 2: false, 3: true} {
		if v.Strong() != want {
			t.Errorf("Counter2(%d).Strong() = %v", v, v.Strong())
		}
	}
}

func TestCounter2UpdateWalk(t *testing.T) {
	c := Counter2(0)
	c = c.Update(true).Update(true) // 2
	if !c.Taken() || c.Strong() {
		t.Errorf("after TT from 0: %d", c)
	}
	c = c.Update(true) // 3
	if !c.Strong() {
		t.Errorf("after TTT from 0: %d", c)
	}
	c = c.Update(false) // 2
	if !c.Taken() {
		t.Error("one not-taken from strong flips direction")
	}
}

// trainAlternating feeds a strict repeating pattern to the predictor as if
// from a single in-order stream (resolve immediately, recover on miss) and
// returns the accuracy over the last half.
func trainPattern(p Predictor, pcs []int64, pattern []bool, n int) float64 {
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		pc := pcs[i%len(pcs)]
		taken := pattern[i%len(pattern)]
		pred, ckpt, info := p.Predict(pc)
		p.Resolve(pc, info, taken)
		if pred != taken {
			p.Recover(ckpt, pc, taken)
		}
		if i >= n/2 {
			total++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	acc := trainPattern(b, []int64{100}, []bool{true}, 200)
	if acc != 1.0 {
		t.Errorf("bimodal on always-taken: acc = %v, want 1", acc)
	}
	b = NewBimodal(10)
	acc = trainPattern(b, []int64{100}, []bool{false}, 200)
	if acc != 1.0 {
		t.Errorf("bimodal on always-not-taken: acc = %v, want 1", acc)
	}
}

func TestBimodalAlternatingIsPoor(t *testing.T) {
	b := NewBimodal(10)
	acc := trainPattern(b, []int64{100}, []bool{true, false}, 400)
	if acc > 0.6 {
		t.Errorf("bimodal on alternating: acc = %v, expected poor", acc)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	g := NewGshare(12)
	acc := trainPattern(g, []int64{100}, []bool{true, false}, 2000)
	if acc < 0.95 {
		t.Errorf("gshare on alternating: acc = %v, want ~1", acc)
	}
}

func TestGshareLearnsLoopPattern(t *testing.T) {
	// Pattern TTTTN of a 5-iteration loop is capturable with 12 bits of
	// history.
	g := NewGshare(12)
	acc := trainPattern(g, []int64{64}, []bool{true, true, true, true, false}, 5000)
	if acc < 0.95 {
		t.Errorf("gshare on loop pattern: acc = %v, want ~1", acc)
	}
}

func TestSAgLearnsLoopPattern(t *testing.T) {
	s := NewSAg(11, 13)
	acc := trainPattern(s, []int64{64}, []bool{true, true, true, false}, 5000)
	if acc < 0.95 {
		t.Errorf("sag on loop pattern: acc = %v, want ~1", acc)
	}
}

func TestMcFarlingBeatsComponentsOnMixedWorkload(t *testing.T) {
	// Branch A is globally correlated (alternating), branch B is heavily
	// biased but randomly placed so gshare aliases hurt it; the combiner
	// should match or beat each single component.
	run := func(p Predictor) float64 {
		g := rng.New(1)
		correct, total := 0, 0
		const n = 20000
		for i := 0; i < n; i++ {
			var pc int64
			var taken bool
			switch i % 2 {
			case 0:
				pc = 0x10
				taken = (i/2)%2 == 0
			default:
				pc = int64(0x100 + g.Intn(64))
				taken = true
			}
			pred, ckpt, info := p.Predict(pc)
			p.Resolve(pc, info, taken)
			if pred != taken {
				p.Recover(ckpt, pc, taken)
			}
			if i > n/2 && pred == taken {
				correct++
			}
			if i > n/2 {
				total++
			}
		}
		return float64(correct) / float64(total)
	}
	mcf := run(NewMcFarling(10))
	gsh := run(NewGshare(10))
	bim := run(NewBimodal(10))
	if mcf+0.02 < gsh || mcf+0.02 < bim {
		t.Errorf("mcfarling %.3f should be >= gshare %.3f and bimodal %.3f (within 2%%)", mcf, gsh, bim)
	}
}

func TestGshareRecoverRestoresHistory(t *testing.T) {
	g := NewGshare(8)
	// Drive some history in.
	for i := 0; i < 10; i++ {
		_, _, info := g.Predict(int64(i))
		g.Resolve(int64(i), info, i%2 == 0)
	}
	histBefore, _ := g.History()
	pred, ckpt, info := g.Predict(0x55)
	g.Resolve(0x55, info, !pred) // mispredicted
	g.Recover(ckpt, 0x55, !pred)
	histAfter, _ := g.History()
	want := (histBefore<<1 | b2u(!pred)) & mask(8)
	if histAfter != want {
		t.Errorf("history after recover = %b, want %b", histAfter, want)
	}
}

// TestSpeculativeHistoryEquivalence property: a gshare driven down a
// wrong path and recovered must end in exactly the state of a gshare that
// never saw the wrong path (history restored AND no counter pollution
// from unresolved branches).
func TestSpeculativeHistoryEquivalence(t *testing.T) {
	f := func(seed uint64, wrongLen uint8) bool {
		g1 := NewGshare(10)
		g2 := NewGshare(10)
		r := rng.New(seed)
		// Identical committed prologue.
		for i := 0; i < 50; i++ {
			pc := int64(r.Intn(256))
			taken := r.Bool(0.6)
			for _, g := range []*Gshare{g1, g2} {
				_, ckpt, info := g.Predict(pc)
				g.Resolve(pc, info, taken)
				if info.Pred != taken {
					g.Recover(ckpt, pc, taken)
				}
			}
		}
		// g1 now mispredicts a branch and speculates down a wrong path:
		// wrong-path branches are predicted but never resolved.
		pc := int64(r.Intn(256))
		pred1, ckpt1, info1 := g1.Predict(pc)
		taken := !pred1 // force a misprediction so a wrong path exists
		for i := 0; i < int(wrongLen%16); i++ {
			g1.Predict(int64(r.Intn(256))) // wrong path: predicted, never resolved
		}
		g1.Resolve(pc, info1, taken)
		g1.Recover(ckpt1, pc, taken)

		// g2 executes the same branch with no wrong-path excursion.
		pred2, ckpt2, info2 := g2.Predict(pc)
		g2.Resolve(pc, info2, taken)
		g2.Recover(ckpt2, pc, taken)

		if pred1 != pred2 {
			return false
		}
		h1, _ := g1.History()
		h2, _ := g2.History()
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMcFarlingMetaSelectsBetterComponent(t *testing.T) {
	m := NewMcFarling(10)
	// A single PC with an alternating pattern: gshare learns it, bimodal
	// cannot. After training, the meta counter must favor gshare.
	trainPattern(m, []int64{0x40}, []bool{true, false}, 2000)
	_, _, info := m.Predict(0x40)
	if !info.Meta.Taken() {
		t.Errorf("meta counter = %d, want taken-half (gshare)", info.Meta)
	}
}

func TestSAgSeparateHistories(t *testing.T) {
	s := NewSAg(8, 8)
	// Two branches with opposite biases must not interfere (different
	// BHT entries and mostly different patterns).
	for i := 0; i < 500; i++ {
		for pc, taken := range map[int64]bool{10: true, 20: false} {
			_, _, info := s.Predict(pc)
			s.Resolve(pc, info, taken)
		}
	}
	p1, _, _ := s.Predict(10)
	p2, _, _ := s.Predict(20)
	if !p1 || p2 {
		t.Errorf("sag predictions (%v,%v), want (true,false)", p1, p2)
	}
	if s.HistoryFor(10) == 0 || s.HistoryFor(20) != 0 {
		t.Error("per-branch histories not tracked independently")
	}
}

func TestSAgAliasing(t *testing.T) {
	// SAg is tagless: PCs that collide in the BHT share a history.
	s := NewSAg(4, 8)
	pcA, pcB := int64(3), int64(3+16) // same low 4 bits
	for i := 0; i < 100; i++ {
		_, _, info := s.Predict(pcA)
		s.Resolve(pcA, info, true)
	}
	if s.HistoryFor(pcB) != s.HistoryFor(pcA) {
		t.Error("aliased PCs should share a BHT entry")
	}
}

func TestStaticPredictor(t *testing.T) {
	at := Static{Taken: true}
	ant := Static{Taken: false}
	p1, _, _ := at.Predict(1)
	p2, _, _ := ant.Predict(1)
	if !p1 || p2 {
		t.Error("static predictors returned wrong directions")
	}
	if at.Name() == ant.Name() {
		t.Error("static predictor names collide")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewGshare(0) },
		func() { NewGshare(31) },
		func() { NewBimodal(0) },
		func() { NewMcFarling(0) },
		func() { NewSAg(0, 8) },
		func() { NewSAg(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid configuration")
				}
			}()
			f()
		}()
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ Predictor = NewGshare(4)
	var _ Predictor = NewBimodal(4)
	var _ Predictor = NewMcFarling(4)
	var _ Predictor = NewSAg(4, 4)
	var _ Predictor = Static{}
}

func BenchmarkGsharePredictResolve(b *testing.B) {
	g := NewGshare(12)
	r := rng.New(9)
	pcs := make([]int64, 1024)
	for i := range pcs {
		pcs[i] = int64(r.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i&1023]
		pred, ckpt, info := g.Predict(pc)
		taken := i&7 != 0
		g.Resolve(pc, info, taken)
		if pred != taken {
			g.Recover(ckpt, pc, taken)
		}
	}
}

func BenchmarkMcFarlingPredictResolve(b *testing.B) {
	m := NewMcFarling(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := int64(i & 0xfff)
		taken := i&3 != 0
		pred, ckpt, info := m.Predict(pc)
		m.Resolve(pc, info, taken)
		if pred != taken {
			m.Recover(ckpt, pc, taken)
		}
	}
}

func TestGshareNonSpecLearnsBias(t *testing.T) {
	g := NewGshareNonSpec(10)
	acc := trainPattern(g, []int64{50}, []bool{true}, 400)
	if acc != 1.0 {
		t.Errorf("non-spec gshare on always-taken: acc = %v", acc)
	}
}

func TestGshareNonSpecHistoryOnlyAtResolve(t *testing.T) {
	g := NewGshareNonSpec(8)
	_, _, info1 := g.Predict(1)
	_, _, info2 := g.Predict(2)
	if info1.Hist != info2.Hist {
		t.Error("history moved between predictions without a resolve")
	}
	g.Resolve(1, info1, true)
	_, _, info3 := g.Predict(3)
	if info3.Hist != (info1.Hist<<1|1)&0xff {
		t.Errorf("history after resolve = %b", info3.Hist)
	}
}

func TestGshareNonSpecInterface(t *testing.T) {
	var _ Predictor = NewGshareNonSpec(4)
}
