// Package bpred implements the branch predictors evaluated in the paper:
// bimodal (Smith), gshare and the McFarling combining predictor (both with
// speculatively updated global history), and SAg (per-branch history,
// non-speculatively updated), plus static taken/not-taken references.
//
// # Speculative history and recovery
//
// A pipelined processor predicts a branch long before it resolves, so the
// global history register must be updated with the *predicted* outcome for
// subsequent predictions to see it ("speculative update"). When a
// misprediction is discovered the history must be rewound to its state at
// the mispredicted branch and corrected. Predictors here expose that via
// an opaque Checkpoint captured at Predict time; the pipeline stores the
// checkpoint with each in-flight branch and calls Recover on a squash.
//
// SAg deliberately does not speculate on history (the paper argues
// rolling back a per-branch history table is impractical), so its
// Checkpoint is a no-op and history is written at Resolve time only.
//
// # Interface contract
//
// For each dynamic conditional branch the pipeline calls, in order:
//
//	pred, ckpt, info := p.Predict(pc)     // at fetch/decode
//	...
//	p.Resolve(pc, info, outcome)          // at branch execution
//	p.Recover(ckpt, pc, outcome)          // only if mispredicted
//
// Resolve is also called for squashed (wrong-path) branches when they
// resolve before the enclosing misprediction, matching real hardware where
// wrong-path branches can update tables before the squash.
package bpred

// Counter2 is a 2-bit saturating counter with the conventional state
// encoding: 0 = strongly not-taken, 1 = weakly not-taken, 2 = weakly
// taken, 3 = strongly taken.
type Counter2 uint8

// Inc moves the counter toward taken (saturating at 3).
func (c Counter2) Inc() Counter2 {
	if c < 3 {
		return c + 1
	}
	return c
}

// Dec moves the counter toward not-taken (saturating at 0).
func (c Counter2) Dec() Counter2 {
	if c > 0 {
		return c - 1
	}
	return c
}

// Update moves the counter toward the actual outcome.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		return c.Inc()
	}
	return c.Dec()
}

// Taken reports the counter's predicted direction.
func (c Counter2) Taken() bool { return c >= 2 }

// Strong reports whether the counter is in a saturated (high hysteresis)
// state. The saturating-counters confidence estimator keys off this.
func (c Counter2) Strong() bool { return c == 0 || c == 3 }

// Checkpoint captures predictor state that must be restored on a
// misprediction squash (global history registers). It is opaque to
// callers.
type Checkpoint struct {
	hist uint64
}

// Info carries per-prediction metadata from Predict to Resolve and to the
// confidence estimators (which component predictors said what, counter
// states, the history used for indexing).
type Info struct {
	Pred bool // overall predicted direction

	// Hist is the global or per-branch history value used to index the
	// pattern table for this prediction (before speculative update).
	Hist uint64

	// Counter states sampled at prediction time. For single-component
	// predictors only C1 is meaningful. For McFarling, C1 is the gshare
	// counter, C2 the bimodal counter and Meta the chooser.
	C1, C2, Meta Counter2

	// P1, P2 are the component predictions (McFarling only).
	P1, P2 bool
}

// Predictor is the interface shared by all branch direction predictors.
type Predictor interface {
	// Name identifies the predictor in reports ("gshare", ...).
	Name() string

	// Predict returns the predicted direction for the conditional
	// branch at pc, a checkpoint for squash recovery, and metadata for
	// confidence estimation. Predictors with speculative history update
	// it here.
	Predict(pc int64) (pred bool, ckpt Checkpoint, info Info)

	// Resolve trains the tables with the actual outcome. info must be
	// the value returned by the matching Predict.
	Resolve(pc int64, info Info, taken bool)

	// Recover rewinds speculative state to ckpt and re-applies the
	// corrected outcome of the mispredicted branch at pc. Called only
	// on mispredictions, after Resolve.
	Recover(ckpt Checkpoint, pc int64, taken bool)

	// Snapshot captures the current speculative state without making a
	// prediction; RestoreSnapshot rewinds to it verbatim. The pipeline
	// uses the pair around *indirect-jump* mispredictions, where the
	// wrong path polluted the history but no conditional-branch outcome
	// needs re-applying.
	Snapshot() Checkpoint
	RestoreSnapshot(ckpt Checkpoint)
}

func mask(bits uint) uint64 { return (1 << bits) - 1 }
