package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", SizeWords: 64, BlockWords: 4, Assoc: 2,
		HitLatency: 2, MissPenalty: 10}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	lat, hit := c.Access(0)
	if hit || lat != 12 {
		t.Errorf("cold access: hit=%v lat=%d, want miss lat=12", hit, lat)
	}
	lat, hit = c.Access(0)
	if !hit || lat != 2 {
		t.Errorf("warm access: hit=%v lat=%d, want hit lat=2", hit, lat)
	}
}

func TestBlockGranularity(t *testing.T) {
	c := New(small())
	c.Access(0)
	for addr := int64(1); addr < 4; addr++ {
		if _, hit := c.Access(addr); !hit {
			t.Errorf("addr %d should hit (same 4-word block)", addr)
		}
	}
	if _, hit := c.Access(4); hit {
		t.Error("addr 4 is the next block and should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	// 64 words / (4 words * 2 ways) = 8 sets. Blocks 0, 8, 16 (in block
	// numbers) map to set 0. With 2 ways, the third fill evicts the LRU.
	c := New(small())
	a, b, d := int64(0), int64(8*4), int64(16*4)
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill
	c.Access(a) // hit, a now MRU
	c.Access(d) // miss, evicts b
	if _, hit := c.Access(a); !hit {
		t.Error("a should still be resident")
	}
	if _, hit := c.Access(b); hit {
		t.Error("b should have been evicted as LRU")
	}
}

func TestNegativeAddresses(t *testing.T) {
	c := New(small())
	c.Access(-64)
	if _, hit := c.Access(-64); !hit {
		t.Error("negative address did not hit on re-access")
	}
	if _, hit := c.Access(64); hit {
		t.Error("positive alias of negative address hit")
	}
}

func TestStatsAndMissRate(t *testing.T) {
	c := New(small())
	c.Access(0)
	c.Access(0)
	c.Access(0)
	c.Access(1024)
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = (%d,%d), want (2,2)", hits, misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", c.MissRate())
	}
}

func TestMissRateEmpty(t *testing.T) {
	if New(small()).MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Access(0)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("stats not reset")
	}
	if _, hit := c.Access(0); hit {
		t.Error("contents not reset")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{SizeWords: 0, BlockWords: 4, Assoc: 1, HitLatency: 1},
		{SizeWords: 64, BlockWords: 3, Assoc: 1, HitLatency: 1},
		{SizeWords: 65, BlockWords: 4, Assoc: 1, HitLatency: 1},
		{SizeWords: 64, BlockWords: 4, Assoc: 1, HitLatency: 0},
		{SizeWords: 64, BlockWords: 4, Assoc: 1, HitLatency: 1, MissPenalty: -1},
		{SizeWords: 48, BlockWords: 4, Assoc: 1, HitLatency: 1}, // 12 sets, not a power of 2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := small().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := DefaultL1D.Validate(); err != nil {
		t.Errorf("DefaultL1D invalid: %v", err)
	}
	if err := DefaultL1I.Validate(); err != nil {
		t.Errorf("DefaultL1I invalid: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{})
}

// Property: a working set that fits entirely in the cache never misses
// after the first pass, for any access order.
func TestFittingWorkingSetAlwaysHits(t *testing.T) {
	f := func(perm []uint8) bool {
		c := New(small())
		// Touch all 16 blocks once (64 words / 4-word blocks).
		for blk := int64(0); blk < 16; blk++ {
			c.Access(blk * 4)
		}
		before, _ := c.Stats()
		for _, p := range perm {
			c.Access(int64(p%16) * 4)
		}
		after, misses := c.Stats()
		_ = after
		return misses == 16 && before == 0 || misses == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(DefaultL1D)
	for i := 0; i < b.N; i++ {
		c.Access(int64(i & 0x3fff))
	}
}
