// Package cache models set-associative L1 caches with LRU replacement.
//
// The pipeline simulator uses two instances — an instruction cache probed
// at fetch and a data cache probed by loads and stores — purely as timing
// models: a probe returns the access latency (hit latency or hit latency
// plus miss penalty) and updates replacement state. Data contents live in
// internal/mem; the cache tracks only tags, matching how timing-first
// simulators such as sim-outorder structure their hierarchies.
//
// Addresses are in words; BlockWords sets the words per cache block.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	Name        string // for reports, e.g. "L1I"
	SizeWords   int    // total capacity in words
	BlockWords  int    // words per block (power of two)
	Assoc       int    // ways per set
	HitLatency  int    // cycles for a hit
	MissPenalty int    // extra cycles for a miss
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.SizeWords <= 0 || c.BlockWords <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.BlockWords&(c.BlockWords-1) != 0:
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockWords)
	case c.SizeWords%(c.BlockWords*c.Assoc) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by block*assoc", c.Name, c.SizeWords)
	case c.HitLatency < 1 || c.MissPenalty < 0:
		return fmt.Errorf("cache %s: invalid latencies", c.Name)
	}
	sets := c.SizeWords / (c.BlockWords * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type way struct {
	valid bool
	tag   int64
	lru   uint64 // last-touched tick; larger = more recent
}

// Cache is a set-associative cache timing model.
type Cache struct {
	cfg       Config
	sets      [][]way
	setMask   int64
	blockBits uint
	setBits   uint // log2(set count); tag = block >> setBits
	tick      uint64

	// last{Block,Way} short-circuit the set scan when an access hits
	// the same block as the previous one — the common case for
	// sequential instruction fetch. The fast path performs exactly the
	// state updates the full path would (tick, lru, hit count), so
	// timing and replacement behaviour are bit-identical. The pointer
	// is valid because eviction only happens in the accessed block's
	// set: any access that could evict lastWay's block also replaces
	// lastBlock first.
	lastBlock int64
	lastWay   *way

	hits, misses uint64
}

// New builds a cache from cfg. It panics on invalid configurations, which
// are programming errors (configurations are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeWords / (cfg.BlockWords * cfg.Assoc)
	sets := make([][]way, nsets)
	backing := make([]way, nsets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockWords {
		blockBits++
	}
	setBits := uint(0)
	for 1<<setBits < nsets {
		setBits++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   int64(nsets - 1),
		blockBits: blockBits,
		setBits:   setBits,
	}
}

// Access probes the cache at the given word address, updating replacement
// state and filling on a miss. It returns the access latency in cycles
// and whether the access hit.
func (c *Cache) Access(addr int64) (latency int, hit bool) {
	c.tick++
	block := addr >> c.blockBits
	if w := c.lastWay; w != nil && block == c.lastBlock {
		w.lru = c.tick
		c.hits++
		return c.cfg.HitLatency, true
	}
	set := c.sets[block&c.setMask]
	tag := block >> c.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			c.hits++
			c.lastBlock, c.lastWay = block, &set[i]
			return c.cfg.HitLatency, true
		}
	}
	// Miss: fill an invalid way if one exists, else evict the LRU way.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
	}
	set[victim] = way{valid: true, tag: tag, lru: c.tick}
	c.misses++
	c.lastBlock, c.lastWay = block, &set[victim]
	return c.cfg.HitLatency + c.cfg.MissPenalty, false
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// MissRate returns misses / accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.hits, c.misses, c.tick = 0, 0, 0
	c.lastBlock, c.lastWay = 0, nil
}

// Default configurations matching the paper's simulator (§3.1): a 64 kB
// L1 data cache and an effectively 64 kB L1 instruction cache, 2-cycle
// access latency. Sizes are expressed in 8-byte words.
var (
	// DefaultL1D is the paper's 64 kB data cache: 8192 words, 4-way,
	// 8-word blocks.
	DefaultL1D = Config{Name: "L1D", SizeWords: 8192, BlockWords: 8, Assoc: 4,
		HitLatency: 2, MissPenalty: 20}
	// DefaultL1I is the paper's instruction cache (64 kB effective):
	// 8192 words, 2-way, 8-word blocks.
	DefaultL1I = Config{Name: "L1I", SizeWords: 8192, BlockWords: 8, Assoc: 2,
		HitLatency: 2, MissPenalty: 20}
)
