package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// paperExample is the worked example from §2.1: 100 branches, 80 correct,
// estimator says HC for 61 correct and 2 incorrect, LC for 19 correct and
// 18 incorrect.
var paperExample = Quadrant{Chc: 61, Ihc: 2, Clc: 19, Ilc: 18}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestPaperWorkedExample(t *testing.T) {
	q := paperExample
	if !approx(q.Sens(), 61.0/80, 1e-9) {
		t.Errorf("SENS = %v, want 76%%", q.Sens())
	}
	if !approx(q.PVP(), 61.0/63, 1e-9) {
		t.Errorf("PVP = %v, want 97%%", q.PVP())
	}
	if !approx(q.Spec(), 18.0/20, 1e-9) {
		t.Errorf("SPEC = %v, want 90%%", q.Spec())
	}
	if !approx(q.PVN(), 18.0/37, 1e-9) {
		t.Errorf("PVN = %v, want 49%%", q.PVN())
	}
	if !approx(q.Accuracy(), 0.80, 1e-9) {
		t.Errorf("accuracy = %v, want 0.80", q.Accuracy())
	}
}

func TestRecordRoutesQuadrants(t *testing.T) {
	var q Quadrant
	q.Record(true, true)
	q.Record(false, true)
	q.Record(true, false)
	q.Record(false, false)
	if q != (Quadrant{Chc: 1, Ihc: 1, Clc: 1, Ilc: 1}) {
		t.Errorf("Record routing wrong: %+v", q)
	}
	if q.Total() != 4 || q.Correct() != 2 || q.Incorrect() != 2 {
		t.Error("counts wrong")
	}
}

func TestEmptyQuadrantSafe(t *testing.T) {
	var q Quadrant
	m := q.Compute()
	if m.Sens != 0 || m.Spec != 0 || m.PVP != 0 || m.PVN != 0 || m.Accuracy != 0 {
		t.Error("empty quadrant should yield zero metrics, not NaN")
	}
}

func TestJacobsenMetrics(t *testing.T) {
	q := paperExample
	if !approx(q.JacobsenMisestimateRate(), 21.0/100, 1e-9) {
		t.Errorf("Jacobsen misestimate rate = %v", q.JacobsenMisestimateRate())
	}
	if !approx(q.JacobsenCoverage(), 37.0/100, 1e-9) {
		t.Errorf("Jacobsen coverage = %v", q.JacobsenCoverage())
	}
}

// Property (§2.1): SENS depends only on correctly predicted branches and
// SPEC only on incorrect ones, so scaling the other class leaves them
// unchanged — they are independent of prediction accuracy.
func TestSensSpecIndependentOfAccuracy(t *testing.T) {
	f := func(chc, clc, ihc, ilc uint16, scale uint8) bool {
		k := uint64(scale%7) + 2
		q1 := Quadrant{Chc: uint64(chc), Clc: uint64(clc), Ihc: uint64(ihc), Ilc: uint64(ilc)}
		// Scale only the incorrect side: SENS must not move.
		q2 := q1
		q2.Ihc *= k
		q2.Ilc *= k
		if !approx(q1.Sens(), q2.Sens(), 1e-12) || !approx(q1.Spec(), q2.Spec(), 1e-12) {
			return false
		}
		// Scale only the correct side: SPEC must not move.
		q3 := q1
		q3.Chc *= k
		q3.Clc *= k
		return approx(q1.Spec(), q3.Spec(), 1e-12) && approx(q1.Sens(), q3.Sens(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the analytic Bayes identities must reproduce PVP/PVN from
// (SENS, SPEC, accuracy) for any non-degenerate quadrant.
func TestAnalyticIdentitiesMatchQuadrants(t *testing.T) {
	f := func(chc, clc, ihc, ilc uint16) bool {
		q := Quadrant{
			Chc: uint64(chc) + 1, Clc: uint64(clc) + 1,
			Ihc: uint64(ihc) + 1, Ilc: uint64(ilc) + 1,
		}
		pvp := AnalyticPVP(q.Sens(), q.Spec(), q.Accuracy())
		pvn := AnalyticPVN(q.Sens(), q.Spec(), q.Accuracy())
		return approx(pvp, q.PVP(), 1e-9) && approx(pvn, q.PVN(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAnalyticMonotonicity(t *testing.T) {
	// Figure 1's qualitative claims: at fixed SENS and accuracy, raising
	// SPEC raises PVP; at fixed SPEC and accuracy, raising SENS raises
	// PVN; raising accuracy lowers PVN.
	prev := -1.0
	for spec := 0.1; spec < 1.0; spec += 0.1 {
		v := AnalyticPVP(0.7, spec, 0.9)
		if v < prev {
			t.Errorf("PVP not monotone in SPEC at %v", spec)
		}
		prev = v
	}
	prev = -1.0
	for sens := 0.1; sens < 1.0; sens += 0.1 {
		v := AnalyticPVN(sens, 0.7, 0.9)
		if v < prev {
			t.Errorf("PVN not monotone in SENS at %v", sens)
		}
		prev = v
	}
	if AnalyticPVN(0.7, 0.7, 0.95) >= AnalyticPVN(0.7, 0.7, 0.7) {
		t.Error("PVN should fall as accuracy rises")
	}
}

func TestAggregateMatchesPaperRule(t *testing.T) {
	qs := []Quadrant{
		{Chc: 10, Ihc: 5, Clc: 5, Ilc: 10},
		{Chc: 100, Ihc: 1, Clc: 1, Ilc: 1},
	}
	sum := Aggregate(qs)
	if sum != (Quadrant{Chc: 110, Ihc: 6, Clc: 6, Ilc: 11}) {
		t.Errorf("Aggregate = %+v", sum)
	}
	// The aggregate PVP must differ from the mean of the individual
	// PVPs (this is the point of the paper's rule).
	meanOfRatios := (qs[0].PVP() + qs[1].PVP()) / 2
	if approx(sum.PVP(), meanOfRatios, 1e-6) {
		t.Error("aggregate PVP coincidentally equals mean of ratios; pick better test data")
	}
}

func TestAggregateNormalizedEqualWeights(t *testing.T) {
	// A huge benchmark and a tiny one with identical shape must produce
	// the same normalized aggregate as either alone.
	a := Quadrant{Chc: 8000, Ihc: 1000, Clc: 500, Ilc: 500}
	b := Quadrant{Chc: 8, Ihc: 1, Clc: 1, Ilc: 0}
	n := AggregateNormalized([]Quadrant{a, b})
	wantChc := (0.8 + 0.8) / 2
	if !approx(n.Chc, wantChc, 1e-9) {
		t.Errorf("normalized Chc = %v, want %v", n.Chc, wantChc)
	}
	total := n.Chc + n.Ihc + n.Clc + n.Ilc
	if !approx(total, 1.0, 1e-9) {
		t.Errorf("normalized quadrants sum to %v", total)
	}
	m := n.Compute()
	if m.Sens <= 0 || m.PVP <= 0 {
		t.Error("normalized metrics degenerate")
	}
}

func TestAggregateNormalizedSkipsEmpty(t *testing.T) {
	n := AggregateNormalized([]Quadrant{{}, {Chc: 1, Ilc: 1}})
	if !approx(n.Chc, 0.5, 1e-9) || !approx(n.Ilc, 0.5, 1e-9) {
		t.Errorf("empty quadrant not skipped: %+v", n)
	}
}

func TestBoostedPVN(t *testing.T) {
	// §4.2's example: boosting a PVN of 30% over two events gives ~51%.
	got := BoostedPVN(0.30, 2)
	if !approx(got, 0.51, 1e-9) {
		t.Errorf("BoostedPVN(0.3, 2) = %v, want 0.51", got)
	}
	if !approx(BoostedPVN(0.3, 1), 0.3, 1e-12) {
		t.Error("k=1 must be identity")
	}
	if BoostedPVN(0.3, 0) != 0 {
		t.Error("k=0 must be 0")
	}
	// Monotone in k.
	prev := 0.0
	for k := 1; k < 10; k++ {
		v := BoostedPVN(0.2, k)
		if v <= prev {
			t.Errorf("BoostedPVN not increasing at k=%d", k)
		}
		prev = v
	}
}

func TestMetricsString(t *testing.T) {
	s := paperExample.Compute().String()
	if s == "" {
		t.Error("empty metrics string")
	}
	// Spot check the formatted percentages.
	want := "sens= 76% spec= 90% pvp= 97% pvn= 49%"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := Quadrant{Chc: 1, Ihc: 2, Clc: 3, Ilc: 4}
	b := Quadrant{Chc: 10, Ihc: 20, Clc: 30, Ilc: 40}
	a.Add(b)
	if a != (Quadrant{Chc: 11, Ihc: 22, Clc: 33, Ilc: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func BenchmarkRecord(b *testing.B) {
	var q Quadrant
	for i := 0; i < b.N; i++ {
		q.Record(i&3 != 0, i&7 != 0)
	}
}

func TestWilsonInterval(t *testing.T) {
	// 50/100 at 95%: the classic Wilson interval is about [0.404, 0.596].
	lo, hi := WilsonInterval(50, 100, 1.96)
	if !approx(lo, 0.404, 0.005) || !approx(hi, 0.596, 0.005) {
		t.Errorf("Wilson(50/100) = [%.3f, %.3f]", lo, hi)
	}
	// The interval must contain the point estimate.
	for _, c := range []struct{ s, n uint64 }{{0, 10}, {10, 10}, {3, 7}, {500, 100000}} {
		lo, hi := WilsonInterval(c.s, c.n, 1.96)
		p := float64(c.s) / float64(c.n)
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Errorf("interval [%v,%v] excludes point %v", lo, hi, p)
		}
		if lo < 0 || hi > 1 {
			t.Errorf("interval [%v,%v] out of [0,1]", lo, hi)
		}
	}
	// More samples shrink the interval.
	lo1, hi1 := WilsonInterval(50, 100, 1.96)
	lo2, hi2 := WilsonInterval(5000, 10000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Error("interval did not shrink with samples")
	}
	// Zero total: vacuous interval.
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v,%v]", lo, hi)
	}
}

func TestQuadrantIntervals(t *testing.T) {
	q := Quadrant{Chc: 61, Ihc: 2, Clc: 19, Ilc: 18}
	lo, hi := q.PVNInterval(1.96)
	if !(lo < q.PVN() && q.PVN() < hi) {
		t.Errorf("PVN %v outside its interval [%v,%v]", q.PVN(), lo, hi)
	}
	lo, hi = q.SpecInterval(1.96)
	if !(lo < q.Spec() && q.Spec() < hi) {
		t.Errorf("SPEC %v outside its interval [%v,%v]", q.Spec(), lo, hi)
	}
}

func TestAUCChanceAndPerfect(t *testing.T) {
	// No interior points: straight diagonal = 0.5.
	if got := AUC(nil); !approx(got, 0.5, 1e-9) {
		t.Errorf("empty AUC = %v", got)
	}
	// A perfect separator passes through (0,1).
	if got := AUC([]ROCPoint{{0, 1}}); !approx(got, 1.0, 1e-9) {
		t.Errorf("perfect AUC = %v", got)
	}
	// A realistic concave sweep lands strictly between.
	sweep := []ROCPoint{{0.05, 0.5}, {0.2, 0.8}, {0.5, 0.95}}
	got := AUC(sweep)
	if got <= 0.5 || got >= 1.0 {
		t.Errorf("sweep AUC = %v", got)
	}
}

func TestAUCOrderIndependent(t *testing.T) {
	a := AUC([]ROCPoint{{0.1, 0.6}, {0.3, 0.8}})
	b := AUC([]ROCPoint{{0.3, 0.8}, {0.1, 0.6}})
	if !approx(a, b, 1e-12) {
		t.Errorf("AUC depends on input order: %v vs %v", a, b)
	}
}

func TestROCFromQuadrant(t *testing.T) {
	q := Quadrant{Chc: 80, Clc: 20, Ihc: 5, Ilc: 15}
	pt := ROCFromQuadrant(q)
	if !approx(pt.TPR, 0.8, 1e-9) || !approx(pt.FPR, 0.25, 1e-9) {
		t.Errorf("ROC point = %+v", pt)
	}
}

// TestDegenerateQuadrants pins the zero-denominator behavior of every
// ratio metric: degenerate tables (no events, no mispredictions, no
// high-confidence estimates, ...) must yield 0, never NaN or Inf, so
// report tables and exported gauges stay finite.
func TestDegenerateQuadrants(t *testing.T) {
	cases := []struct {
		name string
		q    Quadrant
		want Metrics
	}{
		{
			name: "empty",
			q:    Quadrant{},
			want: Metrics{},
		},
		{
			name: "all correct high confidence",
			q:    Quadrant{Chc: 10},
			// No incorrect events → SPEC undefined → 0; no LC events
			// → PVN undefined → 0.
			want: Metrics{Sens: 1, PVP: 1, Accuracy: 1},
		},
		{
			name: "all correct low confidence",
			q:    Quadrant{Clc: 10},
			want: Metrics{Accuracy: 1},
		},
		{
			name: "all incorrect high confidence",
			q:    Quadrant{Ihc: 10},
			want: Metrics{},
		},
		{
			name: "all incorrect low confidence",
			q:    Quadrant{Ilc: 10},
			want: Metrics{Spec: 1, PVN: 1},
		},
		{
			name: "no high confidence events",
			q:    Quadrant{Clc: 6, Ilc: 2},
			want: Metrics{Spec: 1, PVN: 0.25, Accuracy: 0.75},
		},
		{
			name: "no mispredictions",
			q:    Quadrant{Chc: 3, Clc: 1},
			want: Metrics{Sens: 0.75, PVP: 1, Accuracy: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.q.Compute()
			for _, v := range []struct {
				metric string
				got    float64
				want   float64
			}{
				{"Sens", got.Sens, tc.want.Sens},
				{"Spec", got.Spec, tc.want.Spec},
				{"PVP", got.PVP, tc.want.PVP},
				{"PVN", got.PVN, tc.want.PVN},
				{"Accuracy", got.Accuracy, tc.want.Accuracy},
				{"MispredictRate", tc.q.MispredictRate(), 1 - tc.want.Accuracy},
			} {
				if v.metric == "MispredictRate" && tc.q.Total() == 0 {
					// Empty table: both accuracy and mispredict rate
					// are 0 by the zero-denominator rule, so the
					// 1-Accuracy identity does not apply.
					v.want = 0
				}
				if v.got != v.got || v.got != v.want {
					t.Errorf("%s = %v, want %v (NaN check: %v)",
						v.metric, v.got, v.want, v.got != v.got)
				}
			}
		})
	}
}

// TestDegenerateJacobsenAndIntervals covers the remaining ratio
// surfaces on an empty table.
func TestDegenerateJacobsenAndIntervals(t *testing.T) {
	var q Quadrant
	if got := q.JacobsenMisestimateRate(); got != 0 {
		t.Errorf("empty JacobsenMisestimateRate = %v", got)
	}
	if got := q.JacobsenCoverage(); got != 0 {
		t.Errorf("empty JacobsenCoverage = %v", got)
	}
	if lo, hi := q.PVNInterval(1.96); lo != 0 || hi != 1 {
		t.Errorf("empty PVNInterval = [%v,%v], want [0,1]", lo, hi)
	}
	if lo, hi := q.SpecInterval(1.96); lo != 0 || hi != 1 {
		t.Errorf("empty SpecInterval = [%v,%v], want [0,1]", lo, hi)
	}
	if got := (NormalizedQuadrant{}).Compute(); got != (Metrics{}) {
		t.Errorf("empty normalized metrics = %+v", got)
	}
	if got := AggregateNormalized(nil).Compute(); got != (Metrics{}) {
		t.Errorf("nil AggregateNormalized metrics = %+v", got)
	}
	// All-empty per-benchmark tables are skipped, not divided by.
	if got := AggregateNormalized([]Quadrant{{}, {}}).Compute(); got != (Metrics{}) {
		t.Errorf("all-empty AggregateNormalized metrics = %+v", got)
	}
	// Analytic identities at the p=0 and p=1 poles.
	if got := AnalyticPVP(0, 1, 0.5); got != 0 {
		t.Errorf("AnalyticPVP(0,1,.5) = %v", got)
	}
	if got := AnalyticPVN(1, 1, 1); got != 0 {
		t.Errorf("AnalyticPVN(1,1,1) = %v", got)
	}
}
