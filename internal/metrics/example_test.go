package metrics_test

import (
	"fmt"

	"specctrl/internal/metrics"
)

// The paper's worked example (§2.1): 100 branches, 80 predicted
// correctly; the estimator says high confidence for 61 of the correct
// and 2 of the incorrect predictions.
func ExampleQuadrant() {
	q := metrics.Quadrant{Chc: 61, Ihc: 2, Clc: 19, Ilc: 18}
	fmt.Println(q.Compute())
	fmt.Printf("accuracy %.0f%%\n", q.Accuracy()*100)
	// Output:
	// sens= 76% spec= 90% pvp= 97% pvn= 49%
	// accuracy 80%
}

// Suite-level metrics must be recomputed from aggregated quadrants, as
// the paper prescribes — never averaged from per-benchmark ratios.
func ExampleAggregateNormalized() {
	perBenchmark := []metrics.Quadrant{
		{Chc: 700, Ihc: 20, Clc: 180, Ilc: 100},
		{Chc: 8200, Ihc: 130, Clc: 900, Ilc: 770},
	}
	m := metrics.AggregateNormalized(perBenchmark).Compute()
	fmt.Printf("suite PVN %.1f%%\n", m.PVN*100)
	// Output:
	// suite PVN 39.6%
}

// The Bayes identities behind Figure 1 connect PVP and PVN to
// sensitivity, specificity and prediction accuracy.
func ExampleAnalyticPVN() {
	pvn := metrics.AnalyticPVN(0.70, 0.96, 0.90)
	fmt.Printf("PVN %.1f%%\n", pvn*100)
	// Output:
	// PVN 26.2%
}

// Boosting (§4.2): requiring two consecutive low-confidence events
// lifts a 30% PVN toward 51% under the Bernoulli approximation.
func ExampleBoostedPVN() {
	fmt.Printf("%.0f%%\n", metrics.BoostedPVN(0.30, 2)*100)
	// Output:
	// 51%
}
