// Package metrics implements the paper's diagnostic-test framework for
// comparing confidence estimators (§1.1–§2.1).
//
// Every (branch prediction, confidence estimate) pair falls into one
// quadrant of a 2×2 table: the prediction was Correct or Incorrect, and
// the estimator said High Confidence or Low Confidence. From the quadrant
// counts the four "higher is better" metrics follow:
//
//	SENS = P[HC|C] = Chc / (Chc + Clc)   sensitivity
//	SPEC = P[LC|I] = Ilc / (Ihc + Ilc)   specificity
//	PVP  = P[C|HC] = Chc / (Chc + Ihc)   predictive value of a positive test
//	PVN  = P[I|LC] = Ilc / (Clc + Ilc)   predictive value of a negative test
//
// The package also provides the Jacobsen et al metrics (confidence
// misprediction rate and coverage) for comparison, the analytic identities
// relating PVP/PVN to SENS/SPEC/accuracy that generate the paper's
// Figure 1, and the paper's aggregation rule: suite-level metrics are
// recomputed from summed quadrants, never averaged from ratios.
package metrics

import "fmt"

// Quadrant holds the four outcome counts for one (predictor, estimator,
// workload) measurement.
type Quadrant struct {
	Chc uint64 // correctly predicted, estimated high confidence
	Ihc uint64 // incorrectly predicted, estimated high confidence
	Clc uint64 // correctly predicted, estimated low confidence
	Ilc uint64 // incorrectly predicted, estimated low confidence
}

// Record adds one event.
func (q *Quadrant) Record(correct, highConfidence bool) {
	switch {
	case correct && highConfidence:
		q.Chc++
	case !correct && highConfidence:
		q.Ihc++
	case correct && !highConfidence:
		q.Clc++
	default:
		q.Ilc++
	}
}

// Add accumulates another quadrant into q.
func (q *Quadrant) Add(o Quadrant) {
	q.Chc += o.Chc
	q.Ihc += o.Ihc
	q.Clc += o.Clc
	q.Ilc += o.Ilc
}

// Total returns the number of events recorded.
func (q Quadrant) Total() uint64 { return q.Chc + q.Ihc + q.Clc + q.Ilc }

// Correct returns the number of correctly predicted branches.
func (q Quadrant) Correct() uint64 { return q.Chc + q.Clc }

// Incorrect returns the number of mispredicted branches.
func (q Quadrant) Incorrect() uint64 { return q.Ihc + q.Ilc }

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Accuracy returns the branch prediction accuracy P[C].
func (q Quadrant) Accuracy() float64 { return ratio(q.Correct(), q.Total()) }

// MispredictRate returns P[I] = 1 - accuracy.
func (q Quadrant) MispredictRate() float64 { return ratio(q.Incorrect(), q.Total()) }

// Sens returns the sensitivity P[HC|C]: the fraction of correct
// predictions identified as high confidence.
func (q Quadrant) Sens() float64 { return ratio(q.Chc, q.Chc+q.Clc) }

// Spec returns the specificity P[LC|I]: the fraction of incorrect
// predictions identified as low confidence.
func (q Quadrant) Spec() float64 { return ratio(q.Ilc, q.Ihc+q.Ilc) }

// PVP returns P[C|HC]: the probability that a high-confidence estimate is
// correct.
func (q Quadrant) PVP() float64 { return ratio(q.Chc, q.Chc+q.Ihc) }

// PVN returns P[I|LC]: the probability that a low-confidence estimate is
// correct (i.e. the branch really is mispredicted).
func (q Quadrant) PVN() float64 { return ratio(q.Ilc, q.Clc+q.Ilc) }

// JacobsenMisestimateRate returns the fraction of events where the
// estimator disagreed with the eventual outcome (Ihc + Clc over all), the
// "confidence misprediction rate" of Jacobsen et al.
func (q Quadrant) JacobsenMisestimateRate() float64 {
	return ratio(q.Ihc+q.Clc, q.Total())
}

// JacobsenCoverage returns the fraction of events estimated low
// confidence, the "coverage" of Jacobsen et al.
func (q Quadrant) JacobsenCoverage() float64 {
	return ratio(q.Clc+q.Ilc, q.Total())
}

// Metrics bundles the four paper metrics plus accuracy for reporting.
type Metrics struct {
	Sens, Spec, PVP, PVN, Accuracy float64
}

// Compute returns all metrics of the quadrant.
func (q Quadrant) Compute() Metrics {
	return Metrics{
		Sens:     q.Sens(),
		Spec:     q.Spec(),
		PVP:      q.PVP(),
		PVN:      q.PVN(),
		Accuracy: q.Accuracy(),
	}
}

// String renders the metrics as the paper's percentage columns.
func (m Metrics) String() string {
	return fmt.Sprintf("sens=%3.0f%% spec=%3.0f%% pvp=%3.0f%% pvn=%3.0f%%",
		m.Sens*100, m.Spec*100, m.PVP*100, m.PVN*100)
}

// Aggregate sums per-benchmark quadrants and returns the combined table.
// This implements the paper's rule (§3.2): "when computing the average for
// the PVP, we take the mean for Chc and Clc and compute Chc/(Chc+Clc),
// rather than averaging the existing PVPs". Summing and re-deriving the
// ratio is equivalent to taking the mean of each quadrant first.
func Aggregate(qs []Quadrant) Quadrant {
	var sum Quadrant
	for _, q := range qs {
		sum.Add(q)
	}
	return sum
}

// AggregateNormalized aggregates after normalizing every benchmark's
// quadrants to sum to one, so each benchmark contributes equal weight
// regardless of its branch count. It returns the four normalized quadrant
// fractions as a NormalizedQuadrant.
func AggregateNormalized(qs []Quadrant) NormalizedQuadrant {
	var sum NormalizedQuadrant
	n := 0
	for _, q := range qs {
		t := q.Total()
		if t == 0 {
			continue
		}
		sum.Chc += float64(q.Chc) / float64(t)
		sum.Ihc += float64(q.Ihc) / float64(t)
		sum.Clc += float64(q.Clc) / float64(t)
		sum.Ilc += float64(q.Ilc) / float64(t)
		n++
	}
	if n > 0 {
		sum.Chc /= float64(n)
		sum.Ihc /= float64(n)
		sum.Clc /= float64(n)
		sum.Ilc /= float64(n)
	}
	return sum
}

// NormalizedQuadrant is a quadrant table of fractions summing to one.
type NormalizedQuadrant struct {
	Chc, Ihc, Clc, Ilc float64
}

func fratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Compute returns the metrics of the normalized table.
func (q NormalizedQuadrant) Compute() Metrics {
	return Metrics{
		Sens:     fratio(q.Chc, q.Chc+q.Clc),
		Spec:     fratio(q.Ilc, q.Ihc+q.Ilc),
		PVP:      fratio(q.Chc, q.Chc+q.Ihc),
		PVN:      fratio(q.Ilc, q.Clc+q.Ilc),
		Accuracy: q.Chc + q.Clc,
	}
}

// AnalyticPVP returns the PVP implied by a given sensitivity, specificity
// and prediction accuracy p, via Bayes' rule:
//
//	PVP = SENS·p / (SENS·p + (1-SPEC)·(1-p))
//
// This is the identity behind the paper's Figure 1.
func AnalyticPVP(sens, spec, p float64) float64 {
	return fratio(sens*p, sens*p+(1-spec)*(1-p))
}

// AnalyticPVN returns the PVN implied by a given sensitivity, specificity
// and prediction accuracy p:
//
//	PVN = SPEC·(1-p) / (SPEC·(1-p) + (1-SENS)·p)
func AnalyticPVN(sens, spec, p float64) float64 {
	return fratio(spec*(1-p), spec*(1-p)+(1-sens)*p)
}

// BoostedPVN returns the Bernoulli-trial approximation of the PVN of k
// consecutive low-confidence events (§4.2): the probability that at least
// one of the k estimates flags a real misprediction,
// 1 - (1-PVN)^k.
func BoostedPVN(pvn float64, k int) float64 {
	q := 1.0
	for i := 0; i < k; i++ {
		q *= 1 - pvn
	}
	return 1 - q
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: the range within which the true rate behind
// successes/total lies with the confidence implied by z (1.96 ≈ 95%).
// Simulation-derived metrics such as PVN are proportions over finite
// branch counts; the interval says how many digits of a reported
// percentage are real.
func WilsonInterval(successes, total uint64, z float64) (lo, hi float64) {
	if total == 0 {
		return 0, 1
	}
	n := float64(total)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	margin := z / denom * sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-margin, center+margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// sqrt avoids importing math for one call site; Newton iterations are
// exact enough for interval reporting.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// PVNInterval returns the Wilson interval of the quadrant's PVN.
func (q Quadrant) PVNInterval(z float64) (lo, hi float64) {
	return WilsonInterval(q.Ilc, q.Clc+q.Ilc, z)
}

// SpecInterval returns the Wilson interval of the quadrant's SPEC.
func (q Quadrant) SpecInterval(z float64) (lo, hi float64) {
	return WilsonInterval(q.Ilc, q.Ihc+q.Ilc, z)
}

// ROCPoint is one operating point of an estimator sweep in ROC space:
// x = 1-SPEC (incorrect branches wrongly called high confidence),
// y = SENS (correct branches rightly called high confidence).
type ROCPoint struct {
	FPR float64 // 1 - SPEC
	TPR float64 // SENS
}

// ROCFromQuadrant converts one quadrant to its ROC point.
func ROCFromQuadrant(q Quadrant) ROCPoint {
	return ROCPoint{FPR: 1 - q.Spec(), TPR: q.Sens()}
}

// AUC returns the area under the ROC curve built from the sweep points,
// closed with the (0,0) and (1,1) corners, using the trapezoid rule.
// It is a threshold-independent single-number comparison of estimator
// families: 0.5 is chance, 1.0 is a perfect separator of correct from
// incorrect predictions.
func AUC(points []ROCPoint) float64 {
	pts := make([]ROCPoint, 0, len(points)+2)
	pts = append(pts, ROCPoint{0, 0})
	pts = append(pts, points...)
	pts = append(pts, ROCPoint{1, 1})
	sortROC(pts)
	area := 0.0
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		area += dx * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}

// sortROC orders points by FPR then TPR (insertion sort: sweeps are
// tiny and this avoids an import).
func sortROC(pts []ROCPoint) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0; j-- {
			a, b := pts[j-1], pts[j]
			if b.FPR < a.FPR || (b.FPR == a.FPR && b.TPR < a.TPR) {
				pts[j-1], pts[j] = b, a
			} else {
				break
			}
		}
	}
}
