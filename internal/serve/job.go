package serve

import (
	"context"
	"sync"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/runner"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// StateQueued: accepted, waiting for an executor slot.
	StateQueued JobState = "queued"
	// StateRunning: executing on the grid runner.
	StateRunning JobState = "running"
	// StateDone: every experiment rendered; results available.
	StateDone JobState = "done"
	// StateFailed: a cell or driver errored (or the job timed out).
	StateFailed JobState = "failed"
	// StateDrained: interrupted by server drain; completed cells are
	// checkpointed as a requeueable cell dump.
	StateDrained JobState = "drained"
)

// terminal reports whether no further transitions can happen.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDrained
}

// Event is one entry in a job's completion stream, delivered in order
// over GET /v1/jobs/{id}/events as newline-delimited JSON.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "cell" | "experiment" | "job"

	// Cell events.
	Key       string  `json:"key,omitempty"`  // spec key
	Addr      string  `json:"addr,omitempty"` // content address
	Cached    bool    `json:"cached"`         // served without simulating
	ElapsedMS float64 `json:"elapsedMs,omitempty"`

	// Experiment events (one per finished experiment).
	Name string `json:"name,omitempty"`

	// Job events (the terminal event).
	State string `json:"state,omitempty"`
}

// ExperimentOutput is one experiment's rendered result.
type ExperimentOutput struct {
	Experiment string `json:"experiment"`
	Output     string `json:"output"`
}

// Job is one submitted unit of work: a list of experiments executed
// under one parameter set. All mutable state is guarded by mu; update
// is closed and replaced on every change so streamers can wait without
// polling.
type Job struct {
	id      string
	req     SubmitRequest
	cells   *experiments.CellStore
	created time.Time
	// parent is the submitting request's span context (ultimately the
	// client's traceparent header), so the job's spans join the
	// client's trace; the zero value starts a server-local trace.
	parent span.Context

	mu         sync.Mutex
	state      JobState
	errMsg     string
	outputs    []ExperimentOutput
	done       int // cells completed (fromCache + simulated)
	fromCache  int
	simulated  int
	checkpoint string
	events     []Event
	update     chan struct{}
	started    time.Time
	finished   time.Time
}

func newJob(id string, req SubmitRequest, now time.Time) *Job {
	return &Job{
		id:      id,
		req:     req,
		cells:   experiments.NewCellStore(),
		created: now,
		state:   StateQueued,
		update:  make(chan struct{}),
	}
}

// bump must be called with mu held: it wakes every waiter.
func (j *Job) bump() {
	close(j.update)
	j.update = make(chan struct{})
}

// emit appends one event (Seq assigned here) and wakes streamers.
func (j *Job) emit(e Event) {
	j.mu.Lock()
	e.Seq = len(j.events) + 1
	j.events = append(j.events, e)
	j.bump()
	j.mu.Unlock()
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.bump()
	j.mu.Unlock()
}

// cellDone records one completed cell and emits its event.
func (j *Job) cellDone(key, addr string, cached bool, elapsed time.Duration) {
	j.mu.Lock()
	j.done++
	if cached {
		j.fromCache++
	} else {
		j.simulated++
	}
	e := Event{
		Type:      "cell",
		Key:       key,
		Addr:      addr,
		Cached:    cached,
		ElapsedMS: float64(elapsed.Milliseconds()),
		Seq:       len(j.events) + 1,
	}
	j.events = append(j.events, e)
	j.bump()
	j.mu.Unlock()
}

// finish moves the job to a terminal state and emits the terminal
// event. checkpoint is the drain dump path (StateDrained only).
func (j *Job) finish(state JobState, outputs []ExperimentOutput, errMsg, checkpoint string, now time.Time) {
	j.mu.Lock()
	j.state = state
	j.outputs = outputs
	j.errMsg = errMsg
	j.checkpoint = checkpoint
	j.finished = now
	e := Event{Type: "job", State: string(state), Seq: len(j.events) + 1}
	j.events = append(j.events, e)
	j.bump()
	j.mu.Unlock()
}

// eventsSince returns the events past cursor, a channel that closes on
// the next change, and whether the job is terminal.
func (j *Job) eventsSince(cursor int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if cursor < len(j.events) {
		evs = append(evs, j.events[cursor:]...)
	}
	return evs, j.update, j.state.terminal()
}

// snapshot returns the job's status document.
func (j *Job) snapshot() StatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := StatusResponse{
		Version:     APIVersion,
		ID:          j.id,
		State:       string(j.state),
		Error:       j.errMsg,
		Experiments: append([]string(nil), j.req.Experiments...),
		Cells: CellCounts{
			Done:      j.done,
			FromCache: j.fromCache,
			Simulated: j.simulated,
		},
		Checkpoint: j.checkpoint,
		CreatedAt:  j.created,
	}
	if !j.started.IsZero() {
		st.StartedAt = &j.started
	}
	if !j.finished.IsZero() {
		st.FinishedAt = &j.finished
	}
	return st
}

// result returns the outputs once terminal.
func (j *Job) result() (JobState, []ExperimentOutput, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, append([]ExperimentOutput(nil), j.outputs...), j.errMsg
}

// jobCache adapts the shared Store to one job's grid run: it counts
// hits vs simulations for the job's status document, emits per-cell
// completion events, and feeds the service latency histogram. It is
// called concurrently by runner workers.
type jobCache struct {
	store       *Store
	job         *Job
	cellSeconds *obs.Histogram
}

var _ experiments.CellCache = (*jobCache)(nil)

func (c *jobCache) GetOrCompute(ctx context.Context, addr string, sp runner.Spec,
	compute func(context.Context) (experiments.CellResult, error)) (experiments.CellResult, error) {
	start := time.Now()
	simulated := false
	val, err := c.store.GetOrCompute(ctx, addr, func(ctx context.Context) (experiments.CellResult, error) {
		simulated = true
		return compute(ctx)
	})
	if err != nil {
		return val, err
	}
	elapsed := time.Since(start)
	if c.cellSeconds != nil {
		c.cellSeconds.Observe(elapsed.Seconds())
	}
	c.job.cellDone(sp.Key(), addr, !simulated, elapsed)
	return val, nil
}
