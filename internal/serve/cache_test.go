package serve

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// addr returns a syntactically valid content address for tests.
func testAddr(tag string) string {
	return strings.Repeat("0", 64-len(tag)) + tag
}

func testCell(v float64) experiments.CellResult {
	return experiments.CellResult{
		Stats: &pipeline.Stats{},
		Extra: map[string]float64{"v": v},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewStore(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := testAddr("aa")
	computes := 0
	compute := func(context.Context) (experiments.CellResult, error) {
		computes++
		return testCell(42), nil
	}
	c1, err := s.GetOrCompute(context.Background(), addr, compute)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.GetOrCompute(context.Background(), addr, compute)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	if c1.Extra["v"] != 42 || c2.Extra["v"] != 42 {
		t.Errorf("results: %v %v", c1, c2)
	}
	if h := reg.Counter("specctrl_serve_cache_hits_total", nil).Value(); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
	if m := reg.Counter("specctrl_serve_cache_misses_total", nil).Value(); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}

	// A second store over the same directory sees the entry (the cache
	// is a plain content-addressed directory, shareable across
	// processes).
	s2, err := NewStore(s.Dir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Lookup(addr); !ok {
		t.Error("second store over same dir misses the entry")
	}
}

// TestStoreSingleflight is the dedup guarantee: N concurrent requests
// for one address run compute exactly once and all see its result.
func TestStoreSingleflight(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewStore(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := testAddr("bb")
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) (experiments.CellResult, error) {
		computes.Add(1)
		close(started)
		<-release
		return testCell(7), nil
	}

	const followers = 8
	var wg sync.WaitGroup
	results := make([]experiments.CellResult, followers+1)
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], errs[0] = s.GetOrCompute(context.Background(), addr, compute) }()
	<-started // leader is inside compute; everyone else must join it
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.GetOrCompute(context.Background(), addr, compute)
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let followers park on the flight
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
		if results[i].Extra["v"] != 7 {
			t.Errorf("caller %d result: %v", i, results[i])
		}
	}
	if d := reg.Counter("specctrl_serve_cache_dedup_total", nil).Value(); d != followers {
		t.Errorf("dedup = %d, want %d", d, followers)
	}
}

func TestStoreErrorNotCached(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := testAddr("cc")
	boom := errors.New("boom")
	if _, err := s.GetOrCompute(context.Background(), addr,
		func(context.Context) (experiments.CellResult, error) {
			return experiments.CellResult{}, boom
		}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// The failure must not poison the address.
	c, err := s.GetOrCompute(context.Background(), addr,
		func(context.Context) (experiments.CellResult, error) { return testCell(1), nil })
	if err != nil || c.Extra["v"] != 1 {
		t.Errorf("retry after error: %v, %v", c, err)
	}
}

func TestStoreCorruptEntryRecomputed(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := testAddr("dd")
	if _, err := s.GetOrCompute(context.Background(), addr,
		func(context.Context) (experiments.CellResult, error) { return testCell(5), nil }); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(addr), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := s.GetOrCompute(context.Background(), addr,
		func(context.Context) (experiments.CellResult, error) { return testCell(6), nil })
	if err != nil || c.Extra["v"] != 6 {
		t.Fatalf("corrupt entry not recomputed: %v, %v", c, err)
	}
	// And the recompute repaired the entry on disk.
	if c, ok := s.Lookup(addr); !ok || c.Extra["v"] != 6 {
		t.Errorf("entry not repaired: %v %v", c, ok)
	}
}

func TestStoreFollowerCancellation(t *testing.T) {
	s, err := NewStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := testAddr("ee")
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		s.GetOrCompute(context.Background(), addr,
			func(context.Context) (experiments.CellResult, error) {
				close(started)
				<-release
				return testCell(1), nil
			})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.GetOrCompute(ctx, addr,
		func(context.Context) (experiments.CellResult, error) { return testCell(2), nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follower got %v, want context.Canceled", err)
	}
	close(release)
	<-leaderDone // the leader writes into TempDir; let it finish before cleanup
}
