package serve

import (
	"bytes"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
)

// TestDrainCheckpointsJobs is the graceful-shutdown contract: draining
// with an in-flight job lets its running cells finish and persists the
// completed work as a -cells-in-loadable dump; a job still queued is
// drained with whatever it had (nothing). The dump must actually
// replay: feeding it back through Params.Cells re-renders without
// re-simulating the checkpointed cells.
func TestDrainCheckpointsJobs(t *testing.T) {
	before := runtime.NumGoroutine()

	// Pause the grid inside its second cell via the Progress hook (it
	// fires at cell start, before the simulation). With a serial Jobs=1
	// grid that pins the job mid-flight deterministically: one cell
	// completed, one executing, the rest undispatched — exactly the
	// state a real SIGTERM interrupts.
	inSecondCell := make(chan struct{})
	release := make(chan struct{})
	// Direct mode pins the cell count the assertions below rely on:
	// with the trace tiers off, every table3 cell records its own
	// committed stream and emits exactly one Progress line (cached
	// modes dedup recordings below the cell layer, so later cells go
	// silent).
	params := testParams()
	params.Replay = experiments.ReplayOff
	cfg := Config{
		Addr:           "127.0.0.1:0",
		CacheDir:       t.TempDir(),
		Params:         params,
		Jobs:           1,
		JobConcurrency: 1, // second job stays queued
		QueueDepth:     4,
		Registry:       obs.NewRegistry(),
		runExperiment: func(name string, p experiments.Params) (experiments.Renderer, error) {
			runs := 0
			p.Progress = func(string) {
				runs++
				if runs == 2 {
					close(inSecondCell)
					<-release
				}
			}
			return experiments.Run(name, p)
		},
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Drain() }) // for early t.Fatal exits; idempotent

	running, _ := postJob(t, srv, `{"version":1,"experiments":["table3"]}`)
	queued, _ := postJob(t, srv, `{"version":1,"experiments":["table1"]}`)

	select {
	case <-inSecondCell: // one cell done, second blocked inside its compute
	case <-time.After(60 * time.Second):
		t.Fatal("job never reached its second cell")
	}

	// Drain concurrently: it must cancel dispatch, then wait for the
	// executing cell — which we are holding — to finish.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain() }()
	deadline := time.Now().Add(30 * time.Second)
	for srv.drainCtx.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("drain never cancelled the grid context")
		}
		time.Sleep(time.Millisecond)
	}
	close(release) // let the in-flight cell run to completion
	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not complete after the in-flight cell finished")
	}

	// The running job was interrupted: it is drained with both the
	// pre-drain cell and the in-flight cell checkpointed.
	rst := running.jobStatusAfterDrain(t, srv)
	if rst.State != string(StateDrained) {
		t.Fatalf("running job state = %s (error %q), want drained", rst.State, rst.Error)
	}
	if rst.Checkpoint == "" {
		t.Fatal("drained job has no checkpoint path")
	}
	qst := queued.jobStatusAfterDrain(t, srv)
	if qst.State != string(StateDrained) {
		t.Errorf("queued job state = %s, want drained", qst.State)
	}

	// The checkpoint is a valid versioned cell dump with the completed
	// cells — exactly what -cells-in loads.
	data, err := os.ReadFile(rst.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := experiments.UnmarshalCells(data)
	if err != nil {
		t.Fatalf("checkpoint not loadable: %v", err)
	}
	if len(cells) != rst.Cells.Done {
		t.Errorf("checkpoint has %d cells, status says %d completed", len(cells), rst.Cells.Done)
	}
	if len(cells) != 2 {
		t.Fatalf("checkpoint has %d cells, want 2 (the completed cell plus the in-flight one)", len(cells))
	}

	// Requeueability: rerun the same experiment locally with the
	// checkpoint preloaded; only the remainder simulates.
	var resimulated []string
	p := testParams()
	p.Replay = experiments.ReplayOff
	p.Cells = cells
	p.Progress = func(msg string) { resimulated = append(resimulated, msg) }
	r, err := experiments.Run("table3", p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() == "" {
		t.Error("resumed run rendered nothing")
	}
	// Each direct-mode table3 cell emits exactly one "arch ..." progress
	// line (its own committed-stream recording), so the hard invariant
	// is the count: the resume simulates exactly the cells the
	// checkpoint is missing.
	total := 0
	for _, msg := range resimulated {
		if strings.HasPrefix(msg, "arch ") {
			total++
		}
	}
	fullRun := 0
	pf := testParams()
	pf.Replay = experiments.ReplayOff
	pf.Progress = func(msg string) {
		if strings.HasPrefix(msg, "arch ") {
			fullRun++
		}
	}
	if _, err := experiments.Run("table3", pf); err != nil {
		t.Fatal(err)
	}
	if want := fullRun - len(cells); total != want {
		t.Errorf("resume simulated %d cells, want %d (%d total - %d checkpointed)",
			total, want, fullRun, len(cells))
	}

	// Submissions after drain are refused with 503 + Retry-After.
	body := `{"version":1,"experiments":["table3"]}`
	resp, err := http.Post(srv.URL()+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err == nil {
		resp.Body.Close()
		t.Errorf("submit after drain: HTTP %d, want connection refused", resp.StatusCode)
	}

	// No goroutine leaks: everything the server started has exited.
	// Close the test client's keepalive connections first (their read
	// loops are ours, not the server's) and allow the runtime a moment
	// to reap exiting goroutines.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// jobStatusAfterDrain reads a job's status directly (the HTTP listener
// is closed once Drain returns).
func (sub SubmitResponse) jobStatusAfterDrain(t *testing.T, srv *Server) StatusResponse {
	t.Helper()
	j, ok := srv.job(sub.ID)
	if !ok {
		t.Fatalf("job %s vanished", sub.ID)
	}
	return j.snapshot()
}

// TestDrainIdempotent calls Drain twice (and once concurrently with
// itself) — every call must return cleanly.
func TestDrainIdempotent(t *testing.T) {
	srv := newTestServer(t, nil)
	errc := make(chan error, 2)
	go func() { errc <- srv.Drain() }()
	go func() { errc <- srv.Drain() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("drain %d: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("drain deadlocked")
		}
	}
}

// TestDrainEmptyServer drains a server that never ran a job.
func TestDrainEmptyServer(t *testing.T) {
	srv, err := New(Config{Addr: "127.0.0.1:0", CacheDir: t.TempDir(), Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
