package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
)

// testParams is the reduced scale serve tests simulate at.
func testParams() experiments.Params {
	p := experiments.TestParams()
	p.MaxCommitted = 40_000
	return p
}

// newTestServer boots a server on an ephemeral port with tiny
// simulations; mutate adjusts the config before New.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Addr:           "127.0.0.1:0",
		CacheDir:       t.TempDir(),
		Params:         testParams(),
		Jobs:           4,
		JobConcurrency: 2,
		Registry:       obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv
}

func postJob(t *testing.T, srv *Server, body string) (SubmitResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(srv.URL()+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatalf("submit response: %v: %s", err, data)
		}
	}
	return sub, resp
}

func getStatus(t *testing.T, srv *Server, sub SubmitResponse) StatusResponse {
	t.Helper()
	resp, err := http.Get(srv.URL() + sub.Status)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, srv *Server, sub SubmitResponse) StatusResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, srv, sub)
		if JobState(st.State).terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeByteIdenticalAndCached is the acceptance criterion: results
// fetched through the service are byte-identical to the local run, and
// a repeated submission performs zero new simulations.
func TestServeByteIdenticalAndCached(t *testing.T) {
	srv := newTestServer(t, nil)

	local, err := experiments.Run("table3", testParams())
	if err != nil {
		t.Fatal(err)
	}
	want := local.Render()

	run := func() (StatusResponse, string) {
		sub, resp := postJob(t, srv, `{"version":1,"experiments":["table3"]}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", resp.StatusCode)
		}
		st := waitTerminal(t, srv, sub)
		if st.State != string(StateDone) {
			t.Fatalf("job %s: state %s, error %q", st.ID, st.State, st.Error)
		}
		resp2, err := http.Get(srv.URL() + sub.Result)
		if err != nil {
			t.Fatal(err)
		}
		defer resp2.Body.Close()
		var res ResultResponse
		if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if len(res.Outputs) != 1 || res.Outputs[0].Experiment != "table3" {
			t.Fatalf("outputs: %+v", res.Outputs)
		}
		return st, res.Outputs[0].Output
	}

	st1, out1 := run()
	if out1 != want {
		t.Errorf("served output differs from local run:\n--- served ---\n%s\n--- local ---\n%s", out1, want)
	}
	if st1.Cells.Simulated == 0 || st1.Cells.FromCache != 0 {
		t.Errorf("first run counts: %+v (want all simulated)", st1.Cells)
	}

	st2, out2 := run()
	if out2 != want {
		t.Errorf("second served output differs from local run")
	}
	if st2.Cells.Simulated != 0 {
		t.Errorf("second run simulated %d cells, want 0 (cache miss?)", st2.Cells.Simulated)
	}
	if st2.Cells.FromCache != st1.Cells.Done {
		t.Errorf("second run fromCache = %d, want %d", st2.Cells.FromCache, st1.Cells.Done)
	}
	if hits := srv.reg.Counter("specctrl_serve_cache_hits_total", nil).Value(); hits == 0 {
		t.Error("cache-hit metric did not move")
	}
}

// TestServeCellsDump checks /cells returns the same versioned schema
// simctrl -cells-out writes, loadable by UnmarshalCells and usable as
// a -cells-in preload.
func TestServeCellsDump(t *testing.T) {
	srv := newTestServer(t, nil)
	sub, _ := postJob(t, srv, `{"version":1,"experiments":["table3"]}`)
	st := waitTerminal(t, srv, sub)
	if st.State != string(StateDone) {
		t.Fatalf("job: %+v", st)
	}
	resp, err := http.Get(srv.URL() + sub.Cells)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := experiments.UnmarshalCells(data)
	if err != nil {
		t.Fatalf("cells dump not loadable: %v", err)
	}
	if len(cells) != st.Cells.Done {
		t.Errorf("dump has %d cells, status says %d", len(cells), st.Cells.Done)
	}

	// Preloading the dump must replay without simulating.
	p := testParams()
	p.Cells = cells
	p.Progress = func(msg string) { t.Fatalf("simulated despite server cells: %s", msg) }
	if _, err := experiments.Run("table3", p); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	cases := []struct {
		body string
		want int
	}{
		{`{"version":1,"experiments":["nope"]}`, http.StatusBadRequest},
		{`{"version":1,"experiments":[]}`, http.StatusBadRequest},
		{`{"version":99,"experiments":["table3"]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		_, resp := postJob(t, srv, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("submit %q: HTTP %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(srv.URL() + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestAdmissionControl saturates a single-executor server whose
// executor is blocked and checks the bounded queue answers 429 with
// Retry-After instead of accepting unbounded work.
func TestAdmissionControl(t *testing.T) {
	block := make(chan struct{})
	srv := newTestServer(t, func(cfg *Config) {
		cfg.JobConcurrency = 1
		cfg.QueueDepth = 1
		cfg.RetryAfter = 7 * time.Second
		cfg.runExperiment = func(string, experiments.Params) (experiments.Renderer, error) {
			<-block
			return fakeResult("ok"), nil
		}
	})
	defer close(block)

	// First job occupies the executor; second fills the queue. The
	// executor dequeues asynchronously, so briefly retry the fill until
	// a submission sticks in the queue.
	if _, resp := postJob(t, srv, `{"version":1,"experiments":["table3"]}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	saturated := false
	var last *http.Response
	for i := 0; i < 50 && !saturated; i++ {
		_, last = postJob(t, srv, `{"version":1,"experiments":["table3"]}`)
		switch last.StatusCode {
		case http.StatusAccepted:
			time.Sleep(5 * time.Millisecond)
		case http.StatusTooManyRequests:
			saturated = true
		default:
			t.Fatalf("fill submit: HTTP %d", last.StatusCode)
		}
	}
	if !saturated {
		t.Fatal("queue never saturated")
	}
	if ra := last.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", ra)
	}
}

// fakeResult is a canned Renderer for executor-seam tests.
type fakeResult string

func (f fakeResult) Render() string { return string(f) }

// TestEventsStream follows a job's NDJSON event stream and checks
// ordering: monotonic seq, per-cell events, one experiment event, a
// terminal job event last.
func TestEventsStream(t *testing.T) {
	srv := newTestServer(t, nil)
	sub, _ := postJob(t, srv, `{"version":1,"experiments":["table3"]}`)

	resp, err := http.Get(srv.URL() + sub.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("too few events: %+v", events)
	}
	cells, exps := 0, 0
	for i, e := range events {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		switch e.Type {
		case "cell":
			cells++
			if e.Key == "" || len(e.Addr) != 64 {
				t.Errorf("cell event incomplete: %+v", e)
			}
		case "experiment":
			exps++
		}
	}
	last := events[len(events)-1]
	if last.Type != "job" || last.State != string(StateDone) {
		t.Errorf("terminal event: %+v", last)
	}
	if cells == 0 || exps != 1 {
		t.Errorf("stream had %d cell and %d experiment events", cells, exps)
	}
}

// TestConcurrentIdenticalJobsSingleflight submits the same grid twice
// concurrently on a two-executor server: between the disk cache and the
// in-flight dedup, each distinct cell must simulate exactly once.
func TestConcurrentIdenticalJobsSingleflight(t *testing.T) {
	srv := newTestServer(t, nil)
	sub1, _ := postJob(t, srv, `{"version":1,"experiments":["table3"]}`)
	sub2, _ := postJob(t, srv, `{"version":1,"experiments":["table3"]}`)
	st1 := waitTerminal(t, srv, sub1)
	st2 := waitTerminal(t, srv, sub2)
	if st1.State != string(StateDone) || st2.State != string(StateDone) {
		t.Fatalf("states: %s / %s", st1.State, st2.State)
	}
	total := st1.Cells.Simulated + st2.Cells.Simulated
	if total != st1.Cells.Done {
		t.Errorf("%d simulations across both jobs, want %d (one per distinct cell)",
			total, st1.Cells.Done)
	}
	if st1.Cells.Done != st2.Cells.Done {
		t.Errorf("cell counts differ: %+v vs %+v", st1.Cells, st2.Cells)
	}
}

func TestReadyz(t *testing.T) {
	srv := newTestServer(t, nil)
	resp, err := http.Get(srv.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/readyz while serving: %d", resp.StatusCode)
	}
}
