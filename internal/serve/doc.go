// Package serve turns the batch experiment harness into a long-running
// simulation service: simulation-as-a-service over the work-stealing
// grid runner.
//
// Four layers:
//
//   - A job API over HTTP (see api.go): submit a set of experiments as
//     a job, poll its status, stream per-cell completion events, and
//     fetch the merged results — rendered text per experiment plus the
//     cell dump in the same versioned JSON schema simctrl's -cells-out
//     writes.
//   - A content-addressed result cache (Store): every cell is keyed by
//     the canonical hash of its full spec (experiments.CellAddress), so
//     the same cell requested twice — by one job, by two concurrent
//     jobs, or days apart — simulates exactly once and is served from
//     disk forever after, byte-identical to a fresh simulation.
//   - Admission control and backpressure: a bounded job queue sized off
//     the runner pool width. A full queue rejects submissions with
//     429 + Retry-After; a draining server rejects them with 503. Jobs
//     carry a configurable timeout and are cancelled at the next cell
//     boundary. Drain (SIGTERM in cmd/simserved) lets in-flight cells
//     finish and checkpoints every unfinished job's completed cells as
//     a -cells-in-loadable dump.
//   - Wiring into the existing stack: jobs execute on internal/runner
//     through internal/experiments' grid path, preserving byte-identical
//     determinism, and the service publishes queue depth, cache
//     hit/miss, inflight, and latency-histogram metrics through
//     internal/obs on the same mux that serves the API.
package serve
