package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/replay"
)

// Config configures a Server. The zero value of every field has a
// usable default except CacheDir, which is required.
type Config struct {
	// Addr is the listen address (":0" picks a free port).
	Addr string
	// CacheDir roots the content-addressed result store. Required.
	CacheDir string
	// DrainDir receives drain checkpoints (default: CacheDir/drain).
	DrainDir string
	// Jobs is the runner pool width per grid (default: all CPUs).
	Jobs int
	// JobConcurrency is how many jobs execute at once (default 2, so
	// concurrent identical jobs exercise the singleflight dedup rather
	// than trivially serializing).
	JobConcurrency int
	// QueueDepth bounds the admission queue, excluding executing jobs
	// (default: 2×Jobs, minimum 4 — sized off the runner pool width so
	// accepted work is at most a few pool-drains deep).
	QueueDepth int
	// JobTimeout cancels a job this long after it starts executing
	// (0 = no timeout).
	JobTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429/503 responses
	// (default 10s).
	RetryAfter time.Duration
	// Params is the base parameter set jobs derive from; a zero
	// MaxCommitted selects experiments.DefaultParams(). Per-request
	// overrides (committed, baseSeed) apply on top.
	Params experiments.Params
	// TraceCacheBytes bounds the in-process replay trace cache New
	// installs on Params when Params.TraceCache is nil (0 selects
	// replay.DefaultCacheBytes). The cache is LRU by retained bytes, so
	// a long-running server's memory stays bounded no matter how many
	// distinct (workload, predictor, scale) traces jobs record.
	TraceCacheBytes int64
	// ArchCacheBytes bounds the in-process arch-trace cache New installs
	// on Params when Params.ArchCache is nil (0 selects
	// replay.DefaultCacheBytes). Arch traces are the upstream committed
	// branch-outcome streams; like the event-trace cache the budget is
	// retained bytes under LRU.
	ArchCacheBytes int64
	// Registry receives the service metrics (created when nil). It is
	// also what /metrics on the server's mux exposes.
	Registry *obs.Registry
	// Tracer records the service's spans: one per API request (joined
	// to the client's traceparent header when present), one per job,
	// one per experiment, plus the grid's per-cell spans underneath.
	// Created with default options when nil, so a served job's trace is
	// always inspectable on /debug/traces.
	Tracer *span.Tracer
	// RunExperiment, when non-nil, replaces experiments.Run as the
	// function each job invokes per experiment. The cluster coordinator
	// uses it to scatter grids across workers before the deterministic
	// local assembly; it must preserve the byte-identity contract
	// (return exactly what experiments.Run would).
	RunExperiment func(name string, p experiments.Params) (experiments.Renderer, error)
	// Mount, when non-nil, is called with the server's mux after the
	// job API routes are registered, so embedders (the cluster
	// coordinator) can add endpoints on the same listener.
	Mount func(mux *http.ServeMux)

	// runExperiment is a test seam; nil means RunExperiment, then
	// experiments.Run.
	runExperiment func(name string, p experiments.Params) (experiments.Renderer, error)
}

// Server is a running simulation service. Construct with New; stop
// with Drain.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *Store
	hs    *obs.Server

	queue       chan *Job
	drainCtx    context.Context
	drainCancel context.CancelFunc
	wg          sync.WaitGroup

	mu       sync.Mutex
	draining bool
	drained  bool
	jobs     map[string]*Job
	nextID   int

	queueDepth  *obs.Gauge
	inflight    *obs.Gauge
	jobSeconds  *obs.Histogram
	cellSeconds *obs.Histogram
}

// jobSecondsBounds and cellSecondsBounds bucket service latencies; the
// top buckets absorb full-scale (multi-minute) grids.
var (
	jobSecondsBounds  = []float64{0.1, 0.5, 1, 5, 15, 60, 300, 1800}
	cellSecondsBounds = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120}
)

// New starts a Server: opens the store, mounts the job API on the
// standard observability mux, binds Addr, and launches the executor
// pool. The returned server is already accepting submissions.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = runtime.NumCPU()
	}
	if cfg.JobConcurrency < 1 {
		cfg.JobConcurrency = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = max(4, 2*cfg.Jobs)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 10 * time.Second
	}
	if cfg.Params.MaxCommitted == 0 {
		replayMode := cfg.Params.Replay
		cfg.Params = experiments.DefaultParams()
		cfg.Params.Replay = replayMode
	}
	if cfg.DrainDir == "" {
		if cfg.CacheDir == "" {
			return nil, fmt.Errorf("serve: CacheDir required")
		}
		cfg.DrainDir = filepath.Join(cfg.CacheDir, "drain")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = span.New(span.Options{})
	}
	if cfg.Params.TraceCache == nil {
		cfg.Params.TraceCache = replay.NewCache(cfg.TraceCacheBytes, cfg.Registry)
	}
	if cfg.Params.ArchCache == nil {
		cfg.Params.ArchCache = replay.NewArchCache(cfg.ArchCacheBytes, cfg.Registry)
	}
	if cfg.runExperiment == nil {
		if cfg.RunExperiment != nil {
			cfg.runExperiment = cfg.RunExperiment
		} else {
			cfg.runExperiment = experiments.Run
		}
	}

	store, err := NewStore(cfg.CacheDir, cfg.Registry)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Registry,
		store:       store,
		queue:       make(chan *Job, cfg.QueueDepth),
		jobs:        make(map[string]*Job),
		queueDepth:  cfg.Registry.Gauge("specctrl_serve_queue_depth", nil),
		inflight:    cfg.Registry.Gauge("specctrl_serve_inflight_jobs", nil),
		jobSeconds:  cfg.Registry.Histogram("specctrl_serve_job_seconds", nil, jobSecondsBounds),
		cellSeconds: cfg.Registry.Histogram("specctrl_serve_cell_seconds", nil, cellSecondsBounds),
	}
	cfg.Registry.Gauge("specctrl_serve_queue_capacity", nil).SetUint(uint64(cfg.QueueDepth))
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())

	mux := obs.NewMux(cfg.Registry, cfg.Tracer)
	s.routes(mux)
	if cfg.Mount != nil {
		cfg.Mount(mux)
	}
	hs, err := obs.ServeHandler(cfg.Addr, mux)
	if err != nil {
		return nil, err
	}
	s.hs = hs

	for i := 0; i < cfg.JobConcurrency; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.hs.URL() }

// Tracer returns the server's span tracer (never nil after New), for
// exporting the accumulated spans at shutdown.
func (s *Server) Tracer() *span.Tracer { return s.cfg.Tracer }

// Store returns the server's content-addressed result cache.
func (s *Server) Store() *Store { return s.store }

// job looks up a job by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// submit admits a job or reports why it can't: errDraining when the
// server is shutting down, errQueueFull when admission is saturated.
var (
	errDraining  = errors.New("serve: draining, not accepting jobs")
	errQueueFull = errors.New("serve: job queue full")
)

func (s *Server) submit(req SubmitRequest, parent span.Context) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), req, time.Now())
	j.parent = parent
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.queueDepth.SetUint(uint64(len(s.queue)))
		return j, nil
	default:
		s.nextID-- // job was never admitted; reuse the id
		return nil, errQueueFull
	}
}

// jobParams derives one job's parameter set from the server base plus
// the request overrides.
func (s *Server) jobParams(req SubmitRequest) experiments.Params {
	p := s.cfg.Params
	if req.Committed > 0 {
		p.MaxCommitted = req.Committed
	}
	if req.BaseSeed != 0 {
		p.BaseSeed = req.BaseSeed
	}
	if req.SynthN > 0 {
		p.SynthN = req.SynthN
	}
	// Profiles were registered at submission; hand the sweep their
	// content-addressed names on top of any server-level extras. Copy
	// before appending: the base Params slice is shared across jobs.
	if len(req.SynthProfiles) > 0 {
		ws := append([]string{}, p.SynthWorkloads...)
		for _, prof := range req.SynthProfiles {
			ws = append(ws, prof.WorkloadName())
		}
		p.SynthWorkloads = ws
	}
	p.Jobs = s.cfg.Jobs
	return p
}

// executor drains the queue until it closes (Drain).
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueDepth.SetUint(uint64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one job's experiments on the grid runner. Cancel
// semantics: the grid stops dispatching at the next cell boundary, but
// cells already executing always run to completion — that is what
// makes drain checkpoints (and the result cache) loss-free.
func (s *Server) runJob(j *Job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	j.setRunning(start)

	// The job span joins the submitting client's trace (j.parent came
	// from its traceparent header), so one TraceID covers the client's
	// root, this job, and every cell span the grid emits under it.
	js := s.cfg.Tracer.Child(j.parent, "job",
		span.Str("job", j.id), span.Int("experiments", int64(len(j.req.Experiments))))
	defer js.End()

	ctx := s.drainCtx
	cancel := context.CancelFunc(func() {})
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	}
	defer cancel()

	p := s.jobParams(j.req)
	p.Ctx = ctx
	p.Record = j.cells
	p.Cache = &jobCache{store: s.store, job: j, cellSeconds: s.cellSeconds}
	p.Tracer = s.cfg.Tracer

	var outputs []ExperimentOutput
	var runErr error
	for _, name := range j.req.Experiments {
		es := s.cfg.Tracer.Child(js.Context(), "exp:"+name, span.Str("job", j.id))
		p.SpanParent = es.Context()
		r, err := s.cfg.runExperiment(name, p)
		es.End()
		if err != nil {
			runErr = err
			break
		}
		outputs = append(outputs, ExperimentOutput{Experiment: name, Output: r.Render()})
		j.emit(Event{Type: "experiment", Name: name})
	}

	now := time.Now()
	switch {
	case runErr == nil:
		j.finish(StateDone, outputs, "", "", now)
	case errors.Is(runErr, context.Canceled) && s.drainCtx.Err() != nil:
		path, cpErr := s.checkpoint(j)
		msg := "interrupted by server drain"
		if cpErr != nil {
			msg = fmt.Sprintf("%s (checkpoint failed: %v)", msg, cpErr)
		}
		j.finish(StateDrained, nil, msg, path, now)
	case errors.Is(runErr, context.DeadlineExceeded):
		j.finish(StateFailed, nil, fmt.Sprintf("job timeout after %s", s.cfg.JobTimeout), "", now)
	default:
		j.finish(StateFailed, nil, runErr.Error(), "", now)
	}
	s.jobSeconds.Observe(time.Since(start).Seconds())
	state, _, _ := j.result()
	js.SetAttrs(span.Str("state", string(state)))
	s.reg.Counter("specctrl_serve_jobs_total", obs.Labels{"state": string(state)}).Inc()
}

// checkpoint persists a job's completed cells as a versioned cell dump
// (the exact schema simctrl -cells-in loads), returning its path. An
// interrupted job is requeueable: resubmitting it replays the
// checkpointed (and cached) cells and simulates only the remainder.
func (s *Server) checkpoint(j *Job) (string, error) {
	if err := os.MkdirAll(s.cfg.DrainDir, 0o755); err != nil {
		return "", err
	}
	data, err := j.cells.MarshalJSON()
	if err != nil {
		return "", err
	}
	path := filepath.Join(s.cfg.DrainDir, j.id+".cells.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, the running jobs' in-flight cells finish (queued cells are
// abandoned), and every unfinished job — running or still queued — is
// checkpointed into DrainDir as a requeueable cell dump. Drain returns
// once every executor has exited and the listener is closed. It is
// idempotent.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.drained {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if alreadyDraining {
		// A concurrent Drain is in progress; wait for the executors it
		// is shutting down, then let the idempotent close run.
		s.wg.Wait()
	} else {
		s.drainCancel()
		// Checkpoint jobs still queued; executors may race us for them,
		// which is fine — a job they pick up runs under a cancelled
		// context and checkpoints itself through the same path.
	drainQueue:
		for {
			select {
			case j := <-s.queue:
				path, err := s.checkpoint(j)
				msg := "server drained before the job started"
				if err != nil {
					msg = fmt.Sprintf("%s (checkpoint failed: %v)", msg, err)
				}
				j.finish(StateDrained, nil, msg, path, time.Now())
				s.reg.Counter("specctrl_serve_jobs_total", obs.Labels{"state": string(StateDrained)}).Inc()
			default:
				break drainQueue
			}
		}
		s.queueDepth.SetUint(uint64(len(s.queue)))
		close(s.queue)
		s.wg.Wait()
	}
	s.mu.Lock()
	s.drained = true
	s.mu.Unlock()
	return s.hs.Close()
}

// ready reports whether the server accepts submissions (the /readyz
// readiness probe; /healthz on the same mux is pure liveness).
func (s *Server) ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}
