package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
)

// Store is the content-addressed result cache: one JSON file per cell,
// named by the cell's canonical address (experiments.CellAddress), plus
// an in-memory singleflight table so concurrent requests for the same
// address trigger exactly one simulation.
//
// Because a cell's address captures everything its result is a function
// of, and experiments.CellResult round-trips exactly through JSON, a
// cell served from the store is byte-for-byte indistinguishable from a
// freshly simulated one — entries never expire. The store must be
// cleared by the operator when simulator behaviour changes (the same
// event that regenerates results_full.txt).
//
// Layout: <dir>/<first two hex digits>/<address>.json, sharded to keep
// directories small. Writes go through a temp file + rename, so a
// crashed writer leaves no partial entry; unreadable or corrupt entries
// are treated as misses and overwritten.
type Store struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*flight

	hits, misses, dedup *obs.Counter
}

// flight is one in-progress computation; followers wait on done.
type flight struct {
	done chan struct{}
	val  experiments.CellResult
	err  error
}

// NewStore opens (creating if needed) a content-addressed store rooted
// at dir. When reg is non-nil the store publishes
// specctrl_serve_cache_{hits,misses,dedup}_total.
func NewStore(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	s := &Store{dir: dir, inflight: make(map[string]*flight)}
	if reg != nil {
		s.hits = reg.Counter("specctrl_serve_cache_hits_total", nil)
		s.misses = reg.Counter("specctrl_serve_cache_misses_total", nil)
		s.dedup = reg.Counter("specctrl_serve_cache_dedup_total", nil)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(addr string) string {
	return filepath.Join(s.dir, addr[:2], addr+".json")
}

// Lookup reads the cell stored under addr, reporting whether a valid
// entry exists.
func (s *Store) Lookup(addr string) (experiments.CellResult, bool) {
	data, err := os.ReadFile(s.path(addr))
	if err != nil {
		return experiments.CellResult{}, false
	}
	var c experiments.CellResult
	if err := json.Unmarshal(data, &c); err != nil {
		return experiments.CellResult{}, false // corrupt: treat as miss
	}
	return c, true
}

// Put stores a cell computed elsewhere (e.g. uploaded by a cluster
// worker) under addr. The write is atomic and idempotent: the result
// at an address is deterministic, so a concurrent or repeated Put of
// the same address simply rewrites identical bytes.
func (s *Store) Put(addr string, c experiments.CellResult) error {
	return s.save(addr, c)
}

// save writes the cell atomically (temp file + rename in the same
// directory).
func (s *Store) save(addr string, c experiments.CellResult) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("serve: store encode: %w", err)
	}
	dir := filepath.Dir(s.path(addr))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+addr+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(addr)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	return nil
}

// GetOrCompute returns the cell stored under addr, computing and
// storing it on a miss. Concurrent callers with the same address are
// deduplicated: exactly one runs compute (with its own context), the
// rest block until it finishes (or their ctx is cancelled) and share
// the outcome. Compute errors are returned to every waiter and are not
// cached — the next request retries.
func (s *Store) GetOrCompute(ctx context.Context, addr string,
	compute func(context.Context) (experiments.CellResult, error)) (experiments.CellResult, error) {
	s.mu.Lock()
	if f, ok := s.inflight[addr]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil && s.dedup != nil {
				s.dedup.Inc()
			}
			return f.val, f.err
		case <-ctx.Done():
			return experiments.CellResult{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[addr] = f
	s.mu.Unlock()

	finish := func(val experiments.CellResult, err error) {
		f.val, f.err = val, err
		s.mu.Lock()
		delete(s.inflight, addr)
		s.mu.Unlock()
		close(f.done)
	}

	if c, ok := s.Lookup(addr); ok {
		finish(c, nil)
		if s.hits != nil {
			s.hits.Inc()
		}
		return c, nil
	}
	val, err := compute(ctx)
	if err == nil {
		err = s.save(addr, val)
	}
	finish(val, err)
	if err == nil && s.misses != nil {
		s.misses.Inc()
	}
	return val, err
}
