package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"specctrl/internal/obs/span"
)

// TestServedJobJoinsClientTrace is the distributed-tracing acceptance
// test: a submission carrying a traceparent header yields server-side
// spans — the HTTP handler span, the job span, and every grid cell
// span — that all share the client's TraceID, so one trace follows the
// job across the process boundary.
func TestServedJobJoinsClientTrace(t *testing.T) {
	serverTracer := span.New(span.Options{})
	srv := newTestServer(t, func(cfg *Config) { cfg.Tracer = serverTracer })

	// The "client": a separate tracer whose root span context rides the
	// submit request as a traceparent header.
	clientTracer := span.New(span.Options{})
	root := clientTracer.Root("client-job")

	body := `{"version":1,"experiments":["table3"]}`
	req, err := http.NewRequest(http.MethodPost, srv.URL()+"/v1/jobs", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	span.Inject(req.Header, root.Context())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	decodeSubmit(t, resp, &sub)
	root.End()

	st := waitTerminal(t, srv, sub)
	if st.State != string(StateDone) {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	wantTrace := root.Context().Trace
	var haveSubmit, haveJob bool
	cells := 0
	for _, s := range serverTracer.Snapshot() {
		if s.Context().Trace != wantTrace {
			// Polling requests (http:status) open their own traces; only
			// the submitted job's spans must join the client's.
			continue
		}
		switch {
		case s.Name == "http:submit":
			haveSubmit = true
		case s.Name == "job":
			haveJob = true
		case strings.HasPrefix(s.Name, "cell:"):
			cells++
		}
	}
	if !haveSubmit {
		t.Error("no http:submit span joined the client's TraceID")
	}
	if !haveJob {
		t.Error("no job span joined the client's TraceID")
	}
	if cells == 0 {
		t.Error("no cell spans joined the client's TraceID")
	}
}

// decodeSubmit consumes a submit response, failing on non-202.
func decodeSubmit(t *testing.T, resp *http.Response, sub *SubmitResponse) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(sub); err != nil {
		t.Fatal(err)
	}
}
