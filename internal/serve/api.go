package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs/span"
	"specctrl/internal/synth"
)

// APIVersion is the job API's JSON schema version: every request and
// response body carries it as "version". Submissions with any other
// version (0 is accepted as "unversioned current") are rejected with
// 400 so a future client can't be silently misparsed.
const APIVersion = 1

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	Version int `json:"version"`
	// Experiments are registry names (simctrl -list), executed in
	// order.
	Experiments []string `json:"experiments"`
	// Committed overrides the server's committed-instruction budget
	// per simulation (0 = server default).
	Committed uint64 `json:"committed,omitempty"`
	// BaseSeed overrides the grid base seed (0 = default).
	BaseSeed uint64 `json:"baseSeed,omitempty"`
	// SynthN overrides the sweepspace experiment's generated profile
	// count (0 = default).
	SynthN int `json:"synthN,omitempty"`
	// SynthProfiles are generator vectors the server registers before
	// running the job; their workloads join the sweepspace sweep. Full
	// vectors travel in the request because content-addressed names
	// alone are not reconstructible server-side.
	SynthProfiles []synth.Profile `json:"synthProfiles,omitempty"`
}

// SubmitResponse is the 202 body of POST /v1/jobs.
type SubmitResponse struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Status  string `json:"status"` // path to poll
	Events  string `json:"events"` // path to stream
	Result  string `json:"result"` // path to fetch once done
	Cells   string `json:"cells"`  // path to the cell dump
}

// CellCounts summarizes a job's cell progress.
type CellCounts struct {
	Done      int `json:"done"`
	FromCache int `json:"fromCache"`
	Simulated int `json:"simulated"`
}

// StatusResponse is the body of GET /v1/jobs/{id}.
type StatusResponse struct {
	Version     int        `json:"version"`
	ID          string     `json:"id"`
	State       string     `json:"state"`
	Error       string     `json:"error,omitempty"`
	Experiments []string   `json:"experiments"`
	Cells       CellCounts `json:"cells"`
	Checkpoint  string     `json:"checkpoint,omitempty"`
	CreatedAt   time.Time  `json:"createdAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
}

// ResultResponse is the body of GET /v1/jobs/{id}/result.
type ResultResponse struct {
	Version int                `json:"version"`
	ID      string             `json:"id"`
	State   string             `json:"state"`
	Outputs []ExperimentOutput `json:"outputs"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Version int    `json:"version"`
	Error   string `json:"error"`
}

// routes mounts the job API onto the observability mux. Every handler
// is wrapped in a server span that joins the caller's traceparent
// header, so one TraceID follows a job from the client through the API
// into the grid.
func (s *Server) routes(mux *http.ServeMux) {
	mux.Handle("POST /v1/jobs", s.traced("submit", s.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", s.traced("status", s.handleStatus))
	mux.Handle("GET /v1/jobs/{id}/events", s.traced("events", s.handleEvents))
	mux.Handle("GET /v1/jobs/{id}/result", s.traced("result", s.handleResult))
	mux.Handle("GET /v1/jobs/{id}/cells", s.traced("cells", s.handleCells))
	mux.Handle("GET /readyz", s.traced("readyz", s.handleReady))
}

// statusWriter records the response code for the request span while
// forwarding Flush, which the event stream needs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traced wraps an API handler in an "http:<name>" span, parented to the
// caller's traceparent header when one is present. The span rides the
// request context so handleSubmit can hang the job's spans under it.
func (s *Server) traced(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.cfg.Tracer
		if tr == nil {
			h(w, r)
			return
		}
		sp := tr.Child(span.Extract(r.Header), "http:"+name,
			span.Str("method", r.Method), span.Str("path", r.URL.Path))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			sp.SetAttrs(span.Int("status", int64(sw.code)))
			sp.End()
		}()
		h(sw, r.WithContext(span.NewContext(r.Context(), sp)))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Version: APIVersion, Error: fmt.Sprintf(format, args...)})
}

// retryAfter stamps the backpressure hint in whole seconds (minimum 1,
// per RFC 9110's delay-seconds form).
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Version != 0 && req.Version != APIVersion {
		writeError(w, http.StatusBadRequest,
			"unsupported API version %d (this server speaks version %d)", req.Version, APIVersion)
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, "no experiments in request")
		return
	}
	for _, name := range req.Experiments {
		if _, ok := experiments.Lookup(name); !ok {
			writeError(w, http.StatusBadRequest, "unknown experiment %q", name)
			return
		}
	}
	if req.SynthN < 0 {
		writeError(w, http.StatusBadRequest, "negative synthN %d", req.SynthN)
		return
	}
	// Register submitted profiles up front: an invalid vector fails the
	// submission (400), not the job, and registration is idempotent so
	// repeat submissions are free.
	for i, prof := range req.SynthProfiles {
		if _, err := synth.Register(prof); err != nil {
			writeError(w, http.StatusBadRequest, "synth profile %d: %v", i, err)
			return
		}
	}
	// Parent the job under this request's span (itself joined to the
	// client's trace); fall back to the raw header if tracing is off.
	parent := span.Extract(r.Header)
	if sp := span.FromContext(r.Context()); sp != nil {
		parent = sp.Context()
	}
	j, err := s.submit(req, parent)
	switch err {
	case nil:
	case errDraining:
		s.retryAfter(w)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errQueueFull:
		s.retryAfter(w)
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d queued)", s.cfg.QueueDepth)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	base := "/v1/jobs/" + j.id
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		Version: APIVersion,
		ID:      j.id,
		Status:  base,
		Events:  base + "/events",
		Result:  base + "/result",
		Cells:   base + "/cells",
	})
}

// lookupJob resolves the {id} path value, writing the 404 itself.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	state, outputs, errMsg := j.result()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, ResultResponse{
			Version: APIVersion, ID: j.id, State: string(state), Outputs: outputs,
		})
	case StateFailed, StateDrained:
		writeError(w, http.StatusConflict, "job %s %s: %s", j.id, state, errMsg)
	default:
		writeError(w, http.StatusConflict, "job %s still %s", j.id, state)
	}
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	// The dump is valid at any point in the job's life: it is exactly
	// the cells completed so far, in the -cells-out schema.
	data, err := j.cells.MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// handleEvents streams the job's events as newline-delimited JSON:
// every past event is replayed, then new ones follow as they happen,
// until the terminal "job" event (or the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		evs, changed, terminal := j.eventsSince(cursor)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		cursor += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			// Drain any events emitted between snapshot and now, then
			// stop: the terminal event is always last.
			if evs, _, _ := j.eventsSince(cursor); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready() {
		s.retryAfter(w)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}
