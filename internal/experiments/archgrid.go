package experiments

import (
	"context"
	"fmt"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/profile"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// Architectural-trace evaluation: the upstream tier of record/replay.
//
// The experiments classified ConsumesCommitted in the registry
// (table2, table2-detail, table3, auc, patterns, misest) are defined
// over the committed branch stream alone: their canonical semantics is
// a trace-driven evaluation — predictor and estimator models stepped
// over the committed (pc, outcome) sequence with every branch resolved
// immediately — not a cycle simulation. All three -replay modes
// therefore produce byte-identical results for them by construction;
// the mode only selects how the stream is obtained:
//
//	arch    the ArchCache, keyed by ArchTraceAddress (one recording
//	        per workload, shared across predictors, estimators,
//	        experiments, and — through the cluster backing — machines)
//	events  derived from the canonical predictor's event-tier trace
//	        (replay.ArchFromTrace), sharing the recording the Fig 3-5
//	        sweeps already pay for
//	off     a fresh recording run per cell, nothing cached
//
// The committed stream itself is predictor-independent, but its length
// is not: the simulator stops after the fetch cycle that crosses the
// committed-instruction budget, and that overshoot depends on fetch
// alignment, i.e. on timing. Recording therefore always uses one
// canonical configuration — the gshare predictor at Params.GshareBits —
// in every mode, so all modes reconstruct the identical stream.

// archEligible reports whether the canonical trace-driven evaluation
// applies under these parameters. The check mirrors replayActive's
// side-channel list (and is deliberately independent of Params.Replay:
// the replay mode changes stream acquisition, never semantics): base
// estimators, tracers, event logs, and site-stats collection need a
// real simulation, and a speculation-control policy perturbs the
// committed stream itself by changing what commits when.
func (p Params) archEligible() bool {
	return len(p.Pipeline.Estimators) == 0 &&
		p.Pipeline.Tracer == nil &&
		p.Pipeline.Policy == nil &&
		!p.Pipeline.RecordEvents &&
		!p.Pipeline.CollectSiteStats
}

// defaultArchCache backs Params with a nil ArchCache: one shared
// process-wide cache, metrics-less, with the default byte budget.
var defaultArchCache = replay.NewArchCache(0, nil)

func (p Params) archCache() *replay.ArchCache {
	if p.ArchCache != nil {
		return p.ArchCache
	}
	return defaultArchCache
}

// recordArch simulates one workload under the canonical recording
// configuration (gshare, no estimators) with an ArchRecorder attached
// and returns the committed branch-outcome stream.
func (p Params) recordArch(w workload.Workload) (*replay.ArchTrace, error) {
	var rs *span.Span
	if p.Tracer != nil {
		rs = p.Tracer.Child(p.SpanParent, "arch-record", span.Str("workload", w.Name))
		defer rs.End()
	}
	rec := replay.NewArchRecorder()
	cfg := p.Pipeline
	cfg.MaxCommitted = p.MaxCommitted
	cfg.Tracer = rec
	if p.Obs != nil {
		cfg.Metrics = p.Obs
		cfg.MetricsLabels = obs.Labels{"workload": w.Name, "predictor": "gshare"}
	}
	if p.Run != nil {
		cfg.Progress = p.Run
		p.Run.StartRun(w.Name+"/arch", p.MaxCommitted)
	}
	sim, err := pipeline.New(cfg, buildProgram(w, p.BuildIters), bpred.NewGshare(p.GshareBits))
	if err != nil {
		return nil, fmt.Errorf("arch record %s: %w", w.Name, err)
	}
	p.progress("arch %-9s", w.Name)
	st, err := sim.Run()
	if err != nil {
		return nil, err
	}
	rec.SetCommitted(st.Committed)
	t := rec.Trace()
	if rs != nil {
		rs.SetAttrs(span.Int("branches", int64(t.Branches())), span.Int("cycles", int64(st.Cycles)))
	}
	if p.Obs != nil {
		p.Obs.Histogram("specctrl_run_ipc", obs.Labels{"predictor": "gshare"}, ipcBounds).
			Observe(st.IPC())
		p.Obs.Counter("specctrl_runs_total", nil).Inc()
	}
	return t, nil
}

// archStreamFor returns the workload's committed branch stream by
// whatever acquisition route Params.Replay selects: the arch cache
// (recording through it on a miss, singleflight), a derivation from
// the canonical predictor's event-tier trace, or — under ReplayOff — a
// fresh uncached recording. Every route reconstructs the identical
// stream; differential tests pin that.
func (p Params) archStreamFor(w workload.Workload) (*replay.ArchTrace, error) {
	var ts *span.Span
	if p.Tracer != nil {
		ts = p.Tracer.Child(p.SpanParent, "arch", span.Str("workload", w.Name))
		defer ts.End()
	}
	switch p.Replay {
	case ReplayOff:
		if ts != nil {
			ts.SetAttrs(span.Str("outcome", "direct"))
		}
		return p.recordArch(w)
	case ReplayEvents:
		tr, base, err := p.traceFor(w, GshareSpec())
		if err != nil {
			return nil, err
		}
		if ts != nil {
			ts.SetAttrs(span.Str("outcome", "events"))
		}
		return replay.ArchFromTrace(tr, base.Committed), nil
	default: // ReplayArch, ReplayAuto, ""
		t, outcome, err := p.archCache().GetOrRecordOutcome(p.ArchTraceAddress(w.Name),
			func() (*replay.ArchTrace, error) { return p.recordArch(w) })
		if ts != nil {
			ts.SetAttrs(span.Str("outcome", string(outcome)))
		}
		return t, err
	}
}

// archStats assembles the Stats the canonical evaluation defines: the
// stream's committed-instruction and branch counts, the per-estimator
// statistics, and the first estimator's quadrants mirrored into the
// top-level fields the way the simulator mirrors them. Timing fields
// (cycles, squashes, wrong-path counts) are zero — the committed
// stream has no timing, and no ConsumesCommitted experiment reads
// them. With every branch committed and resolved immediately, AllBr
// equals CommittedBr and each estimator's AllQ equals its CommittedQ.
func archStats(t *replay.ArchTrace, confs []pipeline.ConfStats) *pipeline.Stats {
	st := &pipeline.Stats{
		Committed:   t.Committed(),
		CommittedBr: uint64(t.Branches()),
		AllBr:       uint64(t.Branches()),
		Confidence:  confs,
	}
	if len(confs) > 0 {
		st.AllQ = confs[0].AllQ
		st.CommittedQ = confs[0].CommittedQ
	}
	return st
}

// archStatic builds the static estimator from the committed stream: a
// canonical-predictor profiling pass over the trace (replay.ArchSites)
// instead of a profiling simulation, thresholded exactly like
// profile.Collect.
func (p Params) archStatic(t *replay.ArchTrace, spec PredictorSpec) conf.Static {
	return profile.FromSites(replay.ArchSites(t, spec.New(p)),
		profile.Options{Threshold: p.StaticThreshold})
}

// archEval is the arch-tier equivalent of evalEstimators: it obtains
// the workload's committed stream and evaluates the predictor spec and
// estimators against it in one pass. Callers must have checked
// archEligible.
func (p Params) archEval(w workload.Workload, spec PredictorSpec, ests ...conf.Estimator) (*pipeline.Stats, error) {
	t, err := p.archStreamFor(w)
	if err != nil {
		return nil, err
	}
	var rs *span.Span
	if p.Tracer != nil {
		rs = p.Tracer.Child(p.SpanParent, "arch-replay",
			span.Str("workload", w.Name), span.Str("predictor", spec.Name),
			span.Int("estimators", int64(len(ests))))
	}
	confs := replay.ArchReplay(t, spec.New(p), ests)
	if rs != nil {
		rs.SetAttrs(span.Int("branches", int64(t.Branches())))
		rs.End()
	}
	return archStats(t, confs), nil
}

// suiteStatsArch is suiteStats routed through the arch tier: one cell
// per suite benchmark, each evaluating the full estimator list in one
// pass over the workload's committed stream. Grids keep the exact spec
// keys of the direct path — no #record/#replay batch cells; the arch
// cache's singleflight already dedups recordings — so cell addresses
// (and therefore cached cells and cluster units) are identical across
// all replay modes. Parameters that fail archEligible fall back to
// suiteStats, which applies the events-replay/direct choice unchanged.
func (p Params) suiteStatsArch(experiment string, spec PredictorSpec, variant string, nEsts int,
	ests func(p Params, w workload.Workload) ([]conf.Estimator, error)) ([]*pipeline.Stats, error) {
	if !p.archEligible() {
		return p.suiteStats(experiment, spec, variant, nEsts, ests)
	}
	cells, err := p.runGrid(suiteSpecs(experiment, spec, variant),
		func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
			w, err := workload.ByName(sp.Workload)
			if err != nil {
				return CellResult{}, err
			}
			es, err := ests(p, w)
			if err != nil {
				return CellResult{}, err
			}
			if len(es) != nEsts {
				return CellResult{}, fmt.Errorf("experiments: %s estimator builder returned %d estimators, caller declared %d",
					experiment, len(es), nEsts)
			}
			st, err := p.archEval(w, spec, es...)
			if err != nil {
				return CellResult{}, err
			}
			return CellResult{Stats: st}, nil
		})
	if err != nil {
		return nil, err
	}
	stats := make([]*pipeline.Stats, len(cells))
	for i := range cells {
		stats[i] = cells[i].Stats
	}
	return stats, nil
}
