package experiments

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"specctrl/internal/replay"
	"specctrl/internal/runner"
)

// smallParams is a heavily reduced scale for grid-mechanics tests that
// run the same experiment several times.
func smallParams() Params {
	p := TestParams()
	p.MaxCommitted = 40_000
	return p
}

// TestGridDeterminism is the tentpole guarantee: the same experiment
// rendered at Jobs: 1 and Jobs: 8 must be byte-identical, because cells
// are isolated and assembly is positional.
func TestGridDeterminism(t *testing.T) {
	serial := smallParams()
	serial.Jobs = 1
	wide := smallParams()
	wide.Jobs = 8

	r1, err := Table2(serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Table2(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("Table2 results differ between Jobs=1 and Jobs=8")
	}
	if r1.Render() != r8.Render() {
		t.Fatal("Table2 rendered output differs between Jobs=1 and Jobs=8")
	}
}

// TestGridCancellation cancels an experiment mid-grid via Params.Ctx and
// checks that the error surfaces as context.Canceled and that the
// runner's workers exit (no goroutine leak).
func TestGridCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	p := smallParams()
	p.ArchCache = replay.NewArchCache(0, nil) // cold, so cells emit progress
	p.Ctx = ctx
	p.Jobs = 4
	cells := 0
	p.Progress = func(string) {
		cells++
		if cells == 2 {
			cancel()
		}
	}
	_, err := Table2(p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	// Workers stop at the next cell boundary; give them a moment.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before cancel, %d after", before, runtime.NumGoroutine())
}

// TestCellsRoundTrip dumps a grid's cells to JSON, reloads them, and
// re-renders purely from the preloaded cells: the reuse path must be
// byte-identical to direct simulation, and must not simulate at all.
func TestCellsRoundTrip(t *testing.T) {
	rec := smallParams()
	rec.Record = NewCellStore()
	direct, err := Table3(rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Record.Len() == 0 {
		t.Fatal("no cells recorded")
	}

	data, err := rec.Record.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := UnmarshalCells(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != rec.Record.Len() {
		t.Fatalf("round-trip lost cells: %d != %d", len(cells), rec.Record.Len())
	}

	replay := smallParams()
	replay.Cells = cells
	replay.Progress = func(msg string) { t.Fatalf("simulated despite preloaded cells: %s", msg) }
	reloaded, err := Table3(replay)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Render() != reloaded.Render() {
		t.Fatal("render from reloaded cells differs from direct simulation")
	}
}

// TestUnmarshalCellsVersion: cell files from a different (typically
// future) schema version must fail with the typed version error before
// any cell payload is decoded.
func TestUnmarshalCellsVersion(t *testing.T) {
	for _, bad := range []string{
		`{"version":2,"cells":{}}`,  // future version
		`{"version":0,"cells":{}}`,  // explicit zero
		`{"cells":{}}`,              // version missing entirely
		`{"version":-1,"cells":{}}`, // nonsense
	} {
		_, err := UnmarshalCells([]byte(bad))
		var verr *UnsupportedCellVersionError
		if !errors.As(err, &verr) {
			t.Errorf("UnmarshalCells(%s) = %v, want UnsupportedCellVersionError", bad, err)
		}
	}
	if _, err := UnmarshalCells([]byte(`{"version":1,"cells":{}}`)); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
	if _, err := UnmarshalCells([]byte(`not json`)); err == nil {
		t.Error("malformed file accepted")
	}
}

// countingCache is a minimal CellCache: an in-memory map that counts
// computes, standing in for internal/serve's on-disk store.
type countingCache struct {
	mu       sync.Mutex
	m        map[string]CellResult
	computes int
}

func (c *countingCache) GetOrCompute(ctx context.Context, addr string, _ runner.Spec,
	compute func(context.Context) (CellResult, error)) (CellResult, error) {
	c.mu.Lock()
	if hit, ok := c.m[addr]; ok {
		c.mu.Unlock()
		return hit, nil
	}
	c.mu.Unlock()
	res, err := compute(ctx)
	if err != nil {
		return res, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]CellResult{}
	}
	c.m[addr] = res
	c.computes++
	c.mu.Unlock()
	return res, nil
}

// TestGridCellCache runs a grid twice through one CellCache with fresh
// Params: the second run must compute nothing and render identically —
// the property internal/serve's result cache is built on.
func TestGridCellCache(t *testing.T) {
	cc := &countingCache{}

	// Direct mode: this test pins the one-cell-per-workload grid shape
	// whose addresses m2cells re-derives (replay-mode grids have their
	// own shape, covered by the replay tests).
	first := smallParams()
	first.Replay = ReplayOff
	first.Cache = cc
	direct, err := Table3(first)
	if err != nil {
		t.Fatal(err)
	}
	if cc.computes != len(suite()) {
		t.Fatalf("first run computed %d cells, want %d", cc.computes, len(suite()))
	}

	second := smallParams()
	second.Replay = ReplayOff
	second.Cache = cc
	replay, err := Table3(second)
	if err != nil {
		t.Fatal(err)
	}
	if cc.computes != len(suite()) {
		t.Fatalf("second run computed %d new cells, want 0", cc.computes-len(suite()))
	}
	if direct.Render() != replay.Render() {
		t.Fatal("render from cached cells differs from direct simulation")
	}

	// Preloaded Cells take precedence over the cache: a poisoned cache
	// never overrides explicitly supplied cells.
	pre := smallParams()
	pre.Replay = ReplayOff
	pre.Cache = &countingCache{} // empty; would simulate if consulted
	pre.Cells = cc.m2cells(t)
	pre.Progress = func(msg string) { t.Fatalf("simulated despite preloaded cells: %s", msg) }
	if _, err := Table3(pre); err != nil {
		t.Fatal(err)
	}
}

// m2cells rekeys the cache's address-keyed entries by spec key for use
// as a Params.Cells preload.
func (c *countingCache) m2cells(t *testing.T) map[string]CellResult {
	t.Helper()
	p := smallParams()
	out := map[string]CellResult{}
	for _, w := range suite() {
		sp := runner.Spec{Experiment: "table3", Workload: w.Name, Predictor: "mcfarling", Variant: "main"}
		hit, ok := c.m[p.CellAddress(sp)]
		if !ok {
			t.Fatalf("cache missing cell for %s", sp.Key())
		}
		out[sp.Key()] = hit
	}
	return out
}

// TestShardRun checks that a sharded run returns ErrShardOnly, records
// only its own cells, and that merging all shards reproduces the full
// grid.
func TestShardRun(t *testing.T) {
	merged := map[string]CellResult{}
	total := 0
	for i := 0; i < 3; i++ {
		p := smallParams()
		p.Shard.Index, p.Shard.Count = i, 3
		p.Record = NewCellStore()
		_, err := Table3(p)
		if !errors.Is(err, ErrShardOnly) {
			t.Fatalf("shard %d: got %v, want ErrShardOnly", i, err)
		}
		data, err := p.Record.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		cells, err := UnmarshalCells(data)
		if err != nil {
			t.Fatal(err)
		}
		total += len(cells)
		for k, c := range cells {
			if _, dup := merged[k]; dup {
				t.Fatalf("cell %s computed by two shards", k)
			}
			merged[k] = c
		}
	}
	full := smallParams()
	full.Cells = merged
	direct := smallParams()
	want, err := Table3(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Table3(full)
	if err != nil {
		t.Fatal(err)
	}
	// Table3 is arch-eligible: the grid is one cell per workload under
	// every replay mode (the arch cache dedups recordings below the
	// cell layer, so there are no #record/#replay cells to shard).
	if want := len(suite()); total != want {
		t.Fatalf("shards produced %d cells, want %d", total, want)
	}
	if want.Render() != got.Render() {
		t.Fatal("merged shard render differs from direct run")
	}
}
