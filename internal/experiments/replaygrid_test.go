package experiments

import (
	"strings"
	"testing"

	"specctrl/internal/replay"
)

// TestReplayRenderMatchesDirect is the experiments-level exactness
// gate: the same experiment rendered under record/replay evaluation
// and under direct simulation must be byte-identical. The selection
// covers the replay-backed grid shapes — suite sweeps with stateful
// sweep estimators (fig3), small fixed estimator sets (table3),
// profiling-dependent builders (table2's static column), and
// evalEstimators cells with a training profiler (patterns).
func TestReplayRenderMatchesDirect(t *testing.T) {
	for _, exp := range []string{"table2", "table3", "fig3", "patterns"} {
		t.Run(exp, func(t *testing.T) {
			direct := smallParams()
			direct.Replay = ReplayOff
			want, err := Run(exp, direct)
			if err != nil {
				t.Fatal(err)
			}

			rep := smallParams()
			rep.TraceCache = replay.NewCache(0, nil) // isolate from other tests
			got, err := Run(exp, rep)
			if err != nil {
				t.Fatal(err)
			}

			if want.Render() != got.Render() {
				t.Errorf("replay-mode render differs from direct simulation:\n--- direct ---\n%s\n--- replay ---\n%s",
					want.Render(), got.Render())
			}
		})
	}
}

// TestReplayTraceSharedAcrossExperiments: the trace cache is keyed
// below the experiment, so a second experiment touching the same
// (workload, predictor) pairs replays entirely from cache — zero new
// recordings. This is the property that lets `-exp all` simulate each
// pair once.
func TestReplayTraceSharedAcrossExperiments(t *testing.T) {
	cache := replay.NewCache(0, nil)
	records := func(exp string) int {
		p := smallParams()
		p.TraceCache = cache
		n := 0
		p.Progress = func(msg string) {
			if strings.HasPrefix(msg, "record ") {
				n++
			}
		}
		if _, err := Run(exp, p); err != nil {
			t.Fatal(err)
		}
		return n
	}

	if n := records("table3"); n != len(suite()) {
		t.Fatalf("table3 recorded %d traces, want one per workload (%d)", n, len(suite()))
	}
	// Same workloads, same predictor: everything replays from cache.
	if n := records("table3"); n != 0 {
		t.Fatalf("second table3 run recorded %d traces, want 0", n)
	}
	if c := cache.Len(); c != len(suite()) {
		t.Fatalf("cache holds %d traces, want %d", c, len(suite()))
	}
}

// TestReplayDeterminismAcrossJobs: replay-shaped grids keep the
// byte-identity guarantee under parallel execution (record cells and
// replay cells interleave freely on the worker pool).
func TestReplayDeterminismAcrossJobs(t *testing.T) {
	serial := smallParams()
	serial.Jobs = 1
	serial.TraceCache = replay.NewCache(0, nil)
	wide := smallParams()
	wide.Jobs = 8
	wide.TraceCache = replay.NewCache(0, nil)

	r1, err := Run("fig3", serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run("fig3", wide)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Fatal("fig3 replay render differs between Jobs=1 and Jobs=8")
	}
}

// TestTraceAddressExcludesEstimatorIdentity: two parameter sets that
// differ only in estimator-facing knobs must share a trace address,
// while pipeline- or predictor-facing changes must not.
func TestTraceAddressExcludesEstimatorIdentity(t *testing.T) {
	base := smallParams()
	spec, err := predictorByName("gshare")
	if err != nil {
		t.Fatal(err)
	}
	addr := base.TraceAddress("gcc", spec)

	same := base
	same.StaticThreshold = 0.5 // estimator construction knob only
	if same.TraceAddress("gcc", spec) != addr {
		t.Error("StaticThreshold changed the trace address")
	}

	for name, mutate := range map[string]func(*Params){
		"MaxCommitted": func(p *Params) { p.MaxCommitted++ },
		"BaseSeed":     func(p *Params) { p.BaseSeed++ },
		"GshareBits":   func(p *Params) { p.GshareBits++ },
		"FetchWidth":   func(p *Params) { p.Pipeline.FetchWidth++ },
	} {
		p := base
		mutate(&p)
		if p.TraceAddress("gcc", spec) == addr {
			t.Errorf("%s change did not change the trace address", name)
		}
	}
	if base.TraceAddress("perl", spec) == addr {
		t.Error("workload change did not change the trace address")
	}
	mcf, err := predictorByName("mcfarling")
	if err != nil {
		t.Fatal(err)
	}
	if base.TraceAddress("gcc", mcf) == addr {
		t.Error("predictor change did not change the trace address")
	}
}
