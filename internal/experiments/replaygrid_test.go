package experiments

import (
	"strings"
	"testing"

	"specctrl/internal/replay"
)

// TestReplayRenderMatchesDirect is the experiments-level exactness
// gate: the same experiment rendered under record/replay evaluation
// and under direct simulation must be byte-identical. The selection
// covers the replay-backed grid shapes — suite sweeps with stateful
// sweep estimators (fig3), small fixed estimator sets (table3),
// profiling-dependent builders (table2's static column), and
// evalEstimators cells with a training profiler (patterns).
func TestReplayRenderMatchesDirect(t *testing.T) {
	for _, exp := range []string{"table2", "table3", "fig3", "patterns"} {
		t.Run(exp, func(t *testing.T) {
			direct := smallParams()
			direct.Replay = ReplayOff
			want, err := Run(exp, direct)
			if err != nil {
				t.Fatal(err)
			}

			rep := smallParams()
			rep.TraceCache = replay.NewCache(0, nil) // isolate from other tests
			got, err := Run(exp, rep)
			if err != nil {
				t.Fatal(err)
			}

			if want.Render() != got.Render() {
				t.Errorf("replay-mode render differs from direct simulation:\n--- direct ---\n%s\n--- replay ---\n%s",
					want.Render(), got.Render())
			}
		})
	}
}

// TestReplayTraceSharedAcrossExperiments: both trace tiers are keyed
// below the experiment, so a second experiment touching the same
// workloads evaluates entirely from cache — zero new recordings. This
// is the property that lets `-exp all` simulate each (workload,
// predictor) pair at most once, and each workload's committed stream
// exactly once.
func TestReplayTraceSharedAcrossExperiments(t *testing.T) {
	t.Run("arch", func(t *testing.T) {
		cache := replay.NewArchCache(0, nil)
		records := func(exp string) int {
			p := smallParams()
			p.ArchCache = cache
			n := 0
			p.Progress = func(msg string) {
				if strings.HasPrefix(msg, "arch ") {
					n++
				}
			}
			if _, err := Run(exp, p); err != nil {
				t.Fatal(err)
			}
			return n
		}

		if n := records("table3"); n != len(suite()) {
			t.Fatalf("table3 recorded %d arch traces, want one per workload (%d)", n, len(suite()))
		}
		// The arch tier is keyed below the predictor too: misest sweeps
		// gshare and McFarling cells, all served by table3's recordings.
		if n := records("misest"); n != 0 {
			t.Fatalf("misest after table3 recorded %d arch traces, want 0", n)
		}
		if c := cache.Len(); c != len(suite()) {
			t.Fatalf("arch cache holds %d traces, want %d", c, len(suite()))
		}
	})

	t.Run("events", func(t *testing.T) {
		cache := replay.NewCache(0, nil)
		records := func(exp string) int {
			p := smallParams()
			p.TraceCache = cache
			n := 0
			p.Progress = func(msg string) {
				if strings.HasPrefix(msg, "record ") {
					n++
				}
			}
			if _, err := Run(exp, p); err != nil {
				t.Fatal(err)
			}
			return n
		}

		if n := records("fig3"); n != len(suite()) {
			t.Fatalf("fig3 recorded %d traces, want one per workload (%d)", n, len(suite()))
		}
		// Same workloads, same predictor: everything replays from cache.
		if n := records("fig3"); n != 0 {
			t.Fatalf("second fig3 run recorded %d traces, want 0", n)
		}
		if c := cache.Len(); c != len(suite()) {
			t.Fatalf("trace cache holds %d traces, want %d", c, len(suite()))
		}
	})
}

// TestReplayDeterminismAcrossJobs: replay-shaped grids keep the
// byte-identity guarantee under parallel execution (record cells and
// replay cells interleave freely on the worker pool).
func TestReplayDeterminismAcrossJobs(t *testing.T) {
	serial := smallParams()
	serial.Jobs = 1
	serial.TraceCache = replay.NewCache(0, nil)
	wide := smallParams()
	wide.Jobs = 8
	wide.TraceCache = replay.NewCache(0, nil)

	r1, err := Run("fig3", serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run("fig3", wide)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Fatal("fig3 replay render differs between Jobs=1 and Jobs=8")
	}
}

// TestArchTraceAddressExcludesPredictorIdentity: the arch address is
// per-workload — the signature takes no predictor spec (which is what
// lets misest's per-predictor cells share table3's recordings), and
// estimator-facing knobs must not perturb it, while anything shaping
// the committed stream (horizon, seed, workload, the canonical
// recorder's gshare sizing, pipeline identity) must.
func TestArchTraceAddressExcludesPredictorIdentity(t *testing.T) {
	base := smallParams()
	addr := base.ArchTraceAddress("gcc")

	same := base
	same.StaticThreshold = 0.5 // estimator construction knob only
	if same.ArchTraceAddress("gcc") != addr {
		t.Error("StaticThreshold changed the arch trace address")
	}

	for name, mutate := range map[string]func(*Params){
		"MaxCommitted": func(p *Params) { p.MaxCommitted++ },
		"BaseSeed":     func(p *Params) { p.BaseSeed++ },
		"GshareBits":   func(p *Params) { p.GshareBits++ },
		"FetchWidth":   func(p *Params) { p.Pipeline.FetchWidth++ },
	} {
		p := base
		mutate(&p)
		if p.ArchTraceAddress("gcc") == addr {
			t.Errorf("%s change did not change the arch trace address", name)
		}
	}
	if base.ArchTraceAddress("perl") == addr {
		t.Error("workload change did not change the arch trace address")
	}
}

// TestTraceAddressExcludesEstimatorIdentity: two parameter sets that
// differ only in estimator-facing knobs must share a trace address,
// while pipeline- or predictor-facing changes must not.
func TestTraceAddressExcludesEstimatorIdentity(t *testing.T) {
	base := smallParams()
	spec, err := predictorByName("gshare")
	if err != nil {
		t.Fatal(err)
	}
	addr := base.TraceAddress("gcc", spec)

	same := base
	same.StaticThreshold = 0.5 // estimator construction knob only
	if same.TraceAddress("gcc", spec) != addr {
		t.Error("StaticThreshold changed the trace address")
	}

	for name, mutate := range map[string]func(*Params){
		"MaxCommitted": func(p *Params) { p.MaxCommitted++ },
		"BaseSeed":     func(p *Params) { p.BaseSeed++ },
		"GshareBits":   func(p *Params) { p.GshareBits++ },
		"FetchWidth":   func(p *Params) { p.Pipeline.FetchWidth++ },
	} {
		p := base
		mutate(&p)
		if p.TraceAddress("gcc", spec) == addr {
			t.Errorf("%s change did not change the trace address", name)
		}
	}
	if base.TraceAddress("perl", spec) == addr {
		t.Error("workload change did not change the trace address")
	}
	mcf, err := predictorByName("mcfarling")
	if err != nil {
		t.Fatal(err)
	}
	if base.TraceAddress("gcc", mcf) == addr {
		t.Error("predictor change did not change the trace address")
	}
}
