package experiments

import (
	"testing"

	"specctrl/internal/replay"
)

// committedExperiments returns the registered experiments whose
// canonical semantics is the committed-stream evaluation, in
// presentation order.
func committedExperiments() []string {
	var out []string
	for _, name := range order {
		if registry[name].Consumes == ConsumesCommitted {
			out = append(out, name)
		}
	}
	return out
}

// TestCommittedByteIdenticalAcrossModes is the differential gate on the
// arch tier: every ConsumesCommitted experiment must render
// byte-identically under -replay arch, -replay events, and -replay off,
// and under parallel execution. All three modes run the same canonical
// evaluation and differ only in how the committed stream is acquired
// (cached recording, derivation from an event trace, fresh recording),
// so any divergence is a bug in an acquisition path.
//
// The caches are shared across the subtests, exactly as one `-exp all`
// process shares them across experiments.
func TestCommittedByteIdenticalAcrossModes(t *testing.T) {
	archCache := replay.NewArchCache(0, nil)
	eventCache := replay.NewCache(0, nil)
	for _, exp := range committedExperiments() {
		t.Run(exp, func(t *testing.T) {
			off := smallParams()
			off.Replay = ReplayOff
			want, err := Run(exp, off)
			if err != nil {
				t.Fatal(err)
			}

			arch := smallParams()
			arch.Replay = ReplayArch
			arch.ArchCache = archCache
			gotArch, err := Run(exp, arch)
			if err != nil {
				t.Fatal(err)
			}
			if gotArch.Render() != want.Render() {
				t.Errorf("arch render differs from direct:\n--- direct ---\n%s\n--- arch ---\n%s",
					want.Render(), gotArch.Render())
			}

			events := smallParams()
			events.Replay = ReplayEvents
			events.TraceCache = eventCache
			gotEvents, err := Run(exp, events)
			if err != nil {
				t.Fatal(err)
			}
			if gotEvents.Render() != want.Render() {
				t.Errorf("events render differs from direct:\n--- direct ---\n%s\n--- events ---\n%s",
					want.Render(), gotEvents.Render())
			}

			wide := smallParams()
			wide.Replay = ReplayArch
			wide.ArchCache = archCache
			wide.Jobs = 8
			gotWide, err := Run(exp, wide)
			if err != nil {
				t.Fatal(err)
			}
			if gotWide.Render() != want.Render() {
				t.Error("arch render differs between Jobs=1 and Jobs=8")
			}
		})
	}
}
