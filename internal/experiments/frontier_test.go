package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"specctrl/internal/policy"
	"specctrl/internal/runner"
)

// frontierParams: the frontier simulates every cell directly (policies
// perturb timing), so the grid-mechanics tests run it at a heavily
// reduced scale.
func frontierParams() Params {
	p := TestParams()
	p.MaxCommitted = 20_000
	return p
}

// TestFrontierDeterminism: the frontier grid must be byte-identical at
// any Jobs width — cells are isolated and assembly is positional.
func TestFrontierDeterminism(t *testing.T) {
	serial := frontierParams()
	serial.Jobs = 1
	wide := frontierParams()
	wide.Jobs = 8

	r1, err := Frontier(serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Frontier(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("Frontier results differ between Jobs=1 and Jobs=8")
	}
	if r1.Render() != r8.Render() {
		t.Fatal("Frontier rendered output differs between Jobs=1 and Jobs=8")
	}
	// The sweep must be non-vacuous: at least one gating point actually
	// withheld fetch, and the table carries every (estimator, policy).
	want := len(frontierEstimators()) * len(frontierPolicies())
	if len(r1.Points) != want {
		t.Fatalf("points = %d, want %d", len(r1.Points), want)
	}
	gated := false
	for _, pt := range r1.Points {
		if pt.GatedFrac > 0 {
			gated = true
		}
	}
	if !gated {
		t.Fatal("no frontier policy gated any cycles; the sweep is vacuous")
	}
}

// TestFrontierShardRoundTrip: sharded frontier runs return ErrShardOnly,
// partition the cells without overlap, and merge back to the direct
// render.
func TestFrontierShardRoundTrip(t *testing.T) {
	merged := map[string]CellResult{}
	total := 0
	for i := 0; i < 3; i++ {
		p := frontierParams()
		p.Shard.Index, p.Shard.Count = i, 3
		p.Record = NewCellStore()
		_, err := Frontier(p)
		if !errors.Is(err, ErrShardOnly) {
			t.Fatalf("shard %d: got %v, want ErrShardOnly", i, err)
		}
		data, err := p.Record.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		cells, err := UnmarshalCells(data)
		if err != nil {
			t.Fatal(err)
		}
		total += len(cells)
		for k, c := range cells {
			if _, dup := merged[k]; dup {
				t.Fatalf("cell %s computed by two shards", k)
			}
			merged[k] = c
		}
	}
	if want := len(frontierEstimators()) * (1 + len(frontierPolicies())); total != want {
		t.Fatalf("shards produced %d cells, want %d", total, want)
	}
	direct, err := Frontier(frontierParams())
	if err != nil {
		t.Fatal(err)
	}
	full := frontierParams()
	full.Cells = merged
	full.Progress = func(msg string) { t.Fatalf("simulated despite preloaded cells: %s", msg) }
	got, err := Frontier(full)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Render() != got.Render() {
		t.Fatal("merged shard render differs from direct run")
	}
}

// TestFrontierCellCache: resubmitting the frontier through one CellCache
// computes nothing the second time and renders identically — the
// property the serve/cluster result stores rely on.
func TestFrontierCellCache(t *testing.T) {
	cc := &countingCache{}
	first := frontierParams()
	first.Cache = cc
	direct, err := Frontier(first)
	if err != nil {
		t.Fatal(err)
	}
	want := len(frontierEstimators()) * (1 + len(frontierPolicies()))
	if cc.computes != want {
		t.Fatalf("first run computed %d cells, want %d", cc.computes, want)
	}
	second := frontierParams()
	second.Cache = cc
	second.Progress = func(msg string) { t.Fatalf("simulated despite warm cache: %s", msg) }
	cached, err := Frontier(second)
	if err != nil {
		t.Fatal(err)
	}
	if cc.computes != want {
		t.Fatalf("second run computed %d new cells, want 0", cc.computes-want)
	}
	if direct.Render() != cached.Render() {
		t.Fatal("render from cached cells differs from direct simulation")
	}
}

// TestFrontierRender pins the table's row labels so docs and smokes can
// grep for them.
func TestFrontierRender(t *testing.T) {
	r := &FrontierResult{Points: []FrontierPoint{
		{Estimator: "JRS(t=15)", Policy: "gate:1", GatedFrac: 0.2, Reduction: 0.5, SpecSaved: 0.03, IPCLost: 0.04},
	}}
	out := r.Render()
	for _, want := range []string{"frontier", "gate:1", "JRS(t=15)", "ipc-lost", "spec-saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestPolicyChangesCellAddress: two parameter sets differing only in the
// installed base-config policy must never share cell, trace, or unit
// addresses — policies perturb timing.
func TestPolicyChangesCellAddress(t *testing.T) {
	plain := frontierParams()
	policied := frontierParams()
	var err error
	if policied.Pipeline.Policy, err = policy.Parse("gate:2"); err != nil {
		t.Fatal(err)
	}
	sp := runner.Spec{Experiment: "table3", Workload: "compress", Predictor: "mcfarling", Variant: "main"}
	if plain.CellAddress(sp) == policied.CellAddress(sp) {
		t.Error("cell address ignores the installed policy")
	}
	if plain.TraceAddress("compress", GshareSpec()) == policied.TraceAddress("compress", GshareSpec()) {
		t.Error("trace address ignores the installed policy")
	}
	if plain.UnitAddress("table3", plain.Shard) == policied.UnitAddress("table3", policied.Shard) {
		t.Error("unit address ignores the installed policy")
	}
	// And a policied base config must force direct simulation: the
	// unpolicied recording no longer matches the policied timing.
	if policied.replayActive() {
		t.Error("replayActive true with a base-config policy installed")
	}
	if !plain.replayActive() {
		t.Error("replayActive false for the plain config (precondition)")
	}
}
