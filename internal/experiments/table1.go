package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// Table1Row holds one benchmark's characteristics (paper Table 1):
// committed work, branch counts, per-predictor misprediction rates, and
// the committed-vs-all speculation ratio measured under gshare.
type Table1Row struct {
	Name          string
	Committed     uint64  // committed instructions
	CommittedBr   uint64  // committed conditional branches
	BranchDensity float64 // CommittedBr / Committed
	MispGshare    float64
	MispMcF       float64
	MispSAg       float64
	AllInstr      uint64  // committed + wrong-path instructions (gshare)
	AllBr         uint64  // fetched conditional branches (gshare)
	Ratio         float64 // AllInstr / Committed
	IPC           float64 // gshare run
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures program characteristics for the whole suite: one grid
// cell per (workload, predictor); the gshare cell also supplies the
// speculative-execution ratios.
func Table1(p Params) (*Table1Result, error) {
	preds := AllPredictors()
	var specs []runner.Spec
	for _, w := range suite() {
		for _, spec := range preds {
			specs = append(specs, runner.Spec{
				Experiment: "table1", Workload: w.Name, Predictor: spec.Name, Variant: "main",
			})
		}
	}
	cells, err := p.runGrid(specs, func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		w, err := workload.ByName(sp.Workload)
		if err != nil {
			return CellResult{}, err
		}
		spec, err := predictorByName(sp.Predictor)
		if err != nil {
			return CellResult{}, err
		}
		st, err := p.evalEstimators(w, spec)
		if err != nil {
			return CellResult{}, fmt.Errorf("table1 %s: %w", sp.Key(), err)
		}
		return CellResult{Stats: st}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{}
	i := 0
	for _, w := range suite() {
		row := Table1Row{Name: w.Name}
		for _, spec := range preds {
			st := cells[i].Stats
			i++
			switch spec.Name {
			case "gshare":
				row.MispGshare = st.MispredictRate()
				row.Committed = st.Committed
				row.CommittedBr = st.CommittedBr
				row.BranchDensity = float64(st.CommittedBr) / float64(st.Committed)
				row.AllInstr = st.Committed + st.WrongPath
				row.AllBr = st.AllBr
				row.Ratio = st.SpeculationRatio()
				row.IPC = st.IPC()
			case "mcfarling":
				row.MispMcF = st.MispredictRate()
			case "sag":
				row.MispSAg = st.MispredictRate()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Mean returns the arithmetic suite means of the misprediction rates and
// the speculation ratio.
func (r *Table1Result) Mean() Table1Row {
	var m Table1Row
	m.Name = "mean"
	n := float64(len(r.Rows))
	if n == 0 {
		return m
	}
	for _, row := range r.Rows {
		m.Committed += row.Committed
		m.CommittedBr += row.CommittedBr
		m.AllInstr += row.AllInstr
		m.BranchDensity += row.BranchDensity / n
		m.MispGshare += row.MispGshare / n
		m.MispMcF += row.MispMcF / n
		m.MispSAg += row.MispSAg / n
		m.Ratio += row.Ratio / n
		m.IPC += row.IPC / n
	}
	m.Committed /= uint64(len(r.Rows))
	m.CommittedBr /= uint64(len(r.Rows))
	m.AllInstr /= uint64(len(r.Rows))
	return m
}

// Render produces the paper-style text table.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Table 1: program characteristics (committed vs all instructions)"))
	fmt.Fprintf(&b, "%-9s %10s %9s %6s | %7s %7s %7s | %10s %8s %5s\n",
		"app", "committed", "cond.br", "br%", "gshare", "mcf", "sag", "all-inst", "ratio", "ipc")
	rows := append([]Table1Row{}, r.Rows...)
	rows = append(rows, r.Mean())
	for _, row := range rows {
		fmt.Fprintf(&b, "%-9s %10d %9d %5.1f%% | %6.1f%% %6.1f%% %6.1f%% | %10d %8.2f %5.2f\n",
			row.Name, row.Committed, row.CommittedBr, row.BranchDensity*100,
			row.MispGshare*100, row.MispMcF*100, row.MispSAg*100,
			row.AllInstr, row.Ratio, row.IPC)
	}
	return b.String()
}
