package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"specctrl/internal/cache"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/runner"
)

// cellAddressVersion versions the identity layout below. Bump it
// whenever a field is added to (or removed from) the canonical
// identity, so addresses from older layouts can never alias.
//
// v2: pipelineIdentity gained Estimators (the Name() of every
// estimator carried in pipeline.Config.Estimators).
//
// v3: pipelineIdentity gained Policy (the Name() of the speculation-
// control policy installed in pipeline.Config.Policy, "" when none).
//
// v4: the ConsumesCommitted experiments (table2, table2-detail,
// table3, auc, patterns, misest) were redefined as canonical
// trace-driven evaluations over the committed branch stream (see
// internal/replay's arch tier and archgrid.go): their cell results
// changed, so v3 addresses must never serve them — or any other cell,
// since the version is shared — to a v4 build.
const cellAddressVersion = 4

// cacheIdentity is the determinism-relevant subset of cache.Config
// (Name is cosmetic and excluded).
type cacheIdentity struct {
	SizeWords   int `json:"sizeWords"`
	BlockWords  int `json:"blockWords"`
	Assoc       int `json:"assoc"`
	HitLatency  int `json:"hitLatency"`
	MissPenalty int `json:"missPenalty"`
}

func cacheID(c cache.Config) cacheIdentity {
	return cacheIdentity{
		SizeWords:   c.SizeWords,
		BlockWords:  c.BlockWords,
		Assoc:       c.Assoc,
		HitLatency:  c.HitLatency,
		MissPenalty: c.MissPenalty,
	}
}

// pipelineIdentity is the determinism-relevant subset of
// pipeline.Config: every field that changes a simulation's outcome, and
// none of the observability hooks (Tracer/Metrics/Progress), which are
// side channels by contract.
type pipelineIdentity struct {
	FetchWidth             int           `json:"fetchWidth"`
	ResolveDelay           int           `json:"resolveDelay"`
	ExtraMispredictPenalty int           `json:"extraMispredictPenalty"`
	ICache                 cacheIdentity `json:"icache"`
	DCache                 cacheIdentity `json:"dcache"`
	MaxCycles              uint64        `json:"maxCycles"`
	IndirectPrediction     bool          `json:"indirectPrediction"`
	BTBEntries             int           `json:"btbEntries"`
	BTBAssoc               int           `json:"btbAssoc"`
	RASDepth               int           `json:"rasDepth"`

	// Estimators lists the Name() of every estimator configured on the
	// base pipeline config, in order. Cell functions add their own
	// spec-derived estimators on top; those are already identified by
	// Key, so only the config-level set needs hashing here.
	Estimators []string `json:"estimators"`

	// Policy is the Name() of the speculation-control policy installed
	// on the base pipeline config, or "" when fetch runs unpolicied.
	// Policies perturb timing, so two configs differing only here must
	// never share a cell (or trace) address.
	Policy string `json:"policy"`
}

// policyName is the policy's hashable identity: its Name(), or "" when
// no policy is installed.
func policyName(p pipeline.Policy) string {
	if p == nil {
		return ""
	}
	return p.Name()
}

// estimatorNames flattens an estimator set to its report names for
// hashing. Returns a non-nil slice so the JSON encoding is stable
// ([] rather than null) whether or not estimators are configured.
func estimatorNames(ests []conf.Estimator) []string {
	names := make([]string, len(ests))
	for i, e := range ests {
		names[i] = e.Name()
	}
	return names
}

// pipelineID captures the determinism-relevant subset of the base
// pipeline configuration for hashing (shared by CellAddress and
// TraceAddress).
func (p Params) pipelineID() pipelineIdentity {
	return pipelineIdentity{
		FetchWidth:             p.Pipeline.FetchWidth,
		ResolveDelay:           p.Pipeline.ResolveDelay,
		ExtraMispredictPenalty: p.Pipeline.ExtraMispredictPenalty,
		ICache:                 cacheID(p.Pipeline.ICache),
		DCache:                 cacheID(p.Pipeline.DCache),
		MaxCycles:              p.Pipeline.MaxCycles,
		IndirectPrediction:     p.Pipeline.IndirectPrediction,
		BTBEntries:             p.Pipeline.BTBEntries,
		BTBAssoc:               p.Pipeline.BTBAssoc,
		RASDepth:               p.Pipeline.RASDepth,
		Estimators:             estimatorNames(p.Pipeline.Estimators),
		Policy:                 policyName(p.Pipeline.Policy),
	}
}

// cellIdentity is the canonical identity of one grid cell: everything a
// cell's result is a function of, and nothing else. It is hashed — not
// stored — so field names only matter for canonical-encoding stability.
type cellIdentity struct {
	AddressVersion int    `json:"addressVersion"`
	CellsVersion   int    `json:"cellsVersion"`
	Key            string `json:"key"` // experiment/workload/predictor/variant
	BaseSeed       uint64 `json:"baseSeed"`

	MaxCommitted    uint64           `json:"maxCommitted"`
	BuildIters      int              `json:"buildIters"`
	GshareBits      uint             `json:"gshareBits"`
	McFBits         uint             `json:"mcfBits"`
	SAgBHTBits      uint             `json:"sagBHTBits"`
	SAgHistBits     uint             `json:"sagHistBits"`
	StaticThreshold float64          `json:"staticThreshold"`
	Pipeline        pipelineIdentity `json:"pipeline"`
}

// CellAddress returns the content address of one grid cell under these
// parameters: a hex SHA-256 of the canonical JSON encoding of the
// cell's full identity — spec key, resolved base seed, committed-
// instruction budget, predictor geometries, and pipeline configuration.
// Two (Params, Spec) pairs share an address exactly when the cell
// contract guarantees them byte-identical results, so the address is
// safe to use as a forever cache key across processes and machines.
//
// The address deliberately does not include the code version: like
// results_full.txt, cached cells are invalidated by clearing the store
// when simulator behaviour changes (see docs/SERVING.md).
func (p Params) CellAddress(sp runner.Spec) string {
	seed := p.BaseSeed
	if seed == 0 {
		seed = runner.DefaultBaseSeed
	}
	id := cellIdentity{
		AddressVersion:  cellAddressVersion,
		CellsVersion:    CellsVersion,
		Key:             sp.Key(),
		BaseSeed:        seed,
		MaxCommitted:    p.MaxCommitted,
		BuildIters:      p.BuildIters,
		GshareBits:      p.GshareBits,
		McFBits:         p.McFBits,
		SAgBHTBits:      p.SAgBHTBits,
		SAgHistBits:     p.SAgHistBits,
		StaticThreshold: p.StaticThreshold,
		Pipeline:        p.pipelineID(),
	}
	data, err := json.Marshal(id)
	if err != nil {
		// cellIdentity is all scalars; Marshal cannot fail.
		panic("experiments: cell identity encoding: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// traceAddressVersion versions traceIdentity the way cellAddressVersion
// versions cellIdentity.
//
// v2: pipelineIdentity gained Policy.
const traceAddressVersion = 2

// traceIdentity is the canonical identity of one recorded branch-event
// trace: everything the estimator-visible event stream is a function
// of, and nothing else. Compared to cellIdentity it drops the spec key
// (experiment and variant select estimators, which cannot influence the
// stream) and the static estimator's profile threshold — that is
// exactly why one trace serves every estimator configuration of a
// (workload, predictor) pair across all experiments.
type traceIdentity struct {
	AddressVersion int    `json:"addressVersion"`
	Workload       string `json:"workload"`
	Predictor      string `json:"predictor"`
	BaseSeed       uint64 `json:"baseSeed"`

	MaxCommitted uint64           `json:"maxCommitted"`
	BuildIters   int              `json:"buildIters"`
	GshareBits   uint             `json:"gshareBits"`
	McFBits      uint             `json:"mcfBits"`
	SAgBHTBits   uint             `json:"sagBHTBits"`
	SAgHistBits  uint             `json:"sagHistBits"`
	Pipeline     pipelineIdentity `json:"pipeline"`
}

// unitAddressVersion versions unitIdentity the way cellAddressVersion
// versions cellIdentity.
//
// v2: unitIdentity gained SynthN and SynthWorkloads (the sweepspace
// experiment's grid enumeration depends on both).
//
// v3: pipelineIdentity gained Policy.
const unitAddressVersion = 3

// unitIdentity is the canonical identity of one cluster work unit: a
// shard of one experiment's grid under one parameter set. It reuses
// pipelineIdentity and the cell-relevant scalars, plus the shard
// coordinates and — unlike cellIdentity — the replay mode, because
// replay changes which cells a grid enumerates (#record/#replay
// variants), so the same shard under different modes is different work.
type unitIdentity struct {
	AddressVersion int    `json:"addressVersion"`
	Experiment     string `json:"experiment"`
	ShardIndex     int    `json:"shardIndex"`
	ShardCount     int    `json:"shardCount"`
	Replay         string `json:"replay"`
	BaseSeed       uint64 `json:"baseSeed"`

	// SynthN and SynthWorkloads shape the sweepspace grid the way
	// Replay shapes every replay-backed grid: they change which cells
	// the experiment enumerates, so the same shard under different
	// synth parameters is different work. SynthWorkloads is non-nil so
	// the canonical encoding is stable ([] vs null).
	SynthN         int      `json:"synthN"`
	SynthWorkloads []string `json:"synthWorkloads"`

	MaxCommitted    uint64           `json:"maxCommitted"`
	BuildIters      int              `json:"buildIters"`
	GshareBits      uint             `json:"gshareBits"`
	McFBits         uint             `json:"mcfBits"`
	SAgBHTBits      uint             `json:"sagBHTBits"`
	SAgHistBits     uint             `json:"sagHistBits"`
	StaticThreshold float64          `json:"staticThreshold"`
	Pipeline        pipelineIdentity `json:"pipeline"`
}

// UnitAddress returns the content address of one cluster work unit —
// shard sh of the named experiment's grid under these parameters: a
// hex SHA-256 of the canonical JSON encoding of the unit's identity.
// Two (Params, experiment, shard) triples share an address exactly when
// they enumerate the same cells with the same results, so the address
// is a stable dedup and reassignment key for cluster scheduling the
// way CellAddress keys the result cache.
func (p Params) UnitAddress(experiment string, sh runner.Shard) string {
	seed := p.BaseSeed
	if seed == 0 {
		seed = runner.DefaultBaseSeed
	}
	synthWs := p.SynthWorkloads
	if synthWs == nil {
		synthWs = []string{}
	}
	id := unitIdentity{
		AddressVersion:  unitAddressVersion,
		Experiment:      experiment,
		ShardIndex:      sh.Index,
		ShardCount:      sh.Count,
		Replay:          p.Replay,
		BaseSeed:        seed,
		SynthN:          p.SynthN,
		SynthWorkloads:  synthWs,
		MaxCommitted:    p.MaxCommitted,
		BuildIters:      p.BuildIters,
		GshareBits:      p.GshareBits,
		McFBits:         p.McFBits,
		SAgBHTBits:      p.SAgBHTBits,
		SAgHistBits:     p.SAgHistBits,
		StaticThreshold: p.StaticThreshold,
		Pipeline:        p.pipelineID(),
	}
	data, err := json.Marshal(id)
	if err != nil {
		panic("experiments: unit identity encoding: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// archTraceAddressVersion versions archIdentity the way
// cellAddressVersion versions cellIdentity.
const archTraceAddressVersion = 1

// archIdentity is the canonical identity of one workload's committed
// branch-outcome stream. Compared to traceIdentity it drops the
// predictor axis entirely — the stream is recorded under the canonical
// gshare configuration in every mode, so only that one geometry
// (GshareBits) is part of the identity — which is exactly why one arch
// trace serves every (predictor, estimator) combination of a workload.
// The full pipeline identity stays: the stream's length depends on
// fetch timing through the committed-instruction stop condition.
type archIdentity struct {
	AddressVersion int    `json:"addressVersion"`
	Workload       string `json:"workload"`
	BaseSeed       uint64 `json:"baseSeed"`

	MaxCommitted uint64           `json:"maxCommitted"`
	BuildIters   int              `json:"buildIters"`
	GshareBits   uint             `json:"gshareBits"`
	Pipeline     pipelineIdentity `json:"pipeline"`
}

// ArchTraceAddress returns the content address of the committed
// branch-outcome stream a canonical recording run of the workload
// under these parameters would capture: a hex SHA-256 of the canonical
// JSON encoding of the stream's identity. Two (Params, workload) pairs
// share an address exactly when their recordings produce bit-identical
// streams, so the address keys the ArchCache (and the cluster's
// arch-trace tier) the way TraceAddress keys the event-trace cache.
func (p Params) ArchTraceAddress(workload string) string {
	seed := p.BaseSeed
	if seed == 0 {
		seed = runner.DefaultBaseSeed
	}
	id := archIdentity{
		AddressVersion: archTraceAddressVersion,
		Workload:       workload,
		BaseSeed:       seed,
		MaxCommitted:   p.MaxCommitted,
		BuildIters:     p.BuildIters,
		GshareBits:     p.GshareBits,
		Pipeline:       p.pipelineID(),
	}
	data, err := json.Marshal(id)
	if err != nil {
		panic("experiments: arch trace identity encoding: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TraceAddress returns the content address of the branch-event trace a
// (workload, predictor) simulation under these parameters would record:
// a hex SHA-256 of the canonical JSON encoding of the trace's identity.
// Two (Params, workload, predictor) triples share an address exactly
// when their simulations produce bit-identical estimator-visible event
// streams, so the address keys the replay trace cache the same way
// CellAddress keys the result cache.
func (p Params) TraceAddress(workload string, spec PredictorSpec) string {
	seed := p.BaseSeed
	if seed == 0 {
		seed = runner.DefaultBaseSeed
	}
	id := traceIdentity{
		AddressVersion: traceAddressVersion,
		Workload:       workload,
		Predictor:      spec.Name,
		BaseSeed:       seed,
		MaxCommitted:   p.MaxCommitted,
		BuildIters:     p.BuildIters,
		GshareBits:     p.GshareBits,
		McFBits:        p.McFBits,
		SAgBHTBits:     p.SAgBHTBits,
		SAgHistBits:    p.SAgHistBits,
		Pipeline:       p.pipelineID(),
	}
	data, err := json.Marshal(id)
	if err != nil {
		panic("experiments: trace identity encoding: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
