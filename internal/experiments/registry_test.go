package experiments

import (
	"errors"
	"strings"
	"testing"

	"specctrl/internal/runner"
)

func TestOrderCoversRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range order {
		if _, ok := registry[name]; !ok {
			t.Errorf("order entry %q missing from registry", name)
		}
		if seen[name] {
			t.Errorf("order entry %q duplicated", name)
		}
		seen[name] = true
	}
	for name := range registry {
		if !seen[name] {
			t.Errorf("registry entry %q missing from presentation order", name)
		}
	}
}

func TestRegistryEntries(t *testing.T) {
	for name, e := range registry {
		if e.Desc == "" || e.Run == nil || e.Name != name {
			t.Errorf("registry entry %q incomplete: %+v", name, e)
		}
	}
	if len(Experiments()) != len(registry) {
		t.Errorf("Experiments() returns %d entries, registry has %d",
			len(Experiments()), len(registry))
	}
}

// TestRegistryConsumesDrift pins each experiment's consumption class.
// Every entry must declare one, and the committed set — the experiments
// the arch tier may serve without running the pipeline — is enumerated
// here so that reclassifying an experiment (or registering a new one
// without thinking about its class) is a deliberate, reviewed change:
// marking a timing-dependent experiment ConsumesCommitted would
// silently change its semantics to the trace-driven evaluation.
func TestRegistryConsumesDrift(t *testing.T) {
	wantCommitted := map[string]bool{
		"table2":        true,
		"table2-detail": true,
		"table3":        true,
		"auc":           true,
		"patterns":      true,
		"misest":        true,
	}
	for name, e := range registry {
		switch e.Consumes {
		case ConsumesCommitted, ConsumesPipeline:
		default:
			t.Errorf("registry entry %q declares no consumption class (Consumes=%q)", name, e.Consumes)
			continue
		}
		if got, want := e.Consumes == ConsumesCommitted, wantCommitted[name]; got != want {
			t.Errorf("registry entry %q: Consumes=%q, but the pinned committed set says committed=%v",
				name, e.Consumes, want)
		}
	}
	for name := range wantCommitted {
		if _, ok := registry[name]; !ok {
			t.Errorf("pinned committed experiment %q missing from registry", name)
		}
	}
}

func TestLookupAndRunUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	if _, err := Run("no-such-experiment", TestParams()); err == nil {
		t.Error("Run accepted an unknown name")
	}
}

// TestShardOnlyCoverage proves every simulation-backed registry entry
// runs through the grid executor: under an active shard a grid driver
// must return ErrShardOnly instead of rendering. A sparse shard (most
// experiments own zero cells of it) keeps this fast.
func TestShardOnlyCoverage(t *testing.T) {
	p := TestParams()
	p.MaxCommitted = 40_000
	p.Shard = runner.Shard{Index: 63, Count: 64}
	p.Record = NewCellStore()
	for name, e := range registry {
		if name == "fig1" || name == "cost" {
			continue // analytic, no simulation grid
		}
		if _, err := e.Run(p); !errors.Is(err, ErrShardOnly) {
			t.Errorf("%s: got %v, want ErrShardOnly (driver bypasses the grid?)", name, err)
		}
	}
}

func TestAnalyticExperimentRuns(t *testing.T) {
	// fig1 and cost are pure computation: run them through the registry
	// path end-to-end.
	p := TestParams()
	for _, name := range []string{"fig1", "cost"} {
		r, err := Run(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := r.Render()
		if !strings.Contains(out, "\n") || len(out) < 100 {
			t.Errorf("%s render suspiciously small:\n%s", name, out)
		}
	}
}
