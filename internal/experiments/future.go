package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
	"specctrl/internal/profile"
	"specctrl/internal/workload"
)

// JRSMcfRow is one estimator's suite-mean metrics in the §5 future-work
// comparison on the McFarling predictor.
type JRSMcfRow struct {
	Estimator string
	Metrics   metrics.Metrics
}

// JRSMcfResult evaluates the paper's §5 sketch — a JRS variant "designed
// to better exploit the structure of the McFarling two-level branch
// predictor" — against the plain JRS under the McFarling predictor.
type JRSMcfResult struct {
	Rows []JRSMcfRow
}

// JRSMcf runs plain JRS and both two-table variants at two thresholds.
func JRSMcf(p Params) (*JRSMcfResult, error) {
	mk := func() []conf.Estimator {
		base := conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}
		mid := base
		mid.Threshold = 7
		return []conf.Estimator{
			conf.NewJRS(base),
			conf.NewJRSMcFarling(base, conf.BothTables),
			conf.NewJRSMcFarling(base, conf.MetaSelected),
			conf.NewJRS(mid),
			conf.NewJRSMcFarling(mid, conf.BothTables),
			conf.NewJRSMcFarling(mid, conf.MetaSelected),
		}
	}
	names := []string{
		"JRS t=15", "JRSmcf-both t=15", "JRSmcf-meta t=15",
		"JRS t=7", "JRSmcf-both t=7", "JRSmcf-meta t=7",
	}
	perEst := make([][]metrics.Quadrant, len(names))
	stats, err := p.suiteStats("jrsmcf", McFarlingSpec(), "main", len(names),
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) { return mk(), nil })
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range names {
			perEst[i] = append(perEst[i], st.Confidence[i].CommittedQ)
		}
	}
	res := &JRSMcfResult{}
	for i, n := range names {
		res.Rows = append(res.Rows, JRSMcfRow{
			Estimator: n,
			Metrics:   metrics.AggregateNormalized(perEst[i]).Compute(),
		})
	}
	return res, nil
}

// Find returns the named row.
func (r *JRSMcfResult) Find(name string) (JRSMcfRow, bool) {
	for _, row := range r.Rows {
		if row.Estimator == name {
			return row, true
		}
	}
	return JRSMcfRow{}, false
}

// Render prints the comparison.
func (r *JRSMcfResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Future work (§5): McFarling-structured JRS vs plain JRS (McFarling predictor)"))
	fmt.Fprintf(&b, "%-18s %5s %5s %5s %5s\n", "estimator", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		m := row.Metrics
		fmt.Fprintf(&b, "%-18s %s %s %s %s\n",
			row.Estimator, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
	}
	return b.String()
}

// TunedRow is one tuned static estimator's target vs achieved metrics,
// suite means.
type TunedRow struct {
	Goal    string
	Target  float64
	Metrics metrics.Metrics
}

// TunedResult evaluates the §5 tuned static estimator: choose the
// low-confidence site set from a profile to hit a SPEC or PVN target,
// then measure what it actually achieves.
type TunedResult struct {
	Rows []TunedRow
}

// Tuned profiles each workload once under gshare, builds tuned
// estimators for a grid of SPEC and PVN targets from the same profile,
// and evaluates them all in a single run per workload.
func Tuned(p Params) (*TunedResult, error) {
	type spec struct {
		goal   profile.TuneGoal
		name   string
		target float64
	}
	grid := []spec{
		{profile.GoalSPEC, "SPEC", 0.50},
		{profile.GoalSPEC, "SPEC", 0.70},
		{profile.GoalSPEC, "SPEC", 0.90},
		{profile.GoalPVN, "PVN", 0.20},
		{profile.GoalPVN, "PVN", 0.30},
		{profile.GoalPVN, "PVN", 0.40},
	}
	perCfg := make([][]metrics.Quadrant, len(grid))
	stats, err := p.suiteStats("tuned", GshareSpec(), "main", len(grid),
		func(p Params, w workload.Workload) ([]conf.Estimator, error) {
			// Profile pass, inside the cell: the site stats never leave it.
			cfg := p.Pipeline
			cfg.MaxCommitted = p.MaxCommitted
			cfg.CollectSiteStats = true
			p.progress("profile %-9s for tuning", w.Name)
			train, err := pipeline.New(cfg, buildProgram(w, p.BuildIters), GshareSpec().New(p))
			if err != nil {
				return nil, fmt.Errorf("tuned profile %s: %w", w.Name, err)
			}
			tst, err := train.Run()
			if err != nil {
				return nil, fmt.Errorf("tuned profile %s: %w", w.Name, err)
			}
			// Build one estimator per grid point and evaluate together.
			ests := make([]conf.Estimator, len(grid))
			for i, g := range grid {
				est, err := profile.Tune(tst.Sites, g.goal, g.target)
				if err != nil {
					return nil, fmt.Errorf("tuned %s %s %.2f: %w", w.Name, g.name, g.target, err)
				}
				ests[i] = est
			}
			return ests, nil
		})
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range grid {
			perCfg[i] = append(perCfg[i], st.Confidence[i].CommittedQ)
		}
	}
	res := &TunedResult{}
	for i, g := range grid {
		res.Rows = append(res.Rows, TunedRow{
			Goal:    g.name,
			Target:  g.target,
			Metrics: metrics.AggregateNormalized(perCfg[i]).Compute(),
		})
	}
	return res, nil
}

// Render prints target vs achieved.
func (r *TunedResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Future work (§5): tuned static confidence (gshare, self-profiled)"))
	fmt.Fprintf(&b, "%-6s %7s | %5s %5s %5s %5s\n", "goal", "target", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		m := row.Metrics
		fmt.Fprintf(&b, "%-6s %6.0f%% | %s %s %s %s\n",
			row.Goal, row.Target*100, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
	}
	return b.String()
}
