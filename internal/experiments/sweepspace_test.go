package experiments

import (
	"testing"

	"specctrl/internal/replay"
	"specctrl/internal/synth"
)

// sweepParams configures a sweepspace run small enough for tests while
// keeping the acceptance-scale profile count.
func sweepParams(n int) Params {
	p := smallParams()
	p.MaxCommitted = 30_000
	p.SynthN = n
	return p
}

// TestSweepSpaceDeterminism covers the acceptance contract: a
// 32-profile sweep renders byte-identically at Jobs 1 and Jobs 8, and
// under replay-backed vs direct evaluation.
func TestSweepSpaceDeterminism(t *testing.T) {
	serial := sweepParams(32)
	serial.Jobs = 1
	serial.TraceCache = replay.NewCache(0, nil)
	want, err := SweepSpace(serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 32 {
		t.Fatalf("sweep has %d rows, want 32", len(want.Rows))
	}

	parallel := sweepParams(32)
	parallel.Jobs = 8
	parallel.TraceCache = replay.NewCache(0, nil)
	got, err := SweepSpace(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Errorf("render differs between Jobs 1 and Jobs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			want.Render(), got.Render())
	}

	direct := sweepParams(32)
	direct.Jobs = 8
	direct.Replay = ReplayOff
	off, err := SweepSpace(direct)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != off.Render() {
		t.Errorf("render differs between replay and direct evaluation:\n--- replay ---\n%s\n--- direct ---\n%s",
			want.Render(), off.Render())
	}
}

// TestSweepSpaceExtraWorkloads: explicitly registered synth workloads
// join the sweep after the generated set, once, with their vectors
// shown when they have one.
func TestSweepSpaceExtraWorkloads(t *testing.T) {
	prof := synth.Profile{Seed: 0x5eed, Sites: 24, Density: 0.10, Taken: 0.7, Spread: 0.2}
	name, err := synth.Register(prof)
	if err != nil {
		t.Fatal(err)
	}
	tr := &synth.Trace{SitePCs: []int64{8, 16}, Events: []uint32{1, 2, 3, 0}}
	data, err := synth.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	traceName, err := synth.FromTrace(data)
	if err != nil {
		t.Fatal(err)
	}

	p := sweepParams(2)
	p.Jobs = 4
	p.SynthWorkloads = []string{name, traceName, name} // duplicate collapses
	res, err := SweepSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("sweep has %d rows, want 2 generated + 2 extras", len(res.Rows))
	}
	byName := map[string]SweepSpaceRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if r, ok := byName[name]; !ok || r.Profile == nil || *r.Profile != prof {
		t.Errorf("profile-backed extra %s: row %+v", name, byName[name])
	}
	if r, ok := byName[traceName]; !ok || r.Profile != nil {
		t.Errorf("trace-backed extra %s should have no vector: row %+v", traceName, byName[traceName])
	}
	if _, err := SweepSpace(sweepParams(2)); err != nil {
		t.Fatalf("re-running without extras: %v", err)
	}

	bad := sweepParams(2)
	bad.SynthWorkloads = []string{"synth:not-registered"}
	if _, err := SweepSpace(bad); err == nil {
		t.Fatal("SweepSpace accepted an unregistered extra workload")
	}
}

// BenchmarkSweepSpace measures the whole sweepspace experiment at a
// reduced profile count — generation, registration, record, and panel
// replay per workload.
func BenchmarkSweepSpace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := sweepParams(8)
		p.Jobs = 4
		p.TraceCache = replay.NewCache(0, nil)
		if _, err := SweepSpace(p); err != nil {
			b.Fatal(err)
		}
	}
}
