// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment has a driver returning structured results
// plus a Render method producing a paper-style text table; cmd/simctrl
// exposes them on the command line (with -jobs N parallel execution and
// -shard i/n cross-machine splitting) and bench_test.go regenerates
// them as Go benchmarks.
//
// # Grid execution model
//
// Every simulation-backed experiment is a grid of independent cells —
// one per workload × predictor × estimator-config combination. A driver
// has three parts:
//
//  1. a spec list ([]runner.Spec) enumerating the cells in the fixed
//     order the old serial loops used;
//  2. a CellFunc that simulates exactly one cell, constructing all of
//     its own state (pipeline, predictor, estimators, workload program)
//     and taking any randomness from spec.Seed;
//  3. an assemble step that folds the returned []CellResult — which
//     runGrid keeps positionally aligned with the spec list — into the
//     experiment's result struct.
//
// Because cells share no mutable state and assembly iterates in spec
// order, rendered output is byte-identical at Jobs: 1 and Jobs: N (see
// the runner package for the full contract, and docs/REGENERATING.md
// for the regeneration workflow).
//
// # Adding a new experiment
//
// Write the driver as specs + cell + assemble (use suiteStats for the
// one-run-per-benchmark shape), give each cell a stable spec key
// ("experiment/workload/predictor/variant"), register the driver in
// cmd/simctrl, and add a benchmark in bench_test.go. Never fold
// per-cell results into shared accumulators inside the cell — return
// them in CellResult (Stats, or Extra for derived scalars) and
// accumulate during assembly.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table1   program characteristics and speculation ratios
//	Table2   four estimators × three predictors, suite means
//	Table3   Both-Strong vs Either-Strong on McFarling, per benchmark
//	Table4   misprediction-distance estimator vs the others
//	Fig1     analytic PVP/PVN parameter curves
//	Fig3     JRS base vs enhanced threshold sweep (gshare)
//	Fig4/5   JRS design space (entries × threshold) on gshare/McFarling
//	Fig6..9  precise/perceived misprediction distance curves
//	Misest   confidence mis-estimation clustering (§4.1)
//	Boost    consecutive-low-confidence boosting (§4.2)
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/profile"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// Params scales and configures every experiment.
type Params struct {
	// MaxCommitted caps committed instructions per simulation run.
	MaxCommitted uint64
	// BuildIters is the workload outer-iteration count; it must be
	// large enough that no program halts before MaxCommitted.
	BuildIters int
	// Predictor geometries (paper defaults in DefaultParams).
	GshareBits  uint
	McFBits     uint
	SAgBHTBits  uint
	SAgHistBits uint
	// StaticThreshold is the static estimator's profile threshold.
	StaticThreshold float64
	// Pipeline is the simulator configuration.
	Pipeline pipeline.Config
	// Progress, when non-nil, receives one line per simulation run.
	Progress func(msg string)
	// Obs, when non-nil, receives live metrics from every simulation
	// run, labelled {workload, predictor} (and estimator for the
	// confidence gauges), plus a per-run IPC histogram.
	Obs *obs.Registry
	// Run, when non-nil, is updated with the current run's identity
	// and live counters for heartbeat printing.
	Run *obs.Progress

	// Ctx, when non-nil, cancels in-flight experiment grids at the
	// next cell boundary (completed cells keep their results).
	Ctx context.Context
	// Jobs is the grid worker-pool width; values <= 1 run serially.
	// Output is byte-identical for every value of Jobs.
	Jobs int
	// BaseSeed roots each cell's derived RNG stream (see
	// runner.DeriveSeed); zero selects runner.DefaultBaseSeed, which
	// all published results use.
	BaseSeed uint64
	// Shard restricts grid execution to every Count-th cell for
	// cross-machine sweeps; drivers then return ErrShardOnly after
	// recording their cells into Record.
	Shard runner.Shard
	// Cells, when non-nil, supplies precomputed cell results by spec
	// key (the merge path for sharded sweeps): matching cells are
	// reused instead of simulated.
	Cells map[string]CellResult
	// Record, when non-nil, receives every computed or reused cell
	// result, for dumping with -cells-out.
	Record *CellStore
	// Cache, when non-nil, memoizes cell results by content address
	// (CellAddress): cells found in the cache are served instead of
	// simulated, and computed cells are stored through it. Cells
	// preloaded via Cells take precedence. internal/serve supplies the
	// on-disk singleflight implementation.
	Cache CellCache

	// Replay selects which trace tiers back experiment evaluation.
	// ReplayArch (also "" or the legacy ReplayAuto) enables both: the
	// ConsumesCommitted experiments draw each workload's committed
	// branch-outcome stream from the arch cache (one recording per
	// workload), and estimator sweeps replay each (workload, predictor,
	// pipeline) event-stream recording. ReplayEvents disables only the
	// arch cache: ConsumesCommitted experiments derive their stream
	// from the event-tier trace instead. ReplayOff disables all trace
	// caching — direct simulation per cell (the escape hatch the
	// differential smoke in scripts/check.sh uses). Rendered output is
	// byte-identical in every mode; only wall-clock changes. Grid cell
	// keys of the event-replay sweeps differ between modes, so sharded
	// sweeps must use one mode consistently across shard and merge
	// machines (docs/REGENERATING.md).
	Replay string
	// TraceCache holds recorded branch-event traces for replay; nil
	// selects a process-wide shared cache with replay.DefaultCacheBytes
	// of capacity and no metrics. Long-running servers pass their own
	// cache to bound memory and publish hit/eviction counters.
	TraceCache *replay.Cache
	// ArchCache holds recorded committed branch-outcome streams (the
	// upstream trace tier, keyed by ArchTraceAddress); nil selects a
	// process-wide shared cache with replay.DefaultCacheBytes of
	// capacity and no metrics, exactly like TraceCache.
	ArchCache *replay.ArchCache

	// SynthN is how many latin-hypercube profiles the sweepspace
	// experiment generates (zero selects DefaultSynthN). Like BaseSeed
	// it is part of a cluster unit's identity: it changes which cells a
	// sweepspace grid enumerates.
	SynthN int
	// SynthWorkloads names extra dynamically registered workloads
	// (synth profiles from -synth-profile, ingested traces from
	// -ingest-trace) the sweepspace experiment appends to its generated
	// set. Names must already be registered in internal/workload when
	// the experiment runs. Also part of a cluster unit's identity.
	SynthWorkloads []string

	// Tracer, when non-nil, records spans for every grid cell (queue
	// wait, run, record/replay/cache phases) and the grid's assembly.
	// Nil disables tracing at the cost of one nil-check per cell.
	Tracer *span.Tracer
	// SpanParent parents this run's spans (e.g. simctrl's per-
	// experiment root, or the serve daemon's per-job span joined to the
	// client's trace). When invalid, traced grids open their own root.
	SpanParent span.Context
}

// Replay mode values for Params.Replay and the shared -replay flag.
const (
	// ReplayArch enables both trace tiers (the default).
	ReplayArch = "arch"
	// ReplayEvents enables only the event-stream tier.
	ReplayEvents = "events"
	// ReplayOff disables all trace caching.
	ReplayOff = "off"
	// ReplayAuto is the legacy spelling of ReplayArch, kept so old
	// command lines and cluster configs keep working; cliflags
	// canonicalizes it to ReplayArch at parse time.
	ReplayAuto = "auto"
)

// DefaultParams returns the paper's configuration at a laptop-scale run
// length (raise MaxCommitted for tighter confidence intervals).
func DefaultParams() Params {
	cfg := pipeline.DefaultConfig()
	cfg.MaxCycles = 4_000_000_000
	return Params{
		MaxCommitted:    2_000_000,
		BuildIters:      1 << 30,
		GshareBits:      12, // 4096-entry gshare
		McFBits:         12,
		SAgBHTBits:      11, // 2048 histories
		SAgHistBits:     13, // 8192 counters
		StaticThreshold: 0.90,
		Pipeline:        cfg,
	}
}

// TestParams returns a reduced configuration for unit tests.
func TestParams() Params {
	p := DefaultParams()
	p.MaxCommitted = 120_000
	return p
}

func (p Params) progress(format string, args ...interface{}) {
	if p.Progress != nil {
		p.Progress(fmt.Sprintf(format, args...))
	}
}

// PredictorSpec names a predictor configuration and builds fresh
// instances of it (every run needs untrained tables).
type PredictorSpec struct {
	Name string
	New  func(p Params) bpred.Predictor
	// HistBits is the history length the pattern estimator should
	// classify for this predictor.
	HistBits func(p Params) uint
}

// GshareSpec is the paper's speculative gshare configuration.
func GshareSpec() PredictorSpec {
	return PredictorSpec{
		Name:     "gshare",
		New:      func(p Params) bpred.Predictor { return bpred.NewGshare(p.GshareBits) },
		HistBits: func(p Params) uint { return p.GshareBits },
	}
}

// McFarlingSpec is the paper's speculative McFarling configuration.
func McFarlingSpec() PredictorSpec {
	return PredictorSpec{
		Name:     "mcfarling",
		New:      func(p Params) bpred.Predictor { return bpred.NewMcFarling(p.McFBits) },
		HistBits: func(p Params) uint { return p.McFBits },
	}
}

// SAgSpec is the paper's non-speculative SAg configuration.
func SAgSpec() PredictorSpec {
	return PredictorSpec{
		Name:     "sag",
		New:      func(p Params) bpred.Predictor { return bpred.NewSAg(p.SAgBHTBits, p.SAgHistBits) },
		HistBits: func(p Params) uint { return p.SAgHistBits },
	}
}

// AllPredictors returns the three specs in the paper's column order.
func AllPredictors() []PredictorSpec {
	return []PredictorSpec{GshareSpec(), McFarlingSpec(), SAgSpec()}
}

// SatCntFor returns the saturating-counters estimator variant matching
// the predictor (§3.3.1: McFarling uses the two-component variant).
func SatCntFor(spec PredictorSpec, variant conf.McFarlingVariant) conf.Estimator {
	if spec.Name == "mcfarling" {
		return conf.SatCountersMcFarling{Variant: variant}
	}
	return conf.SatCounters{}
}

// ipcBounds buckets per-run IPC observations for the suite histogram.
var ipcBounds = []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}

// progCache memoizes Workload.Build results across grid cells. Cells
// are isolated by contract, but an isa.Program is immutable once built
// (the simulator copies the data image into its own memory and only
// reads Code), so every cell of the same workload can share one build.
// Build is deterministic per (name, iters), making a cache hit
// indistinguishable from a rebuild; profiles showed the per-cell
// builder cost at ~5% of a full grid run.
var progCache sync.Map // progKey → *isa.Program

type progKey struct {
	name  string
	iters int
}

// buildProgram returns w.Build(iters), memoized per workload name and
// iteration count. Seeded alternative-input builds (BuildSeeded) are
// not cached; only xinput uses them, once per grid.
func buildProgram(w workload.Workload, iters int) *isa.Program {
	key := progKey{w.Name, iters}
	if p, ok := progCache.Load(key); ok {
		return p.(*isa.Program)
	}
	p, _ := progCache.LoadOrStore(key, w.Build(iters))
	return p.(*isa.Program)
}

// runOne simulates one workload on one predictor with the given
// estimators and returns the statistics. When Params carries an obs
// registry or progress view, the run publishes live metrics under
// {workload, predictor} labels.
func (p Params) runOne(w workload.Workload, spec PredictorSpec, record bool, ests ...conf.Estimator) (*pipeline.Stats, error) {
	var rs *span.Span
	if p.Tracer != nil {
		rs = p.Tracer.Child(p.SpanParent, "simulate",
			span.Str("workload", w.Name), span.Str("predictor", spec.Name),
			span.Int("estimators", int64(len(ests))))
		defer rs.End()
	}
	cfg := p.Pipeline
	cfg.MaxCommitted = p.MaxCommitted
	cfg.RecordEvents = record
	if p.Obs != nil {
		cfg.Metrics = p.Obs
		cfg.MetricsLabels = obs.Labels{"workload": w.Name, "predictor": spec.Name}
	}
	if p.Run != nil {
		cfg.Progress = p.Run
		p.Run.StartRun(w.Name+"/"+spec.Name, p.MaxCommitted)
	}
	// Per-cell estimators come first so Stats.Confidence indices match
	// the ests argument; estimators configured on Params.Pipeline (hashed
	// into CellAddress) ride along at the tail.
	if base := p.Pipeline.Estimators; len(base) > 0 {
		combined := make([]conf.Estimator, 0, len(ests)+len(base))
		cfg.Estimators = append(append(combined, ests...), base...)
	} else {
		cfg.Estimators = ests
	}
	sim, err := pipeline.New(cfg, buildProgram(w, p.BuildIters), spec.New(p))
	if err != nil {
		return nil, fmt.Errorf("run %s/%s: %w", w.Name, spec.Name, err)
	}
	p.progress("run %-9s on %-9s (%d estimators)", w.Name, spec.Name, len(ests))
	st, err := sim.Run()
	if err == nil {
		if rs != nil {
			rs.SetAttrs(span.Int("cycles", int64(st.Cycles)))
		}
		if p.Obs != nil {
			p.Obs.Histogram("specctrl_run_ipc", obs.Labels{"predictor": spec.Name}, ipcBounds).
				Observe(st.IPC())
			p.Obs.Counter("specctrl_runs_total", nil).Inc()
		}
	}
	return st, err
}

// staticFor runs the profiling pass and builds the static estimator for
// one (workload, predictor) pair.
func (p Params) staticFor(w workload.Workload, spec PredictorSpec) (conf.Static, error) {
	cfg := p.Pipeline
	cfg.MaxCommitted = p.MaxCommitted
	p.progress("profile %-9s on %-9s", w.Name, spec.Name)
	return profile.Collect(cfg, buildProgram(w, p.BuildIters), spec.New(p),
		profile.Options{Threshold: p.StaticThreshold})
}

// suite returns the benchmark suite (indirection point for tests).
func suite() []workload.Workload { return workload.Suite() }

// pct formats a ratio as a percentage column.
func pct(v float64) string { return fmt.Sprintf("%3.0f%%", v*100) }

// pct1 formats a ratio as a percentage with one decimal.
func pct1(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

// header renders an underlined table title.
func header(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
