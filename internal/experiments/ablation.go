package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/gating"
	"specctrl/internal/isa"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// --- JRS counter width ablation ---------------------------------------

// WidthPoint is one (counter width, threshold) JRS configuration's suite
// metrics.
type WidthPoint struct {
	Bits      uint
	Threshold int
	Metrics   metrics.Metrics
}

// AblationWidthResult sweeps the JRS miss-distance-counter width. The
// paper fixes 4-bit counters "as suggested in [7]"; this ablation shows
// what that choice buys: wider counters reach higher SPEC/PVP at their
// top thresholds, at linear storage cost.
type AblationWidthResult struct {
	Points []WidthPoint
}

// AblationWidth measures JRS with 2..6-bit counters at each width's
// saturation threshold (the paper's "threshold 15 of 4 bits" analogue)
// and at half saturation, under gshare.
func AblationWidth(p Params) (*AblationWidthResult, error) {
	var configs []conf.JRSConfig
	var meta []WidthPoint
	for _, bits := range []uint{2, 3, 4, 5, 6} {
		full := 1<<bits - 1
		for _, thr := range []int{full/2 + 1, full} {
			configs = append(configs, conf.JRSConfig{
				Entries: 4096, Bits: bits, Threshold: thr, Enhanced: true,
			})
			meta = append(meta, WidthPoint{Bits: bits, Threshold: thr})
		}
	}
	pts, err := jrsSweep(p, "abl-width", GshareSpec(), configs)
	if err != nil {
		return nil, err
	}
	res := &AblationWidthResult{}
	for i, pt := range pts {
		meta[i].Metrics = pt.Metrics
		res.Points = append(res.Points, meta[i])
	}
	return res, nil
}

// Render prints the width ablation.
func (r *AblationWidthResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Ablation: JRS counter width (gshare, 4096 entries, enhanced)"))
	fmt.Fprintf(&b, "%4s %4s | %5s %5s %5s %5s | %9s\n",
		"bits", "thr", "sens", "spec", "pvp", "pvn", "storage")
	for _, pt := range r.Points {
		m := pt.Metrics
		fmt.Fprintf(&b, "%4d %4d | %s %s %s %s | %6d b\n",
			pt.Bits, pt.Threshold, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN),
			4096*int(pt.Bits))
	}
	return b.String()
}

// --- speculative vs non-speculative history ablation -------------------

// SpecHistoryRow compares one benchmark under the two gshare history
// disciplines.
type SpecHistoryRow struct {
	Name        string
	SpecMisp    float64 // speculative update + squash repair
	NonSpecMisp float64 // update at resolution only
	SpecIPC     float64
	NonSpecIPC  float64
}

// AblationSpecHistoryResult quantifies the paper's §3.1 remark that
// non-speculative history update "will slightly increase the branch
// misprediction rate".
type AblationSpecHistoryResult struct {
	Rows []SpecHistoryRow
}

// AblationSpecHistory runs the suite under both gshare variants, one
// grid cell per (workload, history discipline).
func AblationSpecHistory(p Params) (*AblationSpecHistoryResult, error) {
	nonspec := PredictorSpec{
		Name:     "gshare-nonspec",
		New:      func(p Params) bpred.Predictor { return bpred.NewGshareNonSpec(p.GshareBits) },
		HistBits: func(p Params) uint { return p.GshareBits },
	}
	var gridSpecs []runner.Spec
	for _, w := range suite() {
		for _, pred := range []PredictorSpec{GshareSpec(), nonspec} {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "abl-spechist", Workload: w.Name, Predictor: pred.Name, Variant: "main",
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		w, err := workload.ByName(sp.Workload)
		if err != nil {
			return CellResult{}, err
		}
		pred := GshareSpec()
		if sp.Predictor == nonspec.Name {
			pred = nonspec
		}
		st, err := p.runOne(w, pred, false)
		if err != nil {
			return CellResult{}, fmt.Errorf("ablation %s: %w", sp.Key(), err)
		}
		return CellResult{Stats: st}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationSpecHistoryResult{}
	i := 0
	for _, w := range suite() {
		row := SpecHistoryRow{Name: w.Name}
		st := cells[i].Stats
		row.SpecMisp, row.SpecIPC = st.MispredictRate(), st.IPC()
		st = cells[i+1].Stats
		row.NonSpecMisp, row.NonSpecIPC = st.MispredictRate(), st.IPC()
		i += 2
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MeanDelta returns the suite-mean misprediction-rate increase of the
// non-speculative discipline.
func (r *AblationSpecHistoryResult) MeanDelta() float64 {
	var d float64
	for _, row := range r.Rows {
		d += row.NonSpecMisp - row.SpecMisp
	}
	return d / float64(len(r.Rows))
}

// Render prints the comparison.
func (r *AblationSpecHistoryResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Ablation: speculative vs non-speculative gshare history update"))
	fmt.Fprintf(&b, "%-9s | %10s %10s | %7s %7s\n", "app", "spec-misp", "nonspec", "ipc", "ipc-ns")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s | %9.1f%% %9.1f%% | %7.2f %7.2f\n",
			row.Name, row.SpecMisp*100, row.NonSpecMisp*100, row.SpecIPC, row.NonSpecIPC)
	}
	fmt.Fprintf(&b, "mean misprediction increase: %+.2f points\n", r.MeanDelta()*100)
	return b.String()
}

// --- gating operating curve --------------------------------------------

// GatingPoint is one (estimator, threshold) gating outcome, suite means.
type GatingPoint struct {
	Estimator string
	Threshold int
	Reduction float64 // wrong-path instructions removed
	Slowdown  float64
}

// AblationGatingResult maps the speculation-control design space the
// paper motivates: which estimator, and how aggressively to gate.
type AblationGatingResult struct {
	Points []GatingPoint
}

// AblationGating sweeps gating thresholds 1..3 with three estimator
// choices over the suite, using gshare.
func AblationGating(p Params) (*AblationGatingResult, error) {
	ests := []struct {
		name string
		mk   func() conf.Estimator
	}{
		{"JRS(t=15)", func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }},
		{"SatCnt", func() conf.Estimator { return conf.SatCounters{} }},
		{"Dist(>3)", func() conf.Estimator { return conf.NewDistance(3) }},
	}
	// One cell per (estimator, threshold); each cell rebuilds its own
	// program set (builders are deterministic, so every cell sees
	// identical programs).
	var gridSpecs []runner.Spec
	for _, e := range ests {
		for thr := 1; thr <= 3; thr++ {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "abl-gating", Workload: "suite", Predictor: "gshare",
				Variant: fmt.Sprintf("%s-thr%d", e.name, thr),
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		var est struct {
			name string
			mk   func() conf.Estimator
		}
		var thr int
		for _, e := range ests {
			for t := 1; t <= 3; t++ {
				if sp.Variant == fmt.Sprintf("%s-thr%d", e.name, t) {
					est, thr = e, t
				}
			}
		}
		if thr == 0 {
			return CellResult{}, fmt.Errorf("ablation gating: unknown variant %q", sp.Variant)
		}
		cfg := p.Pipeline
		cfg.MaxCommitted = p.MaxCommitted
		newPred := func() bpred.Predictor { return bpred.NewGshare(p.GshareBits) }
		progs := map[string]*isa.Program{}
		var order []string
		for _, w := range suite() {
			progs[w.Name] = buildProgram(w, p.BuildIters)
			order = append(order, w.Name)
		}
		p.progress("gating %s threshold %d", est.name, thr)
		sr, err := gating.EvaluateSuite(
			gating.Config{Threshold: thr, Pipeline: cfg},
			progs, policy.Factories{Predictor: newPred, Estimator: est.mk}, order)
		if err != nil {
			return CellResult{}, fmt.Errorf("ablation gating %s/%d: %w", est.name, thr, err)
		}
		var red, slow float64
		for _, row := range sr.Rows {
			red += row.ExtraWorkReduction
			slow += row.Slowdown
		}
		n := float64(len(sr.Rows))
		return CellResult{Extra: map[string]float64{
			"reduction": red / n,
			"slowdown":  slow / n,
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationGatingResult{}
	i := 0
	for _, e := range ests {
		for thr := 1; thr <= 3; thr++ {
			res.Points = append(res.Points, GatingPoint{
				Estimator: e.name, Threshold: thr,
				Reduction: cells[i].Extra["reduction"], Slowdown: cells[i].Extra["slowdown"],
			})
			i++
		}
	}
	return res, nil
}

// Render prints the gating design space.
func (r *AblationGatingResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Ablation: pipeline gating design space (gshare, suite means)"))
	fmt.Fprintf(&b, "%-10s %4s %10s %9s\n", "estimator", "thr", "reduction", "slowdown")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10s %4d %9.1f%% %8.2f%%\n",
			pt.Estimator, pt.Threshold, pt.Reduction*100, pt.Slowdown*100)
	}
	return b.String()
}

// --- indirect-prediction ablation ---------------------------------------

// IndirectRow compares one benchmark with and without the BTB/RAS front
// end.
type IndirectRow struct {
	Name       string
	BaseRatio  float64 // speculation ratio, perfect targets
	BTBRatio   float64 // with target prediction
	Returns    uint64
	IndirectBr uint64
	TargetMisp uint64
}

// AblationIndirectResult measures how much wrong-path work indirect
// target mispredictions add on top of direction mispredictions.
type AblationIndirectResult struct {
	Rows []IndirectRow
}

// AblationIndirect runs the suite with target prediction off and on,
// one grid cell per (workload, front-end variant).
func AblationIndirect(p Params) (*AblationIndirectResult, error) {
	var gridSpecs []runner.Spec
	for _, w := range suite() {
		for _, variant := range []string{"base", "btb"} {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "abl-indirect", Workload: w.Name, Predictor: "gshare", Variant: variant,
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		w, err := workload.ByName(sp.Workload)
		if err != nil {
			return CellResult{}, err
		}
		if sp.Variant == "base" {
			st, err := p.runOne(w, GshareSpec(), false)
			if err != nil {
				return CellResult{}, fmt.Errorf("ablation indirect base %s: %w", w.Name, err)
			}
			return CellResult{Stats: st}, nil
		}
		cfg := p.Pipeline
		cfg.MaxCommitted = p.MaxCommitted
		cfg.IndirectPrediction = true
		sim, err := pipeline.New(cfg, buildProgram(w, p.BuildIters), bpred.NewGshare(p.GshareBits))
		if err != nil {
			return CellResult{}, fmt.Errorf("ablation indirect btb %s: %w", w.Name, err)
		}
		p.progress("run %-9s with BTB/RAS", w.Name)
		st, err := sim.Run()
		if err != nil {
			return CellResult{}, fmt.Errorf("ablation indirect btb %s: %w", w.Name, err)
		}
		return CellResult{Stats: st}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationIndirectResult{}
	i := 0
	for _, w := range suite() {
		row := IndirectRow{Name: w.Name}
		row.BaseRatio = cells[i].Stats.SpeculationRatio()
		st := cells[i+1].Stats
		row.BTBRatio = st.SpeculationRatio()
		row.Returns = st.Returns
		row.IndirectBr = st.IndirectBr
		row.TargetMisp = st.TargetMisp
		i += 2
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the indirect ablation.
func (r *AblationIndirectResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Ablation: perfect vs predicted indirect targets (gshare)"))
	fmt.Fprintf(&b, "%-9s %10s %10s %9s %9s %9s\n",
		"app", "ratio", "ratio+btb", "returns", "indirect", "tgt-misp")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %10.3f %10.3f %9d %9d %9d\n",
			row.Name, row.BaseRatio, row.BTBRatio, row.Returns, row.IndirectBr, row.TargetMisp)
	}
	return b.String()
}

// --- estimator hardware cost -------------------------------------------

// CostRow is one estimator's implementation cost, the axis the paper
// weighs every design against (§3.1: "the JRS estimator is significantly
// more expensive to implement than either the saturating counters, the
// history pattern or the profile method").
type CostRow struct {
	Estimator string
	// StorageBits is dedicated estimator state (tables, counters).
	StorageBits int
	// Notes describes non-storage costs (ports, profile pass, ISA hint
	// bits).
	Notes string
}

// CostResult is the estimator cost inventory.
type CostResult struct {
	Rows []CostRow
}

// Cost tabulates the hardware cost of the paper's estimator zoo at the
// paper's configurations.
func Cost(p Params) *CostResult {
	return &CostResult{Rows: []CostRow{
		{"JRS 4096x4", 4096 * 4, "extra table + second read port on mispredict reset"},
		{"JRS 1024x4", 1024 * 4, "smaller table costs a few PVN points (Fig 4)"},
		{"SatCnt", 0, "reuses the predictor's counters; combinational only"},
		{"SatCnt both/either", 0, "two component counters already read by McFarling"},
		{"HistPattern", 0, "combinational pattern match on the history register"},
		{"Static >90%", 0, "1 hint bit per branch instruction + profiling run"},
		{"Distance >n", 8, "one global counter + comparator"},
		{"Boost k", 2, "run-length counter on top of the inner estimator"},
	}}
}

// Render prints the cost table.
func (r *CostResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Estimator implementation cost"))
	fmt.Fprintf(&b, "%-20s %12s  %s\n", "estimator", "storage", "notes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %10d b  %s\n", row.Estimator, row.StorageBits, row.Notes)
	}
	return b.String()
}
