package experiments

import (
	"testing"

	"specctrl/internal/conf"
	"specctrl/internal/runner"
)

func addrSpec() runner.Spec {
	return runner.Spec{Experiment: "table3", Workload: "compress", Predictor: "mcfarling", Variant: "main"}
}

func TestCellAddressStable(t *testing.T) {
	a1 := DefaultParams().CellAddress(addrSpec())
	a2 := DefaultParams().CellAddress(addrSpec())
	if a1 != a2 {
		t.Fatalf("same params produced different addresses: %s vs %s", a1, a2)
	}
	if len(a1) != 64 {
		t.Fatalf("address %q is not a hex SHA-256", a1)
	}
}

// TestCellAddressZeroSeedCanonical: BaseSeed 0 means "the default", so
// it must address identically to an explicit DefaultBaseSeed — the
// cache would otherwise split into two entries for one result.
func TestCellAddressZeroSeedCanonical(t *testing.T) {
	zero := DefaultParams()
	explicit := DefaultParams()
	explicit.BaseSeed = runner.DefaultBaseSeed
	if zero.CellAddress(addrSpec()) != explicit.CellAddress(addrSpec()) {
		t.Error("BaseSeed 0 and explicit DefaultBaseSeed address differently")
	}
}

// TestCellAddressSensitivity perturbs every determinism-relevant input
// one at a time: each must move the address, or two different
// simulations would collide in the cache and serve wrong results.
func TestCellAddressSensitivity(t *testing.T) {
	base := DefaultParams().CellAddress(addrSpec())
	seen := map[string]string{"base": base}

	perturb := func(name string, mutate func(*Params), spec runner.Spec) {
		p := DefaultParams()
		if mutate != nil {
			mutate(&p)
		}
		addr := p.CellAddress(spec)
		if addr == base {
			t.Errorf("%s: perturbation did not change the address", name)
		}
		if prev, dup := seen[addr]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[addr] = name
	}

	sp := addrSpec()
	other := sp
	other.Workload = "gcc"
	perturb("spec.Workload", nil, other)
	other = sp
	other.Predictor = "gshare"
	perturb("spec.Predictor", nil, other)
	other = sp
	other.Variant = "alt"
	perturb("spec.Variant", nil, other)
	other = sp
	other.Experiment = "table2"
	perturb("spec.Experiment", nil, other)

	perturb("BaseSeed", func(p *Params) { p.BaseSeed = 12345 }, sp)
	perturb("MaxCommitted", func(p *Params) { p.MaxCommitted++ }, sp)
	perturb("BuildIters", func(p *Params) { p.BuildIters++ }, sp)
	perturb("GshareBits", func(p *Params) { p.GshareBits++ }, sp)
	perturb("McFBits", func(p *Params) { p.McFBits++ }, sp)
	perturb("SAgBHTBits", func(p *Params) { p.SAgBHTBits++ }, sp)
	perturb("SAgHistBits", func(p *Params) { p.SAgHistBits++ }, sp)
	perturb("StaticThreshold", func(p *Params) { p.StaticThreshold += 0.01 }, sp)
	perturb("Pipeline.FetchWidth", func(p *Params) { p.Pipeline.FetchWidth++ }, sp)
	perturb("Pipeline.ResolveDelay", func(p *Params) { p.Pipeline.ResolveDelay++ }, sp)
	perturb("Pipeline.ExtraMispredictPenalty", func(p *Params) { p.Pipeline.ExtraMispredictPenalty++ }, sp)
	perturb("Pipeline.MaxCycles", func(p *Params) { p.Pipeline.MaxCycles++ }, sp)
	perturb("Pipeline.IndirectPrediction", func(p *Params) { p.Pipeline.IndirectPrediction = !p.Pipeline.IndirectPrediction }, sp)
	perturb("Pipeline.BTBEntries", func(p *Params) { p.Pipeline.BTBEntries++ }, sp)
	perturb("Pipeline.BTBAssoc", func(p *Params) { p.Pipeline.BTBAssoc++ }, sp)
	perturb("Pipeline.RASDepth", func(p *Params) { p.Pipeline.RASDepth++ }, sp)
	perturb("Pipeline.ICache.SizeWords", func(p *Params) { p.Pipeline.ICache.SizeWords *= 2 }, sp)
	perturb("Pipeline.ICache.BlockWords", func(p *Params) { p.Pipeline.ICache.BlockWords *= 2 }, sp)
	perturb("Pipeline.ICache.Assoc", func(p *Params) { p.Pipeline.ICache.Assoc++ }, sp)
	perturb("Pipeline.ICache.HitLatency", func(p *Params) { p.Pipeline.ICache.HitLatency++ }, sp)
	perturb("Pipeline.ICache.MissPenalty", func(p *Params) { p.Pipeline.ICache.MissPenalty++ }, sp)
	perturb("Pipeline.DCache.SizeWords", func(p *Params) { p.Pipeline.DCache.SizeWords *= 2 }, sp)
	perturb("Pipeline.Estimators", func(p *Params) {
		p.Pipeline.Estimators = []conf.Estimator{conf.SatCounters{}}
	}, sp)
}

// TestCellAddressHashesEstimatorOrder: the estimator set is hashed by
// name in configured order — reordering changes which Confidence column
// is which, so it must move the address.
func TestCellAddressHashesEstimatorOrder(t *testing.T) {
	ab := DefaultParams()
	ab.Pipeline.Estimators = []conf.Estimator{conf.SatCounters{}, conf.NewJRS(conf.DefaultJRS)}
	ba := DefaultParams()
	ba.Pipeline.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS), conf.SatCounters{}}
	if ab.CellAddress(addrSpec()) == ba.CellAddress(addrSpec()) {
		t.Error("reordering Pipeline.Estimators did not change the address")
	}
	// Fresh instances with the same Name() must address identically:
	// the hash covers configuration, not object identity.
	ab2 := DefaultParams()
	ab2.Pipeline.Estimators = []conf.Estimator{conf.SatCounters{}, conf.NewJRS(conf.DefaultJRS)}
	if ab.CellAddress(addrSpec()) != ab2.CellAddress(addrSpec()) {
		t.Error("identically-configured estimator sets address differently")
	}
}

// TestCellAddressIgnoresSideChannels: fields that cannot change a
// cell's result — observability hooks, parallelism, cache naming —
// must not move the address, or identical simulations would miss the
// cache whenever run under different harnesses.
func TestCellAddressIgnoresSideChannels(t *testing.T) {
	base := DefaultParams().CellAddress(addrSpec())
	for name, mutate := range map[string]func(*Params){
		"Jobs":        func(p *Params) { p.Jobs = 16 },
		"Progress":    func(p *Params) { p.Progress = func(string) {} },
		"ICache.Name": func(p *Params) { p.Pipeline.ICache.Name = "renamed" },
	} {
		p := DefaultParams()
		mutate(&p)
		if p.CellAddress(addrSpec()) != base {
			t.Errorf("%s changed the address but cannot change the result", name)
		}
	}
}

// TestUnitAddressStable: the same parameters and shard always address
// identically — the cluster uses this as the identity of one scatter
// work unit.
func TestUnitAddressStable(t *testing.T) {
	sh := runner.Shard{Index: 1, Count: 4}
	a1 := DefaultParams().UnitAddress("table3", sh)
	a2 := DefaultParams().UnitAddress("table3", sh)
	if a1 != a2 {
		t.Fatalf("same unit produced different addresses: %s vs %s", a1, a2)
	}
	if len(a1) != 64 {
		t.Fatalf("address %q is not a hex SHA-256", a1)
	}
}

// TestUnitAddressSensitivity: every component of unit identity —
// experiment, shard coordinates, replay mode, budget, seed — must move
// the address, or two different work units would collide.
func TestUnitAddressSensitivity(t *testing.T) {
	sh := runner.Shard{Index: 1, Count: 4}
	base := DefaultParams().UnitAddress("table3", sh)
	seen := map[string]string{"base": base}
	check := func(name, addr string) {
		if addr == base {
			t.Errorf("%s: perturbation did not change the address", name)
		}
		if prev, dup := seen[addr]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[addr] = name
	}

	check("experiment", DefaultParams().UnitAddress("table2", sh))
	check("shard index", DefaultParams().UnitAddress("table3", runner.Shard{Index: 2, Count: 4}))
	check("shard count", DefaultParams().UnitAddress("table3", runner.Shard{Index: 1, Count: 8}))
	p := DefaultParams()
	p.MaxCommitted = 1
	check("committed", p.UnitAddress("table3", sh))
	p = DefaultParams()
	p.BaseSeed = 999
	check("seed", p.UnitAddress("table3", sh))
	p = DefaultParams()
	p.Replay = "off"
	check("replay mode", p.UnitAddress("table3", sh))
}

// TestUnitAddressZeroSeedCanonical mirrors the cell-address rule:
// BaseSeed 0 and an explicit DefaultBaseSeed are one identity.
func TestUnitAddressZeroSeedCanonical(t *testing.T) {
	sh := runner.Shard{Index: 0, Count: 2}
	zero := DefaultParams()
	explicit := DefaultParams()
	explicit.BaseSeed = runner.DefaultBaseSeed
	if zero.UnitAddress("table3", sh) != explicit.UnitAddress("table3", sh) {
		t.Error("BaseSeed 0 and explicit DefaultBaseSeed address differently")
	}
}
