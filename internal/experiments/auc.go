package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/workload"
)

// AUCRow is one estimator family's threshold-independent quality.
type AUCRow struct {
	Family string
	Points int
	AUC    float64
}

// AUCResult compares estimator *families* independent of their
// threshold knob: each family's threshold sweep traces a curve in ROC
// space (SENS vs 1-SPEC over the suite-summed quadrants), and the area
// under it is a single-number ranking. 0.5 is chance; higher means the
// family separates correct from incorrect predictions better at every
// operating point. This extends the paper's per-threshold tables with
// the standard diagnostics-literature summary its §1.1 framing invites.
type AUCResult struct {
	Predictor string
	Rows      []AUCRow
}

// AUCStudy sweeps four families under gshare in one run per workload.
func AUCStudy(p Params) (*AUCResult, error) {
	type family struct {
		name string
		mk   func() []conf.Estimator
	}
	families := []family{
		{"JRS (4096x4)", func() []conf.Estimator {
			var es []conf.Estimator
			for t := 1; t <= 16; t++ {
				es = append(es, conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: t, Enhanced: true}))
			}
			return es
		}},
		{"CIR (4096x16)", func() []conf.Estimator {
			var es []conf.Estimator
			for t := 1; t <= 16; t++ {
				es = append(es, conf.NewOnesCount(conf.OnesCountConfig{Entries: 4096, Bits: 16, Threshold: t, Enhanced: true}))
			}
			return es
		}},
		{"Distance", func() []conf.Estimator {
			var es []conf.Estimator
			for t := 0; t <= 15; t++ {
				es = append(es, conf.NewDistance(t))
			}
			return es
		}},
		{"gMDC-CIR (64x16)", func() []conf.Estimator {
			var es []conf.Estimator
			for t := 1; t <= 16; t++ {
				es = append(es, conf.NewGlobalMDCIndexed(conf.OnesCountConfig{Entries: 64, Bits: 16, Threshold: t}))
			}
			return es
		}},
	}

	// Build the flat estimator list once per workload; slice ranges map
	// back to families.
	res := &AUCResult{Predictor: "gshare"}
	var offsets []int
	total := 0
	for _, f := range families {
		offsets = append(offsets, total)
		total += len(f.mk())
	}
	sums := make([]metrics.Quadrant, total)
	stats, err := p.suiteStatsArch("auc", GshareSpec(), "main", total,
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) {
			var ests []conf.Estimator
			for _, f := range families {
				ests = append(ests, f.mk()...)
			}
			return ests, nil
		})
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range sums {
			sums[i].Add(st.Confidence[i].CommittedQ)
		}
	}
	for fi, f := range families {
		start := offsets[fi]
		end := total
		if fi+1 < len(families) {
			end = offsets[fi+1]
		}
		var pts []metrics.ROCPoint
		for _, q := range sums[start:end] {
			pts = append(pts, metrics.ROCFromQuadrant(q))
		}
		res.Rows = append(res.Rows, AUCRow{
			Family: f.name,
			Points: len(pts),
			AUC:    metrics.AUC(pts),
		})
	}
	return res, nil
}

// Find returns the named family's row.
func (r *AUCResult) Find(name string) (AUCRow, bool) {
	for _, row := range r.Rows {
		if row.Family == name {
			return row, true
		}
	}
	return AUCRow{}, false
}

// Render prints the AUC ranking.
func (r *AUCResult) Render() string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Estimator-family ROC AUC (%s, suite)", r.Predictor)))
	fmt.Fprintf(&b, "%-18s %7s %7s\n", "family", "points", "auc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %7d %7.3f\n", row.Family, row.Points, row.AUC)
	}
	b.WriteString("\n0.5 = chance. The table estimators whose indexing matches the\n")
	b.WriteString("predictor dominate; the global-MDC-indexed table and the one-counter\n")
	b.WriteString("distance estimator trade most of that separation for near-zero cost.\n")
	return b.String()
}
