package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// MisestRow is one (estimator, predictor) mis-estimation clustering
// measurement (§4.1 closing paragraphs): the rate at which the confidence
// estimate disagrees with the branch outcome, as a function of distance
// since the previous disagreement.
type MisestRow struct {
	Estimator string
	Predictor string
	// Rate[d-1] is the mis-estimation rate at distance d (committed
	// branches since the last mis-estimation).
	Rate    []float64
	Average float64
}

// MisestResult holds the clustering measurements for the configurations
// the paper reports: JRS under gshare and McFarling, saturating counters
// under McFarling.
type MisestResult struct {
	Rows    []MisestRow
	MaxDist int
}

// misestCell simulates one (workload, predictor, estimator) cell; the
// spec variant selects the estimator under test.
func misestCell(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
	w, err := workload.ByName(sp.Workload)
	if err != nil {
		return CellResult{}, err
	}
	spec, err := predictorByName(sp.Predictor)
	if err != nil {
		return CellResult{}, err
	}
	var est conf.Estimator
	switch sp.Variant {
	case "jrs":
		est = conf.NewJRS(conf.DefaultJRS)
	case "satcnt":
		est = SatCntFor(spec, conf.BothStrong)
	default:
		return CellResult{}, fmt.Errorf("misest: unknown variant %q", sp.Variant)
	}
	eval := p.evalEstimators
	if p.archEligible() {
		eval = p.archEval
	}
	st, err := eval(w, spec, est)
	if err != nil {
		return CellResult{}, fmt.Errorf("misest %s/%s: %w", w.Name, spec.Name, err)
	}
	return CellResult{Stats: st}, nil
}

// Misest measures confidence mis-estimation clustering over the suite.
func Misest(p Params) (*MisestResult, error) {
	const maxDist = 16
	type cfgT struct {
		spec    PredictorSpec
		variant string
		name    string
	}
	cfgs := []cfgT{
		{GshareSpec(), "jrs", "JRS"},
		{McFarlingSpec(), "jrs", "JRS"},
		{McFarlingSpec(), "satcnt", "SatCnt"},
	}
	var gridSpecs []runner.Spec
	for _, c := range cfgs {
		for _, w := range suite() {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "misest", Workload: w.Name, Predictor: c.spec.Name, Variant: c.variant,
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, misestCell)
	if err != nil {
		return nil, err
	}
	res := &MisestResult{MaxDist: maxDist}
	i := 0
	for _, c := range cfgs {
		var hist pipeline.DistanceHist
		var total, mis uint64
		for range suite() {
			st := cells[i].Stats
			i++
			h := &st.Confidence[0].MisestCommitted
			for d := 0; d < pipeline.DistanceBuckets; d++ {
				hist.Total[d] += h.Total[d]
				hist.Mispredict[d] += h.Mispredict[d]
				total += h.Total[d]
				mis += h.Mispredict[d]
			}
		}
		row := MisestRow{Estimator: c.name, Predictor: c.spec.Name,
			Average: float64(mis) / float64(total)}
		for d := 1; d <= maxDist; d++ {
			row.Rate = append(row.Rate, hist.Rate(d))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the clustering table.
func (r *MisestResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Mis-estimation clustering (§4.1): error rate vs distance since last error"))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s on %s (avg %s)\n", row.Estimator, row.Predictor, pct1(row.Average))
		for d, rate := range row.Rate {
			fmt.Fprintf(&b, "  d=%-3d %s\n", d+1, pct1(rate))
		}
	}
	return b.String()
}
