package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/eager"
	"specctrl/internal/isa"
	"specctrl/internal/metrics"
	"specctrl/internal/policy"
	"specctrl/internal/runner"
	"specctrl/internal/smt"
	"specctrl/internal/workload"
)

// SMTRow is one thread-mix's policy comparison.
type SMTRow struct {
	Mix        string
	RoundRobin float64 // aggregate IPC
	ICount     float64
	Confidence float64
	Gain       float64 // confidence vs round-robin
}

// SMTResult evaluates the paper's SMT motivation (§2, §2.2): a fetch
// policy that skips threads with unresolved low-confidence branches
// should beat blind sharing, most of all when a predictable thread is
// paired with a hostile one.
type SMTResult struct {
	Rows []SMTRow
}

// smtPolicies lists the fetch policies in table order.
var smtPolicies = []smt.Policy{smt.RoundRobin, smt.ICount, smt.ConfidenceGate}

// SMTStudy runs three two-thread mixes under the three fetch policies,
// one grid cell per (mix, policy). The cell spec's workload field names
// the mix ("a+b"); the throughput travels in CellResult.Extra because an
// SMT run has no single-thread Stats to return.
func SMTStudy(p Params) (*SMTResult, error) {
	mixes := [][2]string{
		{"m88ksim", "go"},    // predictable + hostile
		{"vortex", "gcc"},    // predictable + branchy
		{"compress", "perl"}, // middle of the road
	}
	var gridSpecs []runner.Spec
	for _, mix := range mixes {
		for _, policy := range smtPolicies {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "smt", Workload: mix[0] + "+" + mix[1],
				Predictor: "gshare", Variant: policy.String(),
			})
		}
	}
	cell := func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		var smtPol smt.Policy
		found := false
		for _, pol := range smtPolicies {
			if pol.String() == sp.Variant {
				smtPol, found = pol, true
			}
		}
		if !found {
			return CellResult{}, fmt.Errorf("smt: unknown policy variant %q", sp.Variant)
		}
		var progs []*isa.Program
		for _, name := range strings.Split(sp.Workload, "+") {
			w, err := workload.ByName(name)
			if err != nil {
				return CellResult{}, fmt.Errorf("smt mix %s: %w", sp.Workload, err)
			}
			progs = append(progs, buildProgram(w, p.BuildIters))
		}
		cfg := smt.Config{
			CycleBudget: p.MaxCommitted / 4, // roughly IPC~2+ worth of work
			Pipeline:    p.Pipeline,
			Policy:      smtPol,
		}
		newPred := func() bpred.Predictor { return bpred.NewGshare(p.GshareBits) }
		newEst := func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }
		p.progress("smt %s policy %s", sp.Workload, smtPol)
		r, err := smt.Run(cfg, progs, policy.Factories{Predictor: newPred, Estimator: newEst})
		if err != nil {
			return CellResult{}, fmt.Errorf("smt %s/%s: %w", sp.Workload, smtPol, err)
		}
		return CellResult{Extra: map[string]float64{"throughput": r.Throughput()}}, nil
	}
	cells, err := p.runGrid(gridSpecs, cell)
	if err != nil {
		return nil, err
	}
	res := &SMTResult{}
	i := 0
	for _, mix := range mixes {
		row := SMTRow{Mix: mix[0] + "+" + mix[1]}
		for _, policy := range smtPolicies {
			tp := cells[i].Extra["throughput"]
			i++
			switch policy {
			case smt.RoundRobin:
				row.RoundRobin = tp
			case smt.ICount:
				row.ICount = tp
			default:
				row.Confidence = tp
			}
		}
		if row.RoundRobin > 0 {
			row.Gain = row.Confidence/row.RoundRobin - 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the policy comparison.
func (r *SMTResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Application: SMT fetch policies (aggregate IPC, 2 threads, gshare+JRS)"))
	fmt.Fprintf(&b, "%-16s %8s %8s %11s %7s\n", "mix", "rr", "icount", "confidence", "gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8.3f %8.3f %11.3f %+6.1f%%\n",
			row.Mix, row.RoundRobin, row.ICount, row.Confidence, row.Gain*100)
	}
	return b.String()
}

// EagerRow is one estimator's suite-mean eager-execution outcome.
type EagerRow struct {
	Estimator string
	Saved     float64 // cycles saved per 1000 committed branches
	Forks     float64 // forks per 1000 committed branches
	Metrics   metrics.Metrics
}

// EagerResult evaluates the eager-execution cost model (§2.2) across
// estimators over the whole suite: which estimator's low-confidence set
// is worth forking on, and by how much.
type EagerResult struct {
	Model eager.Model
	Rows  []EagerRow
}

// EagerStudy measures the estimators once per workload (one run,
// fan-out) and applies the dual-path model to the suite-summed
// quadrants.
func EagerStudy(p Params) (*EagerResult, error) {
	mk := func() []conf.Estimator {
		return []conf.Estimator{
			conf.NewJRS(conf.DefaultJRS),
			conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 7, Enhanced: true}),
			conf.SatCounters{},
			conf.NewDistance(3),
			conf.Always{High: false},
		}
	}
	names := []string{"JRS t=15", "JRS t=7", "SatCnt", "Dist(>3)", "fork-always"}
	sums := make([]metrics.Quadrant, len(names))
	stats, err := p.suiteStats("eager", GshareSpec(), "main", len(names),
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) { return mk(), nil })
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range names {
			sums[i].Add(st.Confidence[i].CommittedQ)
		}
	}
	model := eager.DefaultModel()
	res := &EagerResult{Model: model}
	for i, n := range names {
		o, err := model.Evaluate(sums[i])
		if err != nil {
			return nil, fmt.Errorf("eager model %s: %w", n, err)
		}
		res.Rows = append(res.Rows, EagerRow{
			Estimator: n,
			Saved:     o.SavedPerKilo,
			Forks:     o.Forks,
			Metrics:   sums[i].Compute(),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Saved > res.Rows[j].Saved })
	return res, nil
}

// Render prints the eager ranking.
func (r *EagerResult) Render() string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf(
		"Application: eager execution model (suite, penalty=%.0f fork=%.0f)",
		r.Model.MispredictPenalty, r.Model.ForkCost)))
	fmt.Fprintf(&b, "%-12s %9s %8s %6s %6s\n", "estimator", "saved/1k", "forks/1k", "spec", "pvn")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %+9.1f %8.0f %5.0f%% %5.0f%%\n",
			row.Estimator, row.Saved, row.Forks, row.Metrics.Spec*100, row.Metrics.PVN*100)
	}
	return b.String()
}
