package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// BoostRow reports the boosted PVN for one run depth k (§4.2): given k
// consecutive committed low-confidence estimates, the probability that at
// least one of those k branches really was mispredicted — the
// pipeline-state signal an SMT or eager-execution machine would act on —
// compared against the Bernoulli approximation 1-(1-PVN)^k.
type BoostRow struct {
	K            int
	Groups       uint64  // k-deep low-confidence runs observed
	Hit          uint64  // runs containing >= 1 misprediction
	MeasuredPVN  float64 // Hit / Groups
	BernoulliPVN float64
}

// BoostResult holds the boosting measurement for one estimator/predictor
// configuration over the whole suite.
type BoostResult struct {
	Estimator string
	Predictor string
	BasePVN   float64 // single-event PVN of the estimator
	Rows      []BoostRow
}

// boostFromEvents scans a committed-branch event stream and accumulates,
// for every depth k, the number of length-k low-confidence runs and how
// many contained at least one misprediction.
func boostFromEvents(events []pipeline.BranchEvent, maxK int, groups, hits []uint64) {
	// window[i] tracks the last i+1 committed estimates; we keep a run
	// length of consecutive LC events and a count of mispredictions in
	// the current window using a small ring buffer.
	type ev struct{ lc, misp bool }
	ring := make([]ev, maxK)
	pos, filled := 0, 0
	for _, e := range events {
		if e.WrongPath {
			continue
		}
		ring[pos] = ev{lc: !e.HighConf, misp: !e.Correct()}
		pos = (pos + 1) % maxK
		if filled < maxK {
			filled++
		}
		// For each k, check whether the last k events are all LC.
		for k := 1; k <= filled; k++ {
			allLC, anyMisp := true, false
			for j := 1; j <= k; j++ {
				idx := (pos - j + maxK) % maxK
				if !ring[idx].lc {
					allLC = false
					break
				}
				if ring[idx].misp {
					anyMisp = true
				}
			}
			if allLC {
				groups[k-1]++
				if anyMisp {
					hits[k-1]++
				}
			}
		}
	}
}

// Boost measures boosting for the saturating-counters estimator on the
// given predictor (the paper's motivating configuration: an inexpensive
// estimator whose PVN boosting lifts toward 50%).
func Boost(p Params, spec PredictorSpec, maxK int) (*BoostResult, error) {
	if maxK < 1 || maxK > 8 {
		return nil, fmt.Errorf("boost: k depth %d out of range", maxK)
	}
	// Each cell records its own event stream, folds it into per-k group
	// counts, and drops the events before returning: the counts travel
	// in CellResult.Extra, so a sharded dump stays small and the merge
	// never re-reads the (multi-million-entry) event log.
	cell := func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		w, err := workload.ByName(sp.Workload)
		if err != nil {
			return CellResult{}, err
		}
		st, err := p.runOne(w, spec, true, SatCntFor(spec, conf.BothStrong))
		if err != nil {
			return CellResult{}, fmt.Errorf("boost %s/%s: %w", w.Name, spec.Name, err)
		}
		g := make([]uint64, maxK)
		h := make([]uint64, maxK)
		boostFromEvents(st.Events, maxK, g, h)
		st.Events = nil
		extra := make(map[string]float64, 2*maxK)
		for k := 1; k <= maxK; k++ {
			extra[fmt.Sprintf("groups_k%d", k)] = float64(g[k-1])
			extra[fmt.Sprintf("hits_k%d", k)] = float64(h[k-1])
		}
		return CellResult{Stats: st, Extra: extra}, nil
	}
	cells, err := p.runGrid(suiteSpecs("boost", spec, fmt.Sprintf("satcnt-k%d", maxK)), cell)
	if err != nil {
		return nil, err
	}
	est := SatCntFor(spec, conf.BothStrong)
	groups := make([]uint64, maxK)
	hits := make([]uint64, maxK)
	var baseQ []metrics.Quadrant
	for _, c := range cells {
		for k := 1; k <= maxK; k++ {
			groups[k-1] += uint64(c.Extra[fmt.Sprintf("groups_k%d", k)])
			hits[k-1] += uint64(c.Extra[fmt.Sprintf("hits_k%d", k)])
		}
		baseQ = append(baseQ, c.Stats.Confidence[0].CommittedQ)
	}
	base := metrics.AggregateNormalized(baseQ).Compute().PVN
	res := &BoostResult{Estimator: est.Name(), Predictor: spec.Name, BasePVN: base}
	for k := 1; k <= maxK; k++ {
		row := BoostRow{K: k, Groups: groups[k-1], Hit: hits[k-1],
			BernoulliPVN: metrics.BoostedPVN(base, k)}
		if row.Groups > 0 {
			row.MeasuredPVN = float64(row.Hit) / float64(row.Groups)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints measured vs Bernoulli boosted PVN per depth.
func (r *BoostResult) Render() string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Boosting (§4.2): %s on %s, base PVN %s",
		r.Estimator, r.Predictor, pct1(r.BasePVN))))
	fmt.Fprintf(&b, "%3s %12s %12s %10s %12s\n", "k", "lc-runs", "with-misp", "measured", "1-(1-pvn)^k")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%3d %12d %12d %9s %11s\n",
			row.K, row.Groups, row.Hit, pct1(row.MeasuredPVN), pct1(row.BernoulliPVN))
	}
	return b.String()
}
