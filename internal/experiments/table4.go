package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
)

// Table4Row is one (estimator, predictor) suite-mean row of the paper's
// Table 4, which positions the misprediction-distance estimator against
// JRS, saturating counters and static profiling.
type Table4Row struct {
	Estimator string
	Threshold string
	Predictor string
	Metrics   metrics.Metrics
}

// Table4Result is the full table.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 runs, per workload, one gshare simulation and one McFarling
// simulation carrying every estimator in the table (JRS, saturating
// counters, distance thresholds 1..7), plus the static profiling pass,
// plus a SAg run for the history-pattern reference row.
func Table4(p Params) (*Table4Result, error) {
	const distMax = 7
	type key struct{ est, pred string }
	perApp := map[key][]metrics.Quadrant{}
	rowOrder := []key{}
	addQ := func(k key, q metrics.Quadrant) {
		if _, seen := perApp[k]; !seen {
			rowOrder = append(rowOrder, k)
		}
		perApp[k] = append(perApp[k], q)
	}

	for _, w := range suite() {
		for _, spec := range []PredictorSpec{GshareSpec(), McFarlingSpec()} {
			static, err := p.staticFor(w, spec)
			if err != nil {
				return nil, fmt.Errorf("table4 static %s/%s: %w", w.Name, spec.Name, err)
			}
			ests := []conf.Estimator{
				conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}),
				SatCntFor(spec, conf.BothStrong),
				static,
			}
			names := []key{
				{"JRS >=15", spec.Name},
				{"Satur. Cntrs", spec.Name},
				{"Static >90%", spec.Name},
			}
			for d := 1; d <= distMax; d++ {
				ests = append(ests, conf.NewDistance(d))
				names = append(names, key{fmt.Sprintf("Distance >%d", d), spec.Name})
			}
			st, err := p.runOne(w, spec, false, ests...)
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", w.Name, spec.Name, err)
			}
			for i, k := range names {
				addQ(k, st.Confidence[i].CommittedQ)
			}
		}
		// History-pattern reference row on SAg.
		sag := SAgSpec()
		st, err := p.runOne(w, sag, false, conf.NewPatternHistory(sag.HistBits(p)))
		if err != nil {
			return nil, fmt.Errorf("table4 %s/sag: %w", w.Name, err)
		}
		addQ(key{"Hist. Pattern", "sag"}, st.Confidence[0].CommittedQ)
	}

	res := &Table4Result{}
	for _, k := range rowOrder {
		res.Rows = append(res.Rows, Table4Row{
			Estimator: k.est,
			Predictor: k.pred,
			Metrics:   metrics.AggregateNormalized(perApp[k]).Compute(),
		})
	}
	return res, nil
}

// Find returns the row for the given estimator label and predictor.
func (r *Table4Result) Find(estimator, predictor string) (Table4Row, bool) {
	for _, row := range r.Rows {
		if row.Estimator == estimator && row.Predictor == predictor {
			return row, true
		}
	}
	return Table4Row{}, false
}

// Render produces the paper-style text table.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Table 4: misprediction distance as confidence estimator (suite means)"))
	fmt.Fprintf(&b, "%-14s %-10s %5s %5s %5s %5s\n",
		"estimator", "predictor", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		m := row.Metrics
		fmt.Fprintf(&b, "%-14s %-10s %s %s %s %s\n",
			row.Estimator, row.Predictor, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
	}
	return b.String()
}
