package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// Table4Row is one (estimator, predictor) suite-mean row of the paper's
// Table 4, which positions the misprediction-distance estimator against
// JRS, saturating counters and static profiling.
type Table4Row struct {
	Estimator string
	Threshold string
	Predictor string
	Metrics   metrics.Metrics
}

// Table4Result is the full table.
type Table4Result struct {
	Rows []Table4Row
}

// table4DistMax is the largest distance threshold in the table.
const table4DistMax = 7

// table4Cell simulates one (workload, predictor) cell. Gshare and
// McFarling cells run the full estimator battery (JRS, saturating
// counters, static, distance 1..7) after a static-profiling pass; the
// SAg cell runs the history-pattern reference estimator alone.
func table4Cell(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
	w, err := workload.ByName(sp.Workload)
	if err != nil {
		return CellResult{}, err
	}
	spec, err := predictorByName(sp.Predictor)
	if err != nil {
		return CellResult{}, err
	}
	if spec.Name == "sag" {
		st, err := p.evalEstimators(w, spec, conf.NewPatternHistory(spec.HistBits(p)))
		if err != nil {
			return CellResult{}, fmt.Errorf("table4 %s/sag: %w", w.Name, err)
		}
		return CellResult{Stats: st}, nil
	}
	static, err := p.staticFor(w, spec)
	if err != nil {
		return CellResult{}, fmt.Errorf("table4 static %s/%s: %w", w.Name, spec.Name, err)
	}
	ests := []conf.Estimator{
		conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}),
		SatCntFor(spec, conf.BothStrong),
		static,
	}
	for d := 1; d <= table4DistMax; d++ {
		ests = append(ests, conf.NewDistance(d))
	}
	st, err := p.evalEstimators(w, spec, ests...)
	if err != nil {
		return CellResult{}, fmt.Errorf("table4 %s/%s: %w", w.Name, spec.Name, err)
	}
	return CellResult{Stats: st}, nil
}

// Table4 runs, per workload, one gshare cell and one McFarling cell
// carrying every estimator in the table (JRS, saturating counters,
// distance thresholds 1..7), plus the static profiling pass, plus a SAg
// cell for the history-pattern reference row.
func Table4(p Params) (*Table4Result, error) {
	const distMax = table4DistMax
	type key struct{ est, pred string }
	perApp := map[key][]metrics.Quadrant{}
	rowOrder := []key{}
	addQ := func(k key, q metrics.Quadrant) {
		if _, seen := perApp[k]; !seen {
			rowOrder = append(rowOrder, k)
		}
		perApp[k] = append(perApp[k], q)
	}

	// One cell per (workload, predictor): gshare and McFarling cells
	// carry the full estimator battery; the SAg cell carries the
	// history-pattern reference estimator.
	var gridSpecs []runner.Spec
	for _, w := range suite() {
		for _, spec := range []PredictorSpec{GshareSpec(), McFarlingSpec(), SAgSpec()} {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "table4", Workload: w.Name, Predictor: spec.Name, Variant: "main",
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, table4Cell)
	if err != nil {
		return nil, err
	}
	i := 0
	for range suite() {
		for _, spec := range []PredictorSpec{GshareSpec(), McFarlingSpec()} {
			st := cells[i].Stats
			i++
			names := []key{
				{"JRS >=15", spec.Name},
				{"Satur. Cntrs", spec.Name},
				{"Static >90%", spec.Name},
			}
			for d := 1; d <= distMax; d++ {
				names = append(names, key{fmt.Sprintf("Distance >%d", d), spec.Name})
			}
			for e, k := range names {
				addQ(k, st.Confidence[e].CommittedQ)
			}
		}
		addQ(key{"Hist. Pattern", "sag"}, cells[i].Stats.Confidence[0].CommittedQ)
		i++
	}

	res := &Table4Result{}
	for _, k := range rowOrder {
		res.Rows = append(res.Rows, Table4Row{
			Estimator: k.est,
			Predictor: k.pred,
			Metrics:   metrics.AggregateNormalized(perApp[k]).Compute(),
		})
	}
	return res, nil
}

// Find returns the row for the given estimator label and predictor.
func (r *Table4Result) Find(estimator, predictor string) (Table4Row, bool) {
	for _, row := range r.Rows {
		if row.Estimator == estimator && row.Predictor == predictor {
			return row, true
		}
	}
	return Table4Row{}, false
}

// Render produces the paper-style text table.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Table 4: misprediction distance as confidence estimator (suite means)"))
	fmt.Fprintf(&b, "%-14s %-10s %5s %5s %5s %5s\n",
		"estimator", "predictor", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		m := row.Metrics
		fmt.Fprintf(&b, "%-14s %-10s %s %s %s %s\n",
			row.Estimator, row.Predictor, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
	}
	return b.String()
}
