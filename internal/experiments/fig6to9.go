package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/plot"
	"specctrl/internal/workload"
)

// DistanceView selects which of the four misprediction-distance
// statistics a curve shows.
type DistanceView int

// Views: precise distances reset when a mispredicted branch is fetched
// (Figures 6 and 7); perceived distances reset when the misprediction is
// detected at resolution (Figures 8 and 9).
const (
	PreciseAll DistanceView = iota
	PreciseCommitted
	PerceivedAll
	PerceivedCommitted
)

// String names the view.
func (v DistanceView) String() string {
	switch v {
	case PreciseAll:
		return "precise/all"
	case PreciseCommitted:
		return "precise/committed"
	case PerceivedAll:
		return "perceived/all"
	default:
		return "perceived/committed"
	}
}

// DistanceCurve is the misprediction rate as a function of the distance
// (in branches) from the previous misprediction, plus the flat average
// the paper draws for reference.
type DistanceCurve struct {
	View    DistanceView
	Rate    []float64 // index = distance, starting at 1
	Count   []uint64  // branches observed at each distance
	Average float64   // overall misprediction rate for this view
}

// FigDistanceResult reproduces one of Figures 6-9: both the all-branch
// and committed-branch curves for one predictor and one reset model.
type FigDistanceResult struct {
	Predictor string
	Perceived bool
	All       DistanceCurve
	Committed DistanceCurve
}

// maxPlotDistance bounds the rendered distance axis, as in the figures.
const maxPlotDistance = 32

func curveFrom(view DistanceView, h *pipeline.DistanceHist, avg float64) DistanceCurve {
	c := DistanceCurve{View: view, Average: avg}
	for d := 1; d <= maxPlotDistance; d++ {
		c.Rate = append(c.Rate, h.Rate(d))
		c.Count = append(c.Count, h.Total[d])
	}
	return c
}

// FigDistance runs the suite on the given predictor and accumulates the
// distance histograms. perceived selects the resolution-time reset model
// (Figures 8/9) instead of the oracle fetch-time model (Figures 6/7).
func FigDistance(p Params, spec PredictorSpec, perceived bool) (*FigDistanceResult, error) {
	// The same simulation feeds both reset models (precise and
	// perceived histograms are collected together), so the cells are
	// keyed "figdist" without a perceived marker: a merged cell dump
	// renders Figures 6-9 from one suite of runs per predictor.
	stats, err := p.suiteStats("figdist", spec, "main", 0,
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) { return nil, nil })
	if err != nil {
		return nil, err
	}
	var all, committed pipeline.DistanceHist
	var allBr, allMisp, commBr, commMisp uint64
	for _, st := range stats {
		var srcAll, srcComm *pipeline.DistanceHist
		if perceived {
			srcAll, srcComm = &st.PerceivedAll, &st.PerceivedCommitted
		} else {
			srcAll, srcComm = &st.PreciseAll, &st.PreciseCommitted
		}
		for d := 0; d < pipeline.DistanceBuckets; d++ {
			all.Total[d] += srcAll.Total[d]
			all.Mispredict[d] += srcAll.Mispredict[d]
			committed.Total[d] += srcComm.Total[d]
			committed.Mispredict[d] += srcComm.Mispredict[d]
		}
		allBr += st.AllBr
		allMisp += st.AllQ.Incorrect()
		commBr += st.CommittedBr
		commMisp += st.CommittedQ.Incorrect()
	}
	viewAll, viewComm := PreciseAll, PreciseCommitted
	if perceived {
		viewAll, viewComm = PerceivedAll, PerceivedCommitted
	}
	return &FigDistanceResult{
		Predictor: spec.Name,
		Perceived: perceived,
		All:       curveFrom(viewAll, &all, float64(allMisp)/float64(allBr)),
		Committed: curveFrom(viewComm, &committed, float64(commMisp)/float64(commBr)),
	}, nil
}

// Render prints both curves with the average reference lines.
func (r *FigDistanceResult) Render() string {
	var b strings.Builder
	model := "precise (Figures 6/7)"
	if r.Perceived {
		model = "perceived (Figures 8/9)"
	}
	b.WriteString(header(fmt.Sprintf("Misprediction distance, %s, %s predictor", model, r.Predictor)))
	fmt.Fprintf(&b, "%4s | %-9s (avg %s) | %-9s (avg %s)\n", "dist",
		"all br", pct1(r.All.Average), "committed", pct1(r.Committed.Average))
	for d := 1; d <= maxPlotDistance; d++ {
		fmt.Fprintf(&b, "%4d | %s  n=%-9d | %s  n=%-9d\n", d,
			pct1(r.All.Rate[d-1]), r.All.Count[d-1],
			pct1(r.Committed.Rate[d-1]), r.Committed.Count[d-1])
	}
	b.WriteString("\n")
	avgLine := make([]float64, maxPlotDistance)
	for i := range avgLine {
		avgLine[i] = r.All.Average
	}
	cfg := plot.DefaultConfig()
	cfg.XLabel = "branches since previous misprediction"
	cfg.YFormat = "%.2f"
	cfg.YMin, cfg.YMax = 0, ceil10(maxRate(r.All.Rate, r.Committed.Rate))
	b.WriteString(plot.Render(cfg,
		plot.Series{Name: "all branches", Mark: '*', Values: r.All.Rate},
		plot.Series{Name: "committed branches", Mark: 'o', Values: r.Committed.Rate},
		plot.Series{Name: "average (all)", Mark: '-', Values: avgLine},
	))
	return b.String()
}

// maxRate returns the maximum value across the rate slices.
func maxRate(slices ...[]float64) float64 {
	m := 0.0
	for _, s := range slices {
		for _, v := range s {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// ceil10 rounds up to the next 0.1 step for a stable chart ceiling.
func ceil10(v float64) float64 {
	steps := int(v*10) + 1
	return float64(steps) / 10
}
