package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/runner"
	"specctrl/internal/synth"
	"specctrl/internal/workload"
)

// DefaultSynthN is the sweepspace profile count when Params.SynthN is
// unset: large enough to cover the generator's axes, small enough that
// a laptop run stays in minutes.
const DefaultSynthN = 32

// sweepSpaceEstimators builds the fixed estimator panel every
// sweepspace workload is evaluated with — one representative per
// estimator family, in the paper's cost order.
func sweepSpaceEstimators(p Params) []conf.Estimator {
	return []conf.Estimator{
		conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}),
		SatCntFor(GshareSpec(), conf.BothStrong),
		conf.NewPatternHistory(GshareSpec().HistBits(p)),
		conf.NewDistance(3),
	}
}

// sweepSpaceEstimatorNames are the panel's column labels, aligned with
// sweepSpaceEstimators.
var sweepSpaceEstimatorNames = []string{"jrs", "satcnt", "pattern", "dist"}

// SweepSpaceEst is one estimator's quality on one workload.
type SweepSpaceEst struct {
	Spec float64 // fraction of mispredictions flagged low-confidence
	PVN  float64 // fraction of low-confidence flags that were right
}

// SweepSpaceRow is one workload's realized characteristics and
// estimator panel results.
type SweepSpaceRow struct {
	Name string
	// Profile is the generating vector; nil for appended workloads
	// (ingested traces carry no vector).
	Profile *synth.Profile
	// Density and Misp are realized under the pipeline's gshare run —
	// the ground truth the estimators were judged against.
	Density float64
	Misp    float64
	Ests    []SweepSpaceEst
}

// SweepSpaceResult is the full sweep.
type SweepSpaceResult struct {
	Rows []SweepSpaceRow
}

// SweepSpace sweeps the estimator panel over SynthN latin-hypercube
// profiles from the generator's vector space (plus any explicitly
// registered SynthWorkloads), one grid cell per workload through the
// standard machinery: cells cache by content-addressed workload name,
// and under replay each workload records once and replays the panel.
func SweepSpace(p Params) (*SweepSpaceResult, error) {
	n := p.SynthN
	if n <= 0 {
		n = DefaultSynthN
	}
	seed := p.BaseSeed
	if seed == 0 {
		seed = runner.DefaultBaseSeed
	}
	names := make([]string, 0, n+len(p.SynthWorkloads))
	seen := make(map[string]bool, n)
	for _, prof := range synth.Space(seed, n) {
		name, err := synth.Register(prof)
		if err != nil {
			return nil, fmt.Errorf("sweepspace: register profile: %w", err)
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, extra := range p.SynthWorkloads {
		if seen[extra] {
			continue
		}
		if _, err := workload.ByName(extra); err != nil {
			return nil, fmt.Errorf("sweepspace: %w", err)
		}
		seen[extra] = true
		names = append(names, extra)
	}

	stats, err := p.namedStats("sweepspace", names, GshareSpec(), "main",
		len(sweepSpaceEstimatorNames),
		func(p Params, _ workload.Workload) ([]conf.Estimator, error) {
			return sweepSpaceEstimators(p), nil
		})
	if err != nil {
		return nil, err
	}

	res := &SweepSpaceResult{}
	for i, name := range names {
		st := stats[i]
		row := SweepSpaceRow{
			Name:    name,
			Density: float64(st.CommittedBr) / float64(st.Committed),
			Misp:    st.MispredictRate(),
		}
		if prof, ok := synth.ProfileFor(name); ok {
			prof := prof
			row.Profile = &prof
		}
		for _, cs := range st.Confidence {
			row.Ests = append(row.Ests, SweepSpaceEst{
				Spec: cs.CommittedQ.Spec(),
				PVN:  cs.CommittedQ.PVN(),
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render produces the sweep table: the generating vector's axes, the
// realized characteristics, and SPEC/PVN per panel estimator.
func (r *SweepSpaceResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Sweepspace: estimator panel over the generator's vector space (gshare)"))
	fmt.Fprintf(&b, "%-18s %5s %6s %6s %6s %6s %8s %8s %7s | %6s %6s |",
		"workload", "sites", "den", "taken", "sprd", "h2p", "glob", "local", "clust", "den%", "misp%")
	for _, n := range sweepSpaceEstimatorNames {
		fmt.Fprintf(&b, " %13s", n)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		if p := row.Profile; p != nil {
			glob, local, clust := "-", "-", "-"
			if p.GlobalFrac > 0 {
				glob = fmt.Sprintf("%.2f@%d", p.GlobalFrac, p.GlobalDepth)
			}
			if p.LocalFrac > 0 {
				local = fmt.Sprintf("%.2f@%d", p.LocalFrac, p.LocalPeriod)
			}
			if p.ClusterEvery > 0 {
				clust = fmt.Sprintf("%d/%d", p.ClusterBurst, p.ClusterEvery)
			}
			fmt.Fprintf(&b, "%-18s %5d %6.3f %6.2f %6.2f %6.2f %8s %8s %7s |",
				row.Name, p.Sites, p.Density, p.Taken, p.Spread, p.H2P, glob, local, clust)
		} else {
			fmt.Fprintf(&b, "%-18s %5s %6s %6s %6s %6s %8s %8s %7s |",
				row.Name, "-", "-", "-", "-", "-", "-", "-", "-")
		}
		fmt.Fprintf(&b, " %5.1f%% %5.1f%% |", row.Density*100, row.Misp*100)
		for _, e := range row.Ests {
			fmt.Fprintf(&b, "  %5.1f%%/%5.1f%%", e.Spec*100, e.PVN*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
