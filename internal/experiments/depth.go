package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// DepthRow is one resolve-depth configuration's suite means.
type DepthRow struct {
	ResolveDelay int
	Ratio        float64 // all/committed instructions
	MispGshare   float64
	MispSAg      float64
	JRSPVN       float64
	JRSSpec      float64
	IPC          float64
}

// AblationDepthResult sweeps the fetch-to-resolve depth, the machine
// parameter behind this reproduction's main deviation from the paper:
// deeper resolution means longer wrong-path excursions (higher
// speculation ratio, toward the paper's 1.2-2.0) but also staler
// non-speculative SAg history. The table shows both effects and that the
// JRS estimator's quality metrics are nearly depth-invariant — the
// estimators measure the branch stream, not the machine.
type AblationDepthResult struct {
	Rows []DepthRow
}

// depthSweep lists the resolve depths the ablation covers.
var depthSweep = []int{2, 3, 5, 8}

// depthCell simulates one (workload, predictor, depth) point. The depth
// is carried in the spec variant ("d<depth>"); the gshare cells also run
// the JRS estimator, the SAg cells run bare.
func depthCell(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
	w, err := workload.ByName(sp.Workload)
	if err != nil {
		return CellResult{}, err
	}
	var depth int
	if _, err := fmt.Sscanf(sp.Variant, "d%d", &depth); err != nil {
		return CellResult{}, fmt.Errorf("depth: bad variant %q: %w", sp.Variant, err)
	}
	cfg := p.Pipeline
	cfg.ResolveDelay = depth
	cfg.MaxCommitted = p.MaxCommitted
	prog := buildProgram(w, p.BuildIters)
	p.progress("depth %d on %s (%s)", depth, w.Name, sp.Predictor)
	var sim *pipeline.Sim
	if sp.Predictor == SAgSpec().Name {
		sim, err = pipeline.New(cfg, prog, SAgSpec().New(p))
	} else {
		cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
		sim, err = pipeline.New(cfg, prog, GshareSpec().New(p))
	}
	if err != nil {
		return CellResult{}, fmt.Errorf("depth %d %s %s: %w", depth, w.Name, sp.Predictor, err)
	}
	st, err := sim.Run()
	if err != nil {
		return CellResult{}, fmt.Errorf("depth %d %s %s: %w", depth, w.Name, sp.Predictor, err)
	}
	return CellResult{Stats: st}, nil
}

// AblationDepth runs the suite at resolve depths 2..8, one grid cell per
// (depth, workload, predictor).
func AblationDepth(p Params) (*AblationDepthResult, error) {
	var gridSpecs []runner.Spec
	for _, depth := range depthSweep {
		for _, w := range suite() {
			for _, pred := range []string{GshareSpec().Name, SAgSpec().Name} {
				gridSpecs = append(gridSpecs, runner.Spec{
					Experiment: "abl-depth", Workload: w.Name, Predictor: pred,
					Variant: fmt.Sprintf("d%d", depth),
				})
			}
		}
	}
	cells, err := p.runGrid(gridSpecs, depthCell)
	if err != nil {
		return nil, err
	}
	res := &AblationDepthResult{}
	i := 0
	for _, depth := range depthSweep {
		var committed, wrongPath uint64
		var gMispSum, sMispSum, ipcSum float64
		var jrsQ []metrics.Quadrant
		for range suite() {
			st := cells[i].Stats
			committed += st.Committed
			wrongPath += st.WrongPath
			gMispSum += st.MispredictRate()
			ipcSum += st.IPC()
			jrsQ = append(jrsQ, st.Confidence[0].CommittedQ)
			sMispSum += cells[i+1].Stats.MispredictRate()
			i += 2
		}
		n := float64(len(suite()))
		jrs := metrics.AggregateNormalized(jrsQ).Compute()
		res.Rows = append(res.Rows, DepthRow{
			ResolveDelay: depth,
			Ratio:        float64(committed+wrongPath) / float64(committed),
			MispGshare:   gMispSum / n,
			MispSAg:      sMispSum / n,
			JRSPVN:       jrs.PVN,
			JRSSpec:      jrs.Spec,
			IPC:          ipcSum / n,
		})
	}
	return res, nil
}

// Render prints the depth sweep.
func (r *AblationDepthResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Ablation: fetch-to-resolve depth (suite means)"))
	fmt.Fprintf(&b, "%6s %7s %8s %8s %8s %8s %6s\n",
		"depth", "ratio", "gshare", "sag", "jrs-pvn", "jrs-spec", "ipc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %7.3f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %6.2f\n",
			row.ResolveDelay, row.Ratio, row.MispGshare*100, row.MispSAg*100,
			row.JRSPVN*100, row.JRSSpec*100, row.IPC)
	}
	return b.String()
}
