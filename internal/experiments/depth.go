package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
)

// DepthRow is one resolve-depth configuration's suite means.
type DepthRow struct {
	ResolveDelay int
	Ratio        float64 // all/committed instructions
	MispGshare   float64
	MispSAg      float64
	JRSPVN       float64
	JRSSpec      float64
	IPC          float64
}

// AblationDepthResult sweeps the fetch-to-resolve depth, the machine
// parameter behind this reproduction's main deviation from the paper:
// deeper resolution means longer wrong-path excursions (higher
// speculation ratio, toward the paper's 1.2-2.0) but also staler
// non-speculative SAg history. The table shows both effects and that the
// JRS estimator's quality metrics are nearly depth-invariant — the
// estimators measure the branch stream, not the machine.
type AblationDepthResult struct {
	Rows []DepthRow
}

// AblationDepth runs the suite at resolve depths 2..8.
func AblationDepth(p Params) (*AblationDepthResult, error) {
	res := &AblationDepthResult{}
	for _, depth := range []int{2, 3, 5, 8} {
		var committed, wrongPath uint64
		var gMispSum, sMispSum, ipcSum float64
		var jrsQ []metrics.Quadrant
		for _, w := range suite() {
			cfg := p.Pipeline
			cfg.ResolveDelay = depth
			cfg.MaxCommitted = p.MaxCommitted
			prog := w.Build(p.BuildIters)
			p.progress("depth %d on %s", depth, w.Name)

			sim := pipeline.New(cfg, prog, GshareSpec().New(p), conf.NewJRS(conf.DefaultJRS))
			st, err := sim.Run()
			if err != nil {
				return nil, fmt.Errorf("depth %d %s: %w", depth, w.Name, err)
			}
			committed += st.Committed
			wrongPath += st.WrongPath
			gMispSum += st.MispredictRate()
			ipcSum += st.IPC()
			jrsQ = append(jrsQ, st.Confidence[0].CommittedQ)

			sag := pipeline.New(cfg, prog, SAgSpec().New(p))
			sst, err := sag.Run()
			if err != nil {
				return nil, fmt.Errorf("depth %d %s sag: %w", depth, w.Name, err)
			}
			sMispSum += sst.MispredictRate()
		}
		n := float64(len(suite()))
		jrs := metrics.AggregateNormalized(jrsQ).Compute()
		res.Rows = append(res.Rows, DepthRow{
			ResolveDelay: depth,
			Ratio:        float64(committed+wrongPath) / float64(committed),
			MispGshare:   gMispSum / n,
			MispSAg:      sMispSum / n,
			JRSPVN:       jrs.PVN,
			JRSSpec:      jrs.Spec,
			IPC:          ipcSum / n,
		})
	}
	return res, nil
}

// Render prints the depth sweep.
func (r *AblationDepthResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Ablation: fetch-to-resolve depth (suite means)"))
	fmt.Fprintf(&b, "%6s %7s %8s %8s %8s %8s %6s\n",
		"depth", "ratio", "gshare", "sag", "jrs-pvn", "jrs-spec", "ipc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %7.3f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %6.2f\n",
			row.ResolveDelay, row.Ratio, row.MispGshare*100, row.MispSAg*100,
			row.JRSPVN*100, row.JRSSpec*100, row.IPC)
	}
	return b.String()
}
