package experiments

import (
	"testing"

	"specctrl/internal/conf"
	"specctrl/internal/replay"
	"specctrl/internal/workload"
)

// fig45Configs is the Fig 4/5 JRS sweep shape: five table sizes, the
// full threshold ladder of 4-bit counters, enhanced indexing — 80
// estimator configurations over one (workload, predictor) pair. This
// is the workload the record/replay layer was built for.
func fig45Configs() []conf.JRSConfig {
	sizes := []int{256, 512, 1024, 2048, 4096}
	var configs []conf.JRSConfig
	for _, n := range sizes {
		for _, t := range thresholds(4) {
			configs = append(configs, conf.JRSConfig{Entries: n, Bits: 4, Threshold: t, Enhanced: true})
		}
	}
	return configs
}

func benchEstimators(cfgs []conf.JRSConfig, lo, hi int) []conf.Estimator {
	ests := make([]conf.Estimator, hi-lo)
	for j := lo; j < hi; j++ {
		ests[j-lo] = conf.NewJRS(cfgs[j])
	}
	return ests
}

// BenchmarkSweepDirect measures the pre-replay evaluation strategy: one
// direct simulation carrying all 80 estimators through the pipeline.
// It is the baseline BenchmarkSweepReplay is gated against (the ≥2×
// pre_replay_seed entries in BENCH_PIPELINE.json).
func BenchmarkSweepDirect(b *testing.B) {
	p := DefaultParams()
	p.MaxCommitted = 200_000
	p.Replay = ReplayOff
	w, _ := workload.ByName("gcc")
	spec, _ := predictorByName("gshare")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfgs := fig45Configs()
		if _, err := p.runOne(w, spec, false, benchEstimators(cfgs, 0, len(cfgs))...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepReplay measures the replay strategy end to end from a
// cold cache: record the estimator-visible event stream once, then
// replay it for the 80 configurations in runner-sized batches. The
// fresh cache per iteration charges the recording to every iteration —
// this is the worst case; sweeps that share traces across experiments
// (or across benchmark iterations) only pay the replay part.
func BenchmarkSweepReplay(b *testing.B) {
	w, _ := workload.ByName("gcc")
	spec, _ := predictorByName("gshare")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.MaxCommitted = 200_000
		p.TraceCache = replay.NewCache(0, nil)
		cfgs := fig45Configs()
		for lo := 0; lo < len(cfgs); lo += replayBatch {
			hi := min(lo+replayBatch, len(cfgs))
			if _, _, err := p.replayConfs(w, spec, benchEstimators(cfgs, lo, hi)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// suiteCells is the arch-eligible evaluation shape the suite
// benchmarks below measure: all three predictor families over one
// workload, each with a small mixed estimator panel — the per-workload
// work a table2-style grid does.
var suiteCells = []string{"gshare", "mcfarling", "sag"}

func suitePanel() []conf.Estimator {
	return []conf.Estimator{
		conf.NewJRS(conf.DefaultJRS),
		conf.SatCounters{},
		conf.NewPatternHistory(12),
		conf.NewDistance(3),
	}
}

// BenchmarkSuiteEvents measures the event-tier strategy on the
// arch-eligible shape, from a cold cache: one event recording per
// predictor (the event stream is predictor-dependent), then an
// estimator replay of each. It is the baseline BenchmarkSuiteArch is
// gated against (the ≥2× pre_arch_seed entries in BENCH_PIPELINE.json).
func BenchmarkSuiteEvents(b *testing.B) {
	w, _ := workload.ByName("gcc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.MaxCommitted = 200_000
		p.Replay = ReplayEvents
		p.TraceCache = replay.NewCache(0, nil)
		for _, pred := range suiteCells {
			spec, _ := predictorByName(pred)
			if _, err := p.evalEstimators(w, spec, suitePanel()...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuiteArch measures the arch-tier strategy on the same shape,
// from a cold cache: one committed-stream recording for the workload
// (shared by every predictor) plus one trace-driven evaluation per
// predictor.
func BenchmarkSuiteArch(b *testing.B) {
	w, _ := workload.ByName("gcc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.MaxCommitted = 200_000
		p.Replay = ReplayArch
		p.ArchCache = replay.NewArchCache(0, nil)
		for _, pred := range suiteCells {
			spec, _ := predictorByName(pred)
			if _, err := p.archEval(w, spec, suitePanel()...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepReplayWarm isolates the replay cost once the trace is
// resident — the steady-state cost of adding one more estimator sweep
// to a cached (workload, predictor) pair.
func BenchmarkSweepReplayWarm(b *testing.B) {
	p := DefaultParams()
	p.MaxCommitted = 200_000
	p.TraceCache = replay.NewCache(0, nil)
	w, _ := workload.ByName("gcc")
	spec, _ := predictorByName("gshare")
	if _, _, err := p.traceFor(w, spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs := fig45Configs()
		for lo := 0; lo < len(cfgs); lo += replayBatch {
			hi := min(lo+replayBatch, len(cfgs))
			if _, _, err := p.replayConfs(w, spec, benchEstimators(cfgs, lo, hi)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
