package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/plot"
	"specctrl/internal/workload"
)

// SweepPoint is one JRS configuration's suite-mean metrics.
type SweepPoint struct {
	Entries   int
	Threshold int
	Enhanced  bool
	Metrics   metrics.Metrics
}

// Fig3Result reproduces Figure 3: the base JRS (shared index) against the
// enhanced JRS (prediction folded into the index) across the full
// threshold sweep, under gshare.
type Fig3Result struct {
	Base     []SweepPoint
	Enhanced []SweepPoint
}

// jrsSweep runs one grid cell per workload on the given predictor with
// one JRS estimator per (entries, threshold, enhanced) configuration and
// returns suite-normalized metrics per configuration. exp names the
// experiment in the cells' spec keys.
func jrsSweep(p Params, exp string, spec PredictorSpec, configs []conf.JRSConfig) ([]SweepPoint, error) {
	perCfg := make([][]metrics.Quadrant, len(configs))
	stats, err := p.suiteStats(exp, spec, "sweep", len(configs),
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) {
			ests := make([]conf.Estimator, len(configs))
			for i, c := range configs {
				ests[i] = conf.NewJRS(c)
			}
			return ests, nil
		})
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range configs {
			perCfg[i] = append(perCfg[i], st.Confidence[i].CommittedQ)
		}
	}
	points := make([]SweepPoint, len(configs))
	for i, c := range configs {
		points[i] = SweepPoint{
			Entries:   c.Entries,
			Threshold: c.Threshold,
			Enhanced:  c.Enhanced,
			Metrics:   metrics.AggregateNormalized(perCfg[i]).Compute(),
		}
	}
	return points, nil
}

// thresholds returns the sweep 1..max (max = 2^bits reaches the
// all-low-confidence end point the paper plots).
func thresholds(bits uint) []int {
	var out []int
	for t := 1; t <= 1<<bits; t++ {
		out = append(out, t)
	}
	return out
}

// Fig3 runs the base-vs-enhanced comparison on gshare with the paper's
// 4096-entry 4-bit MDC table.
func Fig3(p Params) (*Fig3Result, error) {
	var configs []conf.JRSConfig
	for _, enh := range []bool{false, true} {
		for _, t := range thresholds(4) {
			configs = append(configs, conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: t, Enhanced: enh})
		}
	}
	pts, err := jrsSweep(p, "fig3", GshareSpec(), configs)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{}
	for _, pt := range pts {
		if pt.Enhanced {
			res.Enhanced = append(res.Enhanced, pt)
		} else {
			res.Base = append(res.Base, pt)
		}
	}
	return res, nil
}

func renderSweep(b *strings.Builder, label string, pts []SweepPoint) {
	fmt.Fprintf(b, "%s\n", label)
	fmt.Fprintf(b, "  %5s %5s %5s %5s %5s\n", "thr", "sens", "spec", "pvp", "pvn")
	for _, pt := range pts {
		m := pt.Metrics
		fmt.Fprintf(b, "  %5d %s %s %s %s\n",
			pt.Threshold, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
	}
}

// Render prints both threshold sweeps and a PVN-vs-threshold chart.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Figure 3: JRS base vs enhanced (gshare, 4096x4-bit MDC)"))
	renderSweep(&b, "base (shared index)", r.Base)
	renderSweep(&b, "enhanced (prediction in index)", r.Enhanced)
	pvn := func(pts []SweepPoint) []float64 {
		out := make([]float64, 0, len(pts))
		for _, pt := range pts {
			out = append(out, pt.Metrics.PVN)
		}
		return out
	}
	cfg := plot.DefaultConfig()
	cfg.XLabel = "threshold"
	b.WriteString("\n")
	b.WriteString(plot.Render(cfg,
		plot.Series{Name: "base PVN", Mark: 'o', Values: pvn(r.Base)},
		plot.Series{Name: "enhanced PVN", Mark: '*', Values: pvn(r.Enhanced)},
	))
	return b.String()
}

// Fig45Result reproduces Figures 4 and 5: the JRS design space — number
// of MDC entries crossed with the threshold sweep — under one predictor.
type Fig45Result struct {
	Predictor string
	// Lines maps each table size to its threshold sweep.
	Lines map[int][]SweepPoint
	Sizes []int
}

// Fig45 sweeps MDC entries {256..4096} × thresholds {1..16} on the given
// predictor spec (gshare for Figure 4, McFarling for Figure 5).
func Fig45(p Params, spec PredictorSpec) (*Fig45Result, error) {
	sizes := []int{256, 512, 1024, 2048, 4096}
	var configs []conf.JRSConfig
	for _, n := range sizes {
		for _, t := range thresholds(4) {
			configs = append(configs, conf.JRSConfig{Entries: n, Bits: 4, Threshold: t, Enhanced: true})
		}
	}
	pts, err := jrsSweep(p, "fig45", spec, configs)
	if err != nil {
		return nil, err
	}
	res := &Fig45Result{Predictor: spec.Name, Lines: map[int][]SweepPoint{}, Sizes: sizes}
	for _, pt := range pts {
		res.Lines[pt.Entries] = append(res.Lines[pt.Entries], pt)
	}
	return res, nil
}

// Render prints one threshold sweep per table size.
func (r *Fig45Result) Render() string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 4/5: JRS design space (%s)", r.Predictor)))
	for _, n := range r.Sizes {
		renderSweep(&b, fmt.Sprintf("%d-entry MDC table", n), r.Lines[n])
	}
	return b.String()
}
