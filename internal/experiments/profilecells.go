package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"specctrl/internal/obs/span"
)

// Per-cell cost reporting (-profile-cells): a table of the slowest grid
// cells built from the runner's "cell:" spans, so a sweep's wall time
// can be attributed without opening the trace file.

// cellCost is one row of the report.
type cellCost struct {
	key     string
	wall    float64 // seconds
	cycles  int64   // simulated cycles (0 when unknown, e.g. cache hits without stats)
	source  string  // compute | cache | cells-in
	worker  int64
	stolen  bool
	waitSec float64
}

// ProfileCells writes the n slowest grid cells among spans to w, one
// row per cell with its wall time, simulated cycles, simulation rate,
// where the result came from (compute/cache/cells-in), and which worker
// ran it. Spans that are not cell runs are ignored; with no cell spans
// (tracing off, or an all-cached run whose cells finished in
// microseconds) the report says so instead of printing an empty table.
func ProfileCells(w io.Writer, spans []span.Span, n int) {
	rows := make([]cellCost, 0, len(spans))
	var total float64
	for i := range spans {
		s := &spans[i]
		if !strings.HasPrefix(s.Name, "cell:") {
			continue
		}
		row := cellCost{
			key:  strings.TrimPrefix(s.Name, "cell:"),
			wall: s.Duration().Seconds(),
		}
		if v, ok := s.Attr("cycles").(int64); ok {
			row.cycles = v
		}
		if v, ok := s.Attr("source").(string); ok {
			row.source = v
		}
		if v, ok := s.Attr("worker").(int64); ok {
			row.worker = v
		}
		if v, ok := s.Attr("stolen").(bool); ok {
			row.stolen = v
		}
		if v, ok := s.Attr("wait_ns").(int64); ok {
			row.waitSec = float64(v) / 1e9
		}
		rows = append(rows, row)
		total += row.wall
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "profile-cells: no cell spans recorded (tracing disabled or nothing ran)")
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].wall != rows[j].wall {
			return rows[i].wall > rows[j].wall
		}
		return rows[i].key < rows[j].key // stable order for equal times
	})
	if n > len(rows) {
		n = len(rows)
	}
	fmt.Fprintf(w, "slowest %d of %d cells (%.2fs total cell wall time):\n", n, len(rows), total)
	fmt.Fprintf(w, "  %-42s %9s %12s %9s %-8s %s\n",
		"cell", "wall", "cycles", "Mcyc/s", "source", "worker")
	for _, r := range rows[:n] {
		rate := "-"
		if r.cycles > 0 && r.wall > 0 {
			rate = fmt.Sprintf("%.1f", float64(r.cycles)/r.wall/1e6)
		}
		worker := fmt.Sprintf("%d", r.worker)
		if r.stolen {
			worker += " (stolen)"
		}
		fmt.Fprintf(w, "  %-42s %8.3fs %12d %9s %-8s %s\n",
			r.key, r.wall, r.cycles, rate, r.source, worker)
	}
}
