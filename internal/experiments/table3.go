package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/workload"
)

// Table3Row is one benchmark's comparison of the two McFarling
// saturating-counter variants (paper Table 3).
type Table3Row struct {
	Name   string
	Both   metrics.Metrics
	Either metrics.Metrics
	BothQ  metrics.Quadrant
	EithQ  metrics.Quadrant
}

// Table3Result reproduces the paper's Table 3: Both-Strong vs
// Either-Strong per application under the McFarling predictor.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs one McFarling cell per workload with both variants
// attached, through the arch tier when eligible.
func Table3(p Params) (*Table3Result, error) {
	stats, err := p.suiteStatsArch("table3", McFarlingSpec(), "main", 2,
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) {
			return []conf.Estimator{
				conf.SatCountersMcFarling{Variant: conf.BothStrong},
				conf.SatCountersMcFarling{Variant: conf.EitherStrong},
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for i, w := range suite() {
		st := stats[i]
		res.Rows = append(res.Rows, Table3Row{
			Name:   w.Name,
			Both:   st.Confidence[0].CommittedQ.Compute(),
			Either: st.Confidence[1].CommittedQ.Compute(),
			BothQ:  st.Confidence[0].CommittedQ,
			EithQ:  st.Confidence[1].CommittedQ,
		})
	}
	return res, nil
}

// Mean returns the suite means computed with the paper's aggregation
// rule (normalized quadrants, ratios recomputed).
func (r *Table3Result) Mean() (both, either metrics.Metrics) {
	var bq, eq []metrics.Quadrant
	for _, row := range r.Rows {
		bq = append(bq, row.BothQ)
		eq = append(eq, row.EithQ)
	}
	return metrics.AggregateNormalized(bq).Compute(), metrics.AggregateNormalized(eq).Compute()
}

// Render produces the paper-style text table.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Table 3: Both-Strong vs Either-Strong (McFarling predictor)"))
	fmt.Fprintf(&b, "%-9s | %-24s | %-24s\n", "", "Both Strong", "Either Strong")
	fmt.Fprintf(&b, "%-9s | %4s %4s %4s %4s | %4s %4s %4s %4s\n",
		"app", "sens", "spec", "pvp", "pvn", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s | %s %s %s %s | %s %s %s %s\n", row.Name,
			pct(row.Both.Sens), pct(row.Both.Spec), pct(row.Both.PVP), pct(row.Both.PVN),
			pct(row.Either.Sens), pct(row.Either.Spec), pct(row.Either.PVP), pct(row.Either.PVN))
	}
	mb, me := r.Mean()
	fmt.Fprintf(&b, "%-9s | %s %s %s %s | %s %s %s %s\n", "mean",
		pct(mb.Sens), pct(mb.Spec), pct(mb.PVP), pct(mb.PVN),
		pct(me.Sens), pct(me.Spec), pct(me.PVP), pct(me.PVN))
	return b.String()
}
