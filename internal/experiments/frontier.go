package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/runner"
)

// The frontier experiment maps the speculation-control design space the
// policy layer opens up: for each (policy, estimator) operating point it
// measures how many cycles of misspeculation the policy reclaims against
// how much throughput it costs, as suite means over the paper's
// workloads. Pipeline gating (gate:t), variable fetch-rate throttling
// (throttle:w0,w1,...) and patience-based gating (boost:t,p) are all
// driven through the same pipeline.Policy installation, so their
// operating points are directly comparable — the energy/performance
// frontier the paper's §2.2 applications argue about.

// frontierPolicies are the policy operating points the frontier sweeps,
// as canonical policy.Parse specs (Parse round-trips Name(), so the
// spec strings double as table labels and cell-variant keys).
func frontierPolicies() []string {
	return []string{
		"gate:1", "gate:2", "gate:3",
		"throttle:4,2,1", "throttle:4,1",
		"boost:2,4",
	}
}

// frontierEstimators are the confidence sources the frontier crosses
// with every policy.
func frontierEstimators() []struct {
	name string
	mk   func() conf.Estimator
} {
	return []struct {
		name string
		mk   func() conf.Estimator
	}{
		{"JRS(t=15)", func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }},
		{"SatCnt", func() conf.Estimator { return conf.SatCounters{} }},
	}
}

// FrontierPoint is one (estimator, policy) operating point, suite means.
type FrontierPoint struct {
	Estimator string
	Policy    string
	GatedFrac float64 // share of cycles the policy withheld fetch
	Reduction float64 // wrong-path instructions removed vs baseline
	SpecSaved float64 // misspeculation cycle share reclaimed (points)
	IPCLost   float64 // 1 - policied IPC / baseline IPC
}

// FrontierResult is the frontier table: per estimator, the unpolicied
// baseline anchors the policied operating points.
type FrontierResult struct {
	Points []FrontierPoint
}

// frontierCell is the suite-mean measurement one frontier grid cell
// produces (baseline cells use the same shape with zero gating).
const (
	frontierIPC    = "ipc"     // suite-mean IPC
	frontierEW     = "ew"      // suite-mean wrong-path / committed
	frontierSpecOH = "specoh"  // suite-mean misspeculation cycle share
	frontierGated  = "gated"   // suite-mean gated cycle share
	frontierBase   = "no-ctrl" // the baseline cell's variant suffix
)

// Frontier sweeps policies x estimators over the suite with gshare, one
// grid cell per (estimator, policy-or-baseline). Policies perturb fetch
// timing, so every cell simulates directly — the replay path never
// applies here — and each cell rebuilds its own programs and components
// per the grid isolation rules.
func Frontier(p Params) (*FrontierResult, error) {
	ests := frontierEstimators()
	variants := append([]string{frontierBase}, frontierPolicies()...)
	var gridSpecs []runner.Spec
	for _, e := range ests {
		for _, v := range variants {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "frontier", Workload: "suite", Predictor: "gshare",
				Variant: e.name + "|" + v,
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		estName, spec, ok := strings.Cut(sp.Variant, "|")
		if !ok {
			return CellResult{}, fmt.Errorf("frontier: bad variant %q", sp.Variant)
		}
		var mk func() conf.Estimator
		for _, e := range ests {
			if e.name == estName {
				mk = e.mk
			}
		}
		if mk == nil {
			return CellResult{}, fmt.Errorf("frontier: unknown estimator %q", estName)
		}
		var pol pipeline.Policy
		if spec != frontierBase {
			var err error
			if pol, err = policy.Parse(spec); err != nil {
				return CellResult{}, fmt.Errorf("frontier: %w", err)
			}
		}
		p.progress("frontier %s %s", estName, spec)
		var ipc, ew, specOH, gated float64
		n := 0
		for _, w := range suite() {
			cfg := p.Pipeline
			cfg.MaxCommitted = p.MaxCommitted
			cfg.Estimators = []conf.Estimator{mk()}
			cfg.Policy = pol
			sim, err := pipeline.New(cfg, buildProgram(w, p.BuildIters), bpred.NewGshare(p.GshareBits))
			if err != nil {
				return CellResult{}, fmt.Errorf("frontier %s: %w", sp.Key(), err)
			}
			st, err := sim.Run()
			if err != nil {
				return CellResult{}, fmt.Errorf("frontier %s/%s: %w", sp.Key(), w.Name, err)
			}
			ipc += st.IPC()
			if st.Committed > 0 {
				ew += float64(st.WrongPath) / float64(st.Committed)
			}
			specOH += st.CycleAccounts.SpeculationOverhead()
			gated += st.CycleAccounts.Fraction(pipeline.BucketGated)
			n++
		}
		fn := float64(n)
		return CellResult{Extra: map[string]float64{
			frontierIPC:    ipc / fn,
			frontierEW:     ew / fn,
			frontierSpecOH: specOH / fn,
			frontierGated:  gated / fn,
		}}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &FrontierResult{}
	i := 0
	for _, e := range ests {
		base := cells[i].Extra
		i++
		for _, spec := range frontierPolicies() {
			cell := cells[i].Extra
			i++
			pt := FrontierPoint{
				Estimator: e.name,
				Policy:    spec,
				GatedFrac: cell[frontierGated],
				SpecSaved: base[frontierSpecOH] - cell[frontierSpecOH],
			}
			if base[frontierEW] > 0 {
				pt.Reduction = 1 - cell[frontierEW]/base[frontierEW]
			}
			if base[frontierIPC] > 0 {
				pt.IPCLost = 1 - cell[frontierIPC]/base[frontierIPC]
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Render prints the frontier table.
func (r *FrontierResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Speculation-control frontier: cycles saved vs IPC lost (gshare, suite means)"))
	fmt.Fprintf(&b, "%-10s %-15s | %6s %8s | %10s %9s\n",
		"estimator", "policy", "gated", "ew-red", "spec-saved", "ipc-lost")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10s %-15s | %5.1f%% %7.1f%% | %+9.1fpp %8.2f%%\n",
			pt.Estimator, pt.Policy, pt.GatedFrac*100, pt.Reduction*100,
			pt.SpecSaved*100, pt.IPCLost*100)
	}
	b.WriteString("Reading the table: spec-saved is the misspeculation cycle share\n")
	b.WriteString("(wrong-path fetch + recovery) the policy reclaims, in points; the\n")
	b.WriteString("frontier trades it against ipc-lost. gate:t stalls fetch outright,\n")
	b.WriteString("throttle narrows it, boost waits out short low-confidence bursts.\n")
	return b.String()
}
