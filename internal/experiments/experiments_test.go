package experiments

import (
	"strings"
	"testing"
)

// tp returns small-but-meaningful test parameters. Experiments sharing
// results cache them per test binary via package-level vars below, since
// several shape assertions read the same tables.
func tp() Params {
	return TestParams()
}

var (
	table1Cache *Table1Result
	table2Cache *Table2Result
)

func getTable1(t *testing.T) *Table1Result {
	t.Helper()
	if table1Cache == nil {
		r, err := Table1(tp())
		if err != nil {
			t.Fatal(err)
		}
		table1Cache = r
	}
	return table1Cache
}

func getTable2(t *testing.T) *Table2Result {
	t.Helper()
	if table2Cache == nil {
		r, err := Table2(tp())
		if err != nil {
			t.Fatal(err)
		}
		table2Cache = r
	}
	return table2Cache
}

func TestTable1Shape(t *testing.T) {
	r := getTable1(t)
	if len(r.Rows) != 8 {
		t.Fatalf("table 1 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Committed == 0 || row.CommittedBr == 0 {
			t.Errorf("%s: empty row", row.Name)
		}
		if row.Ratio < 1.0 || row.Ratio > 3.0 {
			t.Errorf("%s: speculation ratio %.2f implausible", row.Name, row.Ratio)
		}
		if row.MispGshare <= 0 || row.MispGshare > 0.5 {
			t.Errorf("%s: gshare misprediction %.3f implausible", row.Name, row.MispGshare)
		}
	}
	// The paper's Table 1 property: speculation inflates instruction
	// counts by 20-100%; on the suite mean we accept 5-100%.
	mean := r.Mean()
	if mean.Ratio < 1.05 || mean.Ratio > 2.0 {
		t.Errorf("mean speculation ratio %.2f outside [1.05, 2.0]", mean.Ratio)
	}
	// McFarling must beat gshare on average (it's the point of the
	// combining predictor).
	if mean.MispMcF >= mean.MispGshare {
		t.Errorf("mcfarling (%.3f) should beat gshare (%.3f)", mean.MispMcF, mean.MispGshare)
	}
	if !strings.Contains(r.Render(), "compress") {
		t.Error("render missing benchmark rows")
	}
}

func TestTable2Shape(t *testing.T) {
	r := getTable2(t)
	if len(r.Cells) != 4 || len(r.Cells[0]) != 3 {
		t.Fatalf("table 2 wrong shape: %dx%d", len(r.Cells), len(r.Cells[0]))
	}

	jrsG, _ := r.Cell("JRS(>=15)", "gshare")
	satG, _ := r.Cell("SatCnt", "gshare")
	patG, _ := r.Cell("HistPattern", "gshare")
	staG, _ := r.Cell("Static(>90%)", "gshare")
	jrsM, _ := r.Cell("JRS(>=15)", "mcfarling")
	patS, _ := r.Cell("HistPattern", "sag")

	// Paper shape: JRS has the highest PVP of the four on gshare.
	for _, c := range []Table2Cell{satG, patG, staG} {
		if jrsG.Metrics.PVP < c.Metrics.PVP-0.02 {
			t.Errorf("JRS PVP %.3f should be at or near the top (vs %s %.3f)",
				jrsG.Metrics.PVP, c.Estimator, c.Metrics.PVP)
		}
	}
	// Saturating counters trade PVP for sensitivity on gshare: highest
	// SENS, lower SPEC than JRS.
	if satG.Metrics.Sens <= jrsG.Metrics.Sens {
		t.Errorf("SatCnt SENS %.3f should exceed JRS %.3f on gshare",
			satG.Metrics.Sens, jrsG.Metrics.Sens)
	}
	if satG.Metrics.Spec >= jrsG.Metrics.Spec {
		t.Errorf("SatCnt SPEC %.3f should be below JRS %.3f on gshare",
			satG.Metrics.Spec, jrsG.Metrics.Spec)
	}
	// Pattern history collapses on global-history predictors: low SENS,
	// high SPEC (it marks nearly everything low-confidence).
	if patG.Metrics.Sens > 0.5 {
		t.Errorf("HistPattern SENS %.3f on gshare should be low", patG.Metrics.Sens)
	}
	if patG.Metrics.Spec < 0.7 {
		t.Errorf("HistPattern SPEC %.3f on gshare should be high", patG.Metrics.Spec)
	}
	// ... and recovers dramatically on SAg (per-branch histories).
	if patS.Metrics.Sens <= patG.Metrics.Sens+0.1 {
		t.Errorf("HistPattern SENS should jump on SAg: gshare %.3f, sag %.3f",
			patG.Metrics.Sens, patS.Metrics.Sens)
	}
	// The more accurate McFarling predictor lowers the JRS PVN.
	if jrsM.Metrics.PVN >= jrsG.Metrics.PVN {
		t.Errorf("JRS PVN should fall from gshare (%.3f) to mcfarling (%.3f)",
			jrsG.Metrics.PVN, jrsM.Metrics.PVN)
	}
	if !strings.Contains(r.Render(), "JRS") {
		t.Error("render missing rows")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("table 3 has %d rows", len(r.Rows))
	}
	both, either := r.Mean()
	// §3.3.1: Both-Strong has higher SPEC; Either-Strong has higher SENS.
	if both.Spec <= either.Spec {
		t.Errorf("BothStrong SPEC %.3f should exceed EitherStrong %.3f", both.Spec, either.Spec)
	}
	if either.Sens <= both.Sens {
		t.Errorf("EitherStrong SENS %.3f should exceed BothStrong %.3f", either.Sens, both.Sens)
	}
	// Both-Strong marks fewer branches high confidence overall.
	var bHC, eHC uint64
	for _, row := range r.Rows {
		bHC += row.BothQ.Chc + row.BothQ.Ihc
		eHC += row.EithQ.Chc + row.EithQ.Ihc
	}
	if bHC >= eHC {
		t.Error("BothStrong should mark fewer branches high confidence")
	}
	if !strings.Contains(r.Render(), "mean") {
		t.Error("render missing mean row")
	}
}

func TestTable4Shape(t *testing.T) {
	r, err := Table4(tp())
	if err != nil {
		t.Fatal(err)
	}
	// 10 rows per predictor (JRS, SatCnt, Static, Distance 1..7) plus
	// the SAg pattern row.
	if len(r.Rows) != 21 {
		t.Fatalf("table 4 has %d rows, want 21", len(r.Rows))
	}
	// Raising the distance threshold must raise SPEC and lower SENS
	// monotonically (more branches marked low confidence).
	for _, pred := range []string{"gshare", "mcfarling"} {
		prevSpec, prevSens := -1.0, 2.0
		for d := 1; d <= 7; d++ {
			row, ok := r.Find("Distance >"+string(rune('0'+d)), pred)
			if !ok {
				t.Fatalf("missing distance row %d/%s", d, pred)
			}
			if row.Metrics.Spec < prevSpec-0.01 {
				t.Errorf("%s distance %d: SPEC %.3f not increasing", pred, d, row.Metrics.Spec)
			}
			if row.Metrics.Sens > prevSens+0.01 {
				t.Errorf("%s distance %d: SENS %.3f not decreasing", pred, d, row.Metrics.Sens)
			}
			prevSpec, prevSens = row.Metrics.Spec, row.Metrics.Sens
		}
	}
	// PVN falls when moving from gshare to the more accurate McFarling,
	// for the JRS row (the paper's general observation).
	jg, _ := r.Find("JRS >=15", "gshare")
	jm, _ := r.Find("JRS >=15", "mcfarling")
	if jm.Metrics.PVN >= jg.Metrics.PVN {
		t.Errorf("JRS PVN should fall from gshare %.3f to mcfarling %.3f",
			jg.Metrics.PVN, jm.Metrics.PVN)
	}
	if !strings.Contains(r.Render(), "Distance") {
		t.Error("render missing distance rows")
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1(tp())
	if len(r.Curves) != 6 {
		t.Fatalf("figure 1 has %d curves, want 6", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Points) != 10 {
			t.Errorf("%s: %d points, want 10 deciles", c.Label, len(c.Points))
		}
		for _, pt := range c.Points {
			if pt.PVP < 0 || pt.PVP > 1 || pt.PVN < 0 || pt.PVN > 1 {
				t.Errorf("%s: point out of range: %+v", c.Label, pt)
			}
		}
	}
	// The vary-SPEC curves must be monotone in PVP.
	c := r.Curves[0]
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].PVP < c.Points[i-1].PVP {
			t.Errorf("%s: PVP not monotone in SPEC", c.Label)
		}
	}
	if !strings.Contains(r.Render(), "vary SENS") {
		t.Error("render missing curves")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Base) != 16 || len(r.Enhanced) != 16 {
		t.Fatalf("fig3 sweeps wrong length: %d/%d", len(r.Base), len(r.Enhanced))
	}
	// The paper's Figure 3 point: the enhanced variant dominates.
	// Compare PVN at matched SPEC-ish thresholds: check that for most
	// thresholds, enhanced PVP and PVN are at least the base values.
	wins, losses := 0, 0
	for i := range r.Base {
		be, en := r.Base[i].Metrics, r.Enhanced[i].Metrics
		if en.PVP+en.PVN >= be.PVP+be.PVN {
			wins++
		} else {
			losses++
		}
	}
	if wins <= losses {
		t.Errorf("enhanced JRS should dominate base: %d wins %d losses", wins, losses)
	}
	// Threshold 16 is unreachable: everything low confidence, so PVN
	// equals the misprediction rate and SENS is 0.
	last := r.Enhanced[15]
	if last.Threshold != 16 || last.Metrics.Sens != 0 {
		t.Errorf("threshold-16 endpoint wrong: %+v", last)
	}
	if last.Metrics.PVN < 0.01 || last.Metrics.PVN > 0.5 {
		t.Errorf("threshold-16 PVN %.3f should equal the misprediction rate", last.Metrics.PVN)
	}
}

func TestFig45Shape(t *testing.T) {
	r, err := Fig45(tp(), GshareSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 5 {
		t.Fatalf("fig4 has %d sizes", len(r.Sizes))
	}
	for _, n := range r.Sizes {
		if len(r.Lines[n]) != 16 {
			t.Errorf("size %d: %d points", n, len(r.Lines[n]))
		}
	}
	// Larger tables should not hurt: compare PVP at threshold 15
	// between the smallest and largest tables (aliasing hurts small
	// tables).
	small := r.Lines[256][14].Metrics
	large := r.Lines[4096][14].Metrics
	if large.PVP+0.03 < small.PVP {
		t.Errorf("4096-entry PVP %.3f should not trail 256-entry %.3f by >3%%",
			large.PVP, small.PVP)
	}
	// Raising the threshold raises SPEC monotonically along a line.
	for _, n := range r.Sizes {
		prev := -1.0
		for _, pt := range r.Lines[n] {
			if pt.Metrics.Spec < prev-0.01 {
				t.Errorf("size %d: SPEC not increasing with threshold", n)
			}
			prev = pt.Metrics.Spec
		}
	}
}

func TestFigDistanceShape(t *testing.T) {
	precise, err := FigDistance(tp(), GshareSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	perceived, err := FigDistance(tp(), GshareSpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Clustering: the precise all-branches rate at distance 1-2 must
	// exceed the average rate.
	near := (precise.All.Rate[0] + precise.All.Rate[1]) / 2
	if near <= precise.All.Average {
		t.Errorf("precise distance-1/2 rate %.3f should exceed average %.3f",
			near, precise.All.Average)
	}
	// The far tail should drop to or below the average.
	far := precise.All.Rate[maxPlotDistance-1]
	if far > precise.All.Average*1.5 {
		t.Errorf("far-tail rate %.3f should approach average %.3f", far, precise.All.Average)
	}
	// Perceived curves are skewed right: the mass at short distances is
	// smaller than in the precise view.
	var precShort, percShort uint64
	for d := 0; d < 3; d++ {
		precShort += precise.All.Count[d]
		percShort += perceived.All.Count[d]
	}
	if percShort > precShort {
		t.Errorf("perceived short-distance mass %d should not exceed precise %d",
			percShort, precShort)
	}
	if !strings.Contains(precise.Render(), "dist") {
		t.Error("render missing table")
	}
}

func TestMisestShape(t *testing.T) {
	r, err := Misest(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("misest has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Average <= 0 || row.Average >= 0.6 {
			t.Errorf("%s/%s: average mis-estimation rate %.3f implausible",
				row.Estimator, row.Predictor, row.Average)
		}
		// §4.1: mis-estimations are only slightly clustered — the rate
		// immediately after an error exceeds the far-distance rate.
		if row.Rate[0] <= row.Rate[len(row.Rate)-1]*0.8 {
			t.Errorf("%s/%s: no near-distance elevation: d1=%.3f dmax=%.3f",
				row.Estimator, row.Predictor, row.Rate[0], row.Rate[len(row.Rate)-1])
		}
	}
}

func TestBoostShape(t *testing.T) {
	r, err := Boost(tp(), GshareSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("boost has %d rows", len(r.Rows))
	}
	if r.Rows[0].Groups == 0 {
		t.Fatal("no low-confidence events observed")
	}
	// k=1 measured PVN must be close to the estimator's base PVN.
	if d := r.Rows[0].MeasuredPVN - r.BasePVN; d > 0.08 || d < -0.08 {
		t.Errorf("k=1 measured PVN %.3f far from base %.3f", r.Rows[0].MeasuredPVN, r.BasePVN)
	}
	// Boosting must help: measured PVN increases with k.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeasuredPVN <= r.Rows[i-1].MeasuredPVN {
			t.Errorf("boosted PVN not increasing at k=%d: %.3f <= %.3f",
				r.Rows[i].K, r.Rows[i].MeasuredPVN, r.Rows[i-1].MeasuredPVN)
		}
	}
	// The Bernoulli approximation should be in the right ballpark for
	// k=2 (mis-estimations are only slightly clustered).
	k2 := r.Rows[1]
	if k2.MeasuredPVN < k2.BernoulliPVN*0.6 || k2.MeasuredPVN > k2.BernoulliPVN*1.6 {
		t.Errorf("k=2 measured %.3f vs bernoulli %.3f: approximation broken",
			k2.MeasuredPVN, k2.BernoulliPVN)
	}
}

func TestAblationWidth(t *testing.T) {
	r, err := AblationWidth(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 10 {
		t.Fatalf("width ablation has %d points", len(r.Points))
	}
	// At saturation thresholds, wider counters are more specific: the
	// 6-bit/63 point must have SPEC at or above the 2-bit/3 point.
	var w2, w6 WidthPoint
	for _, pt := range r.Points {
		if pt.Bits == 2 && pt.Threshold == 3 {
			w2 = pt
		}
		if pt.Bits == 6 && pt.Threshold == 63 {
			w6 = pt
		}
	}
	if w6.Metrics.Spec < w2.Metrics.Spec {
		t.Errorf("6-bit SPEC %.3f should be >= 2-bit %.3f", w6.Metrics.Spec, w2.Metrics.Spec)
	}
	if !strings.Contains(r.Render(), "storage") {
		t.Error("render incomplete")
	}
}

func TestAblationSpecHistory(t *testing.T) {
	r, err := AblationSpecHistory(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's claim: non-speculative update slightly increases the
	// misprediction rate on average. Allow zero but not a decrease
	// beyond noise.
	if d := r.MeanDelta(); d < -0.005 {
		t.Errorf("non-speculative update should not reduce mispredictions: delta %.4f", d)
	}
	if !strings.Contains(r.Render(), "nonspec") {
		t.Error("render incomplete")
	}
}

func TestAblationGating(t *testing.T) {
	p := tp()
	p.MaxCommitted = 60_000 // 2 runs per (estimator, threshold, app)
	r, err := AblationGating(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// For each estimator, raising the threshold lowers both reduction
	// and slowdown (monotone trade-off).
	byEst := map[string][]GatingPoint{}
	for _, pt := range r.Points {
		byEst[pt.Estimator] = append(byEst[pt.Estimator], pt)
	}
	for est, pts := range byEst {
		for i := 1; i < len(pts); i++ {
			if pts[i].Reduction > pts[i-1].Reduction+0.02 {
				t.Errorf("%s: reduction not decreasing with threshold", est)
			}
		}
	}
}

func TestAblationIndirect(t *testing.T) {
	p := tp()
	p.MaxCommitted = 60_000
	r, err := AblationIndirect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Target prediction can only add wrong-path work.
		if row.BTBRatio+0.02 < row.BaseRatio {
			t.Errorf("%s: BTB ratio %.3f below base %.3f", row.Name, row.BTBRatio, row.BaseRatio)
		}
	}
	// xlisp is the call/ret-heavy benchmark: it must report returns.
	for _, row := range r.Rows {
		if row.Name == "xlisp" && row.Returns == 0 {
			t.Error("xlisp reported no returns")
		}
	}
}

func TestCostTable(t *testing.T) {
	r := Cost(tp())
	if len(r.Rows) < 6 {
		t.Fatal("cost table too small")
	}
	var jrs, sat int
	for _, row := range r.Rows {
		if row.Estimator == "JRS 4096x4" {
			jrs = row.StorageBits
		}
		if row.Estimator == "SatCnt" {
			sat = row.StorageBits
		}
	}
	if jrs != 16384 || sat != 0 {
		t.Errorf("costs wrong: jrs=%d sat=%d", jrs, sat)
	}
	if !strings.Contains(r.Render(), "notes") {
		t.Error("render incomplete")
	}
}

func TestCIRIndexingHypothesis(t *testing.T) {
	r, err := CIR(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	jrs, _ := r.Find("JRS(pc^hist)")
	cir, _ := r.Find("CIR(pc^hist)")
	gmdc, _ := r.Find("CIR(globalMDC)")
	// The paper's hypothesis: matched indexing (JRS, CIR) beats the
	// global-MDC-indexed table on the PVP/SPEC axis it was built for.
	if gmdc.Metrics.PVP >= jrs.Metrics.PVP || gmdc.Metrics.PVP >= cir.Metrics.PVP {
		t.Errorf("global-MDC CIR PVP %.3f should trail matched-index JRS %.3f / CIR %.3f",
			gmdc.Metrics.PVP, jrs.Metrics.PVP, cir.Metrics.PVP)
	}
	if !strings.Contains(r.Render(), "globalMDC") {
		t.Error("render incomplete")
	}
}

func TestJRSMcfShape(t *testing.T) {
	r, err := JRSMcf(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	plain, _ := r.Find("JRS t=15")
	both, _ := r.Find("JRSmcf-both t=15")
	// The conservative two-table variant must be at least as specific
	// as the single-table JRS (it requires both structures to agree).
	if both.Metrics.Spec+0.01 < plain.Metrics.Spec {
		t.Errorf("JRSmcf-both SPEC %.3f below plain JRS %.3f",
			both.Metrics.Spec, plain.Metrics.Spec)
	}
	// And correspondingly less sensitive.
	if both.Metrics.Sens > plain.Metrics.Sens+0.01 {
		t.Errorf("JRSmcf-both SENS %.3f above plain JRS %.3f",
			both.Metrics.Sens, plain.Metrics.Sens)
	}
	if !strings.Contains(r.Render(), "JRSmcf") {
		t.Error("render incomplete")
	}
}

func TestTunedShape(t *testing.T) {
	r, err := Tuned(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		switch row.Goal {
		case "SPEC":
			// Self-profiled: achieved SPEC should be near or above the
			// target (generous slack for profile/eval noise at test scale).
			if row.Metrics.Spec < row.Target-0.15 {
				t.Errorf("SPEC target %.2f achieved only %.3f", row.Target, row.Metrics.Spec)
			}
		case "PVN":
			if row.Metrics.PVN < row.Target-0.15 {
				t.Errorf("PVN target %.2f achieved only %.3f", row.Target, row.Metrics.PVN)
			}
		}
	}
	// Raising the SPEC target must raise achieved SPEC monotonically.
	var prev float64 = -1
	for _, row := range r.Rows {
		if row.Goal != "SPEC" {
			continue
		}
		if row.Metrics.Spec < prev-0.01 {
			t.Error("achieved SPEC not monotone in target")
		}
		prev = row.Metrics.Spec
	}
	if !strings.Contains(r.Render(), "target") {
		t.Error("render incomplete")
	}
}

func TestMetricsCmpInversion(t *testing.T) {
	r, err := MetricsCmp(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The §2.1 argument must be demonstrable: some pair ranks opposite
	// under the Jacobsen rate vs under SPEC.
	if _, _, ok := r.RankInversion(); !ok {
		t.Error("no rank inversion found; §2.1 demonstration failed")
	}
	// The Wilson intervals must bracket the point PVNs... of the summed
	// quadrants; at minimum they must be proper intervals.
	for _, row := range r.Rows {
		if row.PVNLo > row.PVNHi || row.PVNLo < 0 || row.PVNHi > 1 {
			t.Errorf("%s: bad PVN interval [%v,%v]", row.Estimator, row.PVNLo, row.PVNHi)
		}
	}
	if !strings.Contains(r.Render(), "jacobsen") {
		t.Error("render incomplete")
	}
}

func TestAblationDepth(t *testing.T) {
	p := tp()
	p.MaxCommitted = 60_000
	r, err := AblationDepth(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Deeper resolution => more wrong-path work, monotonic.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Ratio < r.Rows[i-1].Ratio-0.01 {
			t.Errorf("ratio not increasing with depth: %v", r.Rows)
		}
	}
	// Deeper resolution => slower machine.
	if r.Rows[len(r.Rows)-1].IPC >= r.Rows[0].IPC {
		t.Error("IPC should fall with depth")
	}
	// Deeper resolution => staler SAg history => worse SAg.
	if r.Rows[len(r.Rows)-1].MispSAg <= r.Rows[0].MispSAg {
		t.Error("SAg should degrade with depth (non-speculative update)")
	}
	// Gshare (speculative update with repair) stays depth-stable.
	if d := r.Rows[len(r.Rows)-1].MispGshare - r.Rows[0].MispGshare; d > 0.02 || d < -0.02 {
		t.Errorf("gshare misprediction moved %.3f with depth; should be stable", d)
	}
	if !strings.Contains(r.Render(), "depth") {
		t.Error("render incomplete")
	}
}

func TestPatternsDominance(t *testing.T) {
	r, err := Patterns(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var gshare, sag PatternsRow
	for _, row := range r.Rows {
		if row.Predictor == "gshare" {
			gshare = row
		} else {
			sag = row
		}
	}
	// §3.2: per-branch histories concentrate; global histories spread.
	if sag.Coverage8 <= gshare.Coverage8 {
		t.Errorf("SAg top-8 coverage %.3f should exceed gshare %.3f",
			sag.Coverage8, gshare.Coverage8)
	}
	// (Distinct-pattern *counts* are not the claim — SAg's per-branch
	// space can hold more patterns than a structured global register —
	// concentration is: the top few patterns must cover far more.)
	// The Lick set covers far more branches under SAg.
	if sag.LickCoverage <= gshare.LickCoverage+0.1 {
		t.Errorf("Lick coverage should jump on SAg: gshare %.3f, sag %.3f",
			gshare.LickCoverage, sag.LickCoverage)
	}
	if !strings.Contains(r.Render(), "lick-cov") {
		t.Error("render incomplete")
	}
}

func TestSMTStudy(t *testing.T) {
	p := tp()
	r, err := SMTStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The predictable+hostile mix must show a positive confidence gain.
	for _, row := range r.Rows {
		if row.Mix == "m88ksim+go" && row.Gain <= 0 {
			t.Errorf("m88ksim+go confidence gain %.3f, want > 0", row.Gain)
		}
		if row.RoundRobin <= 0 || row.Confidence <= 0 {
			t.Errorf("%s: zero throughput", row.Mix)
		}
	}
	if !strings.Contains(r.Render(), "confidence") {
		t.Error("render incomplete")
	}
}

func TestEagerStudy(t *testing.T) {
	r, err := EagerStudy(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Rows are sorted by saving; the top row must beat fork-always.
	var top, forkAll EagerRow
	top = r.Rows[0]
	for _, row := range r.Rows {
		if row.Estimator == "fork-always" {
			forkAll = row
		}
	}
	if top.Saved <= forkAll.Saved {
		t.Error("a confidence-directed policy should beat forking on everything")
	}
	if !strings.Contains(r.Render(), "saved/1k") {
		t.Error("render incomplete")
	}
}

func TestXInput(t *testing.T) {
	r, err := XInput(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Both estimators must be non-degenerate.
		if row.Self.PVP == 0 || row.Cross.PVP == 0 {
			t.Errorf("%s: degenerate metrics", row.Name)
		}
		// m88ksim has no data randomness: self and cross must coincide.
		if row.Name == "m88ksim" {
			if d := row.Self.PVP - row.Cross.PVP; d > 0.01 || d < -0.01 {
				t.Errorf("m88ksim self/cross should coincide: %.3f vs %.3f",
					row.Self.PVP, row.Cross.PVP)
			}
		}
	}
	// Self-profiling is a best case: on the suite mean, cross-input
	// training should not *beat* it by more than noise.
	if d := r.MeanDeltaPVP(); d < -0.02 {
		t.Errorf("cross-input PVP beats self-profiled by %.3f; implausible", -d)
	}
	if !strings.Contains(r.Render(), "cross-input") {
		t.Error("render incomplete")
	}
}

func TestAUCStudy(t *testing.T) {
	r, err := AUCStudy(tp())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	jrs, _ := r.Find("JRS (4096x4)")
	gmdc, _ := r.Find("gMDC-CIR (64x16)")
	dist, _ := r.Find("Distance")
	for _, row := range r.Rows {
		if row.AUC <= 0.5 || row.AUC >= 1.0 {
			t.Errorf("%s AUC %.3f outside (0.5, 1)", row.Family, row.AUC)
		}
	}
	// Matched-index JRS must dominate both cheap designs overall.
	if jrs.AUC <= gmdc.AUC || jrs.AUC <= dist.AUC {
		t.Errorf("JRS AUC %.3f should exceed gMDC %.3f and Distance %.3f",
			jrs.AUC, gmdc.AUC, dist.AUC)
	}
	if !strings.Contains(r.Render(), "auc") {
		t.Error("render incomplete")
	}
}

func TestTable2RenderDetailed(t *testing.T) {
	r := getTable2(t)
	out := r.RenderDetailed()
	// Every benchmark appears per (estimator, predictor) block.
	for _, name := range []string{"compress", "ijpeg", "go"} {
		if !strings.Contains(out, name) {
			t.Errorf("detailed render missing %s", name)
		}
	}
	if !strings.Contains(out, "JRS(>=15) on sag") {
		t.Error("detailed render missing block headers")
	}
}
