package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/metrics"
)

// Fig1Point is one point of a parametric curve in the PVP-PVN plane.
type Fig1Point struct {
	Varied   float64 // value of the swept parameter
	PVP, PVN float64
}

// Fig1Curve is one line of the paper's Figure 1: two of {SENS, SPEC,
// accuracy} held fixed while the third sweeps 0..1; markers at deciles.
type Fig1Curve struct {
	Label  string
	Points []Fig1Point
}

// Fig1Result holds the figure's curves.
type Fig1Result struct {
	Curves []Fig1Curve
}

// Fig1 generates the paper's analytic curves. No simulation is involved:
// the curves are the Bayes identities linking PVP and PVN to sensitivity,
// specificity and prediction accuracy, plotted for the representative
// parameter values the paper uses.
func Fig1(p Params) *Fig1Result {
	res := &Fig1Result{}
	step := 0.1
	sweep := func(label string, f func(v float64) (pvp, pvn float64)) {
		c := Fig1Curve{Label: label}
		for v := step; v < 1.0+1e-9; v += step {
			pvp, pvn := f(v)
			c.Points = append(c.Points, Fig1Point{Varied: v, PVP: pvp, PVN: pvn})
		}
		res.Curves = append(res.Curves, c)
	}
	// Vary SPEC at fixed (SENS, p) pairs.
	for _, cfg := range []struct{ sens, acc float64 }{{0.7, 0.7}, {0.7, 0.9}} {
		cfg := cfg
		sweep(fmt.Sprintf("SENS=%.0f%% p=%.0f%% vary SPEC", cfg.sens*100, cfg.acc*100),
			func(v float64) (float64, float64) {
				return metrics.AnalyticPVP(cfg.sens, v, cfg.acc),
					metrics.AnalyticPVN(cfg.sens, v, cfg.acc)
			})
	}
	// Vary SENS at fixed (SPEC, p) pairs.
	for _, cfg := range []struct{ spec, acc float64 }{{0.7, 0.7}, {0.7, 0.9}, {0.99, 0.9}} {
		cfg := cfg
		sweep(fmt.Sprintf("SPEC=%.0f%% p=%.0f%% vary SENS", cfg.spec*100, cfg.acc*100),
			func(v float64) (float64, float64) {
				return metrics.AnalyticPVP(v, cfg.spec, cfg.acc),
					metrics.AnalyticPVN(v, cfg.spec, cfg.acc)
			})
	}
	// Vary accuracy at fixed (SENS, SPEC).
	sweep("SENS=70% SPEC=70% vary p", func(v float64) (float64, float64) {
		return metrics.AnalyticPVP(0.7, 0.7, v), metrics.AnalyticPVN(0.7, 0.7, v)
	})
	return res
}

// Render prints each curve as decile-marked (param, PVP, PVN) rows.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Figure 1: parametric PVP/PVN curves (analytic)"))
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%s\n", c.Label)
		fmt.Fprintf(&b, "  %6s %6s %6s\n", "param", "pvp", "pvn")
		for _, pt := range c.Points {
			fmt.Fprintf(&b, "  %5.0f%% %5.1f%% %5.1f%%\n", pt.Varied*100, pt.PVP*100, pt.PVN*100)
		}
	}
	return b.String()
}
