package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"specctrl/internal/conf"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// Record-once / replay-many estimator evaluation.
//
// Estimators are passive observers (see internal/replay's package
// comment), so the experiments layer simulates each (workload,
// predictor, pipeline identity) at most once — recording the
// estimator-visible branch-event stream into a content-addressed cache
// keyed by TraceAddress — and evaluates every estimator configuration
// by replaying the recording. Because TraceAddress excludes the
// experiment, variant, and estimator identity, the trace recorded for
// one experiment serves every other: a full `-exp all` run simulates
// each (workload, predictor) pair once and replays everything else.
//
// The two entry points are evalEstimators (a drop-in for runOne inside
// grid cells) and suiteStatsReplay (the replay-shaped suite sweep,
// reached through suiteStats), both gated by replayActive.

// replayActive reports whether replay-backed evaluation applies under
// these parameters. Direct simulation is kept for the explicit
// ReplayOff escape hatch, for configurations whose observation side
// channels need the real run (base-config estimators or tracers,
// per-branch event logs, site-statistics collection), and for policied
// pipelines: a speculation-control policy perturbs fetch timing, so the
// estimator-visible event stream is no longer the unpolicied recording.
func (p Params) replayActive() bool {
	if p.Replay == ReplayOff {
		return false
	}
	return len(p.Pipeline.Estimators) == 0 &&
		p.Pipeline.Tracer == nil &&
		p.Pipeline.Policy == nil &&
		!p.Pipeline.RecordEvents &&
		!p.Pipeline.CollectSiteStats
}

// defaultTraceCache backs Params with a nil TraceCache: one shared
// process-wide cache, metrics-less, with the default byte budget.
var defaultTraceCache = replay.NewCache(0, nil)

func (p Params) traceCache() *replay.Cache {
	if p.TraceCache != nil {
		return p.TraceCache
	}
	return defaultTraceCache
}

// recordTrace simulates one (workload, predictor) pair with the trace
// recorder attached and returns the recording plus the run's base
// statistics. The recorder reports high confidence on every branch, so
// the base statistics are identical to an estimator-less run; its
// Confidence entry is stripped before the stats are shared.
func (p Params) recordTrace(w workload.Workload, spec PredictorSpec) (*replay.Trace, *pipeline.Stats, error) {
	var rs *span.Span
	if p.Tracer != nil {
		rs = p.Tracer.Child(p.SpanParent, "record",
			span.Str("workload", w.Name), span.Str("predictor", spec.Name))
		defer rs.End()
	}
	rec := replay.NewRecorder()
	cfg := p.Pipeline
	cfg.MaxCommitted = p.MaxCommitted
	cfg.Estimators = []conf.Estimator{rec}
	cfg.Tracer = rec
	if p.Obs != nil {
		cfg.Metrics = p.Obs
		cfg.MetricsLabels = obs.Labels{"workload": w.Name, "predictor": spec.Name}
	}
	if p.Run != nil {
		cfg.Progress = p.Run
		p.Run.StartRun(w.Name+"/"+spec.Name, p.MaxCommitted)
	}
	sim, err := pipeline.New(cfg, buildProgram(w, p.BuildIters), spec.New(p))
	if err != nil {
		return nil, nil, fmt.Errorf("record %s/%s: %w", w.Name, spec.Name, err)
	}
	p.progress("record %-9s on %-9s", w.Name, spec.Name)
	st, err := sim.Run()
	if err != nil {
		return nil, nil, err
	}
	tr, err := rec.Trace()
	if err != nil {
		return nil, nil, fmt.Errorf("record %s/%s: %w", w.Name, spec.Name, err)
	}
	st.Confidence = nil
	if rs != nil {
		rs.SetAttrs(span.Int("events", int64(tr.Events())), span.Int("cycles", int64(st.Cycles)))
	}
	if p.Obs != nil {
		p.Obs.Histogram("specctrl_run_ipc", obs.Labels{"predictor": spec.Name}, ipcBounds).
			Observe(st.IPC())
		p.Obs.Counter("specctrl_runs_total", nil).Inc()
	}
	return tr, st, nil
}

// traceFor returns the (workload, predictor) trace and base stats,
// recording them through the trace cache on a miss (singleflight: one
// recording no matter how many cells want it first). When traced, the
// cache consultation gets a "trace" span whose outcome attribute says
// whether the trace was resident ("hit"), freshly recorded ("record"),
// or shared from another cell's in-flight recording ("wait").
func (p Params) traceFor(w workload.Workload, spec PredictorSpec) (*replay.Trace, *pipeline.Stats, error) {
	var ts *span.Span
	if p.Tracer != nil {
		ts = p.Tracer.Child(p.SpanParent, "trace",
			span.Str("workload", w.Name), span.Str("predictor", spec.Name))
		defer ts.End()
	}
	tr, st, outcome, err := p.traceCache().GetOrRecordOutcome(p.TraceAddress(w.Name, spec),
		func() (*replay.Trace, *pipeline.Stats, error) {
			return p.recordTrace(w, spec)
		})
	if ts != nil {
		ts.SetAttrs(span.Str("outcome", string(outcome)))
	}
	return tr, st, err
}

// replayEventBounds buckets per-replay event counts (one observation
// per replay pass) for the specctrl_replay_events histogram.
var replayEventBounds = []float64{1e4, 1e5, 1e6, 3e6, 1e7, 3e7, 1e8}

// replayConfs replays ests against the pair's recorded trace and
// returns the per-estimator statistics plus the base run's stats.
func (p Params) replayConfs(w workload.Workload, spec PredictorSpec, ests []conf.Estimator) ([]pipeline.ConfStats, *pipeline.Stats, error) {
	tr, base, err := p.traceFor(w, spec)
	if err != nil {
		return nil, nil, err
	}
	var rs *span.Span
	if p.Tracer != nil {
		rs = p.Tracer.Child(p.SpanParent, "replay",
			span.Str("workload", w.Name), span.Str("predictor", spec.Name),
			span.Int("estimators", int64(len(ests))))
	}
	confs := replay.Replay(tr, ests)
	if rs != nil {
		rs.SetAttrs(span.Int("events", int64(tr.Events())))
		rs.End()
	}
	if p.Obs != nil {
		p.Obs.Histogram("specctrl_replay_events", obs.Labels{"predictor": spec.Name}, replayEventBounds).
			Observe(float64(tr.Events()))
	}
	return confs, base, nil
}

// replayStats assembles the Stats a direct simulation with confs'
// estimators attached would have produced: the base run's
// estimator-independent fields, the replayed per-estimator statistics,
// and — because the simulator mirrors the *first* estimator's quadrants
// into Stats.CommittedQ/AllQ — the first replayed quadrants in place of
// the base run's.
func replayStats(base *pipeline.Stats, confs []pipeline.ConfStats) *pipeline.Stats {
	st := *base
	st.Confidence = confs
	if len(confs) > 0 {
		st.AllQ = confs[0].AllQ
		st.CommittedQ = confs[0].CommittedQ
	}
	return &st
}

// evalEstimators is the replay-aware equivalent of
// runOne(w, spec, false, ests...): grid cells that only need Stats for
// a fixed estimator list call it and transparently share one recorded
// simulation per (workload, predictor) across cells and experiments.
func (p Params) evalEstimators(w workload.Workload, spec PredictorSpec, ests ...conf.Estimator) (*pipeline.Stats, error) {
	if !p.replayActive() {
		return p.runOne(w, spec, false, ests...)
	}
	confs, base, err := p.replayConfs(w, spec, ests)
	if err != nil {
		return nil, err
	}
	return replayStats(base, confs), nil
}

// replayBatch is how many estimator configurations one replay cell
// drives per pass over the trace. One pass is a sequential scan of the
// recording (a few MB per million branches); batching amortizes it
// across several estimators while keeping each batch's table working
// set cache-resident, and bounds the sweep's parallel grain: an
// 80-config Fig 4/5 sweep becomes five independent replay cells per
// workload on the runner pool.
const replayBatch = 16

// estsMemo builds one workload's estimator list exactly once per grid,
// shared by that workload's replay-batch cells. Estimator construction
// may itself run a profiling simulation (static, tuned, xinput), which
// must not repeat per batch; construction is deterministic, so sharing
// it preserves the grid's determinism contract even though the memo is
// state shared between cells.
type estsMemo struct {
	once sync.Once
	es   []conf.Estimator
	err  error
}

// namedStatsReplay is namedStats' replay-backed grid: per named
// workload, one "#record" cell that records (or cache-hits) the trace,
// plus one "#replayLO-HI" cell per estimator batch. The batch bounds
// are part of the cell key, so cached cells can never alias across a
// change of replayBatch. Assembly splices the batches' Confidence
// slices back into name order, making the result indistinguishable
// from the direct path's.
func (p Params) namedStatsReplay(experiment string, names []string, spec PredictorSpec, variant string, nEsts int,
	estsFn func(p Params, w workload.Workload) ([]conf.Estimator, error)) ([]*pipeline.Stats, error) {
	nBatches := (nEsts + replayBatch - 1) / replayBatch
	block := 1 + nBatches
	specs := make([]runner.Spec, 0, len(names)*block)
	memos := make(map[string]*estsMemo, len(names))
	for _, name := range names {
		memos[name] = &estsMemo{}
		specs = append(specs, runner.Spec{
			Experiment: experiment, Workload: name, Predictor: spec.Name,
			Variant: variant + "#record",
		})
		for b := 0; b < nBatches; b++ {
			lo := b * replayBatch
			hi := min(lo+replayBatch, nEsts)
			specs = append(specs, runner.Spec{
				Experiment: experiment, Workload: name, Predictor: spec.Name,
				Variant: fmt.Sprintf("%s#replay%d-%d", variant, lo, hi),
			})
		}
	}

	cells, err := p.runGrid(specs, func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
		w, err := workload.ByName(sp.Workload)
		if err != nil {
			return CellResult{}, err
		}
		task := sp.Variant[strings.LastIndex(sp.Variant, "#")+1:]
		if task == "record" {
			_, base, err := p.traceFor(w, spec)
			if err != nil {
				return CellResult{}, err
			}
			st := *base
			return CellResult{Stats: &st}, nil
		}
		var lo, hi int
		if _, err := fmt.Sscanf(task, "replay%d-%d", &lo, &hi); err != nil {
			return CellResult{}, fmt.Errorf("experiments: bad replay cell variant %q", sp.Variant)
		}
		m := memos[sp.Workload]
		m.once.Do(func() {
			m.es, m.err = estsFn(p, w)
			if m.err == nil && len(m.es) != nEsts {
				m.err = fmt.Errorf("experiments: %s estimator builder returned %d estimators, specs enumerated %d",
					experiment, len(m.es), nEsts)
			}
		})
		if m.err != nil {
			return CellResult{}, m.err
		}
		confs, _, err := p.replayConfs(w, spec, m.es[lo:hi])
		if err != nil {
			return CellResult{}, err
		}
		return CellResult{Stats: &pipeline.Stats{Confidence: confs}}, nil
	})
	if err != nil {
		return nil, err
	}

	stats := make([]*pipeline.Stats, len(names))
	for i := range names {
		confs := make([]pipeline.ConfStats, 0, nEsts)
		for b := 0; b < nBatches; b++ {
			confs = append(confs, cells[i*block+1+b].Stats.Confidence...)
		}
		stats[i] = replayStats(cells[i*block].Stats, confs)
	}
	return stats, nil
}
