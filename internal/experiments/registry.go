package experiments

import "fmt"

// Renderer is any experiment result that can print itself as the
// paper-style text table. Every driver's result type implements it.
type Renderer interface{ Render() string }

// Consumes classifies what a registered experiment's results are a
// function of, and therefore which execution tiers can serve it.
type Consumes string

const (
	// ConsumesCommitted marks experiments defined over the committed
	// branch-outcome stream alone: their canonical semantics is the
	// trace-driven evaluation in archgrid.go, identical under every
	// -replay mode, and the arch tier can serve them without running
	// the pipeline at all.
	ConsumesCommitted Consumes = "committed"
	// ConsumesPipeline marks experiments that consume wrong-path or
	// timing behaviour (cycles, squashes, gating, event logs, policy
	// effects): they need the cycle simulator, at most accelerated by
	// the event-stream replay tier.
	ConsumesPipeline Consumes = "pipeline"
)

// Entry is one registered experiment: a stable name, a one-line
// description, the consumption class, and the driver.
type Entry struct {
	Name     string
	Desc     string
	Consumes Consumes
	Run      func(p Params) (Renderer, error)
}

// detailed swaps a Table2Result's renderer for the per-application view.
type detailed struct{ r *Table2Result }

func (d detailed) Render() string { return d.r.Render() + "\n" + d.r.RenderDetailed() }

// registry maps experiment names to drivers. It is the single source of
// truth for every front end: cmd/simctrl runs entries locally,
// cmd/simserved executes them as service jobs, and bench_test.go
// regenerates them as benchmarks.
var registry = map[string]Entry{}

// order fixes the presentation order for "run everything" front ends.
var order = []string{
	"table1", "metrics", "table2", "table2-detail", "fig1", "fig3", "fig4", "fig5",
	"table3", "fig6", "fig7", "fig8", "fig9", "table4", "misest", "boost",
	"boost-mcf", "cir", "auc", "patterns", "jrsmcf", "tuned", "xinput", "smt", "eager",
	"abl-width", "abl-spechist", "abl-gating", "abl-indirect", "abl-depth", "cost",
	"sweepspace", "frontier",
}

func register(name, desc string, consumes Consumes, run func(p Params) (Renderer, error)) {
	registry[name] = Entry{Name: name, Desc: desc, Consumes: consumes, Run: run}
}

func init() {
	register("table1", "program characteristics: committed vs all instructions, misprediction rates",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Table1(p) })
	register("table2", "four confidence estimators x three predictors, suite means",
		ConsumesCommitted,
		func(p Params) (Renderer, error) { return Table2(p) })
	register("table2-detail", "table2 with per-application drill-down (the paper's [5] detail)",
		ConsumesCommitted,
		func(p Params) (Renderer, error) {
			r, err := Table2(p)
			if err != nil {
				return nil, err
			}
			return detailed{r}, nil
		})
	register("table3", "Both-Strong vs Either-Strong saturating counters on McFarling",
		ConsumesCommitted,
		func(p Params) (Renderer, error) { return Table3(p) })
	register("table4", "misprediction-distance estimator vs JRS / SatCnt / Static",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Table4(p) })
	register("fig1", "analytic PVP/PVN parameter curves",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Fig1(p), nil })
	register("fig3", "JRS base vs enhanced threshold sweep (gshare)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Fig3(p) })
	register("fig4", "JRS design space: MDC entries x threshold (gshare)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Fig45(p, GshareSpec()) })
	register("fig5", "JRS design space: MDC entries x threshold (McFarling)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Fig45(p, McFarlingSpec()) })
	register("fig6", "precise misprediction distance (gshare)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return FigDistance(p, GshareSpec(), false) })
	register("fig7", "precise misprediction distance (McFarling)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return FigDistance(p, McFarlingSpec(), false) })
	register("fig8", "perceived misprediction distance (gshare)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return FigDistance(p, GshareSpec(), true) })
	register("fig9", "perceived misprediction distance (McFarling)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return FigDistance(p, McFarlingSpec(), true) })
	register("misest", "confidence mis-estimation clustering (section 4.1)",
		ConsumesCommitted,
		func(p Params) (Renderer, error) { return Misest(p) })
	register("boost", "consecutive-low-confidence boosting (section 4.2)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Boost(p, GshareSpec(), 4) })
	register("boost-mcf", "boosting on the McFarling predictor",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Boost(p, McFarlingSpec(), 4) })
	register("abl-width", "ablation: JRS miss-distance-counter width",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return AblationWidth(p) })
	register("abl-spechist", "ablation: speculative vs non-speculative gshare history update",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return AblationSpecHistory(p) })
	register("abl-gating", "ablation: pipeline gating estimator x threshold design space",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return AblationGating(p) })
	register("abl-indirect", "ablation: perfect vs BTB/RAS-predicted indirect targets",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return AblationIndirect(p) })
	register("cost", "estimator implementation-cost inventory",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Cost(p), nil })
	register("cir", "indexing-structure comparison: JRS vs CIR vs global-MDC-indexed CIR",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return CIR(p) })
	register("jrsmcf", "future work: McFarling-structured two-table JRS",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return JRSMcf(p) })
	register("tuned", "future work: static confidence tuned to SPEC/PVN targets",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Tuned(p) })
	register("metrics", "section 2.1: paper metrics vs Jacobsen rate, with the rank inversion",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return MetricsCmp(p) })
	register("abl-depth", "ablation: fetch-to-resolve depth vs speculation ratio, SAg staleness",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return AblationDepth(p) })
	register("patterns", "section 3.2: history-pattern dominance under gshare vs SAg",
		ConsumesCommitted,
		func(p Params) (Renderer, error) { return Patterns(p) })
	register("frontier", "application: speculation-control policy frontier, cycles saved vs IPC lost",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return Frontier(p) })
	register("sweepspace", "estimator panel over generated workload profiles (-synth-n, -synth-profile)",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return SweepSpace(p) })
	register("smt", "application: SMT fetch policies over thread mixes",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return SMTStudy(p) })
	register("eager", "application: eager-execution cost model estimator ranking",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return EagerStudy(p) })
	register("xinput", "static estimator: self-profiled (paper's best case) vs cross-input training",
		ConsumesPipeline,
		func(p Params) (Renderer, error) { return XInput(p) })
	register("auc", "estimator-family ROC AUC: threshold-independent comparison",
		ConsumesCommitted,
		func(p Params) (Renderer, error) { return AUCStudy(p) })
}

// Experiments returns every registered experiment in presentation order
// (the order "-exp all" renders).
func Experiments() []Entry {
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Lookup resolves an experiment by name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Run executes one experiment by name under the given parameters.
func Run(name string, p Params) (Renderer, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return e.Run(p)
}
