package experiments

import "fmt"

// Renderer is any experiment result that can print itself as the
// paper-style text table. Every driver's result type implements it.
type Renderer interface{ Render() string }

// Entry is one registered experiment: a stable name, a one-line
// description, and the driver.
type Entry struct {
	Name string
	Desc string
	Run  func(p Params) (Renderer, error)
}

// detailed swaps a Table2Result's renderer for the per-application view.
type detailed struct{ r *Table2Result }

func (d detailed) Render() string { return d.r.Render() + "\n" + d.r.RenderDetailed() }

// registry maps experiment names to drivers. It is the single source of
// truth for every front end: cmd/simctrl runs entries locally,
// cmd/simserved executes them as service jobs, and bench_test.go
// regenerates them as benchmarks.
var registry = map[string]Entry{}

// order fixes the presentation order for "run everything" front ends.
var order = []string{
	"table1", "metrics", "table2", "table2-detail", "fig1", "fig3", "fig4", "fig5",
	"table3", "fig6", "fig7", "fig8", "fig9", "table4", "misest", "boost",
	"boost-mcf", "cir", "auc", "patterns", "jrsmcf", "tuned", "xinput", "smt", "eager",
	"abl-width", "abl-spechist", "abl-gating", "abl-indirect", "abl-depth", "cost",
	"sweepspace", "frontier",
}

func register(name, desc string, run func(p Params) (Renderer, error)) {
	registry[name] = Entry{Name: name, Desc: desc, Run: run}
}

func init() {
	register("table1", "program characteristics: committed vs all instructions, misprediction rates",
		func(p Params) (Renderer, error) { return Table1(p) })
	register("table2", "four confidence estimators x three predictors, suite means",
		func(p Params) (Renderer, error) { return Table2(p) })
	register("table2-detail", "table2 with per-application drill-down (the paper's [5] detail)",
		func(p Params) (Renderer, error) {
			r, err := Table2(p)
			if err != nil {
				return nil, err
			}
			return detailed{r}, nil
		})
	register("table3", "Both-Strong vs Either-Strong saturating counters on McFarling",
		func(p Params) (Renderer, error) { return Table3(p) })
	register("table4", "misprediction-distance estimator vs JRS / SatCnt / Static",
		func(p Params) (Renderer, error) { return Table4(p) })
	register("fig1", "analytic PVP/PVN parameter curves",
		func(p Params) (Renderer, error) { return Fig1(p), nil })
	register("fig3", "JRS base vs enhanced threshold sweep (gshare)",
		func(p Params) (Renderer, error) { return Fig3(p) })
	register("fig4", "JRS design space: MDC entries x threshold (gshare)",
		func(p Params) (Renderer, error) { return Fig45(p, GshareSpec()) })
	register("fig5", "JRS design space: MDC entries x threshold (McFarling)",
		func(p Params) (Renderer, error) { return Fig45(p, McFarlingSpec()) })
	register("fig6", "precise misprediction distance (gshare)",
		func(p Params) (Renderer, error) { return FigDistance(p, GshareSpec(), false) })
	register("fig7", "precise misprediction distance (McFarling)",
		func(p Params) (Renderer, error) { return FigDistance(p, McFarlingSpec(), false) })
	register("fig8", "perceived misprediction distance (gshare)",
		func(p Params) (Renderer, error) { return FigDistance(p, GshareSpec(), true) })
	register("fig9", "perceived misprediction distance (McFarling)",
		func(p Params) (Renderer, error) { return FigDistance(p, McFarlingSpec(), true) })
	register("misest", "confidence mis-estimation clustering (section 4.1)",
		func(p Params) (Renderer, error) { return Misest(p) })
	register("boost", "consecutive-low-confidence boosting (section 4.2)",
		func(p Params) (Renderer, error) { return Boost(p, GshareSpec(), 4) })
	register("boost-mcf", "boosting on the McFarling predictor",
		func(p Params) (Renderer, error) { return Boost(p, McFarlingSpec(), 4) })
	register("abl-width", "ablation: JRS miss-distance-counter width",
		func(p Params) (Renderer, error) { return AblationWidth(p) })
	register("abl-spechist", "ablation: speculative vs non-speculative gshare history update",
		func(p Params) (Renderer, error) { return AblationSpecHistory(p) })
	register("abl-gating", "ablation: pipeline gating estimator x threshold design space",
		func(p Params) (Renderer, error) { return AblationGating(p) })
	register("abl-indirect", "ablation: perfect vs BTB/RAS-predicted indirect targets",
		func(p Params) (Renderer, error) { return AblationIndirect(p) })
	register("cost", "estimator implementation-cost inventory",
		func(p Params) (Renderer, error) { return Cost(p), nil })
	register("cir", "indexing-structure comparison: JRS vs CIR vs global-MDC-indexed CIR",
		func(p Params) (Renderer, error) { return CIR(p) })
	register("jrsmcf", "future work: McFarling-structured two-table JRS",
		func(p Params) (Renderer, error) { return JRSMcf(p) })
	register("tuned", "future work: static confidence tuned to SPEC/PVN targets",
		func(p Params) (Renderer, error) { return Tuned(p) })
	register("metrics", "section 2.1: paper metrics vs Jacobsen rate, with the rank inversion",
		func(p Params) (Renderer, error) { return MetricsCmp(p) })
	register("abl-depth", "ablation: fetch-to-resolve depth vs speculation ratio, SAg staleness",
		func(p Params) (Renderer, error) { return AblationDepth(p) })
	register("patterns", "section 3.2: history-pattern dominance under gshare vs SAg",
		func(p Params) (Renderer, error) { return Patterns(p) })
	register("frontier", "application: speculation-control policy frontier, cycles saved vs IPC lost",
		func(p Params) (Renderer, error) { return Frontier(p) })
	register("sweepspace", "estimator panel over generated workload profiles (-synth-n, -synth-profile)",
		func(p Params) (Renderer, error) { return SweepSpace(p) })
	register("smt", "application: SMT fetch policies over thread mixes",
		func(p Params) (Renderer, error) { return SMTStudy(p) })
	register("eager", "application: eager-execution cost model estimator ranking",
		func(p Params) (Renderer, error) { return EagerStudy(p) })
	register("xinput", "static estimator: self-profiled (paper's best case) vs cross-input training",
		func(p Params) (Renderer, error) { return XInput(p) })
	register("auc", "estimator-family ROC AUC: threshold-independent comparison",
		func(p Params) (Renderer, error) { return AUCStudy(p) })
}

// Experiments returns every registered experiment in presentation order
// (the order "-exp all" renders).
func Experiments() []Entry {
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Lookup resolves an experiment by name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// Run executes one experiment by name under the given parameters.
func Run(name string, p Params) (Renderer, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return e.Run(p)
}
