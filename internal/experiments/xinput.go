package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
	"specctrl/internal/profile"
	"specctrl/internal/workload"
)

// XInputRow compares one benchmark's static estimator self-profiled
// (train = test input) against cross-input (train on a different seed).
type XInputRow struct {
	Name  string
	Self  metrics.Metrics
	Cross metrics.Metrics
}

// XInputResult quantifies the caveat the paper attaches to its static
// estimator (§3): "the same input was used to train and evaluate the
// confidence predictor. Thus, these results present a best-case
// evaluation." Here the workloads accept alternative inputs (same code,
// reseeded data), so the train/test split the paper couldn't show is
// measured directly.
type XInputResult struct {
	Rows []XInputRow
}

// XInput profiles each benchmark on an alternative input, then evaluates
// both that cross-trained estimator and the self-profiled one on the
// reference input, in a single evaluation run.
func XInput(p Params) (*XInputResult, error) {
	// altSeed is a fixed arbitrary alternative input. It is deliberately
	// a constant — not derived from the cell seed — because it names a
	// specific published input, not a random one.
	const altSeed = 0xA17E12
	stats, err := p.suiteStats("xinput", GshareSpec(), "main", 2,
		func(p Params, w workload.Workload) ([]conf.Estimator, error) {
			// Profile pass on the reference input (self) and the
			// alternative input (cross), both inside the cell.
			profileOn := func(alt bool) (map[int64]*pipeline.SiteStats, error) {
				cfg := p.Pipeline
				cfg.MaxCommitted = p.MaxCommitted
				cfg.CollectSiteStats = true
				prog := buildProgram(w, p.BuildIters)
				if alt {
					prog = w.BuildSeeded(altSeed, p.BuildIters)
				}
				sim, err := pipeline.New(cfg, prog, GshareSpec().New(p))
				if err != nil {
					return nil, err
				}
				st, err := sim.Run()
				if err != nil {
					return nil, err
				}
				return st.Sites, nil
			}
			p.progress("xinput profile %s (self)", w.Name)
			selfSites, err := profileOn(false)
			if err != nil {
				return nil, fmt.Errorf("xinput self %s: %w", w.Name, err)
			}
			p.progress("xinput profile %s (cross)", w.Name)
			crossSites, err := profileOn(true)
			if err != nil {
				return nil, fmt.Errorf("xinput cross %s: %w", w.Name, err)
			}
			opts := profile.Options{Threshold: p.StaticThreshold}
			return []conf.Estimator{
				profile.FromSites(selfSites, opts),
				profile.FromSites(crossSites, opts),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &XInputResult{}
	for i, w := range suite() {
		st := stats[i]
		res.Rows = append(res.Rows, XInputRow{
			Name:  w.Name,
			Self:  st.Confidence[0].CommittedQ.Compute(),
			Cross: st.Confidence[1].CommittedQ.Compute(),
		})
	}
	return res, nil
}

// MeanDeltaPVP returns the suite-mean PVP loss from cross-input
// training (positive = self-profiling was optimistic).
func (r *XInputResult) MeanDeltaPVP() float64 {
	var d float64
	for _, row := range r.Rows {
		d += row.Self.PVP - row.Cross.PVP
	}
	return d / float64(len(r.Rows))
}

// Render prints the comparison.
func (r *XInputResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Static estimator: self-profiled vs cross-input (gshare, threshold 90%)"))
	fmt.Fprintf(&b, "%-9s | %-23s | %-23s\n", "", "self-profiled", "cross-input")
	fmt.Fprintf(&b, "%-9s | %4s %4s %4s %4s | %4s %4s %4s %4s\n",
		"app", "sens", "spec", "pvp", "pvn", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s | %s %s %s %s | %s %s %s %s\n", row.Name,
			pct(row.Self.Sens), pct(row.Self.Spec), pct(row.Self.PVP), pct(row.Self.PVN),
			pct(row.Cross.Sens), pct(row.Cross.Spec), pct(row.Cross.PVP), pct(row.Cross.PVN))
	}
	fmt.Fprintf(&b, "mean PVP optimism of self-profiling: %+.2f points\n", r.MeanDeltaPVP()*100)
	return b.String()
}
