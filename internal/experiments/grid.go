package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"specctrl/internal/conf"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// CellResult is the serializable output of one grid cell: the pipeline
// statistics of the cell's simulation plus any experiment-specific
// scalars that are computed from per-run state too large or too
// transient to ship (for example boost's per-k group counts, which are
// derived from the event log and recorded here so the log itself never
// leaves the cell).
//
// CellResult must round-trip exactly through JSON — uint64 and float64
// do in Go — because sharded sweeps dump cells to disk and re-assemble
// them on another machine; assembly from decoded cells must be
// byte-identical to assembly from in-memory ones.
type CellResult struct {
	Stats *pipeline.Stats    `json:"stats,omitempty"`
	Extra map[string]float64 `json:"extra,omitempty"`
}

// CellFunc is an experiment's per-cell body. It must follow the
// isolation rules in the runner package comment: build every pipeline,
// predictor, estimator and workload program inside the cell, take
// randomness only from spec.Seed, and never read other cells' output.
type CellFunc func(ctx context.Context, p Params, spec runner.Spec) (CellResult, error)

// ErrShardOnly is returned by experiment drivers when Params.Shard is
// active: this machine computed and recorded its shard of the grid, but
// the full grid is not present, so there is no assembled result to
// render. Merge the shards' recorded cells (simctrl -cells-in) to get
// the rendered tables.
var ErrShardOnly = errors.New("experiments: shard run recorded its cells; merge shards to assemble results")

// CellStore accumulates computed cell results keyed by spec key. It is
// safe for concurrent use by runner workers.
type CellStore struct {
	mu sync.Mutex
	m  map[string]CellResult
}

// NewCellStore returns an empty store.
func NewCellStore() *CellStore { return &CellStore{m: make(map[string]CellResult)} }

// Put records one cell result.
func (s *CellStore) Put(key string, c CellResult) {
	s.mu.Lock()
	s.m[key] = c
	s.mu.Unlock()
}

// Len reports the number of recorded cells.
func (s *CellStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// CellsVersion is the schema version of cell-dump JSON files
// (-cells-out / -cells-in, the serve API's /cells responses, and drain
// checkpoints). Bump it when CellResult's wire shape changes
// incompatibly; decoders reject any other version with
// UnsupportedCellVersionError rather than misparsing the payload.
const CellsVersion = 1

// UnsupportedCellVersionError reports a cell file whose version is not
// CellsVersion (typically written by a newer build).
type UnsupportedCellVersionError struct{ Version int }

func (e *UnsupportedCellVersionError) Error() string {
	return fmt.Sprintf("experiments: unsupported cell-file version %d (this build reads version %d)",
		e.Version, CellsVersion)
}

// cellFile is the on-disk format for sharded cell dumps.
type cellFile struct {
	Version int                   `json:"version"`
	Cells   map[string]CellResult `json:"cells"`
}

// MarshalJSON encodes the store as a versioned cell file. Map keys are
// sorted by encoding/json, so the dump is deterministic.
func (s *CellStore) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(cellFile{Version: CellsVersion, Cells: s.m})
}

// UnmarshalCells decodes a cell file produced by CellStore.MarshalJSON.
// The version field is checked before the cells payload is decoded, so
// a future-version file fails with UnsupportedCellVersionError instead
// of a confusing field-level JSON error.
func UnmarshalCells(data []byte) (map[string]CellResult, error) {
	var probe struct {
		Version int             `json:"version"`
		Cells   json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("experiments: bad cell file: %w", err)
	}
	if probe.Version != CellsVersion {
		return nil, &UnsupportedCellVersionError{Version: probe.Version}
	}
	cells := map[string]CellResult{}
	if len(probe.Cells) > 0 {
		if err := json.Unmarshal(probe.Cells, &cells); err != nil {
			return nil, fmt.Errorf("experiments: bad cell file: %w", err)
		}
	}
	return cells, nil
}

// CellCache memoizes cell results across grid runs, keyed by the
// content address Params.CellAddress assigns to each cell. runGrid
// consults it (after Params.Cells) for every cell; an implementation
// must call compute at most once per address across all concurrent
// callers and return exactly what compute returned — because CellResult
// round-trips exactly through JSON, a cached cell is indistinguishable
// from a freshly simulated one. internal/serve provides the on-disk,
// singleflight-deduplicated implementation.
type CellCache interface {
	GetOrCompute(ctx context.Context, addr string, spec runner.Spec,
		compute func(context.Context) (CellResult, error)) (CellResult, error)
}

// runGrid executes one experiment grid: every spec becomes one cell
// execution on the worker pool (Params.Jobs wide), and the returned
// slice is positionally aligned with specs so assembly iterates in the
// same order the old serial loops used — that alignment, plus cell
// isolation, is the determinism guarantee.
//
// Cells whose key is present in Params.Cells are taken from there
// instead of being simulated (the cross-machine merge path). All
// computed or reused cells are recorded into Params.Record when set.
// When Params.Shard is active the grid returns ErrShardOnly after
// recording this shard's cells.
func (p Params) runGrid(specs []runner.Spec, cell CellFunc) ([]CellResult, error) {
	ctx := p.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// A traced grid with no caller-supplied parent opens its own root,
	// so a bare library call still yields one coherent trace. p is a
	// value, so rewriting SpanParent here reaches only this grid's cells.
	if p.Tracer != nil && !p.SpanParent.Valid() && len(specs) > 0 {
		root := p.Tracer.Root("grid:" + specs[0].Experiment)
		p.SpanParent = root.Context()
		defer root.End()
	}
	wrapped := func(ctx context.Context, sp runner.Spec) (any, error) {
		key := sp.Key()
		c, ok := p.Cells[key]
		source := "cells-in"
		if !ok {
			// Reparent the cell body's spans (record/replay/trace
			// phases) under this cell's run span.
			pc := p
			if cs := span.FromContext(ctx); cs != nil {
				pc.SpanParent = cs.Context()
			}
			computed := false
			compute := func(ctx context.Context) (CellResult, error) {
				computed = true
				return cell(ctx, pc, sp)
			}
			var err error
			if p.Cache != nil {
				c, err = p.Cache.GetOrCompute(ctx, p.CellAddress(sp), sp, compute)
			} else {
				c, err = compute(ctx)
			}
			if err != nil {
				return nil, err
			}
			if computed {
				source = "compute"
			} else {
				source = "cache"
			}
		}
		if cs := span.FromContext(ctx); cs != nil {
			cs.SetAttrs(span.Str("source", source))
			if c.Stats != nil {
				cs.SetAttrs(span.Int("cycles", int64(c.Stats.Cycles)))
			}
		}
		if p.Record != nil {
			p.Record.Put(key, c)
		}
		return c, nil
	}
	r := runner.New(runner.Options{
		Jobs:       p.Jobs,
		BaseSeed:   p.BaseSeed,
		Shard:      p.Shard,
		Obs:        p.Obs,
		Tracer:     p.Tracer,
		SpanParent: p.SpanParent,
	})
	results, err := r.Run(ctx, specs, wrapped)
	if err != nil {
		return nil, err
	}
	if p.Shard.Active() {
		return nil, ErrShardOnly
	}
	merge := p.Tracer.Child(p.SpanParent, "merge")
	out := make([]CellResult, len(results))
	for i := range results {
		out[i] = results[i].Value.(CellResult)
	}
	merge.SetAttrs(span.Int("cells", int64(len(out))))
	merge.End()
	return out, nil
}

// predictorByName resolves one of the paper's standard predictor
// configurations by spec name.
func predictorByName(name string) (PredictorSpec, error) {
	for _, s := range AllPredictors() {
		if s.Name == name {
			return s, nil
		}
	}
	return PredictorSpec{}, fmt.Errorf("experiments: unknown predictor %q", name)
}

// suiteNames returns the suite benchmarks' names in suite order.
func suiteNames() []string {
	ws := suite()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// namedSpecs returns one spec per named workload, in the given order.
func namedSpecs(experiment string, names []string, spec PredictorSpec, variant string) []runner.Spec {
	specs := make([]runner.Spec, len(names))
	for i, name := range names {
		specs[i] = runner.Spec{
			Experiment: experiment,
			Workload:   name,
			Predictor:  spec.Name,
			Variant:    variant,
		}
	}
	return specs
}

// suiteSpecs returns one spec per suite benchmark, in suite order.
func suiteSpecs(experiment string, spec PredictorSpec, variant string) []runner.Spec {
	return namedSpecs(experiment, suiteNames(), spec, variant)
}

// suiteStats runs the most common grid shape — one simulation per suite
// benchmark on one predictor — and returns the statistics in suite
// order. ests builds the cell's estimator list (fresh instances; it may
// run a profiling pass, e.g. for the static estimator) and must return
// exactly nEsts estimators; the count is passed separately so the
// replay path can enumerate its cells without invoking the builder.
//
// Under replayActive parameters the sweep runs record-once /
// replay-many (suiteStatsReplay): one simulation per workload, shared
// across every estimator configuration and every other replay-backed
// experiment, with estimator batches replayed as independent grid
// cells. The returned statistics are identical either way.
func (p Params) suiteStats(experiment string, spec PredictorSpec, variant string, nEsts int,
	ests func(p Params, w workload.Workload) ([]conf.Estimator, error)) ([]*pipeline.Stats, error) {
	return p.namedStats(experiment, suiteNames(), spec, variant, nEsts, ests)
}

// namedStats is suiteStats over an arbitrary ordered workload-name list
// (the sweepspace experiment's grid shape: generated and ingested
// workloads are registered dynamically, so the suite cannot enumerate
// them). Statistics come back in name order, and the replay-backed path
// applies exactly as for the suite.
func (p Params) namedStats(experiment string, names []string, spec PredictorSpec, variant string, nEsts int,
	ests func(p Params, w workload.Workload) ([]conf.Estimator, error)) ([]*pipeline.Stats, error) {
	if p.replayActive() {
		return p.namedStatsReplay(experiment, names, spec, variant, nEsts, ests)
	}
	cells, err := p.runGrid(namedSpecs(experiment, names, spec, variant),
		func(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
			w, err := workload.ByName(sp.Workload)
			if err != nil {
				return CellResult{}, err
			}
			es, err := ests(p, w)
			if err != nil {
				return CellResult{}, err
			}
			st, err := p.runOne(w, spec, false, es...)
			if err != nil {
				return CellResult{}, err
			}
			return CellResult{Stats: st}, nil
		})
	if err != nil {
		return nil, err
	}
	stats := make([]*pipeline.Stats, len(cells))
	for i := range cells {
		stats[i] = cells[i].Stats
	}
	return stats, nil
}
