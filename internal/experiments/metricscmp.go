package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/workload"
)

// MetricsCmpRow carries one estimator's paper metrics alongside the
// Jacobsen et al metrics the paper argues against (§2.1).
type MetricsCmpRow struct {
	Estimator string
	Paper     metrics.Metrics
	Jacobsen  float64 // confidence misprediction rate (lower is better)
	Coverage  float64
	// PVN 95% Wilson interval, showing the measurement resolution.
	PVNLo, PVNHi float64
}

// MetricsCmpResult reproduces the paper's §2.1 argument as data: ranking
// estimators by the single "confidence misprediction rate" picks a
// different winner than ranking by the metric an actual application
// needs (SPEC for speculation control), because the combined rate mixes
// the two error types that different applications weigh differently.
type MetricsCmpResult struct {
	Rows []MetricsCmpRow
}

// MetricsCmp measures a spread of JRS thresholds plus the saturating
// counters estimator under gshare and tabulates both metric families.
func MetricsCmp(p Params) (*MetricsCmpResult, error) {
	mk := func() []conf.Estimator {
		return []conf.Estimator{
			conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 1, Enhanced: true}),
			conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 7, Enhanced: true}),
			conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}),
			conf.SatCounters{},
		}
	}
	names := []string{"JRS t=1", "JRS t=7", "JRS t=15", "SatCnt"}
	perEst := make([]metrics.Quadrant, len(names))
	perApp := make([][]metrics.Quadrant, len(names))
	stats, err := p.suiteStats("metrics", GshareSpec(), "main", len(names),
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) { return mk(), nil })
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range names {
			perEst[i].Add(st.Confidence[i].CommittedQ)
			perApp[i] = append(perApp[i], st.Confidence[i].CommittedQ)
		}
	}
	res := &MetricsCmpResult{}
	for i, n := range names {
		q := perEst[i]
		lo, hi := q.PVNInterval(1.96)
		res.Rows = append(res.Rows, MetricsCmpRow{
			Estimator: n,
			Paper:     metrics.AggregateNormalized(perApp[i]).Compute(),
			Jacobsen:  q.JacobsenMisestimateRate(),
			Coverage:  q.JacobsenCoverage(),
			PVNLo:     lo,
			PVNHi:     hi,
		})
	}
	return res, nil
}

// Find returns the named row.
func (r *MetricsCmpResult) Find(name string) (MetricsCmpRow, bool) {
	for _, row := range r.Rows {
		if row.Estimator == name {
			return row, true
		}
	}
	return MetricsCmpRow{}, false
}

// RankInversion reports whether the Jacobsen rate and SPEC rank any pair
// of estimators in opposite orders — the §2.1 complaint made concrete.
func (r *MetricsCmpResult) RankInversion() (a, b string, found bool) {
	for i := range r.Rows {
		for j := range r.Rows {
			ri, rj := r.Rows[i], r.Rows[j]
			if ri.Jacobsen < rj.Jacobsen && ri.Paper.Spec < rj.Paper.Spec {
				return ri.Estimator, rj.Estimator, true
			}
		}
	}
	return "", "", false
}

// Render prints the comparison and calls out the inversion.
func (r *MetricsCmpResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Metrics comparison (§2.1): paper metrics vs Jacobsen misestimate rate"))
	fmt.Fprintf(&b, "%-10s %5s %5s %5s %5s | %8s %8s | %s\n",
		"estimator", "sens", "spec", "pvp", "pvn", "jacobsen", "coverage", "pvn 95% ci")
	for _, row := range r.Rows {
		m := row.Paper
		fmt.Fprintf(&b, "%-10s %s %s %s %s | %7.1f%% %7.1f%% | [%4.1f%%, %4.1f%%]\n",
			row.Estimator, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN),
			row.Jacobsen*100, row.Coverage*100, row.PVNLo*100, row.PVNHi*100)
	}
	if a, bb, ok := r.RankInversion(); ok {
		fmt.Fprintf(&b, "rank inversion: %q beats %q on the Jacobsen rate but loses on SPEC —\n", a, bb)
		b.WriteString("a speculation-control design chosen by the old metric would be the wrong one.\n")
	}
	return b.String()
}
