package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/workload"
)

// CIRRow is one estimator's suite-mean metrics in the indexing-structure
// comparison.
type CIRRow struct {
	Estimator string
	Metrics   metrics.Metrics
}

// CIRResult tests the paper's §4.1 hypothesis head-on: "unless the
// indexing structure of a table-based confidence estimator matches that
// of the underlying branch predictor, the performance will suffer". It
// compares, under gshare:
//
//   - JRS (resetting MDC, pc^hist indexed) — matched indexing,
//   - CIR / ones-counting (pc^hist indexed) — matched indexing,
//     Jacobsen et al's other design,
//   - the global-MDC-indexed CIR — the mismatched variant the paper
//     says "probably did not work well",
//   - the one-register Distance estimator — no table at all, pure
//     clustering exploitation.
type CIRResult struct {
	Rows []CIRRow
}

// CIR runs the comparison. Thresholds are chosen so each estimator sits
// near its high-SPEC operating point.
func CIR(p Params) (*CIRResult, error) {
	mk := func() []conf.Estimator {
		return []conf.Estimator{
			conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}),
			conf.NewOnesCount(conf.OnesCountConfig{Entries: 4096, Bits: 16, Threshold: 16, Enhanced: true}),
			conf.NewGlobalMDCIndexed(conf.OnesCountConfig{Entries: 64, Bits: 16, Threshold: 16}),
			conf.NewDistance(7),
		}
	}
	names := []string{"JRS(pc^hist)", "CIR(pc^hist)", "CIR(globalMDC)", "Distance(>7)"}
	perEst := make([][]metrics.Quadrant, len(names))
	stats, err := p.suiteStats("cir", GshareSpec(), "main", len(names),
		func(_ Params, _ workload.Workload) ([]conf.Estimator, error) { return mk(), nil })
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		for i := range names {
			perEst[i] = append(perEst[i], st.Confidence[i].CommittedQ)
		}
	}
	res := &CIRResult{}
	for i, n := range names {
		res.Rows = append(res.Rows, CIRRow{
			Estimator: n,
			Metrics:   metrics.AggregateNormalized(perEst[i]).Compute(),
		})
	}
	return res, nil
}

// Find returns the named row.
func (r *CIRResult) Find(name string) (CIRRow, bool) {
	for _, row := range r.Rows {
		if row.Estimator == name {
			return row, true
		}
	}
	return CIRRow{}, false
}

// Render prints the comparison.
func (r *CIRResult) Render() string {
	var b strings.Builder
	b.WriteString(header("Indexing-structure comparison (§4.1): table estimators on gshare"))
	fmt.Fprintf(&b, "%-15s %5s %5s %5s %5s\n", "estimator", "sens", "spec", "pvp", "pvn")
	for _, row := range r.Rows {
		m := row.Metrics
		fmt.Fprintf(&b, "%-15s %s %s %s %s\n",
			row.Estimator, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
	}
	return b.String()
}
