package experiments

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
)

// PatternsRow summarizes one predictor's history-pattern distribution
// over the suite.
type PatternsRow struct {
	Predictor string
	// Distinct is the mean number of distinct history patterns seen.
	Distinct float64
	// Coverage8/Accuracy8 describe the top-8 most frequent patterns:
	// the branch fraction they cover and the prediction accuracy over
	// that fraction (suite means).
	Coverage8 float64
	Accuracy8 float64
	// LickCoverage/LickAccuracy do the same for Lick et al's fixed
	// confident-pattern set (all/almost-all-taken, all/almost-all-not,
	// alternating).
	LickCoverage float64
	LickAccuracy float64
}

// PatternsResult reproduces the measurement behind §3.2's observation:
// per-branch (SAg) histories concentrate in a few highly accurate
// patterns, so a fixed pattern set makes a good estimator; global
// (gshare) histories spread thin, so the same set covers almost nothing.
type PatternsResult struct {
	Rows []PatternsRow
}

// Patterns profiles history-pattern dominance under gshare and SAg.
func Patterns(p Params) (*PatternsResult, error) {
	res := &PatternsResult{}
	for _, spec := range []PredictorSpec{GshareSpec(), SAgSpec()} {
		bits := spec.HistBits(p)
		var row PatternsRow
		row.Predictor = spec.Name
		lick := conf.NewPatternHistory(bits)
		n := 0.0
		for _, w := range suite() {
			prof := NewPatternCollector(bits)
			st, err := p.runOne(w, spec, false, prof.Profiler, lick)
			if err != nil {
				return nil, fmt.Errorf("patterns %s/%s: %w", w.Name, spec.Name, err)
			}
			cov, acc := prof.Profiler.Dominance(8)
			row.Distinct += float64(prof.Profiler.Patterns())
			row.Coverage8 += cov
			row.Accuracy8 += acc
			// Lick set coverage/accuracy from the estimator quadrant:
			// coverage = fraction marked HC; accuracy over that set = PVP.
			q := st.Confidence[1].CommittedQ
			row.LickCoverage += float64(q.Chc+q.Ihc) / float64(q.Total())
			row.LickAccuracy += q.PVP()
			n++
		}
		row.Distinct /= n
		row.Coverage8 /= n
		row.Accuracy8 /= n
		row.LickCoverage /= n
		row.LickAccuracy /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PatternCollector wraps a PatternProfiler for use in runOne.
type PatternCollector struct {
	Profiler *conf.PatternProfiler
}

// NewPatternCollector builds a collector for histBits-long histories.
func NewPatternCollector(histBits uint) PatternCollector {
	return PatternCollector{Profiler: conf.NewPatternProfiler(histBits)}
}

// Render prints the dominance table.
func (r *PatternsResult) Render() string {
	var b strings.Builder
	b.WriteString(header("History-pattern dominance (§3.2): why the pattern estimator needs per-branch history"))
	fmt.Fprintf(&b, "%-9s %9s | %7s %7s | %9s %9s\n",
		"predictor", "patterns", "top8cov", "top8acc", "lick-cov", "lick-acc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %9.0f | %6.1f%% %6.1f%% | %8.1f%% %8.1f%%\n",
			row.Predictor, row.Distinct, row.Coverage8*100, row.Accuracy8*100,
			row.LickCoverage*100, row.LickAccuracy*100)
	}
	b.WriteString("\nReading: under SAg a handful of per-branch patterns cover most branches\n")
	b.WriteString("at high accuracy, so a fixed confident-pattern set works; under gshare\n")
	b.WriteString("the global history disperses over thousands of patterns and the same\n")
	b.WriteString("set covers almost nothing — the paper's §3.2 observation.\n")
	return b.String()
}
