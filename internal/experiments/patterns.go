package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// PatternsRow summarizes one predictor's history-pattern distribution
// over the suite.
type PatternsRow struct {
	Predictor string
	// Distinct is the mean number of distinct history patterns seen.
	Distinct float64
	// Coverage8/Accuracy8 describe the top-8 most frequent patterns:
	// the branch fraction they cover and the prediction accuracy over
	// that fraction (suite means).
	Coverage8 float64
	Accuracy8 float64
	// LickCoverage/LickAccuracy do the same for Lick et al's fixed
	// confident-pattern set (all/almost-all-taken, all/almost-all-not,
	// alternating).
	LickCoverage float64
	LickAccuracy float64
}

// PatternsResult reproduces the measurement behind §3.2's observation:
// per-branch (SAg) histories concentrate in a few highly accurate
// patterns, so a fixed pattern set makes a good estimator; global
// (gshare) histories spread thin, so the same set covers almost nothing.
type PatternsResult struct {
	Rows []PatternsRow
}

// patternsCell simulates one (workload, predictor) cell: a fresh
// pattern profiler plus the fixed Lick confident-pattern estimator.
// The profiler's dominance numbers are derived per-run state, so they
// travel in CellResult.Extra rather than in Stats.
func patternsCell(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
	w, err := workload.ByName(sp.Workload)
	if err != nil {
		return CellResult{}, err
	}
	spec, err := predictorByName(sp.Predictor)
	if err != nil {
		return CellResult{}, err
	}
	bits := spec.HistBits(p)
	prof := NewPatternCollector(bits)
	eval := p.evalEstimators
	if p.archEligible() {
		eval = p.archEval
	}
	st, err := eval(w, spec, prof.Profiler, conf.NewPatternHistory(bits))
	if err != nil {
		return CellResult{}, fmt.Errorf("patterns %s/%s: %w", w.Name, spec.Name, err)
	}
	cov, acc := prof.Profiler.Dominance(8)
	return CellResult{Stats: st, Extra: map[string]float64{
		"patterns":  float64(prof.Profiler.Patterns()),
		"coverage8": cov,
		"accuracy8": acc,
	}}, nil
}

// Patterns profiles history-pattern dominance under gshare and SAg.
func Patterns(p Params) (*PatternsResult, error) {
	preds := []PredictorSpec{GshareSpec(), SAgSpec()}
	var gridSpecs []runner.Spec
	for _, spec := range preds {
		for _, w := range suite() {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "patterns", Workload: w.Name, Predictor: spec.Name, Variant: "main",
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, patternsCell)
	if err != nil {
		return nil, err
	}
	res := &PatternsResult{}
	i := 0
	for _, spec := range preds {
		var row PatternsRow
		row.Predictor = spec.Name
		n := 0.0
		for range suite() {
			c := cells[i]
			i++
			row.Distinct += c.Extra["patterns"]
			row.Coverage8 += c.Extra["coverage8"]
			row.Accuracy8 += c.Extra["accuracy8"]
			// Lick set coverage/accuracy from the estimator quadrant:
			// coverage = fraction marked HC; accuracy over that set = PVP.
			q := c.Stats.Confidence[1].CommittedQ
			row.LickCoverage += float64(q.Chc+q.Ihc) / float64(q.Total())
			row.LickAccuracy += q.PVP()
			n++
		}
		row.Distinct /= n
		row.Coverage8 /= n
		row.Accuracy8 /= n
		row.LickCoverage /= n
		row.LickAccuracy /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PatternCollector wraps a PatternProfiler for use in runOne.
type PatternCollector struct {
	Profiler *conf.PatternProfiler
}

// NewPatternCollector builds a collector for histBits-long histories.
func NewPatternCollector(histBits uint) PatternCollector {
	return PatternCollector{Profiler: conf.NewPatternProfiler(histBits)}
}

// Render prints the dominance table.
func (r *PatternsResult) Render() string {
	var b strings.Builder
	b.WriteString(header("History-pattern dominance (§3.2): why the pattern estimator needs per-branch history"))
	fmt.Fprintf(&b, "%-9s %9s | %7s %7s | %9s %9s\n",
		"predictor", "patterns", "top8cov", "top8acc", "lick-cov", "lick-acc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %9.0f | %6.1f%% %6.1f%% | %8.1f%% %8.1f%%\n",
			row.Predictor, row.Distinct, row.Coverage8*100, row.Accuracy8*100,
			row.LickCoverage*100, row.LickAccuracy*100)
	}
	b.WriteString("\nReading: under SAg a handful of per-branch patterns cover most branches\n")
	b.WriteString("at high accuracy, so a fixed confident-pattern set works; under gshare\n")
	b.WriteString("the global history disperses over thousands of patterns and the same\n")
	b.WriteString("set covers almost nothing — the paper's §3.2 observation.\n")
	return b.String()
}
