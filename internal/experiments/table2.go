// Table 2 of the paper: four confidence estimators × three branch
// predictors, reported as suite means over the committed-branch
// quadrants. The grid is one cell per (workload, predictor) — each cell
// runs one profiling pass (for the static estimator) plus one
// simulation evaluating all four estimators — executed in parallel
// under -jobs N and assembled in fixed suite order, so the rendered
// table is identical at any job count.

package experiments

import (
	"context"
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/metrics"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
	"specctrl/internal/workload"
)

// Table2Cell is one (estimator, predictor) suite-mean measurement.
type Table2Cell struct {
	Estimator string
	Predictor string
	Metrics   metrics.Metrics
	// PerApp holds each benchmark's committed quadrant (Table 1 order),
	// for drill-down and for the normalized aggregation.
	PerApp []metrics.Quadrant
}

// Table2Result reproduces the paper's Table 2: suite-mean SENS / SPEC /
// PVP / PVN of four estimators under three predictors.
type Table2Result struct {
	// Cells is indexed [estimator][predictor] in the paper's order:
	// estimators JRS, SatCnt, HistPattern, Static; predictors gshare,
	// McFarling, SAg.
	Cells [][]Table2Cell
	// EstimatorNames and PredictorNames label the axes.
	EstimatorNames []string
	PredictorNames []string
}

// table2Estimators builds the four estimator configurations of Table 2
// for the given predictor; static needs a per-workload profile, so it is
// created later and this returns its slot index.
func table2Estimators(p Params, spec PredictorSpec) []conf.Estimator {
	return []conf.Estimator{
		conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 15, Enhanced: true}),
		SatCntFor(spec, conf.BothStrong),
		conf.NewPatternHistory(spec.HistBits(p)),
		// Slot 3 (static) is appended per workload by the caller.
	}
}

// table2Cell evaluates one (workload, predictor) cell. On the
// canonical arch path the cell is two passes over the workload's
// committed stream: one profiling pass building the static estimator
// (archStatic) and one evaluation pass for all four estimators. On the
// fallback path it is a profiling simulation plus one evaluation run.
func table2Cell(_ context.Context, p Params, sp runner.Spec) (CellResult, error) {
	w, err := workload.ByName(sp.Workload)
	if err != nil {
		return CellResult{}, err
	}
	spec, err := predictorByName(sp.Predictor)
	if err != nil {
		return CellResult{}, err
	}
	if p.archEligible() {
		t, err := p.archStreamFor(w)
		if err != nil {
			return CellResult{}, fmt.Errorf("table2 %s/%s: %w", w.Name, spec.Name, err)
		}
		ests := append(table2Estimators(p, spec), p.archStatic(t, spec))
		return CellResult{Stats: archStats(t, replay.ArchReplay(t, spec.New(p), ests))}, nil
	}
	static, err := p.staticFor(w, spec)
	if err != nil {
		return CellResult{}, fmt.Errorf("table2 static %s/%s: %w", w.Name, spec.Name, err)
	}
	ests := append(table2Estimators(p, spec), static)
	st, err := p.evalEstimators(w, spec, ests...)
	if err != nil {
		return CellResult{}, fmt.Errorf("table2 %s/%s: %w", w.Name, spec.Name, err)
	}
	return CellResult{Stats: st}, nil
}

// Table2 runs the full grid. For each (workload, predictor) pair a single
// simulation evaluates the JRS, saturating-counter and pattern-history
// estimators together; the static estimator adds one profiling run.
func Table2(p Params) (*Table2Result, error) {
	estNames := []string{"JRS(>=15)", "SatCnt", "HistPattern", "Static(>90%)"}
	specs := AllPredictors()
	res := &Table2Result{EstimatorNames: estNames}
	for _, s := range specs {
		res.PredictorNames = append(res.PredictorNames, s.Name)
	}
	// cells[est][pred]
	res.Cells = make([][]Table2Cell, len(estNames))
	for e := range res.Cells {
		res.Cells[e] = make([]Table2Cell, len(specs))
		for pr := range res.Cells[e] {
			res.Cells[e][pr] = Table2Cell{
				Estimator: estNames[e],
				Predictor: specs[pr].Name,
			}
		}
	}
	var gridSpecs []runner.Spec
	for _, w := range suite() {
		for _, spec := range specs {
			gridSpecs = append(gridSpecs, runner.Spec{
				Experiment: "table2", Workload: w.Name, Predictor: spec.Name, Variant: "main",
			})
		}
	}
	cells, err := p.runGrid(gridSpecs, table2Cell)
	if err != nil {
		return nil, err
	}
	i := 0
	for range suite() {
		for pi := range specs {
			st := cells[i].Stats
			i++
			for e := range estNames {
				cell := &res.Cells[e][pi]
				cell.PerApp = append(cell.PerApp, st.Confidence[e].CommittedQ)
			}
		}
	}
	// Aggregate with the paper's rule: normalize each benchmark's
	// quadrants, average them, and recompute the metrics.
	for e := range res.Cells {
		for pi := range res.Cells[e] {
			cell := &res.Cells[e][pi]
			cell.Metrics = metrics.AggregateNormalized(cell.PerApp).Compute()
		}
	}
	return res, nil
}

// Render produces the paper-style text table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString(header("Table 2: confidence estimator performance (suite means, committed branches)"))
	fmt.Fprintf(&b, "%-14s", "")
	for _, pn := range r.PredictorNames {
		fmt.Fprintf(&b, " | %-19s", pn)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "estimator")
	for range r.PredictorNames {
		fmt.Fprintf(&b, " | %4s %4s %4s %4s", "sens", "spec", "pvp", "pvn")
	}
	b.WriteString("\n")
	for e, en := range r.EstimatorNames {
		fmt.Fprintf(&b, "%-14s", en)
		for pi := range r.PredictorNames {
			m := r.Cells[e][pi].Metrics
			fmt.Fprintf(&b, " | %s %s %s %s",
				pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Cell returns the cell for the named estimator and predictor.
func (r *Table2Result) Cell(estimator, predictor string) (Table2Cell, bool) {
	for e, en := range r.EstimatorNames {
		if en != estimator {
			continue
		}
		for pi, pn := range r.PredictorNames {
			if pn == predictor {
				return r.Cells[e][pi], true
			}
		}
	}
	return Table2Cell{}, false
}

// RenderDetailed prints the per-application quadrant metrics behind the
// suite means — the detail the paper delegates to its companion tech
// report ("detailed information on each application can be found in
// [5]").
func (r *Table2Result) RenderDetailed() string {
	var b strings.Builder
	b.WriteString(header("Table 2 (detailed): per-application metrics"))
	apps := suite()
	for e, en := range r.EstimatorNames {
		for pi, pn := range r.PredictorNames {
			cell := r.Cells[e][pi]
			fmt.Fprintf(&b, "%s on %s\n", en, pn)
			fmt.Fprintf(&b, "  %-9s %5s %5s %5s %5s %9s\n",
				"app", "sens", "spec", "pvp", "pvn", "branches")
			for ai, q := range cell.PerApp {
				name := "?"
				if ai < len(apps) {
					name = apps[ai].Name
				}
				m := q.Compute()
				fmt.Fprintf(&b, "  %-9s %s %s %s %s %9d\n",
					name, pct(m.Sens), pct(m.Spec), pct(m.PVP), pct(m.PVN), q.Total())
			}
		}
	}
	return b.String()
}
