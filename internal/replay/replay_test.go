package replay

import (
	"reflect"
	"sync"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
	"specctrl/internal/profile"
	"specctrl/internal/workload"
)

// testCommitted keeps the differential runs fast while still pushing
// every estimator well past its warm-up transient.
const testCommitted = 60_000

// testProg memoizes one workload program for the whole test binary
// (program generation dominates small-run time).
var testProg = sync.OnceValue(func() *isa.Program {
	w, err := workload.ByName("gcc")
	if err != nil {
		panic(err)
	}
	return w.Build(1 << 30)
})

// testPred builds a fresh predictor of the named family, sized like the
// experiments layer's defaults.
func testPred(t testing.TB, name string) bpred.Predictor {
	t.Helper()
	switch name {
	case "gshare":
		return bpred.NewGshare(12)
	case "mcfarling":
		return bpred.NewMcFarling(12)
	case "sag":
		return bpred.NewSAg(12, 13)
	}
	t.Fatalf("unknown predictor %q", name)
	return nil
}

func testConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = testCommitted
	cfg.MaxCycles = 4_000_000_000
	return cfg
}

// testStatic profiles the test program once per predictor family and
// caches the resulting static estimator (it is read-only, so sharing
// one instance across runs is safe — the same property the experiments
// layer relies on).
var testStatic = struct {
	sync.Mutex
	m map[string]conf.Static
}{m: map[string]conf.Static{}}

func staticFor(t *testing.T, predName string) conf.Static {
	t.Helper()
	testStatic.Lock()
	defer testStatic.Unlock()
	if s, ok := testStatic.m[predName]; ok {
		return s
	}
	s, err := profile.Collect(testConfig(), testProg(), testPred(t, predName),
		profile.Options{Threshold: 0.90})
	if err != nil {
		t.Fatalf("profile %s: %v", predName, err)
	}
	testStatic.m[predName] = s
	return s
}

// allFamilies returns one fresh estimator per family the paper studies:
// JRS (plain and enhanced), saturating counters (single and McFarling
// both/either), pattern, static, distance, CIR (per-branch and
// global-MDC-indexed), and the JRS/McFarling hybrid. Stateful
// estimators train during a run, so every evaluation needs fresh
// instances.
func allFamilies(t *testing.T, predName string) []conf.Estimator {
	t.Helper()
	hist := map[string]uint{"gshare": 12, "mcfarling": 12, "sag": 13}[predName]
	return []conf.Estimator{
		conf.NewJRS(conf.JRSConfig{Entries: 1024, Bits: 4, Threshold: 12, Enhanced: false}),
		conf.NewJRS(conf.JRSConfig{Entries: 1024, Bits: 4, Threshold: 12, Enhanced: true}),
		conf.SatCounters{},
		conf.SatCountersMcFarling{Variant: conf.BothStrong},
		conf.SatCountersMcFarling{Variant: conf.EitherStrong},
		conf.NewPatternHistory(hist),
		staticFor(t, predName),
		conf.NewDistance(3),
		conf.NewOnesCount(conf.OnesCountConfig{Entries: 4096, Bits: 16, Threshold: 16, Enhanced: true}),
		conf.NewGlobalMDCIndexed(conf.OnesCountConfig{Entries: 64, Bits: 16, Threshold: 16}),
		conf.NewJRSMcFarling(conf.JRSConfig{Entries: 1024, Bits: 4, Threshold: 12}, conf.BothTables),
		conf.NewJRSMcFarling(conf.JRSConfig{Entries: 1024, Bits: 4, Threshold: 12}, conf.MetaSelected),
	}
}

// directRun simulates with the estimators attached — the ground truth
// the replay path must reproduce bit for bit.
func directRun(t *testing.T, predName string, ests []conf.Estimator) *pipeline.Stats {
	t.Helper()
	cfg := testConfig()
	cfg.Estimators = ests
	sim, err := pipeline.New(cfg, testProg(), testPred(t, predName))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// recordRun simulates once with the trace recorder attached and returns
// the recording plus the base statistics (recorder entry stripped).
func recordRun(t testing.TB, predName string) (*Trace, *pipeline.Stats) {
	t.Helper()
	rec := NewRecorder()
	cfg := testConfig()
	cfg.Estimators = []conf.Estimator{rec}
	cfg.Tracer = rec
	sim, err := pipeline.New(cfg, testProg(), testPred(t, predName))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	st.Confidence = nil
	return tr, st
}

// TestReplayMatchesDirect is the package's reason to exist: for every
// estimator family, on every predictor family, replaying the recorded
// event stream must reproduce the direct simulation's Stats.Confidence
// exactly — and, with the first estimator's quadrants patched in, the
// entire Stats struct.
func TestReplayMatchesDirect(t *testing.T) {
	for _, predName := range []string{"gshare", "mcfarling", "sag"} {
		t.Run(predName, func(t *testing.T) {
			direct := directRun(t, predName, allFamilies(t, predName))
			tr, base := recordRun(t, predName)
			confs := Replay(tr, allFamilies(t, predName))

			if !reflect.DeepEqual(direct.Confidence, confs) {
				for i := range confs {
					if !reflect.DeepEqual(direct.Confidence[i], confs[i]) {
						t.Errorf("estimator %s: replayed stats differ from direct simulation",
							confs[i].Name)
					}
				}
				t.Fatal("replayed Confidence differs from direct simulation")
			}

			// The full-stats patch the experiments layer applies: base
			// stats + replayed confidence + first estimator's quadrants.
			patched := *base
			patched.Confidence = confs
			patched.AllQ = confs[0].AllQ
			patched.CommittedQ = confs[0].CommittedQ
			if !reflect.DeepEqual(&patched, direct) {
				t.Fatal("patched base stats differ from direct simulation beyond Confidence")
			}
		})
	}
}

// TestRecorderBaseStatsEstimatorFree: the recording run's base
// statistics must equal a run with no estimators attached at all —
// that is what lets one trace serve every estimator configuration.
func TestRecorderBaseStatsEstimatorFree(t *testing.T) {
	_, base := recordRun(t, "gshare")
	bare := directRun(t, "gshare", nil)
	// Confidence is nil on the stripped base and a zero-length slice on
	// the bare run; both are overwritten by the replayed entries, so
	// only the distinction-free comparison matters here.
	bare.Confidence = nil
	if !reflect.DeepEqual(base, bare) {
		t.Fatal("recording run's base stats differ from an estimator-less run")
	}
}

// TestTraceCounts sanity-checks the recorded stream's shape: every
// committed conditional branch contributes one fetch and one resolve
// token, wrong-path fetches contribute a fetch token only.
func TestTraceCounts(t *testing.T) {
	tr, base := recordRun(t, "gshare")
	if tr.Fetches() == 0 {
		t.Fatal("empty recording")
	}
	resolves := tr.Events() - tr.Fetches()
	if uint64(resolves) != base.CommittedBr {
		t.Errorf("resolve tokens = %d, committed conditional branches = %d", resolves, base.CommittedBr)
	}
	if tr.Fetches() < resolves {
		t.Errorf("fetch tokens %d < resolve tokens %d", tr.Fetches(), resolves)
	}
	if tr.Bytes() <= 0 {
		t.Errorf("Bytes() = %d, want positive", tr.Bytes())
	}
}

// scripted estimator for synthetic-stream tests: records every call.
type capture struct {
	estimates []int64
	resolves  []resolveRec
}

func (c *capture) Name() string { return "capture" }
func (c *capture) Estimate(pc int64, info bpred.Info) bool {
	c.estimates = append(c.estimates, pc)
	return true
}
func (c *capture) Resolve(pc int64, info bpred.Info, correct bool) {
	c.resolves = append(c.resolves, resolveRec{pc: pc, info: info, correct: correct})
}

// synthEvent drives a recorder with one fetch event (and its resolve
// when committed), the way the pipeline would.
func synthFetch(r *Recorder, pc int64, committed bool) {
	r.Estimate(pc, bpred.Info{Pred: true})
	r.Branch(obs.BranchEvent{PC: pc, Pred: true, Outcome: true, WrongPath: !committed})
}

// TestReplayResolveFIFO: resolves replay in committed-fetch order with
// fetch-time arguments, across a ring-growth boundary (more than 64
// committed fetches outstanding) and across chunk boundaries.
func TestReplayResolveFIFO(t *testing.T) {
	r := NewRecorder()
	const n = 3 * chunkTokens / 4 // enough tokens to cross a chunk boundary after resolves
	for i := 0; i < n; i++ {
		synthFetch(r, int64(1000+i*4), true)
		if i%3 == 0 {
			synthFetch(r, int64(-5000-i), false) // interleaved wrong-path fetch
		}
	}
	for i := 0; i < n; i++ {
		r.Resolve(0, bpred.Info{}, false) // arguments ignored by the recorder
	}
	tr, err := r.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.chunks) < 2 {
		t.Fatalf("test meant to cross a chunk boundary, got %d chunks", len(tr.chunks))
	}

	c := &capture{}
	Replay(tr, []conf.Estimator{c})
	if len(c.resolves) != n {
		t.Fatalf("replayed %d resolves, want %d", len(c.resolves), n)
	}
	for i, rr := range c.resolves {
		if want := int64(1000 + i*4); rr.pc != want {
			t.Fatalf("resolve %d: pc %#x, want %#x (FIFO order broken)", i, rr.pc, want)
		}
		if !rr.correct {
			t.Fatalf("resolve %d: correctness not carried from fetch time", i)
		}
	}
	if want := n + (n+2)/3; len(c.estimates) != want {
		t.Fatalf("replayed %d estimates, want %d", len(c.estimates), want)
	}
}

// TestRecorderPairingErrors: a recorder driven outside the pipeline's
// Estimate-then-Branch contract must fail at Trace(), not record
// garbage.
func TestRecorderPairingErrors(t *testing.T) {
	t.Run("double estimate", func(t *testing.T) {
		r := NewRecorder()
		r.Estimate(1, bpred.Info{})
		r.Estimate(2, bpred.Info{})
		if _, err := r.Trace(); err == nil {
			t.Fatal("Trace accepted back-to-back Estimates")
		}
	})
	t.Run("branch pc mismatch", func(t *testing.T) {
		r := NewRecorder()
		r.Estimate(1, bpred.Info{})
		r.Branch(obs.BranchEvent{PC: 99})
		if _, err := r.Trace(); err == nil {
			t.Fatal("Trace accepted a Branch for a different pc")
		}
	})
	t.Run("branch without estimate", func(t *testing.T) {
		r := NewRecorder()
		r.Branch(obs.BranchEvent{PC: 1})
		if _, err := r.Trace(); err == nil {
			t.Fatal("Trace accepted an unpaired Branch")
		}
	})
	t.Run("dangling estimate", func(t *testing.T) {
		r := NewRecorder()
		synthFetch(r, 1, true)
		r.Estimate(2, bpred.Info{})
		if _, err := r.Trace(); err == nil {
			t.Fatal("Trace accepted a recording ending mid-fetch")
		}
	})
	t.Run("clean recorder", func(t *testing.T) {
		r := NewRecorder()
		synthFetch(r, 1, true)
		r.Resolve(0, bpred.Info{}, false)
		if _, err := r.Trace(); err != nil {
			t.Fatalf("well-formed recording rejected: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestReplaySteadyStateAllocFree: Replay's per-event loop must not
// allocate — its allocation count is a small constant (result and
// scratch slices) independent of trace length.
func TestReplaySteadyStateAllocFree(t *testing.T) {
	short := recordSynthetic(1_000)
	long := recordSynthetic(100_000)
	ests := []conf.Estimator{conf.SatCounters{}}
	allocShort := testing.AllocsPerRun(10, func() { Replay(short, ests) })
	allocLong := testing.AllocsPerRun(10, func() { Replay(long, ests) })
	if allocShort != allocLong {
		t.Fatalf("allocations grow with trace length: %.0f for 1k events, %.0f for 100k",
			allocShort, allocLong)
	}
	if allocLong > 8 {
		t.Fatalf("Replay allocates %.0f times per call, want a small constant", allocLong)
	}
}

// recordSynthetic builds an n-committed-branch trace without a
// simulator, keeping a few fetches in flight like a real pipeline.
func recordSynthetic(n int) *Trace {
	r := NewRecorder()
	inflight := 0
	for i := 0; i < n; i++ {
		synthFetch(r, int64(4096+i*4), true)
		inflight++
		if inflight == 8 {
			for ; inflight > 0; inflight-- {
				r.Resolve(0, bpred.Info{}, false)
			}
		}
	}
	for ; inflight > 0; inflight-- {
		r.Resolve(0, bpred.Info{}, false)
	}
	tr, err := r.Trace()
	if err != nil {
		panic(err)
	}
	return tr
}
