package replay

import (
	"errors"
	"fmt"
	"sort"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// chunkTokens is the token capacity of one chunk. 64k tokens keep the
// per-chunk columns around a megabyte — big enough that chunk-crossing
// overhead vanishes, small enough that the codec never needs giant
// up-front allocations when decoding untrusted input.
const chunkTokens = 1 << 16

// Fetch-event flag bits (chunk.flg).
const (
	fPred      = 1 << iota // predicted direction
	fP1                    // McFarling component prediction 1
	fP2                    // McFarling component prediction 2
	fCorrect               // prediction matched the oracle outcome
	fCommitted             // fetched on the committed (correct) path
)

// chunk is one fixed-capacity run of tokens. kinds holds one bit per
// token (set = fetch event, clear = resolve event); the columnar
// slices hold one entry per *fetch* token, in token order.
type chunk struct {
	n     int      // tokens used
	kinds []uint64 // ⌈n/64⌉ words of token-kind bits
	pc    []int64
	hist  []uint64
	ctr   []uint8 // packed counters: C1 | C2<<2 | Meta<<4
	flg   []uint8 // fPred | fP1 | fP2 | fCorrect | fCommitted
}

// full reports whether the chunk has reached capacity.
func (c *chunk) full() bool { return c.n == chunkTokens }

// setKind marks token i as a fetch event.
func (c *chunk) setFetch(i int) { c.kinds[i>>6] |= 1 << (uint(i) & 63) }

// isFetch reports whether token i is a fetch event.
func (c *chunk) isFetch(i int) bool { return c.kinds[i>>6]&(1<<(uint(i)&63)) != 0 }

// bytes estimates the chunk's retained memory from slice capacities.
func (c *chunk) bytes() int {
	return cap(c.kinds)*8 + cap(c.pc)*8 + cap(c.hist)*8 + cap(c.ctr) + cap(c.flg)
}

// Trace is one simulation's recorded branch event stream. A Trace is
// immutable once obtained from Recorder.Trace or Decode and is safe
// for concurrent Replay calls.
type Trace struct {
	chunks  []*chunk
	fetches int // total fetch tokens
	tokens  int // total tokens (fetches + resolves)
}

// Events returns the total token count (fetch + resolve events).
func (t *Trace) Events() int { return t.tokens }

// Fetches returns the number of fetch events.
func (t *Trace) Fetches() int { return t.fetches }

// Bytes estimates the trace's retained memory; the trace cache's LRU
// budget accounts entries with it.
func (t *Trace) Bytes() int {
	n := 0
	for _, c := range t.chunks {
		n += c.bytes()
	}
	return n
}

// packInfo packs the three 2-bit counters of a bpred.Info.
func packInfo(info bpred.Info) uint8 {
	return uint8(info.C1&3) | uint8(info.C2&3)<<2 | uint8(info.Meta&3)<<4
}

// Recorder captures the estimator-visible event stream of one run. It
// plugs into the pipeline through two existing observation points — as
// a conf.Estimator (attach as the only entry of Config.Estimators) and
// as the run's obs.Tracer — so the simulator needs no changes:
//
//   - Estimate stashes the fetch-time (pc, Info) pair;
//   - Branch (called by the simulator immediately after the estimate
//     fan-out for the same branch) completes the fetch event with the
//     prediction's correctness and the committed/wrong-path flag;
//   - Resolve appends a payload-free resolve token.
//
// Estimate always returns high confidence, so the base Stats of the
// recording run (CommittedQ/AllQ and every estimator-independent
// field) are identical to a run with no estimators attached.
//
// A Recorder is single-run, single-goroutine state, like the simulator
// that drives it.
type Recorder struct {
	t   Trace
	cur *chunk

	pendPC   int64
	pendInfo bpred.Info
	havePend bool
	err      error
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Name implements conf.Estimator.
func (r *Recorder) Name() string { return "trace-recorder" }

// Estimate implements conf.Estimator: it stashes the fetch-time pair
// for the Branch callback and reports high confidence.
func (r *Recorder) Estimate(pc int64, info bpred.Info) bool {
	if r.havePend && r.err == nil {
		r.err = fmt.Errorf("replay: Estimate(pc=%#x) before previous fetch event was completed", pc)
	}
	r.pendPC, r.pendInfo, r.havePend = pc, info, true
	return true
}

// Branch implements obs.Tracer: it completes the fetch event the
// preceding Estimate call opened.
func (r *Recorder) Branch(ev obs.BranchEvent) {
	if !r.havePend || ev.PC != r.pendPC {
		if r.err == nil {
			r.err = fmt.Errorf("replay: Branch(pc=%#x) does not match a pending Estimate", ev.PC)
		}
		return
	}
	r.havePend = false
	var flg uint8
	if r.pendInfo.Pred {
		flg |= fPred
	}
	if r.pendInfo.P1 {
		flg |= fP1
	}
	if r.pendInfo.P2 {
		flg |= fP2
	}
	if ev.Pred == ev.Outcome {
		flg |= fCorrect
	}
	if !ev.WrongPath {
		flg |= fCommitted
	}
	c := r.chunk()
	c.setFetch(c.n)
	c.n++
	c.pc = append(c.pc, r.pendPC)
	c.hist = append(c.hist, r.pendInfo.Hist)
	c.ctr = append(c.ctr, packInfo(r.pendInfo))
	c.flg = append(c.flg, flg)
	r.t.fetches++
	r.t.tokens++
}

// Resolve implements conf.Estimator: committed branches resolve in
// fetch order with fetch-time arguments, so the token needs no payload.
func (r *Recorder) Resolve(pc int64, info bpred.Info, correct bool) {
	c := r.chunk()
	c.n++ // kind bit stays clear: resolve token
	r.t.tokens++
}

// Close implements obs.Tracer (the recorder has nothing to flush).
func (r *Recorder) Close() error { return nil }

// chunk returns the current chunk, opening a new one at capacity.
func (r *Recorder) chunk() *chunk {
	if r.cur == nil || r.cur.full() {
		r.cur = &chunk{kinds: make([]uint64, chunkTokens/64)}
		r.t.chunks = append(r.t.chunks, r.cur)
	}
	return r.cur
}

// Trace returns the finished recording. It fails if the event stream
// was malformed (an Estimate without its Branch completion, or vice
// versa), which would mean the recorder was not driven by the pipeline
// contract it encodes.
func (r *Recorder) Trace() (*Trace, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.havePend {
		return nil, errors.New("replay: recording ended with an incomplete fetch event")
	}
	return &r.t, nil
}

// resolveRec is one committed fetch event awaiting its resolve token.
type resolveRec struct {
	pc      int64
	info    bpred.Info
	correct bool
}

// estKind tags the concrete estimator families with devirtualized call
// sites, mirroring the simulator's hot-path dispatch (see pipeline's
// estFast): interface calls per event per estimator dominate replay
// cost, and the common families are all concrete types the compiler
// can inline once the switch names them.
type estKind uint8

const (
	estGeneric estKind = iota
	estJRS
	estSat
	estSatMcF
	estPattern
	estStatic
)

// estFast caches one estimator's concrete identity for direct dispatch
// (value-type estimators are stored by value; copying conf.Static only
// copies its map header, the profile itself is shared).
type estFast struct {
	kind estKind
	jrs  *conf.JRS
	satM conf.SatCountersMcFarling
	pat  conf.PatternHistory
	st   conf.Static
}

func (f *estFast) estimate(ests []conf.Estimator, i int, pc int64, info bpred.Info) bool {
	switch f.kind {
	case estJRS:
		return f.jrs.Estimate(pc, info)
	case estSat:
		return conf.SatCounters{}.Estimate(pc, info)
	case estSatMcF:
		return f.satM.Estimate(pc, info)
	case estPattern:
		return f.pat.Estimate(pc, info)
	case estStatic:
		return f.st.Estimate(pc, info)
	}
	return ests[i].Estimate(pc, info)
}

func (f *estFast) resolve(ests []conf.Estimator, i int, pc int64, info bpred.Info, correct bool) {
	switch f.kind {
	case estJRS:
		f.jrs.Resolve(pc, info, correct)
	case estSat, estSatMcF, estPattern, estStatic:
		// Value-type families keep no per-branch state; Resolve is empty.
	default:
		ests[i].Resolve(pc, info, correct)
	}
}

// jrsGroup is a set of JRS estimators identical except for their
// threshold. A JRS table's evolution depends only on the index function
// and the correct/incorrect sequence — the threshold is compared at
// Estimate time, never stored — so every member's table is forever
// identical and one lookup (and one Resolve) serves the whole group:
// the sweep evaluates one counter read against many thresholds. This is
// the replay path's structural advantage over direct simulation, where
// each estimator is a black box behind the Estimator interface.
type jrsGroup struct {
	leader     *conf.JRS // first member; the only table that trains
	members    []int     // estimator indices, sorted by threshold
	thresholds []int     // members' thresholds, ascending, parallel to members
}

// fetch applies one fetch event to every group member. With thresholds
// ascending, one scan finds the high/low-confidence split for this
// counter value; each side of the split then updates its quadrant cells
// with the branchy decisions (correct × hc × misestimate) already made.
func (g *jrsGroup) fetch(confs []pipeline.ConfStats, dist []int, pc int64, info bpred.Info, correct, committed bool) {
	ctr := g.leader.Counter(pc, info)
	ths := g.thresholds
	split := 0
	for split < len(ths) && ctr >= ths[split] {
		split++
	}
	mem := g.members
	switch {
	case correct && committed:
		for _, i := range mem[:split] { // high confidence, estimate right
			cs := &confs[i]
			cs.AllQ.Chc++
			cs.CommittedQ.Chc++
			dist[i]++
			cs.MisestCommitted.Record(dist[i], false)
		}
		for _, i := range mem[split:] { // low confidence: a mis-estimate
			cs := &confs[i]
			cs.AllQ.Clc++
			cs.CommittedQ.Clc++
			dist[i]++
			cs.MisestCommitted.Record(dist[i], true)
			dist[i] = 0
		}
	case committed: // mispredicted: high confidence is the mis-estimate
		for _, i := range mem[:split] {
			cs := &confs[i]
			cs.AllQ.Ihc++
			cs.CommittedQ.Ihc++
			dist[i]++
			cs.MisestCommitted.Record(dist[i], true)
			dist[i] = 0
		}
		for _, i := range mem[split:] {
			cs := &confs[i]
			cs.AllQ.Ilc++
			cs.CommittedQ.Ilc++
			dist[i]++
			cs.MisestCommitted.Record(dist[i], false)
		}
	case correct:
		for _, i := range mem[:split] {
			confs[i].AllQ.Chc++
		}
		for _, i := range mem[split:] {
			confs[i].AllQ.Clc++
		}
	default:
		for _, i := range mem[:split] {
			confs[i].AllQ.Ihc++
		}
		for _, i := range mem[split:] {
			confs[i].AllQ.Ilc++
		}
	}
}

// byThreshold sorts a group's parallel members/thresholds slices by
// threshold, ties broken by estimator index for determinism.
type byThreshold struct{ g *jrsGroup }

func (s byThreshold) Len() int { return len(s.g.members) }
func (s byThreshold) Less(a, b int) bool {
	if s.g.thresholds[a] != s.g.thresholds[b] {
		return s.g.thresholds[a] < s.g.thresholds[b]
	}
	return s.g.members[a] < s.g.members[b]
}
func (s byThreshold) Swap(a, b int) {
	s.g.members[a], s.g.members[b] = s.g.members[b], s.g.members[a]
	s.g.thresholds[a], s.g.thresholds[b] = s.g.thresholds[b], s.g.thresholds[a]
}

// planReplay splits ests into JRS threshold groups and solo estimators
// with devirtualized dispatch. Grouping assumes group members have
// identical table state — true whenever they were constructed fresh for
// this replay (the same freshness direct simulation needs, since
// estimators train during a run) and preserved by replay itself,
// because identical call sequences keep the tables identical.
func planReplay(ests []conf.Estimator) (groups []jrsGroup, solo []int, fast []estFast) {
	fast = make([]estFast, len(ests))
	byCfg := map[conf.JRSConfig]int{} // config minus threshold → groups index
	for i, e := range ests {
		switch v := e.(type) {
		case *conf.JRS:
			fast[i] = estFast{kind: estJRS, jrs: v}
			key := v.Config()
			key.Threshold = 0
			gi, ok := byCfg[key]
			if !ok {
				gi = len(groups)
				byCfg[key] = gi
				groups = append(groups, jrsGroup{leader: v})
			}
			groups[gi].members = append(groups[gi].members, i)
			groups[gi].thresholds = append(groups[gi].thresholds, v.Config().Threshold)
			continue
		case conf.SatCounters:
			fast[i] = estFast{kind: estSat}
		case conf.SatCountersMcFarling:
			fast[i] = estFast{kind: estSatMcF, satM: v}
		case conf.PatternHistory:
			fast[i] = estFast{kind: estPattern, pat: v}
		case conf.Static:
			fast[i] = estFast{kind: estStatic, st: v}
		}
		solo = append(solo, i)
	}
	// Singleton groups gain nothing from the shared-counter path; fold
	// them back into the solo list to keep one dispatch shape per size.
	kept := groups[:0]
	for _, g := range groups {
		if len(g.members) == 1 {
			solo = append(solo, g.members[0])
			continue
		}
		// Ascending thresholds let fetch find the high/low-confidence
		// boundary for a counter value with a single scan.
		sort.Sort(byThreshold{&g})
		kept = append(kept, g)
	}
	groups = kept
	sort.Ints(solo)
	return groups, solo, fast
}

// recordFetch applies the simulator's fetch-time confidence bookkeeping
// for one estimator (see onCondBranch): quadrants over all fetched
// branches, and over committed branches the committed quadrants plus
// the mis-estimation distance histogram with its reset-on-misestimate
// distance counter.
func recordFetch(cs *pipeline.ConfStats, dist *int, hc, correct, committed bool) {
	cs.AllQ.Record(correct, hc)
	if committed {
		cs.CommittedQ.Record(correct, hc)
		*dist++
		if hc != correct {
			cs.MisestCommitted.Record(*dist, true)
			*dist = 0
		} else {
			cs.MisestCommitted.Record(*dist, false)
		}
	}
}

// Replay evaluates ests against the recorded stream and returns one
// pipeline.ConfStats per estimator — bit-identical to what a direct
// simulation with the same estimators attached would have produced in
// Stats.Confidence. The steady-state loop is allocation-free; the only
// allocations are the per-call result and scratch slices.
//
// Estimators are driven exactly as the pipeline drives them: Estimate
// per fetch event in stream order, Resolve per resolve token with the
// corresponding committed fetch's pc/Info/correctness. Stateful
// estimators therefore train identically, with one deliberate
// exception: JRS estimators that differ only in threshold share one
// table (see jrsGroup), so only the group leader's table is trained —
// the returned statistics are unaffected, but non-leader instances
// should be discarded after the call. Estimators must be freshly
// constructed (untrained), the same requirement direct simulation
// imposes, and must not share mutable state with estimators being
// replayed concurrently elsewhere.
func Replay(t *Trace, ests []conf.Estimator) []pipeline.ConfStats {
	confs := make([]pipeline.ConfStats, len(ests))
	for i, e := range ests {
		confs[i].Name = e.Name()
	}
	dist := make([]int, len(ests))
	groups, solo, fast := planReplay(ests)

	// FIFO of committed-but-unresolved fetches. Occupancy is bounded by
	// the simulator's in-flight branch capacity (a few tens of entries);
	// the ring grows only if a trace from a deeper configuration needs it.
	ring := make([]resolveRec, 64)
	head, count := 0, 0

	for _, c := range t.chunks {
		fi := 0
		for k := 0; k < c.n; k++ {
			if !c.isFetch(k) {
				if count == 0 {
					continue // tolerate a truncated decode; cannot happen on recorded traces
				}
				rr := &ring[head]
				for gi := range groups {
					groups[gi].leader.Resolve(rr.pc, rr.info, rr.correct)
				}
				for _, i := range solo {
					fast[i].resolve(ests, i, rr.pc, rr.info, rr.correct)
				}
				head = (head + 1) & (len(ring) - 1)
				count--
				continue
			}
			pc := c.pc[fi]
			flg := c.flg[fi]
			ctr := c.ctr[fi]
			info := bpred.Info{
				Pred: flg&fPred != 0,
				Hist: c.hist[fi],
				C1:   bpred.Counter2(ctr & 3),
				C2:   bpred.Counter2(ctr >> 2 & 3),
				Meta: bpred.Counter2(ctr >> 4 & 3),
				P1:   flg&fP1 != 0,
				P2:   flg&fP2 != 0,
			}
			fi++
			correct := flg&fCorrect != 0
			committed := flg&fCommitted != 0
			for gi := range groups {
				groups[gi].fetch(confs, dist, pc, info, correct, committed)
			}
			for _, i := range solo {
				hc := fast[i].estimate(ests, i, pc, info)
				recordFetch(&confs[i], &dist[i], hc, correct, committed)
			}
			if committed {
				if count == len(ring) {
					ring = growRing(ring, head)
					head = 0
				}
				ring[(head+count)&(len(ring)-1)] = resolveRec{pc: pc, info: info, correct: correct}
				count++
			}
		}
	}
	return confs
}

// growRing doubles a full ring, re-basing the occupied run at index 0.
func growRing(ring []resolveRec, head int) []resolveRec {
	next := make([]resolveRec, len(ring)*2)
	n := copy(next, ring[head:])
	copy(next[n:], ring[:head])
	return next
}
