package replay

import (
	"bytes"
	"errors"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
)

// FuzzDecodeArch hardens the arch-trace decoder against untrusted
// input, the same contract FuzzDecode pins for the event codec:
// DecodeArch must never panic, must fail with exactly one of the typed
// errors, and on success must return a trace that (a) arch-replays
// without panicking — every structural invariant ArchReplay relies on
// was validated — and (b) re-encodes canonically: the decoded trace's
// encoding decodes back to itself byte-for-byte.
func FuzzDecodeArch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SPA"))
	f.Add([]byte("SPAT"))
	f.Add([]byte("SPRT\x01\x00"))                 // the event-trace format's magic
	f.Add([]byte("SPAT\x02\x00"))                 // future version
	f.Add([]byte("SPAT\x01\x01"))                 // nonzero class byte
	f.Add([]byte("SPAT\x01\x00\x00\xff\xff\x7f")) // absurd chunk count
	f.Add([]byte("SPAT\x01\x00\x00\x01\x00"))     // zero-branch chunk
	f.Add([]byte("SPAT\x01\x00\x00\x01\x01\x02")) // padding outcome bit set
	for _, n := range []int{0, 1, 7, 300, archChunkTokens + 5} {
		f.Add(archSynthetic(n).Encode())
	}
	{ // valid encode with a truncated tail
		enc := archSynthetic(50).Encode()
		f.Add(enc[:len(enc)-3])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeArch(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeArch returned an untyped error: %v", err)
			}
			return
		}
		// A decoded trace is safe to evaluate: chunk counts are in
		// range, so bitset and pc-column indexing cannot go out of
		// bounds in either replay pass.
		ArchReplay(tr, bpred.NewGshare(12), []conf.Estimator{conf.SatCounters{}})
		ArchSites(tr, bpred.NewGshare(12))

		enc := tr.Encode()
		tr2, err := DecodeArch(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(tr2.Encode(), enc) {
			t.Fatal("Encode is not canonical on decoded traces")
		}
		if tr2.Branches() != tr.Branches() || tr2.Committed() != tr.Committed() {
			t.Fatal("round trip changed stream counts")
		}
	})
}
