package replay

import (
	"sync"
	"sync/atomic"
	"testing"

	"specctrl/internal/pipeline"
)

// fakeBacking is an in-memory Backing implementation with call
// counters, standing in for a cluster coordinator's trace tier.
type fakeBacking struct {
	mu      sync.Mutex
	traces  map[string]*Trace
	stats   map[string]*pipeline.Stats
	fetches atomic.Int64
	stores  atomic.Int64
}

func newFakeBacking() *fakeBacking {
	return &fakeBacking{
		traces: make(map[string]*Trace),
		stats:  make(map[string]*pipeline.Stats),
	}
}

func (b *fakeBacking) Fetch(addr string) (*Trace, *pipeline.Stats, bool) {
	b.fetches.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.traces[addr]
	return t, b.stats[addr], ok
}

func (b *fakeBacking) Store(addr string, t *Trace, st *pipeline.Stats) {
	b.stores.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.traces[addr] = t
	b.stats[addr] = st
}

// TestCacheBackingFetch: a local miss that the backing tier can serve
// comes back as OutcomeFetch, without running the record function, and
// becomes resident (the next call is a plain hit).
func TestCacheBackingFetch(t *testing.T) {
	b := newFakeBacking()
	remote := recordSynthetic(80)
	b.traces["a"] = remote
	b.stats["a"] = &pipeline.Stats{Committed: 80}

	c := NewCache(0, nil)
	c.SetBacking(b)
	var calls atomic.Int64
	tr, st, outcome, err := c.GetOrRecordOutcome("a", fakeRecord(&calls, 80))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeFetch {
		t.Fatalf("outcome %s, want fetch", outcome)
	}
	if calls.Load() != 0 {
		t.Fatalf("record ran %d times on a backing hit", calls.Load())
	}
	if tr != remote || st.Committed != 80 {
		t.Fatal("fetch returned different pointers than the backing tier holds")
	}
	// Resident now: no second Fetch.
	_, _, outcome, err = c.GetOrRecordOutcome("a", fakeRecord(&calls, 80))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeHit {
		t.Fatalf("second outcome %s, want hit", outcome)
	}
	if b.fetches.Load() != 1 {
		t.Fatalf("backing fetched %d times, want 1", b.fetches.Load())
	}
}

// TestCacheBackingWriteThrough: a fresh local recording is offered to
// the backing tier, and a backing miss falls through to recording.
func TestCacheBackingWriteThrough(t *testing.T) {
	b := newFakeBacking()
	c := NewCache(0, nil)
	c.SetBacking(b)
	var calls atomic.Int64
	_, _, outcome, err := c.GetOrRecordOutcome("a", fakeRecord(&calls, 60))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeRecord {
		t.Fatalf("outcome %s, want record", outcome)
	}
	if calls.Load() != 1 {
		t.Fatalf("record ran %d times, want 1", calls.Load())
	}
	if b.stores.Load() != 1 {
		t.Fatalf("write-through stored %d times, want 1", b.stores.Load())
	}
	b.mu.Lock()
	_, stored := b.traces["a"]
	b.mu.Unlock()
	if !stored {
		t.Fatal("recorded trace missing from the backing tier")
	}
}

// TestCacheGetPut: Get peeks without recording; Put inserts a
// worker-uploaded trace and leaves an existing entry alone (first
// write wins — the trace at an address is deterministic).
func TestCacheGetPut(t *testing.T) {
	c := NewCache(0, nil)
	if _, _, ok := c.Get("a"); ok {
		t.Fatal("Get hit an empty cache")
	}
	first := recordSynthetic(40)
	c.Put("a", first, &pipeline.Stats{Committed: 40})
	tr, st, ok := c.Get("a")
	if !ok || tr != first || st.Committed != 40 {
		t.Fatal("Get did not return the Put trace")
	}
	// A duplicate Put must not replace the resident entry.
	c.Put("a", recordSynthetic(40), &pipeline.Stats{Committed: 99})
	if tr2, _, _ := c.Get("a"); tr2 != first {
		t.Fatal("duplicate Put replaced the resident trace")
	}
	if c.Len() != 1 {
		t.Fatalf("Len=%d after duplicate Put, want 1", c.Len())
	}
}
