package replay

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"specctrl/internal/obs"
)

// fakeArchRecord returns a record func producing a synthetic arch trace
// of the given size, counting invocations.
func fakeArchRecord(calls *atomic.Int64, n int) func() (*ArchTrace, error) {
	return func() (*ArchTrace, error) {
		calls.Add(1)
		return archSynthetic(n), nil
	}
}

// fakeArchBacking is an in-memory ArchBacking implementation with call
// counters, standing in for a cluster coordinator's arch-trace tier.
type fakeArchBacking struct {
	mu      sync.Mutex
	traces  map[string]*ArchTrace
	fetches atomic.Int64
	stores  atomic.Int64
}

func newFakeArchBacking() *fakeArchBacking {
	return &fakeArchBacking{traces: make(map[string]*ArchTrace)}
}

func (b *fakeArchBacking) Fetch(addr string) (*ArchTrace, bool) {
	b.fetches.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.traces[addr]
	return t, ok
}

func (b *fakeArchBacking) Store(addr string, t *ArchTrace) {
	b.stores.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.traces[addr] = t
}

// TestArchCacheHit: the second request for an address returns the
// first's result without recording again.
func TestArchCacheHit(t *testing.T) {
	c := NewArchCache(0, nil)
	var calls atomic.Int64
	tr1, err := c.GetOrRecord("a", fakeArchRecord(&calls, 100))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c.GetOrRecord("a", fakeArchRecord(&calls, 100))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("recorded %d times, want 1", calls.Load())
	}
	if tr1 != tr2 {
		t.Fatal("hit returned a different pointer than the recording")
	}
	if c.Len() != 1 || c.Bytes() <= 0 {
		t.Fatalf("Len=%d Bytes=%d after one insert", c.Len(), c.Bytes())
	}
}

// TestArchCacheSingleflight: concurrent requests for one address record
// once; everyone gets the same trace.
func TestArchCacheSingleflight(t *testing.T) {
	c := NewArchCache(0, nil)
	var calls atomic.Int64
	gate := make(chan struct{})
	record := func() (*ArchTrace, error) {
		calls.Add(1)
		<-gate // hold the flight open until all goroutines have queued
		return archSynthetic(50), nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*ArchTrace, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.GetOrRecord("addr", record)
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}(i)
	}
	// Let the flight's followers pile up, then release the recording.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("recorded %d times under contention, want 1", calls.Load())
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatal("waiters received different traces")
		}
	}
}

// TestArchCacheRecordError: a failed recording is not cached and does
// not wedge the flight — the next caller retries.
func TestArchCacheRecordError(t *testing.T) {
	c := NewArchCache(0, nil)
	boom := errors.New("boom")
	if _, err := c.GetOrRecord("a", func() (*ArchTrace, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the recording error", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed recording was cached")
	}
	var calls atomic.Int64
	if _, err := c.GetOrRecord("a", fakeArchRecord(&calls, 10)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatal("retry did not re-record")
	}
}

// TestArchCacheLRUEviction: inserts beyond the byte budget evict the
// least recently used entries, and the specctrl_archtrace_* metrics see
// every step.
func TestArchCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// Budget two synthetic traces, not three. (No stats footprint: arch
	// entries carry no sidecar.)
	one := archSynthetic(5000).Bytes()
	c := NewArchCache(int64(2*one+one/2), reg)

	var calls atomic.Int64
	for _, addr := range []string{"a", "b"} {
		if _, err := c.GetOrRecord(addr, fakeArchRecord(&calls, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, err := c.GetOrRecord("a", fakeArchRecord(&calls, 5000)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrRecord("c", fakeArchRecord(&calls, 5000)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}

	// "a" and "c" resident, "b" evicted: re-requesting "b" records anew.
	before := calls.Load()
	for _, addr := range []string{"a", "c"} {
		if _, err := c.GetOrRecord(addr, fakeArchRecord(&calls, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != before {
		t.Fatal("resident entries re-recorded")
	}
	if _, err := c.GetOrRecord("b", fakeArchRecord(&calls, 5000)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before+1 {
		t.Fatal("evicted entry did not re-record")
	}

	if max := c.Bytes(); max > int64(2*one+one/2) {
		t.Fatalf("cache holds %d bytes, over its %d budget", max, 2*one+one/2)
	}

	// The sequence above was: miss a, miss b, hit a, miss c (evict b),
	// hit a, hit c, miss b (evict a) — the counters must agree.
	dump := metricsDump(reg)
	if got := dump["specctrl_archtrace_records_total"]; got != float64(calls.Load()) {
		t.Errorf("records_total = %v, want %d", got, calls.Load())
	}
	if got := dump["specctrl_archtrace_hits_total"]; got != 3 {
		t.Errorf("hits_total = %v, want 3", got)
	}
	if got := dump["specctrl_archtrace_evictions_total"]; got != 2 {
		t.Errorf("evictions_total = %v, want 2", got)
	}
	if got := dump["specctrl_archtrace_cache_bytes"]; got != float64(c.Bytes()) {
		t.Errorf("cache_bytes gauge = %v, Bytes() = %d", got, c.Bytes())
	}
}

// TestArchCacheDefaultBudget: a zero budget selects the package
// default.
func TestArchCacheDefaultBudget(t *testing.T) {
	c := NewArchCache(0, nil)
	if c.max != DefaultCacheBytes {
		t.Fatalf("zero budget gave max=%d, want DefaultCacheBytes", c.max)
	}
	if c := NewArchCache(-5, nil); c.max != DefaultCacheBytes {
		t.Fatal("negative budget did not select the default")
	}
}

// TestArchCacheManyAddresses smoke-tests churn well past the budget.
func TestArchCacheManyAddresses(t *testing.T) {
	one := archSynthetic(1000).Bytes()
	c := NewArchCache(int64(3*one), nil)
	var calls atomic.Int64
	for i := 0; i < 20; i++ {
		if _, err := c.GetOrRecord(fmt.Sprint("w", i%7), fakeArchRecord(&calls, 1000)); err != nil {
			t.Fatal(err)
		}
		if c.Len() > 3 {
			t.Fatalf("cache grew to %d entries over its 3-entry budget", c.Len())
		}
	}
}

// TestArchCacheBackingFetch: a local miss that the backing tier can
// serve comes back as OutcomeFetch, without running the record
// function, and becomes resident (the next call is a plain hit).
func TestArchCacheBackingFetch(t *testing.T) {
	reg := obs.NewRegistry()
	b := newFakeArchBacking()
	remote := archSynthetic(80)
	b.traces["a"] = remote

	c := NewArchCache(0, reg)
	c.SetBacking(b)
	var calls atomic.Int64
	tr, outcome, err := c.GetOrRecordOutcome("a", fakeArchRecord(&calls, 80))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeFetch {
		t.Fatalf("outcome %s, want fetch", outcome)
	}
	if calls.Load() != 0 {
		t.Fatalf("record ran %d times on a backing hit", calls.Load())
	}
	if tr != remote {
		t.Fatal("fetch returned a different pointer than the backing tier holds")
	}
	// Resident now: no second Fetch.
	_, outcome, err = c.GetOrRecordOutcome("a", fakeArchRecord(&calls, 80))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeHit {
		t.Fatalf("second outcome %s, want hit", outcome)
	}
	if b.fetches.Load() != 1 {
		t.Fatalf("backing fetched %d times, want 1", b.fetches.Load())
	}
	dump := metricsDump(reg)
	if got := dump["specctrl_archtrace_fetches_total"]; got != 1 {
		t.Errorf("fetches_total = %v, want 1", got)
	}
	if got := dump["specctrl_archtrace_hits_total"]; got != 1 {
		t.Errorf("hits_total = %v, want 1", got)
	}
}

// TestArchCacheBackingWriteThrough: a fresh local recording is offered
// to the backing tier, and a backing miss falls through to recording.
func TestArchCacheBackingWriteThrough(t *testing.T) {
	b := newFakeArchBacking()
	c := NewArchCache(0, nil)
	c.SetBacking(b)
	var calls atomic.Int64
	_, outcome, err := c.GetOrRecordOutcome("a", fakeArchRecord(&calls, 60))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeRecord {
		t.Fatalf("outcome %s, want record", outcome)
	}
	if calls.Load() != 1 {
		t.Fatalf("record ran %d times, want 1", calls.Load())
	}
	if b.stores.Load() != 1 {
		t.Fatalf("write-through stored %d times, want 1", b.stores.Load())
	}
	b.mu.Lock()
	_, stored := b.traces["a"]
	b.mu.Unlock()
	if !stored {
		t.Fatal("recorded trace missing from the backing tier")
	}
}

// TestArchCacheGetPut: Get peeks without recording; Put inserts a
// worker-uploaded trace and leaves an existing entry alone (first write
// wins — the trace at an address is deterministic).
func TestArchCacheGetPut(t *testing.T) {
	c := NewArchCache(0, nil)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get hit an empty cache")
	}
	first := archSynthetic(40)
	c.Put("a", first)
	tr, ok := c.Get("a")
	if !ok || tr != first {
		t.Fatal("Get did not return the Put trace")
	}
	// A duplicate Put must not replace the resident entry.
	c.Put("a", archSynthetic(40))
	if tr2, _ := c.Get("a"); tr2 != first {
		t.Fatal("duplicate Put replaced the resident trace")
	}
	if c.Len() != 1 {
		t.Fatalf("Len=%d after duplicate Put, want 1", c.Len())
	}
}
