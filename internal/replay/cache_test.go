package replay

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// fakeRecord returns a record func producing a synthetic trace of the
// given size, counting invocations.
func fakeRecord(calls *atomic.Int64, n int) func() (*Trace, *pipeline.Stats, error) {
	return func() (*Trace, *pipeline.Stats, error) {
		calls.Add(1)
		return recordSynthetic(n), &pipeline.Stats{Committed: uint64(n)}, nil
	}
}

// TestCacheHit: the second Get for an address returns the first's
// result without recording again.
func TestCacheHit(t *testing.T) {
	c := NewCache(0, nil)
	var calls atomic.Int64
	tr1, st1, err := c.GetOrRecord("a", fakeRecord(&calls, 100))
	if err != nil {
		t.Fatal(err)
	}
	tr2, st2, err := c.GetOrRecord("a", fakeRecord(&calls, 100))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("recorded %d times, want 1", calls.Load())
	}
	if tr1 != tr2 || st1 != st2 {
		t.Fatal("hit returned different pointers than the recording")
	}
	if c.Len() != 1 || c.Bytes() <= 0 {
		t.Fatalf("Len=%d Bytes=%d after one insert", c.Len(), c.Bytes())
	}
}

// TestCacheSingleflight: concurrent Gets for one address record once;
// everyone gets the same trace.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0, nil)
	var calls atomic.Int64
	gate := make(chan struct{})
	record := func() (*Trace, *pipeline.Stats, error) {
		calls.Add(1)
		<-gate // hold the flight open until all goroutines have queued
		return recordSynthetic(50), &pipeline.Stats{}, nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*Trace, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, _, err := c.GetOrRecord("addr", record)
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}(i)
	}
	// Let the flight's followers pile up, then release the recording.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("recorded %d times under contention, want 1", calls.Load())
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatal("waiters received different traces")
		}
	}
}

// TestCacheRecordError: a failed recording is not cached and does not
// wedge the flight — the next caller retries.
func TestCacheRecordError(t *testing.T) {
	c := NewCache(0, nil)
	boom := errors.New("boom")
	if _, _, err := c.GetOrRecord("a", func() (*Trace, *pipeline.Stats, error) {
		return nil, nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the recording error", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed recording was cached")
	}
	var calls atomic.Int64
	if _, _, err := c.GetOrRecord("a", fakeRecord(&calls, 10)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatal("retry did not re-record")
	}
}

// TestCacheLRUEviction: inserts beyond the byte budget evict the least
// recently used entries, and the metrics see every step.
func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// Budget two synthetic traces (plus stats footprints), not three.
	one := recordSynthetic(5000).Bytes()
	c := NewCache(int64(2*(one+statsFootprint)+one/2), reg)

	var calls atomic.Int64
	for _, addr := range []string{"a", "b"} {
		if _, _, err := c.GetOrRecord(addr, fakeRecord(&calls, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, _, err := c.GetOrRecord("a", fakeRecord(&calls, 5000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrRecord("c", fakeRecord(&calls, 5000)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}

	// "a" and "c" resident, "b" evicted: re-requesting "b" records anew.
	before := calls.Load()
	for _, addr := range []string{"a", "c"} {
		if _, _, err := c.GetOrRecord(addr, fakeRecord(&calls, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != before {
		t.Fatal("resident entries re-recorded")
	}
	if _, _, err := c.GetOrRecord("b", fakeRecord(&calls, 5000)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before+1 {
		t.Fatal("evicted entry did not re-record")
	}

	if max := c.Bytes(); max > int64(2*(one+statsFootprint)+one/2) {
		t.Fatalf("cache holds %d bytes, over its %d budget", max, 2*(one+statsFootprint)+one/2)
	}

	// The sequence above was: miss a, miss b, hit a, miss c (evict b),
	// hit a, hit c, miss b (evict a) — the counters must agree.
	dump := metricsDump(reg)
	if got := dump["specctrl_trace_records_total"]; got != float64(calls.Load()) {
		t.Errorf("records_total = %v, want %d", got, calls.Load())
	}
	if got := dump["specctrl_trace_hits_total"]; got != 3 {
		t.Errorf("hits_total = %v, want 3", got)
	}
	if got := dump["specctrl_trace_evictions_total"]; got != 2 {
		t.Errorf("evictions_total = %v, want 2", got)
	}
	if got := dump["specctrl_trace_cache_bytes"]; got != float64(c.Bytes()) {
		t.Errorf("cache_bytes gauge = %v, Bytes() = %d", got, c.Bytes())
	}
}

// metricsDump flattens a registry snapshot into name → value (summing
// across label sets; the trace metrics are unlabelled).
func metricsDump(reg *obs.Registry) map[string]float64 {
	out := map[string]float64{}
	for _, m := range reg.Snapshot() {
		out[m.Name] += m.Value
	}
	return out
}

// TestCacheDefaultBudget: a zero budget selects the package default.
func TestCacheDefaultBudget(t *testing.T) {
	c := NewCache(0, nil)
	if c.max != DefaultCacheBytes {
		t.Fatalf("zero budget gave max=%d, want DefaultCacheBytes", c.max)
	}
	if c := NewCache(-5, nil); c.max != DefaultCacheBytes {
		t.Fatal("negative budget did not select the default")
	}
}

// TestCacheManyAddresses smoke-tests churn well past the budget.
func TestCacheManyAddresses(t *testing.T) {
	one := recordSynthetic(1000).Bytes()
	c := NewCache(int64(3*(one+statsFootprint)), nil)
	var calls atomic.Int64
	for i := 0; i < 20; i++ {
		if _, _, err := c.GetOrRecord(fmt.Sprint("w", i%7), fakeRecord(&calls, 1000)); err != nil {
			t.Fatal(err)
		}
		if c.Len() > 3 {
			t.Fatalf("cache grew to %d entries over its 3-entry budget", c.Len())
		}
	}
}
