// Binary encoding for Trace. The format exists so traces can be
// shipped between processes or fuzzed as untrusted input; the in-memory
// cache stores decoded *Trace values directly and never round-trips.
//
// Layout (all integers are encoding/binary varints unless noted):
//
//	magic    4 bytes "SPRT"
//	version  1 byte
//	nchunks  uvarint
//	per chunk:
//	  ntok   uvarint            // tokens in chunk, 1..chunkTokens
//	  kinds  ⌈ntok/64⌉ uvarints // token-kind bitset words
//	  pc     one zigzag varint per fetch, delta from previous fetch pc
//	  hist   one uvarint per fetch
//	  ctr    one raw byte per fetch
//	  flg    one raw byte per fetch
//
// Decode validates structure, not just syntax: kind-bit counts must
// match payload counts, padding bits must be zero, reserved flag bits
// must be zero, and the running committed-minus-resolved balance must
// never go negative — so a successfully decoded trace is safe to hand
// to Replay, and Encode∘Decode is the identity on Decode's output.

package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// traceMagic and traceVersion identify the serialized trace format.
const (
	traceMagic   = "SPRT"
	traceVersion = 1
)

// Typed decode errors, distinguishable by errors.Is.
var (
	// ErrBadMagic means the input does not start with a trace header.
	ErrBadMagic = errors.New("replay: not a trace (bad magic)")
	// ErrVersion means the trace was written by an incompatible format
	// version.
	ErrVersion = errors.New("replay: unsupported trace version")
	// ErrCorrupt means the input has a trace header but its body is
	// truncated, overlong, or structurally inconsistent.
	ErrCorrupt = errors.New("replay: corrupt trace")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// zigzag encodes a signed value for varint storage.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode serializes the trace.
func (t *Trace) Encode() []byte {
	// Size estimate: header + per-fetch worst case (10+10+1+1 bytes)
	// plus kind words; appends grow it if deltas compress worse than
	// the estimate (they never do — deltas only shrink pc varints).
	buf := make([]byte, 0, 16+t.tokens/8+t.fetches*22)
	buf = append(buf, traceMagic...)
	buf = append(buf, traceVersion)
	buf = binary.AppendUvarint(buf, uint64(len(t.chunks)))
	prevPC := int64(0)
	for _, c := range t.chunks {
		buf = binary.AppendUvarint(buf, uint64(c.n))
		for w := 0; w < (c.n+63)/64; w++ {
			buf = binary.AppendUvarint(buf, c.kinds[w])
		}
		for _, pc := range c.pc {
			buf = binary.AppendUvarint(buf, zigzag(pc-prevPC))
			prevPC = pc
		}
		for _, h := range c.hist {
			buf = binary.AppendUvarint(buf, h)
		}
		buf = append(buf, c.ctr...)
		buf = append(buf, c.flg...)
	}
	return buf
}

// decoder is a cursor over the encoded byte stream.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if len(d.buf)-d.off < n {
		return nil, corruptf("need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
	}
	// Full-slice expression: the chunk columns alias the input buffer,
	// and capping them keeps Trace.Bytes honest about retained memory.
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b, nil
}

// Decode parses and validates an encoded trace. The returned trace is
// structurally sound: every invariant Replay relies on has been
// checked, so replaying it cannot index out of range or underflow the
// resolve FIFO.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic)+1 {
		return nil, ErrBadMagic
	}
	if string(data[:len(traceMagic)]) != traceMagic {
		return nil, ErrBadMagic
	}
	if v := data[len(traceMagic)]; v != traceVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, traceVersion)
	}
	d := &decoder{buf: data, off: len(traceMagic) + 1}

	nchunks, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// A chunk encodes to at least 2 bytes; reject counts the input
	// cannot possibly hold before allocating for them.
	if nchunks > uint64(len(data)) {
		return nil, corruptf("chunk count %d exceeds input size", nchunks)
	}

	t := &Trace{chunks: make([]*chunk, 0, nchunks)}
	prevPC := int64(0)
	pending := 0 // committed fetches not yet resolved, across chunks
	for ci := uint64(0); ci < nchunks; ci++ {
		ntok, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if ntok == 0 || ntok > chunkTokens {
			return nil, corruptf("chunk %d: token count %d out of range (1..%d)", ci, ntok, chunkTokens)
		}
		c := &chunk{n: int(ntok), kinds: make([]uint64, chunkTokens/64)}
		words := (c.n + 63) / 64
		fetches := 0
		for w := 0; w < words; w++ {
			kw, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			c.kinds[w] = kw
			fetches += bits.OnesCount64(kw)
		}
		// Canonical form: kind bits past the last token must be clear,
		// otherwise two byte streams could decode to the same trace.
		if tail := c.n & 63; tail != 0 {
			if c.kinds[words-1]>>uint(tail) != 0 {
				return nil, corruptf("chunk %d: kind bits set past token count", ci)
			}
		}
		c.pc = make([]int64, fetches)
		c.hist = make([]uint64, fetches)
		for i := range c.pc {
			dv, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			prevPC += unzigzag(dv)
			c.pc[i] = prevPC
		}
		for i := range c.hist {
			h, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			c.hist[i] = h
		}
		if c.ctr, err = d.bytes(fetches); err != nil {
			return nil, err
		}
		if c.flg, err = d.bytes(fetches); err != nil {
			return nil, err
		}
		for i := 0; i < fetches; i++ {
			if c.ctr[i]&^0x3f != 0 {
				return nil, corruptf("chunk %d: reserved counter bits set in fetch %d", ci, i)
			}
			if c.flg[i]&^uint8(fPred|fP1|fP2|fCorrect|fCommitted) != 0 {
				return nil, corruptf("chunk %d: reserved flag bits set in fetch %d", ci, i)
			}
		}
		// Replay pops a committed fetch per resolve token; a stream
		// that resolves more than it committed is not a recording.
		fi := 0
		for k := 0; k < c.n; k++ {
			if c.isFetch(k) {
				if c.flg[fi]&fCommitted != 0 {
					pending++
				}
				fi++
			} else {
				if pending == 0 {
					return nil, corruptf("chunk %d: resolve token %d with no committed fetch pending", ci, k)
				}
				pending--
			}
		}
		t.chunks = append(t.chunks, c)
		t.fetches += fetches
		t.tokens += c.n
	}
	if d.off != len(data) {
		return nil, corruptf("%d trailing bytes after last chunk", len(data)-d.off)
	}
	return t, nil
}
