package replay

import (
	"errors"
	"reflect"
	"testing"

	"specctrl/internal/conf"
)

// FuzzDecode hardens the trace decoder against untrusted input, the
// same contract internal/trace's reader keeps: Decode must never
// panic, must fail with exactly one of the typed errors, and on
// success must return a trace that (a) replays without panicking —
// every structural invariant Replay relies on was validated — and
// (b) re-encodes canonically: Decode(Encode(decoded)) is the decoded
// trace again.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SPR"))
	f.Add([]byte("SPRT"))
	f.Add([]byte("SPCT\x01\x00"))           // the branch-trace format's magic
	f.Add([]byte("SPRT\x02\x00"))           // future version
	f.Add([]byte("SPRT\x01\xff\xff\x7f"))   // absurd chunk count
	f.Add([]byte("SPRT\x01\x01\x00"))       // zero-token chunk
	f.Add([]byte("SPRT\x01\x01\x01\x00"))   // lone resolve token
	f.Add([]byte("SPRT\x01\x01\x01\x01\x00\x00\x00\x20")) // lone fetch
	for _, n := range []int{0, 1, 7, 300, chunkTokens + 5} {
		f.Add(recordSynthetic(n).Encode())
	}
	{ // valid encode with a truncated tail
		enc := recordSynthetic(50).Encode()
		f.Add(enc[:len(enc)-3])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode returned an untyped error: %v", err)
			}
			return
		}
		// A decoded trace is safe to replay: the FIFO cannot underflow,
		// column indexing cannot go out of range.
		Replay(tr, []conf.Estimator{conf.SatCounters{}})

		enc := tr.Encode()
		tr2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(tr2.Encode(), enc) {
			t.Fatal("Encode is not canonical on decoded traces")
		}
		if tr2.Events() != tr.Events() || tr2.Fetches() != tr.Fetches() {
			t.Fatal("round trip changed event counts")
		}
	})
}
