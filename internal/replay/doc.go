// Package replay records branch streams of a pipeline simulation and
// re-evaluates predictors and confidence estimators against the
// recordings without re-running the pipeline. It provides two trace
// tiers, one per reuse boundary:
//
//	arch tier    ArchTrace  per workload              (pc, outcome)
//	events tier  Trace      per (workload, predictor) full fetch events
//
// # Events tier
//
// The paper's estimators are passive observers: the simulator calls
// Estimate for every fetched conditional branch (in fetch order) and
// Resolve for every committed branch (in program order, with the
// fetch-time pc/Info/correctness — see the pipeline package's event
// ordering contract). Estimators never influence fetch, timing, or
// prediction, so for a fixed (workload, predictor, pipeline
// configuration) the event stream is identical no matter which
// estimators are attached. Recording that stream once therefore lets
// any number of estimator configurations be evaluated afterwards, in
// parallel, at the cost of a table lookup per event instead of a full
// per-cycle simulation — the standard trace-driven methodology for
// predictor design-space sweeps.
//
// A Trace stores the stream as fixed-size chunks of tokens. A token is
// either a fetch event — carrying the branch pc, the full bpred.Info
// the predictor produced, whether the prediction was correct, and
// whether the branch was on the committed path — or a payload-free
// resolve event. Resolves need no payload because the simulator
// resolves committed branches in fetch order and passes Resolve the
// values captured at fetch: replay keeps a short FIFO of committed
// fetch events and pops it at each resolve token. Fetch payloads are
// columnar (one slice per field) for sequential-scan locality; the
// fetch/resolve interleaving is a per-chunk bitset.
//
// Exactness: Replay reproduces pipeline.Stats.Confidence — the
// per-estimator quadrants and mis-estimation histogram — bit for bit,
// because it replays the same Estimate/Resolve call sequence with the
// same arguments and applies the same statistics updates in the same
// order (asserted by differential tests in this package and in
// internal/experiments, and end to end by the results_full.txt
// byte-identity gate in scripts/check.sh).
//
// # Arch tier
//
// One stage further upstream, an ArchTrace records only the committed
// branch-outcome stream — (pc, taken) per committed conditional branch
// in program order — which is independent of the predictor too, so one
// recording per workload serves every (predictor, estimator)
// combination. ArchReplay re-runs a predictor model over the stream
// (devirtualized fast paths for the paper's three predictors) while
// feeding estimator tables through the same grouped/solo machinery the
// events tier uses; ArchSites derives the per-site accuracy profile
// the static estimator needs. Because the stream carries no timing,
// the arch tier defines a canonical trace-driven evaluation: every
// branch is committed, and every branch resolves immediately after its
// fetch (no resolve lag). The experiments layer routes the experiments
// that consume only committed-branch statistics through this tier and
// guarantees that all three acquisition modes — cached arch trace,
// derivation from an events-tier trace (ArchFromTrace), or a fresh
// recording — produce byte-identical results, because they reconstruct
// the identical stream and share one evaluation loop.
//
// Each tier has a binary codec (magics "SPRT" and "SPAT") for shipping
// traces between cluster nodes, and an LRU cache (Cache, ArchCache)
// with singleflight recording and an optional backing tier.
package replay
