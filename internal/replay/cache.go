package replay

import (
	"container/list"
	"sync"

	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// DefaultCacheBytes is the default retained-bytes budget for a trace
// Cache. At the default experiment scale a suite trace is a few
// megabytes (~18 B per fetched branch), so 256 MiB comfortably holds
// every (workload, predictor) pair the full experiment grid records
// while still bounding a long-running daemon.
const DefaultCacheBytes = 256 << 20

// Cache is an in-memory, content-addressed cache of recorded traces
// (and the base Stats of the run that recorded them), bounded by
// retained bytes with least-recently-used eviction.
//
// Recording is deduplicated singleflight-style (the same discipline as
// serve.Store and the experiments progCache): concurrent GetOrRecord
// calls for one address run the record function exactly once, and every
// waiter shares the outcome. Errors are not cached; the next call
// retries.
//
// Eviction only ever costs time, never correctness: a caller that
// misses re-records the trace from the deterministic simulation, so a
// budget smaller than the working set degrades to direct-simulation
// speed rather than misbehaving.
type Cache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	flights map[string]*traceFlight
	backing Backing

	records, hits, fetches, evictions *obs.Counter
	gauge                             *obs.Gauge
}

// cacheEntry is one resident trace; the lru list owns these.
type cacheEntry struct {
	addr  string
	trace *Trace
	stats *pipeline.Stats
	bytes int64
}

// traceFlight is one in-progress recording; followers wait on done.
type traceFlight struct {
	done  chan struct{}
	trace *Trace
	stats *pipeline.Stats
	err   error
}

// Backing is an optional second-level store behind a Cache — typically
// a cluster coordinator's trace tier reached over HTTP. On a local
// miss the cache consults Fetch before recording; after a successful
// recording it offers the trace to Store. Both calls are best-effort:
// Fetch returning false and Store failing silently only cost a
// re-recording, never correctness, because the trace is a deterministic
// function of its address.
//
// Implementations must be safe for concurrent use. The *Trace and
// *Stats exchanged are shared and treated as immutable, matching the
// cache's own contract.
type Backing interface {
	// Fetch returns the trace stored under addr, reporting whether
	// the backing tier had it.
	Fetch(addr string) (*Trace, *pipeline.Stats, bool)
	// Store offers a freshly recorded trace to the backing tier.
	Store(addr string, t *Trace, st *pipeline.Stats)
}

// SetBacking installs (or clears, with nil) the cache's second-level
// store. Safe to call concurrently with cache use; traces already
// resident are unaffected.
func (c *Cache) SetBacking(b Backing) {
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// NewCache returns a cache holding at most maxBytes of trace data
// (DefaultCacheBytes when maxBytes <= 0). When reg is non-nil the cache
// publishes specctrl_trace_{records,hits,evictions}_total and the
// specctrl_trace_cache_bytes gauge.
func NewCache(maxBytes int64, reg *obs.Registry) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{
		max:     maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*traceFlight),
	}
	if reg != nil {
		c.records = reg.Counter("specctrl_trace_records_total", nil)
		c.hits = reg.Counter("specctrl_trace_hits_total", nil)
		c.fetches = reg.Counter("specctrl_trace_fetches_total", nil)
		c.evictions = reg.Counter("specctrl_trace_evictions_total", nil)
		c.gauge = reg.Gauge("specctrl_trace_cache_bytes", nil)
	}
	return c
}

// Bytes returns the currently retained byte count.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of resident traces.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Outcome classifies how GetOrRecordOutcome satisfied a request, for
// tracing and reporting.
type Outcome string

const (
	// OutcomeHit: the trace was resident in the cache.
	OutcomeHit Outcome = "hit"
	// OutcomeRecord: this call ran the record function.
	OutcomeRecord Outcome = "record"
	// OutcomeWait: another caller was already recording; this call
	// waited for that flight and shared its result.
	OutcomeWait Outcome = "wait"
	// OutcomeFetch: the trace came from the backing tier (another
	// node's recording) instead of a local recording.
	OutcomeFetch Outcome = "fetch"
)

// GetOrRecord returns the trace cached under addr, running record to
// produce it on a miss. The returned Trace and Stats are shared and
// must be treated as immutable (Replay never mutates its trace; the
// stats are the base run's and callers clone what they modify).
func (c *Cache) GetOrRecord(addr string, record func() (*Trace, *pipeline.Stats, error)) (*Trace, *pipeline.Stats, error) {
	t, st, _, err := c.GetOrRecordOutcome(addr, record)
	return t, st, err
}

// GetOrRecordOutcome is GetOrRecord plus a report of how the request
// was satisfied: a resident hit, a fresh recording, or a wait on
// another caller's in-flight recording.
func (c *Cache) GetOrRecordOutcome(addr string, record func() (*Trace, *pipeline.Stats, error)) (*Trace, *pipeline.Stats, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[addr]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		if c.hits != nil {
			c.hits.Inc()
		}
		return e.trace, e.stats, OutcomeHit, nil
	}
	if f, ok := c.flights[addr]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err == nil && c.hits != nil {
			c.hits.Inc()
		}
		return f.trace, f.stats, OutcomeWait, f.err
	}
	f := &traceFlight{done: make(chan struct{})}
	c.flights[addr] = f
	backing := c.backing
	c.mu.Unlock()

	outcome := OutcomeRecord
	if backing != nil {
		if t, st, ok := backing.Fetch(addr); ok {
			f.trace, f.stats = t, st
			outcome = OutcomeFetch
		}
	}
	if outcome != OutcomeFetch {
		f.trace, f.stats, f.err = record()
	}

	c.mu.Lock()
	delete(c.flights, addr)
	if f.err == nil {
		c.insertLocked(addr, f.trace, f.stats)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err == nil {
		switch outcome {
		case OutcomeFetch:
			if c.fetches != nil {
				c.fetches.Inc()
			}
		case OutcomeRecord:
			if c.records != nil {
				c.records.Inc()
			}
			if backing != nil {
				// Best-effort write-through: a recording made here
				// becomes every other node's fetch hit.
				backing.Store(addr, f.trace, f.stats)
			}
		}
	}
	return f.trace, f.stats, outcome, f.err
}

// Get returns the trace resident under addr without recording on a
// miss and without consulting the backing tier. It counts as a use for
// LRU purposes but not as a hit in the metrics.
func (c *Cache) Get(addr string) (*Trace, *pipeline.Stats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[addr]
	if !ok {
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.trace, e.stats, true
}

// Put inserts a trace produced elsewhere (e.g. uploaded by a cluster
// worker) under addr, subject to the usual LRU budget. An existing
// entry is left in place: the trace at an address is deterministic, so
// first write wins and the duplicate is dropped.
func (c *Cache) Put(addr string, t *Trace, st *pipeline.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[addr]; ok {
		return
	}
	c.insertLocked(addr, t, st)
}

// insertLocked adds an entry and evicts from the LRU tail until the
// budget holds again. A trace larger than the whole budget is evicted
// immediately after insertion — the caller already holds the returned
// pointers, so the only cost is that the next request re-records.
func (c *Cache) insertLocked(addr string, t *Trace, st *pipeline.Stats) {
	e := &cacheEntry{addr: addr, trace: t, stats: st, bytes: int64(t.Bytes()) + statsFootprint}
	c.entries[addr] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.max {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim := c.lru.Remove(tail).(*cacheEntry)
		delete(c.entries, victim.addr)
		c.bytes -= victim.bytes
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	if c.gauge != nil {
		c.gauge.SetUint(uint64(c.bytes))
	}
}

// statsFootprint approximates the retained size of one pipeline.Stats
// (fixed-size histograms and quadrant counters) for budget accounting.
const statsFootprint = 4096
