package replay

import (
	"errors"
	"reflect"
	"testing"

	"specctrl/internal/conf"
)

// TestCodecRoundTrip: Decode(Encode(t)) must replay identically to t
// and reproduce its event counts, for a real recorded trace and for
// synthetic shapes (chunk-boundary crossing, single event).
func TestCodecRoundTrip(t *testing.T) {
	real, _ := recordRun(t, "mcfarling")
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"recorded", real},
		{"single", recordSynthetic(1)},
		{"chunk-crossing", recordSynthetic(chunkTokens)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.tr.Encode()
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode(Encode): %v", err)
			}
			if dec.Events() != tc.tr.Events() || dec.Fetches() != tc.tr.Fetches() {
				t.Fatalf("round trip changed counts: %d/%d events, %d/%d fetches",
					dec.Events(), tc.tr.Events(), dec.Fetches(), tc.tr.Fetches())
			}
			want := Replay(tc.tr, []conf.Estimator{conf.NewJRS(conf.JRSConfig{
				Entries: 256, Bits: 4, Threshold: 10, Enhanced: true})})
			got := Replay(dec, []conf.Estimator{conf.NewJRS(conf.JRSConfig{
				Entries: 256, Bits: 4, Threshold: 10, Enhanced: true})})
			if !reflect.DeepEqual(want, got) {
				t.Fatal("decoded trace replays differently from the original")
			}
			// Encode is canonical on decoded traces: re-encoding gives the
			// same bytes.
			if !reflect.DeepEqual(enc, dec.Encode()) {
				t.Fatal("re-encoding a decoded trace changed the bytes")
			}
		})
	}
}

// TestDecodeErrors exercises the typed error taxonomy: inputs that are
// not traces fail with ErrBadMagic, incompatible versions with
// ErrVersion, and structurally broken bodies with ErrCorrupt — never a
// panic and never a silently wrong trace.
func TestDecodeErrors(t *testing.T) {
	valid := recordSynthetic(100).Encode()

	corruptKinds := append([]byte{}, valid...)
	// Chunk header: magic(4) + version(1) + nchunks varint + ntok varint,
	// then the first kind word. Setting a high bit past the token count
	// breaks canonical form for the final chunk's tail; flipping payload
	// flag bits trips the reserved-bit check.
	corruptKinds[len(corruptKinds)-1] |= 0x80 // last flg byte: reserved bit

	for _, tc := range []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short", []byte("SPR"), ErrBadMagic},
		{"wrong magic", []byte("SPCT\x01\x00"), ErrBadMagic},
		{"wrong version", []byte("SPRT\x63\x00"), ErrVersion},
		{"truncated after header", []byte("SPRT\x01"), ErrCorrupt},
		{"absurd chunk count", append([]byte("SPRT\x01"), 0xff, 0xff, 0xff, 0xff, 0x0f), ErrCorrupt},
		{"truncated body", valid[:len(valid)/2], ErrCorrupt},
		{"trailing bytes", append(append([]byte{}, valid...), 0), ErrCorrupt},
		{"reserved flag bits", corruptKinds, ErrCorrupt},
		{"zero tokens in chunk", []byte("SPRT\x01\x01\x00"), ErrCorrupt},
		{"resolve with nothing pending", []byte("SPRT\x01\x01\x01\x00"), ErrCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

// TestDecodeEmptyTrace: a recorder that saw no events encodes to a
// header-only stream that decodes back to zero events.
func TestDecodeEmptyTrace(t *testing.T) {
	tr, err := NewRecorder().Trace()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Events() != 0 || dec.Fetches() != 0 {
		t.Fatalf("empty trace round-tripped to %d events / %d fetches", dec.Events(), dec.Fetches())
	}
}
