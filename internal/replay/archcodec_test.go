package replay

import (
	"bytes"
	"errors"
	"testing"

	"specctrl/internal/obs"
)

// archTracesEqual compares two arch traces branch by branch. (Struct
// equality is too strict: a recorder chunk holds full-capacity outcome
// words while a decoded chunk is trimmed to ⌈n/64⌉.)
func archTracesEqual(a, b *ArchTrace) bool {
	if a.branches != b.branches || a.committed != b.committed || len(a.chunks) != len(b.chunks) {
		return false
	}
	for ci := range a.chunks {
		ca, cb := a.chunks[ci], b.chunks[ci]
		if ca.n != cb.n {
			return false
		}
		for i := 0; i < ca.n; i++ {
			if ca.pc[i] != cb.pc[i] || ca.taken(i) != cb.taken(i) {
				return false
			}
		}
	}
	return true
}

// TestArchCodecRoundTrip: Decode(Encode(t)) reproduces the trace for
// streams of every interesting shape, including chunk-boundary
// crossings and the empty stream.
func TestArchCodecRoundTrip(t *testing.T) {
	cases := map[string]*ArchTrace{
		"empty":     NewArchRecorder().Trace(),
		"single":    archSynthetic(1),
		"small":     archSynthetic(300),
		"one-chunk": archSynthetic(archChunkTokens),
		"crossing":  archSynthetic(archChunkTokens + 5),
		"recorded":  nil, // filled below: a real simulator recording
	}
	cases["recorded"] = archRecordRun(t, "gshare")
	for name, tr := range cases {
		t.Run(name, func(t *testing.T) {
			enc := tr.Encode()
			dec, err := DecodeArch(enc)
			if err != nil {
				t.Fatalf("DecodeArch: %v", err)
			}
			if !archTracesEqual(dec, tr) {
				t.Fatal("decoded trace differs from original")
			}
			if !bytes.Equal(dec.Encode(), enc) {
				t.Fatal("re-encode is not the identity")
			}
		})
	}
}

// TestArchCodecCrossChunkDeltas pins the pc-delta chaining rule: the
// first pc of chunk k is a delta from the *last* pc of chunk k-1, not
// from zero — including negative deltas (a backward loop branch landing
// exactly on a chunk boundary).
func TestArchCodecCrossChunkDeltas(t *testing.T) {
	r := NewArchRecorder()
	// Fill chunk 0 with ascending pcs, then open chunk 1 with a branch
	// far *below* the previous pc.
	for i := 0; i < archChunkTokens; i++ {
		r.Branch(obs.BranchEvent{PC: int64(1<<20 + i*4), Outcome: i&1 == 0})
	}
	r.Branch(obs.BranchEvent{PC: 64, Outcome: true}) // negative cross-chunk delta
	r.Branch(obs.BranchEvent{PC: 1 << 30})
	r.SetCommitted(12345)
	tr := r.Trace()
	if len(tr.chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(tr.chunks))
	}

	dec, err := DecodeArch(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.chunks[1].pc[0]; got != 64 {
		t.Errorf("first pc of second chunk = %d, want 64", got)
	}
	if got := dec.chunks[1].pc[1]; got != 1<<30 {
		t.Errorf("second pc of second chunk = %d, want %d", got, 1<<30)
	}
	if !archTracesEqual(dec, tr) {
		t.Fatal("round trip lost the cross-chunk stream")
	}
}

// TestDecodeArchErrors feeds malformed inputs and checks each is
// rejected with the right typed error — same contract as the event
// codec: no panic, no silent acceptance.
func TestDecodeArchErrors(t *testing.T) {
	truncated := archSynthetic(300).Encode()
	truncated = truncated[:len(truncated)-3]
	trailing := append(archSynthetic(10).Encode(), 0x00)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short", []byte("SPA"), ErrBadMagic},
		{"wrong magic", []byte("XXXX\x01\x00"), ErrBadMagic},
		{"event-trace magic", []byte("SPRT\x01\x00"), ErrBadMagic},
		{"future version", []byte("SPAT\x02\x00"), ErrVersion},
		{"nonzero class byte", []byte("SPAT\x01\x01"), ErrCorrupt},
		{"truncated header", []byte("SPAT\x01\x00"), ErrCorrupt},
		{"absurd chunk count", []byte("SPAT\x01\x00\x00\xff\xff\x7f"), ErrCorrupt},
		{"zero-branch chunk", []byte("SPAT\x01\x00\x00\x01\x00"), ErrCorrupt},
		{"oversized chunk", []byte("SPAT\x01\x00\x00\x01\x81\x80\x04"), ErrCorrupt},
		{"padding outcome bits set", []byte("SPAT\x01\x00\x00\x01\x01\x02"), ErrCorrupt},
		{"truncated body", truncated, ErrCorrupt},
		{"trailing bytes", trailing, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := DecodeArch(tc.data)
			if tr != nil {
				t.Error("got a trace back from corrupt input")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
		})
	}
}
