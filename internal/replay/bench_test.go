package replay

import (
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
)

// BenchmarkRecord measures the recorder's per-event cost: one fetch
// (Estimate + Branch) plus its resolve, the sequence the pipeline
// drives for every committed conditional branch.
func BenchmarkRecord(b *testing.B) {
	b.ReportAllocs()
	r := NewRecorder()
	inflight := 0
	for i := 0; i < b.N; i++ {
		synthFetch(r, int64(4096+i*4), true)
		if inflight++; inflight == 8 {
			for ; inflight > 0; inflight-- {
				r.Resolve(0, bpred.Info{}, false)
			}
		}
	}
}

// BenchmarkReplayJRSSweep replays a recorded gcc/gshare trace against a
// 16-threshold JRS batch — the grouped path where all members share the
// leader's table. Reported time is per full-trace replay (~180k events
// at the test horizon).
func BenchmarkReplayJRSSweep(b *testing.B) {
	tr, _ := recordRun(b, "gshare")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ests := make([]conf.Estimator, 16)
		for t := 1; t <= 16; t++ {
			ests[t-1] = conf.NewJRS(conf.JRSConfig{Entries: 1024, Bits: 4, Threshold: t, Enhanced: true})
		}
		Replay(tr, ests)
	}
}

// BenchmarkReplaySolo replays the same trace against structurally
// distinct estimators — the devirtualized solo path.
func BenchmarkReplaySolo(b *testing.B) {
	tr, _ := recordRun(b, "gshare")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, []conf.Estimator{
			conf.NewJRS(conf.DefaultJRS),
			conf.SatCounters{},
			conf.NewPatternHistory(12),
			conf.NewDistance(3),
		})
	}
}
