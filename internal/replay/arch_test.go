package replay

import (
	"bytes"
	"reflect"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// archRecordRun simulates once with an ArchRecorder attached as the
// run's tracer — the canonical recording configuration the experiments
// layer uses (no estimators, committed count stamped from the finished
// run's stats).
func archRecordRun(t testing.TB, predName string) *ArchTrace {
	t.Helper()
	rec := NewArchRecorder()
	cfg := testConfig()
	cfg.Tracer = rec
	sim, err := pipeline.New(cfg, testProg(), testPred(t, predName))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec.SetCommitted(st.Committed)
	return rec.Trace()
}

// archSynthetic builds an n-branch arch trace without a simulator,
// mixing forward and backward pc strides (loops jump backwards, so
// negative deltas — including across chunk boundaries — are the normal
// case the codec must handle).
func archSynthetic(n int) *ArchTrace {
	r := NewArchRecorder()
	pc := int64(4096)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			pc += 4
		case 1:
			pc += 60
		case 2:
			pc -= 120
		case 3:
			pc += 4096
		default:
			pc += 8
		}
		r.Branch(obs.BranchEvent{PC: pc, Outcome: i%3 == 0})
	}
	r.SetCommitted(uint64(3 * n))
	return r.Trace()
}

// TestArchRecorderMatchesDerived pins the property the events-mode
// acquisition path relies on: deriving the committed stream from an
// event trace of the canonical recording run (ArchFromTrace) must be
// bit-identical — same branches, same outcomes, same encoding — to
// what an ArchRecorder attached to that run captures directly.
func TestArchRecorderMatchesDerived(t *testing.T) {
	direct := archRecordRun(t, "gshare")
	tr, base := recordRun(t, "gshare")
	derived := ArchFromTrace(tr, base.Committed)

	if direct.Branches() != derived.Branches() {
		t.Fatalf("branch counts differ: recorder %d, derived %d", direct.Branches(), derived.Branches())
	}
	if direct.Committed() != derived.Committed() {
		t.Fatalf("committed counts differ: recorder %d, derived %d", direct.Committed(), derived.Committed())
	}
	if !bytes.Equal(direct.Encode(), derived.Encode()) {
		t.Fatal("recorder-captured and trace-derived arch streams encode differently")
	}
}

// TestArchRecorderFiltersWrongPath: only correct-path branches land in
// the stream, and outcomes carry the committed direction.
func TestArchRecorderFiltersWrongPath(t *testing.T) {
	r := NewArchRecorder()
	r.Branch(obs.BranchEvent{PC: 100, Outcome: true})
	r.Branch(obs.BranchEvent{PC: 999, Outcome: true, WrongPath: true})
	r.Branch(obs.BranchEvent{PC: 104, Outcome: false})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr := r.Trace()
	if tr.Branches() != 2 {
		t.Fatalf("Branches = %d, want 2 (wrong-path event not filtered)", tr.Branches())
	}
	c := tr.chunks[0]
	if c.pc[0] != 100 || c.pc[1] != 104 {
		t.Fatalf("pcs = %v, want [100 104]", c.pc[:c.n])
	}
	if !c.taken(0) || c.taken(1) {
		t.Fatal("outcome bits do not match the recorded directions")
	}
}

// TestArchReplayDeterminism: two ArchReplay passes over one stream with
// freshly constructed predictors and estimators must agree exactly, for
// each devirtualized predictor family and the generic fallback.
func TestArchReplayDeterminism(t *testing.T) {
	tr := archRecordRun(t, "gshare")
	for _, predName := range []string{"gshare", "mcfarling", "sag"} {
		t.Run(predName, func(t *testing.T) {
			a := ArchReplay(tr, testPred(t, predName), allFamilies(t, predName))
			b := ArchReplay(tr, testPred(t, predName), allFamilies(t, predName))
			if !reflect.DeepEqual(a, b) {
				t.Fatal("repeated arch replays disagree")
			}
		})
	}
}

// TestArchReplayQuadrants sanity-checks the canonical evaluation's
// stats shape: every branch is committed, so each estimator's AllQ
// equals its CommittedQ and totals the stream's branch count.
func TestArchReplayQuadrants(t *testing.T) {
	tr := archSynthetic(10_000)
	confs := ArchReplay(tr, bpred.NewGshare(12), []conf.Estimator{
		conf.SatCounters{}, conf.NewJRS(conf.DefaultJRS),
	})
	for _, cs := range confs {
		if cs.AllQ != cs.CommittedQ {
			t.Errorf("%s: AllQ != CommittedQ in a committed-only evaluation", cs.Name)
		}
		if got := cs.CommittedQ.Total(); got != uint64(tr.Branches()) {
			t.Errorf("%s: quadrant total %d, want %d branches", cs.Name, got, tr.Branches())
		}
	}
}

// TestArchSitesCounts: the per-site pass accounts every branch exactly
// once and its correct counts are consistent with a whole-stream
// replay of the same predictor.
func TestArchSitesCounts(t *testing.T) {
	tr := archSynthetic(10_000)
	sites := ArchSites(tr, bpred.NewGshare(12))
	var total, correct uint64
	for _, s := range sites {
		total += s.Total
		correct += s.Correct
	}
	if total != uint64(tr.Branches()) {
		t.Fatalf("site totals sum to %d, want %d", total, tr.Branches())
	}
	confs := ArchReplay(tr, bpred.NewGshare(12), []conf.Estimator{conf.SatCounters{}})
	q := confs[0].CommittedQ
	if got := q.Chc + q.Clc; got != correct {
		t.Fatalf("sites count %d correct predictions, replay quadrants count %d", correct, got)
	}
}

// TestArchReplaySteadyStateAllocFree mirrors the event-tier guarantee:
// the per-branch loop must not allocate, so allocation counts are a
// small constant independent of stream length.
func TestArchReplaySteadyStateAllocFree(t *testing.T) {
	short := archSynthetic(1_000)
	long := archSynthetic(100_000)
	allocShort := testing.AllocsPerRun(10, func() {
		ArchReplay(short, bpred.NewGshare(12), []conf.Estimator{conf.SatCounters{}})
	})
	allocLong := testing.AllocsPerRun(10, func() {
		ArchReplay(long, bpred.NewGshare(12), []conf.Estimator{conf.SatCounters{}})
	})
	if allocShort != allocLong {
		t.Fatalf("allocations grow with stream length: %.0f for 1k branches, %.0f for 100k",
			allocShort, allocLong)
	}
}

// BenchmarkArchRecord measures the recorder's per-branch ingest cost —
// one committed-path Branch event, the only thing the canonical
// recording run pays on top of an estimator-less simulation.
func BenchmarkArchRecord(b *testing.B) {
	b.ReportAllocs()
	r := NewArchRecorder()
	for i := 0; i < b.N; i++ {
		r.Branch(obs.BranchEvent{PC: int64(4096 + i*4), Outcome: i&1 == 0})
	}
}

// BenchmarkArchReplay measures one full-stream canonical evaluation of
// a recorded gcc stream: gshare model plus a small mixed estimator set,
// per replay. This is the per-cell cost an arch-eligible grid pays
// after the one-time recording.
func BenchmarkArchReplay(b *testing.B) {
	tr := archRecordRun(b, "gshare")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArchReplay(tr, bpred.NewGshare(12), []conf.Estimator{
			conf.NewJRS(conf.DefaultJRS),
			conf.SatCounters{},
			conf.NewPatternHistory(12),
			conf.NewDistance(3),
		})
	}
}
