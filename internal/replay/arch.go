// Architectural trace tier: the committed branch-outcome stream.
//
// One stage upstream of the estimator-visible event stream sits the
// *architectural* stream — the (pc, outcome) sequence of committed
// conditional branches in program order. It is a property of the program
// alone: wrong-path fetches, predictor tables, and pipeline timing never
// change which branches commit or which way they go. Recording it once
// per workload lets any predictor model and any estimator configuration
// be re-evaluated as a pure table-update loop, without touching the
// emulator or the pipeline (the trace-driven methodology of classic
// predictability studies).
//
// The only pipeline influence on the stream is its *length*: the run
// stops when the committed-instruction budget is reached, and the exact
// overshoot depends on fetch-group alignment, which is timing- and
// therefore predictor-dependent. Recordings consequently always use one
// canonical recording configuration (the experiments layer records with
// its gshare predictor), so every consumer of a workload's arch trace
// sees the identical stream regardless of which predictor it evaluates.

package replay

import (
	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// archChunkTokens is the branch capacity of one arch chunk; the same
// sizing rationale as chunkTokens applies.
const archChunkTokens = 1 << 16

// archChunk is one fixed-capacity run of committed branches: a pc column
// and an outcome bitset (bit set = taken), one bit per branch.
type archChunk struct {
	n        int
	pc       []int64
	outcomes []uint64 // ⌈n/64⌉ words, bit i = branch i taken
}

// full reports whether the chunk has reached capacity.
func (c *archChunk) full() bool { return c.n == archChunkTokens }

// taken reports branch i's committed outcome.
func (c *archChunk) taken(i int) bool { return c.outcomes[i>>6]&(1<<(uint(i)&63)) != 0 }

// bytes estimates the chunk's retained memory from slice capacities.
func (c *archChunk) bytes() int { return cap(c.pc)*8 + cap(c.outcomes)*8 }

// ArchTrace is one workload's committed branch-outcome stream: every
// committed conditional branch's pc and direction, in program order,
// plus the committed-instruction count of the recording run. Branch
// target classes beyond conditional-direct are not yet distinguished;
// the codec reserves header space for a class column (see archcodec.go),
// and every branch in a v1 trace is conditional-direct by definition.
//
// An ArchTrace is immutable once obtained from ArchRecorder.Trace,
// ArchFromTrace, or DecodeArch, and is safe for concurrent ArchReplay
// and ArchSites calls.
type ArchTrace struct {
	chunks    []*archChunk
	branches  int
	committed uint64
}

// Branches returns the number of committed conditional branches.
func (t *ArchTrace) Branches() int { return t.branches }

// Committed returns the committed-instruction count of the recording
// run, for synthesizing the Stats fields replay cannot observe.
func (t *ArchTrace) Committed() uint64 { return t.committed }

// Bytes estimates the trace's retained memory; the arch cache's LRU
// budget accounts entries with it.
func (t *ArchTrace) Bytes() int {
	n := 0
	for _, c := range t.chunks {
		n += c.bytes()
	}
	return n
}

// append adds one committed branch to the trace.
func (t *ArchTrace) append(pc int64, taken bool) {
	var c *archChunk
	if n := len(t.chunks); n > 0 && !t.chunks[n-1].full() {
		c = t.chunks[n-1]
	} else {
		c = &archChunk{outcomes: make([]uint64, archChunkTokens/64)}
		t.chunks = append(t.chunks, c)
	}
	if taken {
		c.outcomes[c.n>>6] |= 1 << (uint(c.n) & 63)
	}
	c.pc = append(c.pc, pc)
	c.n++
	t.branches++
}

// ArchRecorder captures the committed branch stream of one run. It
// plugs into the pipeline as the run's obs.Tracer: correct-path fetch
// events arrive in fetch order, which for the committed path is program
// order, and wrong-path events are dropped. Attach it with
// Config.Tracer; no estimator is needed, so the recording run's base
// statistics are exactly an estimator-less run's.
//
// Call SetCommitted with the finished run's committed-instruction count
// before taking the trace. An ArchRecorder is single-run,
// single-goroutine state, like the simulator that drives it.
type ArchRecorder struct {
	t ArchTrace
}

// NewArchRecorder returns an empty recorder.
func NewArchRecorder() *ArchRecorder { return &ArchRecorder{} }

// Branch implements obs.Tracer: committed-path branches append to the
// stream, wrong-path branches are filtered out.
func (r *ArchRecorder) Branch(ev obs.BranchEvent) {
	if ev.WrongPath {
		return
	}
	r.t.append(ev.PC, ev.Outcome)
}

// Close implements obs.Tracer (the recorder has nothing to flush).
func (r *ArchRecorder) Close() error { return nil }

// SetCommitted records the run's committed-instruction count in the
// trace (from the finished run's Stats.Committed).
func (r *ArchRecorder) SetCommitted(n uint64) { r.t.committed = n }

// Trace returns the finished recording.
func (r *ArchRecorder) Trace() *ArchTrace { return &r.t }

// ArchFromTrace derives the committed branch-outcome stream from an
// estimator-visible event trace recorded under the same canonical
// configuration: committed fetch events in fetch order are the
// committed branches in program order, and each one's outcome is its
// predicted direction corrected by the correctness flag. committed is
// the recording run's committed-instruction count (from the trace's
// sidecar base stats). The result is bit-identical to what an
// ArchRecorder attached to the same run would have captured — a
// property the tests in this package pin.
func ArchFromTrace(tr *Trace, committed uint64) *ArchTrace {
	t := &ArchTrace{committed: committed}
	for _, c := range tr.chunks {
		fi := 0
		for k := 0; k < c.n; k++ {
			if !c.isFetch(k) {
				continue
			}
			flg := c.flg[fi]
			pc := c.pc[fi]
			fi++
			if flg&fCommitted == 0 {
				continue
			}
			// outcome == pred exactly when the prediction was correct,
			// so (pred == correct) reconstructs the direction bit.
			t.append(pc, (flg&fPred != 0) == (flg&fCorrect != 0))
		}
	}
	return t
}

// archStep applies one committed branch to every estimator: the
// fetch-time quadrant updates, then the immediate resolve. In the
// canonical trace-driven evaluation every branch is committed and
// resolves before the next branch is fetched, so AllQ equals CommittedQ
// and estimator tables train with no resolve lag.
type archStep struct {
	ests   []conf.Estimator
	confs  []pipeline.ConfStats
	dist   []int
	groups []jrsGroup
	solo   []int
	fast   []estFast
}

func newArchStep(ests []conf.Estimator) *archStep {
	s := &archStep{
		ests:  ests,
		confs: make([]pipeline.ConfStats, len(ests)),
		dist:  make([]int, len(ests)),
	}
	for i, e := range ests {
		s.confs[i].Name = e.Name()
	}
	s.groups, s.solo, s.fast = planReplay(ests)
	return s
}

func (s *archStep) branch(pc int64, info bpred.Info, correct bool) {
	for gi := range s.groups {
		s.groups[gi].fetch(s.confs, s.dist, pc, info, correct, true)
	}
	for _, i := range s.solo {
		hc := s.fast[i].estimate(s.ests, i, pc, info)
		recordFetch(&s.confs[i], &s.dist[i], hc, correct, true)
	}
	for gi := range s.groups {
		s.groups[gi].leader.Resolve(pc, info, correct)
	}
	for _, i := range s.solo {
		s.fast[i].resolve(s.ests, i, pc, info, correct)
	}
}

// ArchReplay evaluates a predictor model and a set of estimators
// against the committed stream and returns one pipeline.ConfStats per
// estimator. The predictor must be freshly constructed (untrained), as
// must the estimators — the same requirement direct simulation imposes;
// JRS estimators differing only in threshold share one table exactly as
// in Replay (see jrsGroup), so non-leader instances should be discarded
// after the call.
//
// Per committed branch, in order: the predictor predicts, every
// estimator observes the fetch (Estimate plus quadrant bookkeeping),
// the predictor trains on the outcome (Resolve, then Recover on a
// misprediction, per the bpred contract), and every estimator resolves.
// The three predictors the experiments sweep get devirtualized loops
// (the PR 4 pattern — interface dispatch on Predict/Resolve dominates
// the model cost); any other Predictor takes the generic path.
func ArchReplay(t *ArchTrace, pred bpred.Predictor, ests []conf.Estimator) []pipeline.ConfStats {
	s := newArchStep(ests)
	switch pr := pred.(type) {
	case *bpred.Gshare:
		for _, c := range t.chunks {
			for k := 0; k < c.n; k++ {
				pc, outcome := c.pc[k], c.taken(k)
				p, ckpt, info := pr.Predict(pc)
				s.branch(pc, info, p == outcome)
				pr.Resolve(pc, info, outcome)
				if p != outcome {
					pr.Recover(ckpt, pc, outcome)
				}
			}
		}
	case *bpred.McFarling:
		for _, c := range t.chunks {
			for k := 0; k < c.n; k++ {
				pc, outcome := c.pc[k], c.taken(k)
				p, ckpt, info := pr.Predict(pc)
				s.branch(pc, info, p == outcome)
				pr.Resolve(pc, info, outcome)
				if p != outcome {
					pr.Recover(ckpt, pc, outcome)
				}
			}
		}
	case *bpred.SAg:
		for _, c := range t.chunks {
			for k := 0; k < c.n; k++ {
				pc, outcome := c.pc[k], c.taken(k)
				p, ckpt, info := pr.Predict(pc)
				s.branch(pc, info, p == outcome)
				pr.Resolve(pc, info, outcome)
				if p != outcome {
					pr.Recover(ckpt, pc, outcome)
				}
			}
		}
	default:
		for _, c := range t.chunks {
			for k := 0; k < c.n; k++ {
				pc, outcome := c.pc[k], c.taken(k)
				p, ckpt, info := pred.Predict(pc)
				s.branch(pc, info, p == outcome)
				pred.Resolve(pc, info, outcome)
				if p != outcome {
					pred.Recover(ckpt, pc, outcome)
				}
			}
		}
	}
	return s.confs
}

// ArchSites runs a predictor model over the committed stream and
// returns per-branch-site accuracy — the profile the static confidence
// estimator thresholds (profile.FromSites). The predictor must be
// freshly constructed and is consumed by the pass.
func ArchSites(t *ArchTrace, pred bpred.Predictor) map[int64]*pipeline.SiteStats {
	sites := make(map[int64]*pipeline.SiteStats)
	for _, c := range t.chunks {
		for k := 0; k < c.n; k++ {
			pc, outcome := c.pc[k], c.taken(k)
			p, ckpt, info := pred.Predict(pc)
			s := sites[pc]
			if s == nil {
				s = &pipeline.SiteStats{}
				sites[pc] = s
			}
			s.Total++
			if p == outcome {
				s.Correct++
			}
			pred.Resolve(pc, info, outcome)
			if p != outcome {
				pred.Recover(ckpt, pc, outcome)
			}
		}
	}
	return sites
}
