package replay

import (
	"container/list"
	"sync"

	"specctrl/internal/obs"
)

// ArchCache is the in-memory, content-addressed cache for the upstream
// tier: committed branch-outcome streams keyed by ArchTraceAddress.
// It mirrors Cache's discipline — retained-bytes LRU, singleflight
// recording, first-write-wins Put, optional second-level backing — but
// carries no stats sidecar: everything a consumer needs is in the
// ArchTrace itself (the committed-instruction count rides inside it).
//
// Arch traces are an order of magnitude smaller than event traces
// (~9 B per committed branch vs. ~18 B per fetched token including
// wrong-path), so the same default budget holds far more workloads.
type ArchCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	flights map[string]*archFlight
	backing ArchBacking

	records, hits, fetches, evictions *obs.Counter
	gauge                             *obs.Gauge
}

// archCacheEntry is one resident arch trace; the lru list owns these.
type archCacheEntry struct {
	addr  string
	trace *ArchTrace
	bytes int64
}

// archFlight is one in-progress recording; followers wait on done.
type archFlight struct {
	done  chan struct{}
	trace *ArchTrace
	err   error
}

// ArchBacking is an optional second-level store behind an ArchCache —
// typically a cluster coordinator's arch-trace tier reached over HTTP.
// On a local miss the cache consults Fetch before recording; after a
// successful recording it offers the trace to Store. Both calls are
// best-effort, exactly as for Backing: failures only cost a
// re-recording, because the trace is a deterministic function of its
// address.
//
// Implementations must be safe for concurrent use. The *ArchTrace
// values exchanged are shared and treated as immutable.
type ArchBacking interface {
	// Fetch returns the arch trace stored under addr, reporting whether
	// the backing tier had it.
	Fetch(addr string) (*ArchTrace, bool)
	// Store offers a freshly recorded arch trace to the backing tier.
	Store(addr string, t *ArchTrace)
}

// SetBacking installs (or clears, with nil) the cache's second-level
// store. Safe to call concurrently with cache use.
func (c *ArchCache) SetBacking(b ArchBacking) {
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// NewArchCache returns an arch-trace cache holding at most maxBytes
// (DefaultCacheBytes when maxBytes <= 0). When reg is non-nil the cache
// publishes specctrl_archtrace_{records,hits,fetches,evictions}_total
// and the specctrl_archtrace_cache_bytes gauge, next to the event-tier
// specctrl_trace_* family.
func NewArchCache(maxBytes int64, reg *obs.Registry) *ArchCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &ArchCache{
		max:     maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*archFlight),
	}
	if reg != nil {
		c.records = reg.Counter("specctrl_archtrace_records_total", nil)
		c.hits = reg.Counter("specctrl_archtrace_hits_total", nil)
		c.fetches = reg.Counter("specctrl_archtrace_fetches_total", nil)
		c.evictions = reg.Counter("specctrl_archtrace_evictions_total", nil)
		c.gauge = reg.Gauge("specctrl_archtrace_cache_bytes", nil)
	}
	return c
}

// Bytes returns the currently retained byte count.
func (c *ArchCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of resident arch traces.
func (c *ArchCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// GetOrRecord returns the arch trace cached under addr, running record
// to produce it on a miss. The returned trace is shared and must be
// treated as immutable.
func (c *ArchCache) GetOrRecord(addr string, record func() (*ArchTrace, error)) (*ArchTrace, error) {
	t, _, err := c.GetOrRecordOutcome(addr, record)
	return t, err
}

// GetOrRecordOutcome is GetOrRecord plus a report of how the request
// was satisfied, using the same Outcome vocabulary as the event-tier
// cache: resident hit, fresh recording, wait on another caller's
// flight, or a fetch from the backing tier.
func (c *ArchCache) GetOrRecordOutcome(addr string, record func() (*ArchTrace, error)) (*ArchTrace, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[addr]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*archCacheEntry)
		c.mu.Unlock()
		if c.hits != nil {
			c.hits.Inc()
		}
		return e.trace, OutcomeHit, nil
	}
	if f, ok := c.flights[addr]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err == nil && c.hits != nil {
			c.hits.Inc()
		}
		return f.trace, OutcomeWait, f.err
	}
	f := &archFlight{done: make(chan struct{})}
	c.flights[addr] = f
	backing := c.backing
	c.mu.Unlock()

	outcome := OutcomeRecord
	if backing != nil {
		if t, ok := backing.Fetch(addr); ok {
			f.trace = t
			outcome = OutcomeFetch
		}
	}
	if outcome != OutcomeFetch {
		f.trace, f.err = record()
	}

	c.mu.Lock()
	delete(c.flights, addr)
	if f.err == nil {
		c.insertLocked(addr, f.trace)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err == nil {
		switch outcome {
		case OutcomeFetch:
			if c.fetches != nil {
				c.fetches.Inc()
			}
		case OutcomeRecord:
			if c.records != nil {
				c.records.Inc()
			}
			if backing != nil {
				// Best-effort write-through: a recording made here
				// becomes every other node's fetch hit.
				backing.Store(addr, f.trace)
			}
		}
	}
	return f.trace, outcome, f.err
}

// Get returns the arch trace resident under addr without recording on
// a miss and without consulting the backing tier. It counts as a use
// for LRU purposes but not as a hit in the metrics.
func (c *ArchCache) Get(addr string) (*ArchTrace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[addr]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*archCacheEntry).trace, true
}

// Put inserts an arch trace produced elsewhere (e.g. uploaded by a
// cluster worker) under addr, subject to the usual LRU budget. An
// existing entry is left in place: first write wins.
func (c *ArchCache) Put(addr string, t *ArchTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[addr]; ok {
		return
	}
	c.insertLocked(addr, t)
}

// insertLocked adds an entry and evicts from the LRU tail until the
// budget holds again, mirroring Cache.insertLocked.
func (c *ArchCache) insertLocked(addr string, t *ArchTrace) {
	e := &archCacheEntry{addr: addr, trace: t, bytes: int64(t.Bytes())}
	c.entries[addr] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.max {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim := c.lru.Remove(tail).(*archCacheEntry)
		delete(c.entries, victim.addr)
		c.bytes -= victim.bytes
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	if c.gauge != nil {
		c.gauge.SetUint(uint64(c.bytes))
	}
}
