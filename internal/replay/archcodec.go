// Binary encoding for ArchTrace — the upstream tier's wire format, for
// shipping committed branch streams between cluster nodes and fuzzing
// as untrusted input. The in-memory arch cache stores decoded
// *ArchTrace values directly and never round-trips.
//
// Layout (all integers are encoding/binary varints unless noted):
//
//	magic     4 bytes "SPAT"
//	version   1 byte
//	class     1 byte, must be 0 // reserved: branch target-class column
//	committed uvarint           // committed instructions of the run
//	nchunks   uvarint
//	per chunk:
//	  n        uvarint             // branches in chunk, 1..archChunkTokens
//	  outcomes ⌈n/64⌉ uvarints     // direction bitset words, bit = taken
//	  pc       one zigzag varint per branch, delta from previous pc
//
// The class byte reserves space for distinguishing branch target
// classes (conditional-direct vs. indirect vs. return) without a magic
// bump; in version 1 every branch is conditional-direct and the byte is
// zero. As with the event-trace codec, Decode validates canonical form
// — padding bits clear, no trailing bytes — so Encode∘DecodeArch is the
// identity on DecodeArch's output.

package replay

import (
	"encoding/binary"
	"fmt"
)

// archMagic and archVersion identify the serialized arch-trace format.
const (
	archMagic   = "SPAT"
	archVersion = 1
)

// Encode serializes the arch trace.
func (t *ArchTrace) Encode() []byte {
	// Header + bitset words + worst-case 10-byte pc deltas; deltas only
	// shrink, so appends never grow the buffer.
	buf := make([]byte, 0, 32+t.branches/8+t.branches*10)
	buf = append(buf, archMagic...)
	buf = append(buf, archVersion, 0)
	buf = binary.AppendUvarint(buf, t.committed)
	buf = binary.AppendUvarint(buf, uint64(len(t.chunks)))
	prevPC := int64(0)
	for _, c := range t.chunks {
		buf = binary.AppendUvarint(buf, uint64(c.n))
		for w := 0; w < (c.n+63)/64; w++ {
			buf = binary.AppendUvarint(buf, c.outcomes[w])
		}
		for _, pc := range c.pc {
			buf = binary.AppendUvarint(buf, zigzag(pc-prevPC))
			prevPC = pc
		}
	}
	return buf
}

// DecodeArch parses and validates an encoded arch trace. The returned
// trace is structurally sound and canonical: padding bits in the last
// outcome word of each chunk are clear and the input has no trailing
// bytes, so re-encoding a decoded trace reproduces the input bytes.
func DecodeArch(data []byte) (*ArchTrace, error) {
	if len(data) < len(archMagic)+2 {
		return nil, ErrBadMagic
	}
	if string(data[:len(archMagic)]) != archMagic {
		return nil, ErrBadMagic
	}
	if v := data[len(archMagic)]; v != archVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, archVersion)
	}
	if cl := data[len(archMagic)+1]; cl != 0 {
		return nil, corruptf("reserved class byte is %d, want 0", cl)
	}
	d := &decoder{buf: data, off: len(archMagic) + 2}

	committed, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nchunks, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// A chunk encodes to at least 2 bytes; reject counts the input
	// cannot possibly hold before allocating for them.
	if nchunks > uint64(len(data)) {
		return nil, corruptf("chunk count %d exceeds input size", nchunks)
	}

	t := &ArchTrace{committed: committed, chunks: make([]*archChunk, 0, nchunks)}
	prevPC := int64(0)
	for ci := uint64(0); ci < nchunks; ci++ {
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > archChunkTokens {
			return nil, corruptf("chunk %d: branch count %d out of range (1..%d)", ci, n, archChunkTokens)
		}
		words := (int(n) + 63) / 64
		c := &archChunk{n: int(n), outcomes: make([]uint64, words)}
		for w := 0; w < words; w++ {
			ow, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			c.outcomes[w] = ow
		}
		// Canonical form: outcome bits past the last branch must be
		// clear, otherwise two byte streams decode to the same trace.
		if tail := c.n & 63; tail != 0 {
			if c.outcomes[words-1]>>uint(tail) != 0 {
				return nil, corruptf("chunk %d: outcome bits set past branch count", ci)
			}
		}
		c.pc = make([]int64, c.n)
		for i := range c.pc {
			dv, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			prevPC += unzigzag(dv)
			c.pc[i] = prevPC
		}
		t.chunks = append(t.chunks, c)
		t.branches += c.n
	}
	if d.off != len(data) {
		return nil, corruptf("%d trailing bytes after last chunk", len(data)-d.off)
	}
	return t, nil
}
