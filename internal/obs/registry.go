package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric types a Registry holds.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bounded-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can move in both directions. All
// methods are safe for concurrent use; the value is stored as IEEE-754
// bits in a single atomic word, so readers never observe a torn write.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetUint stores an integer value (convenience for counters mirrored
// as gauges).
func (g *Gauge) SetUint(v uint64) { g.Set(float64(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bounded-bucket distribution: observations are counted
// into the first bucket whose upper bound is >= the value, with an
// implicit +Inf overflow bucket, Prometheus-style (cumulative on
// exposition, per-bucket internally). All methods are safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf bucket
	Counts []uint64
	Sum    float64
	Count  uint64
}

// series is one registered metric: a name, a fixed label set, and one
// of the three instrument types.
type series struct {
	name   string
	labels Labels
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Registration is get-or-create: asking
// for the same (name, labels) twice returns the same instrument, so
// independent components can share series without coordination.
// Registration takes a lock; the returned instruments update through
// atomics, so hot paths should hold on to them instead of re-resolving.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesKey canonicalizes (name, labels) into a map key.
func seriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0)
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(labels[k])
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating it with mk if
// absent. It panics when the name is invalid or the series exists with
// a different kind — both are static wiring errors.
func (r *Registry) lookup(name string, labels Labels, kind Kind, mk func(*series)) *series {
	mustValidName("metric", name, true)
	for k := range labels {
		mustValidName("label", k, false)
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if !ok {
		// The unlock is deferred so a panicking mk (static wiring
		// error) cannot strand the lock for whoever recovers.
		s = func() *series {
			r.mu.Lock()
			defer r.mu.Unlock()
			if s, ok := r.series[key]; ok {
				return s
			}
			s := &series{name: name, labels: labels.clone(), kind: kind}
			mk(s)
			r.series[key] = s
			return s
		}()
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s",
			name, s.kind, kind))
	}
	return s
}

// Counter returns the counter for (name, labels), creating it if
// needed.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	s := r.lookup(name, labels, KindCounter, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it if needed.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	s := r.lookup(name, labels, KindGauge, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// Histogram returns the histogram for (name, labels), creating it with
// the given strictly increasing upper bounds if needed. Bounds are
// fixed at creation; later calls may pass nil to reuse the existing
// series.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	s := r.lookup(name, labels, KindHistogram, func(s *series) {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %q created without bounds", name))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not increasing", name))
			}
		}
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
	})
	return s.hist
}

// Metric is one series in a registry snapshot.
type Metric struct {
	Name   string
	Labels Labels
	Kind   Kind
	// Value holds counter (as float) and gauge readings.
	Value float64
	// Hist is set for histograms.
	Hist *HistogramSnapshot
}

// Snapshot returns a point-in-time copy of every series, sorted by
// name then canonical label string, so output is deterministic.
func (r *Registry) Snapshot() []Metric {
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	keys := make([]string, 0, len(r.series))
	for k, s := range r.series {
		keys = append(keys, k)
		all = append(all, s)
	}
	r.mu.RUnlock()
	sort.Sort(&bykey{keys, all})
	out := make([]Metric, 0, len(all))
	for _, s := range all {
		m := Metric{Name: s.name, Labels: s.labels.clone(), Kind: s.kind}
		switch s.kind {
		case KindCounter:
			m.Value = float64(s.counter.Value())
		case KindGauge:
			m.Value = s.gauge.Value()
		case KindHistogram:
			h := s.hist.snapshot()
			m.Hist = &h
		}
		out = append(out, m)
	}
	return out
}

// bykey sorts two parallel slices by the first.
type bykey struct {
	keys   []string
	series []*series
}

func (b *bykey) Len() int           { return len(b.keys) }
func (b *bykey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *bykey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.series[i], b.series[j] = b.series[j], b.series[i]
}
