package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// spanJSON is the wire form shared by the JSONL sink and the
// /debug/traces NDJSON handler.
type spanJSON struct {
	TraceID  string         `json:"traceId"`
	SpanID   string         `json:"spanId"`
	ParentID string         `json:"parentId,omitempty"`
	Name     string         `json:"name"`
	Start    int64          `json:"startUnixNano"`
	DurNS    int64          `json:"durNs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func toJSON(s Span) spanJSON {
	j := spanJSON{
		TraceID: s.ctx.Trace.String(),
		SpanID:  s.ctx.Span.String(),
		Name:    s.Name,
		Start:   s.Start.UnixNano(),
		DurNS:   s.Finish.Sub(s.Start).Nanoseconds(),
	}
	if !s.Parent.IsZero() {
		j.ParentID = s.Parent.String()
	}
	if len(s.Attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	return j
}

// JSONL is a Sink writing one JSON object per finished span, in the
// same shape /debug/traces serves. Safe for concurrent ExportSpan.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	n   int
	err error
}

// NewJSONL returns a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// ExportSpan writes one span. The first write error sticks (Err);
// later spans are dropped rather than interleaving partial lines.
func (j *JSONL) ExportSpan(s Span) {
	data, err := json.Marshal(toJSON(s))
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err == nil {
		data = append(data, '\n')
		_, err = j.w.Write(data)
	}
	if err != nil {
		j.err = err
		return
	}
	j.n++
}

// Count returns the number of spans written.
func (j *JSONL) Count() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Handler serves the tracer's span store over HTTP: newline-delimited
// JSON of the retained finished spans (oldest first), or the store's
// occupancy/utilization as a JSON document with ?stats=1. A nil tracer
// yields 404s, so the endpoint can be mounted unconditionally.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "span tracing disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("stats") == "1" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(t.Stats())
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for _, s := range t.Snapshot() {
			if err := enc.Encode(toJSON(s)); err != nil {
				return
			}
		}
		_ = bw.Flush()
	})
}

// Chrome trace-event export. The output loads directly into Perfetto
// (ui.perfetto.dev) or chrome://tracing and renders each span as a
// complete ("X") slice.
//
// Track assignment: a span is placed on the track named by its own
// "tid" attribute, or — so children emitted deep in the replay/serve
// layers land on the worker that ran them — the nearest ancestor's. A
// span may also carry a "thread" string attribute naming its track;
// the runner labels worker tracks this way ("worker 3", "queue 3").
// Spans with no tid anywhere in their ancestry go to track 0 ("main").

// chromeEvent is one trace-event JSON object.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level trace-event JSON document.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// TIDAttr and ThreadAttr are the attribute keys WriteChrome consults
// for track assignment and naming.
const (
	TIDAttr    = "tid"
	ThreadAttr = "thread"
)

// attrInt coerces a numeric attribute value.
func attrInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case float64:
		return int64(n), true
	}
	return 0, false
}

// WriteChrome writes spans as Chrome trace-event JSON. Timestamps are
// rebased to the earliest span start so the timeline begins at zero.
func WriteChrome(w io.Writer, spans []Span) error {
	byID := make(map[SpanID]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ctx.Span] = &spans[i]
	}
	// tidOf resolves a span's track by walking parent links; depth is
	// bounded to survive (impossible in-process, possible cross-process)
	// parent cycles.
	var tidOf func(s *Span, depth int) int64
	tidOf = func(s *Span, depth int) int64 {
		if s == nil || depth > 64 {
			return 0
		}
		if v, ok := attrInt(s.Attr(TIDAttr)); ok {
			return v
		}
		return tidOf(byID[s.Parent], depth+1)
	}

	var base time.Time
	for i := range spans {
		if base.IsZero() || spans[i].Start.Before(base) {
			base = spans[i].Start
		}
	}

	doc := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+8)}
	threadNames := map[int64]string{}
	for i := range spans {
		s := &spans[i]
		tid := tidOf(s, 0)
		if name, ok := s.Attr(ThreadAttr).(string); ok && threadNames[tid] == "" {
			threadNames[tid] = name
		}
		args := make(map[string]any, len(s.Attrs)+1)
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		args["traceId"] = s.ctx.Trace.String()
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur:  float64(s.Finish.Sub(s.Start).Nanoseconds()) / 1e3,
			PID:  1,
			TID:  tid,
			Args: args,
		})
	}
	// Process/thread metadata, in stable tid order.
	tids := make([]int64, 0, len(threadNames))
	for tid := range threadNames {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "specctrl"},
	}}
	for _, tid := range tids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": threadNames[tid]},
		})
	}
	doc.TraceEvents = append(meta, doc.TraceEvents...)

	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("span: writing chrome trace: %w", err)
	}
	return nil
}
