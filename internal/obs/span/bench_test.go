package span

import "testing"

// BenchmarkSpanOverhead measures the disabled-tracing path the runner
// pays on every grid cell: a Child/End pair against a nil tracer. The
// contract — gated by scripts/benchgate.go — is one nil-check and zero
// allocations, so leaving instrumentation compiled into the hot path
// costs nothing when tracing is off.
func BenchmarkSpanOverhead(b *testing.B) {
	var tr *Tracer
	var parent Context
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Child(parent, "cell")
		s.SetAttrs()
		s.End()
	}
}

// BenchmarkSpanEnabled is the enabled-path cost per span (for sizing,
// not gated: it allocates by design).
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(Options{Capacity: 1024})
	root := tr.Root("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Child(root.Context(), "cell")
		s.End()
	}
}

// TestSpanDisabledAllocs pins the disabled path to zero allocations —
// the same property BenchmarkSpanOverhead gates, but enforced in the
// ordinary test suite where it runs on every `go test ./...`.
func TestSpanDisabledAllocs(t *testing.T) {
	var tr *Tracer
	var parent Context
	if n := testing.AllocsPerRun(1000, func() {
		s := tr.Child(parent, "cell")
		s.SetAttrs()
		s.End()
	}); n != 0 {
		t.Fatalf("disabled tracing allocates %v times per span", n)
	}
}
