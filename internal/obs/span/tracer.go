package span

import (
	"context"
	"encoding/binary"
	"sync"
	"time"
)

// DefaultCapacity is the default bound on retained finished spans.
// Spans are small (a name, IDs, a handful of attributes), so 16k spans
// cost low single-digit megabytes while holding several full `-exp all`
// sweeps' worth of cell spans.
const DefaultCapacity = 16384

// Options configures a Tracer.
type Options struct {
	// Capacity bounds the in-memory store of finished spans; once full,
	// the oldest spans are overwritten (<= 0 selects DefaultCapacity).
	Capacity int
	// Sample is the head-sampling fraction of new root traces in
	// [0, 1]; 0 means sample everything (the zero Options is a fully
	// sampling tracer). The decision is made once per trace from its
	// TraceID and inherited by every child, local or remote, so a trace
	// is always recorded whole or not at all.
	Sample float64
	// Sink, when non-nil, additionally receives every finished sampled
	// span as it ends (the store is unaffected).
	Sink Sink
}

// Sink receives finished spans; NewJSONL is the built-in
// implementation. ExportSpan may be called concurrently.
type Sink interface {
	ExportSpan(s Span)
}

// Span is one timed operation. Fields are exported for exporters and
// report builders; instrumentation may adjust Start (e.g. to backdate a
// queue-wait span to its enqueue time) and add Attrs any time before
// End. All methods are nil-receiver-safe, which is what makes disabled
// tracing a single nil-check at the call site.
type Span struct {
	Name   string
	Parent SpanID // zero for root spans
	Start  time.Time
	Finish time.Time
	Attrs  []Attr

	ctx  Context
	tr   *Tracer
	done bool
}

// Context returns the span's propagatable identity (zero for nil).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// SetAttrs appends attributes. No-op on nil.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Duration returns Finish - Start (zero before End).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish.IsZero() {
		return 0
	}
	return s.Finish.Sub(s.Start)
}

// Attr returns the value of the first attribute named key, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// End finishes the span now. No-op on nil; second calls are ignored.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt finishes the span at an explicit instant (for phases whose
// boundaries were measured before the span object was created).
func (s *Span) EndAt(t time.Time) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.Finish = t
	if s.tr != nil && s.ctx.Sampled {
		s.tr.record(*s)
	}
}

// Tracer creates spans and retains the finished ones in a bounded ring.
// The nil *Tracer is the disabled tracer: every method is safe to call
// and does nothing. A Tracer is safe for concurrent use.
type Tracer struct {
	capacity int
	sample   float64
	sink     Sink

	mu         sync.Mutex
	ring       []Span
	next       int    // ring write cursor once len(ring) == capacity
	finished   uint64 // sampled spans ever recorded
	sampledOut uint64 // root spans dropped by head sampling
}

// New returns a Tracer with the given options.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.Sample <= 0 || opts.Sample > 1 {
		opts.Sample = 1
	}
	return &Tracer{capacity: opts.Capacity, sample: opts.Sample, sink: opts.Sink}
}

// sampleTrace decides head sampling for a new trace, deterministically
// from the TraceID (so the decision can be re-derived anywhere the ID
// travels): the ID's low 8 bytes, read as a binary fraction, must fall
// below the sampling rate.
func (t *Tracer) sampleTrace(id TraceID) bool {
	if t.sample >= 1 {
		return true
	}
	v := binary.LittleEndian.Uint64(id[:8])
	return float64(v) < t.sample*(1<<64)
}

// Root starts a new trace and returns its root span. On a nil tracer
// it returns nil. A head-sampling rejection still returns a usable span
// carrying valid (unsampled) IDs, so propagation keeps working while
// nothing is recorded.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := newTraceID()
	sampled := t.sampleTrace(id)
	if !sampled {
		t.mu.Lock()
		t.sampledOut++
		t.mu.Unlock()
	}
	return t.start(Context{Trace: id, Span: newSpanID(), Sampled: sampled}, SpanID{}, name, attrs)
}

// Child starts a span under parent. An invalid parent (the zero
// Context) starts a new trace instead, so call sites need no
// have-I-got-a-parent branching. An unsampled parent produces an
// unsampled child: the whole tree inherits the root's head-sampling
// decision.
func (t *Tracer) Child(parent Context, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Root(name, attrs...)
	}
	return t.start(Context{Trace: parent.Trace, Span: newSpanID(), Sampled: parent.Sampled},
		parent.Span, name, attrs)
}

func (t *Tracer) start(ctx Context, parent SpanID, name string, attrs []Attr) *Span {
	return &Span{
		Name:   name,
		Parent: parent,
		Start:  time.Now(),
		Attrs:  attrs,
		ctx:    ctx,
		tr:     t,
	}
}

// record retains a finished span, overwriting the oldest once the ring
// is full, and forwards it to the sink.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.capacity
	}
	t.finished++
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.ExportSpan(s)
	}
}

// Snapshot returns the retained finished spans, oldest first. Nil
// tracers return nil.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Stats describes the span store's occupancy (served on
// /debug/traces?stats=1).
type Stats struct {
	Capacity    int     `json:"capacity"`
	Stored      int     `json:"stored"`
	Finished    uint64  `json:"finished"`    // sampled spans ever recorded
	Dropped     uint64  `json:"dropped"`     // recorded spans overwritten by the ring
	SampledOut  uint64  `json:"sampledOut"`  // root spans rejected by head sampling
	Utilization float64 `json:"utilization"` // stored / capacity
}

// Stats returns the store's current occupancy. Nil tracers report the
// zero Stats.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{
		Capacity:   t.capacity,
		Stored:     len(t.ring),
		Finished:   t.finished,
		Dropped:    t.finished - uint64(len(t.ring)),
		SampledOut: t.sampledOut,
	}
	st.Utilization = float64(st.Stored) / float64(st.Capacity)
	return st
}

// ctxKey keys the span stored in a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying s, for handing a parent span down a
// call path that already threads a context (the runner hands each cell
// its span this way).
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
