package span

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsAreUniqueAndNonZero(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tr, sp := newTraceID(), newSpanID()
		if tr.IsZero() || sp.IsZero() {
			t.Fatal("generated a zero ID")
		}
		if seen[tr.String()] || seen[sp.String()] {
			t.Fatal("generated a duplicate ID")
		}
		seen[tr.String()], seen[sp.String()] = true, true
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := New(Options{})
	root := tr.Root("root")
	c := root.Context()
	got, err := ParseTraceParent(c.TraceParent())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	if !strings.HasPrefix(c.TraceParent(), "00-") || !strings.HasSuffix(c.TraceParent(), "-01") {
		t.Fatalf("traceparent %q not in sampled version-00 form", c.TraceParent())
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	valid := Context{Trace: newTraceID(), Span: newSpanID(), Sampled: true}.TraceParent()
	for _, bad := range []string{
		"",
		"garbage",
		valid[:54],                          // truncated
		"01" + valid[2:],                    // unknown version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:], // zero trace id
		"00-" + strings.Repeat("z", 32) + "-" + valid[36:], // non-hex trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:],  // zero span id
		valid[:53] + "zz", // non-hex flags
	} {
		if _, err := ParseTraceParent(bad); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted malformed input", bad)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	c := Context{Trace: newTraceID(), Span: newSpanID(), Sampled: true}
	Inject(h, c)
	if got := Extract(h); got != c {
		t.Fatalf("Extract = %+v, want %+v", got, c)
	}
	// Invalid context injects nothing; malformed header extracts zero.
	h2 := http.Header{}
	Inject(h2, Context{})
	if h2.Get(Header) != "" {
		t.Error("Inject stamped an invalid context")
	}
	h2.Set(Header, "00-bogus")
	if got := Extract(h2); got.Valid() {
		t.Errorf("Extract of malformed header returned valid context %+v", got)
	}
}

func TestChildLinksAndSharesTrace(t *testing.T) {
	tr := New(Options{})
	root := tr.Root("root")
	child := tr.Child(root.Context(), "child")
	if child.Context().Trace != root.Context().Trace {
		t.Error("child does not share the root's TraceID")
	}
	if child.Parent != root.Context().Span {
		t.Error("child's parent link is not the root's SpanID")
	}
	child.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	// Child under an invalid parent starts a fresh trace.
	orphan := tr.Child(Context{}, "orphan")
	if !orphan.Context().Valid() || orphan.Context().Trace == root.Context().Trace {
		t.Error("orphan child did not start a fresh trace")
	}
	if !orphan.Parent.IsZero() {
		t.Error("orphan child has a parent link")
	}
}

func TestNilTracerAndNilSpanAreSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Root("root")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must be no-ops, not panics.
	s.SetAttrs(Str("k", "v"))
	s.End()
	s.EndAt(time.Now())
	if s.Context().Valid() {
		t.Error("nil span has a valid context")
	}
	if s.Attr("k") != nil || s.Duration() != 0 {
		t.Error("nil span returned data")
	}
	if tr.Snapshot() != nil {
		t.Error("nil tracer returned a snapshot")
	}
	if tr.Stats() != (Stats{}) {
		t.Error("nil tracer returned nonzero stats")
	}
	if c := tr.Child(Context{}, "x"); c != nil {
		t.Error("nil tracer returned a child span")
	}
}

// TestStoreEviction: the store is a bounded ring — the newest Capacity
// spans survive, the oldest are overwritten, and Stats accounts for the
// drops.
func TestStoreEviction(t *testing.T) {
	tr := New(Options{Capacity: 8})
	for i := 0; i < 20; i++ {
		s := tr.Root("s", Int("i", int64(i)))
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("stored %d spans, want capacity 8", len(spans))
	}
	for k, s := range spans {
		want := int64(12 + k) // oldest retained is #12, oldest-first order
		if got, _ := attrInt(s.Attr("i")); got != want {
			t.Fatalf("snapshot[%d] is span %d, want %d", k, got, want)
		}
	}
	st := tr.Stats()
	if st.Stored != 8 || st.Finished != 20 || st.Dropped != 12 {
		t.Errorf("stats = %+v, want stored 8 / finished 20 / dropped 12", st)
	}
	if st.Utilization != 1.0 {
		t.Errorf("utilization = %v, want 1.0", st.Utilization)
	}
}

func TestHeadSampling(t *testing.T) {
	never := New(Options{Sample: 1e-18})
	kept := 0
	for i := 0; i < 200; i++ {
		s := never.Root("r")
		if !s.Context().Valid() {
			t.Fatal("unsampled root lost its IDs (propagation must survive sampling)")
		}
		child := never.Child(s.Context(), "c")
		child.End()
		s.End()
		if s.Context().Sampled {
			kept++
		}
	}
	if kept != 0 {
		t.Errorf("sample=1e-18 kept %d/200 traces", kept)
	}
	if n := len(never.Snapshot()); n != 0 {
		t.Errorf("unsampled traces recorded %d spans", n)
	}
	if st := never.Stats(); st.SampledOut != 200 {
		t.Errorf("sampledOut = %d, want 200", st.SampledOut)
	}

	always := New(Options{Sample: 1})
	s := always.Root("r")
	s.End()
	if len(always.Snapshot()) != 1 {
		t.Error("sample=1 dropped a trace")
	}
}

// TestSamplingDeterministicPerTrace: the decision is a pure function of
// the TraceID, so remote children re-derive the same answer.
func TestSamplingDeterministicPerTrace(t *testing.T) {
	tr := New(Options{Sample: 0.5})
	for i := 0; i < 100; i++ {
		root := tr.Root("r")
		if got := tr.sampleTrace(root.Context().Trace); got != root.Context().Sampled {
			t.Fatal("sampleTrace disagrees with the root's recorded decision")
		}
		child := tr.Child(root.Context(), "c")
		if child.Context().Sampled != root.Context().Sampled {
			t.Fatal("child's sampling decision differs from its root")
		}
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New(Options{})
	s := tr.Root("r")
	s.End()
	first := s.Finish
	s.End()
	if s.Finish != first {
		t.Error("second End moved the finish time")
	}
	if n := len(tr.Snapshot()); n != 1 {
		t.Errorf("double End recorded %d spans, want 1", n)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	tr := New(Options{})
	s := tr.Root("r")
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Error("FromContext did not return the stored span")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext invented a span")
	}
	// Nil span leaves the context untouched.
	if NewContext(context.Background(), nil) != context.Background() {
		t.Error("NewContext(nil) wrapped the context")
	}
}

// TestConcurrentEmission: many goroutines start/end spans against one
// tracer; run under -race this is the span layer's own concurrency
// gate (the runner-level one lives in internal/runner).
func TestConcurrentEmission(t *testing.T) {
	tr := New(Options{Capacity: 64})
	root := tr.Root("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.Child(root.Context(), "cell", Int("worker", int64(w)))
				s.SetAttrs(Int("i", int64(i)))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	st := tr.Stats()
	if st.Finished != 401 {
		t.Errorf("finished = %d, want 401", st.Finished)
	}
	if len(tr.Snapshot()) != 64 {
		t.Errorf("stored %d, want capacity 64", len(tr.Snapshot()))
	}
}
