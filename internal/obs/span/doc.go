// Package span is the repository's zero-dependency distributed-span
// tracer: wall-clock spans with trace/span IDs and parent links,
// W3C-traceparent-style propagation across process boundaries (simctrl
// -server → simserved), a bounded in-memory store with head sampling,
// and three exporters — a JSONL sink, an NDJSON /debug/traces HTTP
// handler, and Chrome trace-event JSON that renders a full sweep as a
// per-worker timeline in Perfetto or chrome://tracing.
//
// Where internal/obs meters the *simulated machine* (cycle accounting,
// misprediction buckets), span meters the *simulator* itself: which
// cells, queue waits, record passes and cache misses a sweep's wall
// clock went to, across the runner → serve → replay stack.
//
// # Cost model
//
// Tracing is off by default and off means free: every entry point is a
// method on a possibly-nil *Tracer or *Span, so the instrumented hot
// paths pay exactly one nil-check and zero allocations when disabled
// (BenchmarkSpanOverhead gates this through scripts/benchgate.go).
// Enabled tracing allocates only at span granularity — per grid cell,
// HTTP request, or record pass — never per simulated cycle.
//
// # Typical wiring
//
//	tr := span.New(span.Options{})           // sample everything
//	root := tr.Root("exp:fig4")
//	child := tr.Child(root.Context(), "record", span.Str("workload", "gcc"))
//	child.End()
//	root.End()
//	_ = span.WriteChrome(f, tr.Snapshot())   // open in Perfetto
package span
