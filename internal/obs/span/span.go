package span

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request tree; every span created
// under one root shares it, across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-hex-digit form used in traceparent and JSON.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-hex-digit form used in traceparent and JSON.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Context is the propagatable identity of a span: what a child needs to
// link itself to a parent, in-process or across an HTTP hop. The zero
// Context is invalid and means "no parent" — starting a child under it
// begins a new trace.
type Context struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// idState seeds span/trace ID generation: an atomic counter stepped by
// the splitmix64 increment and finalized by its mixer, giving unique,
// well-distributed IDs without math/rand (experiment cells must draw
// randomness only from their seeds; ID generation stays outside that
// discipline entirely).
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// nextID returns a nonzero pseudo-random 64-bit ID (splitmix64).
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func newTraceID() TraceID {
	var t TraceID
	a, b := nextID(), nextID()
	for i := 0; i < 8; i++ {
		t[i] = byte(a >> (8 * i))
		t[8+i] = byte(b >> (8 * i))
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	a := nextID()
	for i := 0; i < 8; i++ {
		s[i] = byte(a >> (8 * i))
	}
	return s
}

// Header is the propagation header name. The value follows the W3C
// trace-context traceparent layout (version 00):
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// with flag bit 0 carrying the sampling decision.
const Header = "traceparent"

// TraceParent renders the context in traceparent form.
func (c Context) TraceParent() string {
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-" + flags
}

// ParseTraceParent parses a traceparent value. Unknown versions, bad
// lengths, non-hex digits and all-zero IDs are all rejected — a
// malformed header must degrade to "no parent", never to a garbage
// trace ID that aliases real ones.
func ParseTraceParent(s string) (Context, error) {
	var c Context
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags)
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return c, fmt.Errorf("span: malformed traceparent %q", s)
	}
	if s[:2] != "00" {
		return c, fmt.Errorf("span: unsupported traceparent version %q", s[:2])
	}
	if _, err := hex.Decode(c.Trace[:], []byte(s[3:35])); err != nil {
		return Context{}, fmt.Errorf("span: bad trace id in %q", s)
	}
	if _, err := hex.Decode(c.Span[:], []byte(s[36:52])); err != nil {
		return Context{}, fmt.Errorf("span: bad span id in %q", s)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return Context{}, fmt.Errorf("span: bad flags in %q", s)
	}
	if !c.Valid() {
		return Context{}, fmt.Errorf("span: all-zero id in %q", s)
	}
	c.Sampled = flags[0]&1 != 0
	return c, nil
}

// Inject stamps the context onto outgoing HTTP headers. Invalid
// contexts (tracing disabled) stamp nothing.
func Inject(h http.Header, c Context) {
	if c.Valid() {
		h.Set(Header, c.TraceParent())
	}
}

// Extract reads a propagated context from incoming HTTP headers,
// returning the zero Context when the header is absent or malformed.
func Extract(h http.Header) Context {
	v := h.Get(Header)
	if v == "" {
		return Context{}
	}
	c, err := ParseTraceParent(v)
	if err != nil {
		return Context{}
	}
	return c
}

// Attr is one span attribute. Values are strings, int64s, float64s or
// bools (the constructors below); anything else still round-trips
// through the JSON exporters via encoding/json.
type Attr struct {
	Key   string
	Value any
}

// Str returns a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int returns an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float returns a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool returns a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }
