package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := New(Options{Sink: sink})
	root := tr.Root("root", Str("experiment", "fig4"))
	child := tr.Child(root.Context(), "cell", Int("worker", 3))
	child.End()
	root.End()

	if sink.Count() != 2 {
		t.Fatalf("sink wrote %d spans, want 2", sink.Count())
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	sc := bufio.NewScanner(&buf)
	var lines []spanJSON
	for sc.Scan() {
		var j spanJSON
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, j)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	// Child ends first, so it is line 0.
	if lines[0].Name != "cell" || lines[1].Name != "root" {
		t.Errorf("lines = %q, %q", lines[0].Name, lines[1].Name)
	}
	if lines[0].TraceID != lines[1].TraceID {
		t.Error("JSONL spans do not share a trace ID")
	}
	if lines[0].ParentID != lines[1].SpanID {
		t.Error("child's parentId is not the root's spanId")
	}
	if lines[1].ParentID != "" {
		t.Error("root has a parentId")
	}
	if w, ok := lines[0].Attrs["worker"].(float64); !ok || w != 3 {
		t.Errorf("worker attr = %v", lines[0].Attrs["worker"])
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestJSONLSinkSticksOnError(t *testing.T) {
	sink := NewJSONL(&errWriter{n: 10})
	tr := New(Options{Sink: sink})
	for i := 0; i < 3; i++ {
		tr.Root("x").End()
	}
	if sink.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if sink.Count() != 0 {
		t.Errorf("count = %d after failed writes", sink.Count())
	}
}

func TestHandlerServesNDJSONAndStats(t *testing.T) {
	tr := New(Options{Capacity: 4})
	tr.Root("a").End()
	tr.Root("b").End()

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/traces: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("served %d spans, want 2", len(lines))
	}
	for _, line := range lines {
		var j spanJSON
		if err := json.Unmarshal([]byte(line), &j); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?stats=1", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Capacity != 4 || st.Stored != 2 || st.Utilization != 0.5 {
		t.Errorf("stats = %+v, want capacity 4 / stored 2 / utilization 0.5", st)
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Errorf("nil-tracer handler returned %d, want 404", rec.Code)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New(Options{})
	root := tr.Root("exp:fig4")
	cellA := tr.Child(root.Context(), "cell:fig4/gcc/gshare/main",
		Int(TIDAttr, 1), Str(ThreadAttr, "worker 0"), Str("key", "fig4/gcc/gshare/main"))
	// Child without its own tid: must inherit worker 1's track.
	rec := tr.Child(cellA.Context(), "record")
	time.Sleep(time.Millisecond)
	rec.End()
	cellA.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	byName := map[string]int64{}
	var haveThreadMeta bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			byName[e.Name] = e.TID
			if e.TS < 0 || e.Dur < 0 {
				t.Errorf("event %s has negative ts/dur", e.Name)
			}
		case "M":
			if e.Name == "thread_name" && e.TID == 1 && e.Args["name"] == "worker 0" {
				haveThreadMeta = true
			}
		}
	}
	if len(byName) != 3 {
		t.Fatalf("chrome trace has %d slices, want 3", len(byName))
	}
	if byName["cell:fig4/gcc/gshare/main"] != 1 {
		t.Error("cell span not on its tid track")
	}
	if byName["record"] != 1 {
		t.Error("record child did not inherit its parent's tid track")
	}
	if byName["exp:fig4"] != 0 {
		t.Error("root not on track 0")
	}
	if !haveThreadMeta {
		t.Error("missing thread_name metadata for worker track")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}
