package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// BranchEvent is the structured per-branch record the simulator hands
// to a Tracer: one event per fetched conditional branch, committed and
// wrong-path alike. It mirrors the pipeline's event layout without
// importing it, so sinks (including internal/trace's binary writer)
// can live below the simulator in the dependency graph.
type BranchEvent struct {
	PC        int64  `json:"pc"`
	Pred      bool   `json:"pred"`
	Outcome   bool   `json:"outcome"`
	HighConf  bool   `json:"hc"`
	WrongPath bool   `json:"wp,omitempty"`
	Cycle     uint64 `json:"cycle"`
	ConfMask  uint64 `json:"mask,omitempty"`
}

// Tracer receives the simulator's branch-event stream. The null sink
// is a nil Tracer: the hot path performs a single nil-check and pays
// nothing else when tracing is off. Branch is called from the
// simulation goroutine only; Close is called once after the run and
// reports any deferred sink error.
type Tracer interface {
	Branch(e BranchEvent)
	Close() error
}

// JSONL is a Tracer that writes one JSON object per line — the
// debugging sink: human-greppable, trivially consumed by jq or a
// spreadsheet, at roughly 20× the size of the binary trace format.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
	n   uint64
}

// NewJSONL returns a JSONL sink writing to w. The caller owns w and
// must call Close to flush.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Branch encodes one event. The first encode or write error sticks and
// is reported by Close.
func (t *JSONL) Branch(e BranchEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(e)
	t.n++
}

// Count returns the number of events written.
func (t *JSONL) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close flushes buffered output and returns the first error seen.
func (t *JSONL) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// multi fans events out to several sinks.
type multi struct {
	sinks []Tracer
}

// MultiSink returns a Tracer that duplicates every event to each sink
// and closes them all, returning the first Close error. Nil sinks are
// skipped; with zero (or all-nil) sinks it returns nil, the null sink.
func MultiSink(sinks ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multi{sinks: kept}
}

func (m *multi) Branch(e BranchEvent) {
	for _, s := range m.sinks {
		s.Branch(e)
	}
}

func (m *multi) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
