// Package obs is the repository's zero-dependency observability layer:
// a concurrency-safe metrics registry (counters, gauges, bounded
// histograms) with snapshot semantics and Prometheus-text / JSON
// exposition, an HTTP endpoint bundling the registry with expvar and
// pprof, a structured branch-event Tracer hook with pluggable sinks,
// and a lock-free live Progress view with a stderr heartbeat.
//
// The paper's argument is about where cycles go — misprediction
// recovery, wrong-path fetch, cache stalls — so the simulator has to be
// observable while it runs, not only after. Everything here is built on
// the standard library and designed so the simulator hot path pays one
// nil-check (tracing) or one integer compare (metrics publishing) when
// observation is disabled.
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	srv, _ := obs.Serve(":9090", reg, nil)  // /metrics, /metrics.json, /debug/pprof, /debug/traces
//	defer srv.Close()
//	run := obs.NewProgress()
//	stop := obs.StartHeartbeat(os.Stderr, time.Second, run)
//	defer stop()
//	// pass reg and run to the simulator via pipeline.Config.
package obs

import "fmt"

// Labels is a metric's label set. Label values are free-form; label
// names and metric names must match the Prometheus charset
// ([a-zA-Z_][a-zA-Z0-9_]*, colons allowed in metric names).
type Labels map[string]string

// clone returns a copy of l so callers can mutate their map after
// registration.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// With returns a copy of l with the extra key set; the receiver is not
// modified. Convenient for deriving per-series labels from a base set.
func (l Labels) With(key, value string) Labels {
	c := l.clone()
	if c == nil {
		c = make(Labels, 1)
	}
	c[key] = value
	return c
}

// validName reports whether s is a legal metric or label name.
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		case r == ':':
			if !allowColon {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// mustValidName panics on an illegal name: metric registration happens
// at setup time with static names, so a bad name is a programming
// error, matching how the rest of the repository treats invalid static
// configuration.
func mustValidName(kind, s string, allowColon bool) {
	if !validName(s, allowColon) {
		panic(fmt.Sprintf("obs: invalid %s name %q", kind, s))
	}
}
