package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live view of the current simulation run, written by
// the simulation goroutine through atomic stores and read concurrently
// by the heartbeat printer and HTTP handlers. The run identity changes
// rarely (between runs) and is guarded by a mutex; the per-cycle
// counters are single atomic words.
type Progress struct {
	mu    sync.Mutex
	run   string
	start time.Time

	target      atomic.Uint64
	committed   atomic.Uint64
	cycles      atomic.Uint64
	branches    atomic.Uint64
	mispredicts atomic.Uint64
}

// NewProgress returns an empty progress view.
func NewProgress() *Progress { return &Progress{} }

// StartRun marks the beginning of a named run (e.g. "gcc/gshare") with
// a committed-instruction target (0 when unbounded) and resets the
// counters.
func (p *Progress) StartRun(name string, target uint64) {
	p.mu.Lock()
	p.run = name
	p.start = time.Now()
	p.mu.Unlock()
	p.target.Store(target)
	p.committed.Store(0)
	p.cycles.Store(0)
	p.branches.Store(0)
	p.mispredicts.Store(0)
}

// Update publishes the run's current counters. Called periodically
// from the simulation hot loop; four atomic stores.
func (p *Progress) Update(committed, cycles, branches, mispredicts uint64) {
	p.committed.Store(committed)
	p.cycles.Store(cycles)
	p.branches.Store(branches)
	p.mispredicts.Store(mispredicts)
}

// ProgressSnapshot is a consistent-enough point-in-time read of a
// Progress (counters are read individually; they drift by at most one
// publish interval).
type ProgressSnapshot struct {
	Run       string
	Started   time.Time
	Target    uint64
	Committed uint64
	Cycles    uint64
	Branches  uint64
	Mispred   uint64
}

// IPC returns committed instructions per cycle.
func (s ProgressSnapshot) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns the committed-branch misprediction rate.
func (s ProgressSnapshot) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispred) / float64(s.Branches)
}

// ETA estimates the time left to reach Target at the average rate
// since the run started, or 0 when unknown (no target, no progress
// yet, or already done).
func (s ProgressSnapshot) ETA(now time.Time) time.Duration {
	if s.Target == 0 || s.Committed == 0 || s.Committed >= s.Target {
		return 0
	}
	elapsed := now.Sub(s.Started)
	if elapsed <= 0 {
		return 0
	}
	rate := float64(s.Committed) / elapsed.Seconds()
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(s.Target-s.Committed) / rate * float64(time.Second))
}

// Snapshot reads the current state.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	run, start := p.run, p.start
	p.mu.Unlock()
	return ProgressSnapshot{
		Run:       run,
		Started:   start,
		Target:    p.target.Load(),
		Committed: p.committed.Load(),
		Cycles:    p.cycles.Load(),
		Branches:  p.branches.Load(),
		Mispred:   p.mispredicts.Load(),
	}
}

// Line formats the one-line heartbeat for the snapshot, e.g.
//
//	run gcc/gshare: 1200000/2000000 committed (60.0%) ipc=1.54 misp=8.3% eta=2s
func (s ProgressSnapshot) Line(now time.Time) string {
	if s.Run == "" {
		return "run: idle"
	}
	line := fmt.Sprintf("run %s: %d", s.Run, s.Committed)
	if s.Target > 0 {
		line += fmt.Sprintf("/%d committed (%.1f%%)",
			s.Target, 100*float64(s.Committed)/float64(s.Target))
	} else {
		line += " committed"
	}
	line += fmt.Sprintf(" ipc=%.2f misp=%.1f%%", s.IPC(), 100*s.MispredictRate())
	if eta := s.ETA(now); eta > 0 {
		line += fmt.Sprintf(" eta=%s", eta.Round(100*time.Millisecond))
	}
	return line
}

// StartHeartbeat prints p's progress line to w every interval until
// the returned stop function is called. Stop waits for the printer
// goroutine to exit, so it is safe to close w afterwards.
func StartHeartbeat(w io.Writer, every time.Duration, p *Progress) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				fmt.Fprintln(w, p.Snapshot().Line(now))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
