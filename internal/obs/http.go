package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server exposes a Registry over HTTP together with the standard Go
// diagnostic endpoints:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU/heap/goroutine profiles
//
// Serve binds immediately (so ":0" callers can learn the chosen port)
// and serves in a background goroutine until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// Serve starts an observability endpoint for reg on addr (host:port;
// ":0" picks a free port). The returned server is already listening.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, reg)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "specctrl observability endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  JSON snapshot")
		fmt.Fprintln(w, "  /debug/vars    expvar")
		fmt.Fprintln(w, "  /debug/pprof/  profiles")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.srv.Close()
}
