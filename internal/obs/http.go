package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"specctrl/internal/obs/span"
)

// Server exposes a Registry over HTTP together with the standard Go
// diagnostic endpoints:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/healthz       liveness probe (always 200 while serving)
//	/buildinfo     module version + VCS stamp (JSON)
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU/heap/goroutine profiles
//	/debug/traces  finished spans as NDJSON (?stats=1 for occupancy)
//
// Serve binds immediately (so ":0" callers can learn the chosen port)
// and serves in a background goroutine until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// NewMux returns the standard observability mux for reg (the endpoint
// set documented on Server). Callers that serve more than metrics —
// cmd/simserved mounts its job API here — can register additional
// handlers on the returned mux before passing it to ServeHandler, so
// one port serves both the API and its observability. tr may be nil,
// in which case /debug/traces answers 404 "span tracing disabled".
func NewMux(reg *Registry, tr *span.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildInfo())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", span.Handler(tr))
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "specctrl observability endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  JSON snapshot")
		fmt.Fprintln(w, "  /healthz       liveness probe")
		fmt.Fprintln(w, "  /buildinfo     module version + VCS stamp")
		fmt.Fprintln(w, "  /debug/vars    expvar")
		fmt.Fprintln(w, "  /debug/pprof/  profiles")
		fmt.Fprintln(w, "  /debug/traces  finished spans (NDJSON; ?stats=1)")
	})
	return mux
}

// buildInfo collects the module version and VCS stamp embedded by the
// Go linker. Fields missing from the build (e.g. test binaries without
// a VCS stamp) are omitted.
func buildInfo() map[string]string {
	out := map[string]string{"goVersion": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Path != "" {
		out["module"] = bi.Main.Path
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if strings.HasPrefix(s.Key, "vcs") && s.Value != "" {
			out[s.Key] = s.Value
		}
	}
	return out
}

// Serve starts an observability endpoint for reg on addr (host:port;
// ":0" picks a free port). tr may be nil (tracing disabled). The
// returned server is already listening.
func Serve(addr string, reg *Registry, tr *span.Tracer) (*Server, error) {
	return ServeHandler(addr, NewMux(reg, tr))
}

// ServeHandler starts an HTTP server for an arbitrary handler
// (typically a NewMux with extra routes) on addr. The returned server
// is already listening.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.srv.Close()
}
