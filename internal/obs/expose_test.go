package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("runs_total", nil).Add(3)
	r.Gauge("ipc", Labels{"workload": "gcc", "predictor": "gshare"}).Set(1.25)
	h := r.Histogram("run_ipc", nil, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, testRegistry()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE runs_total counter",
		"runs_total 3",
		"# TYPE ipc gauge",
		`ipc{predictor="gshare",workload="gcc"} 1.25`,
		"# TYPE run_ipc histogram",
		`run_ipc_bucket{le="1"} 1`,
		`run_ipc_bucket{le="2"} 2`,
		`run_ipc_bucket{le="+Inf"} 3`,
		"run_ipc_sum 5",
		"run_ipc_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", Labels{"est": "JRS \"enhanced\"\nv2\\x"}).Set(1)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `g{est="JRS \"enhanced\"\nv2\\x"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped output missing %q:\n%s", want, b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, testRegistry()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(out) != 3 {
		t.Fatalf("got %d series, want 3", len(out))
	}
	byName := map[string]map[string]interface{}{}
	for _, m := range out {
		byName[m["name"].(string)] = m
	}
	if v := byName["runs_total"]["value"].(float64); v != 3 {
		t.Errorf("runs_total = %v", v)
	}
	if k := byName["ipc"]["kind"].(string); k != "gauge" {
		t.Errorf("ipc kind = %q", k)
	}
	hist := byName["run_ipc"]["histogram"].(map[string]interface{})
	if c := hist["count"].(float64); c != 3 {
		t.Errorf("histogram count = %v", c)
	}
}

func TestPromFloatForms(t *testing.T) {
	cases := map[float64]string{
		1.25: "1.25",
		0:    "0",
		1e9:  "1e+09",
	}
	for v, want := range cases {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
