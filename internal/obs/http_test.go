package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"specctrl/internal/obs/span"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := testRegistry()
	srv, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := get(t, srv.URL()+"/metrics"); code != 200 ||
		!strings.Contains(body, "runs_total 3") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get(t, srv.URL()+"/metrics.json"); code != 200 ||
		!strings.Contains(body, `"runs_total"`) {
		t.Errorf("/metrics.json: code %d body %q", code, body)
	}
	if code, body := get(t, srv.URL()+"/debug/vars"); code != 200 ||
		!strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code %d", code)
	}
	if code, body := get(t, srv.URL()+"/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	if code, body := get(t, srv.URL()+"/"); code != 200 ||
		!strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d", code)
	}
	if code, _ := get(t, srv.URL()+"/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

func TestServeDebugTraces(t *testing.T) {
	// nil tracer: mounted but disabled.
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, srv.URL()+"/debug/traces"); code != 404 {
		t.Errorf("/debug/traces with nil tracer: code %d, want 404", code)
	}

	tr := span.New(span.Options{Capacity: 4})
	tr.Root("probe").End()
	srv2, err := Serve("127.0.0.1:0", NewRegistry(), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if code, body := get(t, srv2.URL()+"/debug/traces"); code != 200 ||
		!strings.Contains(body, `"name":"probe"`) {
		t.Errorf("/debug/traces: code %d body %q", code, body)
	}
	if code, body := get(t, srv2.URL()+"/debug/traces?stats=1"); code != 200 ||
		!strings.Contains(body, `"utilization"`) {
		t.Errorf("/debug/traces?stats=1: code %d body %q", code, body)
	}
}

func TestServeHealthz(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := get(t, srv.URL()+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
}

func TestServeBuildinfo(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv.URL()+"/buildinfo")
	if code != 200 {
		t.Fatalf("/buildinfo: code %d", code)
	}
	var info map[string]string
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/buildinfo not JSON: %v\n%s", err, body)
	}
	if info["goVersion"] == "" {
		t.Errorf("/buildinfo missing goVersion: %v", info)
	}
	// In a `go test` binary the module path is always stamped.
	if info["module"] != "specctrl" {
		t.Errorf("/buildinfo module = %q, want specctrl", info["module"])
	}
}

func TestServeHandlerExtraRoutes(t *testing.T) {
	mux := NewMux(NewRegistry(), nil)
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := get(t, srv.URL()+"/v1/ping"); code != 200 || body != "pong\n" {
		t.Errorf("/v1/ping: code %d body %q", code, body)
	}
	if code, _ := get(t, srv.URL()+"/metrics"); code != 200 {
		t.Errorf("/metrics on extended mux: code %d", code)
	}
}

func TestServeLiveUpdates(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g := r.Gauge("live", nil)
	g.Set(1)
	if _, body := get(t, srv.URL()+"/metrics"); !strings.Contains(body, "live 1") {
		t.Errorf("first scrape: %q", body)
	}
	g.Set(2)
	if _, body := get(t, srv.URL()+"/metrics"); !strings.Contains(body, "live 2") {
		t.Errorf("second scrape: %q", body)
	}
}

func TestServeCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:99999", NewRegistry(), nil); err == nil {
		t.Error("no error for bad address")
	}
}
