package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	snap := p.Snapshot()
	if snap.Run != "" || snap.IPC() != 0 || snap.MispredictRate() != 0 {
		t.Errorf("zero progress snapshot not idle: %+v", snap)
	}
	if got := snap.Line(time.Now()); got != "run: idle" {
		t.Errorf("idle line = %q", got)
	}

	p.StartRun("gcc/gshare", 1000)
	p.Update(500, 400, 100, 10)
	snap = p.Snapshot()
	if snap.Run != "gcc/gshare" || snap.Committed != 500 || snap.Target != 1000 {
		t.Errorf("snapshot = %+v", snap)
	}
	if got := snap.IPC(); got != 1.25 {
		t.Errorf("IPC = %v, want 1.25", got)
	}
	if got := snap.MispredictRate(); got != 0.1 {
		t.Errorf("mispredict rate = %v, want 0.1", got)
	}
	line := snap.Line(snap.Started.Add(time.Second))
	for _, want := range []string{"gcc/gshare", "500/1000", "50.0%", "ipc=1.25", "misp=10.0%", "eta=1s"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}

	// A new run resets the counters.
	p.StartRun("perl/sag", 0)
	snap = p.Snapshot()
	if snap.Committed != 0 || snap.Target != 0 {
		t.Errorf("StartRun did not reset: %+v", snap)
	}
	if line := snap.Line(time.Now()); strings.Contains(line, "eta") {
		t.Errorf("unbounded run shows an ETA: %q", line)
	}
}

func TestProgressETA(t *testing.T) {
	p := NewProgress()
	p.StartRun("x", 2000)
	p.Update(1000, 1000, 0, 0)
	snap := p.Snapshot()
	// 1000 committed in 2s → 500/s → 1000 remaining → 2s.
	got := snap.ETA(snap.Started.Add(2 * time.Second))
	if got < 1900*time.Millisecond || got > 2100*time.Millisecond {
		t.Errorf("ETA = %v, want ~2s", got)
	}
	// Done or idle → no ETA.
	p.Update(2000, 2000, 0, 0)
	snap = p.Snapshot()
	if eta := snap.ETA(snap.Started.Add(time.Second)); eta != 0 {
		t.Errorf("finished run ETA = %v, want 0", eta)
	}
}

// syncBuffer is a goroutine-safe writer for heartbeat output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestHeartbeat(t *testing.T) {
	p := NewProgress()
	p.StartRun("compress/gshare", 100)
	p.Update(50, 40, 10, 1)
	var buf syncBuffer
	stop := StartHeartbeat(&buf, 5*time.Millisecond, p)
	deadline := time.Now().Add(2 * time.Second)
	for buf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "compress/gshare") {
		t.Errorf("heartbeat output %q missing run name", out)
	}
	// No further lines after stop returns.
	n := len(buf.String())
	time.Sleep(20 * time.Millisecond)
	if len(buf.String()) != n {
		t.Error("heartbeat kept printing after stop")
	}
}

// TestProgressConcurrent exercises writer/reader races under -race.
func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%100 == 0 {
				p.StartRun("w/p", 1000)
			}
			p.Update(i, i, i/10, i/100)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := p.Snapshot()
			_ = snap.Line(time.Now())
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
}
