package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", Labels{"path": "/metrics"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("ipc", nil)
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
	g.Add(-0.5)
	if g.Value() != 1.0 {
		t.Errorf("gauge after Add = %v, want 1.0", g.Value())
	}
	g.SetUint(7)
	if g.Value() != 7 {
		t.Errorf("gauge after SetUint = %v, want 7", g.Value())
	}
}

func TestGetOrCreateSharesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", Labels{"k": "v"})
	b := r.Counter("x", Labels{"k": "v"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x", Labels{"k": "other"})
	if a == c {
		t.Error("different labels returned the same counter")
	}
	// The registry must key on values, not just pairs concatenated:
	// {a: "b_c"} and {a_b: "c"} style collisions.
	d := r.Gauge("y", Labels{"a": "b", "c": "d"})
	e := r.Gauge("y", Labels{"a": "b_0c", "c": "d"})
	if d == e {
		t.Error("label-value collision")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil)
	defer func() {
		if recover() == nil {
			t.Error("no panic re-registering counter as gauge")
		}
	}()
	r.Gauge("x", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for metric name %q", bad)
				}
			}()
			r.Counter(bad, nil)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid label name")
		}
	}()
	r.Counter("ok", Labels{"bad-label": "v"})
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", nil, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{1, 2, 1, 1} // (-inf,1], (1,2], (2,4], (4,+inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 0.5+1.5+1.7+3+100 {
		t.Errorf("sum = %v", s.Sum)
	}
	// Boundary values land in the bucket whose upper bound equals them.
	h2 := r.Histogram("lat2", nil, []float64{1, 2})
	h2.Observe(1)
	if got := h2.snapshot().Counts[0]; got != 1 {
		t.Errorf("boundary observation in bucket 0 = %d, want 1", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for bounds %v", bounds)
				}
			}()
			r.Histogram("h", nil, bounds)
		}()
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_metric", nil)
	r.Gauge("a_metric", Labels{"z": "1"})
	r.Gauge("a_metric", Labels{"a": "1"})
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap))
	}
	if snap[0].Name != "a_metric" || snap[2].Name != "b_metric" {
		t.Errorf("unexpected order: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[0].Labels["a"] != "1" {
		t.Errorf("label-sorted order wrong: %v before %v", snap[0].Labels, snap[1].Labels)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x", Labels{"k": "v"})
	c.Add(3)
	snap := r.Snapshot()
	c.Add(10)
	if snap[0].Value != 3 {
		t.Errorf("snapshot value moved: %v", snap[0].Value)
	}
	snap[0].Labels["mutate"] = "me" // must not corrupt the registry
	if len(r.Snapshot()[0].Labels) != 1 {
		t.Error("snapshot labels alias the registry's")
	}
}

// TestConcurrentUse hammers registration and updates from many
// goroutines; run under -race (scripts/check.sh) this is the registry's
// thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared_total", nil).Inc()
				r.Gauge("g", Labels{"w": string(rune('a' + id))}).Set(float64(j))
				r.Histogram("h", nil, []float64{1, 10, 100}).Observe(float64(j % 20))
				if j%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared_total", nil).Value(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", nil, nil).snapshot().Count; got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestGaugeSpecialValues(t *testing.T) {
	var g Gauge
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Error("gauge lost +Inf")
	}
	g.Set(math.NaN())
	if !math.IsNaN(g.Value()) {
		t.Error("gauge lost NaN")
	}
}

func TestLabelsWith(t *testing.T) {
	base := Labels{"a": "1"}
	derived := base.With("b", "2")
	if len(base) != 1 {
		t.Error("With mutated the receiver")
	}
	if derived["a"] != "1" || derived["b"] != "2" {
		t.Errorf("derived = %v", derived)
	}
	var nilBase Labels
	if got := nilBase.With("k", "v"); got["k"] != "v" {
		t.Errorf("nil base With = %v", got)
	}
}
