package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): a # TYPE line per metric name
// followed by one sample line per series, with histogram series
// expanded into cumulative _bucket/_sum/_count samples.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	typed := map[string]bool{}
	for _, m := range snap {
		if !typed[m.Name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			typed[m.Name] = true
		}
		if err := writePromSample(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writePromSample(w io.Writer, m Metric) error {
	if m.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			m.Name, promLabels(m.Labels, "", ""), promFloat(m.Value))
		return err
	}
	h := m.Hist
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = promFloat(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, promLabels(m.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		m.Name, promLabels(m.Labels, "", ""), promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		m.Name, promLabels(m.Labels, "", ""), h.Count)
	return err
}

// promLabels renders a {k="v",...} block with keys sorted, optionally
// appending one extra pair (used for histogram le labels). It returns
// the empty string for an empty set.
func promLabels(l Labels, extraKey, extraVal string) string {
	if len(l) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(promEscape(l[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the text format rules.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trippable form, +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonMetric is the JSON exposition shape of one series.
type jsonMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *jsonHistogram    `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// WriteJSON renders the registry snapshot as a JSON array, one object
// per series, in the same deterministic order as WritePrometheus.
func WriteJSON(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	out := make([]jsonMetric, 0, len(snap))
	for _, m := range snap {
		jm := jsonMetric{Name: m.Name, Kind: m.Kind.String(), Labels: m.Labels}
		if m.Kind == KindHistogram {
			jm.Hist = &jsonHistogram{
				Bounds: m.Hist.Bounds,
				Counts: m.Hist.Counts,
				Sum:    m.Hist.Sum,
				Count:  m.Hist.Count,
			}
		} else {
			v := m.Value
			jm.Value = &v
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
