package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func sampleEvents() []BranchEvent {
	return []BranchEvent{
		{PC: 100, Pred: true, Outcome: true, HighConf: true, Cycle: 5, ConfMask: 3},
		{PC: 104, Pred: true, Outcome: false, Cycle: 6},
		{PC: 90, Pred: false, Outcome: false, WrongPath: true, Cycle: 7, ConfMask: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var b strings.Builder
	sink := NewJSONL(&b)
	for _, e := range sampleEvents() {
		sink.Branch(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 3 {
		t.Errorf("count = %d, want 3", sink.Count())
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var got []BranchEvent
	for sc.Scan() {
		var e BranchEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	want := sampleEvents()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

type errWriter struct{ err error }

func (w errWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestJSONLStickyError(t *testing.T) {
	boom := errors.New("boom")
	sink := NewJSONL(errWriter{boom})
	// Fill past the bufio buffer so the write error surfaces.
	big := BranchEvent{PC: 1 << 40, Cycle: 1 << 40, ConfMask: 1<<64 - 1}
	for i := 0; i < 10000; i++ {
		sink.Branch(big)
	}
	if err := sink.Close(); !errors.Is(err, boom) {
		t.Errorf("Close = %v, want %v", err, boom)
	}
}

type countSink struct {
	n      int
	closed bool
	err    error
}

func (c *countSink) Branch(BranchEvent) { c.n++ }
func (c *countSink) Close() error       { c.closed = true; return c.err }

func TestMultiSink(t *testing.T) {
	a, b := &countSink{}, &countSink{err: errors.New("a failed")}
	m := MultiSink(a, nil, b)
	for _, e := range sampleEvents() {
		m.Branch(e)
	}
	if err := m.Close(); err == nil {
		t.Error("MultiSink swallowed the Close error")
	}
	if a.n != 3 || b.n != 3 {
		t.Errorf("fan-out counts: %d, %d", a.n, b.n)
	}
	if !a.closed || !b.closed {
		t.Error("not all sinks closed")
	}
}

func TestMultiSinkDegenerate(t *testing.T) {
	if MultiSink() != nil {
		t.Error("empty MultiSink is not the null sink")
	}
	if MultiSink(nil, nil) != nil {
		t.Error("all-nil MultiSink is not the null sink")
	}
	one := &countSink{}
	if got := MultiSink(one); got != Tracer(one) {
		t.Error("single-sink MultiSink should return the sink itself")
	}
}
