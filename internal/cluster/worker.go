package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
	"specctrl/internal/synth"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL. Required.
	Coordinator string
	// Node is this worker's self-reported name (default: hostname).
	Node string
	// Addr, when non-empty, serves the worker's own observability
	// endpoints (/metrics, /healthz, /debug/traces, ...) there.
	Addr string
	// Jobs is the runner pool width per unit (default: all CPUs).
	Jobs int
	// TraceCacheBytes bounds each of the worker's local replay caches —
	// the event-trace cache and the arch-trace cache — (0 =
	// replay.DefaultCacheBytes); the coordinator's matching tiers back
	// them, so a local miss fetches before re-recording.
	TraceCacheBytes int64
	// PollWait is the long-poll duration per scheduling request
	// (default 10s; tests shrink it).
	PollWait time.Duration
	// Registry receives the worker metrics (created when nil).
	Registry *obs.Registry
	// Tracer records the worker's spans; unit spans join the job's
	// cross-node trace through the unit's traceparent. Nil disables
	// tracing.
	Tracer *span.Tracer
}

// Worker is a running cluster worker: it registers with the
// coordinator, heartbeats, and executes shard units from the
// scheduler until Drain (graceful: the current unit is handed back)
// or Kill (abrupt: simulates a crash; the coordinator's lease TTL
// recovers the units). Construct with NewWorker.
type Worker struct {
	cfg        WorkerConfig
	client     *http.Client
	reg        *obs.Registry
	tracer     *span.Tracer
	traces     *replay.Cache
	archTraces *replay.ArchCache
	hs         *obs.Server

	ctx      context.Context
	cancel   context.CancelFunc
	loopCtx  context.Context
	loopStop context.CancelFunc
	loopDone chan struct{}
	wg       sync.WaitGroup

	mu         sync.Mutex
	id         string
	heartbeat  time.Duration
	unitCancel context.CancelFunc
	draining   bool
	killed     bool

	unitsDone, unitsFailed             *obs.Counter
	fetchHits, fetchMisses, cellPuts   *obs.Counter
	traceFetches, traceUploads         *obs.Counter
	archTraceFetches, archTraceUploads *obs.Counter
}

// NewWorker registers with the coordinator and starts the worker's
// heartbeat and execution loops. It fails if the coordinator cannot be
// reached within a few seconds — the caller (cmd/simserved -worker)
// retries or reports, rather than a silent zombie daemon.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: coordinator URL required")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.Node == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.Node = host
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = runtime.NumCPU()
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}

	w := &Worker{
		cfg: cfg,
		// No client-level timeout: the poll long-polls; every other
		// request carries its own context deadline.
		client:     &http.Client{},
		reg:        cfg.Registry,
		tracer:     cfg.Tracer,
		traces:     replay.NewCache(cfg.TraceCacheBytes, cfg.Registry),
		archTraces: replay.NewArchCache(cfg.TraceCacheBytes, cfg.Registry),

		loopDone: make(chan struct{}),

		unitsDone:        cfg.Registry.Counter("specctrl_worker_units_total", obs.Labels{"result": "done"}),
		unitsFailed:      cfg.Registry.Counter("specctrl_worker_units_total", obs.Labels{"result": "failed"}),
		fetchHits:        cfg.Registry.Counter("specctrl_worker_cell_fetch_hits_total", nil),
		fetchMisses:      cfg.Registry.Counter("specctrl_worker_cell_fetch_misses_total", nil),
		cellPuts:         cfg.Registry.Counter("specctrl_worker_cell_puts_total", nil),
		traceFetches:     cfg.Registry.Counter("specctrl_worker_trace_fetches_total", nil),
		traceUploads:     cfg.Registry.Counter("specctrl_worker_trace_uploads_total", nil),
		archTraceFetches: cfg.Registry.Counter("specctrl_worker_archtrace_fetches_total", nil),
		archTraceUploads: cfg.Registry.Counter("specctrl_worker_archtrace_uploads_total", nil),
	}
	w.ctx, w.cancel = context.WithCancel(context.Background())
	w.loopCtx, w.loopStop = context.WithCancel(w.ctx)
	w.traces.SetBacking(&remoteTraces{w: w})
	w.archTraces.SetBacking(&remoteArchTraces{w: w})

	if err := w.register(); err != nil {
		w.cancel()
		return nil, err
	}
	if cfg.Addr != "" {
		hs, err := obs.Serve(cfg.Addr, cfg.Registry, cfg.Tracer)
		if err != nil {
			w.cancel()
			return nil, err
		}
		w.hs = hs
	}

	w.wg.Add(1)
	go w.heartbeatLoop()
	go w.runLoop()
	return w, nil
}

// ID returns the coordinator-assigned worker id (it changes if the
// worker has to re-register after a lapsed lease).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// URL returns the worker's observability base URL, or "" when Addr was
// not configured.
func (w *Worker) URL() string {
	if w.hs == nil {
		return ""
	}
	return w.hs.URL()
}

// register obtains a worker id, retrying briefly so a worker started
// moments before its coordinator still comes up.
func (w *Worker) register() error {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if err := w.ctx.Err(); err != nil {
			return err
		}
		var resp RegisterResponse
		code, err := w.doJSON(w.ctx, http.MethodPost, "/cluster/v1/workers",
			RegisterRequest{Node: w.cfg.Node}, &resp, span.Context{})
		if err == nil && code == http.StatusOK {
			w.mu.Lock()
			w.id = resp.ID
			w.heartbeat = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			if w.heartbeat <= 0 {
				w.heartbeat = DefaultHeartbeat
			}
			w.mu.Unlock()
			return nil
		}
		if err == nil {
			err = fmt.Errorf("cluster: register: coordinator returned %d", code)
		}
		lastErr = err
		select {
		case <-time.After(250 * time.Millisecond):
		case <-w.ctx.Done():
			return w.ctx.Err()
		}
	}
	return fmt.Errorf("cluster: register with %s: %w", w.cfg.Coordinator, lastErr)
}

// heartbeatLoop keeps the lease alive; a 410 (expired) triggers
// re-registration so a partitioned worker rejoins by itself.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		interval := w.heartbeat
		id := w.id
		w.mu.Unlock()
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(interval):
		}
		code, err := w.doJSON(w.ctx, http.MethodPost,
			"/cluster/v1/workers/"+id+"/heartbeat", nil, nil, span.Context{})
		if err == nil && code == http.StatusGone {
			_ = w.register() // best-effort; the next beat retries
		}
	}
}

// runLoop polls for units and executes them until drain or kill.
func (w *Worker) runLoop() {
	defer close(w.loopDone)
	backoff := 100 * time.Millisecond
	for w.loopCtx.Err() == nil {
		u, code, err := w.pollOnce()
		switch {
		case err != nil:
			select {
			case <-time.After(backoff):
			case <-w.loopCtx.Done():
			}
			backoff = min(2*backoff, 2*time.Second)
			continue
		case code == http.StatusGone:
			if w.register() != nil {
				return
			}
			continue
		case u == nil: // empty poll
			backoff = 100 * time.Millisecond
			continue
		}
		backoff = 100 * time.Millisecond
		w.execute(u)
	}
}

// pollOnce asks the scheduler for one unit.
func (w *Worker) pollOnce() (*Unit, int, error) {
	var u Unit
	path := fmt.Sprintf("/cluster/v1/workers/%s/poll?wait=%s", w.ID(), w.cfg.PollWait)
	code, err := w.doJSON(w.loopCtx, http.MethodPost, path, nil, &u, span.Context{})
	if err != nil {
		return nil, 0, err
	}
	if code != http.StatusOK {
		return nil, code, nil
	}
	return &u, code, nil
}

// execute runs one shard unit through the ordinary experiments path:
// the same grid code a `simctrl -shard i/n` run uses, with the
// coordinator's cell store as the cell cache and its trace tier
// backing the local trace cache. Every computed cell is published the
// moment it finishes (write-through), which is what makes a crashed
// worker's progress durable.
func (w *Worker) execute(u *Unit) {
	ctx, cancel := context.WithCancel(w.ctx)
	w.mu.Lock()
	w.unitCancel = cancel
	w.mu.Unlock()
	defer func() {
		cancel()
		w.mu.Lock()
		w.unitCancel = nil
		w.mu.Unlock()
	}()

	parent, _ := span.ParseTraceParent(u.TraceParent)
	us := w.tracer.Child(parent, "unit:"+u.Experiment,
		span.Str("unit", u.ID), span.Str("shard", u.Shard), span.Str("node", w.cfg.Node))
	defer us.End()

	err := w.runUnit(ctx, u, us.Context())
	switch {
	case err == nil:
		w.unitsDone.Inc()
		us.SetAttrs(span.Str("result", "done"))
		w.report(u.ID, "done", FailRequest{})
	case errors.Is(err, context.Canceled):
		// Drain hands the unit back for another worker; a kill
		// reports nothing, exactly like a crashed process, and the
		// coordinator's lease TTL recovers the unit.
		w.mu.Lock()
		killed := w.killed
		w.mu.Unlock()
		us.SetAttrs(span.Str("result", "interrupted"))
		if !killed {
			w.report(u.ID, "fail", FailRequest{Error: "worker draining", Requeue: true})
		}
	default:
		w.unitsFailed.Inc()
		us.SetAttrs(span.Str("result", "failed"), span.Str("error", err.Error()))
		w.report(u.ID, "fail", FailRequest{Error: err.Error()})
	}
}

// runUnit builds the unit's parameter set and runs the experiment.
// ErrShardOnly is the success path: the shard's cells were computed
// and published; no assembled output exists on a shard run, nor should
// it — output is the coordinator's job.
func (w *Worker) runUnit(ctx context.Context, u *Unit, parent span.Context) error {
	sh, err := runner.ParseShard(u.Shard)
	if err != nil {
		return fmt.Errorf("cluster: unit %s: %w", u.ID, err)
	}
	p := experiments.DefaultParams()
	if u.Committed > 0 {
		p.MaxCommitted = u.Committed
	}
	p.BaseSeed = u.BaseSeed
	p.Replay = u.Replay
	p.SynthN = u.SynthN
	p.SynthWorkloads = u.SynthWorkloads
	if u.Policy != "" {
		pol, err := policy.Parse(u.Policy)
		if err != nil {
			return fmt.Errorf("cluster: unit %s: %w", u.ID, err)
		}
		p.Pipeline.Policy = pol
	}
	// Re-register shipped profile vectors so the names in
	// SynthWorkloads resolve locally (idempotent; trace-backed names
	// need the worker to have ingested the same -ingest-trace files).
	for _, prof := range u.SynthProfiles {
		if _, err := synth.Register(prof); err != nil {
			return fmt.Errorf("cluster: unit %s: synth profile: %w", u.ID, err)
		}
	}
	p.Jobs = w.cfg.Jobs
	p.Ctx = ctx
	p.Shard = sh
	p.Record = experiments.NewCellStore()
	p.Cache = &remoteCells{w: w}
	p.TraceCache = w.traces
	p.ArchCache = w.archTraces
	p.Obs = w.reg
	p.Tracer = w.tracer
	p.SpanParent = parent

	_, err = experiments.Run(u.Experiment, p)
	if errors.Is(err, experiments.ErrShardOnly) {
		return nil
	}
	if err == nil {
		// A driver that assembled output under an active shard would
		// mean the shard contract broke; surface it loudly.
		return fmt.Errorf("cluster: unit %s: experiment %s ignored its shard", u.ID, u.Experiment)
	}
	return err
}

// report posts a unit outcome. Outcome reports outlive the worker's
// context (a draining worker must still hand its unit back), so they
// run on their own short deadline.
func (w *Worker) report(unitID, verb string, body FailRequest) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	path := "/cluster/v1/units/" + unitID + "/" + verb
	if verb == "done" {
		_, _ = w.doJSON(ctx, http.MethodPost, path, nil, nil, span.Context{})
		return
	}
	_, _ = w.doJSON(ctx, http.MethodPost, path, body, nil, span.Context{})
}

// Drain stops the worker gracefully: the current unit (if any) is
// cancelled at the next cell boundary and handed back for requeueing,
// the worker deregisters so its queue is redistributed, and the loops
// exit. Idempotent.
func (w *Worker) Drain() error {
	w.mu.Lock()
	if w.draining || w.killed {
		w.mu.Unlock()
		<-w.loopDone
		return nil
	}
	w.draining = true
	cancel := w.unitCancel
	w.mu.Unlock()

	w.loopStop() // unblocks the long poll
	if cancel != nil {
		cancel()
	}
	<-w.loopDone

	ctx, cancelReq := context.WithTimeout(context.Background(), 5*time.Second)
	_, _ = w.doJSON(ctx, http.MethodPost, "/cluster/v1/workers/"+w.ID()+"/drain", nil, nil, span.Context{})
	cancelReq()

	w.cancel()
	w.wg.Wait()
	if w.hs != nil {
		return w.hs.Close()
	}
	return nil
}

// Kill aborts the worker as a crash would: everything stops
// immediately and nothing is reported to the coordinator — recovery is
// entirely the lease TTL's job. The chaos tests use it as an
// in-process stand-in for SIGKILL.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	w.mu.Unlock()
	w.cancel()
	<-w.loopDone
	w.wg.Wait()
	if w.hs != nil {
		w.hs.Close()
	}
}

// doJSON sends one JSON request and decodes a 2xx JSON response into
// out (when non-nil). Non-2xx statuses are returned, not errors: the
// protocol uses them as signals (204 empty poll, 404 cache miss,
// 410 lapsed lease). sc, when valid, rides the traceparent header so
// the coordinator's handler span joins this worker's trace.
func (w *Worker) doJSON(ctx context.Context, method, path string, in, out any, sc span.Context) (int, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.cfg.Coordinator+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	span.Inject(req.Header, sc)
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

// spanFrom extracts the cell span's context from a grid cell ctx, so
// cache-tier requests join the per-cell span.
func spanFrom(ctx context.Context) span.Context {
	if sp := span.FromContext(ctx); sp != nil {
		return sp.Context()
	}
	return span.Context{}
}

// remoteCells is the worker-side experiments.CellCache over the
// coordinator's shared cell tier: consult before simulating, publish
// after. Fetch and publish failures degrade to local computation —
// the tier is an accelerator, never a correctness dependency.
type remoteCells struct {
	w *Worker
}

// GetOrCompute implements experiments.CellCache.
func (rc *remoteCells) GetOrCompute(ctx context.Context, addr string, _ runner.Spec,
	compute func(context.Context) (experiments.CellResult, error)) (experiments.CellResult, error) {
	w := rc.w
	sc := spanFrom(ctx)
	var cell experiments.CellResult
	code, err := w.doJSON(ctx, http.MethodGet, "/cluster/v1/cells/"+addr, nil, &cell, sc)
	if err == nil && code == http.StatusOK {
		w.fetchHits.Inc()
		return cell, nil
	}
	if ctx.Err() != nil {
		return experiments.CellResult{}, ctx.Err()
	}
	w.fetchMisses.Inc()
	cell, err = compute(ctx)
	if err != nil {
		return cell, err
	}
	// Write-through publish: best-effort, and what makes this worker's
	// progress survive its own death.
	putCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if code, err := w.doJSONBody(putCtx, http.MethodPut, "/cluster/v1/cells/"+addr, cell, sc); err == nil && code == http.StatusNoContent {
		w.cellPuts.Inc()
	}
	return cell, nil
}

// doJSONBody is doJSON for requests whose response body is ignored.
func (w *Worker) doJSONBody(ctx context.Context, method, path string, in any, sc span.Context) (int, error) {
	return w.doJSON(ctx, method, path, in, nil, sc)
}

// remoteTraces is the worker-side replay.Backing over the
// coordinator's trace tier: a trace recorded on any node is fetched
// instead of re-recorded here, and local recordings are uploaded.
type remoteTraces struct {
	w *Worker
}

// Fetch implements replay.Backing.
func (rt *remoteTraces) Fetch(addr string) (*replay.Trace, *pipeline.Stats, bool) {
	w := rt.w
	ctx, cancel := context.WithTimeout(w.ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/cluster/v1/traces/"+addr, nil)
	if err != nil {
		return nil, nil, false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, false
	}
	t, st, err := decodeTrace(data)
	if err != nil {
		return nil, nil, false
	}
	w.traceFetches.Inc()
	return t, st, true
}

// Store implements replay.Backing.
func (rt *remoteTraces) Store(addr string, t *replay.Trace, st *pipeline.Stats) {
	w := rt.w
	data, err := encodeTrace(t, st)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.cfg.Coordinator+"/cluster/v1/traces/"+addr, bytes.NewReader(data))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		w.traceUploads.Inc()
	}
}

// remoteArchTraces is the worker-side replay.ArchBacking over the
// coordinator's arch-trace tier: a committed branch-outcome stream
// recorded on any node is fetched instead of re-recorded here, and
// local recordings are uploaded.
type remoteArchTraces struct {
	w *Worker
}

// Fetch implements replay.ArchBacking.
func (rt *remoteArchTraces) Fetch(addr string) (*replay.ArchTrace, bool) {
	w := rt.w
	ctx, cancel := context.WithTimeout(w.ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/cluster/v1/archtraces/"+addr, nil)
	if err != nil {
		return nil, false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	t, err := replay.DecodeArch(data)
	if err != nil {
		return nil, false
	}
	w.archTraceFetches.Inc()
	return t, true
}

// Store implements replay.ArchBacking.
func (rt *remoteArchTraces) Store(addr string, t *replay.ArchTrace) {
	w := rt.w
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.cfg.Coordinator+"/cluster/v1/archtraces/"+addr, bytes.NewReader(t.Encode()))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		w.archTraceUploads.Inc()
	}
}
