package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs/span"
	"specctrl/internal/replay"
)

// maxPollWait caps the long-poll duration a worker may request.
const maxPollWait = 30 * time.Second

// maxBodyBytes bounds cell and trace uploads. A full-scale suite trace
// is a few megabytes; 256 MiB leaves room for much larger budgets
// while still refusing an unbounded body.
const maxBodyBytes = 256 << 20

// mount registers the cluster wire protocol on the coordinator's serve
// mux (the serve.Config.Mount hook).
func (c *Coordinator) mount(mux *http.ServeMux) {
	mux.Handle("POST /cluster/v1/workers", c.traced("register", c.handleRegister))
	mux.Handle("POST /cluster/v1/workers/{id}/heartbeat", c.traced("heartbeat", c.handleHeartbeat))
	mux.Handle("POST /cluster/v1/workers/{id}/poll", c.traced("poll", c.handlePoll))
	mux.Handle("POST /cluster/v1/workers/{id}/drain", c.traced("worker-drain", c.handleWorkerDrain))
	mux.Handle("POST /cluster/v1/units/{id}/done", c.traced("unit-done", c.handleUnitDone))
	mux.Handle("POST /cluster/v1/units/{id}/fail", c.traced("unit-fail", c.handleUnitFail))
	mux.Handle("GET /cluster/v1/cells/{addr}", c.traced("cell-get", c.handleCellGet))
	mux.Handle("PUT /cluster/v1/cells/{addr}", c.traced("cell-put", c.handleCellPut))
	mux.Handle("GET /cluster/v1/traces/{addr}", c.traced("trace-get", c.handleTraceGet))
	mux.Handle("PUT /cluster/v1/traces/{addr}", c.traced("trace-put", c.handleTracePut))
	mux.Handle("GET /cluster/v1/archtraces/{addr}", c.traced("archtrace-get", c.handleArchTraceGet))
	mux.Handle("PUT /cluster/v1/archtraces/{addr}", c.traced("archtrace-put", c.handleArchTracePut))
	mux.Handle("GET /cluster/v1/status", c.traced("cluster-status", c.handleStatus))
}

// traced wraps a cluster handler in an "http:cluster/<name>" span
// joined to the caller's traceparent, so a worker's cache fetches and
// unit reports appear inside the job's cross-node trace.
func (c *Coordinator) traced(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.tracer == nil {
			h(w, r)
			return
		}
		sp := c.tracer.Child(span.Extract(r.Header), "http:cluster/"+name,
			span.Str("method", r.Method), span.Str("path", r.URL.Path))
		defer sp.End()
		h(w, r.WithContext(span.NewContext(r.Context(), sp)))
	})
}

// clusterError is every non-2xx cluster JSON body.
type clusterError struct {
	Error string `json:"error"`
}

func clusterJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func clusterErrorf(w http.ResponseWriter, code int, format string, args ...any) {
	clusterJSON(w, code, clusterError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterErrorf(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ws := c.register(req.Node)
	clusterJSON(w, http.StatusOK, RegisterResponse{
		ID:              ws.id,
		HeartbeatMillis: c.cfg.Heartbeat.Milliseconds(),
		LeaseTTLMillis:  c.leaseTTL().Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !c.heartbeat(r.PathValue("id")) {
		// 410: the lease lapsed and the worker's units were requeued;
		// it must re-register under a fresh id.
		clusterErrorf(w, http.StatusGone, "unknown or expired worker %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	wait := 10 * time.Second
	if s := r.URL.Query().Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			clusterErrorf(w, http.StatusBadRequest, "bad wait %q", s)
			return
		}
		wait = min(d, maxPollWait)
	}
	u, ok := c.poll(r.PathValue("id"), wait)
	if !ok {
		clusterErrorf(w, http.StatusGone, "unknown or expired worker %q", r.PathValue("id"))
		return
	}
	if u == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	clusterJSON(w, http.StatusOK, u.Unit)
}

func (c *Coordinator) handleWorkerDrain(w http.ResponseWriter, r *http.Request) {
	if !c.drainWorker(r.PathValue("id")) {
		clusterErrorf(w, http.StatusGone, "unknown worker %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleUnitDone(w http.ResponseWriter, r *http.Request) {
	if !c.unitDoneReport(r.PathValue("id")) {
		clusterErrorf(w, http.StatusNotFound, "unknown unit %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleUnitFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		clusterErrorf(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !c.unitFailReport(r.PathValue("id"), req) {
		clusterErrorf(w, http.StatusNotFound, "unknown unit %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCellGet serves the shared cell tier: a worker consults it
// before simulating, so any node's computed cell is every node's hit.
func (c *Coordinator) handleCellGet(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !validAddr(addr) {
		clusterErrorf(w, http.StatusBadRequest, "malformed cell address %q", addr)
		return
	}
	cell, ok := c.store.Lookup(addr)
	if !ok {
		c.cellMisses.Inc()
		if sp := span.FromContext(r.Context()); sp != nil {
			sp.SetAttrs(span.Str("outcome", "miss"))
		}
		clusterErrorf(w, http.StatusNotFound, "no cell at %s", addr)
		return
	}
	c.cellHits.Inc()
	if sp := span.FromContext(r.Context()); sp != nil {
		sp.SetAttrs(span.Str("outcome", "hit"))
	}
	clusterJSON(w, http.StatusOK, cell)
}

// handleCellPut is the write-through half of the cell tier: workers
// publish every cell they simulate the moment it completes, which is
// also what makes the store the reassignment checkpoint — a unit
// re-run after a worker death hits everything its predecessor
// published.
func (c *Coordinator) handleCellPut(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !validAddr(addr) {
		clusterErrorf(w, http.StatusBadRequest, "malformed cell address %q", addr)
		return
	}
	var cell experiments.CellResult
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&cell); err != nil {
		clusterErrorf(w, http.StatusBadRequest, "bad cell body: %v", err)
		return
	}
	if err := c.store.Put(addr, cell); err != nil {
		clusterErrorf(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.cellPuts.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleTraceGet serves the shared trace tier for record/replay: a
// trace recorded by any node replays on every node.
func (c *Coordinator) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !validAddr(addr) {
		clusterErrorf(w, http.StatusBadRequest, "malformed trace address %q", addr)
		return
	}
	t, st, ok := c.traces.Get(addr)
	if !ok {
		c.traceMisses.Inc()
		if sp := span.FromContext(r.Context()); sp != nil {
			sp.SetAttrs(span.Str("outcome", "miss"))
		}
		clusterErrorf(w, http.StatusNotFound, "no trace at %s", addr)
		return
	}
	data, err := encodeTrace(t, st)
	if err != nil {
		clusterErrorf(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.traceHits.Inc()
	if sp := span.FromContext(r.Context()); sp != nil {
		sp.SetAttrs(span.Str("outcome", "hit"))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (c *Coordinator) handleTracePut(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !validAddr(addr) {
		clusterErrorf(w, http.StatusBadRequest, "malformed trace address %q", addr)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		clusterErrorf(w, http.StatusBadRequest, "read trace body: %v", err)
		return
	}
	t, st, err := decodeTrace(data)
	if err != nil {
		clusterErrorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.traces.Put(addr, t, st)
	c.tracePuts.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleArchTraceGet serves the shared arch-trace tier: the committed
// branch-outcome stream any node recorded replays on every node. The
// body is the trace's own self-validating encoding (no stats sidecar —
// the committed-instruction count rides inside the stream).
func (c *Coordinator) handleArchTraceGet(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !validAddr(addr) {
		clusterErrorf(w, http.StatusBadRequest, "malformed arch-trace address %q", addr)
		return
	}
	t, ok := c.archTraces.Get(addr)
	if !ok {
		c.archTraceMisses.Inc()
		if sp := span.FromContext(r.Context()); sp != nil {
			sp.SetAttrs(span.Str("outcome", "miss"))
		}
		clusterErrorf(w, http.StatusNotFound, "no arch trace at %s", addr)
		return
	}
	c.archTraceHits.Inc()
	if sp := span.FromContext(r.Context()); sp != nil {
		sp.SetAttrs(span.Str("outcome", "hit"))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(t.Encode())
}

// handleArchTracePut is the write-through half of the arch-trace tier:
// a worker that records a committed stream uploads it so every other
// node's recording becomes a fetch.
func (c *Coordinator) handleArchTracePut(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !validAddr(addr) {
		clusterErrorf(w, http.StatusBadRequest, "malformed arch-trace address %q", addr)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		clusterErrorf(w, http.StatusBadRequest, "read arch-trace body: %v", err)
		return
	}
	t, err := replay.DecodeArch(data)
	if err != nil {
		clusterErrorf(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.archTraces.Put(addr, t)
	c.archTracePuts.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	clusterJSON(w, http.StatusOK, c.status())
}
