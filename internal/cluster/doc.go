// Package cluster runs the simulation service across machines: a
// coordinator that accepts jobs through the ordinary serve job API and
// scatters each experiment grid as shard work units over registered
// worker daemons, plus the worker that executes those units.
//
// The design is an accelerator, not a different execution model.
// Workers never produce output; they warm the coordinator's
// content-addressed caches:
//
//   - Each unit is a runner.Shard of one experiment's grid
//     (experiments.Params.UnitAddress names it). A worker executes the
//     shard exactly as `simctrl -shard i/n` would and write-through
//     publishes every computed cell to the coordinator's serve.Store
//     and every recorded branch-event trace to its replay.Cache.
//   - When every unit has finished (or been abandoned), the
//     coordinator runs the experiment locally through the unchanged
//     single-process path — experiments.Run with the job's own
//     CellCache — so worker-computed cells are cache hits and anything
//     a failed worker left behind is simulated on the spot. Output
//     bytes therefore come from exactly the code path a local run
//     uses, which is the determinism argument: an N-worker cluster is
//     byte-identical to one process by construction, and worker
//     failure degrades throughput, never correctness.
//
// Scheduling mirrors internal/runner at node granularity: units are
// dealt round-robin onto per-worker deques; an idle worker pops its
// own deque first, then the global backlog, then steals half of the
// longest victim's deque from the back. Workers heartbeat; a worker
// that misses its lease TTL is declared gone and its queued and leased
// units are requeued (the write-through cell store is the checkpoint,
// so a reassigned unit re-simulates only cells the dead worker never
// published). Cross-node requests carry W3C traceparent headers, so
// one TraceID spans client, coordinator, and every worker that touched
// the job.
//
// Wire protocol (JSON over HTTP, mounted on the coordinator's serve
// mux under /cluster/v1/) and the operational story are documented in
// docs/CLUSTER.md; the determinism argument is elaborated in DESIGN.md
// ("Distributed execution").
package cluster
