package cluster

import (
	"fmt"
	"sync"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
	"specctrl/internal/serve"
	"specctrl/internal/synth"
)

// policySpec is the wire form of an installed policy: its canonical
// Name() (which policy.Parse round-trips on the worker), or "" when
// fetch runs unpolicied.
func policySpec(p pipeline.Policy) string {
	if p == nil {
		return ""
	}
	return p.Name()
}

// Defaults for the coordinator's scheduling knobs; tests shrink the
// intervals to keep chaos scenarios fast.
const (
	// DefaultHeartbeat is how often workers report liveness.
	DefaultHeartbeat = 2 * time.Second
	// DefaultUnitsPerWorker is the scatter width factor: each grid is
	// split into UnitsPerWorker × live-workers shard units, so the
	// work-stealing deques have slack to balance uneven shards.
	DefaultUnitsPerWorker = 2
	// DefaultMaxAttempts bounds how many times one unit is leased
	// before the coordinator gives up on it; the local assembly pass
	// computes whatever an abandoned unit left missing, so exhaustion
	// costs throughput only.
	DefaultMaxAttempts = 3
	// leaseTTLFactor: a worker is declared gone after this many
	// missed heartbeat intervals.
	leaseTTLFactor = 3
)

// Config configures a Coordinator.
type Config struct {
	// Serve configures the embedded job server (address, cache
	// directory, pool width, trace cache, ...). Its RunExperiment and
	// Mount hooks are owned by the coordinator and must be nil.
	Serve serve.Config
	// Heartbeat is the worker heartbeat interval sent to registering
	// workers (default DefaultHeartbeat). The lease TTL is three
	// heartbeats.
	Heartbeat time.Duration
	// UnitsPerWorker scales scatter width (default
	// DefaultUnitsPerWorker).
	UnitsPerWorker int
	// MaxAttempts bounds leases per unit (default DefaultMaxAttempts).
	MaxAttempts int
}

// Coordinator is a running cluster head: the ordinary simulation
// service (it embeds a serve.Server and answers the whole job API)
// plus the /cluster/v1/ scheduling and cache-tier endpoints. Construct
// with New; stop with Drain.
type Coordinator struct {
	cfg        Config
	srv        *serve.Server
	reg        *obs.Registry
	tracer     *span.Tracer
	store      *serve.Store
	traces     *replay.Cache
	archTraces *replay.ArchCache

	mu         sync.Mutex
	workers    map[string]*workerState
	order      []string // registration order, for the round-robin deal
	units      map[string]*unit
	backlog    []*unit // global queue: units with no live worker to hold them
	wake       chan struct{}
	nextWorker int
	nextUnit   int
	nextDeal   int
	closed     bool

	stop chan struct{} // closes when Drain begins; stops the reaper
	done sync.WaitGroup

	workersGauge                                  *obs.Gauge
	unitsDone, unitsFailed                        *obs.Counter
	unitsReassigned, steals                       *obs.Counter
	workersLost                                   *obs.Counter
	cellHits, cellMisses, cellPuts                *obs.Counter
	traceHits, traceMisses, tracePuts             *obs.Counter
	archTraceHits, archTraceMisses, archTracePuts *obs.Counter
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id       string
	node     string
	deque    []*unit          // front = next to hand out; steals come off the back
	leased   map[string]*unit // units this worker is executing
	lastSeen time.Time
	gone     bool
}

// Unit states, as reported by Status.
const (
	unitQueued    = "queued"
	unitLeased    = "leased"
	unitDone      = "done"
	unitFailed    = "failed"
	unitAbandoned = "abandoned"
)

// unit is the coordinator-side record of one Unit.
type unit struct {
	Unit
	state    string
	attempts int
	owner    string // worker id while leased
	err      string
	finished chan struct{} // closed on any terminal state
}

// terminal reports whether the unit has reached a final state.
func (u *unit) terminal() bool {
	return u.state == unitDone || u.state == unitFailed || u.state == unitAbandoned
}

// New starts a Coordinator: it wires itself into the serve.Config
// hooks, starts the embedded job server (which binds the listener and
// mounts both the job API and /cluster/v1/), and launches the
// heartbeat reaper. The returned coordinator is accepting jobs and
// worker registrations.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Serve.RunExperiment != nil || cfg.Serve.Mount != nil {
		return nil, fmt.Errorf("cluster: Serve.RunExperiment and Serve.Mount are owned by the coordinator")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.UnitsPerWorker < 1 {
		cfg.UnitsPerWorker = DefaultUnitsPerWorker
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Serve.Registry == nil {
		cfg.Serve.Registry = obs.NewRegistry()
	}
	if cfg.Serve.Tracer == nil {
		cfg.Serve.Tracer = span.New(span.Options{})
	}
	if cfg.Serve.Params.TraceCache == nil {
		cfg.Serve.Params.TraceCache = replay.NewCache(cfg.Serve.TraceCacheBytes, cfg.Serve.Registry)
	}
	if cfg.Serve.Params.ArchCache == nil {
		cfg.Serve.Params.ArchCache = replay.NewArchCache(cfg.Serve.ArchCacheBytes, cfg.Serve.Registry)
	}

	reg := cfg.Serve.Registry
	c := &Coordinator{
		cfg:        cfg,
		reg:        reg,
		tracer:     cfg.Serve.Tracer,
		traces:     cfg.Serve.Params.TraceCache,
		archTraces: cfg.Serve.Params.ArchCache,
		workers:    make(map[string]*workerState),
		units:      make(map[string]*unit),
		wake:       make(chan struct{}),
		stop:       make(chan struct{}),

		workersGauge:    reg.Gauge("specctrl_cluster_workers", nil),
		unitsDone:       reg.Counter("specctrl_cluster_units_total", obs.Labels{"state": unitDone}),
		unitsFailed:     reg.Counter("specctrl_cluster_units_total", obs.Labels{"state": unitFailed}),
		unitsReassigned: reg.Counter("specctrl_cluster_units_reassigned_total", nil),
		steals:          reg.Counter("specctrl_cluster_steals_total", nil),
		workersLost:     reg.Counter("specctrl_cluster_workers_lost_total", nil),
		cellHits:        reg.Counter("specctrl_cluster_cell_hits_total", nil),
		cellMisses:      reg.Counter("specctrl_cluster_cell_misses_total", nil),
		cellPuts:        reg.Counter("specctrl_cluster_cell_puts_total", nil),
		traceHits:       reg.Counter("specctrl_cluster_trace_hits_total", nil),
		traceMisses:     reg.Counter("specctrl_cluster_trace_misses_total", nil),
		tracePuts:       reg.Counter("specctrl_cluster_trace_puts_total", nil),
		archTraceHits:   reg.Counter("specctrl_cluster_archtrace_hits_total", nil),
		archTraceMisses: reg.Counter("specctrl_cluster_archtrace_misses_total", nil),
		archTracePuts:   reg.Counter("specctrl_cluster_archtrace_puts_total", nil),
	}
	cfg.Serve.RunExperiment = c.runExperiment
	cfg.Serve.Mount = c.mount

	srv, err := serve.New(cfg.Serve)
	if err != nil {
		return nil, err
	}
	c.srv = srv
	c.store = srv.Store()

	c.done.Add(1)
	go c.reaper()
	return c, nil
}

// URL returns the coordinator's base URL (job API and cluster routes
// share one listener).
func (c *Coordinator) URL() string { return c.srv.URL() }

// Server returns the embedded job server.
func (c *Coordinator) Server() *serve.Server { return c.srv }

// Drain gracefully stops the coordinator: the embedded job server
// drains (rejecting new submissions, checkpointing unfinished jobs),
// outstanding units are abandoned so no scatter waits forever, and the
// reaper exits. Idempotent.
func (c *Coordinator) Drain() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
		for _, u := range c.units {
			if !u.terminal() {
				c.finishLocked(u, unitAbandoned, "coordinator draining")
			}
		}
		c.wakeLocked()
	}
	c.mu.Unlock()
	err := c.srv.Drain()
	c.done.Wait()
	return err
}

// leaseTTL is how long a silent worker stays live.
func (c *Coordinator) leaseTTL() time.Duration {
	return leaseTTLFactor * c.cfg.Heartbeat
}

// wakeLocked broadcasts to every blocked poll. Callers hold c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// liveWorkersLocked counts workers that have not been declared gone.
func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.gone {
			n++
		}
	}
	return n
}

// register admits a worker and returns its assigned state.
func (c *Coordinator) register(node string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w-%06d", c.nextWorker),
		node:     node,
		leased:   make(map[string]*unit),
		lastSeen: time.Now(),
	}
	c.workers[w.id] = w
	c.order = append(c.order, w.id)
	c.workersGauge.SetUint(uint64(c.liveWorkersLocked()))
	// A fresh worker can immediately relieve the backlog.
	c.wakeLocked()
	return w
}

// heartbeat refreshes a worker's lease; false means the worker is
// unknown or already declared gone and must re-register.
func (c *Coordinator) heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok || w.gone {
		return false
	}
	w.lastSeen = time.Now()
	return true
}

// dropWorkerLocked marks a worker gone and requeues everything it
// held. penalize controls whether leased units keep their consumed
// attempt: expiry does (the unit may itself be the poison), a graceful
// drain does not.
func (c *Coordinator) dropWorkerLocked(w *workerState, penalize bool) {
	if w.gone {
		return
	}
	w.gone = true
	requeued := 0
	for _, u := range w.deque {
		u.state = unitQueued
		u.owner = ""
		c.backlog = append(c.backlog, u)
		requeued++
	}
	w.deque = nil
	for _, u := range w.leased {
		if !penalize {
			u.attempts--
		}
		c.requeueLocked(u)
		requeued++
	}
	w.leased = make(map[string]*unit)
	c.workersGauge.SetUint(uint64(c.liveWorkersLocked()))
	if requeued > 0 {
		c.unitsReassigned.Add(uint64(requeued))
		c.wakeLocked()
	}
	// Losing the last worker must not strand a job: abandon everything
	// still pending so the scatter unblocks and the coordinator's local
	// assembly pass simulates whatever the cluster never delivered.
	if c.liveWorkersLocked() == 0 {
		for _, u := range c.units {
			if !u.terminal() {
				c.finishLocked(u, unitAbandoned, "no live workers")
			}
		}
		c.backlog = nil
	}
}

// requeueLocked returns a leased unit to the backlog, or fails it when
// its attempts are exhausted.
func (c *Coordinator) requeueLocked(u *unit) {
	if u.terminal() {
		return
	}
	u.owner = ""
	if u.attempts >= c.cfg.MaxAttempts {
		c.finishLocked(u, unitFailed, "attempts exhausted")
		return
	}
	u.state = unitQueued
	c.backlog = append(c.backlog, u)
}

// finishLocked moves a unit to a terminal state and releases waiters.
func (c *Coordinator) finishLocked(u *unit, state, errMsg string) {
	if u.terminal() {
		return
	}
	u.state = state
	u.err = errMsg
	u.owner = ""
	switch state {
	case unitDone:
		c.unitsDone.Inc()
	case unitFailed:
		c.unitsFailed.Inc()
	}
	close(u.finished)
}

// reaper periodically expires workers whose lease lapsed.
func (c *Coordinator) reaper() {
	defer c.done.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, w := range c.workers {
			if !w.gone && now.Sub(w.lastSeen) > c.leaseTTL() {
				c.workersLost.Inc()
				c.dropWorkerLocked(w, true)
			}
		}
		c.mu.Unlock()
	}
}

// poll hands the calling worker a unit, blocking up to wait for one to
// appear. The discipline mirrors internal/runner's dispatch: own deque
// front, then the global backlog, then steal half of the longest
// victim's deque from the back. A nil return with ok=true means the
// wait elapsed empty; ok=false means the worker must re-register.
func (c *Coordinator) poll(workerID string, wait time.Duration) (*unit, bool) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		w, known := c.workers[workerID]
		if !known || w.gone {
			c.mu.Unlock()
			return nil, false
		}
		w.lastSeen = time.Now() // polling is proof of life
		if u := c.takeLocked(w); u != nil {
			u.state = unitLeased
			u.owner = w.id
			u.attempts++
			w.leased[u.ID] = u
			c.mu.Unlock()
			return u, true
		}
		wake := c.wake
		c.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, true
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return nil, true
		case <-c.stop:
			timer.Stop()
			return nil, true
		}
	}
}

// takeLocked pops the next unit for w: own deque, backlog, then steal.
func (c *Coordinator) takeLocked(w *workerState) *unit {
	if len(w.deque) > 0 {
		u := w.deque[0]
		w.deque = w.deque[1:]
		return u
	}
	if len(c.backlog) > 0 {
		u := c.backlog[0]
		c.backlog = c.backlog[1:]
		return u
	}
	// Steal half of the longest live victim's deque, from the back —
	// the node-granularity mirror of runner's stealInto.
	var victim *workerState
	for _, v := range c.workers {
		if v == w || v.gone || len(v.deque) == 0 {
			continue
		}
		if victim == nil || len(v.deque) > len(victim.deque) {
			victim = v
		}
	}
	if victim == nil {
		return nil
	}
	n := (len(victim.deque) + 1) / 2
	stolen := victim.deque[len(victim.deque)-n:]
	victim.deque = victim.deque[:len(victim.deque)-n]
	// The caller gets the first stolen unit; the rest land on w's deque.
	u := stolen[0]
	w.deque = append(w.deque, stolen[1:]...)
	c.steals.Add(uint64(n))
	return u
}

// unitDoneReport marks a unit complete.
func (c *Coordinator) unitDoneReport(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.units[id]
	if !ok {
		return false
	}
	if w, ok := c.workers[u.owner]; ok {
		delete(w.leased, id)
	}
	c.finishLocked(u, unitDone, "")
	return true
}

// unitFailReport records a unit failure, requeueing when asked (and
// attempts remain).
func (c *Coordinator) unitFailReport(id string, req FailRequest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.units[id]
	if !ok {
		return false
	}
	if w, ok := c.workers[u.owner]; ok {
		delete(w.leased, id)
	}
	if req.Requeue {
		c.requeueLocked(u)
		if !u.terminal() {
			c.unitsReassigned.Inc()
			c.wakeLocked()
		}
	} else {
		c.finishLocked(u, unitFailed, req.Error)
	}
	return true
}

// drainWorker gracefully deregisters a worker, requeueing its units
// without burning an attempt.
func (c *Coordinator) drainWorker(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	c.dropWorkerLocked(w, false)
	return true
}

// status snapshots the cluster for GET /cluster/v1/status.
func (c *Coordinator) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := Status{Units: map[string]int{}}
	for _, id := range c.order {
		w := c.workers[id]
		if w.gone {
			continue
		}
		leased := make([]string, 0, len(w.leased))
		for uid := range w.leased {
			leased = append(leased, uid)
		}
		st.Workers = append(st.Workers, StatusWorker{
			ID:             w.id,
			Node:           w.node,
			Queued:         len(w.deque),
			Leased:         leased,
			LastSeenMillis: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	for _, u := range c.units {
		st.Units[u.state]++
	}
	return st
}

// scatter creates and deals units for one experiment grid, returning
// them for the caller to await. Units are dealt round-robin onto live
// workers' deques (continuing from where the previous deal stopped, so
// consecutive scatters spread evenly); with no live worker they land
// on the global backlog.
func (c *Coordinator) scatter(name string, p experiments.Params, parent span.Context) []*unit {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := make([]*workerState, 0, len(c.order))
	for _, id := range c.order {
		if w := c.workers[id]; !w.gone {
			live = append(live, w)
		}
	}
	if len(live) == 0 || c.closed {
		return nil
	}
	k := c.cfg.UnitsPerWorker * len(live)
	units := make([]*unit, 0, k)
	// Ship the vectors behind the job's profile-backed synth workloads
	// so workers can re-register them; trace-backed names ride along
	// by name only (workers ingest trace files at startup).
	_, synthProfs := synth.ProfilesFor(p.SynthWorkloads)
	for i := 0; i < k; i++ {
		sh := runner.Shard{Index: i, Count: k}
		c.nextUnit++
		u := &unit{
			Unit: Unit{
				ID:             fmt.Sprintf("u-%06d", c.nextUnit),
				Addr:           p.UnitAddress(name, sh),
				Experiment:     name,
				Shard:          sh.String(),
				Committed:      p.MaxCommitted,
				BaseSeed:       p.BaseSeed,
				Replay:         p.Replay,
				SynthN:         p.SynthN,
				SynthWorkloads: p.SynthWorkloads,
				Policy:         policySpec(p.Pipeline.Policy),
				SynthProfiles:  synthProfs,
				TraceParent:    parent.TraceParent(),
			},
			state:    unitQueued,
			finished: make(chan struct{}),
		}
		c.units[u.ID] = u
		units = append(units, u)
		w := live[c.nextDeal%len(live)]
		c.nextDeal++
		w.deque = append(w.deque, u)
	}
	c.wakeLocked()
	return units
}

// runExperiment is the serve.Config.RunExperiment hook: scatter the
// grid across live workers, await the units, then run the experiment
// through the unchanged local path. The local pass produces the
// output: worker-published cells are cache hits in it, and cells no
// worker delivered (failures, abandoned units, multi-grid drivers that
// shard only their first grid) are simulated locally. That is the
// whole determinism argument — the bytes come from the same assembly
// path as a single-process run, always.
func (c *Coordinator) runExperiment(name string, p experiments.Params) (experiments.Renderer, error) {
	parent := p.SpanParent
	units := c.scatter(name, p, parent)
	if len(units) > 0 {
		ss := c.tracer.Child(parent, "scatter:"+name,
			span.Int("units", int64(len(units))))
		c.await(units, p)
		ss.End()
	}
	return experiments.Run(name, p)
}

// await blocks until every unit is terminal or the job's context is
// cancelled; on cancellation the outstanding units are abandoned so
// workers' reports for them are simply ignored.
func (c *Coordinator) await(units []*unit, p experiments.Params) {
	var ctxDone <-chan struct{}
	if p.Ctx != nil {
		ctxDone = p.Ctx.Done()
	}
	for _, u := range units {
		select {
		case <-u.finished:
		case <-ctxDone:
			c.abandon(units)
			return
		case <-c.stop:
			c.abandon(units)
			return
		}
	}
}

// abandon terminates every non-terminal unit in the set and removes
// them from all queues.
func (c *Coordinator) abandon(units []*unit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	doomed := make(map[*unit]bool, len(units))
	for _, u := range units {
		if !u.terminal() {
			doomed[u] = true
			c.finishLocked(u, unitAbandoned, "job cancelled")
		}
	}
	strip := func(q []*unit) []*unit {
		out := q[:0]
		for _, u := range q {
			if !doomed[u] {
				out = append(out, u)
			}
		}
		return out
	}
	c.backlog = strip(c.backlog)
	for _, w := range c.workers {
		w.deque = strip(w.deque)
		for id, u := range w.leased {
			if doomed[u] {
				delete(w.leased, id)
			}
		}
	}
}
