package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"specctrl/internal/pipeline"
	"specctrl/internal/replay"
	"specctrl/internal/synth"
)

// ProtocolVersion is the cluster wire-protocol version; it prefixes
// every route (`/cluster/v1/...`). Coordinator and workers must agree:
// a version bump moves the whole route tree, so a stale worker gets
// 404s and fails to register rather than misparsing payloads.
const ProtocolVersion = 1

// RegisterRequest is the body of POST /cluster/v1/workers.
type RegisterRequest struct {
	// Node is the worker's self-reported name (hostname by default);
	// cosmetic — the coordinator-assigned worker id is the identity.
	Node string `json:"node"`
}

// RegisterResponse tells a freshly registered worker its identity and
// the liveness contract it must keep.
type RegisterResponse struct {
	// ID is the coordinator-assigned worker id, used in every
	// subsequent route.
	ID string `json:"id"`
	// HeartbeatMillis is how often the worker must heartbeat.
	HeartbeatMillis int64 `json:"heartbeatMillis"`
	// LeaseTTLMillis is how long the coordinator waits after the last
	// heartbeat before declaring the worker gone and requeueing its
	// units.
	LeaseTTLMillis int64 `json:"leaseTTLMillis"`
}

// Unit is one schedulable work item: shard Shard of one experiment's
// grid under the carried parameters. It is what POST .../poll returns.
type Unit struct {
	// ID is the coordinator-assigned unit id (unique per scatter).
	ID string `json:"id"`
	// Addr is the unit's content address (experiments.UnitAddress):
	// the stable identity of "this shard of this grid under these
	// parameters", independent of ID.
	Addr string `json:"addr"`
	// Experiment names the experiments-registry entry to run.
	Experiment string `json:"experiment"`
	// Shard is the runner shard in "i/n" form.
	Shard string `json:"shard"`
	// Committed is the committed-instruction budget
	// (experiments.Params.MaxCommitted).
	Committed uint64 `json:"committed"`
	// BaseSeed roots the cells' RNG streams (0 = runner default).
	BaseSeed uint64 `json:"baseSeed"`
	// Replay is the replay mode ("" / "auto" / "off"); it changes
	// which cells a grid enumerates, so it is part of unit identity.
	Replay string `json:"replay"`
	// SynthN is the sweepspace generated-profile count (0 = default);
	// like Replay it changes which cells the grid enumerates.
	SynthN int `json:"synthN,omitempty"`
	// SynthWorkloads are the extra synth workload names the
	// experiment's grid appends (experiments.Params.SynthWorkloads).
	SynthWorkloads []string `json:"synthWorkloads,omitempty"`
	// Policy is the canonical spec (policy.Parse / Policy.Name form)
	// of the speculation-control policy installed on the scattering
	// coordinator's base pipeline, "" when none. Policies perturb
	// timing, so the spec is part of a unit's identity (UnitAddress
	// hashes it through pipelineIdentity) and workers must install the
	// same policy before simulating.
	Policy string `json:"policy,omitempty"`
	// SynthProfiles carry the generator vectors backing the
	// profile-backed subset of SynthWorkloads: workers re-register
	// them locally before running the unit. Trace-backed names have no
	// vector to ship; workers must have ingested the same trace files
	// (see docs/CLUSTER.md).
	SynthProfiles []synth.Profile `json:"synthProfiles,omitempty"`
	// TraceParent, when non-empty, is the W3C traceparent of the
	// coordinator's scatter span: the worker parents its unit span
	// there so cross-node spans share the job's TraceID.
	TraceParent string `json:"traceparent,omitempty"`
}

// FailRequest is the body of POST /cluster/v1/units/{id}/fail.
type FailRequest struct {
	// Error describes why the unit failed (for the coordinator log
	// and unit state).
	Error string `json:"error"`
	// Requeue asks the coordinator to reschedule the unit (a draining
	// worker sets it; a deterministic simulation error should not).
	Requeue bool `json:"requeue"`
}

// StatusWorker is one worker's row in a Status snapshot.
type StatusWorker struct {
	ID     string   `json:"id"`
	Node   string   `json:"node"`
	Queued int      `json:"queued"`
	Leased []string `json:"leased"`
	// LastSeenMillis is milliseconds since the last heartbeat.
	LastSeenMillis int64 `json:"lastSeenMillis"`
}

// Status is the GET /cluster/v1/status snapshot: live workers and unit
// counts by state. Tests and operators use it to observe scheduling.
type Status struct {
	Workers []StatusWorker `json:"workers"`
	Units   map[string]int `json:"units"`
}

// validAddr reports whether addr is a well-formed content address (a
// 64-digit lowercase hex SHA-256). Handlers reject anything else
// before touching the stores, which index by addr prefix.
func validAddr(addr string) bool {
	if len(addr) != 64 {
		return false
	}
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// encodeTrace frames a recorded trace and its base-run stats for the
// wire: a 4-byte big-endian stats-JSON length, the stats JSON, then
// the trace's own self-validating encoding (replay.Trace.Encode).
func encodeTrace(t *replay.Trace, st *pipeline.Stats) ([]byte, error) {
	stats, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode trace stats: %w", err)
	}
	enc := t.Encode()
	out := make([]byte, 0, 4+len(stats)+len(enc))
	out = binary.BigEndian.AppendUint32(out, uint32(len(stats)))
	out = append(out, stats...)
	out = append(out, enc...)
	return out, nil
}

// decodeTrace parses an encodeTrace frame. The trace payload goes
// through replay.Decode, so a corrupt or truncated body is rejected
// with a typed error rather than replayed.
func decodeTrace(data []byte) (*replay.Trace, *pipeline.Stats, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("cluster: trace frame truncated")
	}
	n := binary.BigEndian.Uint32(data)
	rest := data[4:]
	if uint32(len(rest)) < n {
		return nil, nil, fmt.Errorf("cluster: trace frame truncated")
	}
	st := new(pipeline.Stats)
	if err := json.Unmarshal(rest[:n], st); err != nil {
		return nil, nil, fmt.Errorf("cluster: decode trace stats: %w", err)
	}
	t, err := replay.Decode(rest[n:])
	if err != nil {
		return nil, nil, err
	}
	return t, st, nil
}
