package cluster

import (
	"strings"
	"testing"
	"time"

	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/policy"
	"specctrl/internal/serve"
)

// newSchedulerOnly boots a coordinator for direct scheduler-method
// tests (no HTTP workers).
func newSchedulerOnly(t *testing.T, mutate func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Serve: serve.Config{
			Addr:     "127.0.0.1:0",
			CacheDir: t.TempDir(),
			Params:   testParams(),
			Registry: obs.NewRegistry(),
		},
		Heartbeat: 50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := co.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return co
}

// TestScatterDealsRoundRobin: units land on live workers' deques
// evenly, UnitsPerWorker per worker.
func TestScatterDealsRoundRobin(t *testing.T) {
	co := newSchedulerOnly(t, nil)
	w1 := co.register("a")
	w2 := co.register("b")

	units := co.scatter("table3", testParams(), span.Context{})
	if want := co.cfg.UnitsPerWorker * 2; len(units) != want {
		t.Fatalf("scatter produced %d units, want %d", len(units), want)
	}
	co.mu.Lock()
	q1, q2 := len(w1.deque), len(w2.deque)
	co.mu.Unlock()
	if q1 != co.cfg.UnitsPerWorker || q2 != co.cfg.UnitsPerWorker {
		t.Errorf("deal uneven: %d vs %d", q1, q2)
	}
	// Shards must partition: every index 0..k-1 exactly once.
	seen := map[string]bool{}
	for _, u := range units {
		if seen[u.Shard] {
			t.Errorf("duplicate shard %s", u.Shard)
		}
		seen[u.Shard] = true
		if !strings.HasSuffix(u.Shard, "/4") {
			t.Errorf("shard %s not of count 4", u.Shard)
		}
		if !validAddr(u.Addr) {
			t.Errorf("unit address %q not a content address", u.Addr)
		}
	}
}

// TestPollStealsFromLongestVictim: a worker with an empty deque steals
// half the longest victim's deque from the back, mirroring the runner.
func TestPollStealsFromLongestVictim(t *testing.T) {
	co := newSchedulerOnly(t, func(cfg *Config) { cfg.UnitsPerWorker = 4 })
	w1 := co.register("a")
	w2 := co.register("b")

	co.scatter("table3", testParams(), span.Context{}) // 4 each

	// w2 drains its own deque first.
	for i := 0; i < 4; i++ {
		u, ok := co.poll(w2.id, 0)
		if !ok || u == nil {
			t.Fatalf("poll %d: unit=%v ok=%v", i, u, ok)
		}
	}
	if co.steals.Value() != 0 {
		t.Fatalf("steals before exhaustion: %d", co.steals.Value())
	}
	// The next poll must steal from w1 (the only victim).
	u, ok := co.poll(w2.id, 0)
	if !ok || u == nil {
		t.Fatal("steal poll returned nothing")
	}
	if co.steals.Value() == 0 {
		t.Error("steal not counted")
	}
	co.mu.Lock()
	q1 := len(w1.deque)
	co.mu.Unlock()
	// w1 had 4; half (2) were stolen, one handed out, one parked on
	// w2's deque.
	if q1 != 2 {
		t.Errorf("victim deque has %d units after steal, want 2", q1)
	}
}

// TestExpiryRequeuesLeases: a worker that stops heartbeating loses its
// leased unit to the TTL reaper; with another live worker present the
// unit is reassigned, not abandoned.
func TestExpiryRequeuesLeases(t *testing.T) {
	co := newSchedulerOnly(t, func(cfg *Config) { cfg.UnitsPerWorker = 1 })
	w1 := co.register("dies")
	w2 := co.register("survives")

	units := co.scatter("table3", testParams(), span.Context{})
	// Lease everything w1 holds, then fall silent.
	u1, ok := co.poll(w1.id, 0)
	if !ok || u1 == nil {
		t.Fatal("w1 got no unit")
	}

	// Keep w2 alive past w1's TTL.
	deadline := time.Now().Add(10 * time.Second)
	for {
		co.heartbeat(w2.id)
		co.mu.Lock()
		gone := w1.gone
		co.mu.Unlock()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("w1 never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if co.workersLost.Value() == 0 {
		t.Error("lost worker not counted")
	}
	if !co.heartbeat(w1.id) == false {
		t.Error("expired worker's heartbeat should report gone")
	}

	// w2 must now receive w1's unit, attempts incremented.
	got := map[string]int{}
	for range units {
		u, ok := co.poll(w2.id, time.Second)
		if !ok || u == nil {
			t.Fatal("w2 poll came up empty")
		}
		got[u.ID]++
	}
	if got[u1.ID] != 1 {
		t.Errorf("reassigned unit %s seen %d times by w2", u1.ID, got[u1.ID])
	}
	if co.unitsReassigned.Value() == 0 {
		t.Error("reassignment not counted")
	}
}

// TestLastWorkerLossAbandonsUnits: when the final live worker dies,
// pending units are abandoned (so the coordinator's local pass takes
// over) instead of waiting forever for a worker that will never come.
func TestLastWorkerLossAbandonsUnits(t *testing.T) {
	co := newSchedulerOnly(t, nil)
	w1 := co.register("only")
	units := co.scatter("table3", testParams(), span.Context{})

	co.mu.Lock()
	co.dropWorkerLocked(w1, true)
	co.mu.Unlock()

	for _, u := range units {
		select {
		case <-u.finished:
		case <-time.After(time.Second):
			t.Fatalf("unit %s still pending after last worker loss", u.ID)
		}
		if u.state != unitAbandoned {
			t.Errorf("unit %s state %s, want abandoned", u.ID, u.state)
		}
	}
}

// TestFailRequeueRespectsAttempts: a requeued failure retries until
// MaxAttempts, then the unit fails terminally.
func TestFailRequeueRespectsAttempts(t *testing.T) {
	co := newSchedulerOnly(t, func(cfg *Config) {
		cfg.UnitsPerWorker = 1
		cfg.MaxAttempts = 2
	})
	w := co.register("flaky")
	units := co.scatter("table3", testParams(), span.Context{})
	if len(units) != 1 {
		t.Fatalf("want 1 unit, got %d", len(units))
	}
	u := units[0]

	for attempt := 1; ; attempt++ {
		polled, ok := co.poll(w.id, time.Second)
		if !ok || polled == nil {
			t.Fatalf("attempt %d: no unit", attempt)
		}
		if !co.unitFailReport(polled.ID, FailRequest{Error: "boom", Requeue: true}) {
			t.Fatalf("attempt %d: fail report rejected", attempt)
		}
		if u.terminal() {
			if attempt != 2 {
				t.Errorf("unit terminal after %d attempts, want 2", attempt)
			}
			break
		}
		if attempt > 5 {
			t.Fatal("unit never exhausted its attempts")
		}
	}
	if u.state != unitFailed {
		t.Errorf("state %s, want failed", u.state)
	}
}

// TestValidAddr pins the address validation used by the cache-tier
// handlers (a short address would index the store out of range).
func TestValidAddr(t *testing.T) {
	good := strings.Repeat("ab", 32)
	if !validAddr(good) {
		t.Error("rejects a valid address")
	}
	for _, bad := range []string{"", "ab", strings.Repeat("g", 64), strings.Repeat("AB", 32), good + "00"} {
		if validAddr(bad) {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestDecodeTraceRejectsGarbage: the trace-tier upload path must
// reject truncated or corrupt frames with an error, never panic or
// accept them.
func TestDecodeTraceRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		{0, 0},
		{0, 0, 0, 10, 'x'},                    // stats length past the end
		{0, 0, 0, 2, '{', '}', 1, 2, 3},       // garbage trace payload
		{0, 0, 0, 2, 'n', 'o', 1, 2, 3, 4, 5}, // bad stats JSON
	} {
		if _, _, err := decodeTrace(bad); err == nil {
			t.Errorf("decodeTrace(%v) accepted garbage", bad)
		}
	}
}

// TestScatterCarriesPolicySpec: a coordinator with a base-config policy
// scatters units that name it in canonical spec form, and a worker can
// parse the spec back to an equivalent policy. Unpolicied params
// scatter with the field empty (omitted on the wire).
func TestScatterCarriesPolicySpec(t *testing.T) {
	pol, err := policy.Parse("throttle:4,2,1")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Pipeline.Policy = pol
	co := newSchedulerOnly(t, func(c *Config) { c.Serve.Params = p })
	co.register("a")

	units := co.scatter("table3", p, span.Context{})
	if len(units) == 0 {
		t.Fatal("no units scattered")
	}
	for _, u := range units {
		if u.Policy != "throttle:4,2,1" {
			t.Fatalf("unit policy = %q, want throttle:4,2,1", u.Policy)
		}
		back, err := policy.Parse(u.Policy)
		if err != nil {
			t.Fatalf("worker-side parse: %v", err)
		}
		if back.Name() != pol.Name() {
			t.Errorf("policy did not round-trip: %q != %q", back.Name(), pol.Name())
		}
	}

	plain := newSchedulerOnly(t, nil)
	plain.register("a")
	for _, u := range plain.scatter("table3", testParams(), span.Context{}) {
		if u.Policy != "" {
			t.Errorf("unpolicied unit carries policy %q", u.Policy)
		}
	}
}
