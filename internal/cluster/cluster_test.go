package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/serve"
)

// testParams is the reduced scale the cluster e2e tests simulate at
// (the same budget internal/serve's tests use).
func testParams() experiments.Params {
	p := experiments.TestParams()
	p.MaxCommitted = 40_000
	return p
}

// newTestCluster boots a coordinator and n workers on loopback with
// fast heartbeats, all torn down with the test.
func newTestCluster(t *testing.T, n int, mutate func(*Config)) (*Coordinator, []*Worker) {
	t.Helper()
	cfg := Config{
		Serve: serve.Config{
			Addr:           "127.0.0.1:0",
			CacheDir:       t.TempDir(),
			Params:         testParams(),
			Jobs:           2,
			JobConcurrency: 2,
			Registry:       obs.NewRegistry(),
		},
		Heartbeat: 100 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := co.Drain(); err != nil {
			t.Errorf("coordinator drain: %v", err)
		}
	})
	workers := make([]*Worker, n)
	for i := range workers {
		w, err := NewWorker(WorkerConfig{
			Coordinator: co.URL(),
			Node:        fmt.Sprintf("node-%d", i),
			Jobs:        2,
			PollWait:    200 * time.Millisecond,
			Registry:    obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		t.Cleanup(func() {
			if err := w.Drain(); err != nil {
				t.Errorf("worker drain: %v", err)
			}
		})
	}
	return co, workers
}

// submitJob posts a job for the given experiments and returns the
// submit response.
func submitJob(t *testing.T, co *Coordinator, body string) serve.SubmitResponse {
	t.Helper()
	resp, err := http.Post(co.URL()+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, data)
	}
	var sub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// waitDone polls a job to its terminal state and requires "done".
func waitDone(t *testing.T, co *Coordinator, sub serve.SubmitResponse) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st serve.StatusResponse
		getJSON(t, co.URL()+sub.Status, &st)
		switch st.State {
		case "done":
			return
		case "failed", "drained":
			t.Fatalf("job %s: state %s, error %q", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchResult returns the rendered output of a done single-experiment
// job.
func fetchResult(t *testing.T, co *Coordinator, sub serve.SubmitResponse) string {
	t.Helper()
	var res serve.ResultResponse
	getJSON(t, co.URL()+sub.Result, &res)
	if len(res.Outputs) != 1 {
		t.Fatalf("expected 1 output, got %d", len(res.Outputs))
	}
	return res.Outputs[0].Output
}

// fetchResults returns a done job's rendered outputs keyed by
// experiment name.
func fetchResults(t *testing.T, co *Coordinator, sub serve.SubmitResponse) map[string]string {
	t.Helper()
	var res serve.ResultResponse
	getJSON(t, co.URL()+sub.Result, &res)
	out := make(map[string]string, len(res.Outputs))
	for _, o := range res.Outputs {
		out[o.Experiment] = o.Output
	}
	return out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// localRender is the single-process reference output for an experiment
// under testParams.
func localRender(t *testing.T, name string) string {
	t.Helper()
	r, err := experiments.Run(name, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return r.Render()
}

// TestClusterByteIdenticalToLocal is the tentpole acceptance: a
// 2-worker cluster run renders byte-identically to a single-process
// run, and the workers actually did work (cells were published through
// the shared tier, not computed by the coordinator's local pass
// alone).
func TestClusterByteIdenticalToLocal(t *testing.T) {
	want := localRender(t, "table3")
	co, workers := newTestCluster(t, 2, nil)

	sub := submitJob(t, co, `{"version":1,"experiments":["table3"]}`)
	waitDone(t, co, sub)
	if got := fetchResult(t, co, sub); got != want {
		t.Errorf("cluster output differs from local run:\n--- local ---\n%s\n--- cluster ---\n%s", want, got)
	}
	if co.cellPuts.Value() == 0 {
		t.Error("no cells were published by workers: the cluster did not participate")
	}
	if co.unitsDone.Value() == 0 {
		t.Error("no units completed")
	}
	var executed uint64
	for _, w := range workers {
		executed += w.unitsDone.Value()
	}
	if executed == 0 {
		t.Error("no worker executed a unit")
	}
}

// TestClusterCrossNodeCacheHits: work one node did must be another
// node's cache hit, on all three shared tiers. A table3 job (arch-
// eligible: its workers record committed streams) and a fig5 job
// (events-shaped: McFarling recordings) warm the coordinator's tiers;
// then a fresh worker (cold local caches, the original workers
// drained) runs misest — different cells, but the same committed
// streams table3 recorded — and jrsmcf — different cells, the same
// (workload, McFarling) event traces fig5 recorded — so it must fetch
// both kinds of recording from the coordinator. Finally a table3
// resubmission must be served from the shared cell tier.
func TestClusterCrossNodeCacheHits(t *testing.T) {
	co, workers := newTestCluster(t, 2, nil)

	first := submitJob(t, co, `{"version":1,"experiments":["table3","fig5"]}`)
	waitDone(t, co, first)
	// table3 is arch-eligible: the committed streams recorded on the
	// workers were written through to the coordinator's arch tier.
	if co.archTracePuts.Value() == 0 {
		t.Error("no arch traces were uploaded to the shared tier")
	}
	// fig5 is events-shaped: its event recordings were written through
	// to the coordinator's event-trace tier.
	if co.tracePuts.Value() == 0 {
		t.Error("no event traces were uploaded to the shared tier")
	}

	for _, w := range workers {
		if err := w.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := NewWorker(WorkerConfig{
		Coordinator: co.URL(),
		Node:        "node-fresh",
		Jobs:        2,
		PollWait:    200 * time.Millisecond,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := fresh.Drain(); err != nil {
			t.Errorf("fresh worker drain: %v", err)
		}
	})

	second := submitJob(t, co, `{"version":1,"experiments":["misest","jrsmcf"]}`)
	waitDone(t, co, second)
	if co.archTraceHits.Value() == 0 {
		t.Error("no cross-node arch-trace hits recorded")
	}
	if co.traceHits.Value() == 0 {
		t.Error("no cross-node trace-cache hits recorded")
	}
	res := fetchResults(t, co, second)
	if got, want := res["misest"], localRender(t, "misest"); got != want {
		t.Error("misest cluster output differs from local run")
	}
	if got, want := res["jrsmcf"], localRender(t, "jrsmcf"); got != want {
		t.Error("jrsmcf cluster output differs from local run")
	}

	third := submitJob(t, co, `{"version":1,"experiments":["table3"]}`)
	waitDone(t, co, third)
	if got, want := fetchResults(t, co, third)["table3"], fetchResults(t, co, first)["table3"]; got != want {
		t.Error("table3 resubmission differs from the first run")
	}
	if co.cellHits.Value() == 0 {
		t.Error("no cross-node cell-cache hits recorded")
	}
}

// TestClusterKillWorkerMidJob is the chaos acceptance: SIGKILL-ing a
// worker mid-grid (Worker.Kill is the in-process stand-in — it stops
// everything instantly and reports nothing) must leave the job
// completing with byte-identical output, the dead worker's units
// recovered by the lease TTL.
func TestClusterKillWorkerMidJob(t *testing.T) {
	want := localRender(t, "table3")
	co, workers := newTestCluster(t, 2, func(cfg *Config) {
		cfg.Heartbeat = 50 * time.Millisecond // TTL 150ms: fast recovery
	})

	sub := submitJob(t, co, `{"version":1,"experiments":["table3"]}`)

	// Kill a worker as soon as the scheduler has leased it a unit, so
	// the kill lands mid-grid rather than before or after the work.
	victim := (*Worker)(nil)
	deadline := time.Now().Add(60 * time.Second)
	for victim == nil && time.Now().Before(deadline) {
		var st Status
		getJSON(t, co.URL()+"/cluster/v1/status", &st)
		for _, row := range st.Workers {
			if len(row.Leased) == 0 {
				continue
			}
			for _, w := range workers {
				if w.ID() == row.ID {
					victim = w
					break
				}
			}
			if victim != nil {
				break
			}
		}
		if victim == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if victim == nil {
		t.Fatal("no unit was ever leased; cannot stage the kill")
	}
	victim.Kill()

	waitDone(t, co, sub)
	if got := fetchResult(t, co, sub); got != want {
		t.Errorf("post-kill cluster output differs from local run:\n--- local ---\n%s\n--- cluster ---\n%s", want, got)
	}
	if co.workersLost.Value() == 0 {
		t.Error("the killed worker was never declared lost")
	}
}

// TestClusterNoWorkers: a coordinator with no workers degrades to a
// plain single-process service — jobs still complete byte-identically.
func TestClusterNoWorkers(t *testing.T) {
	want := localRender(t, "table2")
	co, _ := newTestCluster(t, 0, nil)

	sub := submitJob(t, co, `{"version":1,"experiments":["table2"]}`)
	waitDone(t, co, sub)
	if got := fetchResult(t, co, sub); got != want {
		t.Error("workerless cluster output differs from local run")
	}
}

// TestClusterWorkerDrainHandsBack: a graceful worker drain mid-job
// requeues its work and the job still completes correctly on the
// remaining worker.
func TestClusterWorkerDrainHandsBack(t *testing.T) {
	want := localRender(t, "table3")
	co, workers := newTestCluster(t, 2, nil)

	sub := submitJob(t, co, `{"version":1,"experiments":["table3"]}`)
	// Let the scheduler hand out some work, then drain one worker.
	time.Sleep(50 * time.Millisecond)
	if err := workers[0].Drain(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, co, sub)
	if got := fetchResult(t, co, sub); got != want {
		t.Error("post-drain cluster output differs from local run")
	}
}
