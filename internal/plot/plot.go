// Package plot renders small ASCII line charts for the figure
// experiments, so `simctrl -exp fig6` prints a readable curve — not just
// a number column — as the paper's figures do.
//
// Charts are deliberately minimal: a fixed-size character grid, one mark
// per series, automatic y-scaling, a y-axis with two labels and an
// x-axis with endpoint labels. Series are plotted over a shared implicit
// x of 0..n-1.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Mark   byte // character used for this curve's points
	Values []float64
}

// Config sizes the chart.
type Config struct {
	Width  int // plot columns (excluding axis labels)
	Height int // plot rows
	// YFormat formats axis labels (default "%.2f").
	YFormat string
	// XLabel annotates the x axis (e.g. "distance").
	XLabel string
	// YMin/YMax fix the y range; when both are zero the range is
	// derived from the data.
	YMin, YMax float64
}

// DefaultConfig returns a chart sized for 80-column terminals.
func DefaultConfig() Config {
	return Config{Width: 60, Height: 14, YFormat: "%.2f"}
}

// Render draws the series into a string.
func Render(cfg Config, series ...Series) string {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.YFormat == "" {
		cfg.YFormat = "%.2f"
	}

	ymin, ymax := cfg.YMin, cfg.YMax
	maxLen := 0
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Values {
				ymin = math.Min(ymin, v)
				ymax = math.Max(ymax, v)
			}
		}
		if math.IsInf(ymin, 1) { // no data
			ymin, ymax = 0, 1
		}
		if ymin == ymax {
			ymax = ymin + 1
		}
	}
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		return "(no data)\n"
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	// Map (index, value) to a cell; series drawn in order so later
	// series overwrite earlier ones on collisions.
	for _, s := range series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		for i, v := range s.Values {
			var col int
			if maxLen == 1 {
				col = 0
			} else {
				col = i * (cfg.Width - 1) / (maxLen - 1)
			}
			frac := (v - ymin) / (ymax - ymin)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			row := cfg.Height - 1 - int(frac*float64(cfg.Height-1)+0.5)
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	topLabel := fmt.Sprintf(cfg.YFormat, ymax)
	botLabel := fmt.Sprintf(cfg.YFormat, ymin)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case cfg.Height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", cfg.Width))
	xl := cfg.XLabel
	if xl == "" {
		xl = "x"
	}
	fmt.Fprintf(&b, "%s  1%s%d (%s)\n", strings.Repeat(" ", labelW),
		strings.Repeat(" ", max(1, cfg.Width-2-len(fmt.Sprint(maxLen)))), maxLen, xl)
	// Legend.
	for _, s := range series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", labelW), mark, s.Name)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
