package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render(DefaultConfig(),
		Series{Name: "up", Mark: '*', Values: []float64{0, 1, 2, 3, 4}},
		Series{Name: "flat", Mark: '-', Values: []float64{2, 2, 2, 2, 2}},
	)
	if !strings.Contains(out, "* up") || !strings.Contains(out, "- flat") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "4.00") || !strings.Contains(out, "0.00") {
		t.Errorf("y labels missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestRenderMonotoneSeriesShape(t *testing.T) {
	// An increasing series must place its first point lower (later row)
	// than its last point.
	cfg := Config{Width: 20, Height: 10, YFormat: "%.1f"}
	out := Render(cfg, Series{Name: "s", Mark: '#', Values: []float64{0, 10}})
	rows := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, row := range rows {
		if idx := strings.IndexByte(row, '#'); idx >= 0 {
			if strings.Index(row, "#") == strings.LastIndex(row, "#") && idx < len(row)/2 {
				lastRowCandidate := i
				_ = lastRowCandidate
			}
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("expected marks on two rows:\n%s", out)
	}
	// The high value (10) plots near the top (earlier line).
	topRow := rows[firstRow]
	if !strings.Contains(topRow, "#") || strings.IndexByte(topRow, '#') < 10 {
		// The top row's mark is the later x position (value 10 at x=1).
		t.Errorf("high value not at top-right:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(DefaultConfig())
	if !strings.Contains(out, "no data") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := Render(DefaultConfig(), Series{Name: "pt", Values: []float64{5}})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// A constant series must not divide by zero.
	out := Render(DefaultConfig(), Series{Name: "c", Values: []float64{3, 3, 3}})
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestFixedRangeClamps(t *testing.T) {
	cfg := Config{Width: 10, Height: 5, YMin: 0, YMax: 1, YFormat: "%.1f"}
	out := Render(cfg, Series{Name: "s", Values: []float64{-5, 0.5, 10}})
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "0.0") {
		t.Errorf("fixed range labels missing:\n%s", out)
	}
}

func TestDefaultMark(t *testing.T) {
	out := Render(DefaultConfig(), Series{Name: "d", Values: []float64{1, 2}})
	if !strings.Contains(out, "*") {
		t.Error("default mark not applied")
	}
}
