package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/rng"
	"specctrl/internal/workload"
)

func randomEvents(seed uint64, n int) []pipeline.BranchEvent {
	g := rng.New(seed)
	events := make([]pipeline.BranchEvent, n)
	cycle := uint64(0)
	for i := range events {
		cycle += uint64(g.Intn(4))
		events[i] = pipeline.BranchEvent{
			PC:        int64(g.Intn(1 << 20)),
			Pred:      g.Bool(0.6),
			Outcome:   g.Bool(0.6),
			HighConf:  g.Bool(0.7),
			WrongPath: g.Bool(0.2),
			Cycle:     cycle,
			ConfMask:  g.Uint64() & 0xff,
		}
	}
	return events
}

func TestRoundTrip(t *testing.T) {
	events := randomEvents(1, 5000)
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("length %d != %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		events := randomEvents(seed, int(n%512))
		var buf bytes.Buffer
		if err := Write(&buf, events); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v %v", got, err)
	}
}

func TestCompactness(t *testing.T) {
	// A realistic trace (from an actual simulation, with locality) must
	// average well under 8 bytes/event.
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 100_000
	cfg.MaxCycles = 10_000_000
	cfg.RecordEvents = true
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	sim := pipeline.MustNew(cfg, w.Build(1<<30), bpred.NewGshare(12))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st.Events); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(len(st.Events))
	if perEvent > 8 {
		t.Errorf("%.1f bytes/event, want < 8", perEvent)
	}
}

func TestSimulationTraceRoundTrip(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 50_000
	cfg.MaxCycles = 10_000_000
	cfg.RecordEvents = true
	cfg.Estimators = []conf.Estimator{conf.SatCounters{}}
	sim := pipeline.MustNew(cfg, w.Build(1<<30), bpred.NewGshare(12))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, st.Events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The restored trace must reproduce the quadrants exactly.
	sum := Summarize(got)
	if uint64(sum.Committed) != st.CommittedBr {
		t.Errorf("committed %d != %d", sum.Committed, st.CommittedBr)
	}
	if uint64(sum.Mispredict) != st.CommittedQ.Incorrect() {
		t.Errorf("mispredictions %d != %d", sum.Mispredict, st.CommittedQ.Incorrect())
	}
	if uint64(sum.LowConf) != st.CommittedQ.Clc+st.CommittedQ.Ilc {
		t.Errorf("low-conf %d != %d", sum.LowConf, st.CommittedQ.Clc+st.CommittedQ.Ilc)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE....."))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(99) // version varint
	buf.WriteByte(0)  // count
	if _, err := Read(&buf); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	events := randomEvents(3, 100)
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 5, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestImplausibleCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(Version)
	// Count = 2^40 as varint.
	var scratch [10]byte
	n := putUvarintHelper(scratch[:], 1<<40)
	buf.Write(scratch[:n])
	if _, err := Read(&buf); err == nil {
		t.Error("implausible count accepted")
	}
}

func putUvarintHelper(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

func TestSummarize(t *testing.T) {
	events := []pipeline.BranchEvent{
		{Pred: true, Outcome: true, HighConf: true},                   // committed, correct, HC
		{Pred: true, Outcome: false, HighConf: false},                 // committed, mispredicted, LC
		{Pred: false, Outcome: false, HighConf: false},                // committed, correct, LC
		{Pred: true, Outcome: false, HighConf: true, WrongPath: true}, // wrong path
	}
	s := Summarize(events)
	want := Summary{Events: 4, Committed: 3, WrongPath: 1, Mispredict: 1, LowConf: 2}
	if s != want {
		t.Errorf("Summarize = %+v, want %+v", s, want)
	}
}

func TestWriteToFailingWriter(t *testing.T) {
	events := randomEvents(5, 2000)
	w := &failAfter{n: 10}
	if err := Write(w, events); err == nil {
		t.Error("write error not propagated")
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n -= len(p)
	return len(p), nil
}
