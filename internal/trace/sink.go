package trace

import (
	"io"

	"specctrl/internal/obs"
	"specctrl/internal/pipeline"
)

// Sink adapts the binary trace writer to the simulator's obs.Tracer
// hook, making the compact format one sink among several (obs.JSONL
// for debugging, nil for the null sink). The format's header carries
// the event count, so the sink buffers events and serializes the
// stream on Close — the same memory profile as Config.RecordEvents,
// but without coupling callers to Stats.Events.
type Sink struct {
	w      io.Writer
	events []pipeline.BranchEvent
	closed bool
	err    error
}

var _ obs.Tracer = (*Sink)(nil)

// NewSink returns a Sink that will write the trace stream to w on
// Close. The caller owns w.
func NewSink(w io.Writer) *Sink {
	return &Sink{w: w}
}

// Branch buffers one event.
func (s *Sink) Branch(e obs.BranchEvent) {
	s.events = append(s.events, pipeline.BranchEvent{
		PC:        e.PC,
		Pred:      e.Pred,
		Outcome:   e.Outcome,
		HighConf:  e.HighConf,
		WrongPath: e.WrongPath,
		Cycle:     e.Cycle,
		ConfMask:  e.ConfMask,
	})
}

// Count returns the number of events buffered so far.
func (s *Sink) Count() int { return len(s.events) }

// Events returns the buffered events (borrowed, valid until the next
// Branch call).
func (s *Sink) Events() []pipeline.BranchEvent { return s.events }

// Close serializes the buffered events to the underlying writer.
// Subsequent calls return the first result without rewriting.
func (s *Sink) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	s.err = Write(s.w, s.events)
	return s.err
}
