// Package trace serializes branch-event streams — the "speculative
// trace" the paper records (§3.1): the prediction and eventual outcome
// of every fetched conditional branch, committed and uncommitted alike.
//
// Long simulations produce tens of millions of events, so the format is
// a compact delta-encoded binary stream rather than JSON: per event, the
// PC is a zig-zag varint delta from the previous event's PC, the cycle a
// varint delta from the previous cycle, and the four flags plus the
// estimator bitmask pack into varints. Typical traces compress to 3-5
// bytes per event.
//
// The stream begins with a fixed header (magic, version, event count)
// and is written/read through the standard io interfaces, so callers can
// layer any further framing or compression they like.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"specctrl/internal/pipeline"
)

// Magic identifies the trace format; Version is bumped on layout change.
const (
	Magic   = "SPCT"
	Version = 1
)

var (
	// ErrBadMagic means the stream does not start with a trace header.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrVersion means the stream uses an unsupported format version.
	ErrVersion = errors.New("trace: unsupported version")
	// ErrCorrupt means the header or an event decoded to an impossible
	// value (e.g. an implausible event count); truncated streams
	// instead surface wrapped io.ErrUnexpectedEOF / io.EOF errors.
	ErrCorrupt = errors.New("trace: corrupt stream")
)

const (
	flagPred = 1 << iota
	flagOutcome
	flagHighConf
	flagWrongPath
)

// Write serializes events to w.
func Write(w io.Writer, events []pipeline.BranchEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := put(Version); err != nil {
		return err
	}
	if err := put(uint64(len(events))); err != nil {
		return err
	}
	var prevPC int64
	var prevCycle uint64
	for _, e := range events {
		var flags uint64
		if e.Pred {
			flags |= flagPred
		}
		if e.Outcome {
			flags |= flagOutcome
		}
		if e.HighConf {
			flags |= flagHighConf
		}
		if e.WrongPath {
			flags |= flagWrongPath
		}
		if err := put(flags); err != nil {
			return err
		}
		if err := put(zigzag(e.PC - prevPC)); err != nil {
			return err
		}
		if err := put(e.Cycle - prevCycle); err != nil {
			return err
		}
		if err := put(e.ConfMask); err != nil {
			return err
		}
		prevPC, prevCycle = e.PC, e.Cycle
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]pipeline.BranchEvent, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 34
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrCorrupt, count)
	}
	// Cap the up-front allocation: the count is attacker-controlled
	// input until the events actually decode, so a corrupt header must
	// not be able to demand gigabytes before the first read fails.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	events := make([]pipeline.BranchEvent, 0, capHint)
	var prevPC int64
	var prevCycle uint64
	for i := uint64(0); i < count; i++ {
		flags, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d flags: %w", i, err)
		}
		dpc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d pc: %w", i, err)
		}
		dcycle, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d cycle: %w", i, err)
		}
		mask, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d mask: %w", i, err)
		}
		pc := prevPC + unzigzag(dpc)
		cycle := prevCycle + dcycle
		events = append(events, pipeline.BranchEvent{
			PC:        pc,
			Pred:      flags&flagPred != 0,
			Outcome:   flags&flagOutcome != 0,
			HighConf:  flags&flagHighConf != 0,
			WrongPath: flags&flagWrongPath != 0,
			Cycle:     cycle,
			ConfMask:  mask,
		})
		prevPC, prevCycle = pc, cycle
	}
	return events, nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Summary aggregates a trace's headline statistics, so tools can report
// on stored traces without re-simulating.
type Summary struct {
	Events     int
	Committed  int
	WrongPath  int
	Mispredict int // committed mispredictions
	LowConf    int // committed low-confidence estimates
}

// Summarize scans events.
func Summarize(events []pipeline.BranchEvent) Summary {
	s := Summary{Events: len(events)}
	for _, e := range events {
		if e.WrongPath {
			s.WrongPath++
			continue
		}
		s.Committed++
		if !e.Correct() {
			s.Mispredict++
		}
		if !e.HighConf {
			s.LowConf++
		}
	}
	return s
}
