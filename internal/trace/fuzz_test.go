package trace

import (
	"bytes"
	"reflect"
	"testing"

	"specctrl/internal/obs"
)

// branchEventFrom expands packed fuzz arguments into a tracer event.
func branchEventFrom(pc int64, cycle, mask uint64, flags uint8) obs.BranchEvent {
	return obs.BranchEvent{
		PC:        pc,
		Pred:      flags&1 != 0,
		Outcome:   flags&2 != 0,
		HighConf:  flags&4 != 0,
		WrongPath: flags&8 != 0,
		Cycle:     cycle,
		ConfMask:  mask,
	}
}

// FuzzRead feeds arbitrary bytes to the trace reader: it must never
// panic, and whenever a stream decodes successfully, re-encoding the
// decoded events must round-trip to an identical event list (Write ∘
// Read is idempotent even on streams Write never produced, because
// decode normalizes everything to events).
func FuzzRead(f *testing.F) {
	// Seed corpus: valid streams of several shapes, plus classic
	// corruptions, so the fuzzer starts on both sides of the parser.
	seeds := [][]byte{
		{},                    // empty
		[]byte("SPC"),         // truncated magic
		[]byte("XXXX\x01\x00"), // wrong magic
		[]byte("SPCT\x02\x00"), // wrong version
		[]byte("SPCT\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"), // absurd count
	}
	for _, n := range []int{0, 1, 7, 300} {
		var buf bytes.Buffer
		if err := Write(&buf, randomEvents(uint64(n)+42, n)); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
		if buf.Len() > 4 {
			seeds = append(seeds, buf.Bytes()[:buf.Len()-3]) // truncated tail
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, events); err != nil {
			t.Fatalf("re-encode of decoded stream failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round-trip mismatch: %d events in, %d out", len(events), len(again))
		}
	})
}

// FuzzSinkRoundTrip drives the obs.Tracer sink path with fuzzed event
// fields: whatever the simulator could emit must survive
// Sink→Write→Read bit-exactly.
func FuzzSinkRoundTrip(f *testing.F) {
	f.Add(int64(0), uint64(0), uint64(0), uint8(0))
	f.Add(int64(-1), uint64(1<<40), uint64(1<<63), uint8(0xff))
	f.Add(int64(1<<40), uint64(3), uint64(12345), uint8(0x5a))
	f.Fuzz(func(t *testing.T, pc int64, cycle, mask uint64, flags uint8) {
		var buf bytes.Buffer
		s := NewSink(&buf)
		s.Branch(branchEventFrom(pc, cycle, mask, flags))
		s.Branch(branchEventFrom(pc/2, cycle+uint64(flags), mask>>1, ^flags))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Events()
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
			}
		}
	})
}
