package isa

import "testing"

// TestEveryEmitter drives each Builder emitter once and checks the
// emitted opcode and operand routing, so a mis-wired emitter fails here
// rather than deep inside a workload.
func TestEveryEmitter(t *testing.T) {
	b := NewBuilder("emitters")
	b.Label("top")
	b.Nop()
	b.Add(1, 2, 3)
	b.Sub(1, 2, 3)
	b.And(1, 2, 3)
	b.Or(1, 2, 3)
	b.Xor(1, 2, 3)
	b.Shl(1, 2, 3)
	b.Shr(1, 2, 3)
	b.Mul(1, 2, 3)
	b.Div(1, 2, 3)
	b.Rem(1, 2, 3)
	b.Slt(1, 2, 3)
	b.Sltu(1, 2, 3)
	b.Addi(1, 2, 7)
	b.Andi(1, 2, 7)
	b.Ori(1, 2, 7)
	b.Xori(1, 2, 7)
	b.Shli(1, 2, 7)
	b.Shri(1, 2, 7)
	b.Muli(1, 2, 7)
	b.Slti(1, 2, 7)
	b.Lui(1, 7)
	b.Li(1, 7)
	b.Mov(1, 2)
	b.Ld(1, 2, 7)
	b.St(3, 2, 7)
	b.Beq(1, 2, "top")
	b.Bne(1, 2, "top")
	b.Blt(1, 2, "top")
	b.Bge(1, 2, "top")
	b.Jump("top")
	b.Call("top")
	b.Ret()
	b.Jalr(1, 2, 7)
	b.Halt()
	p := b.MustBuild()

	want := []struct {
		op         Op
		rd, ra, rb Reg
		imm        int32
	}{
		{OpNop, 0, 0, 0, 0},
		{OpAdd, 1, 2, 3, 0},
		{OpSub, 1, 2, 3, 0},
		{OpAnd, 1, 2, 3, 0},
		{OpOr, 1, 2, 3, 0},
		{OpXor, 1, 2, 3, 0},
		{OpShl, 1, 2, 3, 0},
		{OpShr, 1, 2, 3, 0},
		{OpMul, 1, 2, 3, 0},
		{OpDiv, 1, 2, 3, 0},
		{OpRem, 1, 2, 3, 0},
		{OpSlt, 1, 2, 3, 0},
		{OpSltu, 1, 2, 3, 0},
		{OpAddi, 1, 2, 0, 7},
		{OpAndi, 1, 2, 0, 7},
		{OpOri, 1, 2, 0, 7},
		{OpXori, 1, 2, 0, 7},
		{OpShli, 1, 2, 0, 7},
		{OpShri, 1, 2, 0, 7},
		{OpMuli, 1, 2, 0, 7},
		{OpSlti, 1, 2, 0, 7},
		{OpLui, 1, 0, 0, 7},
		{OpAddi, 1, Zero, 0, 7}, // Li
		{OpAddi, 1, 2, 0, 0},    // Mov
		{OpLd, 1, 2, 0, 7},
		{OpSt, 0, 2, 3, 7},
	}
	for i, w := range want {
		in := p.Code[i]
		if in.Op != w.op || in.Rd != w.rd || in.Ra != w.ra || in.Rb != w.rb || in.Imm != w.imm {
			t.Errorf("instr %d = %v, want op=%v rd=%d ra=%d rb=%d imm=%d",
				i, in, w.op, w.rd, w.ra, w.rb, w.imm)
		}
	}
	// Branch/jump block: all target "top" (address 0), so displacement
	// is -(idx+1).
	base := len(want)
	branchOps := []Op{OpBeq, OpBne, OpBlt, OpBge, OpJal, OpJal}
	for i, op := range branchOps {
		in := p.Code[base+i]
		if in.Op != op {
			t.Errorf("control %d: op = %v, want %v", i, in.Op, op)
		}
		if in.Imm != int32(-(base+i)-1) {
			t.Errorf("control %d: displacement %d, want %d", i, in.Imm, -(base+i)-1)
		}
	}
	// Call links into RA; Jump discards.
	if p.Code[base+4].Rd != Zero || p.Code[base+5].Rd != RA {
		t.Error("Jump/Call link registers wrong")
	}
	// Ret and explicit Jalr.
	ret := p.Code[base+6]
	if ret.Op != OpJalr || ret.Rd != Zero || ret.Ra != RA {
		t.Errorf("Ret = %v", ret)
	}
	jalr := p.Code[base+7]
	if jalr.Op != OpJalr || jalr.Rd != 1 || jalr.Ra != 2 || jalr.Imm != 7 {
		t.Errorf("Jalr = %v", jalr)
	}
	if p.Code[base+8].Op != OpHalt {
		t.Error("missing halt")
	}
	if b.PC() != int64(len(p.Code)) {
		t.Errorf("PC() = %d, want %d", b.PC(), len(p.Code))
	}
}
