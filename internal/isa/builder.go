package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program incrementally. It supports named labels with
// forward references (fixed up in Build), initial data placement, and
// convenience emitters for every instruction. Emitters return the builder
// so short sequences can be chained.
//
// All control-flow emitters take label names rather than raw displacements;
// Build resolves them to PC-relative offsets (branches, JAL) as required by
// the encoding.
type Builder struct {
	name   string
	code   []Instruction
	data   map[int64]int64
	labels map[string]int64
	// fixups maps code index -> label whose resolved PC-relative
	// displacement must be written into the Imm field.
	fixups map[int]string
	// absFixups maps code index -> label whose absolute code address
	// must be written into the Imm field (for computed jumps via Li).
	absFixups map[int]string
	errs      []error
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:      name,
		data:      make(map[int64]int64),
		labels:    make(map[string]int64),
		fixups:    make(map[int]string),
		absFixups: make(map[int]string),
	}
}

// PC returns the address that the next emitted instruction will occupy.
func (b *Builder) PC() int64 { return int64(len(b.code)) }

// Label defines name at the current PC. Redefinition is an error reported
// by Build.
func (b *Builder) Label(name string) *Builder {
	if _, ok := b.labels[name]; ok {
		b.errs = append(b.errs, fmt.Errorf("isa: label %q redefined", name))
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// Word places value at the given word address in the initial data image.
func (b *Builder) Word(addr, value int64) *Builder {
	b.data[addr] = value
	return b
}

// Words places a run of values starting at addr.
func (b *Builder) Words(addr int64, values ...int64) *Builder {
	for i, v := range values {
		b.data[addr+int64(i)] = v
	}
	return b
}

func (b *Builder) emit(in Instruction) *Builder {
	b.code = append(b.code, in)
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instruction{Op: OpNop}) }

// Halt emits a machine stop.
func (b *Builder) Halt() *Builder { return b.emit(Instruction{Op: OpHalt}) }

// --- register-register ALU ---

// Add emits rd = ra + rb.
func (b *Builder) Add(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb})
}

// Sub emits rd = ra - rb.
func (b *Builder) Sub(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpSub, Rd: rd, Ra: ra, Rb: rb})
}

// And emits rd = ra & rb.
func (b *Builder) And(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb})
}

// Or emits rd = ra | rb.
func (b *Builder) Or(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpOr, Rd: rd, Ra: ra, Rb: rb})
}

// Xor emits rd = ra ^ rb.
func (b *Builder) Xor(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpXor, Rd: rd, Ra: ra, Rb: rb})
}

// Shl emits rd = ra << rb.
func (b *Builder) Shl(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpShl, Rd: rd, Ra: ra, Rb: rb})
}

// Shr emits rd = ra >> rb (logical).
func (b *Builder) Shr(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpShr, Rd: rd, Ra: ra, Rb: rb})
}

// Mul emits rd = ra * rb.
func (b *Builder) Mul(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpMul, Rd: rd, Ra: ra, Rb: rb})
}

// Div emits rd = ra / rb (0 when rb is 0).
func (b *Builder) Div(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpDiv, Rd: rd, Ra: ra, Rb: rb})
}

// Rem emits rd = ra % rb (0 when rb is 0).
func (b *Builder) Rem(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpRem, Rd: rd, Ra: ra, Rb: rb})
}

// Slt emits rd = (ra < rb) signed.
func (b *Builder) Slt(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpSlt, Rd: rd, Ra: ra, Rb: rb})
}

// Sltu emits rd = (ra < rb) unsigned.
func (b *Builder) Sltu(rd, ra, rb Reg) *Builder {
	return b.emit(Instruction{Op: OpSltu, Rd: rd, Ra: ra, Rb: rb})
}

// --- register-immediate ALU ---

// Addi emits rd = ra + imm.
func (b *Builder) Addi(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpAddi, Rd: rd, Ra: ra, Imm: imm})
}

// Andi emits rd = ra & imm.
func (b *Builder) Andi(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpAndi, Rd: rd, Ra: ra, Imm: imm})
}

// Ori emits rd = ra | imm.
func (b *Builder) Ori(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpOri, Rd: rd, Ra: ra, Imm: imm})
}

// Xori emits rd = ra ^ imm.
func (b *Builder) Xori(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpXori, Rd: rd, Ra: ra, Imm: imm})
}

// Shli emits rd = ra << imm.
func (b *Builder) Shli(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpShli, Rd: rd, Ra: ra, Imm: imm})
}

// Shri emits rd = ra >> imm (logical).
func (b *Builder) Shri(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpShri, Rd: rd, Ra: ra, Imm: imm})
}

// Muli emits rd = ra * imm.
func (b *Builder) Muli(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpMuli, Rd: rd, Ra: ra, Imm: imm})
}

// Slti emits rd = (ra < imm) signed.
func (b *Builder) Slti(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpSlti, Rd: rd, Ra: ra, Imm: imm})
}

// Lui emits rd = imm << 16.
func (b *Builder) Lui(rd Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpLui, Rd: rd, Imm: imm})
}

// Li emits rd = imm (a pseudo-instruction; an Addi from the zero register).
func (b *Builder) Li(rd Reg, imm int32) *Builder {
	return b.Addi(rd, Zero, imm)
}

// LiLabel emits rd = address-of(label) as a pseudo-instruction; resolved
// at Build time to the absolute code address of the label.
func (b *Builder) LiLabel(rd Reg, label string) *Builder {
	b.absFixups[len(b.code)] = label
	return b.emit(Instruction{Op: OpAddi, Rd: rd, Ra: Zero})
}

// Mov emits rd = ra.
func (b *Builder) Mov(rd, ra Reg) *Builder { return b.Addi(rd, ra, 0) }

// --- memory ---

// Ld emits rd = mem[ra + imm].
func (b *Builder) Ld(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpLd, Rd: rd, Ra: ra, Imm: imm})
}

// St emits mem[ra + imm] = rb.
func (b *Builder) St(rb, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpSt, Rb: rb, Ra: ra, Imm: imm})
}

// --- control flow (label-targeted) ---

func (b *Builder) branch(op Op, ra, rb Reg, label string) *Builder {
	b.fixups[len(b.code)] = label
	return b.emit(Instruction{Op: op, Ra: ra, Rb: rb})
}

// Beq emits a branch to label when ra == rb.
func (b *Builder) Beq(ra, rb Reg, label string) *Builder {
	return b.branch(OpBeq, ra, rb, label)
}

// Bne emits a branch to label when ra != rb.
func (b *Builder) Bne(ra, rb Reg, label string) *Builder {
	return b.branch(OpBne, ra, rb, label)
}

// Blt emits a branch to label when ra < rb (signed).
func (b *Builder) Blt(ra, rb Reg, label string) *Builder {
	return b.branch(OpBlt, ra, rb, label)
}

// Bge emits a branch to label when ra >= rb (signed).
func (b *Builder) Bge(ra, rb Reg, label string) *Builder {
	return b.branch(OpBge, ra, rb, label)
}

// Jump emits an unconditional jump to label (JAL discarding the link).
func (b *Builder) Jump(label string) *Builder {
	b.fixups[len(b.code)] = label
	return b.emit(Instruction{Op: OpJal, Rd: Zero})
}

// Call emits a JAL to label, writing the return address to RA.
func (b *Builder) Call(label string) *Builder {
	b.fixups[len(b.code)] = label
	return b.emit(Instruction{Op: OpJal, Rd: RA})
}

// Ret emits a return through RA.
func (b *Builder) Ret() *Builder {
	return b.emit(Instruction{Op: OpJalr, Rd: Zero, Ra: RA})
}

// Jalr emits an indirect jump to ra + imm, linking into rd.
func (b *Builder) Jalr(rd, ra Reg, imm int32) *Builder {
	return b.emit(Instruction{Op: OpJalr, Rd: rd, Ra: ra, Imm: imm})
}

// Build resolves all label references and returns the finished Program.
// It fails if any label is undefined or redefined, or if a displacement
// overflows the immediate field.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", label)
		}
		disp := target - int64(idx) - 1
		if disp > 1<<30 || disp < -(1<<30) {
			return nil, fmt.Errorf("isa: displacement to %q overflows", label)
		}
		b.code[idx].Imm = int32(disp)
	}
	for idx, label := range b.absFixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", label)
		}
		b.code[idx].Imm = int32(target)
	}
	data := make(map[int64]int64, len(b.data))
	for k, v := range b.data {
		data[k] = v
	}
	code := make([]Instruction, len(b.code))
	copy(code, b.code)
	return &Program{Name: b.name, Code: code, Data: data}, nil
}

// MustBuild is Build that panics on error; intended for statically known
// correct programs such as the built-in workloads.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program's code with addresses and label names,
// one instruction per line. Useful for debugging workload generators.
func Disassemble(p *Program, labels map[string]int64) string {
	// Invert the label map for annotation.
	byAddr := make(map[int64][]string)
	for name, addr := range labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}
	out := ""
	for i, in := range p.Code {
		for _, name := range byAddr[int64(i)] {
			out += fmt.Sprintf("%s:\n", name)
		}
		out += fmt.Sprintf("  %4d: %s\n", i, in)
	}
	return out
}

// Labels returns a copy of the builder's label table; valid before or
// after Build.
func (b *Builder) Labels() map[string]int64 {
	m := make(map[string]int64, len(b.labels))
	for k, v := range b.labels {
		m[k] = v
	}
	return m
}
