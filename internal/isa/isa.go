// Package isa defines the instruction set of the simulated machine.
//
// The machine is a small word-addressed RISC with 32 general-purpose
// 64-bit integer registers (R0 hardwired to zero), a program counter in
// instruction words, and a flat word-addressed data memory. The set is
// deliberately minimal — ALU operations, loads and stores, conditional
// branches, direct and indirect jumps — because the experiments in this
// repository depend only on control-flow behaviour, not on ISA richness.
//
// Instructions exist in two forms: the decoded Instruction struct used
// throughout the simulator, and a fixed 64-bit binary encoding
// (Encode/Decode) so that programs have a definite machine representation
// and an instruction-cache footprint.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers. Register 0 reads as
// zero and ignores writes, as in MIPS and RISC-V.
const NumRegs = 32

// Reg identifies a general-purpose register.
type Reg uint8

// Conventional register roles used by the assembler and workloads.
const (
	Zero Reg = 0  // hardwired zero
	RA   Reg = 31 // return address (written by JAL/JALR)
	SP   Reg = 30 // stack pointer by convention
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The comment gives the semantics; rd/ra/rb are register fields
// and imm is the signed immediate.
const (
	OpNop  Op = iota // no operation
	OpHalt           // stop the machine

	// ALU register-register: rd = ra <op> rb.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl  // rd = ra << (rb & 63)
	OpShr  // rd = uint64(ra) >> (rb & 63)
	OpMul  // rd = ra * rb
	OpDiv  // rd = ra / rb, 0 if rb == 0
	OpRem  // rd = ra % rb, 0 if rb == 0
	OpSlt  // rd = 1 if ra < rb (signed) else 0
	OpSltu // rd = 1 if uint64(ra) < uint64(rb) else 0

	// ALU register-immediate: rd = ra <op> imm.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli // rd = ra << (imm & 63)
	OpShri // rd = uint64(ra) >> (imm & 63)
	OpMuli
	OpSlti // rd = 1 if ra < imm (signed) else 0
	OpLui  // rd = imm << 16

	// Memory: word addressed; effective address = ra + imm.
	OpLd // rd = mem[ra+imm]
	OpSt // mem[ra+imm] = rb

	// Control flow. Branch targets are PC-relative in instruction
	// words: next PC = pc + 1 + imm when taken.
	OpBeq // taken if ra == rb
	OpBne // taken if ra != rb
	OpBlt // taken if ra < rb (signed)
	OpBge // taken if ra >= rb (signed)

	OpJal  // rd = pc + 1; pc = pc + 1 + imm (direct call/jump)
	OpJalr // rd = pc + 1; pc = ra + imm (indirect jump/return)

	numOps // sentinel; keep last
)

var opNames = [numOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpShli: "shli", OpShri: "shri", OpMuli: "muli", OpSlti: "slti",
	OpLui: "lui",
	OpLd:  "ld", OpSt: "st",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJal: "jal", OpJalr: "jalr",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool {
	return o < numOps
}

// IsCondBranch reports whether o is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsControl reports whether o redirects control flow (branches and jumps).
func (o Op) IsControl() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJal, OpJalr:
		return true
	}
	return false
}

// IsMem reports whether o accesses data memory.
func (o Op) IsMem() bool {
	return o == OpLd || o == OpSt
}

// Instruction is the decoded form used by the emulator and pipeline.
type Instruction struct {
	Op  Op
	Rd  Reg   // destination register
	Ra  Reg   // first source register
	Rb  Reg   // second source register
	Imm int32 // signed immediate / branch displacement
}

// String renders the instruction in assembler syntax.
func (in Instruction) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return in.Op.String()
	case in.Op == OpJal:
		return fmt.Sprintf("%s r%d, %+d", in.Op, in.Rd, in.Imm)
	case in.Op == OpJalr:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.Ra, in.Rb, in.Imm)
	case in.Op == OpLd:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Rd, in.Imm, in.Ra)
	case in.Op == OpSt:
		return fmt.Sprintf("st r%d, %d(r%d)", in.Rb, in.Imm, in.Ra)
	case in.Op == OpLui:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	case in.Op >= OpAddi && in.Op <= OpSlti:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
	}
}

// Binary encoding layout (64 bits):
//
//	bits 0..7    opcode
//	bits 8..12   rd
//	bits 13..17  ra
//	bits 18..22  rb
//	bits 32..63  imm (signed 32-bit)
//
// Bits 23..31 are reserved and must be zero.

// Encode packs the instruction into its 64-bit binary form.
func Encode(in Instruction) uint64 {
	return uint64(in.Op) |
		uint64(in.Rd&31)<<8 |
		uint64(in.Ra&31)<<13 |
		uint64(in.Rb&31)<<18 |
		uint64(uint32(in.Imm))<<32
}

// Decode unpacks a 64-bit word into an Instruction. It returns an error
// for undefined opcodes or nonzero reserved bits.
func Decode(w uint64) (Instruction, error) {
	op := Op(w & 0xff)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d", uint8(op))
	}
	if w>>23&0x1ff != 0 {
		return Instruction{}, fmt.Errorf("isa: reserved bits set in %#x", w)
	}
	return Instruction{
		Op:  op,
		Rd:  Reg(w >> 8 & 31),
		Ra:  Reg(w >> 13 & 31),
		Rb:  Reg(w >> 18 & 31),
		Imm: int32(uint32(w >> 32)),
	}, nil
}

// Program is a fully assembled program: code, initial data image and
// entry point. Programs are immutable once built.
type Program struct {
	Name  string
	Code  []Instruction
	Data  map[int64]int64 // initial data memory image, word addressed
	Entry int64           // starting PC
}

// EncodeCode returns the binary image of the program's code segment.
func (p *Program) EncodeCode() []uint64 {
	out := make([]uint64, len(p.Code))
	for i, in := range p.Code {
		out[i] = Encode(in)
	}
	return out
}
