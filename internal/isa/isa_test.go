package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int32) bool {
		in := Instruction{
			Op:  Op(op % uint8(numOps)),
			Rd:  Reg(rd % NumRegs),
			Ra:  Reg(ra % NumRegs),
			Rb:  Reg(rb % NumRegs),
			Imm: imm,
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint64(numOps)); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
	if _, err := Decode(0xff); err == nil {
		t.Error("Decode accepted opcode 255")
	}
}

func TestDecodeRejectsReservedBits(t *testing.T) {
	w := Encode(Instruction{Op: OpAdd}) | 1<<25
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted nonzero reserved bits")
	}
}

func TestOpClassification(t *testing.T) {
	cond := []Op{OpBeq, OpBne, OpBlt, OpBge}
	for _, op := range cond {
		if !op.IsCondBranch() || !op.IsControl() {
			t.Errorf("%s should be a conditional branch and control", op)
		}
	}
	for _, op := range []Op{OpJal, OpJalr} {
		if op.IsCondBranch() {
			t.Errorf("%s should not be a conditional branch", op)
		}
		if !op.IsControl() {
			t.Errorf("%s should be control", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLd, OpSt, OpNop, OpHalt} {
		if op.IsCondBranch() || op.IsControl() {
			t.Errorf("%s should not be control flow", op)
		}
	}
	if !OpLd.IsMem() || !OpSt.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid opcode String = %q", got)
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpNop}, "nop"},
		{Instruction{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instruction{Op: OpAddi, Rd: 1, Ra: 2, Imm: -5}, "addi r1, r2, -5"},
		{Instruction{Op: OpLd, Rd: 4, Ra: 5, Imm: 8}, "ld r4, 8(r5)"},
		{Instruction{Op: OpSt, Rb: 4, Ra: 5, Imm: 8}, "st r4, 8(r5)"},
		{Instruction{Op: OpBeq, Ra: 1, Rb: 2, Imm: -3}, "beq r1, r2, -3"},
		{Instruction{Op: OpJal, Rd: 31, Imm: 10}, "jal r31, +10"},
		{Instruction{Op: OpLui, Rd: 7, Imm: 3}, "lui r7, 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 0)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Li(2, 10)
	b.Blt(1, 2, "loop") // backward
	b.Beq(1, 2, "done") // forward
	b.Jump("loop")
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Branch at index 3 targets index 1: disp = 1-3-1 = -3.
	if p.Code[3].Imm != -3 {
		t.Errorf("backward displacement = %d, want -3", p.Code[3].Imm)
	}
	// Branch at index 4 targets index 6: disp = 6-4-1 = 1.
	if p.Code[4].Imm != 1 {
		t.Errorf("forward displacement = %d, want 1", p.Code[4].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted undefined label")
	}
}

func TestBuilderRedefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("a").Nop().Label("a")
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted redefined label")
	}
}

func TestBuilderLiLabel(t *testing.T) {
	b := NewBuilder("t")
	b.LiLabel(1, "fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 2 {
		t.Errorf("LiLabel imm = %d, want 2", p.Code[0].Imm)
	}
}

func TestBuilderDataWords(t *testing.T) {
	b := NewBuilder("t")
	b.Words(100, 7, 8, 9).Word(200, -1)
	b.Halt()
	p := b.MustBuild()
	for addr, want := range map[int64]int64{100: 7, 101: 8, 102: 9, 200: -1} {
		if got := p.Data[addr]; got != want {
			t.Errorf("data[%d] = %d, want %d", addr, got, want)
		}
	}
}

func TestBuildIsolation(t *testing.T) {
	// Mutating the builder after Build must not affect the program.
	b := NewBuilder("t")
	b.Nop()
	p := b.MustBuild()
	b.Halt()
	if len(p.Code) != 1 {
		t.Errorf("program code grew after Build: %d", len(p.Code))
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on undefined label")
		}
	}()
	NewBuilder("t").Jump("missing").MustBuild()
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder("t")
	b.Label("start").Li(1, 5).Jump("start")
	p := b.MustBuild()
	text := Disassemble(p, b.Labels())
	if !strings.Contains(text, "start:") || !strings.Contains(text, "addi r1, r0, 5") {
		t.Errorf("disassembly missing expected content:\n%s", text)
	}
}

func TestEncodeCode(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 42).Halt()
	p := b.MustBuild()
	words := p.EncodeCode()
	if len(words) != 2 {
		t.Fatalf("EncodeCode length = %d", len(words))
	}
	in, err := Decode(words[0])
	if err != nil || in.Imm != 42 {
		t.Errorf("round trip through EncodeCode failed: %v %v", in, err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	in := Instruction{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3, Imm: 77}
	for i := 0; i < b.N; i++ {
		w := Encode(in)
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}
