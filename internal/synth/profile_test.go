package synth

import (
	"strings"
	"testing"
)

// validProfile is a baseline vector exercising every class.
func validProfile() Profile {
	return Profile{
		Seed: 42, Sites: 64, Density: 0.15, Taken: 0.6, Spread: 0.3,
		H2P: 0.2, GlobalFrac: 0.2, GlobalDepth: 4,
		LocalFrac: 0.2, LocalPeriod: 8,
		ClusterEvery: 64, ClusterBurst: 8,
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		want string // substring of the error, "" for valid
	}{
		{"baseline", func(p *Profile) {}, ""},
		{"minimal", func(p *Profile) {
			*p = Profile{Sites: 1, Density: 0.01, Taken: 0.5}
		}, ""},
		{"sites zero", func(p *Profile) { p.Sites = 0 }, "sites"},
		{"sites over", func(p *Profile) { p.Sites = 257 }, "sites"},
		{"density zero", func(p *Profile) { p.Density = 0 }, "density"},
		{"density over", func(p *Profile) { p.Density = 0.41 }, "density"},
		{"taken low", func(p *Profile) { p.Taken = 0.005 }, "taken"},
		{"taken high", func(p *Profile) { p.Taken = 1 }, "taken"},
		{"spread negative", func(p *Profile) { p.Spread = -0.1 }, "spread"},
		{"spread over", func(p *Profile) { p.Spread = 2.1 }, "spread"},
		{"h2p negative", func(p *Profile) { p.H2P = -0.1 }, "h2p"},
		{"fractions sum", func(p *Profile) { p.H2P, p.GlobalFrac, p.LocalFrac = 0.5, 0.4, 0.3 }, "sum"},
		{"depth without global", func(p *Profile) { p.GlobalFrac = 0 }, "global_depth"},
		{"depth zero with global", func(p *Profile) { p.GlobalDepth = 0 }, "global_depth"},
		{"depth over", func(p *Profile) { p.GlobalDepth = 17 }, "global_depth"},
		{"period not pow2", func(p *Profile) { p.LocalPeriod = 6 }, "local_period"},
		{"period without local", func(p *Profile) { p.LocalFrac = 0 }, "local_period"},
		{"cluster not pow2", func(p *Profile) { p.ClusterEvery = 48 }, "cluster_every"},
		{"burst over every", func(p *Profile) { p.ClusterBurst = 65 }, "cluster_burst"},
		{"burst without every", func(p *Profile) { p.ClusterEvery = 0 }, "cluster_burst"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validProfile()
			c.mut(&p)
			err := p.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile([]byte(`{"seed": 7, "sites": 32, "density": 0.1, "taken": 0.8}`))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Seed != 7 || p.Sites != 32 {
		t.Fatalf("ParseProfile = %+v", p)
	}
	if _, err := ParseProfile([]byte(`{"sites": 32, "density": 0.1, "taken": 0.8, "bogus": 1}`)); err == nil {
		t.Fatal("ParseProfile accepted an unknown field")
	}
	if _, err := ParseProfile([]byte(`{"sites": 0, "density": 0.1, "taken": 0.8}`)); err == nil {
		t.Fatal("ParseProfile accepted an invalid vector")
	}
	if _, err := ParseProfile([]byte(`not json`)); err == nil {
		t.Fatal("ParseProfile accepted malformed JSON")
	}
}

func TestWorkloadNameContentAddressed(t *testing.T) {
	a, b := validProfile(), validProfile()
	if a.WorkloadName() != b.WorkloadName() {
		t.Fatal("equal profiles hash to different names")
	}
	b.Seed++
	if a.WorkloadName() == b.WorkloadName() {
		t.Fatal("different profiles hash to the same name")
	}
	if !strings.HasPrefix(a.WorkloadName(), "synth:") {
		t.Fatalf("WorkloadName %q lacks the synth: namespace", a.WorkloadName())
	}
}
