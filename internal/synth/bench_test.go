package synth

import "testing"

// BenchmarkSynthBuild times generating the largest paper-fit program
// (96 sites with global, hard, and biased classes) — the cost paid once
// per (workload, iters) by the experiment layer's program cache.
func BenchmarkSynthBuild(b *testing.B) {
	p := PaperTargets()[1].Profile // gcc stand-in: 96 sites
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustBuild(p, 1<<30)
	}
}
