package synth

import (
	"specctrl/internal/rng"
)

// spaceDim is one latin-hypercube axis: the sampler stratifies [0,1)
// into n bins per axis, permutes bin assignment independently per axis,
// and maps each unit sample through the axis's range.
type spaceDim struct{ lo, hi float64 }

func (d spaceDim) at(u float64) float64 { return d.lo + u*(d.hi-d.lo) }

// Space samples n profiles by latin hypercube over the characterization
// vector, deterministically from seed: every axis is stratified, so
// even small n covers the extremes of density, bias, correlation depth,
// hard fraction, and clustering. Density is capped per sample at what
// the drawn site mix can generate (probed with Build), so every
// returned profile is feasible by construction. Same (seed, n) → same
// profiles, which is what lets sweepspace grids cache and shard.
func Space(seed uint64, n int) []Profile {
	if n <= 0 {
		return nil
	}
	g := rng.New(seed ^ 0x5face_0f_c0de)
	dims := []spaceDim{
		{16, 128},    // sites
		{0.04, 0.30}, // density (pre-feasibility cap)
		{0.25, 0.95}, // taken
		{0, 0.60},    // spread
		{0, 0.30},    // h2p fraction
		{0, 0.40},    // global fraction
		{2, 14.999},  // global depth
		{0, 0.30},    // local fraction
		{1, 6.999},   // log2 local period
		{0, 6.999},   // clustering: stratum 0 = none, else log2(every)-4
		{0.05, 0.5},  // burst fraction of the window
	}
	// One stratum permutation per axis.
	perms := make([][]int, len(dims))
	for d := range dims {
		perms[d] = g.Perm(n)
	}
	at := func(d, j int) float64 {
		u := (float64(perms[d][j]) + g.Float64()) / float64(n)
		return dims[d].at(u)
	}

	out := make([]Profile, 0, n)
	for j := 0; j < n; j++ {
		p := Profile{
			Seed:    g.Uint64(),
			Sites:   int(at(0, j)),
			Density: at(1, j),
			Taken:   at(2, j),
			Spread:  at(3, j),
			H2P:     at(4, j),
		}
		p.GlobalFrac = at(5, j)
		p.GlobalDepth = int(at(6, j))
		p.LocalFrac = at(7, j)
		p.LocalPeriod = 1 << int(at(8, j))
		if cl := at(9, j); cl >= 1 {
			p.ClusterEvery = 1 << (4 + int(cl-1))
			burst := int(at(10, j)*float64(p.ClusterEvery) + 0.5)
			if burst < 1 {
				burst = 1
			}
			p.ClusterBurst = burst
		} else {
			_ = at(10, j) // consume the stream either way: keeps draws aligned
		}
		if p.GlobalFrac < 0.02 {
			p.GlobalFrac, p.GlobalDepth = 0, 0
		}
		if p.LocalFrac < 0.02 {
			p.LocalFrac, p.LocalPeriod = 0, 0
		}
		// Feasibility: walk density down until the site mix can pad to
		// it. The walk is deterministic, so the sampled space is too.
		for {
			if _, err := Build(p, 1); err == nil {
				break
			}
			p.Density *= 0.85
			if p.Density < 0.01 {
				p.Density = 0.01
				break
			}
		}
		out = append(out, p)
	}
	return out
}
