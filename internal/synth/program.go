package synth

import (
	"fmt"

	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// Data-image layout of generated programs. Addresses are words.
const (
	// biasTableAddr holds biasTableLen uniform 60-bit words; biased and
	// hard sites index it with per-pack odd strides and read disjoint
	// 15-bit windows, so every site sees an independent pseudo-random
	// stream with a period far beyond any predictor's reach.
	biasTableAddr = 0x1000
	biasTableLen  = 4096
	// stateAddr holds one counter word per local site (indexed by
	// absolute site number), pre-phased in the data image.
	stateAddr = 0x4000

	// histMask bounds the software global-history register; 16 bits
	// covers the maximum GlobalDepth.
	histMask = 0xFFFF
	// packSize is how many bias/hard sites share one table-index
	// computation (they load adjacent table quarters).
	packSize = 4
	// windowShift/windowMask select the 15-bit comparison window at the
	// top of a table word, mask-free (the word is < 1<<60).
	windowShift = 45
	windowMask  = 1<<15 - 1
)

// siteClass enumerates the generator's branch-site behaviors.
type siteClass int

const (
	classProducer siteClass = iota // fresh pseudo-random coin, feeds history
	classConsumer                  // copies history bit from GlobalDepth back
	classLocal                     // periodic per-site pattern
	classHard                      // coin flip (burst-gated when clustering)
	classBiased                    // threshold compare against table window
	classAlways                    // constant taken, 1 instruction
	classNever                     // constant not-taken
)

// site is one planned branch site.
type site struct {
	class  siteClass
	prob   float64 // taken probability (analytic, for padding math)
	thresh int32   // classBiased/classHard: window threshold
	inv    int32   // classConsumer: outcome inversion bit
}

// plan converts a Profile into the per-site layout: global block first
// (producer then consumers, contiguous so consumer history distances
// are exact), then local, hard, and biased sites. Biased draws whose
// clamped probability is extreme degrade to constant branches.
func plan(p Profile) []site {
	g := rng.New(p.Seed ^ 0x5e_b1a5_ed)
	frac := func(f float64) int { return int(f*float64(p.Sites) + 0.5) }
	nG, nL, nH := frac(p.GlobalFrac), frac(p.LocalFrac), frac(p.H2P)
	if nG > p.Sites {
		nG = p.Sites
	}
	if nG+nL > p.Sites {
		nL = p.Sites - nG
	}
	if nG+nL+nH > p.Sites {
		nH = p.Sites - nG - nL
	}
	nB := p.Sites - nG - nL - nH

	hardProb := 0.5
	if p.ClusterEvery > 0 {
		burst := float64(p.ClusterBurst) / float64(p.ClusterEvery)
		hardProb = burst*0.5 + (1 - burst) // forced taken outside bursts
	}

	sites := make([]site, 0, p.Sites)
	for i := 0; i < nG; i++ {
		if i == 0 {
			sites = append(sites, site{class: classProducer, prob: 0.5})
			continue
		}
		sites = append(sites, site{class: classConsumer, prob: 0.5, inv: int32(i & 1)})
	}
	for i := 0; i < nL; i++ {
		sites = append(sites, site{class: classLocal,
			prob: float64(p.LocalPeriod-1) / float64(p.LocalPeriod)})
	}
	for i := 0; i < nH; i++ {
		sites = append(sites, site{class: classHard, prob: hardProb,
			thresh: windowMask/2 + 1})
	}
	for i := 0; i < nB; i++ {
		// Bimodal bias draw: a site leans taken with probability Taken,
		// and strays from its deterministic extreme by a uniform offset
		// scaled by Spread (see Profile.Spread).
		offset := p.Spread / 2 * g.Float64()
		prob := offset
		if g.Float64() < p.Taken {
			prob = 1 - offset
		}
		if prob < 0.01 {
			prob = 0.01
		}
		if prob > 0.99 {
			prob = 0.99
		}
		switch {
		case prob >= 0.97:
			sites = append(sites, site{class: classAlways, prob: 1})
		case prob <= 0.03:
			sites = append(sites, site{class: classNever, prob: 0})
		default:
			sites = append(sites, site{class: classBiased, prob: prob,
				thresh: int32(prob * float64(windowMask+1))})
		}
	}
	return sites
}

// Build generates the profile's program with the given outer-loop trip
// count (workload.Workload.Build semantics: iters only sets the loop
// limit; code and data size are O(Sites)). It returns an error when the
// profile is invalid or the target Density exceeds what the site mix
// can reach.
func Build(p Profile, iters int) (*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if iters < 1 {
		return nil, fmt.Errorf("synth: build: iters %d < 1", iters)
	}
	sites := plan(p)

	b := isa.NewBuilder(p.WorkloadName())
	const (
		rIter  = isa.Reg(1)  // loop iteration counter
		rLim   = isa.Reg(2)  // iteration limit
		rHist  = isa.Reg(3)  // software global-history register
		rBurst = isa.Reg(4)  // 1 inside a hard-site burst window
		rV     = isa.Reg(5)  // site outcome
		rT     = isa.Reg(6)  // scratch
		rW     = isa.Reg(7)  // loaded table word
		rA     = isa.Reg(8)  // table address
		rTable = isa.Reg(9)  // bias-table base
		rState = isa.Reg(10) // local-state base
		rOne   = isa.Reg(11) // constant 1
		rNB    = isa.Reg(12) // 1 - rBurst (OR-mask forcing hard sites taken)
		rPad   = isa.Reg(13) // filler accumulator
	)

	// Data image: the shared pseudo-random table and local-site phases.
	g := rng.New(p.Seed ^ 0xda7a_b1e5)
	for i := int64(0); i < biasTableLen; i++ {
		b.Word(biasTableAddr+i, int64(g.Uint64()>>4))
	}
	for idx, s := range sites {
		if s.class == classLocal {
			b.Word(stateAddr+int64(idx), int64((idx*7)&(p.LocalPeriod-1)))
		}
	}

	b.Li(rTable, biasTableAddr)
	b.Li(rState, stateAddr)
	b.Li(rOne, 1)
	b.Lui(rLim, int32(iters>>16)).Ori(rLim, rLim, int32(iters&0xFFFF))
	if p.ClusterEvery == 0 {
		// No clustering: hard sites flip coins every iteration.
		b.Li(rBurst, 1)
		b.Li(rNB, 0)
	}

	b.Label("loop")
	// expect accumulates the expected committed instructions per
	// iteration (branch fallthrough filler commits with prob 1-p).
	expect := 0.0
	if p.ClusterEvery > 0 {
		b.Andi(rT, rIter, int32(p.ClusterEvery-1))
		b.Slti(rBurst, rT, int32(p.ClusterBurst))
		b.Xori(rNB, rBurst, 1)
		expect += 3
	}

	// emitSite wraps one site body: after the caller computes rV, emit
	// the branch plus its 1-instruction fallthrough filler.
	emitSite := func(idx int, s site, body func()) {
		pc0 := b.PC()
		body()
		skip := fmt.Sprintf("s%d", idx)
		b.Bne(rV, isa.Zero, skip)
		b.Addi(rPad, rPad, 1)
		b.Label(skip)
		expect += float64(b.PC()-pc0-1) + (1 - s.prob)
	}

	packIdx := 0 // position within the current bias/hard pack
	for idx, s := range sites {
		switch s.class {
		case classProducer:
			emitSite(idx, s, func() {
				// Coin from a multiplicative hash of the iteration count.
				b.Muli(rT, rIter, 0x5bd1e995)
				b.Shri(rT, rT, 16)
				b.Andi(rV, rT, 1)
				b.Shli(rHist, rHist, 1)
				b.Add(rHist, rHist, rV)
				b.Andi(rHist, rHist, histMask)
			})
		case classConsumer:
			s := s
			emitSite(idx, s, func() {
				b.Shri(rT, rHist, int32(p.GlobalDepth-1))
				b.Andi(rT, rT, 1)
				b.Xori(rV, rT, s.inv)
				b.Shli(rHist, rHist, 1)
				b.Add(rHist, rHist, rV)
				b.Andi(rHist, rHist, histMask)
			})
		case classLocal:
			off := int32(idx)
			emitSite(idx, s, func() {
				b.Ld(rT, rState, off)
				b.Addi(rT, rT, 1)
				b.Andi(rT, rT, int32(p.LocalPeriod-1))
				b.St(rT, rState, off)
				b.Slti(rV, rT, 1)
				b.Xori(rV, rV, 1) // taken unless the counter wrapped to 0
			})
		case classHard, classBiased:
			if packIdx == 0 {
				// New pack: one table index shared by up to packSize
				// sites, each loading its own quarter of the table.
				// Odd per-pack strides decorrelate the packs' walks.
				stride := int32(2*idx+0x79B1) | 1
				b.Muli(rT, rIter, stride)
				b.Andi(rT, rT, biasTableLen/packSize-1)
				b.Add(rA, rTable, rT)
				expect += 3
			}
			wordOff := int32(packIdx * (biasTableLen / packSize))
			hard := s.class == classHard
			s := s
			emitSite(idx, s, func() {
				b.Ld(rW, rA, wordOff)
				b.Shri(rT, rW, windowShift)
				b.Slti(rV, rT, s.thresh)
				if hard && p.ClusterEvery > 0 {
					b.Or(rV, rV, rNB)
				}
			})
			packIdx = (packIdx + 1) % packSize
		case classAlways:
			skip := fmt.Sprintf("s%d", idx)
			b.Bne(rOne, isa.Zero, skip)
			b.Addi(rPad, rPad, 1)
			b.Label(skip)
			expect += 1
		case classNever:
			skip := fmt.Sprintf("s%d", idx)
			b.Beq(rOne, isa.Zero, skip) // 1 == 0: never taken
			b.Addi(rPad, rPad, 1)
			b.Label(skip)
			expect += 2
		}
	}

	// Padding: land the expected committed instructions per iteration on
	// the Density target. The loop tail (Addi+Blt) always commits.
	target := float64(len(sites)+1) / p.Density
	padding := int(target - expect - 2 + 0.5)
	if padding < 0 {
		return nil, fmt.Errorf("synth: profile density %.3f infeasible: site mix needs %.1f committed instructions per iteration for %d branches (max density %.3f)",
			p.Density, expect+2, len(sites)+1, float64(len(sites)+1)/(expect+2))
	}
	for i := 0; i < padding; i++ {
		b.Addi(rPad, rPad, 1)
	}
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, "loop")
	b.Halt()

	return b.Build()
}

// MustBuild is Build for callers whose profile is already validated
// (Register's feasibility probe); it panics on error.
func MustBuild(p Profile, iters int) *isa.Program {
	prog, err := Build(p, iters)
	if err != nil {
		panic(err.Error())
	}
	return prog
}
