package synth

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"specctrl/internal/workload"
)

// Profile is the characterization vector the generator realizes. The
// axes follow the workload-characterization literature: how often the
// program branches, how its branch biases are distributed, how much of
// its predictability lives in global vs. per-branch history, how large
// its hard-to-predict tail is, and whether mispredictions cluster in
// bursts or spread uniformly. Equal Profiles generate byte-identical
// programs; the canonical JSON encoding of the struct is hashed into
// the workload name, so a Profile is content-addressed end to end.
type Profile struct {
	// Seed drives every data table and per-site parameter draw.
	Seed uint64 `json:"seed"`
	// Sites is the number of conditional branch sites in the loop body
	// (1..256). The loop-closing branch is emitted on top.
	Sites int `json:"sites"`
	// Density is the target committed conditional-branch density
	// (branches / committed instructions), in (0, 0.40]. The generator
	// pads the loop body with filler to land on it and errors if the
	// site mix cannot reach it.
	Density float64 `json:"density"`
	// Taken is the probability a biased site leans taken, in
	// [0.01, 0.99] — effectively the biased population's taken rate
	// (real bias distributions are bimodal: most branches are almost
	// always or almost never taken).
	Taken float64 `json:"taken"`
	// Spread scales how far biased sites stray from their deterministic
	// extreme, in [0, 2]: each site's taken probability is 1-d (taken-
	// leaning) or d (not-taken-leaning) with d uniform in
	// [0, Spread/2], clamped to [0.01, 0.99]. Sites landing above 0.97
	// (below 0.03) become deterministic always-taken (never-taken)
	// branches: near-zero misprediction, one or two instructions, the
	// predictable bulk real integer code is made of. Spread therefore
	// dials the residual data-dependent randomness — and with it the
	// biased population's misprediction rate — while Taken sets the
	// direction mix.
	Spread float64 `json:"spread"`
	// H2P is the fraction of sites that are pure coin flips
	// (hard-to-predict), in [0, 1].
	H2P float64 `json:"h2p"`
	// GlobalFrac is the fraction of sites correlated through global
	// history, in [0, 1]: one producer site flips a pseudo-random coin
	// and the consumers replay it from GlobalDepth branches back.
	GlobalFrac float64 `json:"global_frac"`
	// GlobalDepth is the history distance consumers read, 1..16.
	// Consumers whose distance exceeds the predictor's history length
	// (or reaches past the global block into the rest of the loop body)
	// degrade into hard branches — the depth-vs-capacity cliff.
	// Required nonzero when GlobalFrac > 0, else 0.
	GlobalDepth int `json:"global_depth"`
	// LocalFrac is the fraction of sites with periodic per-site
	// patterns, in [0, 1].
	LocalFrac float64 `json:"local_frac"`
	// LocalPeriod is the period of those patterns (taken except once
	// per period): a power of two in 2..256. Required nonzero when
	// LocalFrac > 0, else 0.
	LocalPeriod int `json:"local_period"`
	// ClusterEvery spaces the hard-site burst windows: every
	// ClusterEvery loop iterations (a power of two in 2..1048576), the
	// hard sites flip coins for ClusterBurst iterations and are forced
	// taken (fully predictable) the rest of the window, clustering the
	// mispredictions. 0 means no clustering: hard sites flip coins on
	// every iteration.
	ClusterEvery int `json:"cluster_every"`
	// ClusterBurst is the burst width in iterations, 1..ClusterEvery.
	// Required 0 when ClusterEvery is 0.
	ClusterBurst int `json:"cluster_burst"`
}

// powerOfTwo reports whether v is a positive power of two.
func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate checks every field range and cross-field constraint.
func (p Profile) Validate() error {
	if p.Sites < 1 || p.Sites > 256 {
		return fmt.Errorf("synth: profile sites %d out of range [1,256]", p.Sites)
	}
	if !(p.Density > 0 && p.Density <= 0.40) {
		return fmt.Errorf("synth: profile density %g out of range (0,0.40]", p.Density)
	}
	if p.Taken < 0.01 || p.Taken > 0.99 {
		return fmt.Errorf("synth: profile taken %g out of range [0.01,0.99]", p.Taken)
	}
	if p.Spread < 0 || p.Spread > 2 {
		return fmt.Errorf("synth: profile spread %g out of range [0,2]", p.Spread)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"h2p", p.H2P}, {"global_frac", p.GlobalFrac}, {"local_frac", p.LocalFrac}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("synth: profile %s %g out of range [0,1]", f.name, f.v)
		}
	}
	if s := p.H2P + p.GlobalFrac + p.LocalFrac; s > 1+1e-9 {
		return fmt.Errorf("synth: profile class fractions sum to %g > 1", s)
	}
	if p.GlobalFrac > 0 {
		if p.GlobalDepth < 1 || p.GlobalDepth > 16 {
			return fmt.Errorf("synth: profile global_depth %d out of range [1,16]", p.GlobalDepth)
		}
	} else if p.GlobalDepth != 0 {
		return fmt.Errorf("synth: profile global_depth %d set with global_frac 0", p.GlobalDepth)
	}
	if p.LocalFrac > 0 {
		if !powerOfTwo(p.LocalPeriod) || p.LocalPeriod < 2 || p.LocalPeriod > 256 {
			return fmt.Errorf("synth: profile local_period %d must be a power of two in [2,256]", p.LocalPeriod)
		}
	} else if p.LocalPeriod != 0 {
		return fmt.Errorf("synth: profile local_period %d set with local_frac 0", p.LocalPeriod)
	}
	if p.ClusterEvery != 0 {
		if !powerOfTwo(p.ClusterEvery) || p.ClusterEvery < 2 || p.ClusterEvery > 1<<20 {
			return fmt.Errorf("synth: profile cluster_every %d must be a power of two in [2,1048576]", p.ClusterEvery)
		}
		if p.ClusterBurst < 1 || p.ClusterBurst > p.ClusterEvery {
			return fmt.Errorf("synth: profile cluster_burst %d out of range [1,%d]", p.ClusterBurst, p.ClusterEvery)
		}
	} else if p.ClusterBurst != 0 {
		return fmt.Errorf("synth: profile cluster_burst %d set with cluster_every 0", p.ClusterBurst)
	}
	return nil
}

// Hash returns the profile's content hash: sha256 over the canonical
// JSON encoding (the struct's field order, emitted by encoding/json).
func (p Profile) Hash() string {
	data, err := json.Marshal(p)
	if err != nil {
		// Profile is a struct of integers and floats; Marshal cannot fail.
		panic("synth: marshal profile: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// WorkloadName returns the content-addressed registry name,
// "synth:" + the first 12 hex digits of Hash. The prefix keeps
// generated workloads in their own namespace (workload.SynthPrefix);
// the hash makes equal vectors collide on purpose — registering the
// same profile twice is idempotent by construction.
func (p Profile) WorkloadName() string {
	return workload.SynthPrefix + p.Hash()[:12]
}

// ParseProfile decodes a profile from its JSON encoding (e.g. a
// -synth-profile file), rejecting unknown fields and invalid vectors.
func ParseProfile(data []byte) (Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("synth: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}
