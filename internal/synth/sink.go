package synth

import (
	"fmt"
	"io"
	"sort"

	"specctrl/internal/obs"
)

// TraceSink is an obs.Tracer that records the committed conditional
// branch stream of a simulation into an SPBT branch-trace file —
// the producing end of the ingestion path (simtrace -record-branches
// writes one; FromTrace turns it back into a workload). Wrong-path
// events are dropped: the trace captures architectural outcomes, the
// program's ground truth, independent of any pipeline configuration.
//
// The sink buffers in memory and encodes on Close; it is not safe for
// concurrent use (the pipeline emits branch events from one goroutine).
type TraceSink struct {
	w      io.Writer
	pcs    []int64
	taken  []bool
	closed bool
}

// NewTraceSink returns a sink that writes the encoded trace to w on
// Close.
func NewTraceSink(w io.Writer) *TraceSink {
	return &TraceSink{w: w}
}

// Branch records one event (committed conditional branches only).
func (s *TraceSink) Branch(e obs.BranchEvent) {
	if e.WrongPath || s.closed {
		return
	}
	s.pcs = append(s.pcs, e.PC)
	s.taken = append(s.taken, e.Outcome)
}

// Close assigns site indices (PCs sorted ascending, the canonical
// order), encodes the trace, and writes it. A run with more sites or
// events than the format's bounds fails here rather than producing an
// unloadable file.
func (s *TraceSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if len(s.pcs) == 0 {
		return fmt.Errorf("synth: trace sink: no committed branch events recorded")
	}
	if len(s.pcs) > maxTraceEvents {
		return fmt.Errorf("synth: trace sink: %d events exceed the format bound %d (shorten the run)",
			len(s.pcs), maxTraceEvents)
	}
	uniq := map[int64]struct{}{}
	for _, pc := range s.pcs {
		uniq[pc] = struct{}{}
	}
	sites := make([]int64, 0, len(uniq))
	for pc := range uniq {
		sites = append(sites, pc)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	index := make(map[int64]uint32, len(sites))
	for i, pc := range sites {
		index[pc] = uint32(i)
	}
	t := &Trace{SitePCs: sites, Events: make([]uint32, len(s.pcs))}
	for i, pc := range s.pcs {
		e := index[pc] << 1
		if s.taken[i] {
			e |= 1
		}
		t.Events[i] = e
	}
	data, err := EncodeTrace(t)
	if err != nil {
		return fmt.Errorf("synth: trace sink: %w", err)
	}
	_, err = s.w.Write(data)
	return err
}
