package synth

import (
	"errors"
	"fmt"
	"sync"

	"specctrl/internal/isa"
	"specctrl/internal/workload"
)

// profiles is the name → Profile side table behind ProfileFor: the
// cluster coordinator uses it to ship the profiles backing a job's
// synth workload names to workers, which re-register them locally.
var (
	profilesMu sync.Mutex
	profiles   = map[string]Profile{}
)

// Register validates the profile, probes generator feasibility (a
// 1-iteration build), and publishes the generated workload through
// internal/workload under its content-addressed name. Registering the
// same profile twice is idempotent — the name is a hash of the vector,
// so a duplicate-name collision can only be the same generator output —
// which lets CLI flags, job submissions, and cluster workers all
// register freely.
func Register(p Profile) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if _, err := Build(p, 1); err != nil {
		return "", err
	}
	name := p.WorkloadName()
	w := workload.Workload{
		Name: name,
		Description: fmt.Sprintf("generated: %d sites, density %.2f, taken %.2f±%.2f, h2p %.2f, global %.2f@%d, local %.2f@%d",
			p.Sites, p.Density, p.Taken, p.Spread, p.H2P, p.GlobalFrac, p.GlobalDepth, p.LocalFrac, p.LocalPeriod),
		Build: func(iters int) *isa.Program { return MustBuild(p, iters) },
		BuildSeeded: func(seed uint64, iters int) *isa.Program {
			q := p
			q.Seed = seed
			return MustBuild(q, iters)
		},
	}
	if err := workload.Register(w); err != nil {
		var dup *workload.DuplicateError
		if !errors.As(err, &dup) {
			return "", err
		}
	}
	profilesMu.Lock()
	profiles[name] = p
	profilesMu.Unlock()
	return name, nil
}

// ProfileFor returns the profile registered under a synth workload
// name, if any (ingested-trace workloads have none).
func ProfileFor(name string) (Profile, bool) {
	profilesMu.Lock()
	defer profilesMu.Unlock()
	p, ok := profiles[name]
	return p, ok
}

// ProfilesFor returns the subset of names that are registered generated
// profiles, with their vectors, preserving order. Trace-backed and
// unknown names are skipped: they cannot be shipped as vectors.
func ProfilesFor(names []string) ([]string, []Profile) {
	var outNames []string
	var outProfs []Profile
	for _, n := range names {
		if p, ok := ProfileFor(n); ok {
			outNames = append(outNames, n)
			outProfs = append(outProfs, p)
		}
	}
	return outNames, outProfs
}
