package synth

// PaperMeasureCommitted is the architectural run length the calibration
// contract is stated at: long enough that warmup mispredictions stop
// moving the rates, short enough that the fit test stays cheap.
const PaperMeasureCommitted = 300_000

// PaperTarget pairs one paper benchmark with a checked-in generated
// profile and the Table 1 band both must land inside: the proof that
// the generator's vector space covers the paper's eight points. The
// bands bracket the repo's own measured Table 1 characteristics
// (branch density ±0.8 points, taken rate ±4 points, reference gshare
// misprediction ±max(2 points, 25% relative)); TestPaperFit re-measures
// the real benchmark and the generated stand-in against the same band,
// so a drift in either fails loudly.
type PaperTarget struct {
	// Workload is the paper benchmark's registry name.
	Workload string
	// Profile is the checked-in vector that re-hits the band.
	Profile Profile
	// Band is the Table 1 acceptance window.
	Band Band
}

// PaperTargets returns the eight calibrated (benchmark, profile, band)
// triples in Table 1 order. The profiles were fitted by scanning the
// vector space against Measure at PaperMeasureCommitted (the
// walkthrough in docs/WORKLOADS.md reproduces the procedure).
func PaperTargets() []PaperTarget {
	return []PaperTarget{
		{
			Workload: "compress",
			Profile:  Profile{Seed: 0xbeef, Sites: 64, Density: 0.195, Taken: 0.22, Spread: 0.15, H2P: 0.13},
			Band:     Band{0.187, 0.203, 0.264, 0.344, 0.104, 0.173},
		},
		{
			Workload: "gcc",
			Profile:  Profile{Seed: 0xabcd, Sites: 96, Density: 0.252, Taken: 0.50, H2P: 0.38},
			Band:     Band{0.244, 0.260, 0.471, 0.551, 0.156, 0.260},
		},
		{
			Workload: "perl",
			Profile:  Profile{Seed: 0x1234, Sites: 64, Density: 0.203, Taken: 0.27, Spread: 0.12, H2P: 0.06},
			Band:     Band{0.195, 0.211, 0.263, 0.343, 0.057, 0.097},
		},
		{
			Workload: "go",
			Profile:  Profile{Seed: 0xbeef, Sites: 96, Density: 0.231, Taken: 0.68, Spread: 0.20, H2P: 0.15},
			Band:     Band{0.223, 0.239, 0.625, 0.705, 0.171, 0.285},
		},
		{
			Workload: "m88ksim",
			Profile:  Profile{Seed: 0x1234, Sites: 96, Density: 0.252, Taken: 0.37, H2P: 0.01},
			Band:     Band{0.244, 0.260, 0.314, 0.394, 0, 0.030},
		},
		{
			Workload: "xlisp",
			Profile:  Profile{Seed: 0xabcd, Sites: 48, Density: 0.131, Taken: 0.47, H2P: 0.02},
			Band:     Band{0.123, 0.139, 0.429, 0.509, 0, 0.033},
		},
		{
			Workload: "vortex",
			Profile:  Profile{Seed: 0x1234, Sites: 80, Density: 0.229, Taken: 0.36, Spread: 0.10, H2P: 0.04},
			Band:     Band{0.221, 0.237, 0.300, 0.380, 0.042, 0.082},
		},
		{
			Workload: "ijpeg",
			Profile:  Profile{Seed: 0xabcd, Sites: 32, Density: 0.082, Taken: 0.85, H2P: 0.05},
			Band:     Band{0.074, 0.090, 0.813, 0.893, 0.025, 0.065},
		},
	}
}
