package synth

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzTraceDecode pins the decoder's contract on arbitrary input: it
// either fails with one of the three typed errors, or yields a valid
// trace whose canonical re-encoding round-trips and is never larger
// than the accepted input.
func FuzzTraceDecode(f *testing.F) {
	if valid, err := EncodeTrace(testTrace()); err == nil {
		f.Add(valid)
	}
	f.Add([]byte("SPBT\x01\x01\x40\x01\x01"))
	f.Add([]byte("SPBT\x01\x02\x40\x08\x02\x01\x03"))
	f.Add([]byte("SPBT\x02\x01\x40\x01\x01"))
	f.Add([]byte("SPBT\x01"))
	f.Add([]byte("NOPE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded trace fails Validate: %v", err)
		}
		enc, err := EncodeTrace(tr)
		if err != nil {
			t.Fatalf("re-encode of decoded trace: %v", err)
		}
		// Varint padding means accepted input may be non-minimal; the
		// canonical form is never longer and round-trips exactly.
		if len(enc) > len(data) {
			t.Fatalf("canonical encoding (%d bytes) larger than input (%d bytes)", len(enc), len(data))
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("decode of canonical encoding: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("canonical encoding does not round-trip")
		}
		enc2, err := EncodeTrace(tr2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding unstable: %v", err)
		}
	})
}
