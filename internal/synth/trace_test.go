package synth

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"specctrl/internal/emu"
	"specctrl/internal/isa"
	"specctrl/internal/obs"
	"specctrl/internal/workload"
)

func testTrace() *Trace {
	return &Trace{
		SitePCs: []int64{0x40, 0x48, 0x100},
		Events:  []uint32{0<<1 | 1, 1 << 1, 2<<1 | 1, 0 << 1, 2<<1 | 1},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := testTrace()
	data, err := EncodeTrace(in)
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	out, err := DecodeTrace(data)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	again, err := EncodeTrace(out)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encoding is not canonical: re-encode differs")
	}
}

func TestDecodeTraceErrors(t *testing.T) {
	valid, err := EncodeTrace(testTrace())
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short", []byte("SP"), ErrBadMagic},
		{"bad magic", []byte("NOPE\x01\x01\x40\x01\x01"), ErrBadMagic},
		{"future version", []byte("SPBT\x02\x01\x40\x01\x01"), ErrVersion},
		{"header only", []byte("SPBT\x01"), ErrCorrupt},
		{"zero sites", []byte("SPBT\x01\x00"), ErrCorrupt},
		{"site count over input", []byte("SPBT\x01\xff\x7f\x40"), ErrCorrupt},
		{"zero pc delta", []byte("SPBT\x01\x02\x40\x00\x01\x01"), ErrCorrupt},
		{"zero events", []byte("SPBT\x01\x01\x40\x00"), ErrCorrupt},
		{"event site out of range", []byte("SPBT\x01\x01\x40\x01\x04"), ErrCorrupt},
		{"truncated events", []byte("SPBT\x01\x01\x40\x02\x01"), ErrCorrupt},
		{"trailing bytes", append(append([]byte{}, valid...), 0), ErrCorrupt},
		{"truncated tail", valid[:len(valid)-1], ErrCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeTrace(c.data)
			if !errors.Is(err, c.want) {
				t.Fatalf("DecodeTrace = %v, want %v", err, c.want)
			}
		})
	}
}

// TestFromTraceReplay registers a trace workload and checks that the
// replay program's committed conditional branches reproduce the event
// stream exactly, wrapping around for repeated passes.
func TestFromTraceReplay(t *testing.T) {
	tr := testTrace()
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	name, err := FromTrace(data)
	if err != nil {
		t.Fatalf("FromTrace: %v", err)
	}
	if !strings.HasPrefix(name, workload.SynthPrefix+"t-") {
		t.Fatalf("FromTrace name %q lacks the synth:t- namespace", name)
	}
	// Idempotent: re-ingesting yields the same workload.
	name2, err := FromTrace(data)
	if err != nil || name2 != name {
		t.Fatalf("second FromTrace = %q, %v; want %q, nil", name2, err, name)
	}
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("workload %q: %v", name, err)
	}

	m := emu.NewMachine(w.Build(3)) // three passes over the stream
	var got []uint32
	for m.Executed < 1_000_000 {
		in, res, err := m.Step()
		if err != nil {
			if errors.Is(err, emu.ErrHalted) {
				break
			}
			t.Fatalf("step: %v", err)
		}
		// Site blocks branch with Bne; the interpreter loop's own
		// closing branches are Blt. Filter to the replayed sites.
		if in.Op != isa.OpBne {
			continue
		}
		e := uint32(0)
		if res.Taken {
			e = 1
		}
		got = append(got, e)
	}
	want := make([]uint32, 0, 3*len(tr.Events))
	for pass := 0; pass < 3; pass++ {
		for _, e := range tr.Events {
			want = append(want, e&1)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed taken stream %v, want %v", got, want)
	}
}

func TestTraceSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf)
	events := []obs.BranchEvent{
		{PC: 0x200, Outcome: true},
		{PC: 0x100, Outcome: false},
		{PC: 0x300, Outcome: true, WrongPath: true}, // dropped
		{PC: 0x200, Outcome: false},
	}
	for _, e := range events {
		s.Branch(e)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr, err := DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeTrace(sink output): %v", err)
	}
	wantPCs := []int64{0x100, 0x200}
	if !reflect.DeepEqual(tr.SitePCs, wantPCs) {
		t.Fatalf("SitePCs = %v, want %v", tr.SitePCs, wantPCs)
	}
	// 0x200 taken, 0x100 not-taken, 0x200 not-taken; wrong-path dropped.
	wantEvents := []uint32{1<<1 | 1, 0 << 1, 1 << 1}
	if !reflect.DeepEqual(tr.Events, wantEvents) {
		t.Fatalf("Events = %v, want %v", tr.Events, wantEvents)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestTraceSinkEmpty(t *testing.T) {
	s := NewTraceSink(&bytes.Buffer{})
	if err := s.Close(); err == nil {
		t.Fatal("Close on an empty sink succeeded")
	}
}
