package synth

import (
	"errors"
	"fmt"

	"specctrl/internal/bpred"
	"specctrl/internal/emu"
	"specctrl/internal/isa"
)

// refPredictorBits is the reference gshare geometry Measure uses to
// report a baseline misprediction rate — the paper's 4096-entry
// configuration (experiments.DefaultParams().GshareBits).
const refPredictorBits = 12

// Characterization is a program's realized branch behavior, measured by
// an architectural run: committed instruction and branch counts, the
// taken mix, and the misprediction count of a reference gshare
// predictor driven in commit order (no wrong-path pollution, so rates
// are close to — not identical to — the pipeline's Table 1 numbers).
type Characterization struct {
	// Committed is the number of instructions executed.
	Committed uint64
	// Branches is the number of conditional branches among them.
	Branches uint64
	// Taken is how many of those branches were taken.
	Taken uint64
	// Mispredicted is the reference predictor's miss count.
	Mispredicted uint64
}

// Density returns conditional branches per committed instruction.
func (c Characterization) Density() float64 {
	if c.Committed == 0 {
		return 0
	}
	return float64(c.Branches) / float64(c.Committed)
}

// TakenRate returns the fraction of conditional branches taken.
func (c Characterization) TakenRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Taken) / float64(c.Branches)
}

// MispredictRate returns the reference predictor's miss rate.
func (c Characterization) MispredictRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicted) / float64(c.Branches)
}

// String renders the characterization as a one-line summary.
func (c Characterization) String() string {
	return fmt.Sprintf("committed %d, br %.1f%%, taken %.1f%%, misp %.1f%%",
		c.Committed, c.Density()*100, c.TakenRate()*100, c.MispredictRate()*100)
}

// Measure runs the program on the architectural emulator for up to
// maxCommitted instructions and returns its realized characterization.
// This is the generator's cheap calibration loop: no pipeline, no
// estimators, just commit-order branch outcomes through one reference
// predictor.
func Measure(prog *isa.Program, maxCommitted uint64) (Characterization, error) {
	m := emu.NewMachine(prog)
	pred := bpred.NewGshare(refPredictorBits)
	var c Characterization
	for m.Executed < maxCommitted {
		pc := m.State.PC
		in, res, err := m.Step()
		if err != nil {
			if errors.Is(err, emu.ErrHalted) {
				break
			}
			return c, fmt.Errorf("synth: measure %s: %w", prog.Name, err)
		}
		if !in.Op.IsCondBranch() {
			continue
		}
		c.Branches++
		if res.Taken {
			c.Taken++
		}
		p, ckpt, info := pred.Predict(pc)
		pred.Resolve(pc, info, res.Taken)
		if p != res.Taken {
			pred.Recover(ckpt, pc, res.Taken)
			c.Mispredicted++
		}
	}
	c.Committed = m.Executed
	return c, nil
}

// Band is an acceptance window over a realized characterization, the
// unit of the generator's calibration contract: PaperTargets pins one
// per paper benchmark, and docs/WORKLOADS.md documents how to derive
// new ones.
type Band struct {
	// DensityLo/DensityHi bound branches per committed instruction.
	DensityLo, DensityHi float64
	// TakenLo/TakenHi bound the taken fraction.
	TakenLo, TakenHi float64
	// MispLo/MispHi bound the reference misprediction rate.
	MispLo, MispHi float64
}

// Contains reports whether the characterization falls inside the band.
func (b Band) Contains(c Characterization) bool {
	return c.Density() >= b.DensityLo && c.Density() <= b.DensityHi &&
		c.TakenRate() >= b.TakenLo && c.TakenRate() <= b.TakenHi &&
		c.MispredictRate() >= b.MispLo && c.MispredictRate() <= b.MispHi
}

// String renders the band's three ranges as a one-line summary.
func (b Band) String() string {
	return fmt.Sprintf("br [%.1f%%,%.1f%%], taken [%.1f%%,%.1f%%], misp [%.1f%%,%.1f%%]",
		b.DensityLo*100, b.DensityHi*100, b.TakenLo*100, b.TakenHi*100, b.MispLo*100, b.MispHi*100)
}
