package synth

import (
	"reflect"
	"testing"
)

func TestBuildDeterministic(t *testing.T) {
	for _, p := range append(Space(1, 4), validProfile()) {
		a := MustBuild(p, 1<<30)
		b := MustBuild(p, 1<<30)
		if !reflect.DeepEqual(a.EncodeCode(), b.EncodeCode()) {
			t.Fatalf("%s: code images differ across builds", p.WorkloadName())
		}
		if !reflect.DeepEqual(a.Data, b.Data) {
			t.Fatalf("%s: data images differ across builds", p.WorkloadName())
		}
		if a.Entry != b.Entry {
			t.Fatalf("%s: entry differs across builds", p.WorkloadName())
		}
	}
}

func TestBuildRealizesDensity(t *testing.T) {
	for i, p := range Space(2, 6) {
		c, err := Measure(MustBuild(p, 1<<30), 100_000)
		if err != nil {
			t.Fatalf("profile %d: %v", i, err)
		}
		got, want := c.Density(), p.Density
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("profile %d (%s): realized density %.3f, target %.3f",
				i, p.WorkloadName(), got, want)
		}
	}
}

func TestBuildDensityInfeasible(t *testing.T) {
	// 256 expensive global sites cannot reach density 0.40.
	p := Profile{Sites: 256, Density: 0.40, Taken: 0.5,
		GlobalFrac: 1, GlobalDepth: 4}
	if _, err := Build(p, 1); err == nil {
		t.Fatal("Build accepted an infeasible density")
	}
}

func TestSpaceDeterministicAndFeasible(t *testing.T) {
	a, b := Space(99, 32), Space(99, 32)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Space is not deterministic for a fixed seed")
	}
	if len(a) != 32 {
		t.Fatalf("Space returned %d profiles, want 32", len(a))
	}
	names := map[string]bool{}
	for i, p := range a {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d invalid: %v", i, err)
		}
		if _, err := Build(p, 1); err != nil {
			t.Errorf("profile %d infeasible: %v", i, err)
		}
		if names[p.WorkloadName()] {
			t.Errorf("profile %d: duplicate name %s", i, p.WorkloadName())
		}
		names[p.WorkloadName()] = true
	}
}

func TestRegisterIdempotent(t *testing.T) {
	p := validProfile()
	p.Seed = 0x1de9107e47
	name1, err := Register(p)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	name2, err := Register(p)
	if err != nil {
		t.Fatalf("second Register: %v", err)
	}
	if name1 != name2 {
		t.Fatalf("Register returned %q then %q", name1, name2)
	}
	got, ok := ProfileFor(name1)
	if !ok || got != p {
		t.Fatalf("ProfileFor(%q) = %+v, %v", name1, got, ok)
	}
	ns, ps := ProfilesFor([]string{"nope", name1})
	if len(ns) != 1 || ns[0] != name1 || len(ps) != 1 || ps[0] != p {
		t.Fatalf("ProfilesFor = %v, %v", ns, ps)
	}
}
