// Package synth generates workloads from a characterization vector and
// ingests external branch traces, turning the fixed eight-benchmark
// suite into a navigable space of scenarios.
//
// The generator half starts from a Profile — branch density, bias
// distribution (taken-probability center and spread), global and local
// history-correlation structure, hard-to-predict fraction, and a
// misprediction-clustering schedule — and deterministically emits an
// isa.Program whose committed branch stream realizes that vector:
//
//   - biased sites draw fresh pseudo-random data each iteration and
//     compare against a per-site threshold, with extreme probabilities
//     lowered to single-instruction constant branches so high branch
//     densities stay reachable;
//   - global sites form a producer/consumer chain: one site injects a
//     fresh pseudo-random outcome per iteration and the others copy the
//     outcome from GlobalDepth branches back, so a global-history
//     predictor can recover them exactly while a per-branch-history
//     predictor cannot;
//   - local sites follow a fixed period-P taken pattern driven by a
//     per-site counter, the classic loop-branch shape per-address
//     history predictors capture;
//   - hard-to-predict sites are pure coin flips, optionally confined to
//     periodic burst windows (ClusterEvery/ClusterBurst) to cluster
//     mispredictions the way the paper's speculation-control analysis
//     assumes.
//
// Register publishes a generated workload through internal/workload
// under the content-addressed name "synth:<profile-hash>", which flows
// into experiments.CellAddress and TraceAddress unchanged — the cell
// cache, replay trace cache, and cluster cache tiers compose with
// generated workloads automatically. Measure runs a program on the
// architectural emulator with a reference gshare predictor and reports
// its realized characterization; PaperTargets pins one checked-in
// profile per paper benchmark to that benchmark's Table 1 band, the
// generator's calibration proof.
//
// The ingestion half (FromTrace) decodes a versioned branch-trace file
// (magic "SPBT": per-site PCs plus a packed outcome stream, written by
// TraceSink from any obs.BranchEvent source, e.g. simtrace
// -record-branches) and registers a workload that replays the recorded
// outcome sequence through per-site branch instructions, making real
// program traces first-class scenarios with typed decode errors and
// fuzz coverage mirroring internal/replay.
package synth
