package synth

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"specctrl/internal/isa"
	"specctrl/internal/workload"
)

// SPBT branch-trace file format, version 1 (all integers varint):
//
//	"SPBT" | version byte |
//	uvarint nSites  | site PCs: first as uvarint, then uvarint deltas ≥ 1
//	                  (PCs strictly increasing — the canonical order)
//	uvarint nEvents | events: uvarint (siteIndex<<1 | takenBit), in
//	                  commit order
//
// The encoding is canonical: for a given site set and event stream
// there is exactly one byte encoding, so the content hash of the file
// doubles as the ingested workload's identity.
const (
	traceMagic   = "SPBT"
	traceVersion = 1
	// maxTraceSites bounds distinct branch sites: the replay program
	// emits a code block per site, so this caps generated code size.
	maxTraceSites = 4096
	// maxTraceEvents bounds the outcome stream: each event is one word
	// in the replay program's data image.
	maxTraceEvents = 1 << 20
)

// Typed decode errors, mirroring internal/replay's codec contract.
var (
	// ErrBadMagic means the input does not start with "SPBT".
	ErrBadMagic = errors.New("synth: not a branch-trace file (bad magic)")
	// ErrVersion means a well-formed header with an unknown version.
	ErrVersion = errors.New("synth: unsupported branch-trace version")
	// ErrCorrupt means a structural violation after a valid header.
	ErrCorrupt = errors.New("synth: corrupt branch-trace file")
)

// corruptf wraps ErrCorrupt with position context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Trace is a decoded branch trace: the static branch sites (by original
// PC, strictly increasing) and the dynamic outcome stream over them.
type Trace struct {
	// SitePCs are the distinct branch-site addresses, ascending.
	SitePCs []int64
	// Events is the commit-order outcome stream, packed as
	// siteIndex<<1 | takenBit.
	Events []uint32
}

// Validate checks the structural invariants EncodeTrace requires.
func (t *Trace) Validate() error {
	if len(t.SitePCs) == 0 || len(t.SitePCs) > maxTraceSites {
		return corruptf("site count %d out of range [1,%d]", len(t.SitePCs), maxTraceSites)
	}
	if len(t.Events) == 0 || len(t.Events) > maxTraceEvents {
		return corruptf("event count %d out of range [1,%d]", len(t.Events), maxTraceEvents)
	}
	prev := int64(-1)
	for i, pc := range t.SitePCs {
		if pc < 0 || pc <= prev {
			return corruptf("site %d: pc %d not strictly increasing and non-negative", i, pc)
		}
		prev = pc
	}
	for i, e := range t.Events {
		if int(e>>1) >= len(t.SitePCs) {
			return corruptf("event %d: site index %d out of range", i, e>>1)
		}
	}
	return nil
}

// EncodeTrace serializes a trace into the canonical SPBT byte form.
func EncodeTrace(t *Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 8+len(t.SitePCs)*2+len(t.Events)*2)
	out = append(out, traceMagic...)
	out = append(out, traceVersion)
	out = binary.AppendUvarint(out, uint64(len(t.SitePCs)))
	prev := int64(0)
	for i, pc := range t.SitePCs {
		if i == 0 {
			out = binary.AppendUvarint(out, uint64(pc))
		} else {
			out = binary.AppendUvarint(out, uint64(pc-prev))
		}
		prev = pc
	}
	out = binary.AppendUvarint(out, uint64(len(t.Events)))
	for _, e := range t.Events {
		out = binary.AppendUvarint(out, uint64(e))
	}
	return out, nil
}

// traceReader tracks a decode position for error context.
type traceReader struct {
	data []byte
	off  int
}

func (r *traceReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated or oversized varint (%s) at offset %d", what, r.off)
	}
	r.off += n
	return v, nil
}

// DecodeTrace parses SPBT bytes, enforcing every structural invariant
// before allocation is proportional to declared counts: counts are
// bounded by the remaining input size (each entry is at least one
// byte), site PCs must be strictly increasing (the canonical order),
// event site indices must be in range, and trailing bytes are rejected.
func DecodeTrace(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic)+1 {
		return nil, ErrBadMagic
	}
	if string(data[:len(traceMagic)]) != traceMagic {
		return nil, ErrBadMagic
	}
	if data[len(traceMagic)] != traceVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, data[len(traceMagic)], traceVersion)
	}
	r := &traceReader{data: data, off: len(traceMagic) + 1}

	nSites, err := r.uvarint("site count")
	if err != nil {
		return nil, err
	}
	if nSites == 0 || nSites > maxTraceSites {
		return nil, corruptf("site count %d out of range [1,%d]", nSites, maxTraceSites)
	}
	if nSites > uint64(len(data)-r.off) {
		return nil, corruptf("site count %d exceeds remaining input (%d bytes)", nSites, len(data)-r.off)
	}
	t := &Trace{SitePCs: make([]int64, 0, nSites)}
	pc := int64(0)
	for i := uint64(0); i < nSites; i++ {
		d, err := r.uvarint("site pc")
		if err != nil {
			return nil, err
		}
		if d > 1<<62 {
			return nil, corruptf("site %d: pc delta %d out of range", i, d)
		}
		if i == 0 {
			pc = int64(d)
		} else {
			if d == 0 {
				return nil, corruptf("site %d: zero pc delta (sites must be strictly increasing)", i)
			}
			pc += int64(d)
			if pc < 0 {
				return nil, corruptf("site %d: pc overflow", i)
			}
		}
		t.SitePCs = append(t.SitePCs, pc)
	}

	nEvents, err := r.uvarint("event count")
	if err != nil {
		return nil, err
	}
	if nEvents == 0 || nEvents > maxTraceEvents {
		return nil, corruptf("event count %d out of range [1,%d]", nEvents, maxTraceEvents)
	}
	if nEvents > uint64(len(data)-r.off) {
		return nil, corruptf("event count %d exceeds remaining input (%d bytes)", nEvents, len(data)-r.off)
	}
	t.Events = make([]uint32, 0, nEvents)
	for i := uint64(0); i < nEvents; i++ {
		e, err := r.uvarint("event")
		if err != nil {
			return nil, err
		}
		if e>>1 >= nSites {
			return nil, corruptf("event %d: site index %d out of range [0,%d)", i, e>>1, nSites)
		}
		t.Events = append(t.Events, uint32(e))
	}
	if r.off != len(data) {
		return nil, corruptf("%d trailing bytes after event stream", len(data)-r.off)
	}
	return t, nil
}

// Trace-replay program layout (word addresses).
const (
	traceTableAddr  = 0x2000 // per-site dispatch block addresses
	traceEventsAddr = 0x8000 // packed event words
)

// buildTraceProgram emits the replay program: an interpreter loop that
// walks the event words and dispatches (Jalr) into a per-site code
// block whose conditional branch takes the event's recorded outcome.
// Site identity maps to a distinct branch PC, which is what history
// predictors and estimators key on; the original PCs are metadata. The
// outer iters limit wraps the stream (workload Build semantics: large
// enough to never halt before MaxCommitted).
func buildTraceProgram(t *Trace, name string, iters int) *isa.Program {
	b := isa.NewBuilder(name)
	const (
		rEv      = isa.Reg(1)  // event stream base
		rTab     = isa.Reg(2)  // dispatch table base
		rIdx     = isa.Reg(3)  // event index
		rE       = isa.Reg(4)  // event word
		rTk      = isa.Reg(5)  // taken bit (read by the site blocks)
		rS       = isa.Reg(6)  // site index
		rA       = isa.Reg(7)  // scratch address
		rNEv     = isa.Reg(8)  // event count
		rPass    = isa.Reg(9)  // stream pass counter
		rPassLim = isa.Reg(10) // iters
	)
	for i, e := range t.Events {
		b.Word(traceEventsAddr+int64(i), int64(e))
	}
	b.Li(rEv, traceEventsAddr)
	b.Li(rTab, traceTableAddr)
	for i := range t.SitePCs {
		b.LiLabel(rA, fmt.Sprintf("t_site_%d", i))
		b.St(rA, rTab, int32(i))
	}
	b.Lui(rNEv, int32(len(t.Events)>>16)).Ori(rNEv, rNEv, int32(len(t.Events)&0xFFFF))
	b.Lui(rPassLim, int32(iters>>16)).Ori(rPassLim, rPassLim, int32(iters&0xFFFF))

	b.Label("pass")
	b.Li(rIdx, 0)
	b.Label("loop")
	b.Add(rA, rEv, rIdx)
	b.Ld(rE, rA, 0)
	b.Andi(rTk, rE, 1)
	b.Shri(rS, rE, 1)
	b.Add(rA, rTab, rS)
	b.Ld(rA, rA, 0)
	b.Jalr(isa.RA, rA, 0)
	b.Addi(rIdx, rIdx, 1)
	b.Blt(rIdx, rNEv, "loop")
	b.Addi(rPass, rPass, 1)
	b.Blt(rPass, rPassLim, "pass")
	b.Halt()

	for i := range t.SitePCs {
		b.Label(fmt.Sprintf("t_site_%d", i))
		b.Bne(rTk, isa.Zero, fmt.Sprintf("t_take_%d", i))
		b.Jalr(isa.Zero, isa.RA, 0)
		b.Label(fmt.Sprintf("t_take_%d", i))
		b.Jalr(isa.Zero, isa.RA, 0)
	}
	return b.MustBuild()
}

// FromTrace decodes an SPBT branch-trace file and registers a workload
// that replays it, returning the content-addressed name
// "synth:t-<hash>". Like Register, it is idempotent: the name hashes
// the canonical encoding, so re-ingesting the same trace re-yields the
// same workload. The replay program ignores BuildSeeded's seed (the
// recorded stream is the input; there is no alternative input to
// re-derive).
func FromTrace(data []byte) (string, error) {
	t, err := DecodeTrace(data)
	if err != nil {
		return "", err
	}
	canonical, err := EncodeTrace(t)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canonical)
	name := workload.SynthPrefix + "t-" + hex.EncodeToString(sum[:])[:12]
	w := workload.Workload{
		Name: name,
		Description: fmt.Sprintf("ingested trace: %d sites, %d events, %.1f%% taken",
			len(t.SitePCs), len(t.Events), takenPct(t)),
		Build: func(iters int) *isa.Program { return buildTraceProgram(t, name, iters) },
		BuildSeeded: func(_ uint64, iters int) *isa.Program {
			return buildTraceProgram(t, name, iters)
		},
	}
	if err := workload.Register(w); err != nil {
		var dup *workload.DuplicateError
		if !errors.As(err, &dup) {
			return "", err
		}
	}
	return name, nil
}

// takenPct is the trace's taken percentage (for registry descriptions).
func takenPct(t *Trace) float64 {
	taken := 0
	for _, e := range t.Events {
		taken += int(e & 1)
	}
	return 100 * float64(taken) / float64(len(t.Events))
}
