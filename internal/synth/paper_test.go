package synth

import (
	"testing"

	"specctrl/internal/workload"
)

// TestPaperFit is the calibration contract: for every paper benchmark,
// both the real workload and its checked-in generated profile measure
// inside the same Table 1 band. A failure on the real side means the
// benchmark programs drifted; on the generated side, the generator did.
func TestPaperFit(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration measurement is long")
	}
	targets := PaperTargets()
	if len(targets) != 8 {
		t.Fatalf("PaperTargets has %d entries, want 8", len(targets))
	}
	for _, tgt := range targets {
		tgt := tgt
		t.Run(tgt.Workload, func(t *testing.T) {
			t.Parallel()
			w, err := workload.ByName(tgt.Workload)
			if err != nil {
				t.Fatalf("workload %q: %v", tgt.Workload, err)
			}
			real, err := Measure(w.Build(1<<30), PaperMeasureCommitted)
			if err != nil {
				t.Fatalf("measure real: %v", err)
			}
			if !tgt.Band.Contains(real) {
				t.Errorf("real workload out of band:\n  got  %s\n  want %s", real, tgt.Band)
			}
			gen, err := Measure(MustBuild(tgt.Profile, 1<<30), PaperMeasureCommitted)
			if err != nil {
				t.Fatalf("measure generated: %v", err)
			}
			if !tgt.Band.Contains(gen) {
				t.Errorf("generated profile out of band:\n  got  %s\n  want %s", gen, tgt.Band)
			}
		})
	}
}
