package btb

import (
	"testing"
	"testing/quick"

	"specctrl/internal/rng"
)

func TestBTBMissThenHit(t *testing.T) {
	b := NewBTB(64, 2)
	if _, hit := b.Lookup(100); hit {
		t.Error("cold lookup hit")
	}
	b.Update(100, 555)
	target, hit := b.Lookup(100)
	if !hit || target != 555 {
		t.Errorf("lookup = (%d,%v), want (555,true)", target, hit)
	}
}

func TestBTBUpdateRefreshesTarget(t *testing.T) {
	b := NewBTB(64, 2)
	b.Update(100, 1)
	b.Update(100, 2)
	if target, hit := b.Lookup(100); !hit || target != 2 {
		t.Errorf("refresh failed: (%d,%v)", target, hit)
	}
}

func TestBTBNoFalseHits(t *testing.T) {
	// Full-PC tags: PCs mapping to the same set must never alias.
	b := NewBTB(16, 2)
	b.Update(8, 1) // set 8%8 = 0
	if _, hit := b.Lookup(16); hit {
		t.Error("aliased PC hit")
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(16, 2) // 8 sets, 2 ways
	// Three PCs in set 0: 0, 8, 16.
	b.Update(0, 10)
	b.Update(8, 20)
	b.Lookup(0) // 0 is MRU
	b.Update(16, 30)
	if _, hit := b.Lookup(0); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := b.Lookup(8); hit {
		t.Error("LRU entry survived")
	}
}

func TestBTBStats(t *testing.T) {
	b := NewBTB(16, 1)
	b.Lookup(1)
	b.Update(1, 2)
	b.Lookup(1)
	h, m := b.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", h, m)
	}
}

func TestBTBPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(0, 1) },
		func() { NewBTB(10, 3) },
		func() { NewBTB(24, 2) }, // 12 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for _, want := range []int64{3, 2, 1} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = (%d,%v), want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty stack succeeded")
	}
}

func TestRASWrapOverwritesOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	// The third pop returns the overwritten slot's current content (3),
	// not the lost 1 — hardware-accurate wrap behaviour.
	if v, ok := r.Pop(); !ok || v != 3 {
		t.Errorf("wrapped pop = (%d,%v)", v, ok)
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(10)
	ckpt := r.Checkpoint()
	r.Push(20)
	r.Push(30)
	r.Restore(ckpt)
	if v, ok := r.Pop(); !ok || v != 10 {
		t.Errorf("after restore pop = (%d,%v), want (10,true)", v, ok)
	}
}

func TestRASBalancedCallsProperty(t *testing.T) {
	// Balanced call/return sequences within the stack depth always
	// predict perfectly.
	f := func(seed uint64, depth8 uint8) bool {
		g := rng.New(seed)
		depth := 1 + int(depth8%8)
		r := NewRAS(16)
		var shadow []int64
		for i := 0; i < 200; i++ {
			if len(shadow) < depth && (len(shadow) == 0 || g.Bool(0.5)) {
				addr := int64(g.Intn(10000))
				r.Push(addr)
				shadow = append(shadow, addr)
			} else {
				want := shadow[len(shadow)-1]
				shadow = shadow[:len(shadow)-1]
				got, ok := r.Pop()
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRASPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("depth 0 accepted")
		}
	}()
	NewRAS(0)
}

func BenchmarkBTBLookupUpdate(b *testing.B) {
	btb := NewBTB(512, 4)
	for i := 0; i < b.N; i++ {
		pc := int64(i & 0x3ff)
		if _, hit := btb.Lookup(pc); !hit {
			btb.Update(pc, pc*2)
		}
	}
}
