// Package btb provides the front-end target predictors for indirect
// control flow: a tagged branch target buffer (BTB) and a return address
// stack (RAS).
//
// The paper's simulator inherits these from SimpleScalar; here they are
// optional pipeline components (pipeline.Config.IndirectPrediction).
// Without them the simulator assumes perfect targets for jumps, which is
// the configuration the paper's conditional-branch statistics use; with
// them, return- and indirect-jump target mispredictions create
// additional wrong-path work — useful for studying confidence-directed
// speculation control on call/ret-heavy code (xlisp).
package btb

import "fmt"

type entry struct {
	valid  bool
	tag    int64
	target int64
	lru    uint64
}

// BTB is a set-associative tagged branch target buffer.
type BTB struct {
	sets    [][]entry
	setMask int64
	tick    uint64

	hits, misses uint64
}

// NewBTB builds a BTB with the given total entries and associativity.
// It panics on invalid geometry (entries must be a positive multiple of
// assoc with a power-of-two set count).
func NewBTB(entries, assoc int) *BTB {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("btb: bad geometry %d/%d", entries, assoc))
	}
	nsets := entries / assoc
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("btb: set count %d not a power of two", nsets))
	}
	sets := make([][]entry, nsets)
	backing := make([]entry, entries)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return &BTB{sets: sets, setMask: int64(nsets - 1)}
}

// Lookup returns the predicted target for the jump at pc.
func (b *BTB) Lookup(pc int64) (target int64, hit bool) {
	b.tick++
	set := b.sets[pc&b.setMask]
	tag := pc // full-PC tags: no false hits in the model
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = b.tick
			b.hits++
			return set[i].target, true
		}
	}
	b.misses++
	return 0, false
}

// Update installs or refreshes the target for the jump at pc.
func (b *BTB) Update(pc, target int64) {
	b.tick++
	set := b.sets[pc&b.setMask]
	tag := pc
	victim := -1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].target = target
			set[i].lru = b.tick
			return
		}
		if victim < 0 && !set[i].valid {
			victim = i
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
	}
	set[victim] = entry{valid: true, tag: tag, target: target, lru: b.tick}
}

// Stats returns cumulative lookup hits and misses.
func (b *BTB) Stats() (hits, misses uint64) { return b.hits, b.misses }

// RAS is a fixed-depth return address stack. Pushes beyond the depth
// wrap around and overwrite the oldest entries (as hardware does), and
// pops from an empty stack miss.
//
// On a pipeline squash the stack is restored approximately, as in real
// designs: the top-of-stack *pointer* is checkpointed and restored, but
// entries overwritten by wrong-path calls stay corrupted.
type RAS struct {
	stack []int64
	top   int // index of the next free slot (monotonic, wraps via modulo)
	depth int
}

// NewRAS builds a stack with the given depth; it panics when depth < 1.
func NewRAS(depth int) *RAS {
	if depth < 1 {
		panic(fmt.Sprintf("btb: ras depth %d", depth))
	}
	return &RAS{stack: make([]int64, depth), depth: depth}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr int64) {
	r.stack[r.top%r.depth] = addr
	r.top++
}

// Pop predicts the target of a return. ok is false when the stack is
// logically empty.
func (r *RAS) Pop() (addr int64, ok bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%r.depth], true
}

// Checkpoint captures the top-of-stack pointer.
func (r *RAS) Checkpoint() int { return r.top }

// Restore rewinds the top-of-stack pointer to a checkpoint. Entries
// clobbered since the checkpoint are not recovered (hardware-accurate
// pointer-only repair).
func (r *RAS) Restore(ckpt int) { r.top = ckpt }

// Depth returns the stack capacity.
func (r *RAS) Depth() int { return r.depth }
