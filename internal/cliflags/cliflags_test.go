package cliflags

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specctrl/internal/synth"
	"specctrl/internal/workload"
)

// TestFlagNamesPinned: the shared flag names are a compatibility
// surface — scripts and docs reference them — so registration must
// produce exactly these names.
func TestFlagNamesPinned(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	Jobs(fs, 4, "jobs usage")
	Shard(fs)
	CellsOut(fs)
	CellsIn(fs)
	Committed(fs, 0, "committed usage")
	RegisterObs(fs)
	Replay(fs)
	TraceCacheMB(fs)
	RegisterTrace(fs)
	RegisterCluster(fs)
	RegisterSynth(fs)
	RegisterPolicy(fs)

	want := map[string]bool{
		"jobs": true, "shard": true, "cells-out": true, "cells-in": true,
		"committed": true, "metrics-addr": true, "progress": true,
		"replay": true, "trace-cache-mb": true,
		"trace-out": true, "profile-cells": true, "span-sample": true,
		"coordinator": true, "worker": true, "join": true, "node": true,
		"heartbeat":     true,
		"synth-profile": true, "synth-n": true, "ingest-trace": true,
		"policy": true, "policy-levels": true,
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })
	for name := range want {
		if !got[name] {
			t.Errorf("flag -%s not registered", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("unexpected flag -%s registered", name)
		}
	}
}

func TestObsParsesAndStarts(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := RegisterObs(fs)
	if err := fs.Parse([]string{"-progress", "250ms"}); err != nil {
		t.Fatal(err)
	}
	if *o.Progress != 250*time.Millisecond {
		t.Fatalf("-progress parsed to %v", *o.Progress)
	}
	s, err := o.Start("t", io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.Run == nil {
		t.Error("heartbeat requested but Started.Run is nil")
	}
	if s.Registry != nil {
		t.Error("no -metrics-addr given but a registry was started")
	}
}

// TestObsZeroValueStartsNothing: tests that build options structs
// directly (bypassing flag parsing) carry a zero Obs; Start must be a
// no-op, not a nil dereference.
func TestObsZeroValueStartsNothing(t *testing.T) {
	var o Obs
	s, err := o.Start("t", io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.Registry != nil || s.Run != nil {
		t.Error("zero Obs started observability")
	}
}

// TestClusterValidate: the mode matrix must reject contradictory
// combinations with a flag-named error instead of silently picking one.
func TestClusterValidate(t *testing.T) {
	for _, tc := range []struct {
		args []string
		ok   bool
	}{
		{nil, true},
		{[]string{"-coordinator"}, true},
		{[]string{"-worker", "-join", "http://h:1"}, true},
		{[]string{"-coordinator", "-worker", "-join", "http://h:1"}, false},
		{[]string{"-worker"}, false},
		{[]string{"-join", "http://h:1"}, false},
	} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		c := RegisterCluster(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("parse %v: %v", tc.args, err)
		}
		if err := c.Validate(); tc.ok != (err == nil) {
			t.Errorf("Validate(%v) error = %v, want ok=%v", tc.args, err, tc.ok)
		}
	}
}

func TestParseReplay(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"", "arch", true},
		{"auto", "arch", true},
		{"arch", "arch", true},
		{"events", "events", true},
		{"off", "off", true},
		{"on", "", false},
		{"AUTO", "", false},
		{"ARCH", "", false},
	} {
		got, err := ParseReplay(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseReplay(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseReplay(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLoadCellsMergesInOrder(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	// Minimal versioned cell files: empty maps merge to empty; a bad
	// path errors.
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte(`{"version":1,"cells":{}}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cells, err := LoadCells(a + "," + b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("expected empty merge, got %d cells", len(cells))
	}
	if _, err := LoadCells(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadCells accepted a missing file")
	}
}

// TestSynthLoad: -synth-profile and -ingest-trace files register
// workloads and return their names in flag order (profiles first);
// bad inputs fail with a flag-named error.
func TestSynthLoad(t *testing.T) {
	dir := t.TempDir()
	prof := synth.Profile{Seed: 7, Sites: 16, Density: 0.1, Taken: 0.7, Spread: 0.2}
	profPath := filepath.Join(dir, "p.json")
	profJSON, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(profPath, profJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	trc, err := synth.EncodeTrace(&synth.Trace{SitePCs: []int64{8, 16}, Events: []uint32{1, 2, 3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	trcPath := filepath.Join(dir, "t.spbt")
	if err := os.WriteFile(trcPath, trc, 0o644); err != nil {
		t.Fatal(err)
	}

	parse := func(t *testing.T, args ...string) Synth {
		t.Helper()
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		s := RegisterSynth(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		return s
	}

	names, n, err := parse(t, "-synth-profile", profPath, "-ingest-trace", trcPath, "-synth-n", "5").Load()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("n = %d, want 5", n)
	}
	if len(names) != 2 || names[0] != prof.WorkloadName() || !strings.HasPrefix(names[1], "synth:t-") {
		t.Errorf("names = %v, want [%s synth:t-...]", names, prof.WorkloadName())
	}
	for _, name := range names {
		if _, err := workload.ByName(name); err != nil {
			t.Errorf("loaded workload %s not resolvable: %v", name, err)
		}
	}

	// Loading the same files again is idempotent (content-addressed).
	again, _, err := parse(t, "-synth-profile", profPath, "-ingest-trace", trcPath).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0] != names[0] || again[1] != names[1] {
		t.Errorf("second Load names = %v, want %v", again, names)
	}

	// LoadProfiles parses without registering.
	profs, err := parse(t, "-synth-profile", profPath).LoadProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 1 || profs[0] != prof {
		t.Errorf("LoadProfiles = %+v, want [%+v]", profs, prof)
	}

	for _, tc := range []struct {
		name string
		args []string
	}{
		{"negative n", []string{"-synth-n", "-1"}},
		{"missing profile", []string{"-synth-profile", filepath.Join(dir, "nope.json")}},
		{"missing trace", []string{"-ingest-trace", filepath.Join(dir, "nope.spbt")}},
		{"bad profile json", []string{"-synth-profile", trcPath}},
		{"bad trace bytes", []string{"-ingest-trace", profPath}},
	} {
		if _, _, err := parse(t, tc.args...).Load(); err == nil {
			t.Errorf("%s: Load accepted %v", tc.name, tc.args)
		}
	}
}

func TestPolicyFlagsLoad(t *testing.T) {
	parse := func(args ...string) (PolicyFlags, error) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		p := RegisterPolicy(fs)
		return p, fs.Parse(args)
	}
	p, err := parse()
	if err != nil {
		t.Fatal(err)
	}
	if pol, err := p.Load(); err != nil || pol != nil {
		t.Errorf("no flags: Load() = %v, %v; want nil, nil", pol, err)
	}
	p, _ = parse("-policy", "gate:2")
	pol, err := p.Load()
	if err != nil || pol == nil || pol.Name() != "gate:2" {
		t.Errorf("gate:2: Load() = %v, %v", pol, err)
	}
	p, _ = parse("-policy", "throttle", "-policy-levels", "4,2,1")
	pol, err = p.Load()
	if err != nil || pol == nil || pol.Name() != "throttle:4,2,1" {
		t.Errorf("throttle levels: Load() = %v, %v", pol, err)
	}
	p, _ = parse("-policy-levels", "4,2,1")
	if _, err := p.Load(); err == nil {
		t.Error("-policy-levels without -policy throttle accepted")
	}
	p, _ = parse("-policy", "bogus:1")
	if _, err := p.Load(); err == nil {
		t.Error("bogus policy spec accepted")
	}
	// The zero PolicyFlags (never registered) loads to nil.
	if pol, err := (PolicyFlags{}).Load(); err != nil || pol != nil {
		t.Errorf("zero PolicyFlags: Load() = %v, %v; want nil, nil", pol, err)
	}
}
