// Package cliflags declares the command-line flags shared by the
// specctrl binaries (simctrl, simserved, simtrace). Each shared flag's
// name — and, where the semantics coincide, its help text — is defined
// once here, so the binaries stay byte-compatible with each other and
// with the documentation: `-jobs` can never drift into `-workers` in
// one tool only.
//
// All registration functions take an explicit *flag.FlagSet; binaries
// using the global flag set pass flag.CommandLine.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/synth"
)

// Flag names shared across binaries. Registration goes through the
// functions below; these constants exist for error messages and tests.
const (
	JobsFlag         = "jobs"
	ShardFlag        = "shard"
	CellsOutFlag     = "cells-out"
	CellsInFlag      = "cells-in"
	CommittedFlag    = "committed"
	MetricsAddrFlag  = "metrics-addr"
	ProgressFlag     = "progress"
	ReplayFlag       = "replay"
	TraceCacheMBFlag = "trace-cache-mb"
	TraceOutFlag     = "trace-out"
	ProfileCellsFlag = "profile-cells"
	SpanSampleFlag   = "span-sample"
	CoordinatorFlag  = "coordinator"
	WorkerFlag       = "worker"
	JoinFlag         = "join"
	NodeFlag         = "node"
	HeartbeatFlag    = "heartbeat"
	SynthProfileFlag = "synth-profile"
	SynthNFlag       = "synth-n"
	IngestTraceFlag  = "ingest-trace"
	PolicyFlag       = "policy"
	PolicyLevelsFlag = "policy-levels"
)

// Jobs registers -jobs. The default and help text are the caller's:
// simctrl counts parallel grid cells (default all CPUs), simserved
// counts runner-pool width per grid (0 = all CPUs).
func Jobs(fs *flag.FlagSet, def int, usage string) *int {
	return fs.Int(JobsFlag, def, usage)
}

// Committed registers -committed. The default and help text are the
// caller's: the grid tools treat 0 as "the paper default of 2M",
// simtrace records a fixed 500k by default.
func Committed(fs *flag.FlagSet, def uint64, usage string) *uint64 {
	return fs.Uint64(CommittedFlag, def, usage)
}

// Shard registers -shard, the i/n grid-splitting selector.
func Shard(fs *flag.FlagSet) *string {
	return fs.String(ShardFlag, "", "run only shard i of n grid cells, as i/n (requires -cells-out)")
}

// CellsOut registers -cells-out, the computed-cell JSON output path.
func CellsOut(fs *flag.FlagSet) *string {
	return fs.String(CellsOutFlag, "", "write computed grid cells to this JSON file")
}

// CellsIn registers -cells-in, the precomputed-cell JSON input list.
func CellsIn(fs *flag.FlagSet) *string {
	return fs.String(CellsInFlag, "", "comma-separated cell JSON files to reuse instead of simulating")
}

// Replay registers -replay, the trace-tier mode selector.
func Replay(fs *flag.FlagSet) *string {
	return fs.String(ReplayFlag, experiments.ReplayArch,
		"trace-tier mode: arch (committed-stream + event-stream caching), events (event-stream caching only), or off (simulate every cell directly)")
}

// ParseReplay validates a -replay value and returns the canonical
// Params.Replay string. The legacy "auto" spelling (and the empty
// string) canonicalize to arch, so pre-tri-state command lines keep
// working.
func ParseReplay(v string) (string, error) {
	switch v {
	case "", experiments.ReplayAuto, experiments.ReplayArch:
		return experiments.ReplayArch, nil
	case experiments.ReplayEvents:
		return experiments.ReplayEvents, nil
	case experiments.ReplayOff:
		return experiments.ReplayOff, nil
	}
	return "", fmt.Errorf("-%s must be %q, %q or %q, got %q",
		ReplayFlag, experiments.ReplayArch, experiments.ReplayEvents, experiments.ReplayOff, v)
}

// TraceCacheMB registers -trace-cache-mb, the in-process replay cache
// budget (0 selects replay.DefaultCacheBytes). The budget applies to
// each trace tier separately — the event-stream cache and the
// committed-stream (arch) cache.
func TraceCacheMB(fs *flag.FlagSet) *int {
	return fs.Int(TraceCacheMBFlag, 0,
		"per-tier replay cache budget in MiB, applied to the event-stream and committed-stream caches (LRU by retained bytes; 0 = default 256)")
}

// PolicyFlags bundles the speculation-control policy flags shared by
// the grid binaries: -policy installs a policy on every simulated
// pipeline's base configuration, and -policy-levels supplies a
// throttle's fetch-width ladder separately so specs stay readable.
// Register with RegisterPolicy, then call Load after parsing.
type PolicyFlags struct {
	Spec   *string
	Levels *string
}

// RegisterPolicy registers -policy and -policy-levels.
func RegisterPolicy(fs *flag.FlagSet) PolicyFlags {
	return PolicyFlags{
		Spec: fs.String(PolicyFlag, "",
			"speculation-control policy installed on the base pipeline: gate:<t>, throttle:<w0,w1,...>, boost:<t,p>, or throttle with -policy-levels (default: none)"),
		Levels: fs.String(PolicyLevelsFlag, "",
			"fetch-width ladder for -policy throttle, indexed by pending low-confidence branches, e.g. 4,2,1"),
	}
}

// Load parses the policy flags into a pipeline.Policy (nil when no
// policy was requested). `-policy throttle -policy-levels 4,2,1` is
// shorthand for `-policy throttle:4,2,1`.
func (p PolicyFlags) Load() (pipeline.Policy, error) {
	var spec, levels string
	if p.Spec != nil {
		spec = strings.TrimSpace(*p.Spec)
	}
	if p.Levels != nil {
		levels = strings.TrimSpace(*p.Levels)
	}
	if levels != "" {
		if spec != "throttle" {
			return nil, fmt.Errorf("-%s only applies with -%s throttle", PolicyLevelsFlag, PolicyFlag)
		}
		spec = "throttle:" + levels
	}
	if spec == "" {
		return nil, nil
	}
	pol, err := policy.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("-%s: %w", PolicyFlag, err)
	}
	return pol, nil
}

// Cluster bundles the multi-node flags (docs/CLUSTER.md): simserved
// runs as a plain single-process service by default, as the cluster
// head with -coordinator, or as a worker with -worker -join <url>.
type Cluster struct {
	Coordinator *bool
	Worker      *bool
	Join        *string
	Node        *string
	Heartbeat   *time.Duration
}

// RegisterCluster registers -coordinator, -worker, -join, -node and
// -heartbeat.
func RegisterCluster(fs *flag.FlagSet) Cluster {
	return Cluster{
		Coordinator: fs.Bool(CoordinatorFlag, false,
			"run as a cluster coordinator: accept jobs and scatter grids across joined workers (docs/CLUSTER.md)"),
		Worker: fs.Bool(WorkerFlag, false,
			"run as a cluster worker executing shard units from a coordinator (requires -join)"),
		Join: fs.String(JoinFlag, "",
			"coordinator base URL a -worker joins (e.g. http://head:8344)"),
		Node: fs.String(NodeFlag, "",
			"worker's self-reported node name (default: hostname)"),
		Heartbeat: fs.Duration(HeartbeatFlag, 0,
			"coordinator: worker heartbeat interval; a worker silent for 3 intervals is declared gone (0 = default 2s)"),
	}
}

// Validate rejects contradictory cluster mode combinations.
func (c Cluster) Validate() error {
	switch {
	case *c.Coordinator && *c.Worker:
		return fmt.Errorf("-%s and -%s are mutually exclusive", CoordinatorFlag, WorkerFlag)
	case *c.Worker && *c.Join == "":
		return fmt.Errorf("-%s requires -%s <coordinator URL>", WorkerFlag, JoinFlag)
	case !*c.Worker && *c.Join != "":
		return fmt.Errorf("-%s only applies with -%s", JoinFlag, WorkerFlag)
	}
	return nil
}

// Synth bundles the workload-generation flags (docs/WORKLOADS.md):
// -synth-profile registers generator vectors from JSON files,
// -ingest-trace registers recorded branch traces as replayable
// workloads, and -synth-n sizes the sweepspace experiment's generated
// set. Register with RegisterSynth, then call Load after parsing.
type Synth struct {
	Profiles *string
	N        *int
	Traces   *string
}

// RegisterSynth registers -synth-profile, -synth-n and -ingest-trace.
func RegisterSynth(fs *flag.FlagSet) Synth {
	return Synth{
		Profiles: fs.String(SynthProfileFlag, "",
			"comma-separated synth profile JSON files to register as generated workloads (docs/WORKLOADS.md)"),
		N: fs.Int(SynthNFlag, 0,
			"sweepspace: how many latin-hypercube profiles to generate (0 = default 32)"),
		Traces: fs.String(IngestTraceFlag, "",
			"comma-separated SPBT branch-trace files (simtrace -record-branches) to ingest as replayable workloads"),
	}
}

// splitList parses a comma-separated flag value into trimmed non-empty
// entries.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Load reads and registers every -synth-profile vector and every
// -ingest-trace file, returning the registered workload names in flag
// order (profiles first) plus the parsed -synth-n. Call it after flag
// parsing in every mode that runs experiments — including cluster
// workers, which must resolve the same workload names the coordinator
// scatters.
func (s Synth) Load() (names []string, n int, err error) {
	if s.N != nil {
		if *s.N < 0 {
			return nil, 0, fmt.Errorf("-%s must be >= 0, got %d", SynthNFlag, *s.N)
		}
		n = *s.N
	}
	if s.Profiles != nil {
		for _, path := range splitList(*s.Profiles) {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, 0, fmt.Errorf("-%s: %w", SynthProfileFlag, err)
			}
			prof, err := synth.ParseProfile(data)
			if err != nil {
				return nil, 0, fmt.Errorf("-%s %s: %w", SynthProfileFlag, path, err)
			}
			name, err := synth.Register(prof)
			if err != nil {
				return nil, 0, fmt.Errorf("-%s %s: %w", SynthProfileFlag, path, err)
			}
			names = append(names, name)
		}
	}
	if s.Traces != nil {
		for _, path := range splitList(*s.Traces) {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, 0, fmt.Errorf("-%s: %w", IngestTraceFlag, err)
			}
			name, err := synth.FromTrace(data)
			if err != nil {
				return nil, 0, fmt.Errorf("-%s %s: %w", IngestTraceFlag, path, err)
			}
			names = append(names, name)
		}
	}
	return names, n, nil
}

// LoadProfiles parses the -synth-profile files into vectors without
// registering them — the server-mode client path, which ships vectors
// in the submission body for the server to register.
func (s Synth) LoadProfiles() ([]synth.Profile, error) {
	if s.Profiles == nil {
		return nil, nil
	}
	var profs []synth.Profile
	for _, path := range splitList(*s.Profiles) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", SynthProfileFlag, err)
		}
		prof, err := synth.ParseProfile(data)
		if err != nil {
			return nil, fmt.Errorf("-%s %s: %w", SynthProfileFlag, path, err)
		}
		profs = append(profs, prof)
	}
	return profs, nil
}

// Trace bundles the span-tracing flags shared by the binaries.
// Register with RegisterTrace, build the tracer with NewTracer after
// parsing, and call Finish once the run is over to write the trace
// file and the slow-cell report.
type Trace struct {
	Out          *string
	ProfileCells *int
	Sample       *float64
}

// RegisterTrace registers -trace-out, -profile-cells and -span-sample.
func RegisterTrace(fs *flag.FlagSet) Trace {
	return Trace{
		Out: fs.String(TraceOutFlag, "",
			"write the run's spans as Chrome trace-event JSON to this file (open in Perfetto or chrome://tracing)"),
		ProfileCells: fs.Int(ProfileCellsFlag, 0,
			"print the N slowest grid cells (wall time, simulated cycles, cache outcome) to stderr after the run"),
		Sample: fs.Float64(SpanSampleFlag, 1,
			"head-sampling fraction of traces to record, in (0, 1]"),
	}
}

// Enabled reports whether the parsed flags ask for span tracing.
func (t Trace) Enabled() bool {
	return (t.Out != nil && *t.Out != "") || (t.ProfileCells != nil && *t.ProfileCells > 0)
}

// NewTracer returns a tracer configured per the parsed flags, or nil —
// the disabled tracer — when no trace flag was given. The zero Trace
// (flags never registered) returns nil.
func (t Trace) NewTracer() *span.Tracer {
	if !t.Enabled() {
		return nil
	}
	opts := span.Options{}
	if t.Sample != nil {
		opts.Sample = *t.Sample
	}
	return span.New(opts)
}

// Finish writes whatever trace outputs the flags requested from the
// finished tracer: the Chrome trace-event file for -trace-out and the
// slow-cell table for -profile-cells (to stderr, announced under prog).
// A nil tracer — tracing never enabled — is a no-op.
func (t Trace) Finish(tr *span.Tracer, prog string, stderr io.Writer) error {
	if tr == nil {
		return nil
	}
	spans := tr.Snapshot()
	if t.Out != nil && *t.Out != "" {
		f, err := os.Create(*t.Out)
		if err != nil {
			return err
		}
		if err := span.WriteChrome(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%s: wrote %d spans to %s (open in Perfetto or chrome://tracing)\n",
			prog, len(spans), *t.Out)
	}
	if t.ProfileCells != nil && *t.ProfileCells > 0 {
		experiments.ProfileCells(stderr, spans, *t.ProfileCells)
	}
	return nil
}

// Obs bundles the two observability flags every long-running binary
// offers. Register with RegisterObs, then call Start after parsing.
type Obs struct {
	MetricsAddr *string
	Progress    *time.Duration
}

// RegisterObs registers -metrics-addr and -progress.
func RegisterObs(fs *flag.FlagSet) Obs {
	return Obs{
		MetricsAddr: fs.String(MetricsAddrFlag, "",
			"serve live metrics/expvar/pprof on this address (e.g. :9090)"),
		Progress: fs.Duration(ProgressFlag, 0,
			"print a heartbeat to stderr at this interval (e.g. 1s; 0 = off)"),
	}
}

// Started holds whatever observability the parsed flags asked for.
// Fields are nil when the corresponding flag was not given.
type Started struct {
	Registry *obs.Registry
	Run      *obs.Progress

	closers []func()
}

// Stop shuts down the metrics server and heartbeat, if running.
func (s *Started) Stop() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
	s.closers = nil
}

// Start brings up the observability the flags requested: an HTTP
// metrics endpoint when -metrics-addr was given (announced on stderr
// under the binary name prog) and a stderr heartbeat when -progress
// was given. tr, which may be nil, is mounted at /debug/traces on the
// metrics endpoint. Call Stop on the result before exiting. The zero
// Obs (flags never registered, as in tests that bypass flag parsing)
// starts nothing.
func (o Obs) Start(prog string, stderr io.Writer, tr *span.Tracer) (*Started, error) {
	s := &Started{}
	if o.MetricsAddr != nil && *o.MetricsAddr != "" {
		s.Registry = obs.NewRegistry()
		srv, err := obs.Serve(*o.MetricsAddr, s.Registry, tr)
		if err != nil {
			return nil, err
		}
		s.closers = append(s.closers, func() { srv.Close() })
		fmt.Fprintf(stderr, "%s: serving metrics on %s/metrics (pprof on /debug/pprof/)\n", prog, srv.URL())
	}
	if o.Progress != nil && *o.Progress > 0 {
		s.Run = obs.NewProgress()
		stop := obs.StartHeartbeat(stderr, *o.Progress, s.Run)
		s.closers = append(s.closers, stop)
	}
	return s, nil
}

// LoadCells reads a -cells-in value: a comma-separated list of cell
// JSON files, merged in order (later files win on key collisions).
func LoadCells(arg string) (map[string]experiments.CellResult, error) {
	merged := map[string]experiments.CellResult{}
	for _, path := range strings.Split(arg, ",") {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		cells, err := experiments.UnmarshalCells(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for k, c := range cells {
			merged[k] = c
		}
	}
	return merged, nil
}
