// Package emu implements the architectural (functional) emulator for the
// simulated ISA.
//
// The emulator executes a Program sequentially and precisely, one
// instruction per Step, with no timing model. It serves three roles:
//
//   - oracle: the pipeline simulator checks its committed instruction
//     stream against a lockstep emulator run;
//   - profiler: the static confidence estimator's training pass runs a
//     predictor over the emulator's branch stream;
//   - workload validation: tests execute workloads to completion and check
//     their architectural effects.
//
// Step semantics mirror internal/isa exactly; the pipeline simulator
// shares this implementation via Exec so the two can never diverge.
package emu

import (
	"errors"
	"fmt"

	"specctrl/internal/isa"
	"specctrl/internal/mem"
)

// ErrHalted is returned by Step once the machine has executed a HALT.
var ErrHalted = errors.New("emu: machine halted")

// MemOp describes the memory access performed by an instruction, if any.
// The pipeline simulator uses it to route loads and stores through its
// speculative store buffer and cache model.
type MemOp struct {
	IsLoad  bool
	IsStore bool
	Addr    int64
	Value   int64 // value stored (for stores) or loaded (for loads)
}

// Result describes the architectural effect of executing one instruction.
type Result struct {
	NextPC int64
	// Taken is meaningful only for conditional branches.
	Taken bool
	Mem   MemOp
	// WroteReg is the destination register actually written (Zero if
	// none); Value is the value written.
	WroteReg isa.Reg
	Value    int64
	Halted   bool
}

// State is a machine state: registers and PC. Memory lives separately so
// that different execution models can share or fork it independently.
type State struct {
	Regs [isa.NumRegs]int64
	PC   int64
}

// LoadStore abstracts data memory for Exec. *mem.Memory implements it; the
// pipeline supplies a store-buffer-aware wrapper.
type LoadStore interface {
	Read(addr int64) int64
	Write(addr int64, v int64)
}

// Exec executes instruction in against state s and memory m, updating
// both, and returns the architectural effect. It is the single source of
// truth for instruction semantics.
func Exec(s *State, m LoadStore, in isa.Instruction) Result {
	var r Result
	ExecInto(s, m, in, &r)
	return r
}

// ExecInto is Exec with a caller-supplied Result, for per-cycle loops
// that cannot afford the by-value return copy (the pipeline simulator
// executes one instruction per fetch slot). r is fully overwritten; it
// may be a reused scratch variable. Semantics are identical to Exec —
// this is the same code, not a copy.
func ExecInto(s *State, m LoadStore, in isa.Instruction, r *Result) {
	*r = Result{NextPC: s.PC + 1}
	set := func(rd isa.Reg, v int64) {
		if rd != isa.Zero {
			s.Regs[rd] = v
		}
		r.WroteReg = rd
		r.Value = v
	}
	ra, rb := s.Regs[in.Ra], s.Regs[in.Rb]
	imm := int64(in.Imm)

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		r.Halted = true
		r.NextPC = s.PC

	case isa.OpAdd:
		set(in.Rd, ra+rb)
	case isa.OpSub:
		set(in.Rd, ra-rb)
	case isa.OpAnd:
		set(in.Rd, ra&rb)
	case isa.OpOr:
		set(in.Rd, ra|rb)
	case isa.OpXor:
		set(in.Rd, ra^rb)
	case isa.OpShl:
		set(in.Rd, ra<<(uint64(rb)&63))
	case isa.OpShr:
		set(in.Rd, int64(uint64(ra)>>(uint64(rb)&63)))
	case isa.OpMul:
		set(in.Rd, ra*rb)
	case isa.OpDiv:
		if rb == 0 {
			set(in.Rd, 0)
		} else {
			set(in.Rd, ra/rb)
		}
	case isa.OpRem:
		if rb == 0 {
			set(in.Rd, 0)
		} else {
			set(in.Rd, ra%rb)
		}
	case isa.OpSlt:
		set(in.Rd, boolToInt(ra < rb))
	case isa.OpSltu:
		set(in.Rd, boolToInt(uint64(ra) < uint64(rb)))

	case isa.OpAddi:
		set(in.Rd, ra+imm)
	case isa.OpAndi:
		set(in.Rd, ra&imm)
	case isa.OpOri:
		set(in.Rd, ra|imm)
	case isa.OpXori:
		set(in.Rd, ra^imm)
	case isa.OpShli:
		set(in.Rd, ra<<(uint64(imm)&63))
	case isa.OpShri:
		set(in.Rd, int64(uint64(ra)>>(uint64(imm)&63)))
	case isa.OpMuli:
		set(in.Rd, ra*imm)
	case isa.OpSlti:
		set(in.Rd, boolToInt(ra < imm))
	case isa.OpLui:
		set(in.Rd, imm<<16)

	case isa.OpLd:
		v := m.Read(ra + imm)
		set(in.Rd, v)
		r.Mem = MemOp{IsLoad: true, Addr: ra + imm, Value: v}
	case isa.OpSt:
		m.Write(ra+imm, rb)
		r.Mem = MemOp{IsStore: true, Addr: ra + imm, Value: rb}

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = ra == rb
		case isa.OpBne:
			taken = ra != rb
		case isa.OpBlt:
			taken = ra < rb
		case isa.OpBge:
			taken = ra >= rb
		}
		r.Taken = taken
		if taken {
			r.NextPC = s.PC + 1 + imm
		}

	case isa.OpJal:
		set(in.Rd, s.PC+1)
		r.NextPC = s.PC + 1 + imm
	case isa.OpJalr:
		// Read ra before the link write in case Rd == Ra.
		target := ra + imm
		set(in.Rd, s.PC+1)
		r.NextPC = target

	default:
		panic(fmt.Sprintf("emu: unhandled opcode %v", in.Op))
	}

	s.PC = r.NextPC
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Machine couples a program, a state and a memory into a runnable
// functional machine.
type Machine struct {
	Prog   *isa.Program
	State  State
	Mem    *mem.Memory
	halted bool

	// Executed counts instructions retired, and CondBranches counts the
	// conditional branches among them.
	Executed     uint64
	CondBranches uint64
}

// NewMachine returns a machine loaded with p, its data image applied, PC
// at the entry point.
func NewMachine(p *isa.Program) *Machine {
	return &Machine{
		Prog:  p,
		State: State{PC: p.Entry},
		Mem:   mem.NewFromImage(p.Data),
	}
}

// Halted reports whether the machine has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Fetch returns the instruction at pc. Out-of-range PCs decode as HALT,
// so runaway wrong-path execution self-terminates harmlessly.
func (m *Machine) Fetch(pc int64) isa.Instruction {
	if pc < 0 || pc >= int64(len(m.Prog.Code)) {
		return isa.Instruction{Op: isa.OpHalt}
	}
	return m.Prog.Code[pc]
}

// Step executes one instruction. It returns the executed instruction, its
// effect, and ErrHalted if the machine had already halted.
func (m *Machine) Step() (isa.Instruction, Result, error) {
	if m.halted {
		return isa.Instruction{}, Result{}, ErrHalted
	}
	in := m.Fetch(m.State.PC)
	res := Exec(&m.State, m.Mem, in)
	m.Executed++
	if in.Op.IsCondBranch() {
		m.CondBranches++
	}
	if res.Halted {
		m.halted = true
	}
	return in, res, nil
}

// Run executes until HALT or until maxInstructions have retired
// (0 = unlimited). It returns the number of instructions executed and an
// error if the limit was hit before the program halted.
func (m *Machine) Run(maxInstructions uint64) (uint64, error) {
	start := m.Executed
	for !m.halted {
		if maxInstructions > 0 && m.Executed-start >= maxInstructions {
			return m.Executed - start, fmt.Errorf("emu: %s did not halt within %d instructions",
				m.Prog.Name, maxInstructions)
		}
		if _, _, err := m.Step(); err != nil {
			return m.Executed - start, err
		}
	}
	return m.Executed - start, nil
}
