package emu

import (
	"testing"
	"testing/quick"

	"specctrl/internal/isa"
	"specctrl/internal/mem"
)

// run assembles the body into a program, runs it to completion, and
// returns the machine.
func run(t *testing.T, build func(b *isa.Builder)) *Machine {
	t.Helper()
	b := isa.NewBuilder("test")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 10).Li(2, 3)
		b.Add(3, 1, 2)   // 13
		b.Sub(4, 1, 2)   // 7
		b.Mul(5, 1, 2)   // 30
		b.Div(6, 1, 2)   // 3
		b.Rem(7, 1, 2)   // 1
		b.Slt(8, 2, 1)   // 1
		b.Slt(9, 1, 2)   // 0
		b.Sltu(10, 1, 2) // 0
		b.Halt()
	})
	want := map[isa.Reg]int64{3: 13, 4: 7, 5: 30, 6: 3, 7: 1, 8: 1, 9: 0, 10: 0}
	for r, v := range want {
		if got := m.State.Regs[r]; got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 0b1100).Li(2, 0b1010)
		b.And(3, 1, 2) // 0b1000
		b.Or(4, 1, 2)  // 0b1110
		b.Xor(5, 1, 2) // 0b0110
		b.Li(6, 2)
		b.Shl(7, 1, 6) // 0b110000
		b.Shr(8, 1, 6) // 0b11
		b.Shli(9, 1, 1)
		b.Shri(10, 1, 1)
		b.Halt()
	})
	want := map[isa.Reg]int64{3: 8, 4: 14, 5: 6, 7: 48, 8: 3, 9: 24, 10: 6}
	for r, v := range want {
		if got := m.State.Regs[r]; got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 7)
		b.Div(2, 1, isa.Zero)
		b.Rem(3, 1, isa.Zero)
		b.Halt()
	})
	if m.State.Regs[2] != 0 || m.State.Regs[3] != 0 {
		t.Error("div/rem by zero should yield 0")
	}
}

func TestShiftBeyond63Masked(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 1).Li(2, 64) // shift amount 64 masks to 0
		b.Shl(3, 1, 2)
		b.Halt()
	})
	if m.State.Regs[3] != 1 {
		t.Errorf("1 << 64 (masked) = %d, want 1", m.State.Regs[3])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(0, 99) // write to r0 must be discarded
		b.Add(0, 0, 0)
		b.Halt()
	})
	if m.State.Regs[0] != 0 {
		t.Errorf("r0 = %d, want 0", m.State.Regs[0])
	}
}

func TestLuiAndImmediates(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Lui(1, 3)       // 3 << 16
		b.Ori(1, 1, 0x21) // | 0x21
		b.Slti(2, 1, 1<<20)
		b.Muli(3, 1, 2)
		b.Halt()
	})
	want := int64(3<<16 | 0x21)
	if m.State.Regs[1] != want {
		t.Errorf("lui/ori = %d, want %d", m.State.Regs[1], want)
	}
	if m.State.Regs[2] != 1 {
		t.Error("slti failed")
	}
	if m.State.Regs[3] != want*2 {
		t.Error("muli failed")
	}
}

func TestLoadStore(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Word(100, 55)
		b.Li(1, 100)
		b.Ld(2, 1, 0) // r2 = 55
		b.St(2, 1, 1) // mem[101] = 55
		b.Ld(3, 1, 1) // r3 = 55
		b.Halt()
	})
	if m.State.Regs[2] != 55 || m.State.Regs[3] != 55 {
		t.Error("load/store round trip failed")
	}
	if m.Mem.Read(101) != 55 {
		t.Error("store not visible in memory")
	}
}

func TestBranchesEachDirection(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 5).Li(2, 5).Li(3, 6)
		b.Beq(1, 2, "t1")
		b.Li(10, 1) // skipped
		b.Label("t1")
		b.Bne(1, 3, "t2")
		b.Li(11, 1) // skipped
		b.Label("t2")
		b.Blt(1, 3, "t3")
		b.Li(12, 1) // skipped
		b.Label("t3")
		b.Bge(3, 1, "t4")
		b.Li(13, 1) // skipped
		b.Label("t4")
		// Not-taken cases:
		b.Beq(1, 3, "bad")
		b.Bne(1, 2, "bad")
		b.Blt(3, 1, "bad")
		b.Bge(1, 3, "bad")
		b.Li(20, 7)
		b.Halt()
		b.Label("bad")
		b.Li(21, 1)
		b.Halt()
	})
	for _, r := range []isa.Reg{10, 11, 12, 13, 21} {
		if m.State.Regs[r] != 0 {
			t.Errorf("r%d = %d, want 0 (wrong branch direction)", r, m.State.Regs[r])
		}
	}
	if m.State.Regs[20] != 7 {
		t.Error("fallthrough path not reached")
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 1)
		b.Call("double")
		b.Call("double")
		b.Halt()
		b.Label("double")
		b.Add(1, 1, 1)
		b.Ret()
	})
	if m.State.Regs[1] != 4 {
		t.Errorf("after two doublings r1 = %d, want 4", m.State.Regs[1])
	}
}

func TestJalrReadsBaseBeforeLink(t *testing.T) {
	// jalr rd==ra: target must use the pre-link value.
	b := isa.NewBuilder("t")
	b.LiLabel(5, "target")
	b.Jalr(5, 5, 0)
	b.Li(1, 1) // skipped
	b.Halt()
	b.Label("target")
	b.Li(2, 2)
	b.Halt()
	p := b.MustBuild()
	m := NewMachine(p)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.State.Regs[2] != 2 || m.State.Regs[1] != 0 {
		t.Error("jalr with rd==ra jumped to wrong target")
	}
}

func TestLoopExecution(t *testing.T) {
	m := run(t, func(b *isa.Builder) {
		b.Li(1, 0).Li(2, 100)
		b.Label("loop")
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b.Halt()
	})
	if m.State.Regs[1] != 100 {
		t.Errorf("loop counter = %d, want 100", m.State.Regs[1])
	}
	if m.CondBranches != 100 {
		t.Errorf("CondBranches = %d, want 100", m.CondBranches)
	}
}

func TestOutOfRangePCHalts(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Nop() // falls off the end
	p := b.MustBuild()
	m := NewMachine(p)
	if _, err := m.Run(10); err != nil {
		t.Fatalf("machine did not self-halt: %v", err)
	}
	if !m.Halted() {
		t.Error("machine not halted after running off code end")
	}
}

func TestStepAfterHalt(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Halt()
	m := NewMachine(b.MustBuild())
	if _, _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Step(); err != ErrHalted {
		t.Errorf("Step after halt: err = %v, want ErrHalted", err)
	}
}

func TestRunLimit(t *testing.T) {
	b := isa.NewBuilder("t")
	b.Label("spin").Jump("spin")
	m := NewMachine(b.MustBuild())
	n, err := m.Run(500)
	if err == nil {
		t.Error("Run on infinite loop returned nil error")
	}
	if n != 500 {
		t.Errorf("executed %d, want 500", n)
	}
}

// TestExecPureALUDeterminism property: executing the same ALU instruction
// from the same state always yields identical results and never touches
// memory.
func TestExecPureALUDeterminism(t *testing.T) {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpSlt, isa.OpSltu}
	f := func(opIdx uint8, rd, ra, rb uint8, a, bv int64) bool {
		in := isa.Instruction{
			Op: ops[int(opIdx)%len(ops)],
			Rd: isa.Reg(rd%31) + 1, // avoid r0 so the write is observable
			Ra: isa.Reg(ra % isa.NumRegs),
			Rb: isa.Reg(rb % isa.NumRegs),
		}
		mk := func() (*State, *mem.Memory) {
			s := &State{}
			s.Regs[in.Ra] = a
			s.Regs[in.Rb] = bv
			s.Regs[0] = 0
			return s, mem.New()
		}
		s1, m1 := mk()
		s2, m2 := mk()
		r1 := Exec(s1, m1, in)
		r2 := Exec(s2, m2, in)
		_, w1 := m1.Stats()
		reads1, _ := m1.Stats()
		_ = reads1
		if w1 != 0 {
			return false
		}
		return r1 == r2 && *s1 == *s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEmulatorLoop(b *testing.B) {
	bb := isa.NewBuilder("bench")
	bb.Li(1, 0)
	bb.Li(2, 1<<30)
	bb.Label("loop")
	bb.Addi(1, 1, 1)
	bb.Blt(1, 2, "loop")
	bb.Halt()
	m := NewMachine(bb.MustBuild())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
