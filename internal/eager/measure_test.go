package eager

import (
	"errors"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/workload"
)

func measureConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 100_000
	cfg.MaxCycles = 20_000_000
	return cfg
}

func measureFactories() policy.Factories {
	return policy.Factories{
		Predictor: func() bpred.Predictor { return bpred.NewGshare(12) },
		Estimator: func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) },
	}
}

func measureProg(t *testing.T, name string) *isa.Program {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Build(1 << 30)
}

func TestMeasureRunsSimulation(t *testing.T) {
	o, st, err := DefaultModel().Measure(measureConfig(), measureProg(t, "go"), measureFactories())
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed == 0 || st.CommittedQ.Total() == 0 {
		t.Fatalf("measuring run made no progress: %+v", st.CommittedQ)
	}
	// The measured outcome must agree with evaluating the measured
	// quadrants directly.
	want, err := DefaultModel().Evaluate(st.CommittedQ)
	if err != nil {
		t.Fatal(err)
	}
	if o != want {
		t.Errorf("Measure outcome %+v != Evaluate(quadrants) %+v", o, want)
	}
	// JRS on a hostile workload flags real mispredictions LC, so the
	// modeled machine must fork at least sometimes.
	if o.Forks == 0 {
		t.Error("JRS on go produced no forks; the measurement is vacuous")
	}
}

func TestMeasureInstallsPolicy(t *testing.T) {
	// An EagerBoost fallback shapes the front end during measurement:
	// the policied run must actually gate cycles.
	f := measureFactories()
	f.Policy = func() pipeline.Policy {
		return &policy.EagerBoost{Threshold: 1, Patience: 0}
	}
	_, st, err := DefaultModel().Measure(measureConfig(), measureProg(t, "go"), f)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatedCycles == 0 {
		t.Error("boost policy installed but no cycles gated")
	}
}

func TestMeasureValidates(t *testing.T) {
	bad := Model{MispredictPenalty: 1, ForkCost: 5}
	if _, _, err := bad.Measure(measureConfig(), measureProg(t, "compress"), measureFactories()); err == nil {
		t.Error("invalid model accepted")
	}
	var missing *policy.MissingFieldError
	_, _, err := DefaultModel().Measure(measureConfig(), measureProg(t, "compress"), policy.Factories{})
	if !errors.As(err, &missing) {
		t.Errorf("empty factories: err = %v, want MissingFieldError", err)
	}
}
