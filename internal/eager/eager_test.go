package eager

import (
	"strings"
	"testing"
	"testing/quick"

	"specctrl/internal/metrics"
)

func TestEvaluateWinCase(t *testing.T) {
	// A perfect estimator: all mispredictions flagged LC, no false
	// alarms. Eager execution replaces every penalty with a fork cost.
	m := Model{MispredictPenalty: 10, ForkCost: 2}
	q := metrics.Quadrant{Chc: 900, Ilc: 100}
	o, err := m.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.BaselineCost != 1000 {
		t.Errorf("baseline = %v, want 1000", o.BaselineCost)
	}
	if o.EagerCost != 200 {
		t.Errorf("eager = %v, want 200", o.EagerCost)
	}
	if !o.Profitable() {
		t.Error("perfect estimator should be profitable")
	}
}

func TestEvaluateFalseAlarmsHurt(t *testing.T) {
	// An estimator that cries wolf: everything LC. Forks on every
	// branch; profitable only while misprediction is frequent enough.
	m := Model{MispredictPenalty: 10, ForkCost: 2}
	rare := metrics.Quadrant{Clc: 990, Ilc: 10} // 1% mispredict
	o, err := m.Evaluate(rare)
	if err != nil {
		t.Fatal(err)
	}
	if o.Profitable() {
		t.Errorf("forking every branch at 1%% mispredict should lose: %+v", o)
	}
	frequent := metrics.Quadrant{Clc: 700, Ilc: 300} // 30% mispredict
	o2, _ := m.Evaluate(frequent)
	if !o2.Profitable() {
		t.Errorf("forking every branch at 30%% mispredict should win: %+v", o2)
	}
}

func TestHighConfMispredictionsStillPay(t *testing.T) {
	m := Model{MispredictPenalty: 10, ForkCost: 2}
	q := metrics.Quadrant{Chc: 800, Ihc: 200} // estimator misses everything
	o, err := m.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.EagerCost != o.BaselineCost {
		t.Errorf("an estimator that never fires must change nothing: %+v", o)
	}
	if o.Forks != 0 {
		t.Errorf("forks = %v, want 0", o.Forks)
	}
}

// Property: improving SPEC at constant accuracy and constant PVN-side
// noise never decreases the saving — moving a misprediction from HC to
// LC always helps (penalty > fork cost).
func TestMovingMispredictionsToLCAlwaysHelps(t *testing.T) {
	m := DefaultModel()
	f := func(chc, clc, ihc, ilc uint16) bool {
		q := metrics.Quadrant{
			Chc: uint64(chc) + 10, Clc: uint64(clc),
			Ihc: uint64(ihc) + 10, Ilc: uint64(ilc),
		}
		o1, err1 := m.Evaluate(q)
		q2 := q
		q2.Ihc--
		q2.Ilc++
		o2, err2 := m.Evaluate(q2)
		if err1 != nil || err2 != nil {
			return false
		}
		return o2.SavedPerKilo >= o1.SavedPerKilo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{MispredictPenalty: 0, ForkCost: 0},
		{MispredictPenalty: 5, ForkCost: -1},
		{MispredictPenalty: 5, ForkCost: 5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Errorf("DefaultModel invalid: %v", err)
	}
}

func TestEvaluateEmptyQuadrant(t *testing.T) {
	if _, err := DefaultModel().Evaluate(metrics.Quadrant{}); err == nil {
		t.Error("empty quadrant accepted")
	}
}

func TestRankAndRender(t *testing.T) {
	m := DefaultModel()
	rows, err := m.Rank(
		[]string{"good", "bad"},
		[]metrics.Quadrant{
			{Chc: 900, Ilc: 90, Clc: 10},
			{Chc: 700, Clc: 200, Ihc: 90, Ilc: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Outcome.SavedPerKilo <= rows[1].Outcome.SavedPerKilo {
		t.Error("high-SPEC estimator should save more")
	}
	out := Render(m, rows)
	if !strings.Contains(out, "good") || !strings.Contains(out, "saved") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestRankLengthMismatch(t *testing.T) {
	if _, err := DefaultModel().Rank([]string{"a"}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}
