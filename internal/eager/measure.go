package eager

import (
	"fmt"

	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
)

// Measure simulates prog with fresh components from the factories and
// applies the cost model to the measured committed-branch quadrant —
// the simulation-backed entry point that puts eager execution behind
// the same policy.Factories API as the gating and SMT drivers. An
// f.Policy, when set, is installed into the measuring run (e.g. a
// policy.EagerBoost fallback shaping the front end while the quadrants
// are gathered); nil measures the plain machine.
func (m Model) Measure(cfg pipeline.Config, prog *isa.Program, f policy.Factories) (Outcome, *pipeline.Stats, error) {
	if err := m.Validate(); err != nil {
		return Outcome{}, nil, err
	}
	if err := f.Validate(); err != nil {
		return Outcome{}, nil, err
	}
	cfg.Estimators = []conf.Estimator{f.Estimator()}
	cfg.Policy = f.NewPolicy()
	sim, err := pipeline.New(cfg, prog, f.Predictor())
	if err != nil {
		return Outcome{}, nil, fmt.Errorf("eager measure: %w", err)
	}
	st, err := sim.Run()
	if err != nil {
		return Outcome{}, nil, fmt.Errorf("eager measure: %w", err)
	}
	o, err := m.Evaluate(st.CommittedQ)
	if err != nil {
		return Outcome{}, nil, fmt.Errorf("eager measure: %w", err)
	}
	return o, st, nil
}
